// shalom_lint whole-program model.
//
// The analyzer is split into three layers:
//
//   lint_model.{h,cpp}      lexer (comment/string-aware blanked view,
//                           suppression + lock-order annotations) and the
//                           extraction passes that materialize program-wide
//                           registries: mutex acquisitions with their
//                           lexical nesting, atomic operations with their
//                           memory orders and variable identity, fault-site
//                           names, status codes, strerror entries, stats
//                           counters and SHALOM_* environment keys.
//   lint_rules_file.cpp     per-file rules (atomic-memory-order, raw-alloc,
//                           env-access, fault-site-documented,
//                           nondeterminism, capi-exception-boundary,
//                           signal-handler-safety, unbounded-wait,
//                           unchecked-io) running over the shared model.
//   lint_rules_program.cpp  cross-TU rule families (lock-order,
//                           atomic-pairing, registry-drift) running over
//                           the merged Program registries.
//
// Everything is deliberately lexical (no libclang): the rules are
// properties of this codebase's conventions, and a zero-dependency C++17
// tool runs in every environment the library builds in.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace shalom_lint {

// ---------------------------------------------------------------------------
// Findings and per-file state
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct StringLiteral {
  int line = 0;
  std::size_t pos = 0;  // offset of the opening quote in SourceFile::code
  std::string value;
};

/// A declared mutex hierarchy edge from a
/// `// shalom-lint: lock-order(A before B)` annotation: A must always be
/// acquired before B. Names are the canonical mutex identities the
/// lock-order findings print.
struct LockOrderDecl {
  std::string before;
  std::string after;
  std::string file;
  int line = 0;
};

struct SourceFile {
  std::string path;
  std::string text;  // raw bytes
  std::string code;  // comments and literal contents blanked with spaces
  std::vector<std::size_t> line_start;         // offset of each line
  std::vector<StringLiteral> strings;          // recorded literal values
  std::map<int, std::set<std::string>> allow;  // line -> suppressed rules
  std::vector<LockOrderDecl> lock_decls;       // declared hierarchy edges
};

// ---------------------------------------------------------------------------
// Whole-program registries
// ---------------------------------------------------------------------------

/// One observed "inner acquired while outer is held" pair: a MutexLock
/// lexically inside the scope of another MutexLock in the same function.
struct LockEdge {
  std::string outer;
  std::string inner;
  std::string file;  // witness TU
  int outer_line = 0;
  int inner_line = 0;
};

/// One atomic member operation that carries release or acquire semantics.
/// Identity is the receiver's last identifier (subscripts stripped), which
/// is matched program-wide: the pairing rule only asks whether SOME
/// matching op exists, so over-unification merely makes it lenient.
struct AtomicOp {
  std::string var;
  std::string method;
  std::string file;
  int line = 0;
  bool write_release = false;  // writes with release/acq_rel/seq_cst
  bool read_acquire = false;   // reads with acquire/acq_rel/seq_cst
  bool is_load = false;        // pure load (no write side)
};

/// A fault site defined in a site_name() switch: the dotted string and the
/// Site:: enum constant the nearest preceding case labels it with.
struct SiteDef {
  std::string name;
  std::string enum_name;  // e.g. "kGuardCanary"; may be empty
  std::string file;
  int line = 0;
};

/// A status code defined in the `typedef enum shalom_status` body.
struct CodeDef {
  std::string name;
  std::string file;
  int line = 0;
};

/// A robustness_stats counter field (RobustnessStats struct member).
struct CounterDef {
  std::string name;
  std::string file;
  int line = 0;
};

/// First use of a SHALOM_* environment-key string literal.
struct EnvKeyUse {
  std::string name;
  std::string file;
  int line = 0;
};

struct Program {
  std::vector<SourceFile> files;
  std::vector<LockEdge> lock_edges;
  std::vector<LockOrderDecl> lock_decls;
  std::vector<AtomicOp> atomics;
  std::vector<SiteDef> fault_sites;
  std::vector<CodeDef> status_codes;
  std::set<std::string> strerror_codes;  // `case SHALOM_*` in status_string
  std::vector<CounterDef> stats_counters;
  std::vector<EnvKeyUse> env_keys;
};

/// External artifacts the registry-drift rules compare the code against.
/// `*_ok` is false when the artifact was missing/unreadable; the rule then
/// reports one "cannot be checked" finding per affected family instead of
/// silently passing.
struct DriftInputs {
  std::string design_text, design_path;
  bool design_ok = false;
  std::string api_text, api_path;
  bool api_ok = false;
  std::string tests_text, tests_path;  // concatenated test sources
  bool tests_ok = false;
  std::string tier1_text, tier1_path;
  bool tier1_ok = false;
};

// ---------------------------------------------------------------------------
// Lexer + matching helpers (shared by every rule)
// ---------------------------------------------------------------------------

bool is_ident(char c);
int line_of(const SourceFile& f, std::size_t pos);

/// Next whole-word occurrence of `word` at or after `from`, or npos.
std::size_t find_word(const std::string& code, const std::string& word,
                      std::size_t from);
std::size_t skip_ws(const std::string& code, std::size_t p);

/// With code[open] == oc, returns the index one past the matching closer.
std::size_t match_paren(const std::string& code, std::size_t open,
                        char oc = '(', char cc = ')');
std::string basename_of(const std::string& path);

/// Whole-word occurrence check over raw text (both ends at non-identifier
/// boundaries) - used for doc/test-mention checks so SHALOM_FOO does not
/// satisfy a lookup for SHALOM_FO.
bool text_mentions(const std::string& text, const std::string& word);

/// group.site[.sub]: lowercase identifiers joined by dots.
bool looks_like_site_name(const std::string& v);

/// [begin, end) offsets of a function body inside SourceFile::code.
struct BodyRange {
  std::size_t begin = std::string::npos;
  std::size_t end = std::string::npos;
  bool found() const { return begin != std::string::npos; }
};
BodyRange local_definition_range(const SourceFile& f, const std::string& name);
std::string local_definition_body(const SourceFile& f,
                                  const std::string& name);

/// Builds the blanked `code` view, records string literals, suppression
/// comments and lock-order declarations.
void scan_file(SourceFile& f);

/// Runs every extraction pass over p.files and fills the registries.
/// Lock edges whose inner-acquisition line carries
/// `// shalom-lint: allow(lock-order)` are dropped here (per-edge
/// suppression: killing one edge of a cycle silences that cycle).
void extract_program(Program& p);

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

// Per-file families (lint_rules_file.cpp). design_text/design_path feed
// fault-site-documented.
void run_file_rules(const SourceFile& f, const std::string& design_text,
                    const std::string& design_path,
                    std::vector<Finding>& out);

// Whole-program families (lint_rules_program.cpp).
void rule_lock_order(const Program& p, std::vector<Finding>& out);
void rule_atomic_pairing(const Program& p, std::vector<Finding>& out);
void rule_registry_drift(const Program& p, const DriftInputs& in,
                         std::vector<Finding>& out);

}  // namespace shalom_lint
