// shalom_lint: the repo-specific static analyzer.
//
// A standalone C++17 whole-program scanner (deliberately no libclang:
// the rules are lexical properties of this codebase's conventions, and a
// zero-dependency tool can run in every environment the library builds
// in, including the GCC-only CI image where clang-tidy cannot).
//
// The analyzer first runs a shared extraction pass over every input file
// (lint_model.cpp), materializing program-wide registries - mutex
// acquisitions with their lexical nesting, atomic operations with their
// memory orders, fault sites, status codes, strerror entries, stats
// counters, env keys - then runs two rule layers:
//
//   per-file rules (lint_rules_file.cpp):
//     atomic-memory-order, raw-alloc, env-access, fault-site-documented,
//     nondeterminism, capi-exception-boundary, signal-handler-safety,
//     unbounded-wait, unchecked-io
//
//   whole-program rules (lint_rules_program.cpp):
//     lock-order        cycles in the cross-TU mutex acquisition graph
//                       (reported with a full file:line witness path) and
//                       acquisitions contradicting a declared
//                       `// shalom-lint: lock-order(A before B)` edge.
//     atomic-pairing    every release-side atomic write has a matching
//                       acquire/seq_cst read of the same atomic somewhere
//                       in the program, and vice versa.
//     registry-drift    every fault site is armed in tests or the tier1
//                       script; every status code has a strerror entry,
//                       an API doc row and a test mention; every stats
//                       counter and env key is documented in the API doc.
//
// Every rule is suppressible per line via `// shalom-lint: allow(<rule>)`
// on the offending line or the line directly above; for lock-order the
// annotation on an inner acquisition also removes that edge from the
// graph, so one allow() can silence a whole cycle.
//
// Usage:
//   shalom_lint [--format=text|json] [--design=PATH] [--api=PATH]
//               [--tests=PATH] [--tier1=PATH] [--list-rules]
//               [--selftest-json] <file-or-directory>...
//
// Exit codes: 0 no findings, 1 findings reported, 2 usage/IO error
// (including an input set that contains no scannable file: an empty scan
// must not look like a clean one).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint_model.h"

namespace {

namespace fs = std::filesystem;
using shalom_lint::DriftInputs;
using shalom_lint::Finding;
using shalom_lint::Program;
using shalom_lint::SourceFile;

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "atomic-memory-order",   "atomic-pairing",
      "capi-exception-boundary", "env-access",
      "fault-site-documented", "lock-order",
      "nondeterminism",        "raw-alloc",
      "registry-drift",        "signal-handler-safety",
      "unbounded-wait",        "unchecked-io"};
  return kRules;
}

bool suppressed(const SourceFile& f, const Finding& finding) {
  for (int line : {finding.line, finding.line - 1}) {
    auto it = f.allow.find(line);
    if (it == f.allow.end()) continue;
    if (it->second.count(finding.rule) || it->second.count("all"))
      return true;
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".c";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Loads a drift artifact: a regular file is read whole; a directory
/// (the tests input) is the concatenation of every scannable file in it.
bool read_artifact(const std::string& path, std::string& out) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<std::string> parts;
    for (auto it = fs::recursive_directory_iterator(path, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it)
      if (it->is_regular_file() && scannable(it->path()))
        parts.push_back(it->path().string());
    std::sort(parts.begin(), parts.end());
    out.clear();
    for (const std::string& part : parts) {
      std::string text;
      if (read_file(part, text)) {
        out += text;
        out += '\n';
      }
    }
    return !parts.empty();
  }
  return read_file(path, out);
}

int usage() {
  std::fprintf(stderr,
               "usage: shalom_lint [--format=text|json] [--design=PATH] "
               "[--api=PATH] [--tests=PATH] [--tier1=PATH] [--list-rules] "
               "[--selftest-json] <file-or-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string design_path = "DESIGN.md";
  DriftInputs drift;
  drift.api_path = "API.md";
  drift.tests_path = "tests";
  drift.tier1_path = "scripts/tier1.sh";
  bool selftest_json = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage();
    } else if (arg.rfind("--design=", 0) == 0) {
      design_path = arg.substr(9);
    } else if (arg.rfind("--api=", 0) == 0) {
      drift.api_path = arg.substr(6);
    } else if (arg.rfind("--tests=", 0) == 0) {
      drift.tests_path = arg.substr(8);
    } else if (arg.rfind("--tier1=", 0) == 0) {
      drift.tier1_path = arg.substr(8);
    } else if (arg == "--selftest-json") {
      selftest_json = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : all_rules()) std::printf("%s\n", r.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() && !selftest_json) return usage();

  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (auto it = fs::recursive_directory_iterator(in, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && scannable(it->path()))
          files.push_back(it->path().string());
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "shalom_lint: cannot read '%s'\n", in.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty() && !inputs.empty()) {
    // An input set that expands to nothing must fail loudly: a mistyped
    // directory would otherwise pass every gate with a silent no-op scan.
    std::fprintf(stderr,
                 "shalom_lint: no scannable files under the given inputs\n");
    return 2;
  }

  std::string design_text;
  read_file(design_path, design_text);
  drift.design_path = design_path;
  drift.design_text = design_text;
  drift.design_ok = !design_text.empty();
  drift.api_ok = read_artifact(drift.api_path, drift.api_text);
  drift.tests_ok = read_artifact(drift.tests_path, drift.tests_text);
  drift.tier1_ok = read_artifact(drift.tier1_path, drift.tier1_text);

  Program program;
  std::vector<Finding> raw;
  for (const std::string& path : files) {
    SourceFile f;
    f.path = path;
    if (!read_file(path, f.text)) {
      std::fprintf(stderr, "shalom_lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    shalom_lint::scan_file(f);
    shalom_lint::run_file_rules(f, design_text, design_path, raw);
    program.files.push_back(std::move(f));
  }
  shalom_lint::extract_program(program);
  shalom_lint::rule_lock_order(program, raw);
  shalom_lint::rule_atomic_pairing(program, raw);
  shalom_lint::rule_registry_drift(program, drift, raw);

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : program.files) by_path[f.path] = &f;

  std::vector<Finding> findings;
  for (Finding& fnd : raw) {
    auto it = by_path.find(fnd.file);
    if (it != by_path.end() && suppressed(*it->second, fnd)) continue;
    findings.push_back(std::move(fnd));
  }

  if (selftest_json) {
    // Synthetic finding whose fields exercise every JSON escape class;
    // the regression test round-trips it through --format=json.
    Finding probe;
    probe.file = "self\"test\\dir/probe\t.cpp";
    probe.line = 1;
    probe.rule = "selftest-json";
    probe.message = "quote:\" backslash:\\ newline:\n control:\x01 end";
    findings.push_back(std::move(probe));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (format == "json") {
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& fnd = findings[i];
      std::printf(
          "%s\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
          "\"message\": \"%s\"}",
          i ? "," : "", json_escape(fnd.file).c_str(), fnd.line,
          json_escape(fnd.rule).c_str(), json_escape(fnd.message).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
  } else {
    for (const Finding& fnd : findings)
      std::printf("%s:%d: [%s] %s\n", fnd.file.c_str(), fnd.line,
                  fnd.rule.c_str(), fnd.message.c_str());
  }

  // Summary (stderr, both formats): the scanned-file count proves the
  // gate actually covered something, and per-rule counts show CI logs
  // which family fired.
  std::map<std::string, int> per_rule;
  for (const Finding& fnd : findings) ++per_rule[fnd.rule];
  std::string counts;
  for (const auto& pr : per_rule)
    counts += " " + pr.first + "=" + std::to_string(pr.second);
  std::fprintf(stderr, "shalom_lint: scanned %zu file(s); %zu finding(s)%s\n",
               files.size(), findings.size(), counts.c_str());
  return findings.empty() ? 0 : 1;
}
