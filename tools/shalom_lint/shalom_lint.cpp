// shalom_lint: the repo-specific static analyzer.
//
// A standalone C++17 token/line-level scanner (deliberately no libclang:
// the rules below are lexical properties of this codebase's conventions,
// and a zero-dependency tool can run in every environment the library
// builds in, including the GCC-only CI image where clang-tidy cannot).
//
// Rules (each suppressible per line via `// shalom-lint: allow(<rule>)`
// on the offending line or the line directly above):
//
//   atomic-memory-order      every std::atomic load/store/exchange/
//                            fetch_*/compare_exchange_* call names an
//                            explicit std::memory_order.
//   raw-alloc                no malloc/calloc/realloc/posix_memalign/
//                            aligned_alloc/valloc/memalign and no array
//                            new[] outside common/aligned_buffer.* (the
//                            single sanctioned allocation site).
//   env-access               no direct getenv: every environment read
//                            goes through the env:: helpers defined in
//                            common/error.cpp (the only exempt file).
//   fault-site-documented    every fault-site name string literal (the
//                            dotted "group.site" literals in files that
//                            mention fault::Site or define site_name)
//                            appears in DESIGN.md's site->fallback
//                            matrix.
//   nondeterminism           no rand/srand/rand_r/drand48/random and no
//                            time(nullptr|NULL|0) seeding: runs must be
//                            reproducible (use common/rng.h).
//   capi-exception-boundary  every `extern "C"` function definition
//                            returning int/shalom_status either contains
//                            the catch-all status translator (a `catch`
//                            or fail_current_exception) or delegates to
//                            a same-file helper that does. Only the
//                            direct `extern "C" <definition>` form is
//                            recognized; declarations and extern "C" {}
//                            blocks (headers) are out of scope.
//   unbounded-wait           every bare condition-variable wait (a
//                            one-argument `<...cv...>.wait(lock)` call)
//                            is the direct body of a `while (pred)` loop
//                            or replaced by a predicate/deadline form
//                            (two-argument wait, wait_for, wait_until):
//                            a bare wait outside a predicate loop hangs
//                            forever on a missed or spurious notify.
//                            Applies to receivers whose identifier
//                            contains "cv" (the repo's CV naming
//                            convention: submit_cv, r.cv, cv_).
//   unchecked-io             every fread/fwrite/rename/fsync/fclose call
//                            uses its return value (assigned, compared,
//                            returned, negated, or passed as an
//                            argument). A bare statement call discards
//                            the only error signal the libc I/O API
//                            has; an explicit `(void)` cast is accepted
//                            as a visible, deliberate discard. Member
//                            calls and non-std-qualified names (repo
//                            wrappers that merely share a libc name)
//                            are out of scope.
//   signal-handler-safety    code reachable from a signal handler (an
//                            identifier assigned to .sa_handler or
//                            .sa_sigaction, or passed as the handler
//                            argument of signal()) performs only
//                            async-signal-safe operations: no stdio, no
//                            allocation (malloc family, new/delete), no
//                            locks, no throw. One level of same-file
//                            callees is followed; signal/raise/
//                            siglongjmp are allowed (they are the
//                            sanctioned handler vocabulary).
//
// Usage:
//   shalom_lint [--format=text|json] [--design=PATH] [--list-rules]
//               <file-or-directory>...
//
// Exit codes: 0 no findings, 1 findings reported, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct StringLiteral {
  int line = 0;
  std::string value;
};

struct SourceFile {
  std::string path;
  std::string text;  // raw bytes
  std::string code;  // comments and literal contents blanked with spaces
  std::vector<std::size_t> line_start;        // offset of each line
  std::vector<StringLiteral> strings;         // recorded literal values
  std::map<int, std::set<std::string>> allow; // line -> suppressed rules
};

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int line_of(const SourceFile& f, std::size_t pos) {
  auto it = std::upper_bound(f.line_start.begin(), f.line_start.end(), pos);
  return static_cast<int>(it - f.line_start.begin());
}

// ---------------------------------------------------------------------------
// Scanner: builds the blanked `code` view, records string literals and
// suppression comments. Handles //, /* */, "..." (with escapes), '...',
// and raw string literals R"delim(...)delim".
// ---------------------------------------------------------------------------

void parse_allow(SourceFile& f, const std::string& comment, int line) {
  const std::string marker = "shalom-lint: allow(";
  std::size_t at = comment.find(marker);
  while (at != std::string::npos) {
    std::size_t p = at + marker.size();
    std::string name;
    for (; p < comment.size() && comment[p] != ')'; ++p) {
      const char c = comment[p];
      if (c == ',' ) {
        if (!name.empty()) f.allow[line].insert(name);
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name += c;
      }
    }
    if (!name.empty()) f.allow[line].insert(name);
    at = comment.find(marker, p);
  }
}

void scan_file(SourceFile& f) {
  const std::string& s = f.text;
  f.code.assign(s.size(), ' ');
  f.line_start.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s[i] == '\n') {
      f.code[i] = '\n';
      if (i + 1 < s.size()) f.line_start.push_back(i + 1);
    }

  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    // Line comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t j = i;
      while (j < s.size() && s[j] != '\n') ++j;
      parse_allow(f, s.substr(i, j - i), line_of(f, i));
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      std::size_t j = s.find("*/", i + 2);
      if (j == std::string::npos) j = s.size(); else j += 2;
      // A block comment may span lines; register the allow() on the line
      // it starts on.
      parse_allow(f, s.substr(i, j - i), line_of(f, i));
      i = j;
      continue;
    }
    // Raw string literal: (optional prefix)R"delim( ... )delim".
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"' &&
        (i == 0 || !is_ident(s[i - 1]))) {
      std::size_t dstart = i + 2;
      std::size_t dend = dstart;
      while (dend < s.size() && s[dend] != '(') ++dend;
      const std::string delim = s.substr(dstart, dend - dstart);
      const std::string close = ")" + delim + "\"";
      const std::size_t at = s.find(close, dend + 1);
      const std::size_t vend = (at == std::string::npos) ? s.size() : at;
      f.strings.push_back({line_of(f, i), s.substr(dend + 1,
                                                   vend - (dend + 1))});
      i = (at == std::string::npos) ? s.size() : at + close.size();
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      std::size_t j = i + 1;
      std::string value;
      while (j < s.size() && s[j] != '"' && s[j] != '\n') {
        if (s[j] == '\\' && j + 1 < s.size()) {
          value += s[j];
          value += s[j + 1];
          j += 2;
        } else {
          value += s[j];
          ++j;
        }
      }
      f.strings.push_back({line_of(f, i), value});
      f.code[i] = '"';
      // Keep a literal "C" visible so `extern "C"` stays recognizable in
      // the blanked view; all other literal content is blanked.
      if (value == "C" && j == i + 2) f.code[i + 1] = 'C';
      if (j < s.size() && s[j] == '"') {
        f.code[j] = '"';
        ++j;
      }
      i = j;
      continue;
    }
    // Character literal (skip so '"' or '//' inside cannot confuse us).
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != '\'' && s[j] != '\n') {
        if (s[j] == '\\') ++j;
        ++j;
      }
      i = (j < s.size()) ? j + 1 : j;
      continue;
    }
    f.code[i] = c;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Matching helpers over the blanked view
// ---------------------------------------------------------------------------

/// Finds the next whole-word occurrence of `word` at or after `from`.
std::size_t find_word(const std::string& code, const std::string& word,
                      std::size_t from) {
  std::size_t p = code.find(word, from);
  while (p != std::string::npos) {
    const bool left_ok = p == 0 || !is_ident(code[p - 1]);
    const std::size_t end = p + word.size();
    const bool right_ok = end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) return p;
    p = code.find(word, p + 1);
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& code, std::size_t p) {
  while (p < code.size() &&
         std::isspace(static_cast<unsigned char>(code[p])))
    ++p;
  return p;
}

/// With code[open] == '(' (or '{'), returns the index one past the
/// matching closer, or npos.
std::size_t match_paren(const std::string& code, std::size_t open,
                        char oc = '(', char cc = ')') {
  int depth = 0;
  for (std::size_t p = open; p < code.size(); ++p) {
    if (code[p] == oc) ++depth;
    if (code[p] == cc && --depth == 0) return p + 1;
  }
  return std::string::npos;
}

std::string basename_of(const std::string& path) {
  return fs::path(path).filename().string();
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void rule_atomic_memory_order(const SourceFile& f,
                              std::vector<Finding>& out) {
  static const char* kMethods[] = {
      "load",          "store",         "exchange",
      "fetch_add",     "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",     "compare_exchange_weak",
      "compare_exchange_strong"};
  for (const char* m : kMethods) {
    std::size_t p = find_word(f.code, m, 0);
    while (p != std::string::npos) {
      // Member-call context only: `.load(` or `->load(`.
      const bool member =
          (p >= 1 && f.code[p - 1] == '.') ||
          (p >= 2 && f.code[p - 2] == '-' && f.code[p - 1] == '>');
      std::size_t open = skip_ws(f.code, p + std::strlen(m));
      if (member && open < f.code.size() && f.code[open] == '(') {
        const std::size_t close = match_paren(f.code, open);
        const std::string args =
            close == std::string::npos
                ? f.code.substr(open)
                : f.code.substr(open, close - open);
        if (args.find("memory_order") == std::string::npos) {
          out.push_back({f.path, line_of(f, p), "atomic-memory-order",
                         std::string("atomic ") + m +
                             "() without an explicit std::memory_order "
                             "(implicit seq_cst; state and justify the "
                             "required order instead)"});
        }
      }
      p = find_word(f.code, m, p + 1);
    }
  }
}

void rule_raw_alloc(const SourceFile& f, std::vector<Finding>& out) {
  const std::string base = basename_of(f.path);
  if (base.rfind("aligned_buffer", 0) == 0) return;  // sanctioned site
  static const char* kFns[] = {"malloc",         "calloc",  "realloc",
                               "posix_memalign", "aligned_alloc",
                               "valloc",         "memalign"};
  for (const char* fn : kFns) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      const std::size_t after = skip_ws(f.code, p + std::strlen(fn));
      if (after < f.code.size() && f.code[after] == '(') {
        out.push_back({f.path, line_of(f, p), "raw-alloc",
                       std::string(fn) +
                           "() outside common/aligned_buffer.*: all "
                           "allocations go through AlignedBuffer"});
      }
      p = find_word(f.code, fn, p + 1);
    }
  }
  // Array new: `new T[n]` (placement parens are skipped first).
  std::size_t p = find_word(f.code, "new", 0);
  while (p != std::string::npos) {
    std::size_t q = skip_ws(f.code, p + 3);
    if (q < f.code.size() && f.code[q] == '(') {  // placement arguments
      const std::size_t close = match_paren(f.code, q);
      if (close == std::string::npos) break;
      q = skip_ws(f.code, close);
    }
    while (q < f.code.size() &&
           (is_ident(f.code[q]) || f.code[q] == ':' || f.code[q] == '<' ||
            f.code[q] == '>' || f.code[q] == ',' || f.code[q] == '*' ||
            f.code[q] == ' '))
      ++q;
    if (q < f.code.size() && f.code[q] == '[') {
      out.push_back({f.path, line_of(f, p), "raw-alloc",
                     "array new[] outside common/aligned_buffer.*: all "
                     "allocations go through AlignedBuffer"});
    }
    p = find_word(f.code, "new", p + 1);
  }
}

void rule_env_access(const SourceFile& f, std::vector<Finding>& out) {
  if (basename_of(f.path) == "error.cpp") return;  // env:: helpers live here
  for (const char* fn : {"getenv", "secure_getenv"}) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      out.push_back({f.path, line_of(f, p), "env-access",
                     std::string(fn) +
                         " outside common/error.cpp: read the environment "
                         "through the shalom::env:: helpers so malformed "
                         "values warn once and fall back"});
      p = find_word(f.code, fn, p + 1);
    }
  }
}

/// True when the identifier at `p` is member-accessed (`x.rand(`) or
/// qualified by something other than std:: (`BsrMatrix<T>::random(`): a
/// repo-defined function that merely shares a libc name, not libc itself
/// (libc functions appear bare or std::-qualified).
bool non_libc_context(const std::string& code, std::size_t p) {
  if (p >= 1 && code[p - 1] == '.') return true;
  if (p >= 2 && code[p - 2] == '-' && code[p - 1] == '>') return true;
  if (p >= 2 && code[p - 2] == ':' && code[p - 1] == ':') {
    std::size_t e = p - 2;
    std::size_t s = e;
    while (s > 0 && is_ident(code[s - 1])) --s;
    return code.substr(s, e - s) != "std";
  }
  return false;
}

void rule_nondeterminism(const SourceFile& f, std::vector<Finding>& out) {
  for (const char* fn : {"rand", "srand", "rand_r", "drand48", "random"}) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      const std::size_t after = skip_ws(f.code, p + std::strlen(fn));
      if (after < f.code.size() && f.code[after] == '(' &&
          !non_libc_context(f.code, p)) {
        out.push_back({f.path, line_of(f, p), "nondeterminism",
                       std::string(fn) +
                           "() is nondeterministic across runs; use the "
                           "seeded generators in common/rng.h"});
      }
      p = find_word(f.code, fn, p + 1);
    }
  }
  std::size_t p = find_word(f.code, "time", 0);
  while (p != std::string::npos) {
    const std::size_t open = skip_ws(f.code, p + 4);
    if (open < f.code.size() && f.code[open] == '(') {
      const std::size_t close = match_paren(f.code, open);
      if (close != std::string::npos) {
        std::string arg = f.code.substr(open + 1, close - open - 2);
        arg.erase(std::remove_if(arg.begin(), arg.end(),
                                 [](unsigned char c) {
                                   return std::isspace(c);
                                 }),
                  arg.end());
        if (arg == "nullptr" || arg == "NULL" || arg == "0") {
          out.push_back({f.path, line_of(f, p), "nondeterminism",
                         "time(" + arg +
                             ") seeding is nondeterministic across runs; "
                             "use the seeded generators in common/rng.h"});
        }
      }
    }
    p = find_word(f.code, "time", p + 1);
  }
}

bool looks_like_site_name(const std::string& v) {
  // group.site[.sub]: lowercase identifiers joined by dots.
  bool saw_dot = false;
  bool part_empty = true;
  for (char c : v) {
    if (c == '.') {
      if (part_empty) return false;
      saw_dot = true;
      part_empty = true;
    } else if ((c >= 'a' && c <= 'z') || c == '_') {
      part_empty = false;
    } else {
      return false;
    }
  }
  return saw_dot && !part_empty;
}

void rule_fault_site_documented(const SourceFile& f,
                                const std::string& design_text,
                                const std::string& design_path,
                                std::vector<Finding>& out) {
  if (f.code.find("fault::Site") == std::string::npos &&
      find_word(f.code, "site_name", 0) == std::string::npos)
    return;
  for (const StringLiteral& lit : f.strings) {
    if (!looks_like_site_name(lit.value)) continue;
    if (design_text.empty()) {
      out.push_back({f.path, lit.line, "fault-site-documented",
                     "fault site \"" + lit.value +
                         "\" cannot be checked: design file '" +
                         design_path + "' is missing or unreadable"});
    } else if (design_text.find(lit.value) == std::string::npos) {
      out.push_back({f.path, lit.line, "fault-site-documented",
                     "fault site \"" + lit.value +
                         "\" is not documented in the site->fallback "
                         "matrix of " +
                         design_path});
    }
  }
}

/// [begin, end) offsets of a function body inside SourceFile::code
/// (begin == npos when no definition was found). Keeping offsets instead
/// of an extracted string lets callers report line numbers inside the
/// body.
struct BodyRange {
  std::size_t begin = std::string::npos;
  std::size_t end = std::string::npos;
  bool found() const { return begin != std::string::npos; }
};

/// Locates the body of a function named `name` defined in this file (the
/// first occurrence of `name(...)` whose parameter list is followed by a
/// brace, skipping trailing specifiers such as noexcept/const).
BodyRange local_definition_range(const SourceFile& f,
                                 const std::string& name) {
  std::size_t p = find_word(f.code, name, 0);
  while (p != std::string::npos) {
    std::size_t open = skip_ws(f.code, p + name.size());
    if (open < f.code.size() && f.code[open] == '(') {
      const std::size_t close = match_paren(f.code, open);
      if (close != std::string::npos) {
        std::size_t q = skip_ws(f.code, close);
        // Skip trailing specifiers (noexcept, const, ...) including a
        // noexcept(...) argument.
        while (q < f.code.size() && is_ident(f.code[q])) {
          while (q < f.code.size() && is_ident(f.code[q])) ++q;
          q = skip_ws(f.code, q);
          if (q < f.code.size() && f.code[q] == '(') {
            const std::size_t c2 = match_paren(f.code, q);
            if (c2 == std::string::npos) break;
            q = skip_ws(f.code, c2);
          }
        }
        if (q < f.code.size() && f.code[q] == '{') {
          const std::size_t bend = match_paren(f.code, q, '{', '}');
          if (bend != std::string::npos) return BodyRange{q, bend};
        }
      }
    }
    p = find_word(f.code, name, p + 1);
  }
  return BodyRange{};
}

/// Returns the body of a function named `name` defined in this file, or
/// "" when no definition is found.
std::string local_definition_body(const SourceFile& f,
                                  const std::string& name) {
  const BodyRange r = local_definition_range(f, name);
  return r.found() ? f.code.substr(r.begin, r.end - r.begin) : "";
}

bool body_has_translator(const std::string& body) {
  return body.find("fail_current_exception") != std::string::npos ||
         find_word(body, "catch", 0) != std::string::npos;
}

void rule_capi_exception_boundary(const SourceFile& f,
                                  std::vector<Finding>& out) {
  std::size_t p = f.code.find("extern \"C\"");
  while (p != std::string::npos) {
    std::size_t q = skip_ws(f.code, p + 10);
    // Collect the declarator up to the parameter list.
    const std::size_t decl_start = q;
    while (q < f.code.size() && f.code[q] != '(' && f.code[q] != ';' &&
           f.code[q] != '{')
      ++q;
    if (q >= f.code.size() || f.code[q] != '(') {
      p = f.code.find("extern \"C\"", p + 1);
      continue;  // extern "C" { ... } block or variable: out of scope
    }
    const std::string decl = f.code.substr(decl_start, q - decl_start);
    const std::size_t close = match_paren(f.code, q);
    if (close == std::string::npos) break;
    std::size_t r = skip_ws(f.code, close);
    while (r < f.code.size() && is_ident(f.code[r])) {  // noexcept etc.
      while (r < f.code.size() && is_ident(f.code[r])) ++r;
      r = skip_ws(f.code, r);
    }
    if (r < f.code.size() && f.code[r] == '{') {
      // Definition. Return type = declarator minus the trailing name.
      std::size_t name_end = decl.size();
      while (name_end > 0 &&
             std::isspace(static_cast<unsigned char>(decl[name_end - 1])))
        --name_end;
      std::size_t name_start = name_end;
      while (name_start > 0 && is_ident(decl[name_start - 1])) --name_start;
      const std::string name = decl.substr(name_start, name_end - name_start);
      std::string ret = decl.substr(0, name_start);
      // Normalize whitespace.
      std::string ret_norm;
      for (char c : ret)
        if (!std::isspace(static_cast<unsigned char>(c))) ret_norm += c;
      if (ret_norm == "int" || ret_norm == "shalom_status") {
        const std::size_t bend = match_paren(f.code, r, '{', '}');
        const std::string body =
            bend == std::string::npos ? f.code.substr(r)
                                      : f.code.substr(r, bend - r);
        bool ok = body_has_translator(body);
        if (!ok) {
          // One level of delegation: a body that calls a same-file
          // helper containing the translator is wrapped transitively
          // (the shalom_sgemm -> gemm_c pattern).
          std::size_t cp = 0;
          while (!ok && cp < body.size()) {
            if (is_ident(body[cp]) && (cp == 0 || !is_ident(body[cp - 1]))) {
              std::size_t ce = cp;
              while (ce < body.size() && is_ident(body[ce])) ++ce;
              const std::string callee = body.substr(cp, ce - cp);
              const std::size_t paren = skip_ws(body, ce);
              if (paren < body.size() && body[paren] == '(' &&
                  callee != name && callee != "if" && callee != "while" &&
                  callee != "for" && callee != "switch" &&
                  callee != "return" && callee != "sizeof") {
                const std::string def = local_definition_body(f, callee);
                if (!def.empty() && body_has_translator(def)) ok = true;
              }
              cp = ce;
            } else {
              ++cp;
            }
          }
        }
        if (!ok) {
          out.push_back(
              {f.path, line_of(f, p), "capi-exception-boundary",
               "extern \"C\" entry point '" + name +
                   "' returns a status but is not wrapped in the "
                   "catch-all status translator (fail_current_exception) "
                   "- an exception here would cross the C ABI"});
        }
      }
    }
    p = f.code.find("extern \"C\"", p + 1);
  }
}

/// Trailing identifier of a handler expression (`trap_handler`,
/// `&trap_handler`, `ns::handler` -> `handler`); "" when the expression
/// is a sentinel disposition (SIG_DFL/SIG_IGN/nullptr/NULL) or not an
/// identifier at all.
std::string handler_root_of(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1])))
    --end;
  std::size_t start = end;
  while (start > 0 && is_ident(expr[start - 1])) --start;
  const std::string name = expr.substr(start, end - start);
  if (name.empty() || name == "SIG_DFL" || name == "SIG_IGN" ||
      name == "nullptr" || name == "NULL" ||
      std::isdigit(static_cast<unsigned char>(name[0])))
    return "";
  return name;
}

/// Handler roots registered in this file: identifiers assigned to a
/// .sa_handler/.sa_sigaction field or passed as the second argument of
/// signal().
std::set<std::string> handler_roots(const SourceFile& f) {
  std::set<std::string> roots;
  for (const char* field : {"sa_handler", "sa_sigaction"}) {
    std::size_t p = find_word(f.code, field, 0);
    while (p != std::string::npos) {
      const std::size_t q = skip_ws(f.code, p + std::strlen(field));
      if (q < f.code.size() && f.code[q] == '=' &&
          (q + 1 >= f.code.size() || f.code[q + 1] != '=')) {
        std::size_t sc = f.code.find(';', q);
        if (sc == std::string::npos) sc = f.code.size();
        const std::string name =
            handler_root_of(f.code.substr(q + 1, sc - q - 1));
        if (!name.empty()) roots.insert(name);
      }
      p = find_word(f.code, field, p + 1);
    }
  }
  std::size_t p = find_word(f.code, "signal", 0);
  while (p != std::string::npos) {
    const std::size_t open = skip_ws(f.code, p + 6);
    if (open < f.code.size() && f.code[open] == '(') {
      const std::size_t close = match_paren(f.code, open);
      if (close != std::string::npos) {
        // Second top-level argument of signal(sig, handler).
        std::size_t comma = std::string::npos;
        int depth = 0;
        for (std::size_t i = open + 1; i + 1 < close; ++i) {
          const char c = f.code[i];
          if (c == '(') ++depth;
          if (c == ')') --depth;
          if (c == ',' && depth == 0) {
            comma = i;
            break;
          }
        }
        if (comma != std::string::npos) {
          const std::string name = handler_root_of(
              f.code.substr(comma + 1, (close - 1) - (comma + 1)));
          if (!name.empty()) roots.insert(name);
        }
      }
    }
    p = find_word(f.code, "signal", p + 1);
  }
  return roots;
}

/// Reports non-async-signal-safe constructs inside [begin, end) of
/// f.code, attributing each to the handler root it is reachable from.
void scan_handler_range(const SourceFile& f, const std::string& root,
                        std::size_t begin, std::size_t end,
                        std::vector<Finding>& out) {
  // Functions POSIX does not list as async-signal-safe that this codebase
  // could plausibly reach: the malloc family, stdio, and exit. raise,
  // signal and siglongjmp are deliberately absent - they are the
  // sanctioned handler vocabulary (see common/guard.cpp).
  static const char* kBannedCalls[] = {
      "malloc", "calloc",   "realloc",   "free",   "printf",
      "fprintf", "sprintf", "snprintf",  "vsnprintf", "puts",
      "fputs",  "fwrite",   "fflush",    "fopen",  "fclose",
      "exit",   "lock",     "unlock",    "try_lock"};
  for (const char* fn : kBannedCalls) {
    std::size_t p = find_word(f.code, fn, begin);
    while (p != std::string::npos && p < end) {
      const std::size_t after = skip_ws(f.code, p + std::strlen(fn));
      if (after < end && f.code[after] == '(') {
        out.push_back(
            {f.path, line_of(f, p), "signal-handler-safety",
             std::string("call to ") + fn +
                 "() is not async-signal-safe but is reachable from "
                 "signal handler '" +
                 root +
                 "': handlers may only use sig_atomic_t stores, "
                 "siglongjmp and re-raise"});
      }
      p = find_word(f.code, fn, p + 1);
    }
  }
  // Keywords that allocate or unwind, and locking primitives whose mere
  // presence (RAII construction) can self-deadlock under a handler.
  static const char* kBannedWords[] = {"new",         "delete",
                                       "throw",       "lock_guard",
                                       "unique_lock", "MutexLock",
                                       "Mutex",       "mutex"};
  for (const char* w : kBannedWords) {
    std::size_t p = find_word(f.code, w, begin);
    while (p != std::string::npos && p < end) {
      out.push_back(
          {f.path, line_of(f, p), "signal-handler-safety",
           std::string("'") + w +
               "' allocates, unwinds or locks inside code reachable "
               "from signal handler '" +
               root + "': handlers must stay async-signal-safe"});
      p = find_word(f.code, w, p + 1);
    }
  }
}

void rule_signal_handler_safety(const SourceFile& f,
                                std::vector<Finding>& out) {
  const std::set<std::string> roots = handler_roots(f);
  if (roots.empty()) return;
  static const std::set<std::string> kNotCallees = {
      "if",     "while",  "for", "switch", "return",
      "sizeof", "new",    "delete", "throw"};
  std::set<std::size_t> visited;  // body offsets already scanned
  for (const std::string& root : roots) {
    const BodyRange body = local_definition_range(f, root);
    if (!body.found()) continue;
    if (visited.insert(body.begin).second)
      scan_handler_range(f, root, body.begin, body.end, out);
    // One level of same-file callee expansion: a helper the handler calls
    // is handler code too (deeper chains are out of lexical reach).
    std::size_t cp = body.begin;
    while (cp < body.end) {
      if (is_ident(f.code[cp]) && (cp == 0 || !is_ident(f.code[cp - 1]))) {
        std::size_t ce = cp;
        while (ce < body.end && is_ident(f.code[ce])) ++ce;
        const std::string callee = f.code.substr(cp, ce - cp);
        const std::size_t paren = skip_ws(f.code, ce);
        if (paren < body.end && f.code[paren] == '(' && callee != root &&
            kNotCallees.count(callee) == 0) {
          const BodyRange cb = local_definition_range(f, callee);
          if (cb.found() && cb.begin != body.begin &&
              visited.insert(cb.begin).second)
            scan_handler_range(f, root, cb.begin, cb.end, out);
        }
        cp = ce;
      } else {
        ++cp;
      }
    }
  }
}

/// True when the whole-word token ending at (exclusive) `end` is `word`.
bool word_ends_at(const std::string& code, std::size_t end,
                  const char* word) {
  const std::size_t len = std::strlen(word);
  if (end < len) return false;
  const std::size_t start = end - len;
  if (code.compare(start, len, word) != 0) return false;
  return start == 0 || !is_ident(code[start - 1]);
}

void rule_unbounded_wait(const SourceFile& f, std::vector<Finding>& out) {
  std::size_t p = find_word(f.code, "wait", 0);
  while (p != std::string::npos) {
    const std::size_t at = p;
    p = find_word(f.code, "wait", p + 1);
    // Member-call context only: `.wait(` or `->wait(`.
    const bool member =
        (at >= 1 && f.code[at - 1] == '.') ||
        (at >= 2 && f.code[at - 2] == '-' && f.code[at - 1] == '>');
    if (!member) continue;
    const std::size_t open = skip_ws(f.code, at + 4);
    if (open >= f.code.size() || f.code[open] != '(') continue;
    const std::size_t close = match_paren(f.code, open);
    if (close == std::string::npos) continue;
    // Arity: a second top-level argument is a predicate - that form
    // re-checks its condition internally and is always safe.
    int depth = 0;
    int commas = 0;
    bool any_arg = false;
    for (std::size_t q = open + 1; q + 1 < close; ++q) {
      const char c = f.code[q];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth == 0 && c == ',') ++commas;
      if (!std::isspace(static_cast<unsigned char>(c))) any_arg = true;
    }
    if (!any_arg || commas > 0) continue;
    // Receiver: the immediate identifier before `.wait` must contain
    // "cv" (this repo's condition-variable naming convention), so
    // future.wait()-style calls on unrelated types stay out of scope.
    std::size_t recv_end = at - 1;  // at the '.' (or '>')
    if (f.code[recv_end] == '>') --recv_end;  // `->`: skip to the '-'
    std::size_t ident_end = recv_end;
    std::size_t ident_start = ident_end;
    while (ident_start > 0 && is_ident(f.code[ident_start - 1]))
      --ident_start;
    const std::string ident =
        f.code.substr(ident_start, ident_end - ident_start);
    if (ident.find("cv") == std::string::npos) continue;
    // Walk to the start of the full receiver expression
    // (`impl_->space_cv`, `r.cv`) so the while-check looks before it.
    std::size_t expr_start = ident_start;
    while (expr_start > 0) {
      const char c = f.code[expr_start - 1];
      if (is_ident(c) || c == '.' || c == ':') {
        --expr_start;
      } else if (c == '>' && expr_start >= 2 &&
                 f.code[expr_start - 2] == '-') {
        expr_start -= 2;
      } else {
        break;
      }
    }
    // Allowed form: the wait is the direct statement of a while loop -
    // the previous token is the `)` closing a `while (...)` condition.
    std::size_t before = expr_start;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(f.code[before - 1])))
      --before;
    bool guarded = false;
    if (before > 0 && f.code[before - 1] == ')') {
      int bdepth = 0;
      std::size_t q = before - 1;
      for (;;) {
        if (f.code[q] == ')') ++bdepth;
        if (f.code[q] == '(' && --bdepth == 0) break;
        if (q == 0) break;
        --q;
      }
      if (bdepth == 0) {
        std::size_t w = q;
        while (w > 0 &&
               std::isspace(static_cast<unsigned char>(f.code[w - 1])))
          --w;
        guarded = word_ends_at(f.code, w, "while");
      }
    }
    if (guarded) continue;
    out.push_back(
        {f.path, line_of(f, at), "unbounded-wait",
         "bare condition-variable wait on '" + ident +
             "' outside a `while (pred)` loop - a missed or spurious "
             "notify hangs it forever; guard it with the predicate "
             "loop or use a deadline form (wait_for/wait_until)"});
  }
}

void rule_unchecked_io(const SourceFile& f, std::vector<Finding>& out) {
  static const char* kFns[] = {"fread", "fwrite", "rename", "fsync",
                               "fclose"};
  for (const char* fn : kFns) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      const std::size_t at = p;
      p = find_word(f.code, fn, at + 1);
      const std::size_t open = skip_ws(f.code, at + std::strlen(fn));
      if (open >= f.code.size() || f.code[open] != '(') continue;
      // Member calls (`file.rename(`) are repo types, not libc.
      if ((at >= 1 && f.code[at - 1] == '.') ||
          (at >= 2 && f.code[at - 2] == '-' && f.code[at - 1] == '>'))
        continue;
      // Skip a std:: or global :: qualifier; any other qualifier
      // (`fs::rename`, `Io::fsync`) is a repo-defined name.
      std::size_t start = at;
      if (start >= 2 && f.code[start - 2] == ':' &&
          f.code[start - 1] == ':') {
        const std::size_t qe = start - 2;
        std::size_t qs = qe;
        while (qs > 0 && is_ident(f.code[qs - 1])) --qs;
        const std::string qual = f.code.substr(qs, qe - qs);
        if (!qual.empty() && qual != "std") continue;
        start = qs;
      }
      // The significant token before the call decides whether the
      // result is consumed.
      std::size_t b = start;
      while (b > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[b - 1])))
        --b;
      bool unchecked = false;
      if (b == 0) {
        unchecked = true;  // call is the first token of the file
      } else if (const char c = f.code[b - 1];
                 c == ';' || c == '{' || c == '}') {
        unchecked = true;  // bare statement: result dropped on the floor
      } else if (c == ')') {
        // Preceded by a close paren: either a cast (only `(void)` is a
        // sanctioned deliberate discard) or an unparenthesized
        // `if (...) fclose(f);` body - both discard unless (void).
        int depth = 0;
        std::size_t q = b - 1;
        for (;;) {
          if (f.code[q] == ')') ++depth;
          if (f.code[q] == '(' && --depth == 0) break;
          if (q == 0) break;
          --q;
        }
        std::string norm;
        for (std::size_t i = q; i < b; ++i)
          if (!std::isspace(static_cast<unsigned char>(f.code[i])))
            norm += f.code[i];
        unchecked = (norm != "(void)");
      } else if (is_ident(c)) {
        // `return fclose(f)` consumes the result; `else fclose(f);`
        // and `do fclose(f);` do not.
        std::size_t ws = b;
        while (ws > 0 && is_ident(f.code[ws - 1])) --ws;
        const std::string word = f.code.substr(ws, b - ws);
        unchecked = (word == "else" || word == "do");
      }
      // Everything else (`=`, `(`, `!`, `,`, comparison, `&&`, `||`,
      // `?`, `:`) feeds the result into an expression: checked.
      if (unchecked) {
        out.push_back(
            {f.path, line_of(f, at), "unchecked-io",
             std::string(fn) +
                 "() result is discarded - the return value is the only "
                 "error signal this I/O call has; check it (route file "
                 "I/O through a checked helper) or cast to (void) as a "
                 "deliberate, visible discard"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

const std::set<std::string>& all_rules() {
  static const std::set<std::string> kRules = {
      "atomic-memory-order",   "raw-alloc",
      "env-access",            "fault-site-documented",
      "nondeterminism",        "capi-exception-boundary",
      "signal-handler-safety", "unbounded-wait",
      "unchecked-io"};
  return kRules;
}

bool suppressed(const SourceFile& f, const Finding& finding) {
  for (int line : {finding.line, finding.line - 1}) {
    auto it = f.allow.find(line);
    if (it == f.allow.end()) continue;
    if (it->second.count(finding.rule) || it->second.count("all"))
      return true;
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".c";
}

int usage() {
  std::fprintf(stderr,
               "usage: shalom_lint [--format=text|json] [--design=PATH] "
               "[--list-rules] <file-or-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string design_path = "DESIGN.md";
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage();
    } else if (arg.rfind("--design=", 0) == 0) {
      design_path = arg.substr(9);
    } else if (arg == "--list-rules") {
      for (const std::string& r : all_rules()) std::printf("%s\n", r.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (auto it = fs::recursive_directory_iterator(in, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && scannable(it->path()))
          files.push_back(it->path().string());
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "shalom_lint: cannot read '%s'\n", in.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::string design_text;
  {
    std::ifstream d(design_path);
    if (d) {
      std::ostringstream ss;
      ss << d.rdbuf();
      design_text = ss.str();
    }
  }

  std::vector<Finding> findings;
  for (const std::string& path : files) {
    SourceFile f;
    f.path = path;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "shalom_lint: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    f.text = ss.str();
    scan_file(f);

    std::vector<Finding> file_findings;
    rule_atomic_memory_order(f, file_findings);
    rule_raw_alloc(f, file_findings);
    rule_env_access(f, file_findings);
    rule_fault_site_documented(f, design_text, design_path, file_findings);
    rule_nondeterminism(f, file_findings);
    rule_capi_exception_boundary(f, file_findings);
    rule_signal_handler_safety(f, file_findings);
    rule_unbounded_wait(f, file_findings);
    rule_unchecked_io(f, file_findings);

    for (Finding& fnd : file_findings)
      if (!suppressed(f, fnd)) findings.push_back(std::move(fnd));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  if (format == "json") {
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& fnd = findings[i];
      std::printf(
          "%s\n  {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", "
          "\"message\": \"%s\"}",
          i ? "," : "", json_escape(fnd.file).c_str(), fnd.line,
          json_escape(fnd.rule).c_str(), json_escape(fnd.message).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
  } else {
    for (const Finding& fnd : findings)
      std::printf("%s:%d: [%s] %s\n", fnd.file.c_str(), fnd.line,
                  fnd.rule.c_str(), fnd.message.c_str());
    if (!findings.empty())
      std::fprintf(stderr, "shalom_lint: %zu finding(s)\n", findings.size());
  }
  return findings.empty() ? 0 : 1;
}
