// Lexer and whole-program extraction passes (see lint_model.h).
#include "lint_model.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>

namespace shalom_lint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int line_of(const SourceFile& f, std::size_t pos) {
  auto it = std::upper_bound(f.line_start.begin(), f.line_start.end(), pos);
  return static_cast<int>(it - f.line_start.begin());
}

std::size_t find_word(const std::string& code, const std::string& word,
                      std::size_t from) {
  std::size_t p = code.find(word, from);
  while (p != std::string::npos) {
    const bool left_ok = p == 0 || !is_ident(code[p - 1]);
    const std::size_t end = p + word.size();
    const bool right_ok = end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) return p;
    p = code.find(word, p + 1);
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& code, std::size_t p) {
  while (p < code.size() &&
         std::isspace(static_cast<unsigned char>(code[p])))
    ++p;
  return p;
}

std::size_t match_paren(const std::string& code, std::size_t open,
                        char oc, char cc) {
  int depth = 0;
  for (std::size_t p = open; p < code.size(); ++p) {
    if (code[p] == oc) ++depth;
    if (code[p] == cc && --depth == 0) return p + 1;
  }
  return std::string::npos;
}

std::string basename_of(const std::string& path) {
  return fs::path(path).filename().string();
}

bool text_mentions(const std::string& text, const std::string& word) {
  if (word.empty()) return false;
  std::size_t p = text.find(word);
  while (p != std::string::npos) {
    const bool left_ok = p == 0 || !is_ident(text[p - 1]);
    const std::size_t end = p + word.size();
    const bool right_ok = end >= text.size() || !is_ident(text[end]);
    if (left_ok && right_ok) return true;
    p = text.find(word, p + 1);
  }
  return false;
}

bool looks_like_site_name(const std::string& v) {
  bool saw_dot = false;
  bool part_empty = true;
  for (char c : v) {
    if (c == '.') {
      if (part_empty) return false;
      saw_dot = true;
      part_empty = true;
    } else if ((c >= 'a' && c <= 'z') || c == '_') {
      part_empty = false;
    } else {
      return false;
    }
  }
  return saw_dot && !part_empty;
}

BodyRange local_definition_range(const SourceFile& f,
                                 const std::string& name) {
  std::size_t p = find_word(f.code, name, 0);
  while (p != std::string::npos) {
    std::size_t open = skip_ws(f.code, p + name.size());
    if (open < f.code.size() && f.code[open] == '(') {
      const std::size_t close = match_paren(f.code, open);
      if (close != std::string::npos) {
        std::size_t q = skip_ws(f.code, close);
        // Skip trailing specifiers (noexcept, const, ...) including a
        // noexcept(...) argument.
        while (q < f.code.size() && is_ident(f.code[q])) {
          while (q < f.code.size() && is_ident(f.code[q])) ++q;
          q = skip_ws(f.code, q);
          if (q < f.code.size() && f.code[q] == '(') {
            const std::size_t c2 = match_paren(f.code, q);
            if (c2 == std::string::npos) break;
            q = skip_ws(f.code, c2);
          }
        }
        if (q < f.code.size() && f.code[q] == '{') {
          const std::size_t bend = match_paren(f.code, q, '{', '}');
          if (bend != std::string::npos) return BodyRange{q, bend};
        }
      }
    }
    p = find_word(f.code, name, p + 1);
  }
  return BodyRange{};
}

std::string local_definition_body(const SourceFile& f,
                                  const std::string& name) {
  const BodyRange r = local_definition_range(f, name);
  return r.found() ? f.code.substr(r.begin, r.end - r.begin) : "";
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

namespace {

void parse_allow(SourceFile& f, const std::string& comment, int line) {
  const std::string marker = "shalom-lint: allow(";
  std::size_t at = comment.find(marker);
  while (at != std::string::npos) {
    std::size_t p = at + marker.size();
    std::string name;
    for (; p < comment.size() && comment[p] != ')'; ++p) {
      const char c = comment[p];
      if (c == ',') {
        if (!name.empty()) f.allow[line].insert(name);
        name.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        name += c;
      }
    }
    if (!name.empty()) f.allow[line].insert(name);
    at = comment.find(marker, p);
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parses `shalom-lint: lock-order(A before B)` declarations out of a
/// comment. A and B are canonical mutex identities (exactly as lock-order
/// findings print them).
void parse_lock_order_decl(SourceFile& f, const std::string& comment,
                           int line) {
  const std::string marker = "shalom-lint: lock-order(";
  std::size_t at = comment.find(marker);
  while (at != std::string::npos) {
    const std::size_t open = at + marker.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) return;
    const std::string body = comment.substr(open, close - open);
    const std::size_t sep = body.find(" before ");
    if (sep != std::string::npos) {
      LockOrderDecl d;
      d.before = trim(body.substr(0, sep));
      d.after = trim(body.substr(sep + 8));
      d.file = f.path;
      d.line = line;
      if (!d.before.empty() && !d.after.empty())
        f.lock_decls.push_back(std::move(d));
    }
    at = comment.find(marker, close);
  }
}

void parse_comment(SourceFile& f, const std::string& comment, int line) {
  parse_allow(f, comment, line);
  parse_lock_order_decl(f, comment, line);
}

}  // namespace

void scan_file(SourceFile& f) {
  const std::string& s = f.text;
  f.code.assign(s.size(), ' ');
  f.line_start.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s[i] == '\n') {
      f.code[i] = '\n';
      if (i + 1 < s.size()) f.line_start.push_back(i + 1);
    }

  std::size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    // Line comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t j = i;
      while (j < s.size() && s[j] != '\n') ++j;
      parse_comment(f, s.substr(i, j - i), line_of(f, i));
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      std::size_t j = s.find("*/", i + 2);
      if (j == std::string::npos) j = s.size(); else j += 2;
      // A block comment may span lines; register annotations on the line
      // it starts on.
      parse_comment(f, s.substr(i, j - i), line_of(f, i));
      i = j;
      continue;
    }
    // Raw string literal: (optional prefix)R"delim( ... )delim".
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"' &&
        (i == 0 || !is_ident(s[i - 1]))) {
      std::size_t dstart = i + 2;
      std::size_t dend = dstart;
      while (dend < s.size() && s[dend] != '(') ++dend;
      const std::string delim = s.substr(dstart, dend - dstart);
      const std::string close = ")" + delim + "\"";
      const std::size_t at = s.find(close, dend + 1);
      const std::size_t vend = (at == std::string::npos) ? s.size() : at;
      f.strings.push_back(
          {line_of(f, i), i, s.substr(dend + 1, vend - (dend + 1))});
      i = (at == std::string::npos) ? s.size() : at + close.size();
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      std::size_t j = i + 1;
      std::string value;
      while (j < s.size() && s[j] != '"' && s[j] != '\n') {
        if (s[j] == '\\' && j + 1 < s.size()) {
          value += s[j];
          value += s[j + 1];
          j += 2;
        } else {
          value += s[j];
          ++j;
        }
      }
      f.strings.push_back({line_of(f, i), i, value});
      f.code[i] = '"';
      // Keep a literal "C" visible so `extern "C"` stays recognizable in
      // the blanked view; all other literal content is blanked.
      if (value == "C" && j == i + 2) f.code[i + 1] = 'C';
      if (j < s.size() && s[j] == '"') {
        f.code[j] = '"';
        ++j;
      }
      i = j;
      continue;
    }
    // Character literal (skip so '"' or '//' inside cannot confuse us).
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != '\'' && s[j] != '\n') {
        if (s[j] == '\\') ++j;
        ++j;
      }
      i = (j < s.size()) ? j + 1 : j;
      continue;
    }
    f.code[i] = c;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Extraction: mutex acquisitions and lexical nesting
// ---------------------------------------------------------------------------

namespace {

/// Canonical mutex identity of a MutexLock constructor argument:
/// whitespace removed, subscripts stripped (shards[s].mu and shards[t].mu
/// are the same lock *class*, which is what an ordering hierarchy ranks),
/// leading `this->` dropped. Identities are matched program-wide by this
/// text; two unrelated mutexes that normalize to the same expression
/// unify, which can only add edges (reviewed via the witness path and
/// suppressible per edge).
std::string normalize_mutex_expr(const std::string& raw) {
  std::string out;
  int bracket = 0;
  for (char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '[') {
      ++bracket;
      continue;
    }
    if (c == ']') {
      if (bracket > 0) --bracket;
      continue;
    }
    if (bracket > 0) continue;
    out += c;
  }
  if (out.rfind("this->", 0) == 0) out = out.substr(6);
  if (out.empty()) return "";
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (!is_ident(c) && c != '.' && c != ':' && c != '-' && c != '>')
      return "";  // expressions with calls/commas are not identities
  }
  return out;
}

struct LockAcq {
  std::string mutex;
  std::size_t pos = 0;        // offset of the MutexLock token
  std::size_t scope_end = 0;  // one past the enclosing block's close brace
  int line = 0;
};

/// Collects `MutexLock <var>(<expr>);` acquisitions in one file together
/// with the end of each one's enclosing lexical scope. The MutexLock
/// class definition itself (constructor declarations, deleted copies)
/// does not match: a use site always has a variable name between the
/// type and the argument list.
std::vector<LockAcq> extract_lock_acquisitions(const SourceFile& f) {
  std::vector<LockAcq> acqs;
  std::size_t p = find_word(f.code, "MutexLock", 0);
  while (p != std::string::npos) {
    const std::size_t at = p;
    p = find_word(f.code, "MutexLock", p + 1);
    std::size_t q = skip_ws(f.code, at + 9);
    // Variable name (required: filters constructor declarations).
    std::size_t name_end = q;
    while (name_end < f.code.size() && is_ident(f.code[name_end]))
      ++name_end;
    if (name_end == q) continue;
    std::size_t open = skip_ws(f.code, name_end);
    if (open >= f.code.size() || f.code[open] != '(') continue;
    const std::size_t close = match_paren(f.code, open);
    if (close == std::string::npos) continue;
    const std::string id = normalize_mutex_expr(
        f.code.substr(open + 1, close - open - 2));
    if (id.empty()) continue;
    LockAcq a;
    a.mutex = id;
    a.pos = at;
    a.line = line_of(f, at);
    acqs.push_back(std::move(a));
  }
  if (acqs.empty()) return acqs;
  // One pass over the file resolves each acquisition's enclosing block:
  // scope end = the matching close brace of the innermost '{' open at the
  // acquisition site (the MutexLock destructor runs there).
  std::vector<std::size_t> brace_stack;
  std::size_t next = 0;
  for (std::size_t i = 0; i < f.code.size() && next < acqs.size(); ++i) {
    while (next < acqs.size() && acqs[next].pos == i) {
      if (brace_stack.empty()) {
        acqs[next].scope_end = 0;  // file scope: drop below
      } else {
        const std::size_t e =
            match_paren(f.code, brace_stack.back(), '{', '}');
        acqs[next].scope_end = (e == std::string::npos) ? f.code.size() : e;
      }
      ++next;
    }
    if (f.code[i] == '{') brace_stack.push_back(i);
    if (f.code[i] == '}' && !brace_stack.empty()) brace_stack.pop_back();
  }
  acqs.erase(std::remove_if(acqs.begin(), acqs.end(),
                            [](const LockAcq& a) { return a.scope_end == 0; }),
             acqs.end());
  return acqs;
}

bool edge_suppressed(const SourceFile& f, int inner_line) {
  for (int line : {inner_line, inner_line - 1}) {
    auto it = f.allow.find(line);
    if (it == f.allow.end()) continue;
    if (it->second.count("lock-order") || it->second.count("all"))
      return true;
  }
  return false;
}

void extract_lock_edges(const SourceFile& f, Program& p) {
  const std::vector<LockAcq> acqs = extract_lock_acquisitions(f);
  for (std::size_t i = 0; i < acqs.size(); ++i) {
    for (std::size_t j = 0; j < acqs.size(); ++j) {
      if (i == j) continue;
      const LockAcq& outer = acqs[i];
      const LockAcq& inner = acqs[j];
      if (!(outer.pos < inner.pos && inner.pos < outer.scope_end)) continue;
      if (edge_suppressed(f, inner.line)) continue;
      const bool dup =
          std::any_of(p.lock_edges.begin(), p.lock_edges.end(),
                      [&](const LockEdge& e) {
                        return e.outer == outer.mutex &&
                               e.inner == inner.mutex;
                      });
      if (dup) continue;
      LockEdge e;
      e.outer = outer.mutex;
      e.inner = inner.mutex;
      e.file = f.path;
      e.outer_line = outer.line;
      e.inner_line = inner.line;
      p.lock_edges.push_back(std::move(e));
    }
  }
}

// ---------------------------------------------------------------------------
// Extraction: atomic operations
// ---------------------------------------------------------------------------

const char* const kAtomicMethods[] = {
    "load",          "store",         "exchange",
    "fetch_add",     "fetch_sub",     "fetch_and",
    "fetch_or",      "fetch_xor",     "compare_exchange_weak",
    "compare_exchange_strong"};

/// Receiver identity of a member call whose method name starts at `at`:
/// the last identifier of the receiver chain with trailing subscripts
/// skipped (g_state[i].load -> g_state, impl_->total_size.fetch_add ->
/// total_size). "" when the receiver is not a plain identifier.
std::string atomic_receiver(const std::string& code, std::size_t at) {
  if (at == 0) return "";
  std::size_t e = at - 1;  // at '.' or '>'
  if (code[e] == '>') {
    if (e == 0 || code[e - 1] != '-') return "";
    --e;  // at '-'
  } else if (code[e] != '.') {
    return "";
  }
  // e is the index of '.' or '-'; walk left past whitespace/subscripts.
  while (e > 0) {
    const char c = code[e - 1];
    if (std::isspace(static_cast<unsigned char>(c))) {
      --e;
    } else if (c == ']') {
      int depth = 0;
      std::size_t q = e - 1;
      for (;;) {
        if (code[q] == ']') ++depth;
        if (code[q] == '[' && --depth == 0) break;
        if (q == 0) return "";
        --q;
      }
      e = q;
    } else {
      break;
    }
  }
  std::size_t s = e;
  while (s > 0 && is_ident(code[s - 1])) --s;
  if (s == e) return "";
  return code.substr(s, e - s);
}

void extract_atomics(const SourceFile& f, Program& p) {
  static const char* const kRelease[] = {"memory_order_release",
                                         "memory_order_acq_rel",
                                         "memory_order_seq_cst"};
  static const char* const kAcquire[] = {"memory_order_acquire",
                                         "memory_order_acq_rel",
                                         "memory_order_seq_cst"};
  for (const char* m : kAtomicMethods) {
    std::size_t q = find_word(f.code, m, 0);
    while (q != std::string::npos) {
      const std::size_t at = q;
      q = find_word(f.code, m, q + 1);
      const bool member =
          (at >= 1 && f.code[at - 1] == '.') ||
          (at >= 2 && f.code[at - 2] == '-' && f.code[at - 1] == '>');
      if (!member) continue;
      const std::size_t open = skip_ws(f.code, at + std::strlen(m));
      if (open >= f.code.size() || f.code[open] != '(') continue;
      const std::size_t close = match_paren(f.code, open);
      const std::string args = close == std::string::npos
                                   ? f.code.substr(open)
                                   : f.code.substr(open, close - open);
      if (args.find("memory_order") == std::string::npos) continue;
      bool has_release = false;
      bool has_acquire = false;
      for (const char* o : kRelease)
        if (find_word(args, o, 0) != std::string::npos) has_release = true;
      for (const char* o : kAcquire)
        if (find_word(args, o, 0) != std::string::npos) has_acquire = true;
      AtomicOp op;
      op.method = m;
      op.is_load = std::strcmp(m, "load") == 0;
      const bool is_store = std::strcmp(m, "store") == 0;
      op.write_release = !op.is_load && has_release;
      op.read_acquire = !is_store && has_acquire;
      if (!op.write_release && !op.read_acquire) continue;
      op.var = atomic_receiver(f.code, at);
      if (op.var.empty()) continue;
      op.file = f.path;
      op.line = line_of(f, at);
      p.atomics.push_back(std::move(op));
    }
  }
}

// ---------------------------------------------------------------------------
// Extraction: registries (fault sites, status codes, counters, env keys)
// ---------------------------------------------------------------------------

/// Fault sites are defined by the site_name() switch: every site-looking
/// literal inside that function's body, labelled with the nearest
/// preceding Site:: enum constant.
void extract_fault_sites(const SourceFile& f, Program& p) {
  const BodyRange body = local_definition_range(f, "site_name");
  if (!body.found()) return;
  // Site:: enum constants in body order.
  std::vector<std::pair<std::size_t, std::string>> constants;
  std::size_t q = find_word(f.code, "Site", body.begin);
  while (q != std::string::npos && q < body.end) {
    std::size_t r = skip_ws(f.code, q + 4);
    if (r + 1 < f.code.size() && f.code[r] == ':' && f.code[r + 1] == ':') {
      r = skip_ws(f.code, r + 2);
      std::size_t e = r;
      while (e < f.code.size() && is_ident(f.code[e])) ++e;
      if (e > r) constants.emplace_back(q, f.code.substr(r, e - r));
    }
    q = find_word(f.code, "Site", q + 1);
  }
  for (const StringLiteral& lit : f.strings) {
    if (lit.pos <= body.begin || lit.pos >= body.end) continue;
    if (!looks_like_site_name(lit.value)) continue;
    SiteDef d;
    d.name = lit.value;
    for (const auto& c : constants)
      if (c.first < lit.pos) d.enum_name = c.second;
    d.file = f.path;
    d.line = lit.line;
    p.fault_sites.push_back(std::move(d));
  }
}

bool is_status_code_name(const std::string& s) {
  if (s.rfind("SHALOM_", 0) != 0 || s.size() <= 7) return false;
  for (char c : s)
    if (!(std::isupper(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  return true;
}

/// Status codes come from the `enum shalom_status { ... }` definition.
void extract_status_codes(const SourceFile& f, Program& p) {
  std::size_t q = find_word(f.code, "shalom_status", 0);
  while (q != std::string::npos) {
    const std::size_t at = q;
    q = find_word(f.code, "shalom_status", q + 1);
    // Must be `enum shalom_status {`: previous token "enum", next "{".
    std::size_t b = at;
    while (b > 0 && std::isspace(static_cast<unsigned char>(f.code[b - 1])))
      --b;
    std::size_t bs = b;
    while (bs > 0 && is_ident(f.code[bs - 1])) --bs;
    if (f.code.substr(bs, b - bs) != "enum") continue;
    const std::size_t open = skip_ws(f.code, at + 13);
    if (open >= f.code.size() || f.code[open] != '{') continue;
    const std::size_t close = match_paren(f.code, open, '{', '}');
    const std::size_t end =
        close == std::string::npos ? f.code.size() : close;
    std::size_t i = open;
    while (i < end) {
      if (is_ident(f.code[i]) && (i == 0 || !is_ident(f.code[i - 1]))) {
        std::size_t e = i;
        while (e < end && is_ident(f.code[e])) ++e;
        const std::string name = f.code.substr(i, e - i);
        const std::size_t eq = skip_ws(f.code, e);
        if (is_status_code_name(name) && eq < end && f.code[eq] == '=') {
          CodeDef d;
          d.name = name;
          d.file = f.path;
          d.line = line_of(f, i);
          p.status_codes.push_back(std::move(d));
        }
        i = e;
      } else {
        ++i;
      }
    }
    return;  // one definition per program
  }
}

/// strerror coverage: `case SHALOM_*` labels inside status_string() or
/// shalom_strerror() definitions.
void extract_strerror_entries(const SourceFile& f, Program& p) {
  for (const char* fn : {"status_string", "shalom_strerror"}) {
    const BodyRange body = local_definition_range(f, fn);
    if (!body.found()) continue;
    std::size_t q = find_word(f.code, "case", body.begin);
    while (q != std::string::npos && q < body.end) {
      std::size_t r = skip_ws(f.code, q + 4);
      std::size_t e = r;
      while (e < f.code.size() && is_ident(f.code[e])) ++e;
      const std::string name = f.code.substr(r, e - r);
      if (is_status_code_name(name)) p.strerror_codes.insert(name);
      q = find_word(f.code, "case", q + 1);
    }
  }
}

/// robustness counters: uint64_t fields of the RobustnessStats struct.
void extract_stats_counters(const SourceFile& f, Program& p) {
  std::size_t q = find_word(f.code, "RobustnessStats", 0);
  while (q != std::string::npos) {
    const std::size_t at = q;
    q = find_word(f.code, "RobustnessStats", q + 1);
    std::size_t b = at;
    while (b > 0 && std::isspace(static_cast<unsigned char>(f.code[b - 1])))
      --b;
    std::size_t bs = b;
    while (bs > 0 && is_ident(f.code[bs - 1])) --bs;
    if (f.code.substr(bs, b - bs) != "struct") continue;
    const std::size_t open = skip_ws(f.code, at + 15);
    if (open >= f.code.size() || f.code[open] != '{') continue;
    const std::size_t close = match_paren(f.code, open, '{', '}');
    const std::size_t end =
        close == std::string::npos ? f.code.size() : close;
    std::size_t i = find_word(f.code, "uint64_t", open);
    while (i != std::string::npos && i < end) {
      std::size_t r = skip_ws(f.code, i + 8);
      std::size_t e = r;
      while (e < f.code.size() && is_ident(f.code[e])) ++e;
      if (e > r) {
        CounterDef d;
        d.name = f.code.substr(r, e - r);
        d.file = f.path;
        d.line = line_of(f, r);
        p.stats_counters.push_back(std::move(d));
      }
      i = find_word(f.code, "uint64_t", i + 1);
    }
    return;
  }
}

bool is_env_key(const std::string& s) {
  if (s.rfind("SHALOM_", 0) != 0 || s.size() <= 7) return false;
  for (char c : s)
    if (!(std::isupper(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_'))
      return false;
  return true;
}

void extract_env_keys(const SourceFile& f, Program& p) {
  for (const StringLiteral& lit : f.strings) {
    if (!is_env_key(lit.value)) continue;
    const bool seen =
        std::any_of(p.env_keys.begin(), p.env_keys.end(),
                    [&](const EnvKeyUse& k) { return k.name == lit.value; });
    if (seen) continue;
    p.env_keys.push_back({lit.value, f.path, lit.line});
  }
}

}  // namespace

void extract_program(Program& p) {
  for (const SourceFile& f : p.files) {
    extract_lock_edges(f, p);
    extract_atomics(f, p);
    extract_fault_sites(f, p);
    if (p.status_codes.empty()) extract_status_codes(f, p);
    extract_strerror_entries(f, p);
    if (p.stats_counters.empty()) extract_stats_counters(f, p);
    extract_env_keys(f, p);
    for (const LockOrderDecl& d : f.lock_decls) p.lock_decls.push_back(d);
  }
}

}  // namespace shalom_lint
