// Per-file rule families, ported onto the shared whole-program model
// (lint_model.h). Behavior is unchanged from the original single-file
// analyzer; only the lexer/helpers moved into lint_model.cpp.
#include "lint_model.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace shalom_lint {

namespace {

void rule_atomic_memory_order(const SourceFile& f,
                              std::vector<Finding>& out) {
  static const char* kMethods[] = {
      "load",          "store",         "exchange",
      "fetch_add",     "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",     "compare_exchange_weak",
      "compare_exchange_strong"};
  for (const char* m : kMethods) {
    std::size_t p = find_word(f.code, m, 0);
    while (p != std::string::npos) {
      // Member-call context only: `.load(` or `->load(`.
      const bool member =
          (p >= 1 && f.code[p - 1] == '.') ||
          (p >= 2 && f.code[p - 2] == '-' && f.code[p - 1] == '>');
      std::size_t open = skip_ws(f.code, p + std::strlen(m));
      if (member && open < f.code.size() && f.code[open] == '(') {
        const std::size_t close = match_paren(f.code, open);
        const std::string args =
            close == std::string::npos
                ? f.code.substr(open)
                : f.code.substr(open, close - open);
        if (args.find("memory_order") == std::string::npos) {
          out.push_back({f.path, line_of(f, p), "atomic-memory-order",
                         std::string("atomic ") + m +
                             "() without an explicit std::memory_order "
                             "(implicit seq_cst; state and justify the "
                             "required order instead)"});
        }
      }
      p = find_word(f.code, m, p + 1);
    }
  }
}

void rule_raw_alloc(const SourceFile& f, std::vector<Finding>& out) {
  const std::string base = basename_of(f.path);
  if (base.rfind("aligned_buffer", 0) == 0) return;  // sanctioned site
  static const char* kFns[] = {"malloc",         "calloc",  "realloc",
                               "posix_memalign", "aligned_alloc",
                               "valloc",         "memalign"};
  for (const char* fn : kFns) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      const std::size_t after = skip_ws(f.code, p + std::strlen(fn));
      if (after < f.code.size() && f.code[after] == '(') {
        out.push_back({f.path, line_of(f, p), "raw-alloc",
                       std::string(fn) +
                           "() outside common/aligned_buffer.*: all "
                           "allocations go through AlignedBuffer"});
      }
      p = find_word(f.code, fn, p + 1);
    }
  }
  // Array new: `new T[n]` (placement parens are skipped first).
  std::size_t p = find_word(f.code, "new", 0);
  while (p != std::string::npos) {
    std::size_t q = skip_ws(f.code, p + 3);
    if (q < f.code.size() && f.code[q] == '(') {  // placement arguments
      const std::size_t close = match_paren(f.code, q);
      if (close == std::string::npos) break;
      q = skip_ws(f.code, close);
    }
    while (q < f.code.size() &&
           (is_ident(f.code[q]) || f.code[q] == ':' || f.code[q] == '<' ||
            f.code[q] == '>' || f.code[q] == ',' || f.code[q] == '*' ||
            f.code[q] == ' '))
      ++q;
    if (q < f.code.size() && f.code[q] == '[') {
      out.push_back({f.path, line_of(f, p), "raw-alloc",
                     "array new[] outside common/aligned_buffer.*: all "
                     "allocations go through AlignedBuffer"});
    }
    p = find_word(f.code, "new", p + 1);
  }
}

void rule_env_access(const SourceFile& f, std::vector<Finding>& out) {
  if (basename_of(f.path) == "error.cpp") return;  // env:: helpers live here
  for (const char* fn : {"getenv", "secure_getenv"}) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      out.push_back({f.path, line_of(f, p), "env-access",
                     std::string(fn) +
                         " outside common/error.cpp: read the environment "
                         "through the shalom::env:: helpers so malformed "
                         "values warn once and fall back"});
      p = find_word(f.code, fn, p + 1);
    }
  }
}

/// True when the identifier at `p` is member-accessed (`x.rand(`) or
/// qualified by something other than std:: (`BsrMatrix<T>::random(`): a
/// repo-defined function that merely shares a libc name, not libc itself
/// (libc functions appear bare or std::-qualified).
bool non_libc_context(const std::string& code, std::size_t p) {
  if (p >= 1 && code[p - 1] == '.') return true;
  if (p >= 2 && code[p - 2] == '-' && code[p - 1] == '>') return true;
  if (p >= 2 && code[p - 2] == ':' && code[p - 1] == ':') {
    std::size_t e = p - 2;
    std::size_t s = e;
    while (s > 0 && is_ident(code[s - 1])) --s;
    return code.substr(s, e - s) != "std";
  }
  return false;
}

void rule_nondeterminism(const SourceFile& f, std::vector<Finding>& out) {
  for (const char* fn : {"rand", "srand", "rand_r", "drand48", "random"}) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      const std::size_t after = skip_ws(f.code, p + std::strlen(fn));
      if (after < f.code.size() && f.code[after] == '(' &&
          !non_libc_context(f.code, p)) {
        out.push_back({f.path, line_of(f, p), "nondeterminism",
                       std::string(fn) +
                           "() is nondeterministic across runs; use the "
                           "seeded generators in common/rng.h"});
      }
      p = find_word(f.code, fn, p + 1);
    }
  }
  std::size_t p = find_word(f.code, "time", 0);
  while (p != std::string::npos) {
    const std::size_t open = skip_ws(f.code, p + 4);
    if (open < f.code.size() && f.code[open] == '(') {
      const std::size_t close = match_paren(f.code, open);
      if (close != std::string::npos) {
        std::string arg = f.code.substr(open + 1, close - open - 2);
        arg.erase(std::remove_if(arg.begin(), arg.end(),
                                 [](unsigned char c) {
                                   return std::isspace(c);
                                 }),
                  arg.end());
        if (arg == "nullptr" || arg == "NULL" || arg == "0") {
          out.push_back({f.path, line_of(f, p), "nondeterminism",
                         "time(" + arg +
                             ") seeding is nondeterministic across runs; "
                             "use the seeded generators in common/rng.h"});
        }
      }
    }
    p = find_word(f.code, "time", p + 1);
  }
}

void rule_fault_site_documented(const SourceFile& f,
                                const std::string& design_text,
                                const std::string& design_path,
                                std::vector<Finding>& out) {
  if (f.code.find("fault::Site") == std::string::npos &&
      find_word(f.code, "site" "_name", 0) == std::string::npos)
    return;
  for (const StringLiteral& lit : f.strings) {
    if (!looks_like_site_name(lit.value)) continue;
    if (design_text.empty()) {
      out.push_back({f.path, lit.line, "fault-site-documented",
                     "fault site \"" + lit.value +
                         "\" cannot be checked: design file '" +
                         design_path + "' is missing or unreadable"});
    } else if (design_text.find(lit.value) == std::string::npos) {
      out.push_back({f.path, lit.line, "fault-site-documented",
                     "fault site \"" + lit.value +
                         "\" is not documented in the site->fallback "
                         "matrix of " +
                         design_path});
    }
  }
}

bool body_has_translator(const std::string& body) {
  return body.find("fail_current_exception") != std::string::npos ||
         find_word(body, "catch", 0) != std::string::npos;
}

void rule_capi_exception_boundary(const SourceFile& f,
                                  std::vector<Finding>& out) {
  std::size_t p = f.code.find("extern \"C\"");
  while (p != std::string::npos) {
    std::size_t q = skip_ws(f.code, p + 10);
    // Collect the declarator up to the parameter list.
    const std::size_t decl_start = q;
    while (q < f.code.size() && f.code[q] != '(' && f.code[q] != ';' &&
           f.code[q] != '{')
      ++q;
    if (q >= f.code.size() || f.code[q] != '(') {
      p = f.code.find("extern \"C\"", p + 1);
      continue;  // extern "C" { ... } block or variable: out of scope
    }
    const std::string decl = f.code.substr(decl_start, q - decl_start);
    const std::size_t close = match_paren(f.code, q);
    if (close == std::string::npos) break;
    std::size_t r = skip_ws(f.code, close);
    while (r < f.code.size() && is_ident(f.code[r])) {  // noexcept etc.
      while (r < f.code.size() && is_ident(f.code[r])) ++r;
      r = skip_ws(f.code, r);
    }
    if (r < f.code.size() && f.code[r] == '{') {
      // Definition. Return type = declarator minus the trailing name.
      std::size_t name_end = decl.size();
      while (name_end > 0 &&
             std::isspace(static_cast<unsigned char>(decl[name_end - 1])))
        --name_end;
      std::size_t name_start = name_end;
      while (name_start > 0 && is_ident(decl[name_start - 1])) --name_start;
      const std::string name = decl.substr(name_start, name_end - name_start);
      std::string ret = decl.substr(0, name_start);
      // Normalize whitespace.
      std::string ret_norm;
      for (char c : ret)
        if (!std::isspace(static_cast<unsigned char>(c))) ret_norm += c;
      if (ret_norm == "int" || ret_norm == "shalom_status") {
        const std::size_t bend = match_paren(f.code, r, '{', '}');
        const std::string body =
            bend == std::string::npos ? f.code.substr(r)
                                      : f.code.substr(r, bend - r);
        bool ok = body_has_translator(body);
        if (!ok) {
          // One level of delegation: a body that calls a same-file
          // helper containing the translator is wrapped transitively
          // (the shalom_sgemm -> gemm_c pattern).
          std::size_t cp = 0;
          while (!ok && cp < body.size()) {
            if (is_ident(body[cp]) && (cp == 0 || !is_ident(body[cp - 1]))) {
              std::size_t ce = cp;
              while (ce < body.size() && is_ident(body[ce])) ++ce;
              const std::string callee = body.substr(cp, ce - cp);
              const std::size_t paren = skip_ws(body, ce);
              if (paren < body.size() && body[paren] == '(' &&
                  callee != name && callee != "if" && callee != "while" &&
                  callee != "for" && callee != "switch" &&
                  callee != "return" && callee != "sizeof") {
                const std::string def = local_definition_body(f, callee);
                if (!def.empty() && body_has_translator(def)) ok = true;
              }
              cp = ce;
            } else {
              ++cp;
            }
          }
        }
        if (!ok) {
          out.push_back(
              {f.path, line_of(f, p), "capi-exception-boundary",
               "extern \"C\" entry point '" + name +
                   "' returns a status but is not wrapped in the "
                   "catch-all status translator (fail_current_exception) "
                   "- an exception here would cross the C ABI"});
        }
      }
    }
    p = f.code.find("extern \"C\"", p + 1);
  }
}

/// Trailing identifier of a handler expression (`trap_handler`,
/// `&trap_handler`, `ns::handler` -> `handler`); "" when the expression
/// is a sentinel disposition (SIG_DFL/SIG_IGN/nullptr/NULL) or not an
/// identifier at all.
std::string handler_root_of(const std::string& expr) {
  std::size_t end = expr.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(expr[end - 1])))
    --end;
  std::size_t start = end;
  while (start > 0 && is_ident(expr[start - 1])) --start;
  const std::string name = expr.substr(start, end - start);
  if (name.empty() || name == "SIG_DFL" || name == "SIG_IGN" ||
      name == "nullptr" || name == "NULL" ||
      std::isdigit(static_cast<unsigned char>(name[0])))
    return "";
  return name;
}

/// Handler roots registered in this file: identifiers assigned to a
/// .sa_handler/.sa_sigaction field or passed as the second argument of
/// signal().
std::set<std::string> handler_roots(const SourceFile& f) {
  std::set<std::string> roots;
  for (const char* field : {"sa_handler", "sa_sigaction"}) {
    std::size_t p = find_word(f.code, field, 0);
    while (p != std::string::npos) {
      const std::size_t q = skip_ws(f.code, p + std::strlen(field));
      if (q < f.code.size() && f.code[q] == '=' &&
          (q + 1 >= f.code.size() || f.code[q + 1] != '=')) {
        std::size_t sc = f.code.find(';', q);
        if (sc == std::string::npos) sc = f.code.size();
        const std::string name =
            handler_root_of(f.code.substr(q + 1, sc - q - 1));
        if (!name.empty()) roots.insert(name);
      }
      p = find_word(f.code, field, p + 1);
    }
  }
  std::size_t p = find_word(f.code, "signal", 0);
  while (p != std::string::npos) {
    const std::size_t open = skip_ws(f.code, p + 6);
    if (open < f.code.size() && f.code[open] == '(') {
      const std::size_t close = match_paren(f.code, open);
      if (close != std::string::npos) {
        // Second top-level argument of signal(sig, handler).
        std::size_t comma = std::string::npos;
        int depth = 0;
        for (std::size_t i = open + 1; i + 1 < close; ++i) {
          const char c = f.code[i];
          if (c == '(') ++depth;
          if (c == ')') --depth;
          if (c == ',' && depth == 0) {
            comma = i;
            break;
          }
        }
        if (comma != std::string::npos) {
          const std::string name = handler_root_of(
              f.code.substr(comma + 1, (close - 1) - (comma + 1)));
          if (!name.empty()) roots.insert(name);
        }
      }
    }
    p = find_word(f.code, "signal", p + 1);
  }
  return roots;
}

/// Reports non-async-signal-safe constructs inside [begin, end) of
/// f.code, attributing each to the handler root it is reachable from.
void scan_handler_range(const SourceFile& f, const std::string& root,
                        std::size_t begin, std::size_t end,
                        std::vector<Finding>& out) {
  // Functions POSIX does not list as async-signal-safe that this codebase
  // could plausibly reach: the malloc family, stdio, and exit. raise,
  // signal and siglongjmp are deliberately absent - they are the
  // sanctioned handler vocabulary (see common/guard.cpp).
  static const char* kBannedCalls[] = {
      "malloc", "calloc",   "realloc",   "free",   "printf",
      "fprintf", "sprintf", "snprintf",  "vsnprintf", "puts",
      "fputs",  "fwrite",   "fflush",    "fopen",  "fclose",
      "exit",   "lock",     "unlock",    "try_lock"};
  for (const char* fn : kBannedCalls) {
    std::size_t p = find_word(f.code, fn, begin);
    while (p != std::string::npos && p < end) {
      const std::size_t after = skip_ws(f.code, p + std::strlen(fn));
      if (after < end && f.code[after] == '(') {
        out.push_back(
            {f.path, line_of(f, p), "signal-handler-safety",
             std::string("call to ") + fn +
                 "() is not async-signal-safe but is reachable from "
                 "signal handler '" +
                 root +
                 "': handlers may only use sig_atomic_t stores, "
                 "siglongjmp and re-raise"});
      }
      p = find_word(f.code, fn, p + 1);
    }
  }
  // Keywords that allocate or unwind, and locking primitives whose mere
  // presence (RAII construction) can self-deadlock under a handler.
  static const char* kBannedWords[] = {"new",         "delete",
                                       "throw",       "lock_guard",
                                       "unique_lock", "MutexLock",
                                       "Mutex",       "mutex"};
  for (const char* w : kBannedWords) {
    std::size_t p = find_word(f.code, w, begin);
    while (p != std::string::npos && p < end) {
      out.push_back(
          {f.path, line_of(f, p), "signal-handler-safety",
           std::string("'") + w +
               "' allocates, unwinds or locks inside code reachable "
               "from signal handler '" +
               root + "': handlers must stay async-signal-safe"});
      p = find_word(f.code, w, p + 1);
    }
  }
}

void rule_signal_handler_safety(const SourceFile& f,
                                std::vector<Finding>& out) {
  const std::set<std::string> roots = handler_roots(f);
  if (roots.empty()) return;
  static const std::set<std::string> kNotCallees = {
      "if",     "while",  "for", "switch", "return",
      "sizeof", "new",    "delete", "throw"};
  std::set<std::size_t> visited;  // body offsets already scanned
  for (const std::string& root : roots) {
    const BodyRange body = local_definition_range(f, root);
    if (!body.found()) continue;
    if (visited.insert(body.begin).second)
      scan_handler_range(f, root, body.begin, body.end, out);
    // One level of same-file callee expansion: a helper the handler calls
    // is handler code too (deeper chains are out of lexical reach).
    std::size_t cp = body.begin;
    while (cp < body.end) {
      if (is_ident(f.code[cp]) && (cp == 0 || !is_ident(f.code[cp - 1]))) {
        std::size_t ce = cp;
        while (ce < body.end && is_ident(f.code[ce])) ++ce;
        const std::string callee = f.code.substr(cp, ce - cp);
        const std::size_t paren = skip_ws(f.code, ce);
        if (paren < body.end && f.code[paren] == '(' && callee != root &&
            kNotCallees.count(callee) == 0) {
          const BodyRange cb = local_definition_range(f, callee);
          if (cb.found() && cb.begin != body.begin &&
              visited.insert(cb.begin).second)
            scan_handler_range(f, root, cb.begin, cb.end, out);
        }
        cp = ce;
      } else {
        ++cp;
      }
    }
  }
}

/// True when the whole-word token ending at (exclusive) `end` is `word`.
bool word_ends_at(const std::string& code, std::size_t end,
                  const char* word) {
  const std::size_t len = std::strlen(word);
  if (end < len) return false;
  const std::size_t start = end - len;
  if (code.compare(start, len, word) != 0) return false;
  return start == 0 || !is_ident(code[start - 1]);
}

void rule_unbounded_wait(const SourceFile& f, std::vector<Finding>& out) {
  std::size_t p = find_word(f.code, "wait", 0);
  while (p != std::string::npos) {
    const std::size_t at = p;
    p = find_word(f.code, "wait", p + 1);
    // Member-call context only: `.wait(` or `->wait(`.
    const bool member =
        (at >= 1 && f.code[at - 1] == '.') ||
        (at >= 2 && f.code[at - 2] == '-' && f.code[at - 1] == '>');
    if (!member) continue;
    const std::size_t open = skip_ws(f.code, at + 4);
    if (open >= f.code.size() || f.code[open] != '(') continue;
    const std::size_t close = match_paren(f.code, open);
    if (close == std::string::npos) continue;
    // Arity: a second top-level argument is a predicate - that form
    // re-checks its condition internally and is always safe.
    int depth = 0;
    int commas = 0;
    bool any_arg = false;
    for (std::size_t q = open + 1; q + 1 < close; ++q) {
      const char c = f.code[q];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth == 0 && c == ',') ++commas;
      if (!std::isspace(static_cast<unsigned char>(c))) any_arg = true;
    }
    if (!any_arg || commas > 0) continue;
    // Receiver: the immediate identifier before `.wait` must contain
    // "cv" (this repo's condition-variable naming convention), so
    // future.wait()-style calls on unrelated types stay out of scope.
    std::size_t recv_end = at - 1;  // at the '.' (or '>')
    if (f.code[recv_end] == '>') --recv_end;  // `->`: skip to the '-'
    std::size_t ident_end = recv_end;
    std::size_t ident_start = ident_end;
    while (ident_start > 0 && is_ident(f.code[ident_start - 1]))
      --ident_start;
    const std::string ident =
        f.code.substr(ident_start, ident_end - ident_start);
    if (ident.find("cv") == std::string::npos) continue;
    // Walk to the start of the full receiver expression
    // (`impl_->space_cv`, `r.cv`) so the while-check looks before it.
    std::size_t expr_start = ident_start;
    while (expr_start > 0) {
      const char c = f.code[expr_start - 1];
      if (is_ident(c) || c == '.' || c == ':') {
        --expr_start;
      } else if (c == '>' && expr_start >= 2 &&
                 f.code[expr_start - 2] == '-') {
        expr_start -= 2;
      } else {
        break;
      }
    }
    // Allowed form: the wait is the direct statement of a while loop -
    // the previous token is the `)` closing a `while (...)` condition.
    std::size_t before = expr_start;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(f.code[before - 1])))
      --before;
    bool guarded = false;
    if (before > 0 && f.code[before - 1] == ')') {
      int bdepth = 0;
      std::size_t q = before - 1;
      for (;;) {
        if (f.code[q] == ')') ++bdepth;
        if (f.code[q] == '(' && --bdepth == 0) break;
        if (q == 0) break;
        --q;
      }
      if (bdepth == 0) {
        std::size_t w = q;
        while (w > 0 &&
               std::isspace(static_cast<unsigned char>(f.code[w - 1])))
          --w;
        guarded = word_ends_at(f.code, w, "while");
      }
    }
    if (guarded) continue;
    out.push_back(
        {f.path, line_of(f, at), "unbounded-wait",
         "bare condition-variable wait on '" + ident +
             "' outside a `while (pred)` loop - a missed or spurious "
             "notify hangs it forever; guard it with the predicate "
             "loop or use a deadline form (wait_for/wait_until)"});
  }
}

void rule_unchecked_io(const SourceFile& f, std::vector<Finding>& out) {
  static const char* kFns[] = {"fread", "fwrite", "rename", "fsync",
                               "fclose"};
  for (const char* fn : kFns) {
    std::size_t p = find_word(f.code, fn, 0);
    while (p != std::string::npos) {
      const std::size_t at = p;
      p = find_word(f.code, fn, at + 1);
      const std::size_t open = skip_ws(f.code, at + std::strlen(fn));
      if (open >= f.code.size() || f.code[open] != '(') continue;
      // Member calls (`file.rename(`) are repo types, not libc.
      if ((at >= 1 && f.code[at - 1] == '.') ||
          (at >= 2 && f.code[at - 2] == '-' && f.code[at - 1] == '>'))
        continue;
      // Skip a std:: or global :: qualifier; any other qualifier
      // (`fs::rename`, `Io::fsync`) is a repo-defined name.
      std::size_t start = at;
      if (start >= 2 && f.code[start - 2] == ':' &&
          f.code[start - 1] == ':') {
        const std::size_t qe = start - 2;
        std::size_t qs = qe;
        while (qs > 0 && is_ident(f.code[qs - 1])) --qs;
        const std::string qual = f.code.substr(qs, qe - qs);
        if (!qual.empty() && qual != "std") continue;
        start = qs;
      }
      // The significant token before the call decides whether the
      // result is consumed.
      std::size_t b = start;
      while (b > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[b - 1])))
        --b;
      bool unchecked = false;
      if (b == 0) {
        unchecked = true;  // call is the first token of the file
      } else if (const char c = f.code[b - 1];
                 c == ';' || c == '{' || c == '}') {
        unchecked = true;  // bare statement: result dropped on the floor
      } else if (c == ')') {
        // Preceded by a close paren: either a cast (only `(void)` is a
        // sanctioned deliberate discard) or an unparenthesized
        // `if (...) fclose(f);` body - both discard unless (void).
        int depth = 0;
        std::size_t q = b - 1;
        for (;;) {
          if (f.code[q] == ')') ++depth;
          if (f.code[q] == '(' && --depth == 0) break;
          if (q == 0) break;
          --q;
        }
        std::string norm;
        for (std::size_t i = q; i < b; ++i)
          if (!std::isspace(static_cast<unsigned char>(f.code[i])))
            norm += f.code[i];
        unchecked = (norm != "(void)");
      } else if (is_ident(c)) {
        // `return fclose(f)` consumes the result; `else fclose(f);`
        // and `do fclose(f);` do not.
        std::size_t ws = b;
        while (ws > 0 && is_ident(f.code[ws - 1])) --ws;
        const std::string word = f.code.substr(ws, b - ws);
        unchecked = (word == "else" || word == "do");
      }
      // Everything else (`=`, `(`, `!`, `,`, comparison, `&&`, `||`,
      // `?`, `:`) feeds the result into an expression: checked.
      if (unchecked) {
        out.push_back(
            {f.path, line_of(f, at), "unchecked-io",
             std::string(fn) +
                 "() result is discarded - the return value is the only "
                 "error signal this I/O call has; check it (route file "
                 "I/O through a checked helper) or cast to (void) as a "
                 "deliberate, visible discard"});
      }
    }
  }
}

}  // namespace

void run_file_rules(const SourceFile& f, const std::string& design_text,
                    const std::string& design_path,
                    std::vector<Finding>& out) {
  rule_atomic_memory_order(f, out);
  rule_raw_alloc(f, out);
  rule_env_access(f, out);
  rule_fault_site_documented(f, design_text, design_path, out);
  rule_nondeterminism(f, out);
  rule_capi_exception_boundary(f, out);
  rule_signal_handler_safety(f, out);
  rule_unbounded_wait(f, out);
  rule_unchecked_io(f, out);
}

}  // namespace shalom_lint
