// Cross-TU rule families over the merged Program registries
// (lint_model.h): lock-order, atomic-pairing, registry-drift.
#include "lint_model.h"

#include <map>

namespace shalom_lint {

namespace {

std::string loc(const std::string& file, int line) {
  return file + ":" + std::to_string(line);
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// Enumerates every elementary cycle of the acquisition graph exactly
/// once (each cycle is discovered from its lexicographically smallest
/// node, and (outer, inner) edges are unique, so no rotation duplicates)
/// and reports it with the full witness path.
struct CycleFinder {
  const std::map<std::string, std::vector<const LockEdge*>>& adj;
  std::vector<Finding>& out;
  std::string start;
  std::vector<const LockEdge*> path;
  std::set<std::string> on_path;

  void report() {
    std::string chain = start;
    std::string witness;
    for (const LockEdge* e : path) {
      chain += " -> " + e->inner;
      if (!witness.empty()) witness += "; ";
      witness += loc(e->file, e->inner_line) + " acquires '" + e->inner +
                 "' while '" + e->outer + "' is held (since " +
                 loc(e->file, e->outer_line) + ")";
    }
    out.push_back(
        {path.front()->file, path.front()->inner_line, "lock-order",
         "potential deadlock: mutex acquisition cycle " + chain +
             "; witness: " + witness +
             "; break an edge, or suppress the intended inner "
             "acquisition with // shalom-lint: allow(lock-order)"});
  }

  void dfs(const std::string& node) {
    auto it = adj.find(node);
    if (it == adj.end()) return;
    for (const LockEdge* e : it->second) {
      if (e->inner == start) {
        path.push_back(e);
        report();
        path.pop_back();
      } else if (e->inner > start && on_path.insert(e->inner).second) {
        path.push_back(e);
        dfs(e->inner);
        path.pop_back();
        on_path.erase(e->inner);
      }
    }
  }
};

}  // namespace

void rule_lock_order(const Program& p, std::vector<Finding>& out) {
  // Observed acquisitions that contradict a declared hierarchy: the
  // declaration pins intent, so a reverse edge is a finding even when no
  // full cycle exists yet.
  for (const LockOrderDecl& d : p.lock_decls) {
    for (const LockEdge& e : p.lock_edges) {
      if (e.outer == d.after && e.inner == d.before) {
        out.push_back(
            {e.file, e.inner_line, "lock-order",
             "'" + e.inner + "' acquired while '" + e.outer +
                 "' is held contradicts the declared hierarchy "
                 "lock-order(" +
                 d.before + " before " + d.after + ") from " +
                 loc(d.file, d.line)});
      }
    }
  }
  std::map<std::string, std::vector<const LockEdge*>> adj;
  std::set<std::string> nodes;
  for (const LockEdge& e : p.lock_edges) {
    adj[e.outer].push_back(&e);
    nodes.insert(e.outer);
    nodes.insert(e.inner);
  }
  for (const std::string& start : nodes) {
    CycleFinder cf{adj, out, start, {}, {start}};
    cf.dfs(start);
  }
}

// ---------------------------------------------------------------------------
// atomic-pairing
// ---------------------------------------------------------------------------

void rule_atomic_pairing(const Program& p, std::vector<Finding>& out) {
  std::map<std::string, std::vector<const AtomicOp*>> groups;
  for (const AtomicOp& op : p.atomics) groups[op.var].push_back(&op);
  for (const auto& g : groups) {
    bool any_release_write = false;
    bool any_acquire_read = false;
    for (const AtomicOp* op : g.second) {
      any_release_write = any_release_write || op->write_release;
      any_acquire_read = any_acquire_read || op->read_acquire;
    }
    for (const AtomicOp* op : g.second) {
      if (op->write_release && !any_acquire_read) {
        out.push_back(
            {op->file, op->line, "atomic-pairing",
             "release-side " + op->method + "() of atomic '" + op->var +
                 "' has no matching acquire/seq_cst read of '" + op->var +
                 "' anywhere in the scanned program - the release fence "
                 "publishes to nobody; add the acquire-side read or "
                 "relax this write"});
      }
      if (op->is_load && op->read_acquire && !any_release_write) {
        out.push_back(
            {op->file, op->line, "atomic-pairing",
             "acquire load of atomic '" + op->var +
                 "' has no matching release/seq_cst write of '" + op->var +
                 "' anywhere in the scanned program - the acquire fence "
                 "synchronizes with nothing; add the release-side write "
                 "or relax this load"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// registry-drift
// ---------------------------------------------------------------------------

namespace {

bool armed_in(const std::string& blob, const SiteDef& site) {
  if (text_mentions(blob, site.name)) return true;
  return !site.enum_name.empty() && text_mentions(blob, site.enum_name);
}

}  // namespace

void rule_registry_drift(const Program& p, const DriftInputs& in,
                         std::vector<Finding>& out) {
  // Fault sites: defined => armed somewhere chaos can reach it.
  if (!p.fault_sites.empty()) {
    if (!in.tests_ok && !in.tier1_ok) {
      const SiteDef& s = p.fault_sites.front();
      out.push_back({s.file, s.line, "registry-drift",
                     "fault-site arming cannot be checked: neither the "
                     "test sources ('" +
                         in.tests_path + "') nor the tier1 script ('" +
                         in.tier1_path + "') could be read"});
    } else {
      for (const SiteDef& s : p.fault_sites) {
        const bool armed = (in.tests_ok && armed_in(in.tests_text, s)) ||
                           (in.tier1_ok && armed_in(in.tier1_text, s));
        if (armed) continue;
        std::string label = "\"" + s.name + "\"";
        if (!s.enum_name.empty()) label += " (Site::" + s.enum_name + ")";
        out.push_back({s.file, s.line, "registry-drift",
                       "fault site " + label +
                           " is defined but never armed in the tests (" +
                           in.tests_path + ") or tier1 script (" +
                           in.tier1_path +
                           "): arm it in a chaos/unit test so its "
                           "documented fallback is exercised"});
      }
    }
  }
  // Status codes: strerror entry + API row + test mention.
  if (!p.status_codes.empty()) {
    for (const CodeDef& c : p.status_codes) {
      if (!p.strerror_codes.count(c.name)) {
        out.push_back({c.file, c.line, "registry-drift",
                       "status code " + c.name +
                           " has no strerror entry: add its case to the "
                           "status_string()/shalom_strerror() switch"});
      }
    }
    if (!in.api_ok) {
      const CodeDef& c = p.status_codes.front();
      out.push_back({c.file, c.line, "registry-drift",
                     "status-code API documentation cannot be checked: "
                     "API doc ('" +
                         in.api_path + "') is missing or unreadable"});
    } else {
      for (const CodeDef& c : p.status_codes) {
        if (text_mentions(in.api_text, c.name)) continue;
        out.push_back({c.file, c.line, "registry-drift",
                       "status code " + c.name +
                           " has no row in the API doc (" + in.api_path +
                           "): document when it is returned"});
      }
    }
    if (!in.tests_ok) {
      const CodeDef& c = p.status_codes.front();
      out.push_back({c.file, c.line, "registry-drift",
                     "status-code test coverage cannot be checked: test "
                     "sources ('" +
                         in.tests_path + "') are missing or unreadable"});
    } else {
      for (const CodeDef& c : p.status_codes) {
        if (text_mentions(in.tests_text, c.name)) continue;
        out.push_back({c.file, c.line, "registry-drift",
                       "status code " + c.name +
                           " is never mentioned in the tests (" +
                           in.tests_path +
                           "): assert at least one path that returns it"});
      }
    }
  }
  // Stats counters and env keys: documented in the API doc.
  if (!p.stats_counters.empty() || !p.env_keys.empty()) {
    if (!in.api_ok) {
      const std::string file = p.stats_counters.empty()
                                   ? p.env_keys.front().file
                                   : p.stats_counters.front().file;
      const int line = p.stats_counters.empty()
                           ? p.env_keys.front().line
                           : p.stats_counters.front().line;
      out.push_back({file, line, "registry-drift",
                     "counter/env-key documentation cannot be checked: "
                     "API doc ('" +
                         in.api_path + "') is missing or unreadable"});
    } else {
      for (const CounterDef& c : p.stats_counters) {
        if (text_mentions(in.api_text, c.name)) continue;
        out.push_back({c.file, c.line, "registry-drift",
                       "stats counter '" + c.name +
                           "' is not documented in the API doc (" +
                           in.api_path +
                           "): every RobustnessStats field needs a row"});
      }
      for (const EnvKeyUse& k : p.env_keys) {
        if (text_mentions(in.api_text, k.name)) continue;
        out.push_back({k.file, k.line, "registry-drift",
                       "environment key " + k.name +
                           " is not documented in the API doc (" +
                           in.api_path +
                           "): every knob needs a row in the env table"});
      }
    }
    // ... and exercised by the tests. A counter nobody asserts on and a
    // knob no test sets are exactly the registrations that silently rot.
    if (!in.tests_ok) {
      const std::string file = p.stats_counters.empty()
                                   ? p.env_keys.front().file
                                   : p.stats_counters.front().file;
      const int line = p.stats_counters.empty()
                           ? p.env_keys.front().line
                           : p.stats_counters.front().line;
      out.push_back({file, line, "registry-drift",
                     "counter/env-key test coverage cannot be checked: "
                     "test sources ('" +
                         in.tests_path + "') are missing or unreadable"});
    } else {
      for (const CounterDef& c : p.stats_counters) {
        if (text_mentions(in.tests_text, c.name)) continue;
        out.push_back({c.file, c.line, "registry-drift",
                       "stats counter '" + c.name +
                           "' is never mentioned in the tests (" +
                           in.tests_path +
                           "): assert at least one path that moves it"});
      }
      for (const EnvKeyUse& k : p.env_keys) {
        if (text_mentions(in.tests_text, k.name)) continue;
        out.push_back({k.file, k.line, "registry-drift",
                       "environment key " + k.name +
                           " is never mentioned in the tests (" +
                           in.tests_path +
                           "): set it in at least one wrapper or unit "
                           "test so its parse/clamp path is covered"});
      }
    }
  }
}

}  // namespace shalom_lint
