#!/usr/bin/env bash
# Benchmark driver (PR 10): builds the bench binaries and runs the pinned
# serving matrix - the PR 7 server-mix scenarios (bench/srv_mix.cpp), the
# PR 8 warm-restart comparison (bench/warm_restart.cpp, cold vs
# tuned-table-preseeded start) and the PR 10 recovery round-trip
# (bench/recovery.cpp, baseline vs faulted vs healed throughput plus
# time-to-recover percentiles) - merging the JSON documents into
# BENCH_10.json in the repo root.
#
# Gates: all pinned scenario names present; the preseeded restart's
# first-request latency strictly below the cold restart's (the tuned
# table must actually buy the warm start it exists for); the recovery
# restoration ratio at least 0.9 with at least one recovery observed (a
# healed process must serve within 10% of one that never faulted, and
# the healing path must actually have run).
#
# Usage: scripts/bench.sh [--full]
#   --full  paper-scale request counts (4x); default is a quick pass.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -S .
cmake --build build -j "${JOBS}" --target srv_mix warm_restart recovery

OUT=BENCH_10.json
SRV_JSON=$(./build/bench/srv_mix ${FULL_FLAG})
RESTART_JSON=$(./build/bench/warm_restart ${FULL_FLAG})
RECOVERY_JSON=$(./build/bench/recovery ${FULL_FLAG})

{
  echo '{'
  echo '  "bench": "pr10",'
  echo '  "srv_mix":'
  printf '%s,\n' "${SRV_JSON}" | sed 's/^/  /'
  echo '  "warm_restart":'
  printf '%s,\n' "${RESTART_JSON}" | sed 's/^/  /'
  echo '  "recovery":'
  printf '%s\n' "${RECOVERY_JSON}" | sed 's/^/  /'
  echo '}'
} > "${OUT}"

# Sanity-gate the emitted JSON: every pinned scenario present.
for scenario in warm_small_8clients cold_irregular_burst \
                overload_burst_2x_cap cold_start preseeded_start; do
  grep -q "\"name\": \"${scenario}\"" "${OUT}" || {
    echo "bench.sh: scenario ${scenario} missing from ${OUT}" >&2
    exit 1
  }
done
grep -q '"bench": "recovery"' "${OUT}" || {
  echo "bench.sh: recovery section missing from ${OUT}" >&2
  exit 1
}

# Acceptance gate: pre-seeded first-request latency strictly below cold.
cold_us=$(grep '"name": "cold_start"' "${OUT}" |
          sed 's/.*"first_request_us": \([0-9.]*\).*/\1/')
warm_us=$(grep '"name": "preseeded_start"' "${OUT}" |
          sed 's/.*"first_request_us": \([0-9.]*\).*/\1/')
if [[ -z "${cold_us}" || -z "${warm_us}" ]]; then
  echo "bench.sh: could not extract first_request_us from ${OUT}" >&2
  exit 1
fi
awk -v c="${cold_us}" -v w="${warm_us}" 'BEGIN { exit !(w < c) }' || {
  echo "bench.sh: preseeded first-request latency (${warm_us}us) is not" \
       "below cold (${cold_us}us)" >&2
  exit 1
}
echo "bench.sh: warm-restart gate OK (preseeded ${warm_us}us < cold ${cold_us}us)"

# Acceptance gate (PR 10): recovered throughput within 10% of the
# never-faulted baseline, and the healing path actually ran.
ratio=$(grep '"restoration_ratio"' "${OUT}" |
        sed 's/.*"restoration_ratio": \([0-9.]*\).*/\1/')
recoveries=$(grep '"trials"' "${OUT}" |
             sed 's/.*"recoveries": \([0-9]*\).*/\1/')
if [[ -z "${ratio}" || -z "${recoveries}" ]]; then
  echo "bench.sh: could not extract recovery metrics from ${OUT}" >&2
  exit 1
fi
awk -v r="${ratio}" 'BEGIN { exit !(r >= 0.9) }' || {
  echo "bench.sh: restoration ratio ${ratio} is below the 0.9 gate:" \
       "a healed process must serve within 10% of baseline" >&2
  exit 1
}
awk -v n="${recoveries}" 'BEGIN { exit !(n > 0) }' || {
  echo "bench.sh: no recoveries observed: the healing path never ran" >&2
  exit 1
}
echo "bench.sh: recovery gate OK (restoration ratio ${ratio}," \
     "${recoveries} recoveries)"

echo "bench.sh: wrote ${OUT}"
cat "${OUT}"
