#!/usr/bin/env bash
# Benchmark driver (PR 8): builds the bench binaries and runs the pinned
# serving matrix - the PR 7 server-mix scenarios (bench/srv_mix.cpp) plus
# the PR 8 warm-restart comparison (bench/warm_restart.cpp, cold vs
# tuned-table-preseeded start) - merging both JSON documents into
# BENCH_8.json in the repo root.
#
# Gates: all pinned scenario names present, and the preseeded restart's
# first-request latency strictly below the cold restart's (the tuned
# table must actually buy the warm start it exists for).
#
# Usage: scripts/bench.sh [--full]
#   --full  paper-scale request counts (4x); default is a quick pass.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -S .
cmake --build build -j "${JOBS}" --target srv_mix warm_restart

OUT=BENCH_8.json
SRV_JSON=$(./build/bench/srv_mix ${FULL_FLAG})
RESTART_JSON=$(./build/bench/warm_restart ${FULL_FLAG})

{
  echo '{'
  echo '  "bench": "pr8",'
  echo '  "srv_mix":'
  printf '%s,\n' "${SRV_JSON}" | sed 's/^/  /'
  echo '  "warm_restart":'
  printf '%s\n' "${RESTART_JSON}" | sed 's/^/  /'
  echo '}'
} > "${OUT}"

# Sanity-gate the emitted JSON: every pinned scenario present.
for scenario in warm_small_8clients cold_irregular_burst \
                overload_burst_2x_cap cold_start preseeded_start; do
  grep -q "\"name\": \"${scenario}\"" "${OUT}" || {
    echo "bench.sh: scenario ${scenario} missing from ${OUT}" >&2
    exit 1
  }
done

# Acceptance gate: pre-seeded first-request latency strictly below cold.
cold_us=$(grep '"name": "cold_start"' "${OUT}" |
          sed 's/.*"first_request_us": \([0-9.]*\).*/\1/')
warm_us=$(grep '"name": "preseeded_start"' "${OUT}" |
          sed 's/.*"first_request_us": \([0-9.]*\).*/\1/')
if [[ -z "${cold_us}" || -z "${warm_us}" ]]; then
  echo "bench.sh: could not extract first_request_us from ${OUT}" >&2
  exit 1
fi
awk -v c="${cold_us}" -v w="${warm_us}" 'BEGIN { exit !(w < c) }' || {
  echo "bench.sh: preseeded first-request latency (${warm_us}us) is not" \
       "below cold (${cold_us}us)" >&2
  exit 1
}
echo "bench.sh: warm-restart gate OK (preseeded ${warm_us}us < cold ${cold_us}us)"

echo "bench.sh: wrote ${OUT}"
cat "${OUT}"
