#!/usr/bin/env bash
# Serving-mix benchmark driver (PR 7): builds the bench binaries and runs
# the pinned server-mix matrix (bench/srv_mix.cpp) - 8-client warm small,
# cold irregular burst, and the overload burst at 2x queue_cap - emitting
# BENCH_7.json in the repo root with aggregate GFLOPS, per-request latency
# percentiles, and shed/timeout counts per scenario.
#
# Usage: scripts/bench.sh [--full]
#   --full  paper-scale request counts (4x); default is a quick pass.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
FULL_FLAG=""
if [[ "${1:-}" == "--full" ]]; then
  FULL_FLAG="--full"
fi

cmake -B build -S .
cmake --build build -j "${JOBS}" --target srv_mix

OUT=BENCH_7.json
./build/bench/srv_mix ${FULL_FLAG} > "${OUT}"

# Sanity-gate the emitted JSON: all three pinned scenarios present, and
# the overload scenario actually resolved every request (requests > 0).
for scenario in warm_small_8clients cold_irregular_burst overload_burst_2x_cap; do
  grep -q "\"name\": \"${scenario}\"" "${OUT}" || {
    echo "bench.sh: scenario ${scenario} missing from ${OUT}" >&2
    exit 1
  }
done

echo "bench.sh: wrote ${OUT}"
cat "${OUT}"
