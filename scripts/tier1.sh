#!/usr/bin/env bash
# Tier-1 verification: the standard Release build + full test suite, then
# an AddressSanitizer configuration running the fault-injection and stress
# labels (the degradation paths exercise allocator edge cases and
# cross-thread teardown, exactly where ASan earns its keep).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "=== tier1: standard build + full ctest ==="
cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== tier1: ASan build, fault + stress labels ==="
cmake -B build-asan -S . \
      -DSHALOM_SANITIZE=address \
      -DSHALOM_FAULT_INJECTION=ON \
      -DSHALOM_BUILD_BENCH=OFF \
      -DSHALOM_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L 'fault|stress'

echo "tier1: OK"
