#!/usr/bin/env bash
# Tier-1 verification: the standard Release build + full test suite (with
# the eager kernel selftest forced on, so every dispatchable variant is
# probed against the scalar reference), then AddressSanitizer,
# UndefinedBehaviorSanitizer and ThreadSanitizer configurations running
# the labels where each earns its keep: ASan/UBSan over fault-injection,
# stress, differential-fuzz and the tuned-table corruption battery
# (allocator edge cases, cross-thread teardown, kernel-boundary
# arithmetic, file parsing of attacker-shaped bytes), TSan over stress,
# the concurrency-engine battery (overlapping work-stealing rounds,
# sharded plan-cache races, async stream submission) and the
# self-healing battery (prober teardown races, registry churn).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

echo "=== tier1: standard build + full ctest (SHALOM_SELFTEST=1) ==="
cmake -B build -S .
cmake --build build -j "${JOBS}"
SHALOM_SELFTEST=1 ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== tier1: static verification (shalom_lint + clang-tidy + TSA) ==="
# shalom_lint is self-contained C++17 and gates tier-1 unconditionally:
# zero findings allowed over the library, benchmark AND tool sources
# (the analyzer lints itself). The whole-program families compare the
# code against the real docs/tests/CI artifacts, so deleting a fault-site
# row from DESIGN.md, a strerror case, an API.md row or the arming of a
# site fails right here. The analyzer's stderr summary reports the
# scanned-file count (an empty scan exits 2) and per-rule finding counts,
# so CI logs show which family fired.
./build/tools/shalom_lint --design=DESIGN.md --api=API.md --tests=tests \
    --tier1=scripts/tier1.sh src bench tools
ctest --test-dir build --output-on-failure -j "${JOBS}" -L lint
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build build --target lint
else
  echo "WARNING: clang-tidy not found - clang-tidy stage SKIPPED" >&2
fi
# Clang thread-safety analysis needs the Clang frontend; with GCC-only
# toolchains the annotations compile as no-ops, so skip visibly.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DSHALOM_THREAD_SAFETY=ON \
        -DSHALOM_BUILD_BENCH=OFF \
        -DSHALOM_BUILD_EXAMPLES=OFF \
        -DSHALOM_BUILD_TESTS=OFF
  cmake --build build-tsa -j "${JOBS}"
else
  echo "WARNING: clang++ not found - thread-safety analysis build SKIPPED" >&2
fi

echo "=== tier1: guarded chaos (canary arenas + watchdog + trap faults) ==="
# The whole suite under hardened execution: every AlignedBuffer gets
# canary zones and every parallel round arms a 2-second stall watchdog.
# Results must be identical - the guard rails are pure detection.
SHALOM_GUARD=canary SHALOM_WATCHDOG_MS=2000 \
  ctest --test-dir build --output-on-failure -j "${JOBS}"
# Then the guard suite itself with the trap and heartbeat fault sites
# armed from the environment on top: probes trap, a worker wedges, and
# the quarantine/watchdog recovery paths must still produce correct
# results. Kept out of the sanitizer configs below (their label filters
# exclude `guard`): sanitizer runtimes own the signal machinery, so trap
# containment compiles out there (SHALOM_GUARD_NO_TRAPS).
SHALOM_GUARD=canary SHALOM_WATCHDOG_MS=2000 \
SHALOM_FAULT=guard.trap:once,threadpool.heartbeat:once \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L guard

echo "=== tier1: overload chaos (admission control under armed faults) ==="
# The PR 7 acceptance scenario: the 8-client overload burst with a small
# queue cap, shed-newest admission, and the transient-failure sites firing
# (arena acquisition, submit enqueue, deadline expiry). Every future must
# resolve to exactly one of {ok, rejected, timeout, degraded-ok}, accepted
# work must match the isolated oracle bitwise, and nothing may deadlock.
SHALOM_QUEUE_CAP=4 SHALOM_OVERLOAD_POLICY=shed-newest \
SHALOM_FAULT=alloc.pack_arena:every-7,submit.queue:every-5,engine.deadline:every-3 \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -R EngineChaos

echo "=== tier1: persistence chaos (tuned-table I/O faults armed) ==="
# The PR 8 acceptance scenario: the tuned-table battery with the table
# I/O fault sites firing ambiently. Every save must be all-or-nothing
# (a failed commit leaves the previous table byte-identical and
# loadable), every load must be SHALOM_OK or a clean cold start, and
# nothing may crash or seed invalid plans. Two arming profiles: steady
# every-N failures across the write path, then a fail-after-N profile
# where I/O works until the process has done some real commits and the
# open/read path starts dying mid-run.
SHALOM_FAULT=table.write:every-2,table.rename:every-3,table.fsync:every-2 \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L table
SHALOM_FAULT=table.open:fail-after-2,table.read:fail-after-3 \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L table

echo "=== tier1: recovery chaos (degrade under an ambient storm, then heal) ==="
# The PR 10 acceptance scenario: serve through an ambient fault storm
# (kernel probes failing every 3rd evaluation, worker spawns every 4th,
# submit enqueues every 5th), then disarm and require the process to
# heal itself completely: robustness_stats().recoveries must go
# positive, shalom_health_report must end all-HEALTHY, and every result
# accepted mid-storm or post-heal must match the oracle. The health
# battery proper (registry state machine, breaker half-open trials,
# pool respawn, prober lifecycle, env wrappers) runs under -L health in
# the full suite above; this stage is specifically the storm-then-heal
# end-to-end pass.
SHALOM_FAULT=selfcheck.probe:every-3,threadpool.spawn:every-4,submit.queue:every-5 \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -R RecoveryChaos

echo "=== tier1: ASan build, fault + stress + fuzz labels ==="
cmake -B build-asan -S . \
      -DSHALOM_SANITIZE=address \
      -DSHALOM_FAULT_INJECTION=ON \
      -DSHALOM_BUILD_BENCH=OFF \
      -DSHALOM_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
      -L 'fault|stress|fuzz|table'

echo "=== tier1: UBSan build, fault + stress + fuzz labels ==="
cmake -B build-ubsan -S . \
      -DSHALOM_SANITIZE=undefined \
      -DSHALOM_FAULT_INJECTION=ON \
      -DSHALOM_BUILD_BENCH=OFF \
      -DSHALOM_BUILD_EXAMPLES=OFF
cmake --build build-ubsan -j "${JOBS}"
ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}" \
      -L 'fault|stress|fuzz|table'

echo "=== tier1: TSan build, stress + engine + health labels ==="
# The data-race hunt for the concurrent-server machinery: overlapping
# fork-join rounds with stealing, the sharded plan cache under racing
# inserts, and GemmStream submission from many client threads. These
# tests must be TSan-clean; the scheduler uses explicit seq_cst atomic
# operations (never fences) precisely so TSan models every ordering it
# relies on. The health label rides along for the recovery layer's
# races: prober teardown against live submitters and registry churn.
cmake -B build-tsan -S . \
      -DSHALOM_SANITIZE=thread \
      -DSHALOM_FAULT_INJECTION=ON \
      -DSHALOM_BUILD_BENCH=OFF \
      -DSHALOM_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
      -L 'stress|engine|health'

echo "tier1: OK"
