// BLASFEO-strategy comparator.
//
// BLASFEO (Frison et al., TOMS 2018/2020) targets matrices that fit the L2
// cache: it converts whole operands to a panel-major format once (no
// multi-level cache blocking), runs an 8x8-class kernel over the panels,
// and selectively skips converting a small A. It has no multi-threaded
// GEMM, so the registry marks it serial/small-only and the benches exclude
// it from the irregular-shape experiments, as the paper does.
#include "baselines/goto_common.h"
#include "baselines/registry.h"

namespace shalom::baselines {

namespace {

template <typename T, int MR, int NRV>
void blasfeo_gemm(Mode mode, index_t M, index_t N, index_t K, T alpha,
                  const T* A, index_t lda, const T* B, index_t ldb, T beta,
                  T* C, index_t ldc) {
  using ukr::AAccess;
  using ukr::BAccess;
  constexpr int L = simd::vec_of_t<T>::kLanes;
  constexpr int NR = NRV * L;

  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    for (index_t i = 0; i < M; ++i)
      for (index_t j = 0; j < N; ++j) {
        T& c = C[i * ldc + j];
        c = (beta == T{0}) ? T{} : beta * c;
      }
    return;
  }

  // Panel-major conversion of the whole operands (BLASFEO's blasfeo_pack_*
  // API). Heuristic from the paper's related-work description: a small
  // untransposed A is used in place.
  const arch::MachineDescriptor& mach = arch::host_machine();
  const bool convert_a =
      mode.a == Trans::T ||
      static_cast<std::size_t>(M) * K * sizeof(T) > mach.l1d.size_bytes;

  AlignedBuffer& arena = thread_pack_arena();
  const index_t ac_elems = convert_a ? pack::a_panel_elems(M, K, MR) : 0;
  const index_t bc_elems = pack::b_panel_elems(K, N, NR);
  arena.reserve(static_cast<std::size_t>(ac_elems + bc_elems +
                                         2 * ukr::kPackSlackElems) *
                sizeof(T));
  T* const ac = arena.as<T>();
  T* const bc = ac + ac_elems + ukr::kPackSlackElems;

  if (convert_a) {
    if (mode.a == Trans::N) {
      pack::pack_a_n(A, lda, M, K, MR, ac);
    } else {
      pack::pack_a_t(A, lda, M, K, MR, ac);
    }
  }
  if (mode.b == Trans::N) {
    pack::pack_b_n(B, ldb, K, N, NR, bc);
  } else {
    pack::pack_b_t(B, ldb, K, N, NR, bc);
  }

  // Single-level kernel loops over the converted panels: no jj/ii/kk
  // blocking, the whole K runs in one sweep (L2-resident by assumption).
  for (index_t j0 = 0; j0 < N; j0 += NR) {
    const int n_eff = static_cast<int>(std::min<index_t>(NR, N - j0));
    const T* b_sliver = bc + (j0 / NR) * pack::b_sliver_elems(K, NR);
    for (index_t i0 = 0; i0 < M; i0 += MR) {
      const int m_eff = static_cast<int>(std::min<index_t>(MR, M - i0));
      T* c_tile = C + i0 * ldc + j0;
      if (convert_a) {
        const T* a_sliver = ac + (i0 / MR) * pack::a_sliver_elems(K, MR);
        ukr::run_main_tile<T, AAccess::kPacked, BAccess::kPacked, MR, NRV>(
            m_eff, n_eff, K, a_sliver, MR, b_sliver, NR, c_tile, ldc, alpha,
            beta);
      } else {
        ukr::run_main_tile<T, AAccess::kDirect, BAccess::kPacked, MR, NRV>(
            m_eff, n_eff, K, A + i0 * lda, lda, b_sliver, NR, c_tile, ldc,
            alpha, beta);
      }
    }
  }
}

}  // namespace

const Library& blasfeo_like() {
  static const Library lib{
      "BLASFEO*",
      [](Mode m, index_t M, index_t N, index_t K, float al, const float* A,
         index_t lda, const float* B, index_t ldb, float be, float* C,
         index_t ldc, int /*threads*/) {
        blasfeo_gemm<float, 8, 2>(m, M, N, K, al, A, lda, B, ldb, be, C,
                                  ldc);
      },
      [](Mode m, index_t M, index_t N, index_t K, double al,
         const double* A, index_t lda, const double* B, index_t ldb,
         double be, double* C, index_t ldc, int /*threads*/) {
        blasfeo_gemm<double, 8, 2>(m, M, N, K, al, A, lda, B, ldb, be, C,
                                   ldc);
      },
      /*supports_parallel=*/false,
      /*small_only=*/true,
  };
  return lib;
}

}  // namespace shalom::baselines
