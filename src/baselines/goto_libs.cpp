// OpenBLAS-, BLIS- and ARMPL-strategy comparators: always-pack Goto
// drivers differing in kernel tile, edge handling and parallel
// decomposition. See registry.h for the strategy descriptions.
#include <cmath>
#include <thread>

#include "baselines/goto_common.h"
#include "baselines/registry.h"
#include "core/parallel.h"
#include "core/threadpool.h"

namespace shalom::baselines {

namespace {

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// 1-D column split (the OpenBLAS scheme the paper criticizes: the split
/// ignores M entirely, so a skinny N produces tiny, edge-heavy chunks).
template <typename T, int MR, int NRV, bool ScalarEdges>
void parallel_columns(Mode mode, index_t M, index_t N, index_t K, T alpha,
                      const T* A, index_t lda, const T* B, index_t ldb,
                      T beta, T* C, index_t ldc, int threads) {
  const arch::MachineDescriptor& mach = arch::host_machine();
  const int t = std::max(1, std::min<int>(resolve_threads(threads),
                                          static_cast<int>(N)));
  if (t == 1) {
    goto_gemm<T, MR, NRV, ScalarEdges>(mode, M, N, K, alpha, A, lda, B, ldb,
                                       beta, C, ldc, mach);
    return;
  }
  const auto cols = split_range(N, t, 1);
  pool_run(t, [&](int id) {
    const index_t j0 = cols[id];
    const index_t n = cols[id + 1] - j0;
    if (n == 0) return;
    const T* b_sub = (mode.b == Trans::N) ? B + j0 : B + j0 * ldb;
    goto_gemm<T, MR, NRV, ScalarEdges>(mode, M, n, K, alpha, A, lda, b_sub,
                                       ldb, beta, C + j0, ldc, mach);
  });
}

/// 2-D near-square grid (the BLIS scheme: factorize T towards a square,
/// independent of the M:N aspect ratio).
template <typename T, int MR, int NRV, bool ScalarEdges>
void parallel_square(Mode mode, index_t M, index_t N, index_t K, T alpha,
                     const T* A, index_t lda, const T* B, index_t ldb,
                     T beta, T* C, index_t ldc, int threads) {
  const arch::MachineDescriptor& mach = arch::host_machine();
  int t = resolve_threads(threads);
  t = std::max<int>(1, static_cast<int>(std::min<long long>(
                           t, static_cast<long long>(M) * N)));
  if (t == 1) {
    goto_gemm<T, MR, NRV, ScalarEdges>(mode, M, N, K, alpha, A, lda, B, ldb,
                                       beta, C, ldc, mach);
    return;
  }
  int tm = static_cast<int>(std::sqrt(static_cast<double>(t)));
  while (t % tm != 0) --tm;  // nearest divisor at or below sqrt(T)
  int tn = t / tm;
  if (M < N) std::swap(tm, tn);
  tm = std::min<int>(tm, static_cast<int>(M));
  tn = std::min<int>(tn, static_cast<int>(N));
  const int total = tm * tn;

  const auto rows = split_range(M, tm, 1);
  const auto cols = split_range(N, tn, 1);
  pool_run(total, [&](int id) {
    const int pm = id / tn;
    const int pn = id % tn;
    const index_t i0 = rows[pm];
    const index_t m = rows[pm + 1] - i0;
    const index_t j0 = cols[pn];
    const index_t n = cols[pn + 1] - j0;
    if (m == 0 || n == 0) return;
    const T* a_sub = (mode.a == Trans::N) ? A + i0 * lda : A + i0;
    const T* b_sub = (mode.b == Trans::N) ? B + j0 : B + j0 * ldb;
    goto_gemm<T, MR, NRV, ScalarEdges>(mode, m, n, K, alpha, a_sub, lda,
                                       b_sub, ldb, beta,
                                       C + i0 * ldc + j0, ldc, mach);
  });
}

}  // namespace

const Library& openblas_like() {
  // 8x4 FP32 kernel (the paper's Fig. 6a subject), scalar edge routine,
  // 1-D column parallelism.
  static const Library lib{
      "OpenBLAS*",
      [](Mode m, index_t M, index_t N, index_t K, float al, const float* A,
         index_t lda, const float* B, index_t ldb, float be, float* C,
         index_t ldc, int threads) {
        parallel_columns<float, 8, 1, true>(m, M, N, K, al, A, lda, B, ldb,
                                            be, C, ldc, threads);
      },
      [](Mode m, index_t M, index_t N, index_t K, double al,
         const double* A, index_t lda, const double* B, index_t ldb,
         double be, double* C, index_t ldc, int threads) {
        parallel_columns<double, 8, 2, true>(m, M, N, K, al, A, lda, B, ldb,
                                             be, C, ldc, threads);
      },
      /*supports_parallel=*/true,
      /*small_only=*/false,
  };
  return lib;
}

const Library& blis_like() {
  // Same always-pack structure, zero-pad edges, 2-D square grid.
  static const Library lib{
      "BLIS*",
      [](Mode m, index_t M, index_t N, index_t K, float al, const float* A,
         index_t lda, const float* B, index_t ldb, float be, float* C,
         index_t ldc, int threads) {
        parallel_square<float, 8, 2, false>(m, M, N, K, al, A, lda, B, ldb,
                                            be, C, ldc, threads);
      },
      [](Mode m, index_t M, index_t N, index_t K, double al,
         const double* A, index_t lda, const double* B, index_t ldb,
         double be, double* C, index_t ldc, int threads) {
        parallel_square<double, 8, 2, false>(m, M, N, K, al, A, lda, B, ldb,
                                             be, C, ldc, threads);
      },
      true,
      false,
  };
  return lib;
}

const Library& armpl_like() {
  // Tuned large-GEMM stand-in: 6x8 FP32 tile, BLIS-style edges, 1-D
  // column parallelism.
  static const Library lib{
      "ARMPL*",
      [](Mode m, index_t M, index_t N, index_t K, float al, const float* A,
         index_t lda, const float* B, index_t ldb, float be, float* C,
         index_t ldc, int threads) {
        parallel_columns<float, 6, 2, false>(m, M, N, K, al, A, lda, B, ldb,
                                             be, C, ldc, threads);
      },
      [](Mode m, index_t M, index_t N, index_t K, double al,
         const double* A, index_t lda, const double* B, index_t ldb,
         double be, double* C, index_t ldc, int threads) {
        parallel_columns<double, 6, 3, false>(m, M, N, K, al, A, lda, B,
                                              ldb, be, C, ldc, threads);
      },
      true,
      false,
  };
  return lib;
}

}  // namespace shalom::baselines
