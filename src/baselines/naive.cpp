#include "baselines/naive.h"

namespace shalom::baselines {

template <typename T>
void naive_gemm(Mode mode, index_t M, index_t N, index_t K, T alpha,
                const T* A, index_t lda, const T* B, index_t ldb, T beta,
                T* C, index_t ldc) {
  auto a_at = [&](index_t i, index_t k) {
    return (mode.a == Trans::N) ? A[i * lda + k] : A[k * lda + i];
  };
  auto b_at = [&](index_t k, index_t j) {
    return (mode.b == Trans::N) ? B[k * ldb + j] : B[j * ldb + k];
  };
  for (index_t i = 0; i < M; ++i) {
    for (index_t j = 0; j < N; ++j) {
      T sum{};
      for (index_t k = 0; k < K; ++k) sum += a_at(i, k) * b_at(k, j);
      T& c = C[i * ldc + j];
      c = (beta == T{0}) ? alpha * sum : beta * c + alpha * sum;
    }
  }
}

template void naive_gemm<float>(Mode, index_t, index_t, index_t, float,
                                const float*, index_t, const float*, index_t,
                                float, float*, index_t);
template void naive_gemm<double>(Mode, index_t, index_t, index_t, double,
                                 const double*, index_t, const double*,
                                 index_t, double, double*, index_t);

}  // namespace shalom::baselines
