// Reference GEMM: the correctness oracle for every other implementation.
//
// A plain triple loop with no blocking, no packing and no vectorization
// hints. Deliberately simple so it is "obviously correct" - all tests
// compare optimized implementations against this.
#pragma once

#include "common/matrix.h"
#include "core/types.h"

namespace shalom::baselines {

/// C = alpha * op(A) . op(B) + beta * C, row-major, scalar triple loop.
template <typename T>
void naive_gemm(Mode mode, index_t M, index_t N, index_t K, T alpha,
                const T* A, index_t lda, const T* B, index_t ldb, T beta,
                T* C, index_t ldc);

}  // namespace shalom::baselines
