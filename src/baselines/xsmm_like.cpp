// LIBXSMM-strategy comparator.
//
// LIBXSMM JIT-compiles a kernel per (M, N, K, mode) and caches the code.
// A C++ library cannot emit machine code at run time, so the analog here
// is a *dispatch cache*: the first call for a shape selects a fully
// unrolled register-blocked execution plan (tile choice + remainder
// split), stores it in a hash map keyed by the shape, and later calls
// reuse it without re-planning - the library equivalent of a JIT code
// cache. Kernels read both operands in place (LIBXSMM does not pack for
// tiny sizes). Shapes beyond the documented design scope
// ((M*N*K)^(1/3) <= 64, paper Section 9) fall back to the generic Goto
// path, reproducing the poor out-of-scope behaviour the paper reports.
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "baselines/goto_common.h"
#include "baselines/registry.h"
#include "common/thread_annotations.h"

namespace shalom::baselines {

namespace {

struct ShapeKey {
  std::int64_t m, n, k;
  int mode_bits;
  bool operator==(const ShapeKey&) const = default;
};

struct ShapeKeyHash {
  std::size_t operator()(const ShapeKey& s) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ull;
    for (std::uint64_t v :
         {static_cast<std::uint64_t>(s.m), static_cast<std::uint64_t>(s.n),
          static_cast<std::uint64_t>(s.k),
          static_cast<std::uint64_t>(s.mode_bits)}) {
      h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// The cached "generated kernel": a tile plan chosen once per shape.
struct Plan {
  int mr;  // register tile rows
  int nr;  // register tile columns
};

template <typename T>
Plan make_plan(index_t M, index_t N) {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  // Mimic JIT specialization: pick the largest tile whose footprint
  // divides the problem with the fewest remainder tiles.
  Plan best{ukr::kMaxMr, ukr::kMaxNrv * L};
  double best_waste = 1e300;
  for (int mr = 4; mr <= ukr::kMaxMr; ++mr) {
    for (int nrv = 1; nrv <= ukr::kMaxNrv; ++nrv) {
      const int nr = nrv * L;
      const double tiles_m = static_cast<double>((M + mr - 1) / mr);
      const double tiles_n = static_cast<double>((N + nr - 1) / nr);
      const double waste =
          tiles_m * mr * tiles_n * nr / (static_cast<double>(M) * N);
      // Prefer low waste, then high CMR.
      const double score = waste - 1e-3 * model::tile_cmr(mr, nr);
      if (score < best_waste) {
        best_waste = score;
        best = {mr, nr};
      }
    }
  }
  return best;
}

template <typename T>
const Plan& cached_plan(Mode mode, index_t M, index_t N, index_t K) {
  // Function-local statics cannot carry SHALOM_GUARDED_BY (the cache and
  // its mutex are born together here), but the capability wrapper keeps
  // the acquire/release visible to the thread-safety analysis.
  static std::unordered_map<ShapeKey, Plan, ShapeKeyHash> cache;
  static Mutex mu;
  const ShapeKey key{M, N, K,
                     (mode.a == Trans::T ? 1 : 0) |
                         (mode.b == Trans::T ? 2 : 0) |
                         (std::is_same_v<T, double> ? 4 : 0)};
  MutexLock lock(mu);
  auto [it, inserted] = cache.try_emplace(key, Plan{});
  if (inserted) it->second = make_plan<T>(M, N);
  return it->second;
}

template <typename T>
void xsmm_gemm(Mode mode, index_t M, index_t N, index_t K, T alpha,
               const T* A, index_t lda, const T* B, index_t ldb, T beta,
               T* C, index_t ldc) {
  using ukr::AAccess;
  using ukr::BAccess;
  const double cube_root = std::cbrt(static_cast<double>(M) *
                                     static_cast<double>(N) *
                                     static_cast<double>(K));
  if (cube_root > 64.0 || mode.a == Trans::T) {
    // Out of LIBXSMM's design scope: generic fallback.
    goto_gemm<T, 8, 2, true>(mode, M, N, K, alpha, A, lda, B, ldb, beta, C,
                             ldc, arch::host_machine());
    return;
  }
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    for (index_t i = 0; i < M; ++i)
      for (index_t j = 0; j < N; ++j) {
        T& c = C[i * ldc + j];
        c = (beta == T{0}) ? T{} : beta * c;
      }
    return;
  }

  const Plan& plan = cached_plan<T>(mode, M, N, K);

  // Transposed B is repacked contiguous once (tiny matrices).
  const T* b_eff = B;
  index_t ldb_eff = ldb;
  AlignedBuffer& arena = thread_pack_arena();
  if (mode.b == Trans::T) {
    arena.reserve(static_cast<std::size_t>(K * N + ukr::kPackSlackElems) *
                  sizeof(T));
    T* bt = arena.as<T>();
    for (index_t k = 0; k < K; ++k)
      for (index_t j = 0; j < N; ++j) bt[k * N + j] = B[j * ldb + k];
    b_eff = bt;
    ldb_eff = N;
  }

  for (index_t j0 = 0; j0 < N; j0 += plan.nr) {
    const int n_eff =
        static_cast<int>(std::min<index_t>(plan.nr, N - j0));
    for (index_t i0 = 0; i0 < M; i0 += plan.mr) {
      const int m_eff =
          static_cast<int>(std::min<index_t>(plan.mr, M - i0));
      ukr::run_main_tile<T, AAccess::kDirect, BAccess::kDirect>(
          m_eff, n_eff, K, A + i0 * lda, lda, b_eff + j0, ldb_eff,
          C + i0 * ldc + j0, ldc, alpha, beta);
    }
  }
}

}  // namespace

const Library& xsmm_like() {
  static const Library lib{
      "LIBXSMM*",
      [](Mode m, index_t M, index_t N, index_t K, float al, const float* A,
         index_t lda, const float* B, index_t ldb, float be, float* C,
         index_t ldc, int /*threads*/) {
        xsmm_gemm<float>(m, M, N, K, al, A, lda, B, ldb, be, C, ldc);
      },
      [](Mode m, index_t M, index_t N, index_t K, double al,
         const double* A, index_t lda, const double* B, index_t ldb,
         double be, double* C, index_t ldc, int /*threads*/) {
        xsmm_gemm<double>(m, M, N, K, al, A, lda, B, ldb, be, C, ldc);
      },
      /*supports_parallel=*/false,
      /*small_only=*/true,
  };
  return lib;
}

}  // namespace shalom::baselines
