#include "baselines/registry.h"

#include "core/shalom.h"

namespace shalom::baselines {

const Library& shalom_lib() {
  static const Library lib{
      "LibShalom",
      [](Mode m, index_t M, index_t N, index_t K, float al, const float* A,
         index_t lda, const float* B, index_t ldb, float be, float* C,
         index_t ldc, int threads) {
        Config cfg;
        cfg.threads = threads <= 0 ? 0 : threads;
        gemm(m.a, m.b, M, N, K, al, A, lda, B, ldb, be, C, ldc, cfg);
      },
      [](Mode m, index_t M, index_t N, index_t K, double al,
         const double* A, index_t lda, const double* B, index_t ldb,
         double be, double* C, index_t ldc, int threads) {
        Config cfg;
        cfg.threads = threads <= 0 ? 0 : threads;
        gemm(m.a, m.b, M, N, K, al, A, lda, B, ldb, be, C, ldc, cfg);
      },
      /*supports_parallel=*/true,
      /*small_only=*/false,
  };
  return lib;
}

const std::vector<const Library*>& all_libraries() {
  static const std::vector<const Library*> libs = {
      &blis_like(),   &openblas_like(), &armpl_like(),
      &xsmm_like(),   &blasfeo_like(),  &shalom_lib(),
  };
  return libs;
}

const std::vector<const Library*>& parallel_libraries() {
  static const std::vector<const Library*> libs = {
      &openblas_like(),
      &armpl_like(),
      &blis_like(),
      &shalom_lib(),
  };
  return libs;
}

}  // namespace shalom::baselines
