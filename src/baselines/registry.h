// Registry of comparator GEMM implementations.
//
// The paper benchmarks LibShalom against five libraries. These comparators
// re-implement each library's *strategy* (packing policy, kernel tile,
// edge handling, parallel decomposition) from scratch on the same SIMD
// substrate, so the benches compare algorithms rather than decades of
// per-platform tuning. See DESIGN.md for the strategy -> library mapping.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace shalom::baselines {

template <typename T>
using GemmFn =
    std::function<void(Mode, index_t M, index_t N, index_t K, T alpha,
                       const T* A, index_t lda, const T* B, index_t ldb,
                       T beta, T* C, index_t ldc, int threads)>;

struct Library {
  std::string name;
  GemmFn<float> sgemm;
  GemmFn<double> dgemm;
  /// BLASFEO-style libraries are single-threaded and restricted to
  /// problems that fit the L2 cache; the irregular-shape benches skip
  /// them, exactly as the paper does (Section 7.4).
  bool supports_parallel = true;
  bool small_only = false;
};

/// OpenBLAS strategy: always-pack Goto, 8x4-class kernel, dedicated
/// scalar remainder routine, 1-D column parallelization.
const Library& openblas_like();

/// BLIS strategy: always-pack Goto, 8x4-class kernel, zero-pad edge
/// handling through the packed buffers, 2-D near-square parallelization
/// that ignores the matrix shape.
const Library& blis_like();

/// ARMPL stands in as a tuned large-GEMM library: same structure as the
/// OpenBLAS comparator with a slightly larger kernel tile and BLIS-style
/// edges.
const Library& armpl_like();

/// BLASFEO strategy: whole-matrix panel-major conversion, 8x8-class
/// kernel, no cache blocking, skips packing a small A; serial only.
const Library& blasfeo_like();

/// LIBXSMM strategy: size-specialized direct kernels behind a code cache,
/// valid for (M*N*K)^(1/3) <= 64; larger problems fall back to the
/// generic path (outside its design scope, as the paper observes).
const Library& xsmm_like();

/// LibShalom itself, wrapped in the same interface.
const Library& shalom_lib();

/// Everything, LibShalom last (plot order of the paper's figures).
const std::vector<const Library*>& all_libraries();

/// The subset the parallel irregular-shape benches use (paper Fig. 9/10:
/// OpenBLAS, ARMPL, BLIS, LibShalom).
const std::vector<const Library*>& parallel_libraries();

}  // namespace shalom::baselines
