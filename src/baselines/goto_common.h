// Shared Goto-algorithm driver for the always-pack baseline libraries.
//
// OpenBLAS and BLIS both follow Fig. 1 of the paper literally: loop order
// jj (nc) -> kk (kc) -> ii (mc), B packed per (jj, kk) panel and A packed
// per (ii) block, packing running as its own pass *before* the kernel -
// never overlapped - and packing happening unconditionally, whatever the
// matrix size. This header implements that structure once, templated on
// the register tile, so each baseline instantiates its own kernel family
// (8x4-style tiles vs LibShalom's 7x12).
#pragma once

#include <algorithm>

#include "common/aligned_buffer.h"
#include "core/dispatch.h"
#include "core/model.h"
#include "core/pack.h"
#include "core/types.h"

namespace shalom::baselines {

/// Always-pack Goto GEMM with an MR x (NRV*lanes) scheduled kernel and
/// scalar edge handling (`scalar_edges` = the OpenBLAS-style dedicated
/// remainder routine of Fig. 6a; false computes edges with the padded
/// packed buffers and partial C stores, the BLIS zero-pad strategy).
template <typename T, int MR, int NRV, bool ScalarEdges>
void goto_gemm(Mode mode, index_t M, index_t N, index_t K, T alpha,
               const T* A, index_t lda, const T* B, index_t ldb, T beta,
               T* C, index_t ldc, const arch::MachineDescriptor& mach) {
  using ukr::AAccess;
  using ukr::BAccess;
  constexpr int L = simd::vec_of_t<T>::kLanes;
  constexpr int NR = NRV * L;

  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    for (index_t i = 0; i < M; ++i)
      for (index_t j = 0; j < N; ++j) {
        T& c = C[i * ldc + j];
        c = (beta == T{0}) ? T{} : beta * c;
      }
    return;
  }

  const model::Blocking blk =
      model::solve_blocking<T>(mach, {MR, NR}, M, N, K);

  AlignedBuffer& arena = thread_pack_arena();
  const index_t bc_elems = pack::b_panel_elems(blk.kc, blk.nc, NR);
  const index_t ac_elems = pack::a_panel_elems(blk.mc, blk.kc, MR);
  arena.reserve(static_cast<std::size_t>(ac_elems + bc_elems +
                                         2 * ukr::kPackSlackElems) *
                sizeof(T));
  T* const ac = arena.as<T>();
  T* const bc = ac + ac_elems + ukr::kPackSlackElems;

  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t kk = 0; kk < K; kk += blk.kc) {
      const index_t kcur = std::min<index_t>(blk.kc, K - kk);
      const T beta_eff = (kk == 0) ? beta : T{1};

      // Pack the whole B panel for this (jj, kk) - a separate pass.
      if (mode.b == Trans::N) {
        pack::pack_b_n(B + kk * ldb + jj, ldb, kcur, ncur, NR, bc);
      } else {
        pack::pack_b_t(B + jj * ldb + kk, ldb, kcur, ncur, NR, bc);
      }

      for (index_t ii = 0; ii < M; ii += blk.mc) {
        const index_t mcur = std::min<index_t>(blk.mc, M - ii);
        // Pack the A block - also a separate pass.
        if (mode.a == Trans::N) {
          pack::pack_a_n(A + ii * lda + kk, lda, mcur, kcur, MR, ac);
        } else {
          pack::pack_a_t(A + kk * lda + ii, lda, mcur, kcur, MR, ac);
        }

        // GEBP kernel loops.
        for (index_t j0 = 0; j0 < ncur; j0 += NR) {
          const int n_eff =
              static_cast<int>(std::min<index_t>(NR, ncur - j0));
          const T* b_sliver =
              bc + (j0 / NR) * pack::b_sliver_elems(kcur, NR);
          for (index_t i0 = 0; i0 < mcur; i0 += MR) {
            const int m_eff =
                static_cast<int>(std::min<index_t>(MR, mcur - i0));
            const T* a_sliver =
                ac + (i0 / MR) * pack::a_sliver_elems(kcur, MR);
            T* c_tile = C + (ii + i0) * ldc + jj + j0;
            const bool edge = m_eff < MR || n_eff < NR;
            if (edge && ScalarEdges) {
              ukr::kern_scalar<T, AAccess::kPacked, BAccess::kPacked>(
                  m_eff, n_eff, kcur, a_sliver, MR, b_sliver, NR, c_tile,
                  ldc, alpha, beta_eff);
            } else {
              ukr::run_main_tile<T, AAccess::kPacked, BAccess::kPacked, MR,
                                 NRV>(m_eff, n_eff, kcur, a_sliver, MR,
                                      b_sliver, NR, c_tile, ldc, alpha,
                                      beta_eff);
            }
          }
        }
      }
    }
  }
}

}  // namespace shalom::baselines
