// Machine descriptors: the hardware parameters every analytic model reads.
//
// Table 1 of the paper lists three ARMv8 evaluation platforms.  A
// MachineDescriptor captures exactly the quantities LibShalom's analytic
// methods consume: the vector register file (Eq. 1's budget), cache
// capacities (packing decision + mc/kc/nc blocking), core count (Eq. 3/4
// partitioning) and FMA throughput (perfmodel).  The reproduction host is
// described by `host_machine()`, which probes the running CPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace shalom::arch {

struct CacheInfo {
  std::size_t size_bytes = 0;
  std::size_t line_bytes = 64;
  int associativity = 8;
  /// Number of cores sharing one instance of this cache (1 = private).
  int shared_by_cores = 1;

  bool present() const { return size_bytes > 0; }
};

struct MachineDescriptor {
  std::string name;

  int cores = 1;
  double frequency_ghz = 1.0;

  /// 128-bit vector registers available to the kernel (paper: 32).
  int vector_registers = 32;
  /// Vector width in bits (NEON: 128).
  int vector_bits = 128;
  /// Number of FMA pipelines per core (Phytium 2000+: 1, KP920: 2, TX2: 2).
  int fma_pipes = 1;
  /// Number of load pipelines per core.
  int load_pipes = 1;

  CacheInfo l1d;
  CacheInfo l2;
  CacheInfo l3;  // size 0 when absent (Phytium 2000+ has no L3)

  /// Sustained DRAM bandwidth, whole chip (used by the analytic
  /// performance model to bound memory-resident phases).
  double mem_bw_gbps = 20.0;
  /// Fork-join latency for one parallel region, microseconds (thread
  /// wake + barrier); grows ~log2(T) in the model.
  double forkjoin_us = 5.0;

  /// Theoretical peak GFLOPS for an element type, whole chip:
  /// cores * freq * pipes * (vector_bits / (8 * sizeof(T))) * 2 (FMA = 2 ops).
  template <typename T>
  double peak_gflops() const {
    const double lanes = vector_bits / (8.0 * sizeof(T));
    return cores * frequency_ghz * fma_pipes * lanes * 2.0;
  }

  template <typename T>
  double peak_gflops_per_core() const {
    return peak_gflops<T>() / cores;
  }

  /// Last-level cache: L3 when present, else L2 (Phytium 2000+ semantics,
  /// where the 2 MB L2 per 4-core cluster is the LLC).
  const CacheInfo& llc() const { return l3.present() ? l3 : l2; }
};

/// Paper Table 1 presets.
MachineDescriptor phytium_2000p();
MachineDescriptor kunpeng_920();
MachineDescriptor thunderx2();

/// Descriptor probed from the machine this process runs on (sysfs /
/// sysconf); falls back to conservative defaults when probing fails.
const MachineDescriptor& host_machine();

/// Stable 64-bit fingerprint of the model-relevant fields of a machine
/// descriptor: vector file, core count and cache geometry - exactly the
/// quantities the analytic blocking/tile solvers consume. Two machines
/// with equal fingerprints produce identical tuned blockings, so the
/// fingerprint guards persisted tuned tables (tuning/table.h) against
/// replay on foreign hardware. Deliberately excludes `name`, clock
/// frequency and bandwidth: those shift model *scores*, never the legal
/// blocking space.
std::uint64_t fingerprint(const MachineDescriptor& m);

/// All paper presets plus the host, for platform-sweep benches.
struct NamedMachines {
  const MachineDescriptor* begin_;
  const MachineDescriptor* end_;
  const MachineDescriptor* begin() const { return begin_; }
  const MachineDescriptor* end() const { return end_; }
};
NamedMachines paper_machines();

}  // namespace shalom::arch
