#include "arch/machine.h"

#include <unistd.h>

#include <array>
#include <fstream>
#include <string>
#include <thread>

namespace shalom::arch {

namespace {

CacheInfo cache(std::size_t kib, int assoc, int shared_by = 1) {
  CacheInfo c;
  c.size_bytes = kib * 1024;
  c.associativity = assoc;
  c.shared_by_cores = shared_by;
  return c;
}

}  // namespace

MachineDescriptor phytium_2000p() {
  MachineDescriptor m;
  m.name = "Phytium 2000+";
  m.cores = 64;
  m.frequency_ghz = 2.2;
  m.fma_pipes = 1;
  m.load_pipes = 1;
  m.l1d = cache(32, 4);
  // 2 MB L2 shared per 4-core cluster; no L3 (paper Table 1).
  m.l2 = cache(2048, 16, /*shared_by=*/4);
  m.l3 = CacheInfo{};  // none
  m.mem_bw_gbps = 80.0;   // 8-channel DDR4-2400 class
  return m;
}

MachineDescriptor kunpeng_920() {
  MachineDescriptor m;
  m.name = "Kunpeng 920";
  m.cores = 64;
  m.frequency_ghz = 2.6;
  m.fma_pipes = 2;
  m.load_pipes = 2;
  m.l1d = cache(64, 4);
  m.l2 = cache(512, 8);
  m.l3 = cache(64 * 1024, 16, /*shared_by=*/64);
  m.mem_bw_gbps = 190.0;  // 8-channel DDR4-2933 class
  return m;
}

MachineDescriptor thunderx2() {
  MachineDescriptor m;
  m.name = "ThunderX2";
  m.cores = 32;
  m.frequency_ghz = 2.5;
  m.fma_pipes = 2;
  m.load_pipes = 2;
  m.l1d = cache(32, 8);
  m.l2 = cache(256, 8);
  m.l3 = cache(32 * 1024, 16, /*shared_by=*/32);
  m.mem_bw_gbps = 150.0;  // 8-channel DDR4-2666 class
  return m;
}

namespace {

/// Reads a sysfs cache attribute like "32K"/"512K"/"16384K"; 0 on failure.
std::size_t read_sysfs_cache_size(int cpu, int index) {
  const std::string path = "/sys/devices/system/cpu/cpu" +
                           std::to_string(cpu) + "/cache/index" +
                           std::to_string(index) + "/size";
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t value = 0;
  char suffix = 0;
  in >> value >> suffix;
  if (!in) return 0;
  if (suffix == 'K' || suffix == 'k') value *= 1024;
  if (suffix == 'M' || suffix == 'm') value *= 1024 * 1024;
  return value;
}

std::string read_sysfs_string(int cpu, int index, const char* attr) {
  const std::string path = "/sys/devices/system/cpu/cpu" +
                           std::to_string(cpu) + "/cache/index" +
                           std::to_string(index) + "/" + attr;
  std::ifstream in(path);
  std::string s;
  if (in) in >> s;
  return s;
}

MachineDescriptor detect_host() {
  MachineDescriptor m;
  m.name = "host";
  const unsigned hw = std::thread::hardware_concurrency();
  m.cores = hw > 0 ? static_cast<int>(hw) : 1;
  m.frequency_ghz = 2.0;  // conservative default; refined by calibration

  std::ifstream freq(
      "/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq");
  if (freq) {
    double khz = 0;
    freq >> khz;
    if (khz > 0) m.frequency_ghz = khz / 1e6;
  }

  // Walk cache indices of cpu0; classify by level + type.
  for (int index = 0; index < 8; ++index) {
    const std::string type = read_sysfs_string(0, index, "type");
    if (type.empty()) break;
    if (type == "Instruction") continue;
    const std::string level_s = read_sysfs_string(0, index, "level");
    const std::size_t size = read_sysfs_cache_size(0, index);
    if (level_s.empty() || size == 0) continue;
    CacheInfo info;
    info.size_bytes = size;
    const std::string assoc = read_sysfs_string(0, index, "ways_of_associativity");
    info.associativity = assoc.empty() ? 8 : std::stoi(assoc);
    switch (level_s[0]) {
      case '1': m.l1d = info; break;
      case '2': m.l2 = info; break;
      case '3': m.l3 = info; break;
      default: break;
    }
  }

  // Fallbacks when sysfs is unavailable (containers often hide it).
  if (!m.l1d.present()) m.l1d = cache(32, 8);
  if (!m.l2.present()) m.l2 = cache(1024, 16);

#if defined(__x86_64__) && defined(__AVX512VL__)
  m.vector_registers = 32;  // XMM0-31 with AVX-512VL
#elif defined(__x86_64__)
  m.vector_registers = 16;
#else
  m.vector_registers = 32;  // AArch64 NEON
#endif
  m.fma_pipes = 2;
  m.load_pipes = 2;
  m.mem_bw_gbps = 25.0;  // conservative single-core host estimate
  return m;
}

}  // namespace

std::uint64_t fingerprint(const MachineDescriptor& m) {
  // FNV-1a over the model-relevant fields, mirroring the plan-cache's
  // by-value machine hash: the same quantities that feed solve_tile /
  // solve_blocking / solve_partition, and nothing else. Field order is
  // part of the persisted tuned-table format - append-only.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(m.vector_registers));
  mix(static_cast<std::uint64_t>(m.vector_bits));
  mix(static_cast<std::uint64_t>(m.fma_pipes));
  mix(static_cast<std::uint64_t>(m.load_pipes));
  mix(static_cast<std::uint64_t>(m.cores));
  mix(static_cast<std::uint64_t>(m.l1d.size_bytes));
  mix(static_cast<std::uint64_t>(m.l1d.line_bytes));
  mix(static_cast<std::uint64_t>(m.l1d.associativity));
  mix(static_cast<std::uint64_t>(m.l2.size_bytes));
  mix(static_cast<std::uint64_t>(m.l2.associativity));
  mix(static_cast<std::uint64_t>(m.l2.shared_by_cores));
  mix(static_cast<std::uint64_t>(m.l3.size_bytes));
  mix(static_cast<std::uint64_t>(m.l3.shared_by_cores));
  return h;
}

const MachineDescriptor& host_machine() {
  static const MachineDescriptor m = detect_host();
  return m;
}

NamedMachines paper_machines() {
  static const std::array<MachineDescriptor, 3> machines = {
      phytium_2000p(), kunpeng_920(), thunderx2()};
  return {machines.data(), machines.data() + machines.size()};
}

}  // namespace shalom::arch
