// Block-sparse x dense multiplication built on LibShalom small GEMMs.
//
// C = alpha * A_bsr . B + beta * C, where A is block-sparse and B/C are
// dense row-major. Each nonzero br x bc block of A contributes one small
// GEMM  C[brow] += alpha * block . B[bcol]  - precisely the batched
// small-GEMM workload the paper optimizes, applied to its own stated
// future-work direction (Section 10). Parallelism is across block rows
// (disjoint C slices, so no synchronization inside the sweep).
#pragma once

#include "core/types.h"
#include "sparse/bsr.h"

namespace shalom::sparse {

/// C (A.rows() x N) = alpha * A . B + beta * C; B is A.cols() x N.
/// cfg.threads parallelizes over block rows.
template <typename T>
void spmm(T alpha, const BsrMatrix<T>& a, const T* b, index_t ldb, T beta,
          T* c, index_t ldc, index_t n, const Config& cfg = {});

}  // namespace shalom::sparse
