// Block-sparse matrices (BSR layout).
//
// The paper's stated future work (Section 10) is extending its small-GEMM
// optimizations to sparse matrix computation; the motivating application,
// CP2K, already stores its matrices exactly this way (DBCSR: blocked
// compressed sparse rows, dense blocks of sizes like 5x5 and 23x23).
// This module provides that substrate: a BSR matrix whose nonzero blocks
// are dense row-major tiles, multiplied against a dense matrix by running
// one LibShalom small GEMM per block (src/sparse/spmm.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"

namespace shalom::sparse {

/// Block compressed-sparse-row matrix with uniform br x bc dense blocks.
/// Logical size: (block_rows * br) x (block_cols * bc).
template <typename T>
class BsrMatrix {
 public:
  BsrMatrix(index_t block_rows, index_t block_cols, index_t br, index_t bc)
      : block_rows_(block_rows), block_cols_(block_cols), br_(br), bc_(bc) {
    SHALOM_REQUIRE(block_rows >= 0 && block_cols >= 0 && br > 0 && bc > 0);
    row_ptr_.assign(block_rows_ + 1, 0);
  }

  index_t rows() const { return block_rows_ * br_; }
  index_t cols() const { return block_cols_ * bc_; }
  index_t block_rows() const { return block_rows_; }
  index_t block_cols() const { return block_cols_; }
  index_t br() const { return br_; }
  index_t bc() const { return bc_; }
  index_t nnz_blocks() const {
    return static_cast<index_t>(col_idx_.size());
  }
  double block_density() const {
    const double total =
        static_cast<double>(block_rows_) * static_cast<double>(block_cols_);
    return total > 0 ? nnz_blocks() / total : 0.0;
  }

  /// CSR-style accessors over block rows.
  index_t row_begin(index_t brow) const { return row_ptr_[brow]; }
  index_t row_end(index_t brow) const { return row_ptr_[brow + 1]; }
  index_t block_col(index_t idx) const { return col_idx_[idx]; }
  /// Dense row-major br x bc storage of block `idx` (ld = bc).
  const T* block(index_t idx) const { return values_.data() + idx * br_ * bc_; }
  T* block(index_t idx) { return values_.data() + idx * br_ * bc_; }

  /// Builds the structure from a sorted list of (block_row, block_col)
  /// coordinates; block values start zeroed.
  static BsrMatrix from_pattern(
      index_t block_rows, index_t block_cols, index_t br, index_t bc,
      const std::vector<std::pair<index_t, index_t>>& blocks);

  /// Random pattern with roughly `density` fraction of blocks present
  /// (deterministic in `seed`); block values uniform in [0, 1). Shares a
  /// name with libc random() but is seeded and reproducible.
  // shalom-lint: allow(nondeterminism)
  static BsrMatrix random(index_t block_rows, index_t block_cols, index_t br,
                          index_t bc, double density, std::uint64_t seed);

  /// Dense row-major copy (zeros where no block exists).
  Matrix<T> to_dense() const;

 private:
  index_t block_rows_, block_cols_, br_, bc_;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<T> values_;  // nnz_blocks * br * bc, block-major
};

}  // namespace shalom::sparse
