#include "sparse/spmm.h"

#include <algorithm>
#include <thread>

#include "core/gemm.h"
#include "core/threadpool.h"

namespace shalom::sparse {

namespace {

/// Scales one C block row by beta (the sparse sweep accumulates).
template <typename T>
void scale_rows(T beta, T* c, index_t ldc, index_t rows, index_t n) {
  if (beta == T{1}) return;
  for (index_t i = 0; i < rows; ++i) {
    T* row = c + i * ldc;
    if (beta == T{0}) {
      std::fill(row, row + n, T{});
    } else {
      for (index_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

}  // namespace

template <typename T>
void spmm(T alpha, const BsrMatrix<T>& a, const T* b, index_t ldb, T beta,
          T* c, index_t ldc, index_t n, const Config& cfg) {
  SHALOM_REQUIRE(ldb >= std::max<index_t>(1, n) &&
                 ldc >= std::max<index_t>(1, n));
  if (a.rows() == 0 || n == 0) return;

  Config serial_cfg = cfg;
  serial_cfg.threads = 1;

  auto process_block_row = [&](index_t brow) {
    T* c_slice = c + brow * a.br() * ldc;
    scale_rows(beta, c_slice, ldc, a.br(), n);
    for (index_t idx = a.row_begin(brow); idx < a.row_end(brow); ++idx) {
      const T* b_slice = b + a.block_col(idx) * a.bc() * ldb;
      // C_slice += alpha * block . B_slice  (accumulate: beta_eff = 1).
      gemm_serial({Trans::N, Trans::N}, a.br(), n, a.bc(), alpha,
                  a.block(idx), a.bc(), b_slice, ldb, T{1}, c_slice, ldc,
                  serial_cfg);
    }
  };

  int threads = cfg.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  threads = std::min<int>(threads, static_cast<int>(a.block_rows()));

  if (threads <= 1) {
    for (index_t brow = 0; brow < a.block_rows(); ++brow)
      process_block_row(brow);
    return;
  }

  const index_t rows = a.block_rows();
  const index_t per_thread = (rows + threads - 1) / threads;
  pool_run(threads, [&](int id) {
    const index_t begin = id * per_thread;
    const index_t end = std::min(rows, begin + per_thread);
    for (index_t brow = begin; brow < end; ++brow)
      process_block_row(brow);
  });
}

template void spmm<float>(float, const BsrMatrix<float>&, const float*,
                          index_t, float, float*, index_t, index_t,
                          const Config&);
template void spmm<double>(double, const BsrMatrix<double>&, const double*,
                           index_t, double, double*, index_t, index_t,
                           const Config&);

}  // namespace shalom::sparse
