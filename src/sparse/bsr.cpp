#include "sparse/bsr.h"

#include <algorithm>

namespace shalom::sparse {

template <typename T>
BsrMatrix<T> BsrMatrix<T>::from_pattern(
    index_t block_rows, index_t block_cols, index_t br, index_t bc,
    const std::vector<std::pair<index_t, index_t>>& blocks) {
  BsrMatrix m(block_rows, block_cols, br, bc);
  auto sorted = blocks;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  m.col_idx_.reserve(sorted.size());
  for (const auto& [r, c] : sorted) {
    SHALOM_REQUIRE(r >= 0 && r < block_rows && c >= 0 && c < block_cols,
                   " block (", r, ",", c, ")");
    ++m.row_ptr_[r + 1];
    m.col_idx_.push_back(c);
  }
  for (index_t r = 0; r < block_rows; ++r)
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  m.values_.assign(static_cast<std::size_t>(m.col_idx_.size()) * br * bc,
                   T{});
  return m;
}

template <typename T>
BsrMatrix<T> BsrMatrix<T>::random(index_t block_rows, index_t block_cols,
                                  index_t br, index_t bc, double density,
                                  std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<index_t, index_t>> pattern;
  for (index_t r = 0; r < block_rows; ++r)
    for (index_t c = 0; c < block_cols; ++c)
      if (rng.next_unit() < density) pattern.emplace_back(r, c);
  // Guarantee at least one block so degenerate densities stay usable.
  if (pattern.empty() && block_rows > 0 && block_cols > 0)
    pattern.emplace_back(0, 0);

  BsrMatrix m = from_pattern(block_rows, block_cols, br, bc, pattern);
  for (T& v : m.values_) v = static_cast<T>(rng.next_unit());
  return m;
}

template <typename T>
Matrix<T> BsrMatrix<T>::to_dense() const {
  Matrix<T> dense(rows(), cols());
  for (index_t brow = 0; brow < block_rows_; ++brow) {
    for (index_t idx = row_begin(brow); idx < row_end(brow); ++idx) {
      const index_t bcol = block_col(idx);
      const T* blk = block(idx);
      for (index_t i = 0; i < br_; ++i)
        for (index_t j = 0; j < bc_; ++j)
          dense(brow * br_ + i, bcol * bc_ + j) = blk[i * bc_ + j];
    }
  }
  return dense;
}

template class BsrMatrix<float>;
template class BsrMatrix<double>;

}  // namespace shalom::sparse
