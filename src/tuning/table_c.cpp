// C ABI for the persistent tuned-table store. Lives in the tuning
// library (not core/shalom_c.cpp) because the store sits above the core:
// shalom_tuning links shalom_core, never the reverse. The declarations
// stay in core/shalom_c.h so C callers see one header.
#include "core/shalom_c.h"

#include "common/error.h"
#include "tuning/table.h"

namespace {

using shalom::detail::clear_last_error;
using shalom::detail::set_last_error;

int fail(int code, const char* message = nullptr) {
  set_last_error(code, message);
  return code;
}

}  // namespace

extern "C" int shalom_table_load(const char* path) {
  clear_last_error();
  if (path == nullptr) return fail(SHALOM_ERR_NULL_POINTER, "path is NULL");
  try {
    const shalom_status status = shalom::tuning::table_load(path);
    if (status != SHALOM_OK)
      return fail(status,
                  "tuned-table load failed; continuing with a cold start");
    return status;
  } catch (...) {
    // table_load is noexcept; this is belt-and-braces for the C boundary.
    return fail(SHALOM_ERR_INTERNAL);
  }
}

extern "C" int shalom_table_save(const char* path) {
  clear_last_error();
  if (path == nullptr) return fail(SHALOM_ERR_NULL_POINTER, "path is NULL");
  try {
    const shalom_status status = shalom::tuning::table_save(path);
    if (status != SHALOM_OK)
      return fail(status,
                  "tuned-table save aborted; any previous table is intact");
    return status;
  } catch (...) {
    return fail(SHALOM_ERR_INTERNAL);
  }
}

extern "C" int shalom_table_get_stats(shalom_table_stats* out) {
  clear_last_error();
  if (out == nullptr) return fail(SHALOM_ERR_NULL_POINTER, "out is NULL");
  try {
    const shalom::tuning::TableStats s = shalom::tuning::table_stats();
    out->records_loaded = s.records_loaded;
    out->records_rejected = s.records_rejected;
    out->load_failures = s.load_failures;
    out->saves = s.saves;
    out->save_failures = s.save_failures;
    out->size = s.size;
    return SHALOM_OK;
  } catch (...) {
    return fail(SHALOM_ERR_INTERNAL);
  }
}
