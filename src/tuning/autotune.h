// Empirical auto-tuning of the cache-blocking parameters.
//
// The paper's future work (Section 10): "open up the kernel parameters to
// allow an auto-tuning framework to search for the optimal parameters".
// This module implements that framework for the parameters the driver
// exposes (kc / mc / nc, via Config overrides): it measures the target
// GEMM shape over a geometric neighbourhood of the analytic model's
// blocking and returns the fastest configuration, together with the
// measured improvement over the model - which also quantifies how good
// the closed-form model already is (the ablation bench reports this).
#pragma once

#include <vector>

#include "core/model.h"
#include "core/types.h"

namespace shalom::tuning {

struct TuneCandidate {
  model::Blocking blocking;
  double gflops = 0;
};

struct TuneResult {
  /// Best configuration found (ready to pass to shalom::gemm).
  Config config;
  /// Its measured throughput.
  double best_gflops = 0;
  /// Throughput of the analytic model's default blocking.
  double model_gflops = 0;
  /// Every candidate evaluated, best first.
  std::vector<TuneCandidate> candidates;

  double gain() const {
    return model_gflops > 0 ? best_gflops / model_gflops : 1.0;
  }
};

struct TuneOptions {
  int reps = 3;
  /// Multiplicative factors applied to each model-derived block size.
  std::vector<double> scales = {0.5, 0.75, 1.0, 1.5, 2.0};
};

/// Tunes a single shape. `base` supplies machine/threads/feature flags;
/// its override fields are ignored and replaced by the search.
template <typename T>
TuneResult tune(Mode mode, index_t M, index_t N, index_t K,
                const Config& base = {}, const TuneOptions& opt = {});

/// Installs a plan built from `result.config` (the tuned blocking) into
/// the global plan cache under the keys a plain `base`-config
/// shalom::gemm call would compute for this shape, so tuned blockings
/// persist across calls with no per-call Config overrides. Covers both
/// leading-dimension classes. Note: a tuned blocking changes the K-loop
/// split, so results may differ from the analytic blocking by normal
/// floating-point reassociation.
template <typename T>
void seed_plan_cache(Mode mode, index_t M, index_t N, index_t K,
                     const TuneResult& result, const Config& base = {});

}  // namespace shalom::tuning
