// Persistent tuned-table store: crash-safe warm restart for the
// auto-tuner (ROADMAP "IAAT" item; the persistent-table half of
// input-aware adaptive tuning).
//
// A production restart starts cold: every hot shape pays the full
// plan-build (and, with a re-tuner, the full measurement) cost again on
// the first wave of requests. This module persists tuned blockings to a
// small versioned binary file and replays them into the sharded plan
// cache at startup, so the first request after a restart already runs
// the tuned plan.
//
// The store is held to the same robustness bar as the rest of the stack:
//
//   * Versioned format with a machine fingerprint (arch::fingerprint):
//     a table written by a different library version or on a machine with
//     different model-relevant hardware is rejected as a whole.
//   * CRC-checksummed header and per-record checksums: a truncated or
//     bit-flipped file can never seed garbage - corrupt records are
//     skipped (table_records_rejected), corrupt headers reject the file
//     (table_load_failures), and either way the process degrades to a
//     correct cold start. No failure path throws past the API.
//   * Every record is re-validated against the kernel contracts
//     (core/kernel_contracts.h bounds, the kc clamp) before it may seed
//     the plan cache: even a record with a valid checksum cannot install
//     a blocking the kernels can't legally run.
//   * Atomic commit on save: write <path>.tmp, fsync, rename. A crash or
//     injected I/O fault (`table.open/read/write/rename/fsync` sites in
//     common/fault.h) at any point leaves the previous table
//     byte-identical and loadable.
//
// Loading happens explicitly (table_load / the shalom_table_load C entry
// point) or automatically at startup when SHALOM_TUNED_TABLE names a
// file (active in binaries that link this translation unit).
//
// The Retuner closes the loop: a bounded background thread (PR 7
// lifecycle discipline: running -> draining -> joined) that samples the
// plan cache's hot-shape snapshot (PlanCache::hot), promotes shapes that
// have no tuned record yet by running the empirical tuner on them, and
// saves the table atomically on demand and at shutdown.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/error.h"
#include "core/types.h"
#include "tuning/autotune.h"

namespace shalom::tuning {

/// One persisted tuned blocking: the shape key (dtype, transposes, dims,
/// thread count) plus the blocking the tuner chose for it.
struct TunedRecord {
  char dtype = 's';           ///< 's' (float) or 'd' (double)
  bool trans_a = false;
  bool trans_b = false;
  int threads = 1;            ///< resolved worker count the tuning targeted
  index_t m = 0, n = 0, k = 0;
  index_t kc = 0, mc = 0, nc = 0;  ///< tuned blocking (all >= 1)
};

/// Cumulative counters for the table subsystem, process-wide. The two
/// failure counters mirror robustness_stats().table_records_rejected /
/// .table_load_failures (same underlying counters).
struct TableStats {
  std::uint64_t records_loaded = 0;    ///< records validated and seeded
  std::uint64_t records_rejected = 0;  ///< records skipped by validation
  std::uint64_t load_failures = 0;     ///< whole-file load/save failures
  std::uint64_t saves = 0;             ///< atomic commits completed
  std::uint64_t save_failures = 0;     ///< saves aborted (prev table kept)
  std::uint64_t size = 0;              ///< records currently registered
};

/// Semantic validation: true when `rec` describes a blocking the kernels
/// can legally run (dtype/trans flags well-formed, dims and threads in
/// range, 1 <= kc <= contracts::kMaxKc, mc/nc >= 1). The same oracle the
/// loader applies before any record may seed the plan cache.
bool table_validate(const TunedRecord& rec) noexcept;

/// Registers (or replaces) one tuned blocking in the in-memory table so
/// a later table_save persists it. Returns false (and counts the record
/// as rejected) when validation fails; nothing is registered.
bool table_record(const TunedRecord& rec) noexcept;

/// Number of records currently registered.
std::size_t table_size() noexcept;

/// Drops every registered record (the on-disk table is untouched).
void table_clear() noexcept;

TableStats table_stats() noexcept;

/// Loads `path`, validates header and records, registers the valid
/// records and pre-seeds the global plan cache with each of them
/// (tuning::seed_plan_cache semantics: plans keyed as plain-config calls
/// compute them). Invalid records are skipped with telemetry; a missing,
/// truncated, corrupt, or version/fingerprint-skewed file fails as a
/// whole with SHALOM_ERR_TABLE and the process continues cold. Never
/// throws.
shalom_status table_load(const char* path) noexcept;

/// Atomically persists the registered records to `path`: writes
/// <path>.tmp, fsyncs, then renames over `path`. On any failure
/// (including armed table.* fault sites) the temp file is discarded and
/// a previous table at `path` is left byte-identical. Never throws.
shalom_status table_save(const char* path) noexcept;

/// On-disk format constants, exposed for the corruption tests: byte
/// sizes of the fixed-width header and record, and the format version
/// the loader accepts.
inline constexpr std::size_t kTableHeaderBytes = 36;
inline constexpr std::size_t kTableRecordBytes = 64;
inline constexpr std::uint32_t kTableFormatVersion = 1;

/// Background hot-shape promotion.
struct RetunerOptions {
  /// Scan period: the worker wakes this often to sample PlanCache::hot.
  int period_ms = 1000;
  /// Hot-shape snapshot depth sampled per element type each cycle.
  int top_k = 8;
  /// At most this many shapes are tuned (measured!) per cycle, keeping
  /// each cycle's CPU tax bounded.
  int max_tunes_per_cycle = 1;
  /// Search options for each promotion (reps/scales).
  TuneOptions tune;
  /// Base config for tuning/seeding; its threads field is overridden per
  /// promoted shape by the thread count observed in the cache key.
  Config base;
  /// When non-empty, stop() saves the table here atomically after the
  /// worker joins ("save on shutdown").
  std::string save_path;
};

/// Bounded, abortable background re-tuner with the stream lifecycle
/// discipline: start() spawns the worker (running), stop() moves it to
/// draining - the current cycle finishes, no new one starts - then joins
/// it and, when save_path is set, commits the table atomically. The
/// destructor calls stop(). Promotion errors (a shape that fails to
/// tune) are swallowed: the re-tuner is an optimization, never a
/// correctness dependency.
class Retuner {
 public:
  explicit Retuner(RetunerOptions opt = {});
  ~Retuner();

  Retuner(const Retuner&) = delete;
  Retuner& operator=(const Retuner&) = delete;

  /// Spawns the worker. False when already running or the spawn failed
  /// (the re-tuner then simply never promotes - cold behaviour, not an
  /// error).
  bool start() noexcept;

  /// running -> draining -> joined; idempotent. Saves to save_path (when
  /// set) after the join, returning that save's status (SHALOM_OK when
  /// no save was requested or the re-tuner never ran).
  shalom_status stop() noexcept;

  bool running() const noexcept;

  /// Completed scan cycles.
  std::uint64_t cycles() const noexcept;
  /// Shapes promoted (tuned + seeded + registered).
  std::uint64_t promoted() const noexcept;

  /// Wakes the worker immediately for one out-of-band cycle (testing /
  /// operator hook); no-op when not running.
  void kick() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace shalom::tuning
