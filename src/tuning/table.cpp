#include "tuning/table.h"

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "arch/machine.h"
#include "common/fault.h"
#include "common/health.h"
#include "common/thread_annotations.h"
#include "core/kernel_contracts.h"
#include "core/plan_cache.h"
#include "core/shalom.h"

namespace shalom::tuning {

namespace {

// -------------------------------------------------------------------------
// On-disk format (all integers little-endian, fixed width).
//
// Header, kTableHeaderBytes = 36:
//   [ 0,  8)  magic "SHALOMTB"
//   [ 8, 12)  format version (kTableFormatVersion)
//   [12, 16)  record count
//   [16, 24)  machine fingerprint (arch::fingerprint of the writing host)
//   [24, 32)  reserved, zero
//   [32, 36)  CRC-32 of bytes [0, 32)
//
// Record, kTableRecordBytes = 64:
//   [ 0]      dtype 's'|'d'      [ 1] trans_a 0|1    [ 2] trans_b 0|1
//   [ 3]      pad, zero          [ 4,  8) threads
//   [ 8, 32)  m, n, k            [32, 56) kc, mc, nc
//   [56, 60)  reserved, zero     [60, 64) CRC-32 of bytes [0, 60)
// -------------------------------------------------------------------------

constexpr char kMagic[8] = {'S', 'H', 'A', 'L', 'O', 'M', 'T', 'B'};

/// Record-count ceiling the loader accepts: bounds the load-time
/// allocation even when a (checksum-valid) header asks for more.
constexpr std::uint32_t kMaxRecords = 1u << 16;

/// Validation bounds: dimensions/blockings a small-matrix library could
/// plausibly tune, far below anything that could overflow size math.
constexpr index_t kMaxDim = index_t{1} << 30;
constexpr int kMaxThreads = 4096;

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint32_t crc32(const unsigned char* data, std::size_t len) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int j = 0; j < 8; ++j)
        c = (c & 1u) != 0 ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

// -------------------------------------------------------------------------
// Checked I/O funnel. Every raw fread/fwrite/fsync/fclose/rename the
// table subsystem performs goes through exactly one of these helpers
// (the unchecked-io lint rule keeps it that way), each of which both
// checks the libc result and hosts the corresponding fault site, so any
// single I/O failure is deterministically injectable.
// -------------------------------------------------------------------------

bool checked_read(std::FILE* f, void* buf, std::size_t n) noexcept {
  if (SHALOM_FAULT_POINT(fault::Site::kTableRead)) return false;
  return std::fread(buf, 1, n, f) == n;
}

bool checked_write(std::FILE* f, const void* buf, std::size_t n) noexcept {
  if (SHALOM_FAULT_POINT(fault::Site::kTableWrite)) return false;
  return std::fwrite(buf, 1, n, f) == n;
}

/// Flush + fsync: a table that might not be durable is never renamed in.
bool checked_fsync(std::FILE* f) noexcept {
  if (SHALOM_FAULT_POINT(fault::Site::kTableFsync)) return false;
  if (std::fflush(f) != 0) return false;
  return ::fsync(fileno(f)) == 0;
}

bool checked_close(std::FILE* f) noexcept {
  return std::fclose(f) == 0;
}

bool checked_rename(const char* from, const char* to) noexcept {
  if (SHALOM_FAULT_POINT(fault::Site::kTableRename)) return false;
  return std::rename(from, to) == 0;
}

std::FILE* checked_open(const char* path, const char* mode) noexcept {
  if (SHALOM_FAULT_POINT(fault::Site::kTableOpen)) return nullptr;
  return std::fopen(path, mode);
}

// -------------------------------------------------------------------------
// In-memory registry: the records a save persists. Ordered map so every
// save of the same contents is byte-identical (the atomic-commit tests
// compare files byte for byte).
// -------------------------------------------------------------------------

using RecordKey = std::tuple<char, bool, bool, int, index_t, index_t, index_t>;

RecordKey key_of(const TunedRecord& r) {
  return {r.dtype, r.trans_a, r.trans_b, r.threads, r.m, r.n, r.k};
}

struct Registry {
  mutable Mutex mu;
  std::map<RecordKey, TunedRecord> records SHALOM_GUARDED_BY(mu);
};

Registry& registry() {
  static Registry r;
  return r;
}

// Table-local counters (the rejected/failure pair lives in common/fault
// so it also surfaces through robustness_stats); explicit relaxed orders
// per the atomic-memory-order lint rule.
std::atomic<std::uint64_t> g_records_loaded{0};
std::atomic<std::uint64_t> g_saves{0};
std::atomic<std::uint64_t> g_save_failures{0};

void note_save_failure() noexcept {
  g_save_failures.fetch_add(1, std::memory_order_relaxed);
  telemetry::note_table_load_failure();
  health::report_degraded(health::Component::kTunedTable,
                          health::Cause::kOverload);
}

/// IO/authentication load failure: counts it AND marks the tuned-table
/// component degraded in the health registry (common/health.h). The next
/// successful load or save reports the component recovered - the table's
/// recovery is purely passive. Caller-argument failures (null path) only
/// count; they say nothing about the store itself.
void note_load_failure() noexcept {
  telemetry::note_table_load_failure();
  health::report_degraded(health::Component::kTunedTable,
                          health::Cause::kOverload);
}

void encode(const TunedRecord& r, unsigned char* buf) {
  std::memset(buf, 0, kTableRecordBytes);
  buf[0] = static_cast<unsigned char>(r.dtype);
  buf[1] = r.trans_a ? 1 : 0;
  buf[2] = r.trans_b ? 1 : 0;
  put_u32(buf + 4, static_cast<std::uint32_t>(r.threads));
  put_u64(buf + 8, static_cast<std::uint64_t>(r.m));
  put_u64(buf + 16, static_cast<std::uint64_t>(r.n));
  put_u64(buf + 24, static_cast<std::uint64_t>(r.k));
  put_u64(buf + 32, static_cast<std::uint64_t>(r.kc));
  put_u64(buf + 40, static_cast<std::uint64_t>(r.mc));
  put_u64(buf + 48, static_cast<std::uint64_t>(r.nc));
  put_u32(buf + 60, crc32(buf, 60));
}

TunedRecord decode(const unsigned char* buf) {
  TunedRecord r;
  r.dtype = static_cast<char>(buf[0]);
  r.trans_a = buf[1] != 0;
  r.trans_b = buf[2] != 0;
  r.threads = static_cast<int>(get_u32(buf + 4));
  r.m = static_cast<index_t>(get_u64(buf + 8));
  r.n = static_cast<index_t>(get_u64(buf + 16));
  r.k = static_cast<index_t>(get_u64(buf + 24));
  r.kc = static_cast<index_t>(get_u64(buf + 32));
  r.mc = static_cast<index_t>(get_u64(buf + 40));
  r.nc = static_cast<index_t>(get_u64(buf + 48));
  return r;
}

/// Builds and installs the tuned plan for one validated record. Plan
/// construction may still throw (allocation pressure, a contract the
/// planner enforces beyond table_validate); any failure rejects just
/// this record.
template <typename T>
bool seed_record(const TunedRecord& rec) noexcept {
  try {
    const Mode mode{rec.trans_a ? Trans::T : Trans::N,
                    rec.trans_b ? Trans::T : Trans::N};
    Config base;
    base.threads = rec.threads;
    TuneResult result;
    result.config = base;
    result.config.kc_override = rec.kc;
    result.config.mc_override = rec.mc;
    result.config.nc_override = rec.nc;
    seed_plan_cache<T>(mode, rec.m, rec.n, rec.k, result, base);
    return true;
  } catch (...) {
    return false;
  }
}

void register_unchecked(const TunedRecord& rec) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  reg.records[key_of(rec)] = rec;
}

}  // namespace

bool table_validate(const TunedRecord& rec) noexcept {
  if (rec.dtype != 's' && rec.dtype != 'd') return false;
  if (rec.threads < 1 || rec.threads > kMaxThreads) return false;
  if (rec.m < 1 || rec.m > kMaxDim) return false;
  if (rec.n < 1 || rec.n > kMaxDim) return false;
  if (rec.k < 1 || rec.k > kMaxDim) return false;
  // The kc clamp is the same bound the tuner itself searches under
  // (contracts::kMaxKc): a persisted blocking outside it could only have
  // come from corruption or a foreign build.
  if (rec.kc < 1 || rec.kc > contracts::kMaxKc) return false;
  if (rec.mc < 1 || rec.mc > kMaxDim) return false;
  if (rec.nc < 1 || rec.nc > kMaxDim) return false;
  return true;
}

bool table_record(const TunedRecord& rec) noexcept {
  if (!table_validate(rec)) {
    telemetry::note_table_record_rejected();
    return false;
  }
  try {
    register_unchecked(rec);
    return true;
  } catch (...) {
    telemetry::note_table_record_rejected();
    return false;
  }
}

std::size_t table_size() noexcept {
  try {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    return reg.records.size();
  } catch (...) {
    return 0;
  }
}

void table_clear() noexcept {
  try {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    reg.records.clear();
  } catch (...) {
  }
}

TableStats table_stats() noexcept {
  TableStats s;
  s.records_loaded = g_records_loaded.load(std::memory_order_relaxed);
  const RobustnessStats r = robustness_stats();
  s.records_rejected = r.table_records_rejected;
  s.load_failures = r.table_load_failures;
  s.saves = g_saves.load(std::memory_order_relaxed);
  s.save_failures = g_save_failures.load(std::memory_order_relaxed);
  s.size = table_size();
  return s;
}

shalom_status table_load(const char* path) noexcept {
  try {
    if (path == nullptr || *path == '\0') {
      telemetry::note_table_load_failure();
      return SHALOM_ERR_TABLE;
    }
    std::FILE* f = checked_open(path, "rb");
    if (f == nullptr) {
      note_load_failure();
      return SHALOM_ERR_TABLE;
    }

    // Phase 1: read and authenticate the whole file. Nothing is seeded
    // until the header (magic, version, fingerprint, CRC) checks out and
    // every declared record was physically present - a truncated file
    // rejects as a whole, so a partial load can never masquerade as a
    // complete one.
    unsigned char hdr[kTableHeaderBytes];
    bool ok = checked_read(f, hdr, sizeof hdr);
    std::uint32_t count = 0;
    if (ok) {
      count = get_u32(hdr + 12);
      ok = std::memcmp(hdr, kMagic, sizeof kMagic) == 0 &&
           get_u32(hdr + 8) == kTableFormatVersion &&
           get_u32(hdr + 32) == crc32(hdr, 32) && count <= kMaxRecords &&
           get_u64(hdr + 16) == arch::fingerprint(arch::host_machine());
    }
    std::vector<std::array<unsigned char, kTableRecordBytes>> raw;
    if (ok) {
      raw.resize(count);
      for (std::uint32_t i = 0; ok && i < count; ++i)
        ok = checked_read(f, raw[i].data(), kTableRecordBytes);
    }
    if (!checked_close(f)) {
      // Read-side close failure loses nothing; the load verdict stands.
    }
    if (!ok) {
      note_load_failure();
      return SHALOM_ERR_TABLE;
    }

    // Phase 2: per-record checksum + semantic validation + seeding.
    // Rejection is per record: one flipped bit costs exactly that record,
    // never the rest of the table.
    for (const auto& buf : raw) {
      if (get_u32(buf.data() + 60) != crc32(buf.data(), 60)) {
        telemetry::note_table_record_rejected();
        continue;
      }
      const TunedRecord rec = decode(buf.data());
      if (!table_validate(rec)) {
        telemetry::note_table_record_rejected();
        continue;
      }
      const bool seeded =
          rec.dtype == 's' ? seed_record<float>(rec) : seed_record<double>(rec);
      if (!seeded) {
        telemetry::note_table_record_rejected();
        continue;
      }
      register_unchecked(rec);
      g_records_loaded.fetch_add(1, std::memory_order_relaxed);
    }
    health::report_recovered(health::Component::kTunedTable);
    return SHALOM_OK;
  } catch (...) {
    note_load_failure();
    return SHALOM_ERR_TABLE;
  }
}

shalom_status table_save(const char* path) noexcept {
  try {
    if (path == nullptr || *path == '\0') {
      note_save_failure();
      return SHALOM_ERR_TABLE;
    }
    // Snapshot under the lock, serialize outside it. std::map order makes
    // equal contents produce byte-identical files.
    std::vector<TunedRecord> recs;
    {
      Registry& reg = registry();
      MutexLock lock(reg.mu);
      recs.reserve(reg.records.size());
      for (const auto& [key, rec] : reg.records) {
        (void)key;
        if (recs.size() >= kMaxRecords) break;
        recs.push_back(rec);
      }
    }

    const std::string tmp = std::string(path) + ".tmp";
    std::FILE* f = checked_open(tmp.c_str(), "wb");
    if (f == nullptr) {
      note_save_failure();
      return SHALOM_ERR_TABLE;
    }

    unsigned char hdr[kTableHeaderBytes];
    std::memset(hdr, 0, sizeof hdr);
    std::memcpy(hdr, kMagic, sizeof kMagic);
    put_u32(hdr + 8, kTableFormatVersion);
    put_u32(hdr + 12, static_cast<std::uint32_t>(recs.size()));
    put_u64(hdr + 16, arch::fingerprint(arch::host_machine()));
    put_u32(hdr + 32, crc32(hdr, 32));

    bool ok = checked_write(f, hdr, sizeof hdr);
    unsigned char buf[kTableRecordBytes];
    for (std::size_t i = 0; ok && i < recs.size(); ++i) {
      encode(recs[i], buf);
      ok = checked_write(f, buf, sizeof buf);
    }
    // Durability barrier BEFORE the commit rename: the temp file must be
    // on stable storage before it can replace the previous table, and the
    // close must succeed (it may flush buffered bytes) for the same
    // reason. Only then does the rename atomically publish the new table;
    // any earlier failure discards the temp file and the previous table
    // stays byte-identical.
    ok = ok && checked_fsync(f);
    const bool closed = checked_close(f);
    ok = ok && closed;
    ok = ok && checked_rename(tmp.c_str(), path);
    if (!ok) {
      if (std::remove(tmp.c_str()) != 0) {
        // Temp file may never have been created (open-side fault).
      }
      note_save_failure();
      return SHALOM_ERR_TABLE;
    }
    g_saves.fetch_add(1, std::memory_order_relaxed);
    health::report_recovered(health::Component::kTunedTable);
    return SHALOM_OK;
  } catch (...) {
    note_save_failure();
    return SHALOM_ERR_TABLE;
  }
}

namespace {

/// Startup pre-seed: SHALOM_TUNED_TABLE names a table to load before any
/// library entry point runs (static-init time, same discipline as the
/// SHALOM_FAULT EnvInit). Every failure path inside table_load degrades
/// to a cold start, so a bad value can never prevent startup.
struct TableEnvInit {
  TableEnvInit() noexcept {
    if (const char* path = shalom::env::raw("SHALOM_TUNED_TABLE")) {
      if (*path != '\0') {
        if (table_load(path) != SHALOM_OK) {
          shalom::env::warn_malformed(
              "SHALOM_TUNED_TABLE", path,
              "a readable tuned-table file written by this library on "
              "this machine (continuing with a cold start)");
        }
      }
    }
  }
} g_table_env_init;

}  // namespace

// ---------------------------------------------------------------------------
// Retuner
// ---------------------------------------------------------------------------

struct Retuner::Impl {
  enum class State { kIdle, kRunning, kDraining };

  RetunerOptions opt;

  mutable Mutex mu;
  std::condition_variable_any cv;
  State state SHALOM_GUARDED_BY(mu) = State::kIdle;
  bool kicked SHALOM_GUARDED_BY(mu) = false;

  std::thread worker;
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> promoted{0};

  explicit Impl(RetunerOptions o) : opt(std::move(o)) {}

  bool should_stop() const {
    MutexLock lock(mu);
    return state != State::kRunning;
  }

  /// Promotes up to `budget` hot shapes of one element type: samples the
  /// cache's hot snapshot, skips shapes that already carry a tuned
  /// record, tunes the rest and installs result + record. A shape that
  /// fails to tune is skipped (and retried naturally next cycle if still
  /// hot).
  template <typename T>
  void promote(char dtype, int& budget) {
    const std::vector<HotShape> hot = PlanCache<T>::global().hot(
        static_cast<std::size_t>(opt.top_k > 0 ? opt.top_k : 0));
    for (const HotShape& h : hot) {
      if (budget <= 0 || should_stop()) return;
      TunedRecord rec;
      rec.dtype = dtype;
      rec.trans_a = h.key.trans_a != 0;
      rec.trans_b = h.key.trans_b != 0;
      rec.threads = h.key.threads;
      rec.m = h.key.m;
      rec.n = h.key.n;
      rec.k = h.key.k;
      {
        Registry& reg = registry();
        MutexLock lock(reg.mu);
        if (reg.records.find(key_of(rec)) != reg.records.end()) continue;
      }
      try {
        const Mode mode{rec.trans_a ? Trans::T : Trans::N,
                        rec.trans_b ? Trans::T : Trans::N};
        Config base = opt.base;
        base.threads = rec.threads;
        const TuneResult result =
            tune<T>(mode, rec.m, rec.n, rec.k, base, opt.tune);
        seed_plan_cache<T>(mode, rec.m, rec.n, rec.k, result, base);
        rec.kc = result.config.kc_override;
        rec.mc = result.config.mc_override;
        rec.nc = result.config.nc_override;
        if (table_record(rec)) {
          promoted.fetch_add(1, std::memory_order_relaxed);
          --budget;
        }
      } catch (...) {
        // Promotion is an optimization; a shape that cannot be measured
        // (allocation pressure, a racing clear) is simply not promoted.
      }
    }
  }

  void run() {
    for (;;) {
      {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(opt.period_ms > 0 ? opt.period_ms : 0);
        MutexLock lock(mu);
        while (state == State::kRunning && !kicked) {
          if (cv.wait_until(lock, deadline) == std::cv_status::timeout) break;
        }
        if (state != State::kRunning) return;
        kicked = false;
      }
      int budget = opt.max_tunes_per_cycle;
      promote<float>('s', budget);
      promote<double>('d', budget);
      cycles.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

Retuner::Retuner(RetunerOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}

Retuner::~Retuner() { (void)stop(); }

bool Retuner::start() noexcept {
  try {
    MutexLock lock(impl_->mu);
    if (impl_->state != Impl::State::kIdle) return false;
    impl_->state = Impl::State::kRunning;
    impl_->kicked = false;
    try {
      impl_->worker = std::thread([this] { impl_->run(); });
    } catch (...) {
      impl_->state = Impl::State::kIdle;
      return false;
    }
    return true;
  } catch (...) {
    return false;
  }
}

shalom_status Retuner::stop() noexcept {
  try {
    bool was_running = false;
    {
      MutexLock lock(impl_->mu);
      if (impl_->state == Impl::State::kRunning) {
        impl_->state = Impl::State::kDraining;
        was_running = true;
      }
    }
    impl_->cv.notify_all();
    if (impl_->worker.joinable()) impl_->worker.join();
    {
      MutexLock lock(impl_->mu);
      impl_->state = Impl::State::kIdle;
    }
    if (was_running && !impl_->opt.save_path.empty())
      return table_save(impl_->opt.save_path.c_str());
    return SHALOM_OK;
  } catch (...) {
    return SHALOM_ERR_INTERNAL;
  }
}

bool Retuner::running() const noexcept {
  try {
    MutexLock lock(impl_->mu);
    return impl_->state == Impl::State::kRunning;
  } catch (...) {
    return false;
  }
}

std::uint64_t Retuner::cycles() const noexcept {
  return impl_->cycles.load(std::memory_order_relaxed);
}

std::uint64_t Retuner::promoted() const noexcept {
  return impl_->promoted.load(std::memory_order_relaxed);
}

void Retuner::kick() noexcept {
  try {
    {
      MutexLock lock(impl_->mu);
      if (impl_->state != Impl::State::kRunning) return;
      impl_->kicked = true;
    }
    impl_->cv.notify_all();
  } catch (...) {
  }
}

}  // namespace shalom::tuning
