#include "tuning/autotune.h"

#include <algorithm>
#include <memory>

#include "bench_util/runner.h"
#include "bench_util/stats.h"
#include "common/rng.h"
#include "core/kernel_contracts.h"
#include "core/plan_cache.h"
#include "core/shalom.h"

namespace shalom::tuning {

namespace {

template <typename T>
double measure(Mode mode, index_t M, index_t N, index_t K,
               const Config& cfg, int reps, Matrix<T>& a, Matrix<T>& b,
               Matrix<T>& c) {
  const auto st = bench::time_kernel(
      [&] {
        gemm(mode.a, mode.b, M, N, K, T{1}, a.data(), a.ld(), b.data(),
             b.ld(), T{0}, c.data(), c.ld(), cfg);
      },
      reps, /*warm=*/true);
  return bench::gemm_gflops(static_cast<double>(M), static_cast<double>(N),
                            static_cast<double>(K), st.geomean_s);
}

index_t scaled(index_t v, double s) {
  return std::max<index_t>(1, static_cast<index_t>(v * s));
}

}  // namespace

template <typename T>
TuneResult tune(Mode mode, index_t M, index_t N, index_t K,
                const Config& base, const TuneOptions& opt) {
  const arch::MachineDescriptor& mach = base.resolved_machine();
  const model::Tile tile = model::tile_for<T>(mach);
  const model::Blocking model_blk =
      model::solve_blocking<T>(mach, tile, M, N, K);

  const index_t a_rows = (mode.a == Trans::N) ? M : K;
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_rows = (mode.b == Trans::N) ? K : N;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;
  Matrix<T> a(a_rows, a_cols), b(b_rows, b_cols), c(M, N);
  fill_random(a, 17);
  fill_random(b, 18);

  TuneResult result;
  Config cfg = base;
  cfg.kc_override = cfg.mc_override = cfg.nc_override = 0;
  result.model_gflops = measure<T>(mode, M, N, K, cfg, opt.reps, a, b, c);
  result.candidates.push_back({model_blk, result.model_gflops});

  // Coordinate search: scale each dimension independently around the
  // model's value (a full cross product would be reps * |scales|^3
  // measurements; coordinate descent captures most of the gain).
  model::Blocking best_blk = model_blk;
  double best = result.model_gflops;
  auto try_blk = [&](const model::Blocking& blk) {
    Config t = base;
    t.kc_override = blk.kc;
    t.mc_override = blk.mc;
    t.nc_override = blk.nc;
    const double g = measure<T>(mode, M, N, K, t, opt.reps, a, b, c);
    result.candidates.push_back({blk, g});
    if (g > best) {
      best = g;
      best_blk = blk;
    }
  };

  for (double s : opt.scales) {
    if (s == 1.0) continue;
    // Clamp to the model's kc ceiling: the plan applies kc_override
    // as-is, so an unclamped candidate would measure a blocking the
    // analytic model (and its L1 sliver argument) can never produce.
    try_blk({best_blk.mc,
             std::min(scaled(model_blk.kc, s), contracts::kMaxKc),
             best_blk.nc});
  }
  for (double s : opt.scales) {
    if (s == 1.0) continue;
    try_blk({scaled(model_blk.mc, s), best_blk.kc, best_blk.nc});
  }
  for (double s : opt.scales) {
    if (s == 1.0) continue;
    try_blk({best_blk.mc, best_blk.kc, scaled(model_blk.nc, s)});
  }

  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const TuneCandidate& x, const TuneCandidate& y) {
              return x.gflops > y.gflops;
            });
  result.best_gflops = best;
  result.config = base;
  result.config.kc_override = best_blk.kc;
  result.config.mc_override = best_blk.mc;
  result.config.nc_override = best_blk.nc;
  return result;
}

template TuneResult tune<float>(Mode, index_t, index_t, index_t,
                                const Config&, const TuneOptions&);
template TuneResult tune<double>(Mode, index_t, index_t, index_t,
                                 const Config&, const TuneOptions&);

template <typename T>
void seed_plan_cache(Mode mode, index_t M, index_t N, index_t K,
                     const TuneResult& result, const Config& base) {
  // Build the plan with the tuned overrides, but key it the way a plain
  // `base` call keys its lookup (zero overrides) - that is what makes the
  // seeded blocking transparent to callers.
  Config tuned = result.config;
  tuned.machine = base.machine;
  tuned.threads = detail::resolve_threads(base.threads);

  Config plain = base;
  plain.threads = tuned.threads;
  plain.kc_override = plain.mc_override = plain.nc_override = 0;

  const auto plan = std::make_shared<const GemmPlan<T>>(
      plan_create<T>(mode, M, N, K, tuned));
  for (LdClass cls : {LdClass::kContiguous, LdClass::kPadded}) {
    PlanCache<T>::global().insert(
        make_plan_key(mode, M, N, K, cls, plain.threads, plain), plan);
  }
}

template void seed_plan_cache<float>(Mode, index_t, index_t, index_t,
                                     const TuneResult&, const Config&);
template void seed_plan_cache<double>(Mode, index_t, index_t, index_t,
                                      const TuneResult&, const Config&);

}  // namespace shalom::tuning
