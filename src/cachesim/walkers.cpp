#include "cachesim/walkers.h"

#include <algorithm>

#include "core/model.h"

namespace shalom::cachesim {

namespace {

constexpr addr_t kPage = 4096;

/// Synthetic allocation layout: distinct page-aligned regions.
struct Layout {
  addr_t a, b, c, ac, bc;

  template <typename T>
  static Layout make(index_t M, index_t N, index_t K, index_t ac_elems,
                     index_t bc_elems) {
    auto align = [](addr_t x) { return (x + kPage - 1) / kPage * kPage; };
    Layout l{};
    addr_t cur = 16 * kPage;
    l.a = cur;
    cur = align(cur + static_cast<addr_t>(M) * K * sizeof(T));
    l.b = cur;
    cur = align(cur + static_cast<addr_t>(N) * K * sizeof(T));  // NT: N x K
    l.c = cur;
    cur = align(cur + static_cast<addr_t>(M) * N * sizeof(T));
    l.ac = cur;
    cur = align(cur + static_cast<addr_t>(ac_elems) * sizeof(T));
    l.bc = cur;
    return l;
  }
};

SimResult finish(const Hierarchy& h) {
  return {h.accesses(), h.l1_misses(), h.l2_misses(), h.l3_misses(),
          h.tlb_misses()};
}

/// Walks the C-tile update: mr rows of nr elements, read + write.
template <typename T>
void touch_c_tile(Hierarchy& h, addr_t c, index_t ldc, int mr, int nr) {
  for (int i = 0; i < mr; ++i) {
    const addr_t row = c + static_cast<addr_t>(i) * ldc * sizeof(T);
    h.access(row, static_cast<unsigned>(nr * sizeof(T)));  // read
    h.access(row, static_cast<unsigned>(nr * sizeof(T)));  // write
  }
}

}  // namespace

template <typename T>
SimResult walk_goto_nt(const arch::MachineDescriptor& machine, index_t M,
                       index_t N, index_t K, int mr, int nr) {
  Hierarchy h(machine);
  const model::Blocking blk =
      model::solve_blocking<T>(machine, {mr, nr}, M, N, K);
  const index_t ldb = K;  // B stored N x K under NT
  const index_t ldc = N;
  const index_t lda = K;
  const Layout lay = Layout::make<T>(
      M, N, K, blk.mc * blk.kc + 64, blk.kc * blk.nc + 64);

  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t kk = 0; kk < K; kk += blk.kc) {
      const index_t kcur = std::min<index_t>(blk.kc, K - kk);

      // Pack pass for the B panel: read each op(B) column (= B storage
      // row segment, contiguous along k), write the sliver region.
      for (index_t j0 = 0; j0 < ncur; j0 += nr) {
        const index_t width = std::min<index_t>(nr, ncur - j0);
        for (index_t j = 0; j < width; ++j) {
          h.access(lay.b + ((jj + j0 + j) * ldb + kk) * sizeof(T),
                   static_cast<unsigned>(kcur * sizeof(T)));
        }
        h.access(lay.bc + (j0 / nr) * blk.kc * nr * sizeof(T),
                 static_cast<unsigned>(kcur * nr * sizeof(T)));
      }

      for (index_t ii = 0; ii < M; ii += blk.mc) {
        const index_t mcur = std::min<index_t>(blk.mc, M - ii);

        // Pack pass for the A block: read rows, write slivers.
        for (index_t i = 0; i < mcur; ++i)
          h.access(lay.a + ((ii + i) * lda + kk) * sizeof(T),
                   static_cast<unsigned>(kcur * sizeof(T)));
        h.access(lay.ac, static_cast<unsigned>(
                             std::min<index_t>(mcur * kcur, blk.mc * blk.kc) *
                             sizeof(T)));

        // Packed-packed kernel loops.
        for (index_t j0 = 0; j0 < ncur; j0 += nr) {
          const addr_t bc_sliver =
              lay.bc + (j0 / nr) * blk.kc * nr * sizeof(T);
          for (index_t i0 = 0; i0 < mcur; i0 += mr) {
            const addr_t ac_sliver =
                lay.ac + (i0 / mr) * kcur * mr * sizeof(T);
            for (index_t k = 0; k < kcur; ++k) {
              h.access(ac_sliver + k * mr * sizeof(T),
                       static_cast<unsigned>(mr * sizeof(T)));
              h.access(bc_sliver + k * nr * sizeof(T),
                       static_cast<unsigned>(nr * sizeof(T)));
            }
            touch_c_tile<T>(h, lay.c + ((ii + i0) * ldc + jj + j0) *
                                           sizeof(T),
                            ldc, mr, nr);
          }
        }
      }
    }
  }
  return finish(h);
}

template <typename T>
SimResult walk_shalom_nt(const arch::MachineDescriptor& machine, index_t M,
                         index_t N, index_t K) {
  Hierarchy h(machine);
  constexpr int kMr = 7;
  const int nr = 12 * 4 / static_cast<int>(sizeof(T));  // 12 FP32 / 6 FP64
  const model::Blocking blk =
      model::solve_blocking<T>(machine, {kMr, nr}, M, N, K);
  const index_t ldb = K;
  const index_t ldc = N;
  const index_t lda = K;
  const Layout lay = Layout::make<T>(M, N, K, 64, 2 * blk.kc * nr + 64);

  // Loop exchange: ii before kk (Section 8.4's locality argument), A in
  // place, B packed inside the micro-kernel.
  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t ii = 0; ii < M; ii += blk.mc) {
      const index_t mcur = std::min<index_t>(blk.mc, M - ii);
      for (index_t kk = 0; kk < K; kk += blk.kc) {
        const index_t kcur = std::min<index_t>(blk.kc, K - kk);

        for (index_t j0 = 0; j0 < ncur; j0 += nr) {
          const index_t width = std::min<index_t>(nr, ncur - j0);
          const addr_t bc_sliver = lay.bc + (j0 / nr) % 2 *
                                       (blk.kc * nr + 64) * sizeof(T);

          // Fused inner-product pack kernel: per 3-column group, walk the
          // first A stripe and the 3 B rows along k, scattering into Bc.
          const index_t stripe = std::min<index_t>(kMr, mcur);
          for (index_t jb = 0; jb < width; jb += 3) {
            const index_t w = std::min<index_t>(3, width - jb);
            for (index_t k = 0; k < kcur; k += 4) {
              const unsigned klen = static_cast<unsigned>(
                  std::min<index_t>(4, kcur - k) * sizeof(T));
              for (index_t i = 0; i < stripe; ++i)
                h.access(lay.a + ((ii + i) * lda + kk + k) * sizeof(T),
                         klen);
              for (index_t jc = 0; jc < w; ++jc)
                h.access(lay.b + ((jj + j0 + jb + jc) * ldb + kk + k) *
                                     sizeof(T),
                         klen);
              // Scatter: rows k..k+3 of the sliver, w elements each.
              for (index_t kk2 = 0; kk2 < std::min<index_t>(4, kcur - k);
                   ++kk2)
                h.access(bc_sliver + ((k + kk2) * nr + jb) * sizeof(T),
                         static_cast<unsigned>(w * sizeof(T)));
            }
          }
          touch_c_tile<T>(h,
                          lay.c + ((ii)*ldc + jj + j0) * sizeof(T), ldc,
                          static_cast<int>(stripe),
                          static_cast<int>(width));

          // Remaining stripes: direct A + packed B main kernel.
          for (index_t i0 = kMr; i0 < mcur; i0 += kMr) {
            const index_t meff = std::min<index_t>(kMr, mcur - i0);
            for (index_t k = 0; k < kcur; k += 4) {
              const unsigned klen = static_cast<unsigned>(
                  std::min<index_t>(4, kcur - k) * sizeof(T));
              for (index_t i = 0; i < meff; ++i)
                h.access(lay.a + ((ii + i0 + i) * lda + kk + k) * sizeof(T),
                         klen);
              for (index_t kk2 = 0; kk2 < std::min<index_t>(4, kcur - k);
                   ++kk2)
                h.access(bc_sliver + (k + kk2) * nr * sizeof(T),
                         static_cast<unsigned>(width * sizeof(T)));
            }
            touch_c_tile<T>(h,
                            lay.c + ((ii + i0) * ldc + jj + j0) * sizeof(T),
                            ldc, static_cast<int>(meff),
                            static_cast<int>(width));
          }
        }
      }
    }
  }
  return finish(h);
}

template SimResult walk_goto_nt<float>(const arch::MachineDescriptor&,
                                       index_t, index_t, index_t, int, int);
template SimResult walk_shalom_nt<float>(const arch::MachineDescriptor&,
                                         index_t, index_t, index_t);

}  // namespace shalom::cachesim
