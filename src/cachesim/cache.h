// Trace-driven set-associative cache hierarchy simulator.
//
// Fig. 12 of the paper compares L2 data-cache misses of the competing
// packing strategies using hardware counters. The reproduction host
// exposes no PMU, so this module replays each strategy's exact memory
// access pattern through a software model of the target machine's cache
// hierarchy (L1/L2/L3, physical-index approximation, per-set LRU,
// inclusive fills) and counts misses per level. What Fig. 12 reports -
// the *relative* miss reduction between strategies - is a pure function
// of the access streams, which the walkers (walkers.h) reproduce
// bit-for-bit from the drivers' loop structures.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine.h"
#include "common/error.h"

namespace shalom::cachesim {

using addr_t = std::uint64_t;

/// One set-associative, true-LRU, write-allocate cache level.
class CacheLevel {
 public:
  CacheLevel(std::size_t size_bytes, int associativity,
             std::size_t line_bytes);

  /// Returns true on hit; on miss the line is installed (evicting LRU).
  bool access(addr_t addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size_bytes() const { return size_bytes_; }
  void reset_counters() {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  std::size_t size_bytes_;
  int ways_;
  std::size_t line_bytes_;
  std::size_t sets_;
  unsigned line_shift_;
  // tags_[set * ways + way]; lru_ ranks: 0 = most recent.
  std::vector<addr_t> tags_;
  std::vector<std::uint8_t> lru_;
  std::vector<std::uint8_t> valid_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// L1 -> L2 -> optional L3 -> memory, checked in order; a hit at level X
/// installs into all levels above (inclusive). A data TLB (modeled as a
/// set-associative cache of 4 KiB pages) is consulted on every access:
/// the paper's pack-ahead design (Section 5.3.2) exists precisely to
/// avoid the TLB misses of first-touching the next sliver, so Fig. 12's
/// bench reports dTLB misses alongside L2 misses.
class Hierarchy {
 public:
  explicit Hierarchy(const arch::MachineDescriptor& machine);

  /// Performs one read or write access of `bytes` starting at `addr`
  /// (split across lines as needed).
  void access(addr_t addr, unsigned bytes = 4);

  std::uint64_t l1_misses() const { return l1_.misses(); }
  std::uint64_t l2_misses() const { return l2_.misses(); }
  std::uint64_t l3_misses() const { return l3_ ? l3_->misses() : 0; }
  std::uint64_t tlb_misses() const { return dtlb_.misses(); }
  std::uint64_t accesses() const { return accesses_; }

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  std::vector<CacheLevel> l3_storage_;
  CacheLevel* l3_ = nullptr;
  CacheLevel dtlb_;  // 64-entry, 4-way, 4 KiB pages (ARMv8-class L1 dTLB)
  std::size_t line_bytes_;
  std::uint64_t accesses_ = 0;
};

}  // namespace shalom::cachesim
