// Strategy walkers: replay the memory access stream of each library's
// NT-mode GEMM through the cache simulator (paper Fig. 12 experiment:
// M = 64, N fixed, K swept; LibShalom's loop exchange + no-A-packing
// should show the lowest L2 miss count).
//
// The walkers mirror the corresponding drivers' loop nests exactly -
// same blocking, same packing passes, same kernel access order - but emit
// (address, size) pairs instead of touching data. Synthetic base
// addresses place each matrix and packing buffer in a distinct region,
// page-aligned, mimicking separate allocations.
#pragma once

#include <cstdint>

#include "arch/machine.h"
#include "cachesim/cache.h"
#include "common/matrix.h"

namespace shalom::cachesim {

struct SimResult {
  std::uint64_t accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t tlb_misses = 0;
};

/// Always-pack Goto GEMM (OpenBLAS/BLIS/ARMPL strategies), NT mode, with
/// an (mr x nr) register tile. Packs the B panel per (jj, kk) and the A
/// block per ii in separate passes, then walks the packed-packed kernel.
template <typename T>
SimResult walk_goto_nt(const arch::MachineDescriptor& machine, index_t M,
                       index_t N, index_t K, int mr, int nr);

/// LibShalom NT GEMM: loop exchange (ii before kk), A read in place, B
/// packed by the fused inner-product kernel (re-reading the A stripe per
/// 3-column group, scattering into Bc), remaining stripes on packed B.
template <typename T>
SimResult walk_shalom_nt(const arch::MachineDescriptor& machine, index_t M,
                         index_t N, index_t K);

}  // namespace shalom::cachesim
