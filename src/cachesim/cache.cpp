#include "cachesim/cache.h"

#include <bit>

namespace shalom::cachesim {

CacheLevel::CacheLevel(std::size_t size_bytes, int associativity,
                       std::size_t line_bytes)
    : size_bytes_(size_bytes),
      ways_(associativity),
      line_bytes_(line_bytes) {
  SHALOM_REQUIRE(size_bytes > 0 && associativity > 0 && line_bytes > 0);
  SHALOM_REQUIRE(std::has_single_bit(line_bytes), " line=", line_bytes);
  sets_ = size_bytes_ / (line_bytes_ * ways_);
  SHALOM_REQUIRE(sets_ >= 1, " size=", size_bytes, " ways=", associativity);
  line_shift_ = static_cast<unsigned>(std::countr_zero(line_bytes_));
  tags_.assign(sets_ * ways_, 0);
  lru_.assign(sets_ * ways_, 0);
  valid_.assign(sets_ * ways_, 0);
}

bool CacheLevel::access(addr_t addr) {
  const addr_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  const std::size_t base = set * ways_;

  int hit_way = -1;
  for (int w = 0; w < ways_; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) {
      hit_way = w;
      break;
    }
  }

  if (hit_way >= 0) {
    ++hits_;
    const std::uint8_t old_rank = lru_[base + hit_way];
    for (int w = 0; w < ways_; ++w)
      if (lru_[base + w] < old_rank) ++lru_[base + w];
    lru_[base + hit_way] = 0;
    return true;
  }

  ++misses_;
  // Victim: invalid way if any, else the LRU-ranked way.
  int victim = -1;
  for (int w = 0; w < ways_; ++w) {
    if (!valid_[base + w]) {
      victim = w;
      break;
    }
  }
  if (victim < 0) {
    for (int w = 0; w < ways_; ++w) {
      if (lru_[base + w] == ways_ - 1) {
        victim = w;
        break;
      }
    }
    if (victim < 0) victim = 0;
  }
  for (int w = 0; w < ways_; ++w)
    if (valid_[base + w] && lru_[base + w] < ways_ - 1) ++lru_[base + w];
  tags_[base + victim] = line;
  valid_[base + victim] = 1;
  lru_[base + victim] = 0;
  return false;
}

Hierarchy::Hierarchy(const arch::MachineDescriptor& machine)
    : l1_(machine.l1d.size_bytes, machine.l1d.associativity,
          machine.l1d.line_bytes),
      l2_(machine.l2.size_bytes, machine.l2.associativity,
          machine.l2.line_bytes),
      dtlb_(/*size=*/64 * 4096, /*assoc=*/4, /*line=*/4096),
      line_bytes_(machine.l1d.line_bytes) {
  if (machine.l3.present()) {
    l3_storage_.emplace_back(machine.l3.size_bytes,
                             machine.l3.associativity,
                             machine.l3.line_bytes);
    l3_ = &l3_storage_.front();
  }
}

void Hierarchy::access(addr_t addr, unsigned bytes) {
  const addr_t first_line = addr / line_bytes_;
  const addr_t last_line = (addr + bytes - 1) / line_bytes_;
  for (addr_t line = first_line; line <= last_line; ++line) {
    ++accesses_;
    const addr_t line_addr = line * line_bytes_;
    dtlb_.access(line_addr);
    if (l1_.access(line_addr)) continue;
    if (l2_.access(line_addr)) continue;
    if (l3_ != nullptr) l3_->access(line_addr);
  }
}

}  // namespace shalom::cachesim
