// Wide-vector types: the paper's Section 5.5 extension path.
//
// "Some new ARM-based many-cores ... support the latest ARM Scalable
// Vector Extension (SVE). This extension allows the CPU implementation to
// choose a vector length that is any multiple of 128 bits between 128 and
// 2048 bits. Our approach can be applied to a longer vector length with a
// revised mr and nr computed according to the available number and length
// of vector registers."
//
// This header provides the longer-vector substrate so that claim can be
// exercised: f32x8 (256-bit) and f32x16 (512-bit) with AVX2/AVX-512
// backends on the reproduction host (standing in for SVE-256/SVE-512;
// same register count, same width, same FMA semantics) and a portable
// emulation built from two halves elsewhere. The wide GEMM driver
// (src/core/widegemm.h) consumes these through the same concepts the
// 128-bit kernels use, with (mr, nr) re-derived by the unchanged analytic
// model - exactly the porting recipe Section 5.5 describes.
#pragma once

#include "simd/vec128.h"

namespace shalom::simd {

// ---------------------------------------------------------------------------
// f32x8: 256-bit, 8 lanes.
// ---------------------------------------------------------------------------
struct f32x8 {
  static constexpr int kLanes = 8;
  using value_type = float;

#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  __m256 v;
#else
  f32x4 lo, hi;  // emulated from two 128-bit halves (NEON / plain SSE)
#endif
};

SHALOM_INLINE f32x8 zero_f32x8() {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  return {_mm256_setzero_ps()};
#else
  return {zero_f32x4(), zero_f32x4()};
#endif
}

SHALOM_INLINE f32x8 broadcast8(float x) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  return {_mm256_set1_ps(x)};
#else
  return {broadcast(x), broadcast(x)};
#endif
}

SHALOM_INLINE f32x8 load8(const float* p) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  return {_mm256_loadu_ps(p)};
#else
  return {load(p), load(p + 4)};
#endif
}

SHALOM_INLINE void store8(float* p, f32x8 x) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  _mm256_storeu_ps(p, x.v);
#else
  store(p, x.lo);
  store(p + 4, x.hi);
#endif
}

SHALOM_INLINE f32x8 fmadd(f32x8 acc, f32x8 a, f32x8 b) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  return {_mm256_fmadd_ps(a.v, b.v, acc.v)};
#else
  return {fmadd(acc.lo, a.lo, b.lo), fmadd(acc.hi, a.hi, b.hi)};
#endif
}

SHALOM_INLINE float extract8(f32x8 a, int lane) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  alignas(32) float tmp[8];
  _mm256_store_ps(tmp, a.v);
  return tmp[lane];
#else
  return lane < 4 ? extract(a.lo, lane) : extract(a.hi, lane - 4);
#endif
}

SHALOM_INLINE f32x8 load8_partial(const float* p, int count) {
  float tmp[8] = {};
  for (int i = 0; i < count; ++i) tmp[i] = p[i];
  return load8(tmp);
}

SHALOM_INLINE void store8_partial(float* p, f32x8 x, int count) {
  float tmp[8];
  store8(tmp, x);
  for (int i = 0; i < count; ++i) p[i] = tmp[i];
}

// ---------------------------------------------------------------------------
// f32x16: 512-bit, 16 lanes.
// ---------------------------------------------------------------------------
struct f32x16 {
  static constexpr int kLanes = 16;
  using value_type = float;

#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  __m512 v;
#else
  f32x8 lo, hi;
#endif
};

SHALOM_INLINE f32x16 zero_f32x16() {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  return {_mm512_setzero_ps()};
#else
  return {zero_f32x8(), zero_f32x8()};
#endif
}

SHALOM_INLINE f32x16 broadcast16(float x) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  return {_mm512_set1_ps(x)};
#else
  return {broadcast8(x), broadcast8(x)};
#endif
}

SHALOM_INLINE f32x16 load16(const float* p) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  return {_mm512_loadu_ps(p)};
#else
  return {load8(p), load8(p + 8)};
#endif
}

SHALOM_INLINE void store16(float* p, f32x16 x) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  _mm512_storeu_ps(p, x.v);
#else
  store8(p, x.lo);
  store8(p + 8, x.hi);
#endif
}

SHALOM_INLINE f32x16 fmadd(f32x16 acc, f32x16 a, f32x16 b) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  return {_mm512_fmadd_ps(a.v, b.v, acc.v)};
#else
  return {fmadd(acc.lo, a.lo, b.lo), fmadd(acc.hi, a.hi, b.hi)};
#endif
}

SHALOM_INLINE float extract16(f32x16 a, int lane) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  alignas(64) float tmp[16];
  _mm512_store_ps(tmp, a.v);
  return tmp[lane];
#else
  return lane < 8 ? extract8(a.lo, lane) : extract8(a.hi, lane - 8);
#endif
}

SHALOM_INLINE f32x16 load16_partial(const float* p, int count) {
  float tmp[16] = {};
  for (int i = 0; i < count; ++i) tmp[i] = p[i];
  return load16(tmp);
}

SHALOM_INLINE void store16_partial(float* p, f32x16 x, int count) {
  float tmp[16];
  store16(tmp, x);
  for (int i = 0; i < count; ++i) p[i] = tmp[i];
}

// ---------------------------------------------------------------------------
// Uniform facade so the wide kernel can be written once over the width.
// ---------------------------------------------------------------------------
template <int Bits>
struct wide;

template <>
struct wide<128> {
  using type = f32x4;
  static SHALOM_INLINE type zero() { return zero_f32x4(); }
  static SHALOM_INLINE type bcast(float x) { return broadcast(x); }
  static SHALOM_INLINE type ld(const float* p) { return load(p); }
  static SHALOM_INLINE void st(float* p, type x) { store(p, x); }
  static SHALOM_INLINE type ldp(const float* p, int c) {
    return load_partial(p, c);
  }
  static SHALOM_INLINE void stp(float* p, type x, int c) {
    store_partial(p, x, c);
  }
  static SHALOM_INLINE type fma(type a, type x, type y) {
    return fmadd(a, x, y);
  }
};

template <>
struct wide<256> {
  using type = f32x8;
  static SHALOM_INLINE type zero() { return zero_f32x8(); }
  static SHALOM_INLINE type bcast(float x) { return broadcast8(x); }
  static SHALOM_INLINE type ld(const float* p) { return load8(p); }
  static SHALOM_INLINE void st(float* p, type x) { store8(p, x); }
  static SHALOM_INLINE type ldp(const float* p, int c) {
    return load8_partial(p, c);
  }
  static SHALOM_INLINE void stp(float* p, type x, int c) {
    store8_partial(p, x, c);
  }
  static SHALOM_INLINE type fma(type a, type x, type y) {
    return fmadd(a, x, y);
  }
};

template <>
struct wide<512> {
  using type = f32x16;
  static SHALOM_INLINE type zero() { return zero_f32x16(); }
  static SHALOM_INLINE type bcast(float x) { return broadcast16(x); }
  static SHALOM_INLINE type ld(const float* p) { return load16(p); }
  static SHALOM_INLINE void st(float* p, type x) { store16(p, x); }
  static SHALOM_INLINE type ldp(const float* p, int c) {
    return load16_partial(p, c);
  }
  static SHALOM_INLINE void stp(float* p, type x, int c) {
    store16_partial(p, x, c);
  }
  static SHALOM_INLINE type fma(type a, type x, type y) {
    return fmadd(a, x, y);
  }
};

/// True when the width has a native (non-emulated) backend on this build.
constexpr bool wide_native(int bits) {
#if defined(SHALOM_SIMD_SSE) && defined(__AVX512F__)
  return bits <= 512;
#elif defined(SHALOM_SIMD_SSE) && defined(__AVX2__)
  return bits <= 256;
#else
  return bits <= 128;
#endif
}

}  // namespace shalom::simd
