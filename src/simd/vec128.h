// Portable 128-bit SIMD vectors: the register model of the paper.
//
// LibShalom's analytic kernel model (paper Eq. 1) is written against the
// ARMv8 NEON register file: 32 architectural 128-bit vector registers and a
// lane-indexed fused multiply-add (FMLA Vd.4S, Vn.4S, Vm.S[lane]).  This
// header reproduces exactly that instruction vocabulary behind two types:
//
//   f32x4  - four single-precision lanes (j = 4 in the paper's notation)
//   f64x2  - two double-precision lanes  (j = 2)
//
// Backends:
//   * AArch64 NEON    - the paper's target; FMLA maps 1:1.
//   * x86-64 SSE/FMA3 - the reproduction host.  128-bit XMM operations with
//     VFMADD; with AVX-512VL the architectural XMM file is also 32 registers,
//     so the paper's register-budget constraint holds unchanged.
//   * scalar          - portable fallback, used for differential testing.
//
// All functions are force-inlined wrappers; at -O3 each maps to a single
// instruction (plus a shuffle for lane broadcast on SSE, which NEON encodes
// inside FMLA).
#pragma once

#include <cstddef>
#include <cstring>

#if defined(__aarch64__)
#define SHALOM_SIMD_NEON 1
#include <arm_neon.h>
#elif defined(__SSE2__)
#define SHALOM_SIMD_SSE 1
#include <immintrin.h>
#else
#define SHALOM_SIMD_SCALAR 1
#endif

#define SHALOM_INLINE inline __attribute__((always_inline))

namespace shalom::simd {

// ---------------------------------------------------------------------------
// f32x4
// ---------------------------------------------------------------------------
struct f32x4 {
  static constexpr int kLanes = 4;
  using value_type = float;

#if defined(SHALOM_SIMD_NEON)
  float32x4_t v;
#elif defined(SHALOM_SIMD_SSE)
  __m128 v;
#else
  float v[4];
#endif
};

SHALOM_INLINE f32x4 zero_f32x4() {
#if defined(SHALOM_SIMD_NEON)
  return {vdupq_n_f32(0.f)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_setzero_ps()};
#else
  return {{0.f, 0.f, 0.f, 0.f}};
#endif
}

SHALOM_INLINE f32x4 broadcast(float x) {
#if defined(SHALOM_SIMD_NEON)
  return {vdupq_n_f32(x)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_set1_ps(x)};
#else
  return {{x, x, x, x}};
#endif
}

/// Unaligned 4-lane load (LDR Q / MOVUPS).
SHALOM_INLINE f32x4 load(const float* p) {
#if defined(SHALOM_SIMD_NEON)
  return {vld1q_f32(p)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_loadu_ps(p)};
#else
  f32x4 r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
#endif
}

SHALOM_INLINE void store(float* p, f32x4 x) {
#if defined(SHALOM_SIMD_NEON)
  vst1q_f32(p, x.v);
#elif defined(SHALOM_SIMD_SSE)
  _mm_storeu_ps(p, x.v);
#else
  std::memcpy(p, x.v, sizeof(x.v));
#endif
}

SHALOM_INLINE f32x4 add(f32x4 a, f32x4 b) {
#if defined(SHALOM_SIMD_NEON)
  return {vaddq_f32(a.v, b.v)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_add_ps(a.v, b.v)};
#else
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2], a.v[3] + b.v[3]}};
#endif
}

SHALOM_INLINE f32x4 mul(f32x4 a, f32x4 b) {
#if defined(SHALOM_SIMD_NEON)
  return {vmulq_f32(a.v, b.v)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_mul_ps(a.v, b.v)};
#else
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2], a.v[3] * b.v[3]}};
#endif
}

/// acc + a * b with a single rounding (FMLA / VFMADD).
SHALOM_INLINE f32x4 fmadd(f32x4 acc, f32x4 a, f32x4 b) {
#if defined(SHALOM_SIMD_NEON)
  return {vfmaq_f32(acc.v, a.v, b.v)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_fmadd_ps(a.v, b.v, acc.v)};
#else
  f32x4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = acc.v[i] + a.v[i] * b.v[i];
  return r;
#endif
}

/// acc + b * a[Lane]: the paper's scalar-vector FMA
/// (FMLA Vd.4S, Vb.4S, Va.S[Lane]).  On SSE the lane broadcast is an
/// explicit shuffle feeding VFMADD, which the OoO core executes on a
/// separate port from the FMA itself.
template <int Lane>
SHALOM_INLINE f32x4 fmadd_lane(f32x4 acc, f32x4 a, f32x4 b) {
  static_assert(Lane >= 0 && Lane < 4);
#if defined(SHALOM_SIMD_NEON)
  return {vfmaq_laneq_f32(acc.v, b.v, a.v, Lane)};
#elif defined(SHALOM_SIMD_SSE)
  const __m128 lane =
      _mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(Lane, Lane, Lane, Lane));
  return {_mm_fmadd_ps(lane, b.v, acc.v)};
#else
  f32x4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = acc.v[i] + a.v[Lane] * b.v[i];
  return r;
#endif
}

SHALOM_INLINE float reduce_add(f32x4 a) {
#if defined(SHALOM_SIMD_NEON)
  return vaddvq_f32(a.v);
#elif defined(SHALOM_SIMD_SSE)
  __m128 sh = _mm_movehdup_ps(a.v);
  __m128 sums = _mm_add_ps(a.v, sh);
  sh = _mm_movehl_ps(sh, sums);
  sums = _mm_add_ss(sums, sh);
  return _mm_cvtss_f32(sums);
#else
  return a.v[0] + a.v[1] + a.v[2] + a.v[3];
#endif
}

SHALOM_INLINE float extract(f32x4 a, int lane) {
#if defined(SHALOM_SIMD_NEON)
  float tmp[4];
  vst1q_f32(tmp, a.v);
  return tmp[lane];
#elif defined(SHALOM_SIMD_SSE)
  alignas(16) float tmp[4];
  _mm_store_ps(tmp, a.v);
  return tmp[lane];
#else
  return a.v[lane];
#endif
}

/// Loads `count` (1..3) lanes, zero-filling the rest: edge-column loads.
SHALOM_INLINE f32x4 load_partial(const float* p, int count) {
  float tmp[4] = {0.f, 0.f, 0.f, 0.f};
  for (int i = 0; i < count; ++i) tmp[i] = p[i];
  return load(tmp);
}

/// Stores the low `count` (1..3) lanes.
SHALOM_INLINE void store_partial(float* p, f32x4 x, int count) {
  float tmp[4];
  store(tmp, x);
  for (int i = 0; i < count; ++i) p[i] = tmp[i];
}

// ---------------------------------------------------------------------------
// f64x2
// ---------------------------------------------------------------------------
struct f64x2 {
  static constexpr int kLanes = 2;
  using value_type = double;

#if defined(SHALOM_SIMD_NEON)
  float64x2_t v;
#elif defined(SHALOM_SIMD_SSE)
  __m128d v;
#else
  double v[2];
#endif
};

SHALOM_INLINE f64x2 zero_f64x2() {
#if defined(SHALOM_SIMD_NEON)
  return {vdupq_n_f64(0.0)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_setzero_pd()};
#else
  return {{0.0, 0.0}};
#endif
}

SHALOM_INLINE f64x2 broadcast(double x) {
#if defined(SHALOM_SIMD_NEON)
  return {vdupq_n_f64(x)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_set1_pd(x)};
#else
  return {{x, x}};
#endif
}

SHALOM_INLINE f64x2 load(const double* p) {
#if defined(SHALOM_SIMD_NEON)
  return {vld1q_f64(p)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_loadu_pd(p)};
#else
  f64x2 r;
  std::memcpy(r.v, p, sizeof(r.v));
  return r;
#endif
}

SHALOM_INLINE void store(double* p, f64x2 x) {
#if defined(SHALOM_SIMD_NEON)
  vst1q_f64(p, x.v);
#elif defined(SHALOM_SIMD_SSE)
  _mm_storeu_pd(p, x.v);
#else
  std::memcpy(p, x.v, sizeof(x.v));
#endif
}

SHALOM_INLINE f64x2 add(f64x2 a, f64x2 b) {
#if defined(SHALOM_SIMD_NEON)
  return {vaddq_f64(a.v, b.v)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_add_pd(a.v, b.v)};
#else
  return {{a.v[0] + b.v[0], a.v[1] + b.v[1]}};
#endif
}

SHALOM_INLINE f64x2 mul(f64x2 a, f64x2 b) {
#if defined(SHALOM_SIMD_NEON)
  return {vmulq_f64(a.v, b.v)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_mul_pd(a.v, b.v)};
#else
  return {{a.v[0] * b.v[0], a.v[1] * b.v[1]}};
#endif
}

SHALOM_INLINE f64x2 fmadd(f64x2 acc, f64x2 a, f64x2 b) {
#if defined(SHALOM_SIMD_NEON)
  return {vfmaq_f64(acc.v, a.v, b.v)};
#elif defined(SHALOM_SIMD_SSE)
  return {_mm_fmadd_pd(a.v, b.v, acc.v)};
#else
  f64x2 r;
  for (int i = 0; i < 2; ++i) r.v[i] = acc.v[i] + a.v[i] * b.v[i];
  return r;
#endif
}

template <int Lane>
SHALOM_INLINE f64x2 fmadd_lane(f64x2 acc, f64x2 a, f64x2 b) {
  static_assert(Lane >= 0 && Lane < 2);
#if defined(SHALOM_SIMD_NEON)
  return {vfmaq_laneq_f64(acc.v, b.v, a.v, Lane)};
#elif defined(SHALOM_SIMD_SSE)
  const __m128d lane = _mm_shuffle_pd(a.v, a.v, Lane == 0 ? 0x0 : 0x3);
  return {_mm_fmadd_pd(lane, b.v, acc.v)};
#else
  f64x2 r;
  for (int i = 0; i < 2; ++i) r.v[i] = acc.v[i] + a.v[Lane] * b.v[i];
  return r;
#endif
}

SHALOM_INLINE double reduce_add(f64x2 a) {
#if defined(SHALOM_SIMD_NEON)
  return vaddvq_f64(a.v);
#elif defined(SHALOM_SIMD_SSE)
  const __m128d hi = _mm_unpackhi_pd(a.v, a.v);
  return _mm_cvtsd_f64(_mm_add_sd(a.v, hi));
#else
  return a.v[0] + a.v[1];
#endif
}

SHALOM_INLINE double extract(f64x2 a, int lane) {
#if defined(SHALOM_SIMD_NEON)
  double tmp[2];
  vst1q_f64(tmp, a.v);
  return tmp[lane];
#elif defined(SHALOM_SIMD_SSE)
  alignas(16) double tmp[2];
  _mm_store_pd(tmp, a.v);
  return tmp[lane];
#else
  return a.v[lane];
#endif
}

SHALOM_INLINE f64x2 load_partial(const double* p, int count) {
  double tmp[2] = {0.0, 0.0};
  for (int i = 0; i < count; ++i) tmp[i] = p[i];
  return load(tmp);
}

SHALOM_INLINE void store_partial(double* p, f64x2 x, int count) {
  double tmp[2];
  store(tmp, x);
  for (int i = 0; i < count; ++i) p[i] = tmp[i];
}

/// In-register 4x4 transpose: on exit, a holds the original lane-0s,
/// b the lane-1s, etc. Used by the NT packing kernel to turn the Fig. 5
/// element scatter into whole-vector stores.
SHALOM_INLINE void transpose4(f32x4& a, f32x4& b, f32x4& c, f32x4& d) {
#if defined(SHALOM_SIMD_NEON)
  const float32x4x2_t ab = vtrnq_f32(a.v, b.v);
  const float32x4x2_t cd = vtrnq_f32(c.v, d.v);
  a.v = vcombine_f32(vget_low_f32(ab.val[0]), vget_low_f32(cd.val[0]));
  b.v = vcombine_f32(vget_low_f32(ab.val[1]), vget_low_f32(cd.val[1]));
  c.v = vcombine_f32(vget_high_f32(ab.val[0]), vget_high_f32(cd.val[0]));
  d.v = vcombine_f32(vget_high_f32(ab.val[1]), vget_high_f32(cd.val[1]));
#elif defined(SHALOM_SIMD_SSE)
  _MM_TRANSPOSE4_PS(a.v, b.v, c.v, d.v);
#else
  const f32x4 ta = a, tb = b, tc = c, td = d;
  for (int i = 0; i < 4; ++i) {
    a.v[i] = (i == 0 ? ta : i == 1 ? tb : i == 2 ? tc : td).v[0];
    b.v[i] = (i == 0 ? ta : i == 1 ? tb : i == 2 ? tc : td).v[1];
    c.v[i] = (i == 0 ? ta : i == 1 ? tb : i == 2 ? tc : td).v[2];
    d.v[i] = (i == 0 ? ta : i == 1 ? tb : i == 2 ? tc : td).v[3];
  }
#endif
}

// ---------------------------------------------------------------------------
// Type selection + prefetch
// ---------------------------------------------------------------------------

/// Maps an element type to its 128-bit vector type (paper's j = kLanes).
template <typename T>
struct vec_of;
template <>
struct vec_of<float> {
  using type = f32x4;
};
template <>
struct vec_of<double> {
  using type = f64x2;
};
template <typename T>
using vec_of_t = typename vec_of<T>::type;

template <typename T>
SHALOM_INLINE auto zero_vec() {
  if constexpr (std::is_same_v<T, float>) {
    return zero_f32x4();
  } else {
    return zero_f64x2();
  }
}

/// Prefetch into L1 for a read (PRFM PLDL1KEEP / PREFETCHT0).
SHALOM_INLINE void prefetch_read(const void* p) {
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
}

/// Prefetch for a write.
SHALOM_INLINE void prefetch_write(void* p) {
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
}

/// Backend name, for diagnostics and tests.
constexpr const char* backend_name() {
#if defined(SHALOM_SIMD_NEON)
  return "neon";
#elif defined(SHALOM_SIMD_SSE)
  return "sse";
#else
  return "scalar";
#endif
}

}  // namespace shalom::simd
