#include "core/shalom_c.h"

#include <memory>
#include <new>

#include "core/plan.h"
#include "core/shalom.h"

/* Opaque plan handle: one GemmPlan per element type, selected by dtype. */
struct shalom_plan {
  char dtype = 0;  // 's' or 'd'
  shalom::GemmPlan<float> fplan;
  shalom::GemmPlan<double> dplan;
};

namespace {

bool parse_trans(char c, shalom::Trans& out) {
  switch (c) {
    case 'N':
    case 'n':
      out = shalom::Trans::N;
      return true;
    case 'T':
    case 't':
      out = shalom::Trans::T;
      return true;
    default:
      return false;
  }
}

template <typename T>
int gemm_c(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n, ptrdiff_t k,
           T alpha, const T* a, ptrdiff_t lda, const T* b, ptrdiff_t ldb,
           T beta, T* c, ptrdiff_t ldc, int threads) {
  shalom::Trans ta, tb;
  if (!parse_trans(trans_a, ta) || !parse_trans(trans_b, tb)) return 1;
  shalom::Config cfg;
  cfg.threads = threads <= 0 ? 0 : threads;
  try {
    shalom::gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, cfg);
  } catch (const shalom::invalid_argument&) {
    return 2;
  } catch (const std::bad_alloc&) {
    return 5;
  } catch (...) {
    // E.g. std::system_error from worker-thread spawn: never let an
    // exception cross the extern "C" boundary.
    return 6;
  }
  return 0;
}

}  // namespace

extern "C" int shalom_sgemm(char trans_a, char trans_b, ptrdiff_t m,
                            ptrdiff_t n, ptrdiff_t k, float alpha,
                            const float* a, ptrdiff_t lda, const float* b,
                            ptrdiff_t ldb, float beta, float* c,
                            ptrdiff_t ldc, int threads) {
  return gemm_c(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc, threads);
}

extern "C" int shalom_dgemm(char trans_a, char trans_b, ptrdiff_t m,
                            ptrdiff_t n, ptrdiff_t k, double alpha,
                            const double* a, ptrdiff_t lda, const double* b,
                            ptrdiff_t ldb, double beta, double* c,
                            ptrdiff_t ldc, int threads) {
  return gemm_c(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc, threads);
}

extern "C" int shalom_plan_create(shalom_plan** out_plan, char dtype,
                                  char trans_a, char trans_b, ptrdiff_t m,
                                  ptrdiff_t n, ptrdiff_t k, int threads) {
  if (out_plan == nullptr) return 3;
  *out_plan = nullptr;
  if (dtype != 's' && dtype != 'S' && dtype != 'd' && dtype != 'D') return 1;
  shalom::Trans ta, tb;
  if (!parse_trans(trans_a, ta) || !parse_trans(trans_b, tb)) return 1;

  shalom::Config cfg;
  cfg.threads = threads <= 0 ? 0 : threads;
  const shalom::Mode mode{ta, tb};
  try {
    auto plan = std::make_unique<shalom_plan>();
    if (dtype == 's' || dtype == 'S') {
      plan->dtype = 's';
      plan->fplan = shalom::plan_create<float>(mode, m, n, k, cfg);
    } else {
      plan->dtype = 'd';
      plan->dplan = shalom::plan_create<double>(mode, m, n, k, cfg);
    }
    *out_plan = plan.release();
  } catch (const shalom::invalid_argument&) {
    return 2;
  } catch (const std::bad_alloc&) {
    return 5;
  } catch (...) {
    return 6;  // e.g. std::system_error spawning pool workers
  }
  return 0;
}

namespace {

template <typename T>
int plan_execute_c(const shalom::GemmPlan<T>& plan, T alpha, const T* a,
                   ptrdiff_t lda, const T* b, ptrdiff_t ldb, T beta, T* c,
                   ptrdiff_t ldc) {
  try {
    shalom::plan_execute(plan, alpha, a, lda, b, ldb, beta, c, ldc);
  } catch (const shalom::invalid_argument&) {
    return 2;
  } catch (const std::bad_alloc&) {
    return 5;
  } catch (...) {
    return 6;
  }
  return 0;
}

}  // namespace

extern "C" int shalom_plan_execute_s(const shalom_plan* plan, float alpha,
                                     const float* a, ptrdiff_t lda,
                                     const float* b, ptrdiff_t ldb,
                                     float beta, float* c, ptrdiff_t ldc) {
  if (plan == nullptr) return 3;
  if (plan->dtype != 's') return 4;
  return plan_execute_c(plan->fplan, alpha, a, lda, b, ldb, beta, c, ldc);
}

extern "C" int shalom_plan_execute_d(const shalom_plan* plan, double alpha,
                                     const double* a, ptrdiff_t lda,
                                     const double* b, ptrdiff_t ldb,
                                     double beta, double* c, ptrdiff_t ldc) {
  if (plan == nullptr) return 3;
  if (plan->dtype != 'd') return 4;
  return plan_execute_c(plan->dplan, alpha, a, lda, b, ldb, beta, c, ldc);
}

extern "C" void shalom_plan_destroy(shalom_plan* plan) { delete plan; }
