#include "core/shalom_c.h"

#include "core/shalom.h"

namespace {

bool parse_trans(char c, shalom::Trans& out) {
  switch (c) {
    case 'N':
    case 'n':
      out = shalom::Trans::N;
      return true;
    case 'T':
    case 't':
      out = shalom::Trans::T;
      return true;
    default:
      return false;
  }
}

template <typename T>
int gemm_c(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n, ptrdiff_t k,
           T alpha, const T* a, ptrdiff_t lda, const T* b, ptrdiff_t ldb,
           T beta, T* c, ptrdiff_t ldc, int threads) {
  shalom::Trans ta, tb;
  if (!parse_trans(trans_a, ta) || !parse_trans(trans_b, tb)) return 1;
  shalom::Config cfg;
  cfg.threads = threads <= 0 ? 0 : threads;
  try {
    shalom::gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, cfg);
  } catch (const shalom::invalid_argument&) {
    return 2;
  }
  return 0;
}

}  // namespace

extern "C" int shalom_sgemm(char trans_a, char trans_b, ptrdiff_t m,
                            ptrdiff_t n, ptrdiff_t k, float alpha,
                            const float* a, ptrdiff_t lda, const float* b,
                            ptrdiff_t ldb, float beta, float* c,
                            ptrdiff_t ldc, int threads) {
  return gemm_c(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc, threads);
}

extern "C" int shalom_dgemm(char trans_a, char trans_b, ptrdiff_t m,
                            ptrdiff_t n, ptrdiff_t k, double alpha,
                            const double* a, ptrdiff_t lda, const double* b,
                            ptrdiff_t ldb, double beta, double* c,
                            ptrdiff_t ldc, int threads) {
  return gemm_c(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc, threads);
}
