#include "core/shalom_c.h"

#include <algorithm>
#include <memory>
#include <new>
#include <vector>

#include "common/fault.h"
#include "common/health.h"
#include "common/selfcheck.h"
#include "core/engine.h"
#include "core/plan.h"
#include "core/plan_cache.h"
#include "core/shalom.h"

/* Opaque plan handle: one GemmPlan per element type, selected by dtype. */
struct shalom_plan {
  char dtype = 0;  // 's' or 'd'
  shalom::GemmPlan<float> fplan;
  shalom::GemmPlan<double> dplan;
};

/* Opaque stream handle: the C++ engine object, nothing more. */
struct shalom_stream {
  shalom::engine::GemmStream impl;
  explicit shalom_stream(shalom::engine::StreamOptions opts) : impl(opts) {}
};

/* Opaque future handle: shares ownership of the ticket with the stream,
 * so destroying the future before completion (or the stream) is safe. */
struct shalom_future {
  shalom::engine::TicketPtr ticket;
};

namespace {

using shalom::detail::clear_last_error;
using shalom::detail::set_last_error;

/// Records the thread-local error context and returns the code, so every
/// error path reads `return fail(CODE, ...)`.
int fail(int code, const char* message = nullptr) {
  set_last_error(code, message);
  return code;
}

/// Maps an in-flight exception (from a catch(...) context) to its status
/// code, recording the exception message as the last-error detail.
int fail_current_exception() {
  try {
    throw;
  } catch (const shalom::invalid_argument& e) {
    return fail(SHALOM_ERR_INVALID_ARGUMENT, e.what());
  } catch (const shalom::numeric_error& e) {
    return fail(SHALOM_ERR_NUMERIC, e.what());
  } catch (const shalom::corruption_error& e) {
    return fail(SHALOM_ERR_CORRUPTION, e.what());
  } catch (const shalom::kernel_trap_error& e) {
    return fail(SHALOM_ERR_KERNEL_TRAP, e.what());
  } catch (const shalom::rejected_error& e) {
    return fail(SHALOM_ERR_REJECTED, e.what());
  } catch (const shalom::timeout_error& e) {
    return fail(SHALOM_ERR_TIMEOUT, e.what());
  } catch (const std::bad_alloc& e) {
    return fail(SHALOM_ERR_ALLOC, e.what());
  } catch (const std::exception& e) {
    // E.g. std::system_error from worker-thread spawn: never let an
    // exception cross the extern "C" boundary.
    return fail(SHALOM_ERR_INTERNAL, e.what());
  } catch (...) {
    return fail(SHALOM_ERR_INTERNAL);
  }
}

bool parse_trans(char c, shalom::Trans& out) {
  switch (c) {
    case 'N':
    case 'n':
      out = shalom::Trans::N;
      return true;
    case 'T':
    case 't':
      out = shalom::Trans::T;
      return true;
    default:
      return false;
  }
}

template <typename T>
int gemm_c(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n, ptrdiff_t k,
           T alpha, const T* a, ptrdiff_t lda, const T* b, ptrdiff_t ldb,
           T beta, T* c, ptrdiff_t ldc, int threads) {
  clear_last_error();
  shalom::Trans ta, tb;
  if (!parse_trans(trans_a, ta) || !parse_trans(trans_b, tb))
    return fail(SHALOM_ERR_BAD_FLAG, "transpose flag must be 'N' or 'T'");
  shalom::Config cfg;
  cfg.threads = threads <= 0 ? 0 : threads;
  try {
    shalom::gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, cfg);
  } catch (...) {
    return fail_current_exception();
  }
  return SHALOM_OK;
}

}  // namespace

extern "C" int shalom_sgemm(char trans_a, char trans_b, ptrdiff_t m,
                            ptrdiff_t n, ptrdiff_t k, float alpha,
                            const float* a, ptrdiff_t lda, const float* b,
                            ptrdiff_t ldb, float beta, float* c,
                            ptrdiff_t ldc, int threads) {
  return gemm_c(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc, threads);
}

extern "C" int shalom_dgemm(char trans_a, char trans_b, ptrdiff_t m,
                            ptrdiff_t n, ptrdiff_t k, double alpha,
                            const double* a, ptrdiff_t lda, const double* b,
                            ptrdiff_t ldb, double beta, double* c,
                            ptrdiff_t ldc, int threads) {
  return gemm_c(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                ldc, threads);
}

extern "C" const char* shalom_strerror(int code) {
  return shalom::status_string(code);
}

extern "C" const char* shalom_last_error_message(void) {
  return shalom::detail::last_error_message();
}

extern "C" void shalom_get_stats(shalom_stats* out) {
  if (out == nullptr) return;
  const shalom::RobustnessStats s = shalom::robustness_stats();
  out->fallback_nopack = s.fallback_nopack;
  out->threads_degraded = s.threads_degraded;
  out->plan_cache_bypassed = s.plan_cache_bypassed;
  out->faults_injected = s.faults_injected;
  out->kernels_quarantined = s.kernels_quarantined;
  out->selfchecks_run = s.selfchecks_run;
  out->numeric_anomalies = s.numeric_anomalies;
  out->kernels_trapped = s.kernels_trapped;
  out->watchdog_trips = s.watchdog_trips;
  out->arena_corruptions = s.arena_corruptions;
  out->stream_queue_peak = s.stream_queue_peak;
  out->requests_shed = s.requests_shed;
  out->requests_expired = s.requests_expired;
  out->requests_cancelled = s.requests_cancelled;
  out->submit_retries = s.submit_retries;
  out->breaker_trips = s.breaker_trips;
  out->table_records_rejected = s.table_records_rejected;
  out->table_load_failures = s.table_load_failures;
  out->recoveries = s.recoveries;
  out->probation_probes = s.probation_probes;
  out->probation_failures = s.probation_failures;
  out->breaker_half_opens = s.breaker_half_opens;
}

extern "C" void shalom_reset_stats(void) { shalom::robustness_stats_reset(); }

// selfcheck::run_all() is noexcept (probe failures become quarantine
// verdicts, never exceptions), so no translator is needed here.
// shalom-lint: allow(capi-exception-boundary)
extern "C" int shalom_selftest(void) { return shalom::selfcheck::run_all(); }

extern "C" int shalom_health_report(shalom_health* out) {
  clear_last_error();
  if (out == nullptr) return fail(SHALOM_ERR_NULL_POINTER, "out is NULL");
  int healthy = 1;
  try {
    for (int c = 0; c < SHALOM_HEALTH_COMPONENT_COUNT; ++c) {
      const shalom::health::ComponentReport r =
          shalom::health::component_report(
              static_cast<shalom::health::Component>(c));
      shalom_health_component& dst = out->components[c];
      dst.state = static_cast<int>(r.state);
      dst.cause = static_cast<int>(r.cause);
      dst.backoff_ms = r.backoff_ms;
      dst.cooldown_remaining_ms = r.cooldown_remaining_ms;
      if (r.state != shalom::health::State::kHealthy) healthy = 0;
    }
  } catch (...) {
    return fail_current_exception();
  }
  out->all_healthy = healthy;
  return SHALOM_OK;
}

// health::recover_now() is noexcept (hook failures become probation
// verdicts, never exceptions), and the return is a recovery count, not a
// status code.
// shalom-lint: allow(capi-exception-boundary)
extern "C" int shalom_recover_now(void) {
  return shalom::health::recover_now();
}

extern "C" int shalom_plan_create(shalom_plan** out_plan, char dtype,
                                  char trans_a, char trans_b, ptrdiff_t m,
                                  ptrdiff_t n, ptrdiff_t k, int threads) {
  clear_last_error();
  if (out_plan == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "out_plan is NULL");
  *out_plan = nullptr;
  if (dtype != 's' && dtype != 'S' && dtype != 'd' && dtype != 'D')
    return fail(SHALOM_ERR_BAD_FLAG, "dtype must be 's' or 'd'");
  shalom::Trans ta, tb;
  if (!parse_trans(trans_a, ta) || !parse_trans(trans_b, tb))
    return fail(SHALOM_ERR_BAD_FLAG, "transpose flag must be 'N' or 'T'");

  shalom::Config cfg;
  cfg.threads = threads <= 0 ? 0 : threads;
  const shalom::Mode mode{ta, tb};
  try {
    auto plan = std::make_unique<shalom_plan>();
    if (dtype == 's' || dtype == 'S') {
      plan->dtype = 's';
      plan->fplan = shalom::plan_create<float>(mode, m, n, k, cfg);
    } else {
      plan->dtype = 'd';
      plan->dplan = shalom::plan_create<double>(mode, m, n, k, cfg);
    }
    *out_plan = plan.release();
  } catch (...) {
    return fail_current_exception();
  }
  return SHALOM_OK;
}

namespace {

template <typename T>
int plan_execute_c(const shalom::GemmPlan<T>& plan, T alpha, const T* a,
                   ptrdiff_t lda, const T* b, ptrdiff_t ldb, T beta, T* c,
                   ptrdiff_t ldc) {
  try {
    shalom::plan_execute(plan, alpha, a, lda, b, ldb, beta, c, ldc);
  } catch (...) {
    return fail_current_exception();
  }
  return SHALOM_OK;
}

}  // namespace

extern "C" int shalom_plan_execute_s(const shalom_plan* plan, float alpha,
                                     const float* a, ptrdiff_t lda,
                                     const float* b, ptrdiff_t ldb,
                                     float beta, float* c, ptrdiff_t ldc) {
  clear_last_error();
  if (plan == nullptr) return fail(SHALOM_ERR_NULL_POINTER, "plan is NULL");
  if (plan->dtype != 's')
    return fail(SHALOM_ERR_DTYPE_MISMATCH,
                "plan was created for double, executed as float");
  return plan_execute_c(plan->fplan, alpha, a, lda, b, ldb, beta, c, ldc);
}

extern "C" int shalom_plan_execute_d(const shalom_plan* plan, double alpha,
                                     const double* a, ptrdiff_t lda,
                                     const double* b, ptrdiff_t ldb,
                                     double beta, double* c, ptrdiff_t ldc) {
  clear_last_error();
  if (plan == nullptr) return fail(SHALOM_ERR_NULL_POINTER, "plan is NULL");
  if (plan->dtype != 'd')
    return fail(SHALOM_ERR_DTYPE_MISMATCH,
                "plan was created for float, executed as double");
  return plan_execute_c(plan->dplan, alpha, a, lda, b, ldb, beta, c, ldc);
}

extern "C" void shalom_plan_destroy(shalom_plan* plan) { delete plan; }

/* ------------------------------------------------------------------------
 * Asynchronous submission API (core/engine.h).
 * ---------------------------------------------------------------------- */

extern "C" int shalom_stream_create(shalom_stream** out_stream, int threads) {
  clear_last_error();
  if (out_stream == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "out_stream is NULL");
  *out_stream = nullptr;
  shalom::engine::StreamOptions opts;
  opts.threads = threads <= 0 ? 0 : threads;
  try {
    *out_stream = new shalom_stream(opts);
  } catch (...) {
    return fail_current_exception();
  }
  return SHALOM_OK;
}

extern "C" void shalom_stream_destroy(shalom_stream* stream) {
  delete stream;  // ~GemmStream drains every pending request first
}

extern "C" int shalom_stream_flush(shalom_stream* stream) {
  clear_last_error();
  if (stream == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "stream is NULL");
  try {
    // SHALOM_DEGRADED passes through without touching the last-error
    // slot: the work completed correctly, the code is a routing signal.
    return stream->impl.flush();
  } catch (...) {
    return fail_current_exception();
  }
}

extern "C" int shalom_stream_flush_for(shalom_stream* stream, long ms) {
  clear_last_error();
  if (stream == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "stream is NULL");
  try {
    const int status = stream->impl.flush_for(ms);
    if (status == SHALOM_ERR_TIMEOUT)
      return fail(status, "stream did not drain within the flush deadline");
    return status;  // SHALOM_OK or SHALOM_DEGRADED
  } catch (...) {
    return fail_current_exception();
  }
}

// Health probe, documented as returning an enum value (or -1 on NULL)
// rather than a status code; GemmStream::health() only takes the stream
// mutex and cannot throw anything but allocation-free lock errors, which
// the catch still contains.
extern "C" int shalom_stream_health(const shalom_stream* stream) {
  if (stream == nullptr) return -1;
  try {
    return static_cast<int>(stream->impl.health());
  } catch (...) {  // shalom-lint: allow(capi-exception-boundary)
    return -1;
  }
}

namespace {

template <typename T>
int submit_c(shalom_stream* stream, char trans_a, char trans_b, ptrdiff_t m,
             ptrdiff_t n, ptrdiff_t k, T alpha, const T* a, ptrdiff_t lda,
             const T* b, ptrdiff_t ldb, T beta, T* c, ptrdiff_t ldc,
             long deadline_ms, shalom_future** out_future) {
  clear_last_error();
  if (out_future != nullptr) *out_future = nullptr;
  if (stream == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "stream is NULL");
  shalom::Trans ta, tb;
  if (!parse_trans(trans_a, ta) || !parse_trans(trans_b, tb))
    return fail(SHALOM_ERR_BAD_FLAG, "transpose flag must be 'N' or 'T'");
  try {
    auto future = std::make_unique<shalom_future>();
    future->ticket = stream->impl.submit<T>(shalom::Mode{ta, tb}, m, n, k,
                                            alpha, a, lda, b, ldb, beta, c,
                                            ldc, deadline_ms);
    if (out_future != nullptr) *out_future = future.release();
    // With out_future NULL the ticket is dropped here (fire-and-forget);
    // the stream's own reference keeps the request alive.
  } catch (...) {
    return fail_current_exception();
  }
  return SHALOM_OK;
}

}  // namespace

extern "C" int shalom_submit_s(shalom_stream* stream, char trans_a,
                               char trans_b, ptrdiff_t m, ptrdiff_t n,
                               ptrdiff_t k, float alpha, const float* a,
                               ptrdiff_t lda, const float* b, ptrdiff_t ldb,
                               float beta, float* c, ptrdiff_t ldc,
                               shalom_future** out_future) {
  return submit_c(stream, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                  beta, c, ldc, 0, out_future);
}

extern "C" int shalom_submit_d(shalom_stream* stream, char trans_a,
                               char trans_b, ptrdiff_t m, ptrdiff_t n,
                               ptrdiff_t k, double alpha, const double* a,
                               ptrdiff_t lda, const double* b, ptrdiff_t ldb,
                               double beta, double* c, ptrdiff_t ldc,
                               shalom_future** out_future) {
  return submit_c(stream, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                  beta, c, ldc, 0, out_future);
}

extern "C" int shalom_submit_timed_s(shalom_stream* stream, char trans_a,
                                     char trans_b, ptrdiff_t m, ptrdiff_t n,
                                     ptrdiff_t k, float alpha, const float* a,
                                     ptrdiff_t lda, const float* b,
                                     ptrdiff_t ldb, float beta, float* c,
                                     ptrdiff_t ldc, long deadline_ms,
                                     shalom_future** out_future) {
  return submit_c(stream, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                  beta, c, ldc, deadline_ms, out_future);
}

extern "C" int shalom_submit_timed_d(shalom_stream* stream, char trans_a,
                                     char trans_b, ptrdiff_t m, ptrdiff_t n,
                                     ptrdiff_t k, double alpha,
                                     const double* a, ptrdiff_t lda,
                                     const double* b, ptrdiff_t ldb,
                                     double beta, double* c, ptrdiff_t ldc,
                                     long deadline_ms,
                                     shalom_future** out_future) {
  return submit_c(stream, trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb,
                  beta, c, ldc, deadline_ms, out_future);
}

extern "C" int shalom_wait(shalom_future* future) {
  clear_last_error();
  if (future == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "future is NULL");
  try {
    const int status = future->ticket->wait();
    if (status != SHALOM_OK && status != SHALOM_DEGRADED)
      // Re-surface the drainer-side failure as THIS thread's last error,
      // mirroring what a synchronous call would have set. SHALOM_DEGRADED
      // is not a failure (the results are correct) and passes through
      // without touching the slot.
      return fail(status, future->ticket->message().c_str());
    return status;
  } catch (...) {
    return fail_current_exception();
  }
}

extern "C" int shalom_wait_for(shalom_future* future, long ms) {
  clear_last_error();
  if (future == nullptr)
    return fail(SHALOM_ERR_NULL_POINTER, "future is NULL");
  try {
    if (!future->ticket->wait_for(ms))
      // The request itself is untouched: only this wait timed out.
      return fail(SHALOM_ERR_TIMEOUT,
                  "request did not resolve within the wait deadline");
    const int status = future->ticket->status();
    if (status != SHALOM_OK && status != SHALOM_DEGRADED)
      return fail(status, future->ticket->message().c_str());
    return status;
  } catch (...) {
    return fail_current_exception();
  }
}

// Returns 1/0 rather than a status code. The only throwing point is the
// message-string construction, which happens BEFORE the revoke CAS: a
// contained failure means nothing was cancelled (return 0), never a
// revoked-but-unresolved ticket.
// shalom-lint: allow(capi-exception-boundary)
extern "C" int shalom_future_cancel(shalom_future* future) {
  if (future == nullptr) return 0;
  try {
    if (!future->ticket->revoke(SHALOM_ERR_REJECTED,
                                "cancelled by shalom_future_cancel"))
      return 0;
  } catch (...) {
    return 0;
  }
  shalom::telemetry::note_request_cancelled();
  return 1;
}

// Completion probe, documented as returning 0/1 rather than a status
// code; Ticket::done() cannot throw.
// shalom-lint: allow(capi-exception-boundary)
extern "C" int shalom_future_done(const shalom_future* future) {
  if (future == nullptr) return 0;
  return future->ticket->done() ? 1 : 0;
}

extern "C" void shalom_future_destroy(shalom_future* future) {
  delete future;  // the stream's reference keeps an unfinished request alive
}

/* ------------------------------------------------------------------------
 * Plan-cache hot-shape snapshot.
 * ---------------------------------------------------------------------- */

namespace {

template <typename T>
void collect_hot(char dtype, std::size_t k,
                 std::vector<shalom_hot_shape>& out) {
  for (const shalom::HotShape& h : shalom::PlanCache<T>::global().hot(k)) {
    shalom_hot_shape s;
    s.dtype = dtype;
    s.trans_a = h.key.trans_a != 0 ? 'T' : 'N';
    s.trans_b = h.key.trans_b != 0 ? 'T' : 'N';
    s.m = h.key.m;
    s.n = h.key.n;
    s.k = h.key.k;
    s.threads = h.key.threads;
    s.last_use_tick = h.last_use_tick;
    out.push_back(s);
  }
}

}  // namespace

extern "C" int shalom_plan_cache_hot(shalom_hot_shape* out, int capacity) {
  clear_last_error();
  if (capacity <= 0) return 0;
  if (out == nullptr)
    return -fail(SHALOM_ERR_NULL_POINTER, "out is NULL");
  try {
    const std::size_t cap = static_cast<std::size_t>(capacity);
    std::vector<shalom_hot_shape> merged;
    collect_hot<float>('s', cap, merged);
    collect_hot<double>('d', cap, merged);
    std::sort(merged.begin(), merged.end(),
              [](const shalom_hot_shape& a, const shalom_hot_shape& b) {
                return a.last_use_tick > b.last_use_tick;
              });
    if (merged.size() > cap) merged.resize(cap);
    std::copy(merged.begin(), merged.end(), out);
    return static_cast<int>(merged.size());
  } catch (...) {
    // A snapshot that cannot allocate reports "nothing hot" rather than
    // failing the probe: the caller's out array is untouched.
    (void)fail_current_exception();
    return 0;
  }
}
