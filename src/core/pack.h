// Packed-panel layouts and the standalone (non-fused) packing routines.
//
// Both packed layouts are the canonical Goto micro-panel formats:
//
//   Bc ("row slivers"): a kc x n panel is stored as ceil(n/nr) slivers;
//   sliver s holds elements op(B)(k, s*nr + j) at  sliver[k*nr + j].
//   Columns beyond the panel edge are zero-filled so the main kernel can
//   always read nr lanes (stores to C remain exact via edge kernels).
//
//   Ac ("column slivers"): an m x kc block is stored as ceil(m/mr) slivers;
//   sliver s holds op(A)(s*mr + i, k) at  sliver[k*mr + i], rows beyond the
//   edge zero-filled.
//
// The fused variants that overlap these copies with FMA work live in the
// micro-kernel header; the routines here are used by the TN/TT paths, by
// the `fused_packing = false` ablation, and as test oracles for the fused
// kernels (both must produce bit-identical buffers).
#pragma once

#include "common/matrix.h"
#include "core/kernel_contracts.h"
#include "core/types.h"

namespace shalom::pack {

// Consumers allocate contracts::kPackSlackElems extra elements past every
// panel (see the fused TN kernel's overlapping loads); the sliver strides
// themselves are exactly the register-tile dimensions, whose lane
// divisibility the kernel-contract header asserts at compile time.

/// Elements one Bc sliver occupies for a given kc (zero padding included).
inline index_t b_sliver_elems(index_t kc, int nr) { return kc * nr; }

/// Total elements of a packed kc x n B panel.
inline index_t b_panel_elems(index_t kc, index_t n, int nr) {
  const index_t slivers = (n + nr - 1) / nr;
  return slivers * b_sliver_elems(kc, nr);
}

inline index_t a_sliver_elems(index_t kc, int mr) { return kc * mr; }

inline index_t a_panel_elems(index_t m, index_t kc, int mr) {
  const index_t slivers = (m + mr - 1) / mr;
  return slivers * a_sliver_elems(kc, mr);
}

/// Packs op(B) = B (N mode): source rows are contiguous along n.
/// B points at the (kk, jj) corner; packs kc x n into `bc`.
template <typename T>
void pack_b_n(const T* b, index_t ldb, index_t kc, index_t n, int nr, T* bc);

/// Packs op(B) = B^T (T mode): op(B)(k, j) = b[j*ldb + k]; source columns
/// of the packed panel are contiguous along k (the NT scatter of Fig. 5).
template <typename T>
void pack_b_t(const T* b, index_t ldb, index_t kc, index_t n, int nr, T* bc);

/// Packs op(A) = A (N mode) into column slivers: op(A)(i, k) = a[i*lda + k].
template <typename T>
void pack_a_n(const T* a, index_t lda, index_t m, index_t kc, int mr, T* ac);

/// Packs op(A) = A^T (T mode): op(A)(i, k) = a[k*lda + i]; each (k) row of
/// the source contributes a contiguous run of mr elements.
template <typename T>
void pack_a_t(const T* a, index_t lda, index_t m, index_t kc, int mr, T* ac);

}  // namespace shalom::pack
