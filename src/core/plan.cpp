#include "core/plan.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <limits>
#include <new>
#include <thread>

#include "common/aligned_buffer.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/guard.h"
#include "common/thread_annotations.h"
#include "core/dispatch.h"
#include "core/pack.h"
#include "core/parallel.h"
#include "core/threadpool.h"

namespace shalom {

namespace detail {

template <typename T>
void scale_c(index_t M, index_t N, T beta, T* C, index_t ldc) {
  if (beta == T{1}) return;
  for (index_t i = 0; i < M; ++i) {
    T* row = C + i * ldc;
    if (beta == T{0}) {
      std::fill(row, row + N, T{});
    } else {
      for (index_t j = 0; j < N; ++j) row[j] *= beta;
    }
  }
}

template void scale_c<float>(index_t, index_t, float, float*, index_t);
template void scale_c<double>(index_t, index_t, double, double*, index_t);

/// Rejects shapes whose operand element counts (M*K, K*N, M*N) or byte
/// sizes would overflow index_t: every later sizing expression (lda math,
/// arena_bytes, partition solving) assumes these products are representable,
/// so overflow here would be UB, not just a failed allocation.
template <typename T>
void check_shape_bounds(index_t M, index_t N, index_t K) {
  constexpr index_t kMaxElems =
      std::numeric_limits<index_t>::max() / static_cast<index_t>(sizeof(T));
  if (K > 0)
    SHALOM_REQUIRE(M <= kMaxElems / K, ": M*K overflows; M=", M, " K=", K);
  if (N > 0) {
    SHALOM_REQUIRE(K <= kMaxElems / N, ": K*N overflows; K=", K, " N=", N);
    SHALOM_REQUIRE(M <= kMaxElems / N, ": M*N overflows; M=", M, " N=", N);
  }
}

template void check_shape_bounds<float>(index_t, index_t, index_t);
template void check_shape_bounds<double>(index_t, index_t, index_t);

template <typename T>
void check_gemm_args(Mode mode, index_t M, index_t N, index_t K, const T* A,
                     index_t lda, const T* B, index_t ldb, const T* C,
                     index_t ldc) {
  SHALOM_REQUIRE(M >= 0 && N >= 0 && K >= 0, " M=", M, " N=", N, " K=", K);
  check_shape_bounds<T>(M, N, K);
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;
  SHALOM_REQUIRE(lda >= std::max<index_t>(1, a_cols), " lda=", lda);
  SHALOM_REQUIRE(ldb >= std::max<index_t>(1, b_cols), " ldb=", ldb);
  SHALOM_REQUIRE(ldc >= std::max<index_t>(1, N), " ldc=", ldc);
  if (M > 0 && N > 0) SHALOM_REQUIRE(C != nullptr);
  if (M > 0 && K > 0) SHALOM_REQUIRE(A != nullptr);
  if (K > 0 && N > 0) SHALOM_REQUIRE(B != nullptr);
}

template void check_gemm_args<float>(Mode, index_t, index_t, index_t,
                                     const float*, index_t, const float*,
                                     index_t, const float*, index_t);
template void check_gemm_args<double>(Mode, index_t, index_t, index_t,
                                      const double*, index_t, const double*,
                                      index_t, const double*, index_t);

int resolve_threads(int threads) {
  if (threads != 0) return threads;
  // SHALOM_THREADS caps the "all cores" resolution (parsed once; malformed
  // values warn and are ignored).
  static const long env_threads = env::get_long("SHALOM_THREADS", 0, 1, 4096);
  if (env_threads > 0) return static_cast<int>(env_threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace {

/// Everything the inner tile loop needs about one (ii, kk) block.
template <typename T>
struct BlockCtx {
  // A access: direct (row-major, stride lda) or packed column slivers.
  bool a_packed = false;
  const T* a_base = nullptr;  // block corner (direct) or packed buffer
  index_t a_ld = 0;           // lda (direct) or mr sliver stride (packed)

  // B access for the current sliver.
  const T* b_src = nullptr;
  index_t b_ld = 0;  // ldb (direct) or nr (packed)
  bool b_packed = false;
};

/// Runs the i0 row-tile loop for one B sliver.
template <typename T>
void run_row_tiles(const BlockCtx<T>& ctx, const model::Tile& tile,
                   bool optimized_edges, bool force_scalar, index_t i_start,
                   index_t mcur, int n_eff, index_t kcur, T* c_col,
                   index_t ldc, T alpha, T beta_eff) {
  using ukr::AAccess;
  using ukr::BAccess;
  for (index_t i0 = i_start; i0 < mcur; i0 += tile.mr) {
    const int m_eff = static_cast<int>(
        std::min<index_t>(tile.mr, mcur - i0));
    const T* a_tile =
        ctx.a_packed
            ? ctx.a_base + (i0 / tile.mr) * pack::a_sliver_elems(kcur, tile.mr)
            : ctx.a_base + i0 * ctx.a_ld;
    T* c_tile = c_col + i0 * ldc;
    const bool edge = m_eff < tile.mr || n_eff < tile.nr;

    if (force_scalar || (edge && !optimized_edges)) {
      // Ablation: remainder tiles processed by the unscheduled scalar
      // routine (the cost model of existing libraries' edge handling).
      if (ctx.a_packed) {
        ukr::kern_scalar<T, AAccess::kPacked, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      } else {
        ukr::kern_scalar<T, AAccess::kDirect, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      }
      continue;
    }

    if (ctx.a_packed) {
      if (ctx.b_packed) {
        ukr::run_main_tile<T, AAccess::kPacked, BAccess::kPacked>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      } else {
        ukr::run_main_tile<T, AAccess::kPacked, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      }
    } else {
      if (ctx.b_packed) {
        ukr::run_main_tile<T, AAccess::kDirect, BAccess::kPacked>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      } else {
        ukr::run_main_tile<T, AAccess::kDirect, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      }
    }
  }
}

/// Degraded-mode executor: the plan wanted packed operands but the pack
/// arena could not be reserved, so run the same blocked loop nest reading
/// A and B in place (the paper's selective-packing "no-pack" path applied
/// unconditionally). Keeps the plan's exact blocking and tile traversal so
/// each accumulator sees the identical FMA sequence - for N/T-A with
/// direct-N B the results are bitwise-identical to the packed execution.
/// Transposed B has no direct-access kernel (the NT path needs either a
/// packed sliver or the horizontal-reduction fused kernel, both
/// arena-backed), so those blocks fall back to the scalar kernel-order
/// loop: still correct, just slow - this path only runs under memory
/// pressure.
template <typename T>
void execute_serial_nopack(const GemmPlan<T>& plan, T alpha, const T* A,
                           index_t lda, const T* B, index_t ldb, T beta,
                           T* C, index_t ldc) {
  using ukr::AAccess;
  using ukr::BAccess;
  const index_t M = plan.m, N = plan.n, K = plan.k;
  const Mode mode = plan.mode;
  const model::Blocking& blk = plan.blk;
  const model::Tile& tile = plan.tile;

  // This degraded path dispatches in-place kernel families the plan's
  // packed execution never consulted, so re-check quarantine state here
  // (cold path; one atomic load per family after the first probe).
  const AAccess aa_np =
      (mode.a == Trans::N) ? AAccess::kDirect : AAccess::kDirectTrans;
  const bool main_ok =
      !plan.force_scalar_kernels &&
      selfcheck::variant_ok(ukr::main_variant<T>(aa_np, BAccess::kDirect));
  const bool edges_ok =
      plan.optimized_edges && main_ok &&
      selfcheck::variant_ok(ukr::edge_variant<T>(aa_np, BAccess::kDirect));

  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t ii = 0; ii < M; ii += blk.mc) {
      const index_t mcur = std::min<index_t>(blk.mc, M - ii);
      for (index_t kk = 0; kk < K; kk += blk.kc) {
        const index_t kcur = std::min<index_t>(blk.kc, K - kk);
        const T beta_eff = (kk == 0) ? beta : T{1};

        if (mode.b == Trans::T) {
          for (index_t i = 0; i < mcur; ++i) {
            const T* a_row = (mode.a == Trans::N)
                                 ? A + (ii + i) * lda + kk
                                 : A + kk * lda + ii + i;
            const index_t a_step = (mode.a == Trans::N) ? 1 : lda;
            T* c_row = C + (ii + i) * ldc + jj;
            for (index_t j = 0; j < ncur; ++j) {
              const T* b_col = B + (jj + j) * ldb + kk;
              T sum{};
              for (index_t k = 0; k < kcur; ++k)
                sum += a_row[k * a_step] * b_col[k];
              c_row[j] = (beta_eff == T{0}) ? alpha * sum
                                            : beta_eff * c_row[j] + alpha * sum;
            }
          }
          continue;
        }

        for (index_t j0 = 0; j0 < ncur; j0 += tile.nr) {
          const int n_eff =
              static_cast<int>(std::min<index_t>(tile.nr, ncur - j0));
          const T* const b_src = B + kk * ldb + jj + j0;
          T* const c_col = C + ii * ldc + jj + j0;
          for (index_t i0 = 0; i0 < mcur; i0 += tile.mr) {
            const int m_eff =
                static_cast<int>(std::min<index_t>(tile.mr, mcur - i0));
            T* const c_tile = c_col + i0 * ldc;
            const bool edge = m_eff < tile.mr || n_eff < tile.nr;
            if (mode.a == Trans::N) {
              const T* a_tile = A + (ii + i0) * lda + kk;
              if (!main_ok || (edge && !edges_ok)) {
                ukr::kern_scalar<T, AAccess::kDirect, BAccess::kDirect>(
                    m_eff, n_eff, kcur, a_tile, lda, b_src, ldb, c_tile,
                    ldc, alpha, beta_eff);
              } else {
                ukr::run_main_tile<T, AAccess::kDirect, BAccess::kDirect>(
                    m_eff, n_eff, kcur, a_tile, lda, b_src, ldb, c_tile,
                    ldc, alpha, beta_eff);
              }
            } else {
              // op(A) column k is the contiguous run a[k*lda + i]: the
              // kPacked scalar indexing doubles as in-place transposed
              // access with lda as the sliver stride.
              const T* a_tile = A + kk * lda + ii + i0;
              if (!main_ok || (edge && !edges_ok)) {
                ukr::kern_scalar<T, AAccess::kPacked, BAccess::kDirect>(
                    m_eff, n_eff, kcur, a_tile, lda, b_src, ldb, c_tile,
                    ldc, alpha, beta_eff);
              } else {
                ukr::run_main_tile<T, AAccess::kDirectTrans,
                                   BAccess::kDirect>(
                    m_eff, n_eff, kcur, a_tile, lda, b_src, ldb, c_tile,
                    ldc, alpha, beta_eff);
              }
            }
          }
        }
      }
    }
  }
}

/// Quarantine executor: every main-kernel family this plan would dispatch
/// failed its selfcheck probe, so trust nothing downstream of the scalar
/// reference - no packing, no fused kernels, no register tiles. Runs the
/// plan's cache blocking (so beta_eff semantics match the optimized
/// executor) with the same in-place triple loop as baselines::naive_gemm;
/// within one k-block the accumulation order is identical to naive's.
template <typename T>
void execute_serial_scalar(const GemmPlan<T>& plan, T alpha, const T* A,
                           index_t lda, const T* B, index_t ldb, T beta,
                           T* C, index_t ldc) {
  const index_t M = plan.m, N = plan.n, K = plan.k;
  const Mode mode = plan.mode;
  const model::Blocking& blk = plan.blk;
  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t ii = 0; ii < M; ii += blk.mc) {
      const index_t mcur = std::min<index_t>(blk.mc, M - ii);
      for (index_t kk = 0; kk < K; kk += blk.kc) {
        const index_t kcur = std::min<index_t>(blk.kc, K - kk);
        const T beta_eff = (kk == 0) ? beta : T{1};
        for (index_t i = ii; i < ii + mcur; ++i) {
          for (index_t j = jj; j < jj + ncur; ++j) {
            T sum{};
            for (index_t k = kk; k < kk + kcur; ++k) {
              const T av =
                  (mode.a == Trans::N) ? A[i * lda + k] : A[k * lda + i];
              const T bv =
                  (mode.b == Trans::N) ? B[k * ldb + j] : B[j * ldb + k];
              sum += av * bv;
            }
            T& cv = C[i * ldc + j];
            cv = (beta_eff == T{0}) ? alpha * sum
                                    : beta_eff * cv + alpha * sum;
          }
        }
      }
    }
  }
}

/// Post-execution canary audit of this thread's guarded pack arena
/// (SHALOM_GUARD=canary|poison, common/guard.h). A violated canary
/// proves some kernel this plan dispatched wrote outside the arena, so
/// the result cannot be trusted: quarantine the plan's main-kernel
/// family (later plans route to the scalar reference) and fail the call
/// with corruption_error (SHALOM_ERR_CORRUPTION over the C API). The
/// guard.canary fault site simulates a violation for the tests. No-op
/// when the buffer is unguarded (verify_guards is trivially true).
template <typename T>
void verify_pack_arena(const GemmPlan<T>& plan, AlignedBuffer& arena) {
  bool intact = arena.verify_guards();
  if (SHALOM_FAULT_POINT(fault::Site::kGuardCanary)) intact = false;
  if (intact) return;

  telemetry::note_arena_corruption();
  using ukr::AAccess;
  using ukr::BAccess;
  // Same main-variant mapping as plan_create's quarantine gate: the
  // trans-A no-pack plan maps to the trans-direct quarantine unit.
  const AAccess aa = plan.a_packed                ? AAccess::kPacked
                     : (plan.mode.a == Trans::N) ? AAccess::kDirect
                                                 : AAccess::kDirectTrans;
  const BAccess ba = plan.b_packed ? BAccess::kPacked : BAccess::kDirect;
  const selfcheck::Variant v = ukr::main_variant<T>(aa, ba);
  selfcheck::quarantine(v);
  char msg[192];
  std::snprintf(msg, sizeof msg,
                "pack-arena guard canary violated after execution "
                "(kernel variant '%s' wrote outside its arena; variant "
                "quarantined, result must be discarded)",
                selfcheck::variant_name(v));
  throw corruption_error(msg);
}

}  // namespace

template <typename T>
void execute_serial(const GemmPlan<T>& plan, T alpha, const T* A,
                    index_t lda, const T* B, index_t ldb, T beta, T* C,
                    index_t ldc) {
  const index_t M = plan.m, N = plan.n, K = plan.k;
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    scale_c(M, N, beta, C, ldc);
    return;
  }

  if (plan.force_scalar_kernels) {
    execute_serial_scalar(plan, alpha, A, lda, B, ldb, beta, C, ldc);
    return;
  }

  const model::Tile& tile = plan.tile;

  // Fast path for small GEMMs (the library's headline workload): the plan
  // resolved the no-packing case once; jump straight to the register-tile
  // loops over the full K.
  if (plan.small_fast_path) {
    for (index_t j0 = 0; j0 < N; j0 += tile.nr) {
      const int n_eff =
          static_cast<int>(std::min<index_t>(tile.nr, N - j0));
      for (index_t i0 = 0; i0 < M; i0 += tile.mr) {
        const int m_eff =
            static_cast<int>(std::min<index_t>(tile.mr, M - i0));
        ukr::run_main_tile<T, ukr::AAccess::kDirect, ukr::BAccess::kDirect>(
            m_eff, n_eff, K, A + i0 * lda, lda, B + j0, ldb,
            C + i0 * ldc + j0, ldc, alpha, beta);
      }
    }
    return;
  }

  const Mode mode = plan.mode;
  const model::Blocking& blk = plan.blk;
  const model::PackDecision& pack_plan = plan.pack;
  const bool a_packed = plan.a_packed;
  const bool b_packed = plan.b_packed;
  const bool a_fused = plan.a_fused;
  const bool b_fusable = plan.b_fusable;
  const index_t ac_elems = plan.ac_elems;
  const index_t bc_sliver = plan.bc_sliver;

  // Grow-only: a no-op after the plan's creation-time reservation unless
  // this thread's arena has never served a problem this large. If the
  // reservation fails here (the creation-time attempt is best-effort),
  // degrade to the no-pack executor instead of throwing out of the hot
  // path.
  T* ac = nullptr;
  AlignedBuffer* arena_ptr = nullptr;
  if (a_packed || b_packed) {
    AlignedBuffer& arena = thread_pack_arena();
    try {
      if (SHALOM_FAULT_POINT(fault::Site::kAllocPackArena))
        throw std::bad_alloc();
      arena.reserve(plan.arena_bytes);
    } catch (const std::bad_alloc&) {
      telemetry::note_fallback_nopack();
      execute_serial_nopack(plan, alpha, A, lda, B, ldb, beta, C, ldc);
      return;
    }
    arena_ptr = &arena;
    ac = arena.as<T>();
  }
  T* const bc_base =
      ac != nullptr ? ac + ac_elems + ukr::kPackSlackElems : nullptr;

  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t ii = 0; ii < M; ii += blk.mc) {
      const index_t mcur = std::min<index_t>(blk.mc, M - ii);
      for (index_t kk = 0; kk < K; kk += blk.kc) {
        const index_t kcur = std::min<index_t>(blk.kc, K - kk);
        const T beta_eff = (kk == 0) ? beta : T{1};

        BlockCtx<T> ctx;
        ctx.a_packed = a_packed;
        if (a_packed) {
          if (a_fused) {
            // Deferred: the s == 0 stripe loop below fills Ac.
          } else if (mode.a == Trans::N) {
            pack::pack_a_n(A + ii * lda + kk, lda, mcur, kcur, tile.mr, ac);
          } else {
            pack::pack_a_t(A + kk * lda + ii, lda, mcur, kcur, tile.mr, ac);
          }
          ctx.a_base = ac;
          ctx.a_ld = tile.mr;
        } else {
          SHALOM_ASSERT(mode.a == Trans::N);
          ctx.a_base = A + ii * lda + kk;
          ctx.a_ld = lda;
        }

        const index_t nslivers = (ncur + tile.nr - 1) / tile.nr;
        // True when the previous fused call already streamed the current
        // sliver into its packed buffer (pack-ahead t = 1 pipeline).
        bool prepacked = false;
        for (index_t s = 0; s < nslivers; ++s) {
          const index_t j0 = s * tile.nr;
          const int n_eff = static_cast<int>(
              std::min<index_t>(tile.nr, ncur - j0));
          T* const c_col = C + ii * ldc + jj + j0;
          index_t i_start = 0;

          if (!b_packed) {
            SHALOM_ASSERT(mode.b == Trans::N);
            ctx.b_src = B + kk * ldb + jj + j0;
            ctx.b_ld = ldb;
            ctx.b_packed = false;
          } else {
            T* const bc_cur = bc_base + (s % 2) * bc_sliver;
            T* const bc_next = bc_base + ((s + 1) % 2) * bc_sliver;
            const bool fused = b_fusable && mcur >= tile.mr;

            if (fused && mode.b == Trans::N) {
              // NN fused pack (Fig. 4). With pack-ahead (t = 1) the
              // current sliver arrives pre-packed from the previous
              // iteration, and this call streams sliver s+1 into the
              // other buffer while computing the first C stripe. Only
              // full-width next slivers are streamed ahead; an edge
              // final sliver packs itself on arrival.
              const bool next_full =
                  s + 1 < nslivers && ncur - (s + 1) * tile.nr >= tile.nr;
              const bool ahead = pack_plan.pack_ahead == 1 && next_full;
              const T* b_cur =
                  prepacked ? bc_cur : B + kk * ldb + jj + j0;
              const index_t b_cur_ld = prepacked ? tile.nr : ldb;
              const T* b_next =
                  ahead ? B + kk * ldb + jj + j0 + tile.nr : nullptr;
              ukr::run_fused_pack_nn<T>(
                  !prepacked, ahead, n_eff, kcur, A + ii * lda + kk, lda,
                  b_cur, b_cur_ld, bc_cur, b_next, ldb,
                  ahead ? bc_next : nullptr, c_col, ldc, alpha, beta_eff);
              prepacked = ahead;
              i_start = tile.mr;
            } else if (fused && mode.b == Trans::T && kcur >= 32) {
              // NT fused pack (Fig. 5 / Algorithm 3): inner-product
              // compute + scatter, 3 op(B) columns per call. The kernel
              // ends with a horizontal reduction of all mr x nr
              // accumulators, a fixed cost only a long enough K loop
              // amortizes; tiny-K slivers take the plain-pack path below
              // instead (same results, no reduction).
              if (n_eff < tile.nr)
                std::fill(bc_cur, bc_cur + kcur * tile.nr, T{});
              const T* b_cols = B + (jj + j0) * ldb + kk;
              for (int jb = 0; jb < n_eff; jb += 3) {
                const int w = std::min(3, n_eff - jb);
                const bool store_full = jb + w < n_eff;
                ukr::run_fused_pack_nt<T>(w, kcur, A + ii * lda + kk, lda,
                                          b_cols, ldb, bc_cur, jb, tile.nr,
                                          store_full, c_col, ldc, alpha,
                                          beta_eff);
              }
              i_start = tile.mr;
            } else {
              // Pack-ahead (sequential) path: baseline behaviour and the
              // TN/TT + short-stripe fallbacks.
              if (mode.b == Trans::N) {
                pack::pack_b_n(B + kk * ldb + jj + j0, ldb, kcur, n_eff,
                               tile.nr, bc_cur);
              } else {
                pack::pack_b_t(B + (jj + j0) * ldb + kk, ldb, kcur, n_eff,
                               tile.nr, bc_cur);
              }
            }
            ctx.b_src = bc_cur;
            ctx.b_ld = tile.nr;
            ctx.b_packed = true;
          }

          if (a_fused && s == 0) {
            // First sliver: every full stripe computes its C tile with
            // the fused kernel while packing its Ac sliver; an edge
            // stripe packs plainly then runs the packed-A kernel.
            for (index_t i0 = 0; i0 < mcur; i0 += tile.mr) {
              const int m_eff = static_cast<int>(
                  std::min<index_t>(tile.mr, mcur - i0));
              T* const ac_sliver =
                  ac + (i0 / tile.mr) * pack::a_sliver_elems(kcur, tile.mr);
              const T* a_cols = A + kk * lda + ii + i0;
              T* const c_tile = c_col + i0 * ldc;
              if (m_eff == tile.mr) {
                ukr::run_fused_pack_tn<T>(ctx.b_packed, n_eff, kcur,
                                          a_cols, lda, ac_sliver,
                                          ctx.b_src, ctx.b_ld, c_tile, ldc,
                                          alpha, beta_eff);
              } else {
                pack::pack_a_t(a_cols, lda, m_eff, kcur, tile.mr,
                               ac_sliver);
                if (ctx.b_packed) {
                  ukr::run_main_tile<T, ukr::AAccess::kPacked,
                                     ukr::BAccess::kPacked>(
                      m_eff, n_eff, kcur, ac_sliver, tile.mr, ctx.b_src,
                      ctx.b_ld, c_tile, ldc, alpha, beta_eff);
                } else {
                  ukr::run_main_tile<T, ukr::AAccess::kPacked,
                                     ukr::BAccess::kDirect>(
                      m_eff, n_eff, kcur, ac_sliver, tile.mr, ctx.b_src,
                      ctx.b_ld, c_tile, ldc, alpha, beta_eff);
                }
              }
            }
            continue;
          }
          run_row_tiles(ctx, tile, plan.optimized_edges,
                        plan.force_scalar_kernels, i_start, mcur, n_eff,
                        kcur, c_col, ldc, alpha, beta_eff);
        }
      }
    }
  }

  if (arena_ptr != nullptr) verify_pack_arena(plan, *arena_ptr);
}

template void execute_serial<float>(const GemmPlan<float>&, float,
                                    const float*, index_t, const float*,
                                    index_t, float, float*, index_t);
template void execute_serial<double>(const GemmPlan<double>&, double,
                                     const double*, index_t, const double*,
                                     index_t, double, double*, index_t);

template <typename T>
void execute_plan(const GemmPlan<T>& plan, T alpha, const T* A, index_t lda,
                  const T* B, index_t ldb, T beta, T* C, index_t ldc) {
  if (plan.threads <= 1) {
    execute_serial(plan, alpha, A, lda, B, ldb, beta, C, ldc);
    return;
  }
  if (plan.m == 0 || plan.n == 0) return;
  if (plan.k == 0 || alpha == T{0}) {
    scale_c(plan.m, plan.n, beta, C, ldc);
    return;
  }

  const Mode mode = plan.mode;
  const int t = plan.threads;
  // A guard-rail throw inside a worker (corruption_error from the arena
  // audit, numeric_error from the numerical guard) must fail the GEMM
  // call, not terminate the process (an exception escaping a pool task
  // is std::terminate): capture the first one and rethrow it on the
  // calling thread after the round joins.
  Mutex err_mu;
  std::exception_ptr first_error SHALOM_GUARDED_BY(err_mu);
  pool_run(
      t,
      [&](int id) {
        try {
          const GemmPlan<T>& s = plan.sub[id];
          if (s.m == 0 || s.n == 0) return;
          const int pm = id / plan.part.tn;
          const int pn = id % plan.part.tn;
          const index_t i0 = plan.rows[pm];
          const index_t j0 = plan.cols[pn];

          // Shift operand views to the thread's sub-block of
          // op(A)/op(B)/C.
          const T* a_sub = (mode.a == Trans::N) ? A + i0 * lda : A + i0;
          const T* b_sub = (mode.b == Trans::N) ? B + j0 : B + j0 * ldb;
          execute_serial(s, alpha, a_sub, lda, b_sub, ldb, beta,
                         C + i0 * ldc + j0, ldc);
        } catch (...) {
          MutexLock lock(err_mu);
          if (first_error == nullptr)
            first_error = std::current_exception();
        }
      },
      plan.watchdog_ms);
  std::exception_ptr pending;
  {
    MutexLock lock(err_mu);
    pending = first_error;
  }
  if (pending != nullptr) std::rethrow_exception(pending);
}

template void execute_plan<float>(const GemmPlan<float>&, float,
                                  const float*, index_t, const float*,
                                  index_t, float, float*, index_t);
template void execute_plan<double>(const GemmPlan<double>&, double,
                                   const double*, index_t, const double*,
                                   index_t, double, double*, index_t);

}  // namespace detail

template <typename T>
GemmPlan<T> plan_create(Mode mode, index_t M, index_t N, index_t K,
                        const Config& cfg) {
  SHALOM_REQUIRE(M >= 0 && N >= 0 && K >= 0, " M=", M, " N=", N, " K=", K);

  detail::check_shape_bounds<T>(M, N, K);

  GemmPlan<T> p;
  p.mode = mode;
  p.m = M;
  p.n = N;
  p.k = K;
  p.optimized_edges = cfg.optimized_edges;
  p.watchdog_ms = cfg.watchdog_ms;

  const arch::MachineDescriptor& mach = cfg.resolved_machine();
  constexpr int kLanes = simd::vec_of_t<T>::kLanes;
  p.tile = model::tile_for<T>(mach);
  p.tile.mr = std::min(p.tile.mr, ukr::kMaxMr);
  p.tile.nr = std::min(p.tile.nr, ukr::kMaxNrv * kLanes);

  // Degenerate shapes: execution only ever scales C (or returns).
  if (M == 0 || N == 0 || K == 0) return p;

  const int want = detail::resolve_threads(cfg.threads);
  if (want > 1) {
    const model::Partition part = model::solve_partition(want, M, N, p.tile);
    const int t = part.tm * part.tn;
    if (t > 1) {
      p.threads = t;
      p.part = part;
      p.rows = split_range(M, part.tm, p.tile.mr);
      p.cols = split_range(N, part.tn, p.tile.nr);

      Config serial_cfg = cfg;
      serial_cfg.threads = 1;
      p.sub.reserve(static_cast<std::size_t>(t));
      std::size_t max_arena = 0;
      for (int id = 0; id < t; ++id) {
        const int pm = id / part.tn;
        const int pn = id % part.tn;
        const index_t m = p.rows[pm + 1] - p.rows[pm];
        const index_t n = p.cols[pn + 1] - p.cols[pn];
        if (m == 0 || n == 0) {
          p.sub.emplace_back();  // empty cell: m == 0 marks "skip"
        } else {
          p.sub.push_back(plan_create<T>(mode, m, n, K, serial_cfg));
          max_arena = std::max(max_arena, p.sub.back().arena_bytes);
        }
      }
      p.arena_bytes = max_arena;
      // Pre-size every pool worker's arena now (persistent-pool
      // reservation): executions then never touch the allocator. The
      // fork-join cost is paid once per plan, not per call. Best-effort:
      // a failed reservation must not escape a worker thread (that would
      // terminate the process); execution retries and degrades to the
      // no-pack path if memory is still short.
      if (max_arena > 0) {
        pool_run(
            t,
            [&](int) {
              try {
                thread_pack_arena().reserve(max_arena);
              } catch (const std::bad_alloc&) {
              }
            },
            p.watchdog_ms);
      }
      return p;
    }
  }

  // Serial plan: resolve the per-call decision chain once.
  using ukr::AAccess;
  using ukr::BAccess;
  if (cfg.selective_packing && cfg.optimized_edges && mode.a == Trans::N &&
      mode.b == Trans::N &&
      static_cast<std::size_t>(K) * N * sizeof(T) <= mach.l1d.size_bytes &&
      selfcheck::variant_ok(
          ukr::main_variant<T>(AAccess::kDirect, BAccess::kDirect)) &&
      selfcheck::variant_ok(
          ukr::edge_variant<T>(AAccess::kDirect, BAccess::kDirect))) {
    p.small_fast_path = true;
    return p;
  }

  p.blk = model::solve_blocking<T>(mach, p.tile, M, N, K);
  if (cfg.kc_override > 0) p.blk.kc = std::min(cfg.kc_override, K);
  if (cfg.mc_override > 0)
    p.blk.mc = std::max<index_t>(p.tile.mr,
                                 cfg.mc_override / p.tile.mr * p.tile.mr);
  if (cfg.nc_override > 0)
    p.blk.nc = std::max<index_t>(p.tile.nr,
                                 cfg.nc_override / p.tile.nr * p.tile.nr);
  p.pack = model::decide_packing<T>(mach, mode, M, N, K, cfg);

  p.a_packed = p.pack.a != model::PackPlan::kNone;
  p.b_packed = p.pack.b != model::PackPlan::kNone;

  // Quarantine gate (common/selfcheck.h): the first plan that would
  // dispatch a kernel family probes it lazily here; a failed probe routes
  // this plan - and every later one - around the family. A quarantined
  // main family forces the scalar reference kernel on every tile; a
  // quarantined edge family only disables the vectorized remainder tiles.
  {
    // The in-place transposed-A main path has no packed-B variant, so a
    // trans-A no-pack plan maps to the trans-direct quarantine unit.
    const AAccess aa = p.a_packed ? AAccess::kPacked
                       : (mode.a == Trans::N) ? AAccess::kDirect
                                              : AAccess::kDirectTrans;
    const BAccess ba = p.b_packed ? BAccess::kPacked : BAccess::kDirect;
    p.force_scalar_kernels =
        !selfcheck::variant_ok(ukr::main_variant<T>(aa, ba));
    if (p.optimized_edges)
      p.optimized_edges =
          !p.force_scalar_kernels &&
          selfcheck::variant_ok(ukr::edge_variant<T>(aa, ba));
  }

  // Fused (overlapped) A packing for the transposed-A modes (Section
  // 4.3): the first column sliver's stripes compute while streaming op(A)
  // into Ac; later slivers reuse the packed block. Gated on the
  // post-quarantine edge state (its edge stripes run packed-A main tiles)
  // and the fused-TN kernel's own verdict.
  p.a_fused = p.a_packed && p.pack.a == model::PackPlan::kPackFused &&
              mode.a == Trans::T && p.tile.mr == ukr::kMaxMr &&
              p.optimized_edges &&
              selfcheck::variant_ok(ukr::fused_tn_variant<T>());
  // Fused (overlapped) B packing needs in-place A reads and a full-height
  // first stripe (the NN/NT kernels). For TN/TT it is A that gets the
  // fused treatment (a_fused above); fusing both at once would double the
  // pack stores inside one kernel for no benefit.
  p.b_fusable = p.b_packed && p.pack.b == model::PackPlan::kPackFused &&
                !p.a_packed && p.tile.mr == ukr::kMaxMr &&
                p.tile.nr == ukr::kNrFull<T> && !p.force_scalar_kernels &&
                selfcheck::variant_ok(mode.b == Trans::N
                                          ? ukr::fused_nn_variant<T>()
                                          : ukr::fused_nt_variant<T>());

  // Arena: [Ac panel][Bc sliver 0][Bc sliver 1], each with vector slack.
  p.ac_elems =
      p.a_packed ? pack::a_panel_elems(p.blk.mc, p.blk.kc, p.tile.mr) : 0;
  p.bc_sliver = p.b_packed ? pack::b_sliver_elems(p.blk.kc, p.tile.nr) +
                                 ukr::kPackSlackElems
                           : 0;
  p.arena_bytes =
      static_cast<std::size_t>(p.ac_elems + ukr::kPackSlackElems +
                               2 * p.bc_sliver) *
      sizeof(T);
  // Best-effort warm-up only; execution re-reserves and degrades to the
  // no-pack path if this thread's arena still cannot grow.
  try {
    thread_pack_arena().reserve(p.arena_bytes);
  } catch (const std::bad_alloc&) {
  }
  return p;
}

template GemmPlan<float> plan_create<float>(Mode, index_t, index_t, index_t,
                                            const Config&);
template GemmPlan<double> plan_create<double>(Mode, index_t, index_t,
                                              index_t, const Config&);

template <typename T>
void plan_execute(const GemmPlan<T>& plan, T alpha, const T* A, index_t lda,
                  const T* B, index_t ldb, T beta, T* C, index_t ldc) {
  detail::check_gemm_args(plan.mode, plan.m, plan.n, plan.k, A, lda, B, ldb,
                          C, ldc);
  detail::execute_plan(plan, alpha, A, lda, B, ldb, beta, C, ldc);
}

template void plan_execute<float>(const GemmPlan<float>&, float,
                                  const float*, index_t, const float*,
                                  index_t, float, float*, index_t);
template void plan_execute<double>(const GemmPlan<double>&, double,
                                   const double*, index_t, const double*,
                                   index_t, double, double*, index_t);

}  // namespace shalom
