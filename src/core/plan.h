// Execution plans: shape-keyed snapshots of every per-call GEMM decision.
//
// A GemmPlan captures everything `shalom::gemm` derives from (mode, M, N,
// K, Config) before any arithmetic happens: the register tile, the cache
// blocking (core/model.h), the packing decision and fused-pack eligibility
// flags, the pack-arena byte budget, and - for multi-threaded plans - the
// Tm x Tn partition together with one serial sub-plan per thread cell.
// Creating the plan once and calling plan_execute() many times removes the
// analytic models, the partition solve and the arena sizing from the hot
// path entirely, which is where the time goes when millions of calls
// repeat the same handful of small shapes (the CP2K/VGG traffic pattern).
//
// plan_execute runs the exact same loop nest as the per-call driver, so
// results are bitwise identical to a direct gemm() with the same Config.
// Plans are immutable after creation and safe to execute concurrently from
// multiple threads: serial (threads == 1) executions are fully independent
// (each uses the calling thread's pack arena), while parallel plans run
// their fork-join rounds on the shared work-stealing ThreadPool, where
// rounds from independent callers overlap (core/threadpool.h).
#pragma once

#include <vector>

#include "common/matrix.h"
#include "core/model.h"
#include "core/types.h"

namespace shalom {

/// Immutable execution plan for one (mode, M, N, K, Config) GEMM shape.
/// Scalars (alpha/beta) and operand pointers stay runtime arguments.
template <typename T>
struct GemmPlan {
  Mode mode{};
  index_t m = 0, n = 0, k = 0;
  /// Resolved worker count (never 0). 1 = serial plan.
  int threads = 1;
  /// Watchdog period snapshotted from Config::watchdog_ms at creation
  /// (0 disables; see core/threadpool.h). Applied to every parallel
  /// round this plan runs.
  int watchdog_ms = 0;

  /// Register tile, clamped to the instantiated kernel family.
  model::Tile tile{};
  /// True when the no-blocking small-GEMM fast path applies (NN, B
  /// L1-resident, full optimizations): the blocked fields below are unused.
  bool small_fast_path = false;

  model::Blocking blk{};
  model::PackDecision pack{};
  bool a_packed = false, b_packed = false;
  /// Fused-pack eligibility (paper Sections 4.3 / 5.3), resolved once.
  bool a_fused = false, b_fusable = false;
  bool optimized_edges = true;
  /// Quarantine routing (common/selfcheck.h): the main kernel family this
  /// plan would dispatch failed its selfcheck probe, so every tile runs
  /// the scalar reference kernel instead.
  bool force_scalar_kernels = false;

  /// Pack-arena layout: [Ac panel][slack][Bc sliver 0][Bc sliver 1].
  index_t ac_elems = 0, bc_sliver = 0;
  std::size_t arena_bytes = 0;

  /// Parallel snapshot (threads > 1): thread grid, tile-aligned row/col
  /// boundaries, and one serial sub-plan per cell (empty cells have m==0).
  model::Partition part{};
  std::vector<index_t> rows, cols;
  std::vector<GemmPlan<T>> sub;
};

/// Builds a plan. cfg.threads == 0 resolves to all host cores; the
/// partition solver may still collapse the plan to serial. Also pre-sizes
/// the pack arenas that will serve the plan (the calling thread's, plus
/// every pool worker's for parallel plans) so no execution ever allocates.
/// Throws invalid_argument on negative dimensions.
template <typename T>
GemmPlan<T> plan_create(Mode mode, index_t M, index_t N, index_t K,
                        const Config& cfg = {});

/// Executes the plan: C = alpha * op(A) . op(B) + beta * C with the plan's
/// snapshot dimensions. Validates pointers and leading dimensions against
/// the plan (throws invalid_argument), then runs the serial or fork-join
/// driver. Safe to call repeatedly and from multiple threads at once.
template <typename T>
void plan_execute(const GemmPlan<T>& plan, T alpha, const T* A, index_t lda,
                  const T* B, index_t ldb, T beta, T* C, index_t ldc);

namespace detail {

/// Shared argument contract of every dense GEMM entry point.
template <typename T>
void check_gemm_args(Mode mode, index_t M, index_t N, index_t K, const T* A,
                     index_t lda, const T* B, index_t ldb, const T* C,
                     index_t ldc);

/// plan_execute without the argument re-validation: the cached entry
/// points check once up front and then dispatch here.
template <typename T>
void execute_plan(const GemmPlan<T>& plan, T alpha, const T* A, index_t lda,
                  const T* B, index_t ldb, T beta, T* C, index_t ldc);

/// Runs the serial loop nest of a threads==1 plan (no validation, no
/// trivial-case handling beyond what the loops themselves do).
template <typename T>
void execute_serial(const GemmPlan<T>& plan, T alpha, const T* A,
                    index_t lda, const T* B, index_t ldb, T beta, T* C,
                    index_t ldc);

/// C *= beta (beta==0 writes zeros without reading C).
template <typename T>
void scale_c(index_t M, index_t N, T beta, T* C, index_t ldc);

/// cfg.threads semantics: 0 = all host cores, else the given count.
int resolve_threads(int threads);

}  // namespace detail

}  // namespace shalom
