#include "core/plan_cache.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/fault.h"
#include "common/health.h"
#include "common/thread_annotations.h"
#include "core/gemm.h"
#include "core/parallel.h"

namespace shalom {

namespace {

inline std::uint64_t fnv1a_init() { return 0xCBF29CE484222325ull; }

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  // Mix 8 bytes at a time; good enough dispersion for a keyed hash map.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::uint64_t h = fnv1a_init();
    h = fnv1a_mix(h, (static_cast<std::uint64_t>(k.trans_a) << 16) |
                         (static_cast<std::uint64_t>(k.trans_b) << 8) |
                         k.ld_class);
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.m));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.n));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.k));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.threads));
    h = fnv1a_mix(h, k.cfg_hash);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

LdClass classify_ld(Mode mode, index_t M, index_t N, index_t K, index_t lda,
                    index_t ldb, index_t ldc) {
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;
  const bool tight = lda == a_cols && ldb == b_cols && ldc == N;
  return tight ? LdClass::kContiguous : LdClass::kPadded;
}

namespace {

// Hash the machine by its model-relevant parameters, not by pointer: a
// caller-owned descriptor may die and another may reuse its address.
std::uint64_t hash_machine(const arch::MachineDescriptor& m) {
  std::uint64_t h = fnv1a_init();
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.vector_registers));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.vector_bits));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.cores));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l1d.size_bytes));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l2.size_bytes));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l2.shared_by_cores));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l3.size_bytes));
  return h;
}

}  // namespace

std::uint64_t config_fingerprint(const Config& cfg) {
  std::uint64_t h = fnv1a_init();
  h = fnv1a_mix(h, (cfg.selective_packing ? 1u : 0u) |
                       (cfg.fused_packing ? 2u : 0u) |
                       (cfg.optimized_edges ? 4u : 0u));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(cfg.kc_override));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(cfg.mc_override));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(cfg.nc_override));
  std::uint64_t machine_hash;
  if (cfg.machine == nullptr) {
    // This is every call on the default config, and the host descriptor
    // is immutable once probed: hash it exactly once.
    static const std::uint64_t host_hash =
        hash_machine(Config{}.resolved_machine());
    machine_hash = host_hash;
  } else {
    machine_hash = hash_machine(*cfg.machine);
  }
  h = fnv1a_mix(h, machine_hash);
  return h;
}

PlanKey make_plan_key(Mode mode, index_t M, index_t N, index_t K,
                      LdClass ld_class, int threads, const Config& cfg) {
  PlanKey key;
  key.trans_a = mode.a == Trans::T ? 1 : 0;
  key.trans_b = mode.b == Trans::T ? 1 : 0;
  key.ld_class = static_cast<std::uint8_t>(ld_class);
  key.m = M;
  key.n = N;
  key.k = K;
  key.threads = threads;
  key.cfg_hash = config_fingerprint(cfg);
  return key;
}

/// Sharded cache state. Keys are routed to one of kShards independent
/// (mutex, LRU list, hash map, counter) shards by the HIGH bits of the
/// key hash - the in-shard unordered_map buckets on the low bits of the
/// same hash, so the two stay uncorrelated. No operation ever holds two
/// shard locks at once (eviction locks shards one at a time), so there is
/// no lock-ordering hazard.
///
/// Observable semantics match the PR 1 single-mutex cache: `capacity`
/// bounds the TOTAL entry count and eviction removes the globally
/// least-recently-used entry. Global recency is tracked by a per-entry
/// tick from one shared counter; since each shard's list preserves the
/// global recency order restricted to that shard, the globally oldest
/// entry is always some shard's tail, and evicting the oldest tail is an
/// exact global-LRU eviction (concurrent touches can skew a racing
/// eviction by a few ticks, which single-threaded callers never see).
template <typename T>
struct PlanCache<T>::Impl {
  using PlanPtr = typename PlanCache<T>::PlanPtr;
  struct Entry {
    PlanKey key;
    PlanPtr plan;
    std::uint64_t tick = 0;  // global recency stamp (higher = fresher)
  };
  using LruList = std::list<Entry>;
  static constexpr std::size_t kShardCount = PlanCache<T>::kShards;
  static_assert((kShardCount & (kShardCount - 1)) == 0,
                "shard routing masks the high hash bits");

  struct Shard {
    mutable Mutex mu;
    LruList lru SHALOM_GUARDED_BY(mu);  // front = shard-local MRU
    std::unordered_map<PlanKey, typename LruList::iterator, PlanKeyHash> map
        SHALOM_GUARDED_BY(mu);
    /// Only hits/misses/evictions are used per shard; stats() sums them.
    PlanCacheStats counters SHALOM_GUARDED_BY(mu);

    /// Moves the hit entry to the shard's LRU front and re-stamps it.
    PlanPtr lookup_locked(const PlanKey& key, std::uint64_t tick)
        SHALOM_REQUIRES(mu) {
      auto it = map.find(key);
      if (it == map.end()) return nullptr;
      it->second->tick = tick;
      lru.splice(lru.begin(), lru, it->second);
      return it->second->plan;
    }

    /// Inserts (or replaces). Returns 1 when a NEW entry was added (the
    /// caller then accounts it globally and trims), 0 on replace.
    int insert_locked(const PlanKey& key, PlanPtr plan, std::uint64_t tick)
        SHALOM_REQUIRES(mu) {
      auto it = map.find(key);
      if (it != map.end()) {
        it->second->plan = std::move(plan);
        it->second->tick = tick;
        lru.splice(lru.begin(), lru, it->second);
        return 0;
      }
      lru.emplace_front(Entry{key, std::move(plan), tick});
      try {
        map.emplace(key, lru.begin());
      } catch (...) {
        // Keep the list and map consistent if the node allocation fails.
        lru.pop_front();
        throw;
      }
      return 1;
    }
  };

  std::array<Shard, kShardCount> shards;
  // Lock-free cross-shard accounting and the memo side channel for
  // gemm_cached; deliberately outside the capabilities: every operation
  // names its memory order explicitly (release on publish, acquire on
  // memo revalidation, relaxed for pure counters).
  std::atomic<std::size_t> capacity;
  std::atomic<std::size_t> total_size{0};
  std::atomic<std::uint64_t> use_tick{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> memo_hits{0};

  explicit Impl(std::size_t cap) : capacity(cap) {}

  static std::size_t shard_index(const PlanKey& key) {
    return (static_cast<std::size_t>(PlanKeyHash{}(key)) >> 48) &
           (kShardCount - 1);
  }
  Shard& shard_for(const PlanKey& key) { return shards[shard_index(key)]; }

  std::uint64_t next_tick() noexcept {
    return use_tick.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Evicts globally-LRU entries (the oldest shard tail) until the total
  /// entry count fits the capacity. Locks one shard at a time.
  void evict_to_capacity() {
    while (total_size.load(std::memory_order_acquire) >
           capacity.load(std::memory_order_acquire)) {
      int victim = -1;
      std::uint64_t oldest = 0;
      for (std::size_t s = 0; s < kShardCount; ++s) {
        MutexLock lock(shards[s].mu);
        if (shards[s].lru.empty()) continue;
        const std::uint64_t t = shards[s].lru.back().tick;
        if (victim < 0 || t < oldest) {
          victim = static_cast<int>(s);
          oldest = t;
        }
      }
      if (victim < 0) return;  // nothing left to evict
      Shard& sh = shards[static_cast<std::size_t>(victim)];
      MutexLock lock(sh.mu);
      if (sh.lru.empty()) continue;  // raced with clear(); re-scan
      sh.map.erase(sh.lru.back().key);
      sh.lru.pop_back();
      ++sh.counters.evictions;
      total_size.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
};

template <typename T>
PlanCache<T>::PlanCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>(capacity)) {}

template <typename T>
PlanCache<T>::~PlanCache() = default;

template <typename T>
PlanCache<T>& PlanCache<T>::global() {
  static PlanCache<T> cache;
  return cache;
}

template <typename T>
typename PlanCache<T>::PlanPtr PlanCache<T>::get_or_create(
    const PlanKey& key, Mode mode, index_t M, index_t N, index_t K,
    const Config& cfg) {
  typename Impl::Shard& sh = impl_->shard_for(key);
  {
    MutexLock lock(sh.mu);
    if (PlanPtr hit = sh.lookup_locked(key, impl_->next_tick())) {
      ++sh.counters.hits;
      return hit;
    }
    ++sh.counters.misses;
  }
  // Build outside the lock: plan creation may solve models, size arenas
  // and fork the pool, none of which should serialize other shapes. A
  // racing creator for the same key costs one duplicate build, not a
  // wrong result - insert_locked keeps whichever lands last.
  PlanPtr plan;
  health::Cause cause = health::Cause::kNone;
  if (SHALOM_FAULT_POINT(fault::Site::kAllocPlan)) {
    cause = health::Cause::kInjected;
  } else {
    try {
      plan = std::make_shared<const GemmPlan<T>>(
          plan_create<T>(mode, M, N, K, cfg));
    } catch (const std::bad_alloc&) {
      // Degrade: the caller runs uncached. Argument errors propagate.
      cause = health::Cause::kOverload;
    }
  }
  if (plan == nullptr) {
    telemetry::note_plan_cache_bypassed();
    health::report_degraded(health::Component::kPlanCache, cause);
    return nullptr;
  }
  bool inserted = true;
  if (SHALOM_FAULT_POINT(fault::Site::kPlanCacheInsert)) {
    inserted = false;
    cause = health::Cause::kInjected;
  }
  // Capacity 0 disables insertion (PR 1 semantics): the call still
  // returns the built plan, the cache just won't remember it.
  if (inserted && impl_->capacity.load(std::memory_order_acquire) > 0) {
    int added = 0;
    try {
      MutexLock lock(sh.mu);
      added = sh.insert_locked(key, plan, impl_->next_tick());
    } catch (const std::bad_alloc&) {
      inserted = false;
      cause = health::Cause::kOverload;
    }
    if (added == 1) {
      impl_->total_size.fetch_add(1, std::memory_order_acq_rel);
      impl_->evict_to_capacity();
    }
  }
  if (!inserted) {
    telemetry::note_plan_cache_bypassed();
    health::report_degraded(health::Component::kPlanCache, cause);
  } else {
    // Built and (when capacity allows) cached: the component is serving
    // at full capacity - passive recovery from an earlier bypass storm.
    health::report_recovered(health::Component::kPlanCache);
  }
  return plan;
}

template <typename T>
typename PlanCache<T>::PlanPtr PlanCache<T>::lookup(const PlanKey& key) {
  typename Impl::Shard& sh = impl_->shard_for(key);
  MutexLock lock(sh.mu);
  PlanPtr hit = sh.lookup_locked(key, impl_->next_tick());
  if (hit) {
    ++sh.counters.hits;
  } else {
    ++sh.counters.misses;
  }
  return hit;
}

template <typename T>
void PlanCache<T>::insert(const PlanKey& key, PlanPtr plan) {
  SHALOM_REQUIRE(plan != nullptr);
  health::Cause cause = health::Cause::kNone;
  bool inserted = true;
  if (SHALOM_FAULT_POINT(fault::Site::kPlanCacheInsert)) {
    inserted = false;
    cause = health::Cause::kInjected;
  }
  if (inserted && impl_->capacity.load(std::memory_order_acquire) > 0) {
    typename Impl::Shard& sh = impl_->shard_for(key);
    int added = 0;
    try {
      MutexLock lock(sh.mu);
      added = sh.insert_locked(key, std::move(plan), impl_->next_tick());
    } catch (const std::bad_alloc&) {
      inserted = false;
      cause = health::Cause::kOverload;
    }
    if (added == 1) {
      impl_->total_size.fetch_add(1, std::memory_order_acq_rel);
      impl_->evict_to_capacity();
    }
  }
  if (!inserted) {
    telemetry::note_plan_cache_bypassed();
    health::report_degraded(health::Component::kPlanCache, cause);
    return;
  }
  health::report_recovered(health::Component::kPlanCache);
  // A key may now map to a different plan (tuner re-seed): memos must
  // revalidate.
  impl_->generation.fetch_add(1, std::memory_order_release);
}

template <typename T>
void PlanCache<T>::set_capacity(std::size_t capacity) {
  impl_->capacity.store(capacity, std::memory_order_release);
  impl_->evict_to_capacity();
  impl_->generation.fetch_add(1, std::memory_order_release);
}

template <typename T>
void PlanCache<T>::clear() {
  for (auto& sh : impl_->shards) {
    MutexLock lock(sh.mu);
    const std::size_t n = sh.map.size();
    sh.map.clear();
    sh.lru.clear();
    sh.counters = PlanCacheStats{};
    impl_->total_size.fetch_sub(n, std::memory_order_acq_rel);
  }
  impl_->memo_hits.store(0, std::memory_order_relaxed);
  impl_->generation.fetch_add(1, std::memory_order_release);
}

template <typename T>
PlanCacheStats PlanCache<T>::stats() const {
  PlanCacheStats s{};
  for (const auto& sh : impl_->shards) {
    MutexLock lock(sh.mu);
    s.hits += sh.counters.hits;
    s.misses += sh.counters.misses;
    s.evictions += sh.counters.evictions;
    s.size += sh.map.size();
  }
  s.hits += impl_->memo_hits.load(std::memory_order_relaxed);
  s.capacity = impl_->capacity.load(std::memory_order_acquire);
  return s;
}

template <typename T>
std::uint64_t PlanCache<T>::generation() const {
  return impl_->generation.load(std::memory_order_acquire);
}

template <typename T>
void PlanCache<T>::note_memo_hit() {
  impl_->memo_hits.fetch_add(1, std::memory_order_relaxed);
}

template <typename T>
std::vector<HotShape> PlanCache<T>::hot(std::size_t k) const {
  std::vector<HotShape> all;
  for (const auto& sh : impl_->shards) {
    MutexLock lock(sh.mu);
    for (const auto& entry : sh.lru)
      all.push_back(HotShape{entry.key, entry.tick});
  }
  std::sort(all.begin(), all.end(), [](const HotShape& a, const HotShape& b) {
    return a.last_use_tick > b.last_use_tick;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

template class PlanCache<float>;
template class PlanCache<double>;

template <typename T>
void gemm_cached(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg) {
  detail::check_gemm_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    detail::scale_c(M, N, beta, C, ldc);
    return;
  }

  if (!cfg.use_plan_cache) {
    if (cfg.threads == 1) {
      gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
    } else {
      gemm_parallel(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
                    cfg);
    }
    return;
  }

  // Per-thread last-plan memo: repeated same-shape calls (the dominant
  // pattern this layer targets) skip key hashing, the cache mutex and the
  // LRU update entirely. The memo compares the raw call parameters - a
  // handful of integer compares, strictly finer-grained than the cache
  // key - and the generation check revalidates after clear/set_capacity/
  // external insert. An LRU eviction does not invalidate the memo: the
  // shared_ptr keeps the plan alive and it is still the right plan.
  //
  // Calls with a caller-provided machine descriptor bypass the memo: it
  // could only recognize cfg.machine by address, and a descriptor freed
  // and reallocated at the same address would silently replay the dead
  // descriptor's plan - exactly the ABA hazard the cache key avoids by
  // hashing the descriptor by value. Such calls take the normal keyed
  // path below, which stays correct (and is still far cheaper than a
  // replan).
  struct RawParams {
    Trans ta{}, tb{};
    index_t m = -1, n = -1, k = -1, lda = -1, ldb = -1, ldc = -1;
    int threads = 0;
    bool selective = false, fused = false, edges = false;
    index_t kc = 0, mc = 0, nc = 0;

    bool operator==(const RawParams&) const = default;
  };
  struct Memo {
    RawParams params;
    typename PlanCache<T>::PlanPtr plan;
    std::uint64_t gen = 0;
  };
  thread_local Memo memo;

  const bool memoizable = cfg.machine == nullptr;
  const RawParams params{mode.a,
                         mode.b,
                         M,
                         N,
                         K,
                         lda,
                         ldb,
                         ldc,
                         cfg.threads,
                         cfg.selective_packing,
                         cfg.fused_packing,
                         cfg.optimized_edges,
                         cfg.kc_override,
                         cfg.mc_override,
                         cfg.nc_override};

  auto& cache = PlanCache<T>::global();
  const std::uint64_t gen = cache.generation();
  if (memoizable && memo.plan != nullptr && memo.gen == gen &&
      memo.params == params) {
    cache.note_memo_hit();
    detail::execute_plan(*memo.plan, alpha, A, lda, B, ldb, beta, C, ldc);
    return;
  }

  Config resolved = cfg;
  resolved.threads = detail::resolve_threads(cfg.threads);
  const PlanKey key =
      make_plan_key(mode, M, N, K, classify_ld(mode, M, N, K, lda, ldb, ldc),
                    resolved.threads, resolved);
  auto plan = cache.get_or_create(key, mode, M, N, K, resolved);
  if (plan == nullptr) {
    // Degraded mode: the cacheable plan could not be materialized. Run
    // this call through the per-call drivers (which plan on the stack and
    // degrade further on their own if memory stays short).
    Config uncached = resolved;
    uncached.use_plan_cache = false;
    if (resolved.threads <= 1) {
      gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
                  uncached);
    } else {
      gemm_parallel(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
                    uncached);
    }
    return;
  }
  if (memoizable) {
    memo.params = params;
    memo.plan = plan;
    memo.gen = gen;
  }
  detail::execute_plan(*plan, alpha, A, lda, B, ldb, beta, C, ldc);
}

template void gemm_cached<float>(Mode, index_t, index_t, index_t, float,
                                 const float*, index_t, const float*,
                                 index_t, float, float*, index_t,
                                 const Config&);
template void gemm_cached<double>(Mode, index_t, index_t, index_t, double,
                                  const double*, index_t, const double*,
                                  index_t, double, double*, index_t,
                                  const Config&);

}  // namespace shalom
