#include "core/plan_cache.h"

#include <atomic>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/fault.h"
#include "common/thread_annotations.h"
#include "core/gemm.h"
#include "core/parallel.h"

namespace shalom {

namespace {

inline std::uint64_t fnv1a_init() { return 0xCBF29CE484222325ull; }

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  // Mix 8 bytes at a time; good enough dispersion for a keyed hash map.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::uint64_t h = fnv1a_init();
    h = fnv1a_mix(h, (static_cast<std::uint64_t>(k.trans_a) << 16) |
                         (static_cast<std::uint64_t>(k.trans_b) << 8) |
                         k.ld_class);
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.m));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.n));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.k));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(k.threads));
    h = fnv1a_mix(h, k.cfg_hash);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

LdClass classify_ld(Mode mode, index_t M, index_t N, index_t K, index_t lda,
                    index_t ldb, index_t ldc) {
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;
  const bool tight = lda == a_cols && ldb == b_cols && ldc == N;
  return tight ? LdClass::kContiguous : LdClass::kPadded;
}

namespace {

// Hash the machine by its model-relevant parameters, not by pointer: a
// caller-owned descriptor may die and another may reuse its address.
std::uint64_t hash_machine(const arch::MachineDescriptor& m) {
  std::uint64_t h = fnv1a_init();
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.vector_registers));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.vector_bits));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.cores));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l1d.size_bytes));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l2.size_bytes));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l2.shared_by_cores));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(m.l3.size_bytes));
  return h;
}

}  // namespace

std::uint64_t config_fingerprint(const Config& cfg) {
  std::uint64_t h = fnv1a_init();
  h = fnv1a_mix(h, (cfg.selective_packing ? 1u : 0u) |
                       (cfg.fused_packing ? 2u : 0u) |
                       (cfg.optimized_edges ? 4u : 0u));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(cfg.kc_override));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(cfg.mc_override));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(cfg.nc_override));
  std::uint64_t machine_hash;
  if (cfg.machine == nullptr) {
    // This is every call on the default config, and the host descriptor
    // is immutable once probed: hash it exactly once.
    static const std::uint64_t host_hash =
        hash_machine(Config{}.resolved_machine());
    machine_hash = host_hash;
  } else {
    machine_hash = hash_machine(*cfg.machine);
  }
  h = fnv1a_mix(h, machine_hash);
  return h;
}

PlanKey make_plan_key(Mode mode, index_t M, index_t N, index_t K,
                      LdClass ld_class, int threads, const Config& cfg) {
  PlanKey key;
  key.trans_a = mode.a == Trans::T ? 1 : 0;
  key.trans_b = mode.b == Trans::T ? 1 : 0;
  key.ld_class = static_cast<std::uint8_t>(ld_class);
  key.m = M;
  key.n = N;
  key.k = K;
  key.threads = threads;
  key.cfg_hash = config_fingerprint(cfg);
  return key;
}

template <typename T>
struct PlanCache<T>::Impl {
  using PlanPtr = typename PlanCache<T>::PlanPtr;
  using LruList = std::list<std::pair<PlanKey, PlanPtr>>;

  mutable Mutex mu;
  LruList lru SHALOM_GUARDED_BY(mu);  // front = most recently used
  std::unordered_map<PlanKey, typename LruList::iterator, PlanKeyHash> map
      SHALOM_GUARDED_BY(mu);
  std::size_t capacity SHALOM_GUARDED_BY(mu);
  PlanCacheStats counters SHALOM_GUARDED_BY(mu);
  // Lock-free side channel for the per-thread memos in gemm_cached;
  // deliberately outside the capability: every operation names its
  // memory order explicitly (release on publish, acquire on memo
  // revalidation, relaxed for the pure counter).
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> memo_hits{0};

  explicit Impl(std::size_t cap) : capacity(cap) {}

  /// Moves the hit entry to the LRU front.
  PlanPtr lookup_locked(const PlanKey& key) SHALOM_REQUIRES(mu) {
    auto it = map.find(key);
    if (it == map.end()) return nullptr;
    lru.splice(lru.begin(), lru, it->second);
    return it->second->second;
  }

  /// Inserts (or replaces) and trims to capacity.
  void insert_locked(const PlanKey& key, PlanPtr plan) SHALOM_REQUIRES(mu) {
    auto it = map.find(key);
    if (it != map.end()) {
      it->second->second = std::move(plan);
      lru.splice(lru.begin(), lru, it->second);
      return;
    }
    if (capacity == 0) return;
    lru.emplace_front(key, std::move(plan));
    try {
      map.emplace(key, lru.begin());
    } catch (...) {
      // Keep the list and map consistent if the node allocation fails.
      lru.pop_front();
      throw;
    }
    while (map.size() > capacity) {
      map.erase(lru.back().first);
      lru.pop_back();
      ++counters.evictions;
    }
  }
};

template <typename T>
PlanCache<T>::PlanCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>(capacity)) {}

template <typename T>
PlanCache<T>::~PlanCache() = default;

template <typename T>
PlanCache<T>& PlanCache<T>::global() {
  static PlanCache<T> cache;
  return cache;
}

template <typename T>
typename PlanCache<T>::PlanPtr PlanCache<T>::get_or_create(
    const PlanKey& key, Mode mode, index_t M, index_t N, index_t K,
    const Config& cfg) {
  {
    MutexLock lock(impl_->mu);
    if (PlanPtr hit = impl_->lookup_locked(key)) {
      ++impl_->counters.hits;
      return hit;
    }
    ++impl_->counters.misses;
  }
  // Build outside the lock: plan creation may solve models, size arenas
  // and fork the pool, none of which should serialize other shapes. A
  // racing creator for the same key costs one duplicate build, not a
  // wrong result - insert_locked keeps whichever lands last.
  PlanPtr plan;
  if (!SHALOM_FAULT_POINT(fault::Site::kAllocPlan)) {
    try {
      plan = std::make_shared<const GemmPlan<T>>(
          plan_create<T>(mode, M, N, K, cfg));
    } catch (const std::bad_alloc&) {
      // Degrade: the caller runs uncached. Argument errors propagate.
    }
  }
  if (plan == nullptr) {
    telemetry::note_plan_cache_bypassed();
    return nullptr;
  }
  bool inserted = !SHALOM_FAULT_POINT(fault::Site::kPlanCacheInsert);
  if (inserted) {
    try {
      MutexLock lock(impl_->mu);
      impl_->insert_locked(key, plan);
    } catch (const std::bad_alloc&) {
      inserted = false;
    }
  }
  if (!inserted) telemetry::note_plan_cache_bypassed();
  return plan;
}

template <typename T>
typename PlanCache<T>::PlanPtr PlanCache<T>::lookup(const PlanKey& key) {
  MutexLock lock(impl_->mu);
  PlanPtr hit = impl_->lookup_locked(key);
  if (hit) {
    ++impl_->counters.hits;
  } else {
    ++impl_->counters.misses;
  }
  return hit;
}

template <typename T>
void PlanCache<T>::insert(const PlanKey& key, PlanPtr plan) {
  SHALOM_REQUIRE(plan != nullptr);
  bool inserted = !SHALOM_FAULT_POINT(fault::Site::kPlanCacheInsert);
  if (inserted) {
    try {
      MutexLock lock(impl_->mu);
      impl_->insert_locked(key, std::move(plan));
    } catch (const std::bad_alloc&) {
      inserted = false;
    }
  }
  if (!inserted) {
    telemetry::note_plan_cache_bypassed();
    return;
  }
  // A key may now map to a different plan (tuner re-seed): memos must
  // revalidate.
  impl_->generation.fetch_add(1, std::memory_order_release);
}

template <typename T>
void PlanCache<T>::set_capacity(std::size_t capacity) {
  MutexLock lock(impl_->mu);
  impl_->capacity = capacity;
  while (impl_->map.size() > capacity) {
    impl_->map.erase(impl_->lru.back().first);
    impl_->lru.pop_back();
    ++impl_->counters.evictions;
  }
  impl_->generation.fetch_add(1, std::memory_order_release);
}

template <typename T>
void PlanCache<T>::clear() {
  MutexLock lock(impl_->mu);
  impl_->map.clear();
  impl_->lru.clear();
  impl_->counters = PlanCacheStats{};
  impl_->memo_hits.store(0, std::memory_order_relaxed);
  impl_->generation.fetch_add(1, std::memory_order_release);
}

template <typename T>
PlanCacheStats PlanCache<T>::stats() const {
  MutexLock lock(impl_->mu);
  PlanCacheStats s = impl_->counters;
  s.hits += impl_->memo_hits.load(std::memory_order_relaxed);
  s.size = impl_->map.size();
  s.capacity = impl_->capacity;
  return s;
}

template <typename T>
std::uint64_t PlanCache<T>::generation() const {
  return impl_->generation.load(std::memory_order_acquire);
}

template <typename T>
void PlanCache<T>::note_memo_hit() {
  impl_->memo_hits.fetch_add(1, std::memory_order_relaxed);
}

template class PlanCache<float>;
template class PlanCache<double>;

template <typename T>
void gemm_cached(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg) {
  detail::check_gemm_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    detail::scale_c(M, N, beta, C, ldc);
    return;
  }

  if (!cfg.use_plan_cache) {
    if (cfg.threads == 1) {
      gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
    } else {
      gemm_parallel(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
                    cfg);
    }
    return;
  }

  // Per-thread last-plan memo: repeated same-shape calls (the dominant
  // pattern this layer targets) skip key hashing, the cache mutex and the
  // LRU update entirely. The memo compares the raw call parameters - a
  // handful of integer compares, strictly finer-grained than the cache
  // key - and the generation check revalidates after clear/set_capacity/
  // external insert. An LRU eviction does not invalidate the memo: the
  // shared_ptr keeps the plan alive and it is still the right plan.
  //
  // Calls with a caller-provided machine descriptor bypass the memo: it
  // could only recognize cfg.machine by address, and a descriptor freed
  // and reallocated at the same address would silently replay the dead
  // descriptor's plan - exactly the ABA hazard the cache key avoids by
  // hashing the descriptor by value. Such calls take the normal keyed
  // path below, which stays correct (and is still far cheaper than a
  // replan).
  struct RawParams {
    Trans ta{}, tb{};
    index_t m = -1, n = -1, k = -1, lda = -1, ldb = -1, ldc = -1;
    int threads = 0;
    bool selective = false, fused = false, edges = false;
    index_t kc = 0, mc = 0, nc = 0;

    bool operator==(const RawParams&) const = default;
  };
  struct Memo {
    RawParams params;
    typename PlanCache<T>::PlanPtr plan;
    std::uint64_t gen = 0;
  };
  thread_local Memo memo;

  const bool memoizable = cfg.machine == nullptr;
  const RawParams params{mode.a,
                         mode.b,
                         M,
                         N,
                         K,
                         lda,
                         ldb,
                         ldc,
                         cfg.threads,
                         cfg.selective_packing,
                         cfg.fused_packing,
                         cfg.optimized_edges,
                         cfg.kc_override,
                         cfg.mc_override,
                         cfg.nc_override};

  auto& cache = PlanCache<T>::global();
  const std::uint64_t gen = cache.generation();
  if (memoizable && memo.plan != nullptr && memo.gen == gen &&
      memo.params == params) {
    cache.note_memo_hit();
    detail::execute_plan(*memo.plan, alpha, A, lda, B, ldb, beta, C, ldc);
    return;
  }

  Config resolved = cfg;
  resolved.threads = detail::resolve_threads(cfg.threads);
  const PlanKey key =
      make_plan_key(mode, M, N, K, classify_ld(mode, M, N, K, lda, ldb, ldc),
                    resolved.threads, resolved);
  auto plan = cache.get_or_create(key, mode, M, N, K, resolved);
  if (plan == nullptr) {
    // Degraded mode: the cacheable plan could not be materialized. Run
    // this call through the per-call drivers (which plan on the stack and
    // degrade further on their own if memory stays short).
    Config uncached = resolved;
    uncached.use_plan_cache = false;
    if (resolved.threads <= 1) {
      gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
                  uncached);
    } else {
      gemm_parallel(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc,
                    uncached);
    }
    return;
  }
  if (memoizable) {
    memo.params = params;
    memo.plan = plan;
    memo.gen = gen;
  }
  detail::execute_plan(*plan, alpha, A, lda, B, ldb, beta, C, ldc);
}

template void gemm_cached<float>(Mode, index_t, index_t, index_t, float,
                                 const float*, index_t, const float*,
                                 index_t, float, float*, index_t,
                                 const Config&);
template void gemm_cached<double>(Mode, index_t, index_t, index_t, double,
                                  const double*, index_t, const double*,
                                  index_t, double, double*, index_t,
                                  const Config&);

}  // namespace shalom
