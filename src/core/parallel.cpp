#include "core/parallel.h"

#include <algorithm>

#include "common/error.h"
#include "core/gemm.h"
#include "core/plan_cache.h"

namespace shalom {

std::vector<index_t> split_range(index_t total, int parts, int align) {
  SHALOM_REQUIRE(parts >= 1 && align >= 1);
  const index_t tiles = (total + align - 1) / align;
  std::vector<index_t> offsets(parts + 1);
  for (int p = 0; p <= parts; ++p) {
    const index_t tile_off = tiles * p / parts;
    offsets[p] = std::min<index_t>(total, tile_off * align);
  }
  return offsets;
}

template <typename T>
void gemm_parallel(Mode mode, index_t M, index_t N, index_t K, T alpha,
                   const T* A, index_t lda, const T* B, index_t ldb, T beta,
                   T* C, index_t ldc, const Config& cfg) {
  if (cfg.use_plan_cache) {
    gemm_cached(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
    return;
  }

  const int threads = detail::resolve_threads(cfg.threads);
  // Degenerate shapes (and alpha == 0) never touch the partition solver or
  // the packing path: gemm_serial resolves them with at most a beta scale.
  if (threads <= 1 || M == 0 || N == 0 || K == 0 || alpha == T{0}) {
    gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
    return;
  }

  // The Tm x Tn partition, the tile-aligned row/col splits and the
  // per-cell serial decisions all live in the plan layer now; a per-call
  // parallel GEMM is a throwaway plan executed once.
  detail::check_gemm_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  Config resolved = cfg;
  resolved.threads = threads;
  const GemmPlan<T> plan = plan_create<T>(mode, M, N, K, resolved);
  detail::execute_plan(plan, alpha, A, lda, B, ldb, beta, C, ldc);
}

template void gemm_parallel<float>(Mode, index_t, index_t, index_t, float,
                                   const float*, index_t, const float*,
                                   index_t, float, float*, index_t,
                                   const Config&);
template void gemm_parallel<double>(Mode, index_t, index_t, index_t, double,
                                    const double*, index_t, const double*,
                                    index_t, double, double*, index_t,
                                    const Config&);

}  // namespace shalom
