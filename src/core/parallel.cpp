#include "core/parallel.h"

#include <algorithm>
#include <thread>

#include "common/error.h"
#include "core/dispatch.h"
#include "core/gemm.h"
#include "core/model.h"
#include "core/threadpool.h"

namespace shalom {

std::vector<index_t> split_range(index_t total, int parts, int align) {
  SHALOM_REQUIRE(parts >= 1 && align >= 1);
  const index_t tiles = (total + align - 1) / align;
  std::vector<index_t> offsets(parts + 1);
  for (int p = 0; p <= parts; ++p) {
    const index_t tile_off = tiles * p / parts;
    offsets[p] = std::min<index_t>(total, tile_off * align);
  }
  return offsets;
}

template <typename T>
void gemm_parallel(Mode mode, index_t M, index_t N, index_t K, T alpha,
                   const T* A, index_t lda, const T* B, index_t ldb, T beta,
                   T* C, index_t ldc, const Config& cfg) {
  int threads = cfg.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  if (threads <= 1 || M == 0 || N == 0) {
    gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
    return;
  }

  const arch::MachineDescriptor& mach = cfg.resolved_machine();
  constexpr int kLanes = simd::vec_of_t<T>::kLanes;
  model::Tile tile = model::tile_for<T>(mach);
  tile.mr = std::min(tile.mr, ukr::kMaxMr);
  tile.nr = std::min(tile.nr, ukr::kMaxNrv * kLanes);

  const model::Partition part = model::solve_partition(threads, M, N, tile);
  const int t = part.tm * part.tn;
  if (t == 1) {
    gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
    return;
  }

  const std::vector<index_t> rows = split_range(M, part.tm, tile.mr);
  const std::vector<index_t> cols = split_range(N, part.tn, tile.nr);

  Config serial_cfg = cfg;
  serial_cfg.threads = 1;

  ThreadPool::global(t).parallel_for(t, [&](int id) {
    const int pm = id / part.tn;
    const int pn = id % part.tn;
    const index_t i0 = rows[pm];
    const index_t m = rows[pm + 1] - i0;
    const index_t j0 = cols[pn];
    const index_t n = cols[pn + 1] - j0;
    if (m == 0 || n == 0) return;

    // Shift operand views to the thread's sub-block of op(A)/op(B)/C.
    const T* a_sub = (mode.a == Trans::N) ? A + i0 * lda : A + i0;
    const T* b_sub = (mode.b == Trans::N) ? B + j0 : B + j0 * ldb;
    gemm_serial(mode, m, n, K, alpha, a_sub, lda, b_sub, ldb, beta,
                C + i0 * ldc + j0, ldc, serial_cfg);
  });
}

template void gemm_parallel<float>(Mode, index_t, index_t, index_t, float,
                                   const float*, index_t, const float*,
                                   index_t, float, float*, index_t,
                                   const Config&);
template void gemm_parallel<double>(Mode, index_t, index_t, index_t, double,
                                    const double*, index_t, const double*,
                                    index_t, double, double*, index_t,
                                    const Config&);

}  // namespace shalom
