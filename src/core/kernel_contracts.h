// Compile-time kernel contracts: the paper's analytic model (Section 5.2
// register tiling, Section 6 partitioning) as constexpr validators, plus
// the single source of truth for the constants those sections fix.
//
// Every micro-kernel registration site (dispatch.h tables, the kernel
// templates in microkernel.h, the WideTile specializations in widegemm.h)
// applies these via static_assert, so a tile or variant that violates the
// model fails to compile with a message naming the violated inequality
// instead of shipping a kernel that silently spills registers or leaves
// remainder tiles undispatchable.
//
// Inequalities enforced (32 ASIMD vector registers, j lanes per vector;
// j = 4 for FP32 / 2 for FP64 at 128 bits):
//
//   Register budget (Eq. 1):   mr + nr/j + mr*nr/j <= 31
//     mr*(nr/j) accumulators + nr/j B-vector loads + mr A broadcasts must
//     fit the file with one register reserved for prefetch (S 5.2.1).
//   CMR optimality (Eq. 2):    cmr(mr, nr) = 2*mr*nr / (mr + nr) maximal
//     over all tiles satisfying the budget (ties broken towards the
//     larger C tile, matching model::solve_tile).
//   Pack-stride divisibility:  nr % j == 0
//     packed B row slivers are read as whole vectors, so the sliver
//     stride must be a multiple of the lane count.
//   Edge coverage:             every remainder tile (m_eff, n_eff) in
//     1..mr x 1..nr must dispatch to a non-null kernel (S 5.4 / Fig. 6b).
//   Partition constraint (S 6, Eq. 4): Tn = ceil(sqrt(T*N/M)) moved to a
//     divisor of T, so T mod Tn == 0 always holds for the chosen grid.
#pragma once

#include "common/matrix.h"

namespace shalom::contracts {

// -------------------------------------------------------------------------
// Machine constants (ARMv8 ASIMD baseline the whole library is tiled for).
// model.cpp, dispatch.h and widegemm.h all derive from these; do not
// duplicate the literals at use sites.
// -------------------------------------------------------------------------

/// Architectural vector register count (ARMv8 ASIMD: v0..v31).
inline constexpr int kVectorRegisters = 32;

/// Registers the kernel schedule keeps out of the tile: one, reserved for
/// the software-prefetch address stream (paper Section 5.2.1).
inline constexpr int kReservedRegisters = 1;

/// Usable register budget for the (mr, nr) tile: 31 on the baseline.
inline constexpr int kRegisterBudget = kVectorRegisters - kReservedRegisters;

/// Upper bound on the kc blocking parameter. The L1-resident sliver
/// argument behind model::solve_blocking stops paying off past this depth
/// on every cache geometry the paper measures; autotune candidates are
/// clamped to the same bound so tuner and model explore one space.
inline constexpr index_t kMaxKc = 512;

/// Extra elements allocated past every packed buffer so overlapping
/// packed-A vector loads (kern_fused_pack_tn's two-store trick) may read
/// one full vector beyond the last column. Must cover the widest 128-bit
/// lane count (4 FP32 lanes); 8 leaves headroom for a 256-bit port.
inline constexpr index_t kPackSlackElems = 8;

// -------------------------------------------------------------------------
// Register-budget contract (Eq. 1).
// -------------------------------------------------------------------------

/// Registers a kernel with `mr` rows and `nrv` = nr/j column vectors
/// needs: mr*nrv accumulators + nrv B loads + mr A broadcasts.
constexpr int register_cost(int mr, int nrv) {
  return mr + nrv + mr * nrv;
}

constexpr bool fits_register_budget(int mr, int nrv) {
  return mr >= 1 && nrv >= 1 && register_cost(mr, nrv) <= kRegisterBudget;
}

// -------------------------------------------------------------------------
// CMR contract (Eq. 2).
// -------------------------------------------------------------------------

/// Computation-to-memory ratio of an (mr, nr) register tile.
constexpr double tile_cmr(int mr, int nr) {
  return 2.0 * mr * nr / static_cast<double>(mr + nr);
}

struct Tile {
  int mr = 0;
  int nr = 0;
};

/// The CMR-optimal register tile for a machine with `vector_registers`
/// registers of `lanes_per_vector` lanes - the same search (and the same
/// larger-C-tile tie-break) model::solve_tile memoizes at runtime; this
/// constexpr form is the definition both share.
constexpr Tile solve_tile(int vector_registers, int lanes_per_vector) {
  const int budget = vector_registers - kReservedRegisters;
  const int j = lanes_per_vector;
  Tile best;
  double best_cmr = -1.0;
  for (int mr = 1; mr <= budget; ++mr) {
    for (int nr = j; nr <= budget * j; nr += j) {
      if (register_cost(mr, nr / j) > budget) break;
      const double cmr = tile_cmr(mr, nr);
      if (cmr > best_cmr ||
          (cmr == best_cmr && mr * nr > best.mr * best.nr)) {
        best_cmr = cmr;
        best = {mr, nr};
      }
    }
  }
  return best;
}

/// True when (mr, nr) has maximal CMR among all tiles that fit the budget
/// of this machine: the monotonicity check applied to every registered
/// tile family.
constexpr bool cmr_optimal(int mr, int nr, int vector_registers,
                           int lanes_per_vector) {
  const Tile t = solve_tile(vector_registers, lanes_per_vector);
  return tile_cmr(mr, nr) >= tile_cmr(t.mr, t.nr);
}

// -------------------------------------------------------------------------
// Pack-stride contract.
// -------------------------------------------------------------------------

/// Packed B row slivers of stride nr are read as whole j-lane vectors.
constexpr bool divides_pack_stride(int nr, int lanes_per_vector) {
  return lanes_per_vector >= 1 && nr % lanes_per_vector == 0;
}

// -------------------------------------------------------------------------
// Edge-coverage contract (S 5.4).
// -------------------------------------------------------------------------

/// Checks that `has_kernel(m_eff, n_eff)` holds for every remainder tile
/// 1..max_mr x 1..max_nr. dispatch.h instantiates this against its
/// constexpr function-pointer tables.
template <typename Fn>
constexpr bool covers_all_edges(int max_mr, int max_nr, Fn has_kernel) {
  for (int m = 1; m <= max_mr; ++m)
    for (int n = 1; n <= max_nr; ++n)
      if (!has_kernel(m, n)) return false;
  return true;
}

// -------------------------------------------------------------------------
// Partition contract (S 6, Eq. 4).
// -------------------------------------------------------------------------

/// The thread grid must divide evenly: T mod Tn == 0 (and the derived
/// Tm = T / Tn is then integral by construction).
constexpr bool valid_partition(int t, int tn) {
  return t >= 1 && tn >= 1 && tn <= t && t % tn == 0;
}

// -------------------------------------------------------------------------
// The baseline instantiation caps, derived - not restated - from the
// model. dispatch.h's kernel family bounds alias these.
// -------------------------------------------------------------------------

/// Analytic FP32 tile at the baseline width: (7, 12).
inline constexpr Tile kTileF32 = solve_tile(kVectorRegisters, 4);
/// Analytic FP64 tile at the baseline width: (7, 6).
inline constexpr Tile kTileF64 = solve_tile(kVectorRegisters, 2);

/// Kernel-family caps: every statically instantiated variant has
/// mr <= kMaxMr and nr <= kMaxNrv vectors.
inline constexpr int kMaxMr = kTileF32.mr;
inline constexpr int kMaxNrv = kTileF32.nr / 4;

static_assert(kTileF32.mr == 7 && kTileF32.nr == 12,
              "paper S 5.2: the FP32 model tile on 32 registers must be "
              "7x12 (register budget mr + nr/j + mr*nr/j <= 31, j = 4)");
static_assert(kTileF64.mr == 7 && kTileF64.nr == 6,
              "paper S 5.2: the FP64 model tile on 32 registers must be "
              "7x6 (register budget mr + nr/j + mr*nr/j <= 31, j = 2)");
static_assert(kTileF64.mr == kMaxMr && kTileF64.nr == kMaxNrv * 2,
              "FP32 and FP64 tiles must share the (kMaxMr, kMaxNrv) "
              "instantiation caps");
static_assert(fits_register_budget(kMaxMr, kMaxNrv),
              "register budget violated: mr + nr/j + mr*nr/j <= 31");
static_assert(divides_pack_stride(kTileF32.nr, 4) &&
                  divides_pack_stride(kTileF64.nr, 2),
              "pack-stride divisibility violated: nr % j == 0");
static_assert(kPackSlackElems >= 4,
              "pack slack must cover one full 128-bit FP32 vector (4 "
              "lanes) of overlap past the buffer");

}  // namespace shalom::contracts
