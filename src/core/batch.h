// Batched small GEMM.
//
// The paper's evaluation methodology (Section 7.4) states how small GEMM
// is used in practice: "parallelism is achieved by running multiple GEMM
// kernels to process independent matrices". This module provides that
// interface: a batch of independent C_i = alpha_i * op(A_i).op(B_i) +
// beta_i * C_i products, executed serially or with the batch distributed
// over the fork-join pool (one sub-range of problems per thread - never
// splitting a single small product, which would only create edge cases).
#pragma once

#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace shalom {

/// One problem of a batch. Dimensions may differ per entry ("variable
/// batched" GEMM, the CP2K block pattern).
template <typename T>
struct BatchEntry {
  index_t m = 0, n = 0, k = 0;
  T alpha = T{1};
  const T* a = nullptr;
  index_t lda = 0;
  const T* b = nullptr;
  index_t ldb = 0;
  T beta = T{0};
  T* c = nullptr;
  index_t ldc = 0;
};

/// Executes every entry. cfg.threads parallelizes ACROSS entries (entries
/// are assumed independent: no two may alias the same C). Each individual
/// product runs single-threaded, as the paper prescribes for small GEMM.
template <typename T>
void gemm_batch(Mode mode, const std::vector<BatchEntry<T>>& batch,
                const Config& cfg = {});

}  // namespace shalom
