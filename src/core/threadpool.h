// Work-stealing thread pool with overlapping fork-join rounds.
//
// LibShalom parallelizes irregular-shaped GEMM with a static partition
// (paper Section 6): each round runs fn(0) .. fn(tasks-1) with exactly one
// C sub-block per task, and the partition solver - not the scheduler - is
// responsible for balance. Through PR 5 the pool enforced that shape with
// a single job slot guarded by a run mutex, which also meant independent
// callers (a server thread per client) serialized on round admission even
// when their GEMMs were tiny. This pool removes that serialization point:
//
//   - Every round is an independent heap-allocated record (claims, join
//     counter, refcount). Any number of rounds can be in flight at once;
//     max_overlapped_rounds_for_testing() observes the high-water mark.
//   - Each worker owns a Chase-Lev-style deque of task references. A
//     submitter publishes its round on a shared injection list; workers
//     that run dry distribute the round's tasks into their own deque
//     (running the first directly) and idle workers steal from the
//     bottom-most victims' deques top-end-first.
//   - The submitting thread always runs task 0 itself (fork-join
//     semantics) and, when no watchdog is armed, claim-scans the rest of
//     its round inline - a caller never blocks idle behind other rounds,
//     and rounds complete even on a pool with zero live workers.
//
// Exactly-once execution carries over from PR 5 unchanged: every task slot
// is a generation-tagged CAS claim and deque/injection entries are only
// *hints* - whoever wins the claim runs the task, everyone else backs off.
// A stale hint (task already executed, round already gone from the list)
// is harmless because entries hold a reference on the round record.
//
// Watchdog (robustness layer, common/guard.h): a round armed with
// watchdog_ms > 0 runs in diagnostic mode - the leader runs task 0 only,
// then waits in watchdog_ms slices watching the worker heartbeat sum
// (workers tick at task pickup and completion). No progress for a full
// period trips the watchdog: the pool is marked degraded (pool_run then
// narrows later rounds to serial), the trip is counted
// (RobustnessStats::watchdog_trips), and the leader claims and runs every
// still-unclaimed task inline so the round completes with correct
// results. A worker wedged BEFORE claiming a task is fully recovered; one
// wedged MID-task cannot be (its output may be half-written), so the
// leader keeps waiting on it. Diagnostic mode deliberately withholds the
// leader's inline help until the trip: eager help would complete the
// round before a wedge could ever be observed.
//
// Recovery (common/health.h): through PR 9 both degradations above were
// permanent - a watchdog trip pinned the pool serial forever, and a
// spawn-narrowed pool never tried to widen again. Both now heal through
// the kThreadPool health-registry slot. A trip or spawn-failure reports
// the component DEGRADED; after SHALOM_RECOVERY_MS of cool-down the
// recovery probe (try_recover(), driven actively by the health Prober's
// hook and passively by pool_run on the degraded path) re-spawns threads
// for allocated-but-threadless worker slots (through the
// `health.respawn` fault site) and re-arms the watchdog by clearing
// degraded() - if the wedge persists, the next diagnostic round trips
// again and the cool-down doubles (capped), so a genuinely wedged pool
// converges to near-zero probe traffic. A worker parked by a past wedge
// never returns (its deque has exactly one owner), but the healthy
// workers absorb its share through stealing. SHALOM_RECOVERY_MS=0
// restores the pre-recovery permanent-latch behaviour exactly.
//
// Concurrency contract: parallel_for may be called from any number of
// threads at once and the rounds genuinely overlap. Calling parallel_for
// from inside a pool task (nesting) remains forbidden. Compatibility
// escape hatch: SHALOM_SERIALIZE_ROUNDS=1 (or the programmatic override
// below) restores the PR 5 one-round-at-a-time admission - the baseline
// that bench/abl_engine measures the overlap win against.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace shalom {

class ThreadPool {
 public:
  /// Creates a pool usable for up to `max_threads`-way parallel_for calls
  /// (spawns max_threads - 1 workers, each with its own steal deque).
  /// Spawning is best-effort: if the OS refuses a worker thread
  /// (std::system_error / bad_alloc), the pool keeps the workers it got
  /// and max_threads() reports the reduced width - construction never
  /// throws for resource exhaustion, only for the max_threads < 1
  /// contract violation.
  explicit ThreadPool(int max_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) .. fn(tasks-1), blocking until every task has finished.
  /// `tasks` must lie in [1, max_threads()]: the paper's scheme assigns
  /// exactly one C sub-block per thread, so oversubscribing a round is a
  /// contract violation (shalom::invalid_argument), not a queueing
  /// request - callers that may face a degraded pool should go through
  /// pool_run() instead. Safe to call from several threads concurrently;
  /// the rounds overlap (unless SHALOM_SERIALIZE_ROUNDS is set). Must not
  /// be re-entered from inside a task.
  ///
  /// watchdog_ms arms the stall monitor for this round: > 0 is the
  /// no-heartbeat-progress period in milliseconds before the leader trips
  /// and recovers (see the header comment), 0 disables it (the leader
  /// then helps eagerly instead of waiting), and -1 (the default) uses
  /// guard::env_watchdog_ms() (SHALOM_WATCHDOG_MS).
  ///
  /// If fn throws on the leader thread, the first exception is rethrown
  /// after the round joins (tasks the workers run must not throw - GEMM
  /// drivers already wrap worker bodies in their own catch).
  void parallel_for(int tasks, const std::function<void(int)>& fn,
                    int watchdog_ms = -1);

  int max_threads() const {
    return max_threads_.load(std::memory_order_acquire);
  }

  /// True while a watchdog trip has this pool narrowed to serial rounds
  /// (pool_run's check). Sticky when recovery is disabled
  /// (SHALOM_RECOVERY_MS=0); otherwise try_recover() re-arms the
  /// watchdog after the component's cool-down so later rounds probe the
  /// pool at full width again.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }

  /// One recovery attempt on this pool: re-spawns worker threads for
  /// slots the constructor (or an earlier probe) left threadless - each
  /// spawn runs the `health.respawn` fault site first - and, when every
  /// respawn succeeded, clears degraded() so the watchdog re-arms.
  /// Returns false when the pool is shutting down or a respawn failed
  /// (the pool keeps the workers it got; degraded() is left latched).
  /// Slots whose Worker record itself failed to allocate at construction
  /// stay permanently absent - there is no deque to give a new thread.
  /// Thread-safe; called under the kThreadPool probation protocol by
  /// recover_global_for_health().
  bool try_recover() noexcept;

  /// The kThreadPool recovery hook (health::set_recover_hook): runs one
  /// full probation cycle - try_begin_probation, the `health.probe`
  /// fault site, try_recover() on the registry's newest pool (the one
  /// pool_run uses; retirees are superseded and not probed) - and
  /// reports the verdict back to the registry. Returns true when the
  /// component ended up HEALTHY. Also the passive on-path check pool_run
  /// makes before narrowing a round; cheap no-op while the component is
  /// healthy or its cool-down is pending.
  static bool recover_global_for_health() noexcept;

  /// High-water mark of rounds observed in flight simultaneously on this
  /// pool. >= 2 proves two callers' rounds genuinely overlapped.
  int max_overlapped_rounds_for_testing() const noexcept {
    return max_active_rounds_.load(std::memory_order_acquire);
  }

  /// Process-wide round-admission compatibility switch. When true,
  /// parallel_for serializes rounds on an internal run mutex exactly like
  /// the PR 5 pool (and the leader never helps beyond task 0 outside a
  /// watchdog trip). Reads SHALOM_SERIALIZE_ROUNDS unless overridden;
  /// the setters exist for A/B benching and tests.
  static bool serialize_rounds() noexcept;
  static void set_serialize_rounds_for_testing(bool on) noexcept;
  static void clear_serialize_rounds_override() noexcept;

  /// Process-wide pool, grown on demand to at least `threads`. Growing
  /// retires the smaller pool instead of destroying it, so a reference
  /// returned earlier (possibly mid-parallel_for on another thread) stays
  /// valid - until the retired list outgrows its small cap, at which
  /// point quiesced unpinned retirees are reaped. Callers that hold the
  /// reference across other global()/Handle activity must pin it with a
  /// Handle; transient callers (use, then drop before anything else can
  /// grow the registry) may use the bare reference. Best-effort like the
  /// constructor: under spawn failure the returned pool may be narrower
  /// than `threads` (check max_threads()).
  static ThreadPool& global(int threads);

  /// Pinned reference to the global pool sized for `threads`. While any
  /// Handle points at a pool, the registry's reaper will not destroy it;
  /// constructing a Handle also runs the reap pass that bounds the
  /// retired-pool list. This is what pool_run uses.
  class Handle {
   public:
    explicit Handle(int threads);
    ~Handle();

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ThreadPool& pool() const noexcept { return *pool_; }

   private:
    ThreadPool* pool_;
  };

  /// Number of retired (outgrown) pools currently kept alive in the
  /// global registry. Test-only observability for the reaping bound.
  static int retired_pool_count_for_testing();

 private:
  struct Round;     // one in-flight parallel_for (threadpool.cpp)
  struct TaskSlot;  // {round, task index} - what deques carry
  class Deque;      // Chase-Lev-style per-worker deque
  struct Worker;    // per-worker state (the deque, cache-line padded)

  void worker_loop(int worker_id);
  void run_round(int tasks, const std::function<void(int)>& fn,
                 int watchdog_ms, bool leader_helps);
  /// Claim-then-run for the submitting thread; first exception captured.
  void run_leader_task(Round& r, int task, std::exception_ptr& caught);
  /// Diagnostic-mode join: watchdog slices, trip -> degrade + recover.
  void watchdog_wait(Round& r, int watchdog_ms, std::exception_ptr& caught);
  /// Steals one task hint from some other worker's deque.
  TaskSlot* steal_task(int thief_id) noexcept;
  /// Pulls undistributed tasks of the oldest listed round into worker
  /// `worker_id`'s deque; returns one hint to run immediately (or null).
  TaskSlot* claim_from_injection(int worker_id);
  /// Claim -> run -> join-count for one task hint; drops the hint's
  /// round reference. Worker-side only (task fns must not throw there).
  void execute_task(TaskSlot* slot);

  /// Sum of all worker heartbeat epochs (relaxed snapshot). Progress
  /// between two snapshots means some worker picked up or finished work.
  std::uint64_t heartbeat_sum() const noexcept;

  /// Current usable width. Narrowed by the ctor under spawn failure,
  /// re-widened by try_recover() when a respawn succeeds - hence atomic
  /// (readers race recovery probes; acquire pairs with the release store
  /// that publishes a freshly spawned worker).
  std::atomic<int> max_threads_;
  std::vector<std::thread> threads_;
  /// Per-worker deques, indexed by worker id 1..max_threads_-1 (slot 0 is
  /// the submitters' side and has no deque). Entries past a failed spawn
  /// stay null.
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Lock-free state (outside the capability annotations; explicit
  /// memory orders per the shalom_lint discipline). heartbeats_ is sized
  /// for the requested width before the spawn loop can shrink
  /// max_threads_.
  std::vector<std::atomic<std::uint64_t>> heartbeats_;
  std::atomic<bool> degraded_{false};
  /// Handles currently pinning this pool (registry reap guard).
  std::atomic<int> pins_{0};
  /// Round generation source; claims are tagged with it (never 0).
  std::atomic<std::uint64_t> round_gen_{0};
  /// Rounds currently in flight, and the high-water mark thereof.
  std::atomic<int> active_rounds_{0};
  std::atomic<int> max_active_rounds_{0};

  /// Held for the whole round ONLY in serialize_rounds() compatibility
  /// mode; untouched on the overlapping path. Ordered strictly before
  /// mu_ (never acquired under mu_).
  Mutex run_mu_;
  /// Guards the injection list and worker parking. Never held while
  /// running a task.
  Mutex mu_;
  std::condition_variable_any start_cv_;
  /// Rounds with possibly-undistributed tasks, oldest first. Entries own
  /// one reference on their round; the submitter (at join) or a
  /// distributing worker (on exhaustion) unlinks and releases.
  std::vector<Round*> injection_ SHALOM_GUARDED_BY(mu_);
  /// Bumped on every publication that parked workers should look at.
  std::uint64_t submit_seq_ SHALOM_GUARDED_BY(mu_) = 0;
  bool shutdown_ SHALOM_GUARDED_BY(mu_) = false;

  /// Erases quiesced (unpinned, no round in flight) retired pools while
  /// the retired count exceeds the registry cap. Caller holds the
  /// registry mutex.
  static void reap_retired_locked(
      std::vector<std::unique_ptr<ThreadPool>>& pools);
};

/// Degradation-tolerant fork-join: runs fn(0) .. fn(tasks-1) on the global
/// pool sized for `tasks`, chunking tasks over fewer workers (down to a
/// serial loop) when the pool could not grow that wide or has been marked
/// degraded by its watchdog. This is the entry point every GEMM driver
/// uses - parallel_for's strict contract is for callers that own an
/// exactly-sized pool. Records threads_degraded telemetry whenever a
/// round runs below its requested width. watchdog_ms follows
/// parallel_for's convention (-1 = SHALOM_WATCHDOG_MS default).
void pool_run(int tasks, const std::function<void(int)>& fn,
              int watchdog_ms = -1);

}  // namespace shalom
