// Fork-join thread pool (paper Section 6).
//
// LibShalom parallelizes irregular-shaped GEMM "using the fork-join
// operating system primitives" with a static partition. The pool keeps T-1
// persistent workers parked on a condition variable; parallel_for wakes
// them, runs task 0 on the calling thread, and joins at a generation
// barrier. There is no work stealing by design - the partition solver is
// responsible for balance, and the benches measure exactly that.
//
// Watchdog (robustness layer, common/guard.h): each round can be armed
// with a stall monitor. Workers publish heartbeat epochs at round pickup
// and task completion; tasks are claimed through per-slot generation-
// tagged CAS so exactly one executor runs each task. When the round
// leader sees no heartbeat progress for watchdog_ms, it trips: the pool
// is marked degraded (pool_run then narrows it to serial), the trip is
// counted (RobustnessStats::watchdog_trips), and the leader claims and
// runs every still-unclaimed task inline so the round completes with
// correct results. A worker wedged BEFORE claiming its task is fully
// recovered this way; a worker wedged in the MIDDLE of a task cannot be
// (its claimed task may hold half-written output), so the leader keeps
// waiting on it - the trip is still counted and the pool still degrades.
//
// Concurrency contract: parallel_for may be called from several threads at
// once - rounds serialize on an internal run mutex, so concurrent callers
// queue rather than corrupt the single job slot. Calling parallel_for from
// inside a pool task (nesting) is forbidden and would deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace shalom {

class ThreadPool {
 public:
  /// Creates a pool usable for up to `max_threads`-way parallel_for calls
  /// (spawns max_threads - 1 workers). Spawning is best-effort: if the OS
  /// refuses a worker thread (std::system_error / bad_alloc), the pool
  /// keeps the workers it got and max_threads() reports the reduced
  /// width - construction never throws for resource exhaustion, only for
  /// the max_threads < 1 contract violation.
  explicit ThreadPool(int max_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) .. fn(tasks-1) across the pool, blocking until every task
  /// has finished. `tasks` must lie in [1, max_threads()]: the paper's
  /// scheme assigns exactly one C sub-block per thread, so oversubscribing
  /// a round is a contract violation (shalom::invalid_argument), not a
  /// queueing request - callers that may face a degraded pool should go
  /// through pool_run() instead. Safe to call from several threads
  /// concurrently (rounds serialize); must not be re-entered from inside a
  /// task.
  ///
  /// watchdog_ms arms the stall monitor for this round: > 0 is the
  /// no-heartbeat-progress period in milliseconds before the leader trips
  /// and recovers (see the header comment), 0 disables it, and -1 (the
  /// default) uses guard::env_watchdog_ms() (SHALOM_WATCHDOG_MS).
  void parallel_for(int tasks, const std::function<void(int)>& fn,
                    int watchdog_ms = -1);

  int max_threads() const { return max_threads_; }

  /// True once a watchdog trip proved at least one worker of this pool
  /// wedged. Sticky for the pool's lifetime: a wedged worker never comes
  /// back, so pool_run narrows every later round on this pool to serial.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Process-wide pool, grown on demand to at least `threads`. Growing
  /// retires the smaller pool instead of destroying it, so a reference
  /// returned earlier (possibly mid-parallel_for on another thread) stays
  /// valid - until the retired list outgrows its small cap, at which
  /// point quiesced unpinned retirees are reaped. Callers that hold the
  /// reference across other global()/Handle activity must pin it with a
  /// Handle; transient callers (use, then drop before anything else can
  /// grow the registry) may use the bare reference. Best-effort like the
  /// constructor: under spawn failure the returned pool may be narrower
  /// than `threads` (check max_threads()).
  static ThreadPool& global(int threads);

  /// Pinned reference to the global pool sized for `threads`. While any
  /// Handle points at a pool, the registry's reaper will not destroy it;
  /// constructing a Handle also runs the reap pass that bounds the
  /// retired-pool list. This is what pool_run uses.
  class Handle {
   public:
    explicit Handle(int threads);
    ~Handle();

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ThreadPool& pool() const noexcept { return *pool_; }

   private:
    ThreadPool* pool_;
  };

  /// Number of retired (outgrown) pools currently kept alive in the
  /// global registry. Test-only observability for the reaping bound.
  static int retired_pool_count_for_testing();

 private:
  void worker_loop(int worker_id);

  /// Claims task slot `task` for round `gen`. Slots carry the generation
  /// that claimed them and only move forward, which makes the claim
  /// ABA-safe against stragglers from completed rounds: a stale worker
  /// sees a slot value >= its own round and backs off. Returns true for
  /// exactly one caller per (task, round).
  bool try_claim(int task, std::uint64_t gen) noexcept;

  /// Sum of all worker heartbeat epochs (relaxed snapshot). Progress
  /// between two snapshots means some worker picked up or finished work.
  std::uint64_t heartbeat_sum() const noexcept;

  int max_threads_;  // may be reduced by the ctor under spawn failure
  std::vector<std::thread> workers_;

  /// Lock-free round state (outside the capability annotations; explicit
  /// memory orders per the shalom_lint discipline). Sized for the
  /// requested width before the spawn loop can shrink max_threads_.
  std::vector<std::atomic<std::uint64_t>> claims_;
  std::vector<std::atomic<std::uint64_t>> heartbeats_;
  std::atomic<bool> degraded_{false};
  /// Handles currently pinning this pool (registry reap guard).
  std::atomic<int> pins_{0};

  /// Held for the whole fork-join round: admits one parallel_for at a
  /// time, making concurrent plan executions / creations safe. Ordered
  /// strictly before mu_ (run_mu_ is never acquired under mu_).
  Mutex run_mu_;
  /// Guards the job slot and the generation barrier below. The condition
  /// variables are condition_variable_any so they wait directly on the
  /// annotated MutexLock.
  Mutex mu_;
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  const std::function<void(int)>* job_ SHALOM_GUARDED_BY(mu_) = nullptr;
  int job_tasks_ SHALOM_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ SHALOM_GUARDED_BY(mu_) = 0;
  int outstanding_ SHALOM_GUARDED_BY(mu_) = 0;
  bool shutdown_ SHALOM_GUARDED_BY(mu_) = false;

  /// Erases quiesced (unpinned, no round in flight) retired pools while
  /// the retired count exceeds the registry cap. Caller holds the
  /// registry mutex.
  static void reap_retired_locked(
      std::vector<std::unique_ptr<ThreadPool>>& pools);
};

/// Degradation-tolerant fork-join: runs fn(0) .. fn(tasks-1) on the global
/// pool sized for `tasks`, chunking tasks over fewer workers (down to a
/// serial loop) when the pool could not grow that wide or has been marked
/// degraded by its watchdog. This is the entry point every GEMM driver
/// uses - parallel_for's strict contract is for callers that own an
/// exactly-sized pool. Records threads_degraded telemetry whenever a
/// round runs below its requested width. watchdog_ms follows
/// parallel_for's convention (-1 = SHALOM_WATCHDOG_MS default).
void pool_run(int tasks, const std::function<void(int)>& fn,
              int watchdog_ms = -1);

}  // namespace shalom
