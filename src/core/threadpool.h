// Fork-join thread pool (paper Section 6).
//
// LibShalom parallelizes irregular-shaped GEMM "using the fork-join
// operating system primitives" with a static partition. The pool keeps T-1
// persistent workers parked on a condition variable; parallel_for wakes
// them, runs task 0 on the calling thread, and joins at a generation
// barrier. There is no work stealing by design - the partition solver is
// responsible for balance, and the benches measure exactly that.
//
// Concurrency contract: parallel_for may be called from several threads at
// once - rounds serialize on an internal run mutex, so concurrent callers
// queue rather than corrupt the single job slot. Calling parallel_for from
// inside a pool task (nesting) is forbidden and would deadlock.
#pragma once

#include <condition_variable>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace shalom {

class ThreadPool {
 public:
  /// Creates a pool usable for up to `max_threads`-way parallel_for calls
  /// (spawns max_threads - 1 workers). Spawning is best-effort: if the OS
  /// refuses a worker thread (std::system_error / bad_alloc), the pool
  /// keeps the workers it got and max_threads() reports the reduced
  /// width - construction never throws for resource exhaustion, only for
  /// the max_threads < 1 contract violation.
  explicit ThreadPool(int max_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) .. fn(tasks-1) across the pool, blocking until every task
  /// has finished. `tasks` must lie in [1, max_threads()]: the paper's
  /// scheme assigns exactly one C sub-block per thread, so oversubscribing
  /// a round is a contract violation (shalom::invalid_argument), not a
  /// queueing request - callers that may face a degraded pool should go
  /// through pool_run() instead. Safe to call from several threads
  /// concurrently (rounds serialize); must not be re-entered from inside a
  /// task.
  void parallel_for(int tasks, const std::function<void(int)>& fn);

  int max_threads() const { return max_threads_; }

  /// Process-wide pool, grown on demand to at least `threads`. Growing
  /// retires the smaller pool instead of destroying it, so a reference
  /// returned earlier (possibly mid-parallel_for on another thread) stays
  /// valid for the lifetime of the process. Best-effort like the
  /// constructor: under spawn failure the returned pool may be narrower
  /// than `threads` (check max_threads()).
  static ThreadPool& global(int threads);

 private:
  void worker_loop(int worker_id);

  int max_threads_;  // may be reduced by the ctor under spawn failure
  std::vector<std::thread> workers_;

  /// Held for the whole fork-join round: admits one parallel_for at a
  /// time, making concurrent plan executions / creations safe. Ordered
  /// strictly before mu_ (run_mu_ is never acquired under mu_).
  Mutex run_mu_;
  /// Guards the job slot and the generation barrier below. The condition
  /// variables are condition_variable_any so they wait directly on the
  /// annotated MutexLock.
  Mutex mu_;
  std::condition_variable_any start_cv_;
  std::condition_variable_any done_cv_;
  const std::function<void(int)>* job_ SHALOM_GUARDED_BY(mu_) = nullptr;
  int job_tasks_ SHALOM_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ SHALOM_GUARDED_BY(mu_) = 0;
  int outstanding_ SHALOM_GUARDED_BY(mu_) = 0;
  bool shutdown_ SHALOM_GUARDED_BY(mu_) = false;
};

/// Degradation-tolerant fork-join: runs fn(0) .. fn(tasks-1) on the global
/// pool sized for `tasks`, chunking tasks over fewer workers (down to a
/// serial loop) when the pool could not grow that wide. This is the entry
/// point every GEMM driver uses - parallel_for's strict contract is for
/// callers that own an exactly-sized pool. Records threads_degraded
/// telemetry whenever a round runs below its requested width.
void pool_run(int tasks, const std::function<void(int)>& fn);

}  // namespace shalom
