// Parallel GEMM driver (paper Section 6).
//
// The C matrix is divided into a Tm x Tn grid of sub-blocks, one thread
// each, with (Tm, Tn) chosen by the CMR-maximizing partition solver
// (model::solve_partition, Eq. 3/4). Every thread then runs the serial
// driver on its sub-problem, which parallelizes exactly the two outer
// loops (L1/L3 of Fig. 1) as the paper prescribes, keeping threads free of
// synchronization between fork and join.
#pragma once

#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace shalom {

/// Splits [0, total) into `parts` contiguous chunks whose boundaries are
/// multiples of `align` (except the final boundary). Returns parts + 1
/// offsets. Chunks are balanced to within one tile; none is negative but
/// trailing chunks may be empty when total < parts * align.
std::vector<index_t> split_range(index_t total, int parts, int align);

/// Multi-threaded GEMM; honours cfg.threads (0 = all host cores).
/// Falls back to gemm_serial when one thread suffices.
template <typename T>
void gemm_parallel(Mode mode, index_t M, index_t N, index_t K, T alpha,
                   const T* A, index_t lda, const T* B, index_t ldb, T beta,
                   T* C, index_t ldc, const Config& cfg);

}  // namespace shalom
