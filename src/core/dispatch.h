// Runtime dispatch from (m_eff, n_eff) edge sizes to the statically
// instantiated micro-kernel variants.
//
// The register tile is (mr, nr) = (7, 12) FP32 / (7, 6) FP64 on 32-register
// machines, but every GEMM has remainder tiles: m_eff in 1..mr and n_eff in
// 1..nr. Each (m_eff, full-vectors, partial-lanes) combination maps to its
// own fully unrolled kernel instantiation; this header builds the constexpr
// function-pointer tables that route a runtime tile to the right one.
#pragma once

#include <type_traits>

#include "common/selfcheck.h"
#include "core/kernel_contracts.h"
#include "core/microkernel.h"

namespace shalom::ukr {

/// Upper bounds of the instantiated kernel family: the analytic tile the
/// contract header derives for every 32-register/128-bit machine (mr=7,
/// nr <= 3 vectors); the driver clamps the model's tile to these caps.
inline constexpr int kMaxMr = contracts::kMaxMr;
inline constexpr int kMaxNrv = contracts::kMaxNrv;

static_assert(contracts::cmr_optimal(kMaxMr, kMaxNrv * 4,
                                     contracts::kVectorRegisters, 4),
              "CMR optimality violated: the instantiated FP32 family cap "
              "must match the cmr(mr,nr) = 2*mr*nr/(mr+nr) maximum over "
              "all budget-feasible tiles (paper Eq. 2)");
static_assert(contracts::cmr_optimal(kMaxMr, kMaxNrv * 2,
                                     contracts::kVectorRegisters, 2),
              "CMR optimality violated: the instantiated FP64 family cap "
              "must match the cmr(mr,nr) = 2*mr*nr/(mr+nr) maximum over "
              "all budget-feasible tiles (paper Eq. 2)");

template <typename T>
using MainKernelFn = void (*)(index_t kc, const T* a, index_t lda,
                              const T* b, index_t ldb, T* c, index_t ldc,
                              T alpha, T beta, int ntail);

/// Table of main-kernel variants: [mr-1][full_vectors][has_tail].
/// Entries that cannot occur (nrv == 0 with no tail; nrv == MaxNrv with a
/// tail, which would exceed nr) are null. MaxMr/MaxNrv are parameters so
/// the baseline libraries can instantiate their own tile families (e.g.
/// BLASFEO's 8x8) without touching LibShalom's.
template <typename T, AAccess AA, BAccess BA, int MaxMr = kMaxMr,
          int MaxNrv = kMaxNrv>
struct MainTable {
  MainKernelFn<T> fn[MaxMr][MaxNrv + 1][2] = {};

  constexpr MainTable() {
    fill_mr(std::make_integer_sequence<int, MaxMr>{});
  }

  template <int... MrIdx>
  constexpr void fill_mr(std::integer_sequence<int, MrIdx...>) {
    (fill_nrv<MrIdx + 1>(std::make_integer_sequence<int, MaxNrv + 1>{}),
     ...);
  }

  template <int Mr, int... Nrv>
  constexpr void fill_nrv(std::integer_sequence<int, Nrv...>) {
    ((fn[Mr - 1][Nrv][0] =
          (Nrv > 0) ? &kern_main<T, Mr, (Nrv > 0 ? Nrv : 1), false, AA, BA>
                    : nullptr),
     ...);
    ((fn[Mr - 1][Nrv][1] =
          (Nrv < MaxNrv)
              ? &kern_main<T, Mr, (Nrv < MaxNrv ? Nrv : 0), true, AA, BA>
              : nullptr),
     ...);
  }
};

template <typename T, AAccess AA, BAccess BA, int MaxMr = kMaxMr,
          int MaxNrv = kMaxNrv>
inline constexpr MainTable<T, AA, BA, MaxMr, MaxNrv> kMainTable{};

/// Edge-coverage contract: every remainder tile (m_eff, n_eff) in
/// 1..MaxMr x 1..MaxNrv*lanes must route to a non-null variant.
template <typename T, AAccess AA, BAccess BA, int MaxMr = kMaxMr,
          int MaxNrv = kMaxNrv>
constexpr bool main_table_covers_edges() {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  return contracts::covers_all_edges(MaxMr, MaxNrv * L, [](int m, int n) {
    constexpr int Lanes = simd::vec_of_t<T>::kLanes;
    return kMainTable<T, AA, BA, MaxMr, MaxNrv>
               .fn[m - 1][n / Lanes][(n % Lanes) != 0] != nullptr;
  });
}

/// Registration-site checks for every access pair the drivers dispatch
/// through. A table gap would otherwise only surface as a runtime
/// SHALOM_ASSERT on the first GEMM that hits the missing remainder.
#define SHALOM_CHECK_MAIN_TABLE(T)                                        \
  static_assert(                                                          \
      main_table_covers_edges<T, AAccess::kDirect, BAccess::kDirect>() && \
          main_table_covers_edges<T, AAccess::kDirect,                    \
                                  BAccess::kPacked>() &&                  \
          main_table_covers_edges<T, AAccess::kPacked,                    \
                                  BAccess::kDirect>() &&                  \
          main_table_covers_edges<T, AAccess::kPacked,                    \
                                  BAccess::kPacked>() &&                  \
          main_table_covers_edges<T, AAccess::kDirectTrans,               \
                                  BAccess::kDirect>() &&                  \
          main_table_covers_edges<T, AAccess::kDirectTrans,               \
                                  BAccess::kPacked>(),                    \
      "edge-tile coverage violated: every remainder tile (m_eff, n_eff) " \
      "in 1..mr x 1..nr must dispatch to a non-null " #T                  \
      " kernel variant (paper S 5.4)")

SHALOM_CHECK_MAIN_TABLE(float);
SHALOM_CHECK_MAIN_TABLE(double);
#undef SHALOM_CHECK_MAIN_TABLE

/// Runs one C tile of size m_eff x n_eff (1 <= m_eff <= MaxMr,
/// 1 <= n_eff <= MaxNrv * lanes) against the selected kernel variant.
template <typename T, AAccess AA, BAccess BA, int MaxMr = kMaxMr,
          int MaxNrv = kMaxNrv>
SHALOM_INLINE void run_main_tile(int m_eff, int n_eff, index_t kc,
                                 const T* a, index_t lda, const T* b,
                                 index_t ldb, T* c, index_t ldc, T alpha,
                                 T beta) {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  const int nrv = n_eff / L;
  const int ntail = n_eff % L;
  const auto fn =
      kMainTable<T, AA, BA, MaxMr, MaxNrv>.fn[m_eff - 1][nrv][ntail > 0];
  SHALOM_ASSERT(fn != nullptr);
  fn(kc, a, lda, b, ldb, c, ldc, alpha, beta, ntail);
}

// ---------------------------------------------------------------------------
// Fused NN pack kernel dispatch (first stripe is always a full mr rows;
// the sliver width may be an edge).
// ---------------------------------------------------------------------------

template <typename T>
using FusedNnFn = void (*)(index_t kc, const T* a, index_t lda, const T* b,
                           index_t ldb, T* bc, const T* b_next,
                           index_t ldb_next, T* bc_next, T* c, index_t ldc,
                           T alpha, T beta, int ntail);

/// The fused kernels always pack the canonical full sliver width.
template <typename T>
inline constexpr int kNrFull = kMaxNrv * simd::vec_of_t<T>::kLanes;

template <typename T, bool PackCur, bool Ahead>
struct FusedNnTable {
  FusedNnFn<T> fn[kMaxNrv + 1][2] = {};

  constexpr FusedNnTable() {
    fill(std::make_integer_sequence<int, kMaxNrv + 1>{});
  }

  template <int... Nrv>
  constexpr void fill(std::integer_sequence<int, Nrv...>) {
    ((fn[Nrv][0] = (Nrv > 0) ? &kern_fused_pack_nn<T, kMaxMr,
                                                   (Nrv > 0 ? Nrv : 1),
                                                   false, PackCur, Ahead,
                                                   kNrFull<T>>
                             : nullptr),
     ...);
    ((fn[Nrv][1] =
          (Nrv < kMaxNrv)
              ? &kern_fused_pack_nn<T, kMaxMr, (Nrv < kMaxNrv ? Nrv : 0),
                                    true, PackCur, Ahead, kNrFull<T>>
              : nullptr),
     ...);
  }
};

template <typename T, bool PackCur, bool Ahead>
inline constexpr FusedNnTable<T, PackCur, Ahead> kFusedNnTable{};

/// pack_cur = false means `b` already points at the packed current sliver
/// (steady state of the t = 1 pack-ahead pipeline). ahead = true streams
/// the next sliver (which must be full width) into bc_next.
template <typename T>
SHALOM_INLINE void run_fused_pack_nn(bool pack_cur, bool ahead, int n_eff,
                                     index_t kc, const T* a, index_t lda,
                                     const T* b, index_t ldb, T* bc,
                                     const T* b_next, index_t ldb_next,
                                     T* bc_next, T* c, index_t ldc, T alpha,
                                     T beta) {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  const int nrv = n_eff / L;
  const int ntail = n_eff % L;
  FusedNnFn<T> fn;
  if (pack_cur) {
    fn = ahead ? kFusedNnTable<T, true, true>.fn[nrv][ntail > 0]
               : kFusedNnTable<T, true, false>.fn[nrv][ntail > 0];
  } else {
    fn = ahead ? kFusedNnTable<T, false, true>.fn[nrv][ntail > 0]
               : kFusedNnTable<T, false, false>.fn[nrv][ntail > 0];
  }
  SHALOM_ASSERT(fn != nullptr);
  fn(kc, a, lda, b, ldb, bc, b_next, ldb_next, bc_next, c, ldc, alpha, beta,
     ntail);
}

// ---------------------------------------------------------------------------
// Fused TN/TT pack-A kernel dispatch.
// ---------------------------------------------------------------------------

template <typename T>
using FusedTnFn = void (*)(index_t kc, const T* a, index_t lda, T* ac,
                           const T* b, index_t ldb, T* c, index_t ldc,
                           T alpha, T beta, int ntail);

template <typename T, BAccess BA>
struct FusedTnTable {
  FusedTnFn<T> fn[kMaxNrv + 1][2] = {};

  constexpr FusedTnTable() {
    fill(std::make_integer_sequence<int, kMaxNrv + 1>{});
  }

  template <int... Nrv>
  constexpr void fill(std::integer_sequence<int, Nrv...>) {
    ((fn[Nrv][0] = (Nrv > 0) ? &kern_fused_pack_tn<T, kMaxMr,
                                                   (Nrv > 0 ? Nrv : 1),
                                                   false, BA>
                             : nullptr),
     ...);
    ((fn[Nrv][1] =
          (Nrv < kMaxNrv)
              ? &kern_fused_pack_tn<T, kMaxMr, (Nrv < kMaxNrv ? Nrv : 0),
                                    true, BA>
              : nullptr),
     ...);
  }
};

template <typename T, BAccess BA>
inline constexpr FusedTnTable<T, BA> kFusedTnTable{};

/// Computes one full-height (kMaxMr) stripe against transposed-in-place A
/// while packing the Ac column sliver. b_packed selects zero-padded
/// packed-B reads vs in-place reads.
template <typename T>
SHALOM_INLINE void run_fused_pack_tn(bool b_packed, int n_eff, index_t kc,
                                     const T* a, index_t lda, T* ac,
                                     const T* b, index_t ldb, T* c,
                                     index_t ldc, T alpha, T beta) {
  constexpr int L = simd::vec_of_t<T>::kLanes;
  const int nrv = n_eff / L;
  const int ntail = n_eff % L;
  const auto fn =
      b_packed ? kFusedTnTable<T, BAccess::kPacked>.fn[nrv][ntail > 0]
               : kFusedTnTable<T, BAccess::kDirect>.fn[nrv][ntail > 0];
  SHALOM_ASSERT(fn != nullptr);
  fn(kc, a, lda, ac, b, ldb, c, ldc, alpha, beta, ntail);
}

// ---------------------------------------------------------------------------
// Fused NT pack kernel dispatch (JB = 1..3 column groups).
// ---------------------------------------------------------------------------

template <typename T>
using FusedNtFn = void (*)(index_t kc, const T* a, index_t lda, const T* b,
                           index_t ldb, T* bc, int jofs, int nr_full,
                           bool store_full, T* c, index_t ldc, T alpha,
                           T beta);

/// store_full: a later column group of this sliver exists, so the scatter
/// may write one transposed lane past its own columns (see the kernel).
template <typename T>
SHALOM_INLINE void run_fused_pack_nt(int jb, index_t kc, const T* a,
                                     index_t lda, const T* b, index_t ldb,
                                     T* bc, int jofs, int nr_full,
                                     bool store_full, T* c, index_t ldc,
                                     T alpha, T beta) {
  static constexpr FusedNtFn<T> table[3] = {
      &kern_fused_pack_nt<T, kMaxMr, 1>,
      &kern_fused_pack_nt<T, kMaxMr, 2>,
      &kern_fused_pack_nt<T, kMaxMr, 3>,
  };
  SHALOM_ASSERT(jb >= 1 && jb <= 3);
  table[jb - 1](kc, a, lda, b, ldb, bc, jofs, nr_full, store_full, c, ldc,
                alpha, beta);
}

// ---------------------------------------------------------------------------
// Selfcheck variant mapping: which quarantine unit covers each statically
// instantiated family. Plan building and the degraded executors consult
// selfcheck::variant_ok() with these ids before routing a tile to a
// vectorized kernel (common/selfcheck.h).
// ---------------------------------------------------------------------------

/// Variant id of the full-tile kern_main family for one access pair. The
/// trans-A probe covers both B accesses under a single id (the load path
/// difference is B-side only).
template <typename T>
constexpr selfcheck::Variant main_variant(AAccess aa, BAccess ba) {
  constexpr int base = std::is_same_v<T, double> ? 5 : 0;
  int off;
  if (aa == AAccess::kDirectTrans)
    off = 4;
  else if (aa == AAccess::kDirect)
    off = (ba == BAccess::kDirect) ? 0 : 1;
  else
    off = (ba == BAccess::kDirect) ? 2 : 3;
  return static_cast<selfcheck::Variant>(base + off);
}

/// Variant id of the remainder-tile (edge) instantiations of the same
/// family.
template <typename T>
constexpr selfcheck::Variant edge_variant(AAccess aa, BAccess ba) {
  return static_cast<selfcheck::Variant>(
      static_cast<int>(main_variant<T>(aa, ba)) +
      selfcheck::kMainFamilyCount);
}

template <typename T>
constexpr selfcheck::Variant fused_nn_variant() {
  return std::is_same_v<T, double> ? selfcheck::Variant::kFusedNnF64
                                   : selfcheck::Variant::kFusedNnF32;
}

template <typename T>
constexpr selfcheck::Variant fused_nt_variant() {
  return std::is_same_v<T, double> ? selfcheck::Variant::kFusedNtF64
                                   : selfcheck::Variant::kFusedNtF32;
}

template <typename T>
constexpr selfcheck::Variant fused_tn_variant() {
  return std::is_same_v<T, double> ? selfcheck::Variant::kFusedTnF64
                                   : selfcheck::Variant::kFusedTnF32;
}

}  // namespace shalom::ukr
