#include "core/pack.h"

#include "common/error.h"
#include "core/kernel_contracts.h"

namespace shalom::pack {

template <typename T>
void pack_b_n(const T* b, index_t ldb, index_t kc, index_t n, int nr, T* bc) {
  SHALOM_ASSERT(nr >= 1 && kc >= 0);
  for (index_t j0 = 0; j0 < n; j0 += nr) {
    const index_t width = std::min<index_t>(nr, n - j0);
    T* sliver = bc + (j0 / nr) * b_sliver_elems(kc, nr);
    for (index_t k = 0; k < kc; ++k) {
      const T* src = b + k * ldb + j0;
      T* dst = sliver + k * nr;
      index_t j = 0;
      for (; j < width; ++j) dst[j] = src[j];
      for (; j < nr; ++j) dst[j] = T{};
    }
  }
}

template <typename T>
void pack_b_t(const T* b, index_t ldb, index_t kc, index_t n, int nr, T* bc) {
  SHALOM_ASSERT(nr >= 1 && kc >= 0);
  for (index_t j0 = 0; j0 < n; j0 += nr) {
    const index_t width = std::min<index_t>(nr, n - j0);
    T* sliver = bc + (j0 / nr) * b_sliver_elems(kc, nr);
    // op(B)(k, j0+j) = b[(j0+j)*ldb + k]: walk each source row once so the
    // reads stay streaming; writes scatter with stride nr (Fig. 5 layout).
    for (index_t j = 0; j < width; ++j) {
      const T* src = b + (j0 + j) * ldb;
      for (index_t k = 0; k < kc; ++k) sliver[k * nr + j] = src[k];
    }
    for (index_t j = width; j < nr; ++j)
      for (index_t k = 0; k < kc; ++k) sliver[k * nr + j] = T{};
  }
}

template <typename T>
void pack_a_n(const T* a, index_t lda, index_t m, index_t kc, int mr, T* ac) {
  SHALOM_ASSERT(mr >= 1 && kc >= 0);
  for (index_t i0 = 0; i0 < m; i0 += mr) {
    const index_t height = std::min<index_t>(mr, m - i0);
    T* sliver = ac + (i0 / mr) * a_sliver_elems(kc, mr);
    for (index_t k = 0; k < kc; ++k) {
      T* dst = sliver + k * mr;
      index_t i = 0;
      for (; i < height; ++i) dst[i] = a[(i0 + i) * lda + k];
      for (; i < mr; ++i) dst[i] = T{};
    }
  }
}

template <typename T>
void pack_a_t(const T* a, index_t lda, index_t m, index_t kc, int mr, T* ac) {
  SHALOM_ASSERT(mr >= 1 && kc >= 0);
  for (index_t i0 = 0; i0 < m; i0 += mr) {
    const index_t height = std::min<index_t>(mr, m - i0);
    T* sliver = ac + (i0 / mr) * a_sliver_elems(kc, mr);
    // op(A)(i0+i, k) = a[k*lda + i0 + i]: contiguous run per k.
    for (index_t k = 0; k < kc; ++k) {
      const T* src = a + k * lda + i0;
      T* dst = sliver + k * mr;
      index_t i = 0;
      for (; i < height; ++i) dst[i] = src[i];
      for (; i < mr; ++i) dst[i] = T{};
    }
  }
}

template void pack_b_n<float>(const float*, index_t, index_t, index_t, int,
                              float*);
template void pack_b_n<double>(const double*, index_t, index_t, index_t, int,
                               double*);
template void pack_b_t<float>(const float*, index_t, index_t, index_t, int,
                              float*);
template void pack_b_t<double>(const double*, index_t, index_t, index_t, int,
                               double*);
template void pack_a_n<float>(const float*, index_t, index_t, index_t, int,
                              float*);
template void pack_a_n<double>(const double*, index_t, index_t, index_t, int,
                               double*);
template void pack_a_t<float>(const float*, index_t, index_t, index_t, int,
                              float*);
template void pack_a_t<double>(const double*, index_t, index_t, index_t, int,
                               double*);

}  // namespace shalom::pack
