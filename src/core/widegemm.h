// Wide-vector GEMM: the paper's Section 5.5 port.
//
// "Our approach can be applied to a longer vector length with a revised
// mr and nr computed according to the available number and length of
// vector registers." This header instantiates exactly that: an FP32
// Goto-style GEMM templated on the vector width (128/256/512 bits; SVE
// stand-ins on x86), whose register tile comes from the SAME analytic
// model (Eq. 1/2) evaluated at the wider lane count:
//
//     width   lanes j   model tile (32 regs)   CMR
//     128 b      4            7 x 12           8.84
//     256 b      8            9 x 16          11.52
//     512 b     16           15 x 16          15.48
//
// (test_widegemm.cpp asserts the solver yields these tiles.) The kernel
// uses the broadcast-from-memory form natural to wide ISAs: per k, NRV
// wide B loads + MR scalar broadcasts from the packed A column + MR*NRV
// FMAs. Both operands are packed (the small-matrix selective machinery
// stays 128-bit; this path demonstrates width scaling on the compute
// kernel, which is what Section 5.5 claims).
#pragma once

#include <algorithm>

#include "common/aligned_buffer.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/selfcheck.h"
#include "core/kernel_contracts.h"
#include "core/microkernel.h"
#include "core/model.h"
#include "core/pack.h"
#include "simd/vecwide.h"

namespace shalom::wide {

/// Register tile the analytic model yields for 32 registers at this
/// width; kept in sync with model::solve_tile by test_widegemm.cpp.
template <int Bits>
struct WideTile;
template <>
struct WideTile<128> {
  static constexpr int kMr = 7, kNrv = 3;
};
template <>
struct WideTile<256> {
  static constexpr int kMr = 9, kNrv = 2;
};
template <>
struct WideTile<512> {
  static constexpr int kMr = 15, kNrv = 1;
};

/// Registration-site contract: each width's tile must be exactly what the
/// analytic model yields for 32 registers at that lane count, and must
/// fit the register budget. A drifted specialization fails here instead
/// of in test_widegemm's runtime solver comparison.
#define SHALOM_CHECK_WIDE_TILE(Bits)                                       \
  static_assert(                                                           \
      contracts::fits_register_budget(WideTile<Bits>::kMr,                 \
                                      WideTile<Bits>::kNrv),               \
      "register budget violated: mr + nr/j + mr*nr/j <= 31 (paper Eq. 1 " \
      "evaluated at the " #Bits "-bit lane count)");                       \
  static_assert(                                                           \
      contracts::solve_tile(contracts::kVectorRegisters, (Bits) / 32)      \
                  .mr == WideTile<Bits>::kMr &&                            \
          contracts::solve_tile(contracts::kVectorRegisters, (Bits) / 32)  \
                  .nr == WideTile<Bits>::kNrv * ((Bits) / 32),             \
      "CMR optimality violated: WideTile<" #Bits "> must equal the "      \
      "analytic model tile solve_tile(32, " #Bits "/32) (paper S 5.5)")

SHALOM_CHECK_WIDE_TILE(128);
SHALOM_CHECK_WIDE_TILE(256);
SHALOM_CHECK_WIDE_TILE(512);
#undef SHALOM_CHECK_WIDE_TILE

/// One (MR x NRV*lanes) tile update over packed operands; m_eff/n_eff
/// select the stored sub-tile (packed buffers are zero-padded, so the
/// compute always runs the full tile).
template <int Bits>
void wide_tile(int m_eff, int n_eff, index_t kc, const float* a_sliver,
               const float* b_sliver, float* c, index_t ldc, float alpha,
               float beta) {
  using W = simd::wide<Bits>;
  using V = typename W::type;
  constexpr int kMr = WideTile<Bits>::kMr;
  constexpr int kNrv = WideTile<Bits>::kNrv;
  constexpr int kLanes = V::kLanes;
  constexpr int kNr = kNrv * kLanes;

  V acc[kMr][kNrv];
  ukr::unroll<kMr>([&](auto i) {
    ukr::unroll<kNrv>([&](auto jv) { acc[i][jv] = W::zero(); });
  });

  for (index_t k = 0; k < kc; ++k) {
    const float* arow = a_sliver + k * kMr;
    const float* brow = b_sliver + k * kNr;
    V bv[kNrv];
    ukr::unroll<kNrv>(
        [&](auto jv) { bv[jv] = W::ld(brow + jv * kLanes); });
    ukr::unroll<kMr>([&](auto i) {
      const V as = W::bcast(arow[i]);
      ukr::unroll<kNrv>([&](auto jv) {
        acc[i][jv] = W::fma(acc[i][jv], as, bv[jv]);
      });
    });
  }

  const V valpha = W::bcast(alpha);
  const V vbeta = W::bcast(beta);
  for (int i = 0; i < m_eff; ++i) {
    float* crow = c + i * ldc;
    for (int jv = 0; jv * kLanes < n_eff; ++jv) {
      const int cols = std::min(kLanes, n_eff - jv * kLanes);
      V r = W::fma(W::zero(), acc[i][jv], valpha);
      if (cols == kLanes) {
        if (beta != 0.f) r = W::fma(r, W::ld(crow + jv * kLanes), vbeta);
        W::st(crow + jv * kLanes, r);
      } else {
        if (beta != 0.f)
          r = W::fma(r, W::ldp(crow + jv * kLanes, cols), vbeta);
        W::stp(crow + jv * kLanes, r, cols);
      }
    }
  }
}

/// FP32 NN-mode GEMM at the chosen vector width: always-pack Goto
/// blocking with the width's analytic tile.
template <int Bits>
void gemm_wide(index_t M, index_t N, index_t K, float alpha, const float* A,
               index_t lda, const float* B, index_t ldb, float beta,
               float* C, index_t ldc,
               const arch::MachineDescriptor& mach = arch::host_machine()) {
  constexpr int kMr = WideTile<Bits>::kMr;
  constexpr int kLanes = Bits / 32;
  constexpr int kNr = WideTile<Bits>::kNrv * kLanes;

  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == 0.f) {
    for (index_t i = 0; i < M; ++i)
      for (index_t j = 0; j < N; ++j) {
        float& cv = C[i * ldc + j];
        cv = beta == 0.f ? 0.f : beta * cv;
      }
    return;
  }

  // Quarantine gate: a wide_tile variant that failed its selfcheck probe
  // (common/selfcheck.h) is routed to the scalar reference loop instead.
  if (!selfcheck::variant_ok(selfcheck::wide_variant(Bits))) {
    for (index_t i = 0; i < M; ++i) {
      float* crow = C + i * ldc;
      for (index_t j = 0; j < N; ++j) {
        float sum = 0.f;
        for (index_t k = 0; k < K; ++k) sum += A[i * lda + k] * B[k * ldb + j];
        crow[j] = beta == 0.f ? alpha * sum : beta * crow[j] + alpha * sum;
      }
    }
    return;
  }

  const model::Blocking blk =
      model::solve_blocking<float>(mach, {kMr, kNr}, M, N, K);
  AlignedBuffer& arena = thread_pack_arena();
  const index_t ac_elems = pack::a_panel_elems(blk.mc, blk.kc, kMr);
  const index_t bc_elems = pack::b_panel_elems(blk.kc, blk.nc, kNr);
  arena.reserve(static_cast<std::size_t>(ac_elems + bc_elems +
                                         2 * ukr::kPackSlackElems) *
                sizeof(float));
  float* const ac = arena.as<float>();
  float* const bc = ac + ac_elems + ukr::kPackSlackElems;

  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t kk = 0; kk < K; kk += blk.kc) {
      const index_t kcur = std::min<index_t>(blk.kc, K - kk);
      const float beta_eff = kk == 0 ? beta : 1.f;
      pack::pack_b_n(B + kk * ldb + jj, ldb, kcur, ncur, kNr, bc);
      for (index_t ii = 0; ii < M; ii += blk.mc) {
        const index_t mcur = std::min<index_t>(blk.mc, M - ii);
        pack::pack_a_n(A + ii * lda + kk, lda, mcur, kcur, kMr, ac);
        for (index_t j0 = 0; j0 < ncur; j0 += kNr) {
          const int n_eff =
              static_cast<int>(std::min<index_t>(kNr, ncur - j0));
          const float* b_sliver =
              bc + (j0 / kNr) * pack::b_sliver_elems(kcur, kNr);
          for (index_t i0 = 0; i0 < mcur; i0 += kMr) {
            const int m_eff =
                static_cast<int>(std::min<index_t>(kMr, mcur - i0));
            const float* a_sliver =
                ac + (i0 / kMr) * pack::a_sliver_elems(kcur, kMr);
            wide_tile<Bits>(m_eff, n_eff, kcur, a_sliver, b_sliver,
                            C + (ii + i0) * ldc + jj + j0, ldc, alpha,
                            beta_eff);
          }
        }
      }
    }
  }

  // Guarded-arena audit (SHALOM_GUARD): a violated canary means the wide
  // tile wrote outside the arena - quarantine it and fail the call.
  if (!arena.verify_guards()) {
    telemetry::note_arena_corruption();
    selfcheck::quarantine(selfcheck::wide_variant(Bits));
    throw corruption_error(
        "pack-arena guard canary violated after wide-GEMM execution "
        "(wide tile quarantined, result must be discarded)");
  }
}

}  // namespace shalom::wide
