// Shape-keyed LRU cache of execution plans.
//
// Production small-GEMM traffic repeats a handful of shapes millions of
// times (CP2K block patterns, VGG im2col layers), so the per-call analytic
// decisions - blocking, packing, partitioning, arena sizing - are pure
// overhead after the first call. The global PlanCache memoizes one
// immutable GemmPlan per (mode, M, N, K, ld class, threads, config) key,
// and gemm_cached() is the transparent entry point the public
// gemm/gemm_parallel/gemm_batch drivers route through. Cached plans are
// shared_ptr-held, so an eviction never invalidates a plan another thread
// is still executing.
//
// Internally the cache is sharded kShards ways by the high bits of the
// key hash: each shard owns its own mutex, LRU list and hit/miss/eviction
// counters, so concurrent callers on different shapes never contend on
// one lock (the concurrent-server path, see core/threadpool.h). The
// PR 1 single-mutex semantics are preserved observably: stats() sums the
// shards, capacity bounds the TOTAL entry count, and eviction removes the
// globally least-recently-used entry (each entry carries a global use
// tick; the oldest shard tail IS the global LRU victim, since per-shard
// lists preserve global recency order restricted to the shard).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.h"

namespace shalom {

/// Leading-dimension equivalence class used in the cache key: tightly
/// packed operands vs any padded leading dimension. Plan decisions do not
/// currently depend on it, but keeping the classes distinct in the key
/// leaves room for layout-aware plans without a key-format change.
enum class LdClass : std::uint8_t { kContiguous = 0, kPadded = 1 };

/// Classifies one call's leading dimensions against the logical operand
/// widths implied by (mode, M, N, K).
LdClass classify_ld(Mode mode, index_t M, index_t N, index_t K, index_t lda,
                    index_t ldb, index_t ldc);

/// Hash of every Config field a plan depends on (feature flags, blocking
/// overrides, and the target machine's model-relevant parameters - hashed
/// by value, so two descriptors with equal parameters collide on purpose).
/// cfg.threads is excluded: it is a separate key field.
std::uint64_t config_fingerprint(const Config& cfg);

/// Full cache key for one GEMM shape.
struct PlanKey {
  std::uint8_t trans_a = 0, trans_b = 0;
  std::uint8_t ld_class = 0;
  index_t m = 0, n = 0, k = 0;
  int threads = 1;
  std::uint64_t cfg_hash = 0;

  bool operator==(const PlanKey&) const = default;
};

PlanKey make_plan_key(Mode mode, index_t M, index_t N, index_t K,
                      LdClass ld_class, int threads, const Config& cfg);

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// One entry of a hot-shape snapshot (PlanCache::hot): a cached key plus
/// the global use tick of its most recent touch. Higher tick = hotter.
struct HotShape {
  PlanKey key;
  std::uint64_t last_use_tick = 0;
};

/// Thread-safe LRU plan cache, one instance per element type.
template <typename T>
class PlanCache {
 public:
  using PlanPtr = std::shared_ptr<const GemmPlan<T>>;

  static constexpr std::size_t kDefaultCapacity = 256;

  /// Shard count (power of two; keys are routed by the high bits of the
  /// key hash, leaving the low bits for the in-shard hash map).
  static constexpr std::size_t kShards = 16;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Process-wide cache consulted by the public entry points.
  static PlanCache& global();

  /// Returns the cached plan for `key`, creating (and inserting) it from
  /// (mode, M, N, K, cfg) on a miss. Plan construction runs outside the
  /// cache lock; when two threads race on the same fresh key, one plan
  /// wins the insert and both calls return a valid plan.
  ///
  /// Degradation contract: returns nullptr when the plan itself could not
  /// be materialized (allocation failure building the GemmPlan). A failed
  /// *insert* of a successfully built plan still returns the plan - the
  /// caller executes it, the cache just won't remember it. Both outcomes
  /// bump the plan_cache_bypassed telemetry counter; argument errors
  /// (shalom::invalid_argument) propagate as before.
  PlanPtr get_or_create(const PlanKey& key, Mode mode, index_t M, index_t N,
                        index_t K, const Config& cfg);

  /// Cache lookup only; nullptr on miss.
  PlanPtr lookup(const PlanKey& key);

  /// Installs `plan` under `key` (used by the auto-tuner to seed tuned
  /// blockings). Replaces any existing entry for the key. Best-effort
  /// under memory pressure: a failed insertion is dropped (and counted as
  /// plan_cache_bypassed) rather than thrown.
  void insert(const PlanKey& key, PlanPtr plan);

  /// Shrinks/grows the LRU bound (total across all shards); evicts
  /// immediately when shrinking. Capacity 0 disables insertion (every
  /// call becomes a miss).
  void set_capacity(std::size_t capacity);

  void clear();

  /// Aggregated over all shards (hits also fold in the memo hits).
  PlanCacheStats stats() const;

  /// Monotonic counter bumped by clear(), set_capacity() and insert():
  /// anything that can change which plan a key maps to. Lets lock-free
  /// per-thread memos (see gemm_cached) validate themselves cheaply.
  std::uint64_t generation() const;

  /// Accounts a hit served from a per-thread memo without touching the
  /// lock (folded into stats().hits).
  void note_memo_hit();

  /// Snapshot of the up-to-`k` most recently used entries, hottest first
  /// (descending global use tick). Locks shards one at a time, so the
  /// snapshot is consistent per shard but only approximately consistent
  /// across shards under concurrent traffic - exactly the fidelity a
  /// re-tuner sampling "what's hot" needs. The single source of truth for
  /// both the background re-tuner (tuning/table.h) and operators
  /// (shalom_plan_cache_hot).
  std::vector<HotShape> hot(std::size_t k) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Cache-transparent GEMM: validates arguments, then either executes a
/// (possibly fresh) cached plan or - when cfg.use_plan_cache is false -
/// falls through to the per-call serial/parallel drivers.
template <typename T>
void gemm_cached(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg = {});

}  // namespace shalom
