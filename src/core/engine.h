// Asynchronous GEMM submission engine (the concurrent-server front-end).
//
// A server loop feeding LibShalom one blocking gemm() at a time pays the
// full call latency per request even when thousands of independent small
// products are pending. GemmStream decouples submission from execution:
// submit() validates the arguments, enqueues the request and returns a
// Ticket immediately; a dedicated drainer thread swaps out the pending
// queue, SHAPE-BUCKETS it (requests are grouped by transpose mode and
// ordered by (m, n, k), so identical shapes run back-to-back and reuse
// the warm per-thread plan memo and sharded plan-cache entries,
// cf. core/plan_cache.h) and coalesces each bucket into one gemm_batch()
// call over the work-stealing pool (core/threadpool.h). Head-of-line
// blocking disappears: submitters never wait on other requests' execution.
//
// Admission control: the pending queue is bounded (StreamOptions::
// queue_cap / SHALOM_QUEUE_CAP). At capacity, the overload policy decides
// what gives: `block` parks the submitter until the drainer frees space
// (bounded by the request's deadline when it has one), `shed-newest`
// rejects the incoming request (shalom::rejected_error →
// SHALOM_ERR_REJECTED), `shed-oldest` revokes the oldest queued request
// in its favor. Each request may carry a deadline; the drainer sweeps the
// monotonic clock when it claims a batch and expires overdue tickets
// (SHALOM_ERR_TIMEOUT) before they ever reach gemm_batch. Queued tickets
// can also be revoked by the caller (shalom_future_cancel); a
// claim-or-revoke handshake on the ticket guarantees the drainer never
// touches the buffers of a cancelled request.
//
// Failure containment: a batch that throws is retried entry-by-entry so
// the failure lands on the ticket(s) that actually caused it, mapped to
// the same shalom_status codes the synchronous C API uses; unrelated
// tickets in the batch still complete. Transient failures from the
// fault-injectable acquisition sites (`submit.queue`, `threadpool.spawn`,
// and per-entry SHALOM_ERR_ALLOC batch failures) get a bounded
// exponential-backoff retry budget (StreamOptions::retry_budget /
// SHALOM_RETRY_BUDGET) before they surface; a circuit breaker latches the
// stream into synchronous-degraded mode after breaker_threshold
// consecutive retry-exhausted submits. If the drainer thread itself
// cannot be spawned (the `threadpool.spawn` site, or a real resource
// failure), the stream likewise degrades to synchronous execution inside
// submit() rather than failing construction. Work executed on a degraded
// stream still produces bitwise-correct results; its tickets resolve with
// SHALOM_DEGRADED (not an error) so callers can see the path taken.
//
// Lifecycle: running → draining → closed. close() (or destruction) stops
// admission (submits are rejected), drains everything already accepted,
// and joins the drainer; in-flight tickets ALWAYS resolve - to OK,
// SHALOM_DEGRADED, SHALOM_ERR_REJECTED, SHALOM_ERR_TIMEOUT, or an
// execution failure - never hang. shalom_stream_health() reports
// OK / DEGRADED / SHEDDING / DRAINING / RECOVERING for load-balancer
// style probes.
//
// Recovery (common/health.h): a latched breaker is no longer permanent.
// After SHALOM_RECOVERY_MS of cool-down the breaker goes HALF-OPEN and
// admits SHALOM_PROBATION_N trial submissions through the real enqueue
// path (excess submissions keep executing inline-degraded); a clean
// trial streak closes the breaker and the stream returns to full
// asynchronous service, while any trial failure re-opens it with a
// doubled cool-down (capped). SHALOM_RECOVERY_MS=0 restores the
// pre-recovery permanent latch exactly. Drainer-spawn degradation
// (`synchronous`) stays permanent - there is no drainer to return to.
//
// Data ownership: the caller's A/B/C buffers must stay alive and
// unmodified (C: un-read) until the request's ticket completes, exactly
// like a still-running synchronous call. Requests on one stream execute
// correctly in any interleaving only if their outputs do not alias.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "core/types.h"

namespace shalom {
namespace engine {

/// Completion handle for one submitted GEMM. shared_ptr-held: the stream
/// keeps its own reference until the request executes, so dropping a
/// ticket before (or without ever) waiting is always safe.
class Ticket {
 public:
  Ticket() = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  /// Blocks until the request has executed; returns its shalom_status.
  /// Idempotent - later calls return the same status immediately.
  int wait();

  /// Bounded wait: true when the ticket resolved within `ms`
  /// milliseconds (status() is then final), false on timeout (the ticket
  /// is untouched and still in flight - wait again or cancel).
  bool wait_for(long ms);

  /// Nonblocking completion probe.
  bool done() const;

  /// Status so far: SHALOM_OK before completion, the final status after
  /// (prefer wait() unless done() already returned true).
  int status() const;

  /// Detail message for a failed request ("" on success or while
  /// pending). Stable after done(); the reference lives as long as the
  /// ticket.
  const std::string& message() const;

  /// Internal: resolves the ticket (called once, by the owning stream's
  /// executor). Public only because the stream's out-of-line Impl cannot
  /// be befriended before it is defined.
  void complete(int status, std::string message);

  /// Internal claim handshake deciding who resolves a queued ticket.
  /// Exactly one of these ever succeeds per ticket:
  ///   try_claim()  - the drainer takes the request for execution (it
  ///                  will call complete() when done);
  ///   revoke()     - cancel / deadline-expiry / shed-oldest resolves the
  ///                  ticket WITHOUT executing, so the drainer never
  ///                  touches the request's buffers afterwards.
  /// Both return false when the other side already won.
  bool try_claim();
  bool revoke(int status, std::string message);

 private:
  /// 0 = queued, 1 = claimed by the executor, 2 = revoked. Lock-free so
  /// cancel/expire can race the drainer's claim without taking mu_; the
  /// CAS is the single arbiter (acq_rel: the winner's side publishes).
  std::atomic<std::uint32_t> claim_{0};

  mutable Mutex mu_;
  mutable std::condition_variable_any cv_;
  bool done_ SHALOM_GUARDED_BY(mu_) = false;
  int status_ SHALOM_GUARDED_BY(mu_) = 0;  // SHALOM_OK
  std::string message_ SHALOM_GUARDED_BY(mu_);
};

using TicketPtr = std::shared_ptr<Ticket>;

/// What submit() does when the pending queue is at queue_cap.
enum class OverloadPolicy : int {
  kBlock = 0,      ///< park the submitter until space frees (deadline-aware)
  kShedNewest = 1, ///< reject the incoming request (SHALOM_ERR_REJECTED)
  kShedOldest = 2, ///< revoke the oldest queued request in its favor
};

/// Coarse stream condition for load-balancer style probes
/// (shalom_stream_health at the C boundary). Precedence when several
/// apply: DRAINING > DEGRADED > RECOVERING > SHEDDING > OK.
enum class StreamHealth : int {
  kOk = 0,
  kDegraded = 1,   ///< latched synchronous (breaker or drainer-spawn failure)
  kShedding = 2,   ///< queue at capacity right now
  kDraining = 3,   ///< lifecycle left running (draining or closed)
  kRecovering = 4, ///< breaker half-open: trial requests probing the queue
};

/// SHALOM_QUEUE_CAP: per-stream pending-queue capacity; 0 = unbounded
/// (the default). Zero/negative/malformed values warn once and fall back
/// (a cap of 0 rejecting everything is never what an operator meant).
/// Parsed once per process via env::get_long.
long env_queue_cap() noexcept;

/// SHALOM_OVERLOAD_POLICY: block | shed-newest | shed-oldest (default
/// block). Parsed once per process via env::get_enum.
OverloadPolicy env_overload_policy() noexcept;

/// SHALOM_RETRY_BUDGET: transient-failure retries per acquisition (0
/// disables retry; default 3). Parsed once per process via env::get_long.
long env_retry_budget() noexcept;

struct StreamOptions {
  /// Execution width for the coalesced gemm_batch calls (0 = default
  /// resolution, like Config::threads).
  int threads = 0;
  /// Route batch entries through the plan cache (Config::use_plan_cache).
  bool use_plan_cache = true;
  /// Pending-queue capacity; 0 = unbounded, negative = use
  /// SHALOM_QUEUE_CAP (which defaults to unbounded).
  long queue_cap = -1;
  /// OverloadPolicy as int; negative = use SHALOM_OVERLOAD_POLICY
  /// (which defaults to block).
  int overload_policy = -1;
  /// Exponential-backoff retries for transient failures; negative = use
  /// SHALOM_RETRY_BUDGET (which defaults to 3).
  long retry_budget = -1;
  /// Consecutive retry-exhausted submit failures that latch the stream
  /// into synchronous-degraded mode (the circuit breaker). Must be >= 1.
  int breaker_threshold = 3;
};

struct StreamStats {
  std::uint64_t submitted = 0;   ///< requests accepted by submit()
  std::uint64_t executed = 0;    ///< requests claimed and run (excludes
                                 ///< expired / revoked-while-queued ones)
  std::uint64_t batches = 0;     ///< gemm_batch calls issued by the drainer
  std::uint64_t shed = 0;        ///< rejected by admission control
  std::uint64_t expired = 0;     ///< deadline expiries (queued or blocked)
  std::uint64_t retries = 0;     ///< backoff retries spent
  std::uint64_t queue_peak = 0;  ///< high-water pending-queue depth
};

/// One asynchronous submission queue + its drainer thread. Thread-safe:
/// any number of threads may submit()/flush() concurrently. Destruction
/// drains (every accepted request executes or is revoked, and completes
/// its ticket) and joins the drainer.
class GemmStream {
 public:
  explicit GemmStream(StreamOptions opts = {});
  ~GemmStream();

  GemmStream(const GemmStream&) = delete;
  GemmStream& operator=(const GemmStream&) = delete;

  /// Enqueues C = alpha*op(A)*op(B) + beta*C and returns its ticket.
  /// Argument validation happens HERE, on the submitting thread
  /// (shalom::invalid_argument propagates and nothing is queued); the
  /// returned ticket only ever carries execution-time failures.
  /// `deadline_ms` > 0 bounds the request's whole queued life: if the
  /// drainer has not claimed it within that many milliseconds of
  /// submission, its ticket resolves with SHALOM_ERR_TIMEOUT instead of
  /// executing (0 = no deadline). Throws shalom::rejected_error when
  /// admission control sheds the request (queue at capacity under a
  /// shed-* policy, the `engine.shed` fault site, or the stream is
  /// draining/closed), shalom::timeout_error when a block-policy wait for
  /// queue space outlives the deadline, and std::bad_alloc when the
  /// request cannot be queued after the retry budget is spent (including
  /// the armed `submit.queue` fault site) - the queue is unchanged in
  /// every throwing case.
  template <typename T>
  TicketPtr submit(Mode mode, index_t m, index_t n, index_t k, T alpha,
                   const T* a, index_t lda, const T* b, index_t ldb, T beta,
                   T* c, index_t ldc, long deadline_ms = 0);

  /// Blocks until every request submitted before this call has resolved.
  /// Returns SHALOM_OK, or SHALOM_DEGRADED when the stream is executing
  /// on a degraded synchronous path (drainer-spawn failure or a latched
  /// circuit breaker) - the distinct signal callers need to stop routing
  /// load here even though all work completed correctly.
  int flush();

  /// flush() bounded by `ms` milliseconds: additionally returns
  /// SHALOM_ERR_TIMEOUT when the queue had not drained in time (the
  /// stream keeps draining in the background; flush again to re-wait).
  int flush_for(long ms);

  /// Graceful shutdown: running → draining (admission stops, submits are
  /// rejected) → drain everything accepted → closed. Returns like
  /// flush(). Idempotent; the destructor calls it implicitly.
  int close();

  /// Current coarse condition (see StreamHealth).
  StreamHealth health() const;

  StreamStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace engine
}  // namespace shalom
