// Asynchronous GEMM submission engine (the concurrent-server front-end).
//
// A server loop feeding LibShalom one blocking gemm() at a time pays the
// full call latency per request even when thousands of independent small
// products are pending. GemmStream decouples submission from execution:
// submit() validates the arguments, enqueues the request and returns a
// Ticket immediately; a dedicated drainer thread swaps out the pending
// queue, SHAPE-BUCKETS it (requests are grouped by transpose mode and
// ordered by (m, n, k), so identical shapes run back-to-back and reuse
// the warm per-thread plan memo and sharded plan-cache entries,
// cf. core/plan_cache.h) and coalesces each bucket into one gemm_batch()
// call over the work-stealing pool (core/threadpool.h). Head-of-line
// blocking disappears: submitters never wait on other requests' execution.
//
// Failure containment: a batch that throws is retried entry-by-entry so
// the failure lands on the ticket(s) that actually caused it, mapped to
// the same shalom_status codes the synchronous C API uses; unrelated
// tickets in the batch still complete. The `submit.queue` fault site
// (common/fault.h) rejects a submission with std::bad_alloc BEFORE it is
// queued - the strong guarantee the real enqueue-allocation failure path
// shares. If the drainer thread itself cannot be spawned, the stream
// degrades to synchronous execution inside submit() (tickets then
// complete before submit returns) rather than failing construction.
//
// Data ownership: the caller's A/B/C buffers must stay alive and
// unmodified (C: un-read) until the request's ticket completes, exactly
// like a still-running synchronous call. Requests on one stream execute
// correctly in any interleaving only if their outputs do not alias.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "core/types.h"

namespace shalom {
namespace engine {

/// Completion handle for one submitted GEMM. shared_ptr-held: the stream
/// keeps its own reference until the request executes, so dropping a
/// ticket before (or without ever) waiting is always safe.
class Ticket {
 public:
  Ticket() = default;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  /// Blocks until the request has executed; returns its shalom_status.
  /// Idempotent - later calls return the same status immediately.
  int wait();

  /// Nonblocking completion probe.
  bool done() const;

  /// Status so far: SHALOM_OK before completion, the final status after
  /// (prefer wait() unless done() already returned true).
  int status() const;

  /// Detail message for a failed request ("" on success or while
  /// pending). Stable after done(); the reference lives as long as the
  /// ticket.
  const std::string& message() const;

  /// Internal: resolves the ticket (called once, by the owning stream's
  /// executor). Public only because the stream's out-of-line Impl cannot
  /// be befriended before it is defined.
  void complete(int status, std::string message);

 private:

  mutable Mutex mu_;
  mutable std::condition_variable_any cv_;
  bool done_ SHALOM_GUARDED_BY(mu_) = false;
  int status_ SHALOM_GUARDED_BY(mu_) = 0;  // SHALOM_OK
  std::string message_ SHALOM_GUARDED_BY(mu_);
};

using TicketPtr = std::shared_ptr<Ticket>;

struct StreamOptions {
  /// Execution width for the coalesced gemm_batch calls (0 = default
  /// resolution, like Config::threads).
  int threads = 0;
  /// Route batch entries through the plan cache (Config::use_plan_cache).
  bool use_plan_cache = true;
};

struct StreamStats {
  std::uint64_t submitted = 0;  ///< requests accepted by submit()
  std::uint64_t executed = 0;   ///< requests completed (any status)
  std::uint64_t batches = 0;    ///< gemm_batch calls issued by the drainer
};

/// One asynchronous submission queue + its drainer thread. Thread-safe:
/// any number of threads may submit()/flush() concurrently. Destruction
/// flushes (every accepted request executes and completes its ticket)
/// and joins the drainer.
class GemmStream {
 public:
  explicit GemmStream(StreamOptions opts = {});
  ~GemmStream();

  GemmStream(const GemmStream&) = delete;
  GemmStream& operator=(const GemmStream&) = delete;

  /// Enqueues C = alpha*op(A)*op(B) + beta*C and returns its ticket.
  /// Argument validation happens HERE, on the submitting thread
  /// (shalom::invalid_argument propagates and nothing is queued); the
  /// returned ticket only ever carries execution-time failures. Throws
  /// std::bad_alloc when the request cannot be queued (including the
  /// armed `submit.queue` fault site) - the queue is unchanged then.
  template <typename T>
  TicketPtr submit(Mode mode, index_t m, index_t n, index_t k, T alpha,
                   const T* a, index_t lda, const T* b, index_t ldb, T beta,
                   T* c, index_t ldc);

  /// Blocks until every request submitted before this call has executed.
  void flush();

  StreamStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace engine
}  // namespace shalom
