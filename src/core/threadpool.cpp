#include "core/threadpool.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <new>
#include <system_error>

#include "common/error.h"
#include "common/fault.h"
#include "common/guard.h"
#include "common/thread_annotations.h"

namespace shalom {

namespace {

/// Retired pools kept alive beyond the newest one. Small on purpose: each
/// retiree only exists because a wider pool superseded it, and thread
/// counts grow a handful of times per process, but an adversarial
/// grow-loop must not leak pools without bound.
constexpr std::size_t kMaxRetiredPools = 4;

/// The global-pool registry. Outgrown pools are retired to the list, not
/// destroyed mid-run: a reference handed out by an earlier call may still
/// be inside parallel_for on another thread, and ~ThreadPool under it
/// would free the mutex/condvars it is blocked on. Reaping (bounding the
/// list) therefore only touches retirees that are provably quiescent:
/// zero Handle pins and an uncontended run mutex.
struct PoolRegistry {
  Mutex mu;
  std::vector<std::unique_ptr<ThreadPool>> pools SHALOM_GUARDED_BY(mu);
};

PoolRegistry& registry() {
  static PoolRegistry r;
  return r;
}

}  // namespace

ThreadPool::ThreadPool(int max_threads)
    : max_threads_(max_threads),
      claims_(max_threads >= 1 ? static_cast<std::size_t>(max_threads) : 1),
      heartbeats_(max_threads >= 1 ? static_cast<std::size_t>(max_threads)
                                   : 1) {
  SHALOM_REQUIRE(max_threads >= 1, " max_threads=", max_threads);
  workers_.reserve(static_cast<std::size_t>(max_threads_ - 1));
  for (int w = 1; w < max_threads_; ++w) {
    try {
      if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolSpawn))
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again));
      workers_.emplace_back([this, w] { worker_loop(w); });
    } catch (const std::system_error&) {
      // Workers 1..w-1 already exist and support w-way rounds; keep them.
      max_threads_ = w;
      break;
    } catch (const std::bad_alloc&) {
      max_threads_ = w;
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  // Wakes parked workers too (a watchdog-abandoned worker parks on
  // start_cv_ until shutdown), so the joins below always complete.
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::try_claim(int task, std::uint64_t gen) noexcept {
  std::atomic<std::uint64_t>& slot = claims_[static_cast<std::size_t>(task)];
  std::uint64_t seen = slot.load(std::memory_order_acquire);
  while (seen < gen) {
    if (slot.compare_exchange_weak(seen, gen, std::memory_order_acq_rel,
                                   std::memory_order_acquire))
      return true;
  }
  // seen >= gen: this round's task was already claimed (or the claimant
  // is a straggler from a round that has since completed) - back off.
  return false;
}

std::uint64_t ThreadPool::heartbeat_sum() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& hb : heartbeats_)
    sum += hb.load(std::memory_order_relaxed);
  return sum;
}

void ThreadPool::parallel_for(int tasks, const std::function<void(int)>& fn,
                              int watchdog_ms) {
  SHALOM_REQUIRE(tasks >= 1 && tasks <= max_threads_,
                 ": tasks must be in [1, max_threads]; tasks=", tasks,
                 " max_threads=", max_threads_,
                 " (use pool_run for width-tolerant execution)");
  if (tasks == 1) {
    fn(0);
    return;
  }
  if (watchdog_ms < 0) watchdog_ms = guard::env_watchdog_ms();
  // One fork-join round at a time: concurrent callers (threads executing
  // parallel plans, racing plan creations pre-sizing worker arenas) queue
  // here instead of clobbering the shared job slot and join barrier.
  MutexLock run_lock(run_mu_);
  std::uint64_t gen = 0;
  {
    MutexLock lock(mu_);
    job_ = &fn;
    job_tasks_ = tasks;
    outstanding_ = tasks - 1;
    gen = ++generation_;
  }
  start_cv_.notify_all();

  fn(0);  // the calling thread takes task 0 (fork-join semantics)

  // Explicit predicate loop (not the lambda-predicate overload) so the
  // thread-safety analysis sees the guarded read under the held lock.
  MutexLock lock(mu_);
  if (watchdog_ms <= 0) {
    while (outstanding_ != 0) done_cv_.wait(lock);
  } else {
    std::uint64_t baseline = heartbeat_sum();
    bool tripped = false;
    while (outstanding_ != 0) {
      if (tripped) {
        // Whatever is still outstanding was claimed by a live-or-wedged
        // worker; only it can finish the task (see the header comment on
        // mid-task wedges). No further trips this round.
        done_cv_.wait(lock);
        continue;
      }
      done_cv_.wait_for(lock, std::chrono::milliseconds(watchdog_ms));
      if (outstanding_ == 0) break;
      const std::uint64_t now = heartbeat_sum();
      if (now != baseline) {
        baseline = now;  // workers are making progress; re-arm
        continue;
      }
      // Trip: a full period elapsed with zero heartbeat movement. Mark
      // the pool degraded (sticky), count it, and recover every task no
      // worker has claimed by running it on this thread.
      tripped = true;
      degraded_.store(true, std::memory_order_release);
      telemetry::note_watchdog_trip();
      std::fprintf(stderr,
                   "shalom: threadpool: watchdog tripped after %d ms with "
                   "no worker heartbeat progress (%d-task round); pool "
                   "degraded, leader recovering unclaimed tasks serially\n",
                   watchdog_ms, tasks);
      for (int t = 1; t < tasks; ++t) {
        if (!try_claim(t, gen)) continue;
        lock.unlock();
        fn(t);
        lock.lock();
        --outstanding_;
      }
    }
  }
  job_ = nullptr;
}

void ThreadPool::worker_loop(int worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int tasks = 0;
    std::uint64_t gen = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation)
        start_cv_.wait(lock);
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      tasks = job_tasks_;
      gen = generation_;
    }
    // Round-pickup heartbeat: the watchdog reads these sums to tell a
    // slow round from a wedged one.
    heartbeats_[static_cast<std::size_t>(worker_id)].fetch_add(
        1, std::memory_order_relaxed);
    if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolHeartbeat)) {
      // Simulated wedge: park without claiming the task so the watchdog
      // leader can recover it. Parked until pool shutdown - exactly the
      // observable behaviour of a worker the OS stopped scheduling.
      MutexLock lock(mu_);
      while (!shutdown_) start_cv_.wait(lock);
      return;
    }
    // Workers with id >= tasks have nothing to do this round; the claim
    // protocol means they (and claim-race losers) must NOT touch the
    // barrier - only the claim winner retires a task.
    bool ran = false;
    if (worker_id < tasks && job != nullptr && try_claim(worker_id, gen)) {
      (*job)(worker_id);
      ran = true;
    }
    heartbeats_[static_cast<std::size_t>(worker_id)].fetch_add(
        1, std::memory_order_relaxed);
    if (ran) {
      MutexLock lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

namespace {

/// Grows the registry to at least `threads` wide. Caller holds r.mu.
void ensure_width_locked(PoolRegistry& r, int threads) SHALOM_REQUIRES(r.mu) {
  if (r.pools.empty() || r.pools.back()->max_threads() < threads) {
    auto pool = std::make_unique<ThreadPool>(threads);
    // Under spawn failure the new pool may come back no wider than the one
    // we already have; keep the old one rather than churning out a retired
    // pool per call while the OS stays resource-starved.
    if (r.pools.empty() ||
        pool->max_threads() > r.pools.back()->max_threads())
      r.pools.push_back(std::move(pool));
  }
}

}  // namespace

void ThreadPool::reap_retired_locked(
    std::vector<std::unique_ptr<ThreadPool>>& pools) {
  // The newest pool (back) is never reaped. A retiree is quiescent when
  // no Handle pins it and its run mutex is free (no round in flight);
  // only quiescent retirees go, and only while the list is over cap.
  // Oldest first: the oldest retirees are the least likely to still be
  // referenced by a transient global() caller.
  std::size_t i = 0;
  while (pools.size() > kMaxRetiredPools + 1 && i + 1 < pools.size()) {
    ThreadPool& p = *pools[i];
    if (p.pins_.load(std::memory_order_acquire) == 0 &&
        p.run_mu_.try_lock()) {
      p.run_mu_.unlock();
      pools.erase(pools.begin() +
                  static_cast<std::vector<
                      std::unique_ptr<ThreadPool>>::difference_type>(i));
    } else {
      ++i;
    }
  }
}

ThreadPool& ThreadPool::global(int threads) {
  PoolRegistry& r = registry();
  MutexLock lock(r.mu);
  ensure_width_locked(r, threads);
  return *r.pools.back();
}

ThreadPool::Handle::Handle(int threads) {
  PoolRegistry& r = registry();
  MutexLock lock(r.mu);
  ensure_width_locked(r, threads);
  pool_ = r.pools.back().get();
  pool_->pins_.fetch_add(1, std::memory_order_acq_rel);
  // Piggyback the reap pass on acquisition: the registry only grows on
  // acquisition too, so this bounds the retired list without a dedicated
  // maintenance thread.
  reap_retired_locked(r.pools);
}

ThreadPool::Handle::~Handle() {
  pool_->pins_.fetch_sub(1, std::memory_order_acq_rel);
}

int ThreadPool::retired_pool_count_for_testing() {
  PoolRegistry& r = registry();
  MutexLock lock(r.mu);
  return r.pools.empty() ? 0 : static_cast<int>(r.pools.size()) - 1;
}

void pool_run(int tasks, const std::function<void(int)>& fn,
              int watchdog_ms) {
  SHALOM_REQUIRE(tasks >= 1, " tasks=", tasks);
  if (tasks == 1) {
    fn(0);
    return;
  }
  ThreadPool::Handle handle(tasks);
  ThreadPool& pool = handle.pool();
  // A watchdog-degraded pool has at least one wedged worker: every
  // parallel round on it would trip again and be recovered by the
  // leader, so skip straight to the serial loop.
  const bool degraded = pool.degraded();
  const int avail = degraded ? 1 : pool.max_threads();
  if (avail >= tasks) {
    pool.parallel_for(tasks, fn, watchdog_ms);
    return;
  }
  // Degraded round: fewer workers than tasks. Chunk tasks over the width
  // we have; with a single-thread (or watchdog-degraded) pool that
  // collapses to a serial loop.
  telemetry::note_threads_degraded();
  if (avail <= 1) {
    for (int id = 0; id < tasks; ++id) fn(id);
    return;
  }
  pool.parallel_for(
      avail,
      [&](int w) {
        for (int id = w; id < tasks; id += avail) fn(id);
      },
      watchdog_ms);
}

}  // namespace shalom
