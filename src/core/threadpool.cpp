#include "core/threadpool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <new>
#include <system_error>

#include "common/error.h"
#include "common/fault.h"
#include "common/guard.h"
#include "common/health.h"
#include "common/thread_annotations.h"

namespace shalom {

namespace {

/// Retired pools kept alive beyond the newest one. Small on purpose: each
/// retiree only exists because a wider pool superseded it, and thread
/// counts grow a handful of times per process, but an adversarial
/// grow-loop must not leak pools without bound.
constexpr std::size_t kMaxRetiredPools = 4;

/// The global-pool registry. Outgrown pools are retired to the list, not
/// destroyed mid-run: a reference handed out by an earlier call may still
/// be inside parallel_for on another thread, and ~ThreadPool under it
/// would free the mutex/condvars it is blocked on. Reaping (bounding the
/// list) therefore only touches retirees that are provably quiescent:
/// zero Handle pins and zero rounds in flight.
struct PoolRegistry {
  Mutex mu;
  std::vector<std::unique_ptr<ThreadPool>> pools SHALOM_GUARDED_BY(mu);
};

PoolRegistry& registry() {
  static PoolRegistry r;
  return r;
}

/// Round-admission override: -1 follows SHALOM_SERIALIZE_ROUNDS, 0/1 is
/// forced by a bench or test (ThreadPool::set_serialize_rounds_for_testing).
std::atomic<int> g_serialize_override{-1};

/// Smallest power of two >= n (used for the deque ring capacity).
std::size_t pow2_at_least(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

/// What the deques carry: a (round, task index) hint. Hints are advisory;
/// only a claim CAS win makes the holder run the task.
struct ThreadPool::TaskSlot {
  Round* round;
  int task;
};

// ---------------------------------------------------------------------------
// Round: one in-flight parallel_for
// ---------------------------------------------------------------------------

/// Heap-allocated record of one fork-join round. Lifetime is managed by an
/// intrusive refcount: the submitter holds one reference for the duration
/// of run_round, the injection list holds one while the round is linked,
/// and every task hint handed to a deque (or carried by a worker) holds
/// one. Hints may outlive the round's completion (a stale deque entry),
/// which is safe because they only ever touch `claims` - and a successful
/// claim proves the task has not run, hence the round has not joined,
/// hence `fn` (which points into the submitter's frame) is still alive.
struct ThreadPool::Round {
  const std::function<void(int)>* fn;
  int tasks;
  std::uint64_t gen;  // generation tag stored into won claim slots

  /// Per-task claim slots: 0 = unclaimed, `gen` = claimed. Exactly one
  /// CAS wins per slot, which is the exactly-once execution guarantee
  /// (deque entries and the injection list are only hints).
  std::vector<std::atomic<std::uint64_t>> claims;
  std::vector<TaskSlot> slots;
  /// Next task index not yet handed to any deque. Task 0 is the
  /// submitter's (fork-join semantics), so distribution starts at 1.
  std::atomic<int> next_undist{1};
  /// Tasks not yet executed; the last finisher signals the join.
  std::atomic<int> remaining;
  std::atomic<int> refs{1};  // submitter's reference

  Mutex mu;
  std::condition_variable_any cv;
  bool done SHALOM_GUARDED_BY(mu) = false;

  Round(const std::function<void(int)>* f, int t, std::uint64_t g)
      : fn(f), tasks(t), gen(g),
        claims(static_cast<std::size_t>(t)),
        slots(static_cast<std::size_t>(t)),
        remaining(t) {
    for (int i = 0; i < t; ++i)
      slots[static_cast<std::size_t>(i)] = TaskSlot{this, i};
  }

  void retain() noexcept { refs.fetch_add(1, std::memory_order_relaxed); }
  void release() noexcept {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  /// Claims `task` for execution; true for exactly one caller.
  bool claim(int task) noexcept {
    std::uint64_t expected = 0;
    return claims[static_cast<std::size_t>(task)].compare_exchange_strong(
        expected, gen, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  /// Retires one executed task; the last one marks the round done.
  void finish() noexcept {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(mu);
      done = true;
      cv.notify_all();
    }
  }

  void wait_done() {
    MutexLock lock(mu);
    while (!done) cv.wait(lock);
  }
};

// ---------------------------------------------------------------------------
// Deque: Chase-Lev-style per-worker work queue
// ---------------------------------------------------------------------------

/// Fixed-capacity single-owner deque: the owning worker pushes and pops at
/// the bottom, thieves CAS-increment the top. Entries are TaskSlot hints -
/// losing one to a race or overflow is a load-balance event, never a
/// correctness event (the claim protocol is the ground truth). The classic
/// formulation (Le et al., "Correct and efficient work-stealing for weak
/// memory models") uses standalone fences; TSan does not model those, so
/// the fences are expressed as seq_cst operations on top_/bottom_ instead,
/// per the explicit-memory-order lint discipline.
class ThreadPool::Deque {
 public:
  explicit Deque(std::size_t capacity_pow2)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1) {}

  /// Owner only. False when full; the caller runs the task inline then.
  bool push(TaskSlot* s) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(buf_.size())) return false;
    buf_[static_cast<std::size_t>(b) & mask_].store(
        s, std::memory_order_relaxed);
    // Release-publishes the slot write to thieves that acquire bottom_.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. Null when empty (or the last element was stolen).
  TaskSlot* pop() noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // The bottom_ reservation must be globally ordered before the top_
    // read (seq_cst store/load pair), or the owner and a thief could
    // both take the last element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      TaskSlot* s = buf_[static_cast<std::size_t>(b) & mask_].load(
          std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it on top_.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
          s = nullptr;  // a thief won
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return s;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
    return nullptr;
  }

  /// Any thread. Null when empty or the CAS race was lost.
  TaskSlot* steal() noexcept {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    TaskSlot* s = buf_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return nullptr;  // lost to the owner or another thief
    // The CAS win proves no one consumed index t before us, and the
    // bottom_ acquire above made the producing slot write visible, so
    // `s` is the entry pushed at index t.
    return s;
  }

 private:
  std::vector<std::atomic<TaskSlot*>> buf_;
  std::size_t mask_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

struct ThreadPool::Worker {
  Deque deque;
  explicit Worker(std::size_t cap) : deque(cap) {}
};

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int max_threads)
    : max_threads_(max_threads),
      workers_(max_threads >= 1 ? static_cast<std::size_t>(max_threads) : 1),
      heartbeats_(max_threads >= 1 ? static_cast<std::size_t>(max_threads)
                                   : 1) {
  SHALOM_REQUIRE(max_threads >= 1, " max_threads=", max_threads);
  const std::size_t deque_cap = pow2_at_least(
      std::max<std::size_t>(64, static_cast<std::size_t>(max_threads) * 4));
  // Every Worker slot is written BEFORE the first thread spawns: a
  // spawned worker immediately scans all of workers_[*] as steal
  // victims, so the slot stores must happen-before the spawn (the
  // thread-creation edge), never race with it. A slot that fails to
  // allocate stays null; spawning stops at the first gap.
  try {
    for (int w = 1; w < max_threads; ++w)
      workers_[static_cast<std::size_t>(w)] =
          std::make_unique<Worker>(deque_cap);
  } catch (const std::bad_alloc&) {
    // Keep the slots that did allocate; width narrows below.
  }
  threads_.reserve(static_cast<std::size_t>(max_threads - 1));
  health::Cause cause = health::Cause::kNone;
  for (int w = 1; w < max_threads; ++w) {
    if (workers_[static_cast<std::size_t>(w)] == nullptr) {
      // Alloc-gap narrowing: the slot itself is missing, so there is
      // nothing a later respawn probe could attach a thread to. Narrow
      // without reporting the health component degraded.
      max_threads_.store(w, std::memory_order_release);
      break;
    }
    try {
      if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolSpawn)) {
        cause = health::Cause::kInjected;
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again));
      }
      threads_.emplace_back([this, w] { worker_loop(w); });
    } catch (const std::system_error&) {
      // Workers 1..w-1 already run and support w-way rounds; keep them.
      // workers_[w] stays allocated but threadless: its deque is forever
      // empty, so victims scans skip past it harmlessly - and
      // try_recover() can attach a thread to it later.
      if (cause == health::Cause::kNone) cause = health::Cause::kOverload;
      max_threads_.store(w, std::memory_order_release);
      break;
    } catch (const std::bad_alloc&) {
      cause = health::Cause::kOverload;
      max_threads_.store(w, std::memory_order_release);
      break;
    }
  }
  // Spawn-failure narrowing is recoverable (the slot kept its Worker):
  // arm the health registry so a probation probe retries the spawn after
  // the cool-down.
  if (cause != health::Cause::kNone)
    health::report_degraded(health::Component::kThreadPool, cause);
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  // Wakes parked workers too (a watchdog-abandoned worker parks on
  // start_cv_ until shutdown), so the joins below always complete.
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Workers are gone; drop the stale hints their deques still hold (they
  // only pin round memory - every completed round's claims are all won).
  for (auto& w : workers_) {
    if (w == nullptr) continue;
    while (TaskSlot* s = w->deque.pop()) s->round->release();
  }
  MutexLock lock(mu_);
  for (Round* r : injection_) r->release();
  injection_.clear();
}

bool ThreadPool::serialize_rounds() noexcept {
  const int forced = g_serialize_override.load(std::memory_order_acquire);
  if (forced >= 0) return forced != 0;
  static const bool from_env =
      env::get_long("SHALOM_SERIALIZE_ROUNDS", 0, 0, 1) != 0;
  return from_env;
}

void ThreadPool::set_serialize_rounds_for_testing(bool on) noexcept {
  g_serialize_override.store(on ? 1 : 0, std::memory_order_release);
}

void ThreadPool::clear_serialize_rounds_override() noexcept {
  g_serialize_override.store(-1, std::memory_order_release);
}

std::uint64_t ThreadPool::heartbeat_sum() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& hb : heartbeats_)
    sum += hb.load(std::memory_order_relaxed);
  return sum;
}

bool ThreadPool::try_recover() noexcept {
  int respawned = 0;
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    // Re-attach threads to spawn-narrowed slots. Only slots whose Worker
    // record exists are candidates: the slot stores all happened in the
    // constructor (before any thread ran), so a thief scanning workers_
    // never races these reads, and a slot that is threadless has a
    // provably empty deque with no owner - a fresh thread can take it.
    const int requested = static_cast<int>(workers_.size());
    int width = max_threads_.load(std::memory_order_acquire);
    while (width < requested) {
      if (workers_[static_cast<std::size_t>(width)] == nullptr)
        break;  // alloc-gap slot: nothing to attach a thread to
      const int id = width;
      try {
        if (SHALOM_FAULT_POINT(fault::Site::kHealthRespawn))
          throw std::system_error(
              std::make_error_code(std::errc::resource_unavailable_try_again));
        threads_.emplace_back([this, id] { worker_loop(id); });
      } catch (const std::system_error&) {
        return false;  // probe failed; keep the width we have
      } catch (const std::bad_alloc&) {
        return false;
      }
      ++width;
      // Publishes the new worker to parallel_for's width check.
      max_threads_.store(width, std::memory_order_release);
      ++respawned;
    }
  }
  // Re-arm the watchdog: the next diagnostic round probes the pool at
  // full width and re-trips (re-degrading the component with a doubled
  // cool-down) if the wedge is still there.
  const bool was_degraded = degraded_.exchange(false,
                                               std::memory_order_acq_rel);
  if (respawned > 0 || was_degraded) {
    std::fprintf(stderr,
                 "shalom: threadpool: recovery probe re-spawned %d "
                 "worker(s), width now %d%s\n",
                 respawned, max_threads_.load(std::memory_order_acquire),
                 was_degraded ? "; watchdog re-armed" : "");
  }
  return true;
}

void ThreadPool::parallel_for(int tasks, const std::function<void(int)>& fn,
                              int watchdog_ms) {
  const int width = max_threads_.load(std::memory_order_acquire);
  SHALOM_REQUIRE(tasks >= 1 && tasks <= width,
                 ": tasks must be in [1, max_threads]; tasks=", tasks,
                 " max_threads=", width,
                 " (use pool_run for width-tolerant execution)");
  if (tasks == 1) {
    fn(0);
    return;
  }
  if (watchdog_ms < 0) watchdog_ms = guard::env_watchdog_ms();
  if (serialize_rounds()) {
    // Compatibility mode: one round at a time, workers do all the
    // non-leader work (the PR 5 admission discipline, and the baseline
    // bench/abl_engine measures overlap against).
    MutexLock run_lock(run_mu_);
    run_round(tasks, fn, watchdog_ms, /*leader_helps=*/false);
    return;
  }
  // Overlapping mode. With a watchdog armed the leader must NOT help
  // eagerly: inline help would complete the round before a wedged worker
  // could ever be observed, and the whole point of the diagnostic round
  // is to observe it (the leader still recovers everything on a trip).
  run_round(tasks, fn, watchdog_ms, /*leader_helps=*/watchdog_ms <= 0);
}

void ThreadPool::run_round(int tasks, const std::function<void(int)>& fn,
                           int watchdog_ms, bool leader_helps) {
  const int act = active_rounds_.fetch_add(1, std::memory_order_acq_rel) + 1;
  int hw = max_active_rounds_.load(std::memory_order_relaxed);
  while (act > hw &&
         !max_active_rounds_.compare_exchange_weak(
             hw, act, std::memory_order_acq_rel, std::memory_order_relaxed)) {
  }

  Round* r = new Round(&fn, tasks,
                       round_gen_.fetch_add(1, std::memory_order_relaxed) + 1);
  {
    MutexLock lock(mu_);
    r->retain();  // the injection list's reference
    injection_.push_back(r);
    ++submit_seq_;
  }
  start_cv_.notify_all();

  std::exception_ptr caught;
  run_leader_task(*r, 0, caught);  // fork-join: the caller takes task 0
  if (leader_helps) {
    // Caller-inline help: claim-scan every task no worker picked up yet,
    // so the round completes even on a pool with zero live workers and
    // the submitting thread never blocks idle.
    for (int t = 1; t < tasks; ++t) run_leader_task(*r, t, caught);
    r->wait_done();  // join worker-claimed stragglers
  } else if (watchdog_ms <= 0) {
    r->wait_done();
  } else {
    watchdog_wait(*r, watchdog_ms, caught);
  }
  {
    // Unlink the (likely exhausted) round so the list stays short; a
    // worker may already have unlinked it for us.
    MutexLock lock(mu_);
    auto it = std::find(injection_.begin(), injection_.end(), r);
    if (it != injection_.end()) {
      injection_.erase(it);
      r->release();
    }
  }
  r->release();  // the submitter's reference
  active_rounds_.fetch_sub(1, std::memory_order_acq_rel);
  if (caught) std::rethrow_exception(caught);
}

void ThreadPool::run_leader_task(Round& r, int task,
                                 std::exception_ptr& caught) {
  if (!r.claim(task)) return;
  try {
    (*r.fn)(task);
  } catch (...) {
    // Deferred: the round must join before the exception can propagate
    // (workers may still be executing sibling tasks of this round).
    if (!caught) caught = std::current_exception();
  }
  r.finish();
}

void ThreadPool::watchdog_wait(Round& r, int watchdog_ms,
                               std::exception_ptr& caught) {
  std::uint64_t baseline = heartbeat_sum();
  bool tripped = false;
  MutexLock lock(r.mu);
  while (!r.done) {
    if (tripped) {
      // Whatever is still outstanding was claimed by a live-or-wedged
      // worker; only it can finish the task (a mid-task wedge may hold
      // half-written output). No further trips this round.
      while (!r.done) r.cv.wait(lock);
      break;
    }
    r.cv.wait_for(lock, std::chrono::milliseconds(watchdog_ms));
    if (r.done) break;
    const std::uint64_t now = heartbeat_sum();
    if (now != baseline) {
      baseline = now;  // workers are making progress; re-arm
      continue;
    }
    // Trip: a full period elapsed with zero heartbeat movement. Mark
    // the pool degraded (recoverable after the kThreadPool cool-down,
    // permanent when SHALOM_RECOVERY_MS=0), count it, and recover every
    // task no worker has claimed by running it on this thread.
    tripped = true;
    degraded_.store(true, std::memory_order_release);
    telemetry::note_watchdog_trip();
    health::report_degraded(health::Component::kThreadPool,
                            health::Cause::kOverload);
    std::fprintf(stderr,
                 "shalom: threadpool: watchdog tripped after %d ms with "
                 "no worker heartbeat progress (%d-task round); pool "
                 "degraded, leader recovering unclaimed tasks serially\n",
                 watchdog_ms, r.tasks);
    for (int t = 1; t < r.tasks; ++t) {
      lock.unlock();
      run_leader_task(r, t, caught);
      lock.lock();
    }
  }
}

ThreadPool::TaskSlot* ThreadPool::steal_task(int thief_id) noexcept {
  const int n = static_cast<int>(workers_.size());
  if (n <= 2) return nullptr;  // no other worker to rob
  for (int k = 1; k < n - 1; ++k) {
    // Deterministic round-robin starting after the thief: spreads
    // contention without a randomness source (lint: nondeterminism).
    const int victim = 1 + (thief_id - 1 + k) % (n - 1);
    Worker* w = workers_[static_cast<std::size_t>(victim)].get();
    if (w == nullptr) continue;
    if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolSteal))
      continue;  // injected degradation: treat this victim as empty
    if (TaskSlot* s = w->deque.steal()) return s;
  }
  return nullptr;
}

ThreadPool::TaskSlot* ThreadPool::claim_from_injection(int worker_id) {
  Round* r = nullptr;
  {
    MutexLock lock(mu_);
    while (!injection_.empty()) {
      Round* cand = injection_.front();
      if (cand->next_undist.load(std::memory_order_acquire) >= cand->tasks) {
        // Fully distributed: unlink so the list stays short (its tasks
        // live on as deque hints or claims now).
        injection_.erase(injection_.begin());
        cand->release();
        continue;
      }
      r = cand;
      r->retain();  // working reference for the distribution below
      break;
    }
  }
  if (r == nullptr) return nullptr;
  // Pull every still-undistributed task: run the first ourselves, queue
  // the rest in our own deque for thieves to share.
  TaskSlot* mine = nullptr;
  int pushed = 0;
  Worker& self = *workers_[static_cast<std::size_t>(worker_id)];
  for (;;) {
    const int i = r->next_undist.fetch_add(1, std::memory_order_acq_rel);
    if (i >= r->tasks) break;
    TaskSlot* s = &r->slots[static_cast<std::size_t>(i)];
    r->retain();  // the hint's reference (released by its consumer)
    if (mine == nullptr) {
      mine = s;
      continue;
    }
    if (self.deque.push(s)) {
      ++pushed;
    } else {
      execute_task(s);  // deque full: run it here and now
    }
  }
  if (pushed > 0) {
    {
      MutexLock lock(mu_);
      ++submit_seq_;
    }
    start_cv_.notify_all();
  }
  r->release();
  return mine;
}

void ThreadPool::execute_task(TaskSlot* slot) {
  Round* r = slot->round;
  if (r->claim(slot->task)) {
    (*r->fn)(slot->task);
    r->finish();
  }
  r->release();
}

void ThreadPool::worker_loop(int worker_id) {
  Worker& self = *workers_[static_cast<std::size_t>(worker_id)];
  std::atomic<std::uint64_t>& beat =
      heartbeats_[static_cast<std::size_t>(worker_id)];
  for (;;) {
    // Capture the wakeup sequence BEFORE hunting, so a publication that
    // races the hunt re-runs it instead of being slept through.
    std::uint64_t seen_seq = 0;
    {
      MutexLock lock(mu_);
      if (shutdown_) return;
      seen_seq = submit_seq_;
    }
    TaskSlot* slot = self.deque.pop();
    if (slot == nullptr) slot = steal_task(worker_id);
    if (slot == nullptr) slot = claim_from_injection(worker_id);
    if (slot != nullptr) {
      // Pickup heartbeat: the watchdog reads these sums to tell a slow
      // round from a wedged one.
      beat.fetch_add(1, std::memory_order_relaxed);
      if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolHeartbeat)) {
        // Simulated wedge: drop the hint unclaimed (so the watchdog
        // leader can recover the task) and park until pool shutdown -
        // exactly the observable behaviour of a worker the OS stopped
        // scheduling. Anything already queued in our deque stays
        // stealable by the healthy workers.
        slot->round->release();
        MutexLock lock(mu_);
        while (!shutdown_) start_cv_.wait(lock);
        return;
      }
      execute_task(slot);
      beat.fetch_add(1, std::memory_order_relaxed);  // completion
      continue;
    }
    MutexLock lock(mu_);
    while (!shutdown_ && submit_seq_ == seen_seq) start_cv_.wait(lock);
    if (shutdown_) return;
  }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

namespace {

/// Grows the registry to at least `threads` wide. Caller holds r.mu.
void ensure_width_locked(PoolRegistry& r, int threads) SHALOM_REQUIRES(r.mu) {
  if (r.pools.empty() || r.pools.back()->max_threads() < threads) {
    auto pool = std::make_unique<ThreadPool>(threads);
    // Under spawn failure the new pool may come back no wider than the one
    // we already have; keep the old one rather than churning out a retired
    // pool per call while the OS stays resource-starved.
    if (r.pools.empty() ||
        pool->max_threads() > r.pools.back()->max_threads())
      r.pools.push_back(std::move(pool));
  }
}

}  // namespace

void ThreadPool::reap_retired_locked(
    std::vector<std::unique_ptr<ThreadPool>>& pools) {
  // The newest pool (back) is never reaped. A retiree is quiescent when
  // no Handle pins it and no round is in flight; only quiescent retirees
  // go, and only while the list is over cap. Oldest first: the oldest
  // retirees are the least likely to still be referenced by a transient
  // global() caller.
  std::size_t i = 0;
  while (pools.size() > kMaxRetiredPools + 1 && i + 1 < pools.size()) {
    ThreadPool& p = *pools[i];
    if (p.pins_.load(std::memory_order_acquire) == 0 &&
        p.active_rounds_.load(std::memory_order_acquire) == 0) {
      pools.erase(pools.begin() +
                  static_cast<std::vector<
                      std::unique_ptr<ThreadPool>>::difference_type>(i));
    } else {
      ++i;
    }
  }
}

ThreadPool& ThreadPool::global(int threads) {
  PoolRegistry& preg = registry();
  MutexLock lock(preg.mu);
  ensure_width_locked(preg, threads);
  return *preg.pools.back();
}

ThreadPool::Handle::Handle(int threads) {
  PoolRegistry& preg = registry();
  MutexLock lock(preg.mu);
  ensure_width_locked(preg, threads);
  pool_ = preg.pools.back().get();
  pool_->pins_.fetch_add(1, std::memory_order_acq_rel);
  // Piggyback the reap pass on acquisition: the registry only grows on
  // acquisition too, so this bounds the retired list without a dedicated
  // maintenance thread.
  reap_retired_locked(preg.pools);
}

ThreadPool::Handle::~Handle() {
  pool_->pins_.fetch_sub(1, std::memory_order_acq_rel);
}

int ThreadPool::retired_pool_count_for_testing() {
  PoolRegistry& preg = registry();
  MutexLock lock(preg.mu);
  return preg.pools.empty() ? 0 : static_cast<int>(preg.pools.size()) - 1;
}

bool ThreadPool::recover_global_for_health() noexcept {
  if (health::state(health::Component::kThreadPool) ==
      health::State::kHealthy)
    return true;
  if (!health::try_begin_probation(health::Component::kThreadPool))
    return false;
  // Probe the newest pool only: it is the one pool_run routes every round
  // through, and retirees are kept solely for references already handed
  // out. Pin it like a Handle would so the reaper cannot free it while
  // the probe runs outside the registry lock.
  ThreadPool* pool = nullptr;
  {
    PoolRegistry& preg = registry();
    MutexLock lock(preg.mu);
    if (!preg.pools.empty()) {
      pool = preg.pools.back().get();
      pool->pins_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  bool ok;
  if (health::probe_faulted()) {
    ok = false;  // injected probe failure: treat exactly like a real one
  } else if (pool == nullptr) {
    ok = true;  // every pool was reaped; nothing left to be degraded
  } else {
    ok = pool->try_recover();
  }
  if (pool != nullptr) pool->pins_.fetch_sub(1, std::memory_order_acq_rel);
  if (ok) {
    health::probation_succeeded(health::Component::kThreadPool);
  } else {
    health::probation_failed(health::Component::kThreadPool);
  }
  return ok;
}

namespace {

/// Wires the pool registry's recovery probe into the health layer at
/// static-init time, so both the background Prober and recover_now()
/// drive thread-pool recovery without core ever being special-cased in
/// common/health.cpp.
struct PoolHealthHookInit {
  PoolHealthHookInit() noexcept {
    health::set_recover_hook(health::Component::kThreadPool,
                             &ThreadPool::recover_global_for_health);
  }
};
PoolHealthHookInit g_pool_health_hook_init;

}  // namespace

void pool_run(int tasks, const std::function<void(int)>& fn,
              int watchdog_ms) {
  SHALOM_REQUIRE(tasks >= 1, " tasks=", tasks);
  if (tasks == 1) {
    fn(0);
    return;
  }
  ThreadPool::Handle handle(tasks);
  ThreadPool& pool = handle.pool();
  // Passive recovery check: when the kThreadPool component is degraded
  // and its cool-down has elapsed, run one probation probe before
  // narrowing this round. One atomic load while healthy; with the
  // background Prober off, this path alone recovers the pool.
  if (pool.degraded() || pool.max_threads() < tasks)
    (void)ThreadPool::recover_global_for_health();
  // A watchdog-degraded pool has at least one wedged worker: every
  // parallel round on it would trip again and be recovered by the
  // leader, so skip straight to the serial loop.
  const bool degraded = pool.degraded();
  const int avail = degraded ? 1 : pool.max_threads();
  if (avail >= tasks) {
    pool.parallel_for(tasks, fn, watchdog_ms);
    return;
  }
  // Degraded round: fewer workers than tasks. Chunk tasks over the width
  // we have; with a single-thread (or watchdog-degraded) pool that
  // collapses to a serial loop.
  telemetry::note_threads_degraded();
  if (avail <= 1) {
    for (int id = 0; id < tasks; ++id) fn(id);
    return;
  }
  pool.parallel_for(
      avail,
      [&](int w) {
        for (int id = w; id < tasks; id += avail) fn(id);
      },
      watchdog_ms);
}

}  // namespace shalom
