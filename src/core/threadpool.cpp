#include "core/threadpool.h"

#include <memory>
#include <new>
#include <system_error>

#include "common/error.h"
#include "common/fault.h"
#include "common/thread_annotations.h"

namespace shalom {

ThreadPool::ThreadPool(int max_threads) : max_threads_(max_threads) {
  SHALOM_REQUIRE(max_threads >= 1, " max_threads=", max_threads);
  workers_.reserve(static_cast<std::size_t>(max_threads_ - 1));
  for (int w = 1; w < max_threads_; ++w) {
    try {
      if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolSpawn))
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again));
      workers_.emplace_back([this, w] { worker_loop(w); });
    } catch (const std::system_error&) {
      // Workers 1..w-1 already exist and support w-way rounds; keep them.
      max_threads_ = w;
      break;
    } catch (const std::bad_alloc&) {
      max_threads_ = w;
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(int tasks, const std::function<void(int)>& fn) {
  SHALOM_REQUIRE(tasks >= 1 && tasks <= max_threads_,
                 ": tasks must be in [1, max_threads]; tasks=", tasks,
                 " max_threads=", max_threads_,
                 " (use pool_run for width-tolerant execution)");
  if (tasks == 1) {
    fn(0);
    return;
  }
  // One fork-join round at a time: concurrent callers (threads executing
  // parallel plans, racing plan creations pre-sizing worker arenas) queue
  // here instead of clobbering the shared job slot and join barrier.
  MutexLock run_lock(run_mu_);
  {
    MutexLock lock(mu_);
    job_ = &fn;
    job_tasks_ = tasks;
    outstanding_ = tasks - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  fn(0);  // the calling thread takes task 0 (fork-join semantics)

  // Explicit predicate loop (not the lambda-predicate overload) so the
  // thread-safety analysis sees the guarded read under the held lock.
  MutexLock lock(mu_);
  while (outstanding_ != 0) done_cv_.wait(lock);
  job_ = nullptr;
}

void ThreadPool::worker_loop(int worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int tasks = 0;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation)
        start_cv_.wait(lock);
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      tasks = job_tasks_;
    }
    // Workers with id >= tasks have nothing to do this round but must
    // still report so the barrier drains.
    if (worker_id < tasks && job != nullptr) (*job)(worker_id);
    {
      MutexLock lock(mu_);
      if (worker_id < tasks) {
        if (--outstanding_ == 0) done_cv_.notify_one();
      }
    }
  }
}

ThreadPool& ThreadPool::global(int threads) {
  static Mutex mu;
  // Outgrown pools are retired to this list, never destroyed mid-run: a
  // reference handed out by an earlier call may still be inside
  // parallel_for on another thread, and ~ThreadPool under it would free
  // the mutex/condvars it is blocked on. The list stays tiny - it grows
  // only when a strictly larger thread count is first requested.
  // (Function-local, so SHALOM_GUARDED_BY cannot name it from a member
  // declaration; every access below happens under `mu`.)
  static std::vector<std::unique_ptr<ThreadPool>> pools;
  MutexLock lock(mu);
  if (pools.empty() || pools.back()->max_threads() < threads) {
    auto pool = std::make_unique<ThreadPool>(threads);
    // Under spawn failure the new pool may come back no wider than the one
    // we already have; keep the old one rather than churning out a retired
    // pool per call while the OS stays resource-starved.
    if (pools.empty() || pool->max_threads() > pools.back()->max_threads())
      pools.push_back(std::move(pool));
  }
  return *pools.back();
}

void pool_run(int tasks, const std::function<void(int)>& fn) {
  SHALOM_REQUIRE(tasks >= 1, " tasks=", tasks);
  if (tasks == 1) {
    fn(0);
    return;
  }
  ThreadPool& pool = ThreadPool::global(tasks);
  const int avail = pool.max_threads();
  if (avail >= tasks) {
    pool.parallel_for(tasks, fn);
    return;
  }
  // Degraded round: fewer workers than tasks. Chunk tasks over the width
  // we have; with a single-thread pool that collapses to a serial loop.
  telemetry::note_threads_degraded();
  if (avail <= 1) {
    for (int id = 0; id < tasks; ++id) fn(id);
    return;
  }
  pool.parallel_for(avail, [&](int w) {
    for (int id = w; id < tasks; id += avail) fn(id);
  });
}

}  // namespace shalom
