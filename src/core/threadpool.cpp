#include "core/threadpool.h"

#include <memory>
#include <mutex>

#include "common/error.h"

namespace shalom {

ThreadPool::ThreadPool(int max_threads) : max_threads_(max_threads) {
  SHALOM_REQUIRE(max_threads >= 1, " max_threads=", max_threads);
  workers_.reserve(max_threads_ - 1);
  for (int w = 1; w < max_threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::parallel_for(int tasks, const std::function<void(int)>& fn) {
  SHALOM_REQUIRE(tasks >= 1 && tasks <= max_threads_, " tasks=", tasks,
                 " max_threads=", max_threads_);
  if (tasks == 1) {
    fn(0);
    return;
  }
  // One fork-join round at a time: concurrent callers (threads executing
  // parallel plans, racing plan creations pre-sizing worker arenas) queue
  // here instead of clobbering the shared job slot and join barrier.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_tasks_ = tasks;
    outstanding_ = tasks - 1;
    ++generation_;
  }
  start_cv_.notify_all();

  fn(0);  // the calling thread takes task 0 (fork-join semantics)

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::worker_loop(int worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    int tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      tasks = job_tasks_;
    }
    // Workers with id >= tasks have nothing to do this round but must
    // still report so the barrier drains.
    if (worker_id < tasks && job != nullptr) (*job)(worker_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (worker_id < tasks) {
        if (--outstanding_ == 0) done_cv_.notify_one();
      }
    }
  }
}

ThreadPool& ThreadPool::global(int threads) {
  static std::mutex mu;
  // Outgrown pools are retired to this list, never destroyed mid-run: a
  // reference handed out by an earlier call may still be inside
  // parallel_for on another thread, and ~ThreadPool under it would free
  // the mutex/condvars it is blocked on. The list stays tiny - it grows
  // only when a strictly larger thread count is first requested.
  static std::vector<std::unique_ptr<ThreadPool>> pools;
  std::lock_guard<std::mutex> lock(mu);
  if (pools.empty() || pools.back()->max_threads() < threads)
    pools.push_back(std::make_unique<ThreadPool>(threads));
  return *pools.back();
}

}  // namespace shalom
