#include "core/gemm.h"

#include "core/plan.h"

namespace shalom {

// The decision chain (blocking, packing, fused-pack eligibility, arena
// sizing) and the loop nest both live in core/plan.cpp: gemm_serial is one
// throwaway plan built and executed in place, which keeps it bitwise
// identical to plan_execute on a cached plan of the same shape.
template <typename T>
void gemm_serial(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg) {
  detail::check_gemm_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    detail::scale_c(M, N, beta, C, ldc);
    return;
  }
  Config serial_cfg = cfg;
  serial_cfg.threads = 1;
  const GemmPlan<T> plan = plan_create<T>(mode, M, N, K, serial_cfg);
  detail::execute_serial(plan, alpha, A, lda, B, ldb, beta, C, ldc);
}

template void gemm_serial<float>(Mode, index_t, index_t, index_t, float,
                                 const float*, index_t, const float*,
                                 index_t, float, float*, index_t,
                                 const Config&);
template void gemm_serial<double>(Mode, index_t, index_t, index_t, double,
                                  const double*, index_t, const double*,
                                  index_t, double, double*, index_t,
                                  const Config&);

}  // namespace shalom
