#include "core/gemm.h"

#include <string>

#include "common/error.h"
#include "common/fault.h"
#include "core/plan.h"

namespace shalom {

// The decision chain (blocking, packing, fused-pack eligibility, arena
// sizing) and the loop nest both live in core/plan.cpp: gemm_serial is one
// throwaway plan built and executed in place, which keeps it bitwise
// identical to plan_execute on a cached plan of the same shape.
template <typename T>
void gemm_serial(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg) {
  detail::check_gemm_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    detail::scale_c(M, N, beta, C, ldc);
    return;
  }
  Config serial_cfg = cfg;
  serial_cfg.threads = 1;
  const GemmPlan<T> plan = plan_create<T>(mode, M, N, K, serial_cfg);
  detail::execute_serial(plan, alpha, A, lda, B, ldb, beta, C, ldc);
}

template void gemm_serial<float>(Mode, index_t, index_t, index_t, float,
                                 const float*, index_t, const float*,
                                 index_t, float, float*, index_t,
                                 const Config&);
template void gemm_serial<double>(Mode, index_t, index_t, index_t, double,
                                  const double*, index_t, const double*,
                                  index_t, double, double*, index_t,
                                  const Config&);

namespace detail {

namespace {

/// Records one anomalous operand and, under kFail, aborts the call before
/// any arithmetic can smear the non-finite values across C.
void numeric_anomaly(const char* operand, numerics::Policy policy) {
  telemetry::note_numeric_anomaly();
  if (policy == numerics::Policy::kFail)
    throw numeric_error(std::string("shalom: non-finite value (NaN/Inf) "
                                    "detected in operand ") +
                        operand);
}

}  // namespace

template <typename T>
void numeric_guard_operands(Mode mode, index_t M, index_t N, index_t K,
                            const T* A, index_t lda, const T* B, index_t ldb,
                            T beta, const T* C, index_t ldc,
                            numerics::Policy policy) {
  if (policy == numerics::Policy::kIgnore) return;
  // Validate the argument contract before scanning: the sampler trusts
  // (rows, cols, ld), and the dispatch path re-validates identically so
  // this adds no new failure mode.
  check_gemm_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  if (M > 0 && K > 0) {
    const index_t ar = (mode.a == Trans::N) ? M : K;
    const index_t ac = (mode.a == Trans::N) ? K : M;
    if (numerics::has_nonfinite(A, ar, ac, lda)) numeric_anomaly("A", policy);
  }
  if (K > 0 && N > 0) {
    const index_t br = (mode.b == Trans::N) ? K : N;
    const index_t bc = (mode.b == Trans::N) ? N : K;
    if (numerics::has_nonfinite(B, br, bc, ldb)) numeric_anomaly("B", policy);
  }
  // C's prior contents only flow into the result when beta reads them.
  if (beta != T{0} && M > 0 && N > 0 &&
      numerics::has_nonfinite(C, M, N, ldc))
    numeric_anomaly("C", policy);
}

template <typename T>
void numeric_guard_result(index_t M, index_t N, const T* C, index_t ldc,
                          numerics::Policy policy) {
  if (policy == numerics::Policy::kIgnore) return;
  if (M > 0 && N > 0 && numerics::has_nonfinite(C, M, N, ldc)) {
    telemetry::note_numeric_anomaly();
    if (policy == numerics::Policy::kFail)
      throw numeric_error(
          "shalom: non-finite value (NaN/Inf) in the computed result C");
  }
}

template void numeric_guard_operands<float>(Mode, index_t, index_t, index_t,
                                            const float*, index_t,
                                            const float*, index_t, float,
                                            const float*, index_t,
                                            numerics::Policy);
template void numeric_guard_operands<double>(Mode, index_t, index_t, index_t,
                                             const double*, index_t,
                                             const double*, index_t, double,
                                             const double*, index_t,
                                             numerics::Policy);
template void numeric_guard_result<float>(index_t, index_t, const float*,
                                          index_t, numerics::Policy);
template void numeric_guard_result<double>(index_t, index_t, const double*,
                                           index_t, numerics::Policy);

}  // namespace detail

}  // namespace shalom
