#include "core/gemm.h"

#include <algorithm>

#include "common/aligned_buffer.h"
#include "common/error.h"
#include "core/dispatch.h"
#include "core/model.h"
#include "core/pack.h"

namespace shalom {

namespace {

template <typename T>
void scale_c(index_t M, index_t N, T beta, T* C, index_t ldc) {
  if (beta == T{1}) return;
  for (index_t i = 0; i < M; ++i) {
    T* row = C + i * ldc;
    if (beta == T{0}) {
      std::fill(row, row + N, T{});
    } else {
      for (index_t j = 0; j < N; ++j) row[j] *= beta;
    }
  }
}

/// Validates operand dimensions against the mode.
template <typename T>
void check_args(Mode mode, index_t M, index_t N, index_t K, const T* A,
                index_t lda, const T* B, index_t ldb, const T* C,
                index_t ldc) {
  SHALOM_REQUIRE(M >= 0 && N >= 0 && K >= 0, " M=", M, " N=", N, " K=", K);
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;
  SHALOM_REQUIRE(lda >= std::max<index_t>(1, a_cols), " lda=", lda);
  SHALOM_REQUIRE(ldb >= std::max<index_t>(1, b_cols), " ldb=", ldb);
  SHALOM_REQUIRE(ldc >= std::max<index_t>(1, N), " ldc=", ldc);
  if (M > 0 && N > 0) SHALOM_REQUIRE(C != nullptr);
  if (M > 0 && K > 0) SHALOM_REQUIRE(A != nullptr);
  if (K > 0 && N > 0) SHALOM_REQUIRE(B != nullptr);
}

/// Everything the inner tile loop needs about one (ii, kk) block.
template <typename T>
struct BlockCtx {
  // A access: direct (row-major, stride lda) or packed column slivers.
  bool a_packed = false;
  const T* a_base = nullptr;  // block corner (direct) or packed buffer
  index_t a_ld = 0;           // lda (direct) or mr sliver stride (packed)

  // B access for the current sliver.
  const T* b_src = nullptr;
  index_t b_ld = 0;  // ldb (direct) or nr (packed)
  bool b_packed = false;
};

/// Runs the i0 row-tile loop for one B sliver.
template <typename T>
void run_row_tiles(const BlockCtx<T>& ctx, const model::Tile& tile,
                   const Config& cfg, index_t i_start, index_t mcur,
                   int n_eff, index_t kcur, T* c_col, index_t ldc, T alpha,
                   T beta_eff) {
  using ukr::AAccess;
  using ukr::BAccess;
  for (index_t i0 = i_start; i0 < mcur; i0 += tile.mr) {
    const int m_eff = static_cast<int>(
        std::min<index_t>(tile.mr, mcur - i0));
    const T* a_tile =
        ctx.a_packed
            ? ctx.a_base + (i0 / tile.mr) * pack::a_sliver_elems(kcur, tile.mr)
            : ctx.a_base + i0 * ctx.a_ld;
    T* c_tile = c_col + i0 * ldc;
    const bool edge = m_eff < tile.mr || n_eff < tile.nr;

    if (edge && !cfg.optimized_edges) {
      // Ablation: remainder tiles processed by the unscheduled scalar
      // routine (the cost model of existing libraries' edge handling).
      if (ctx.a_packed) {
        ukr::kern_scalar<T, AAccess::kPacked, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      } else {
        ukr::kern_scalar<T, AAccess::kDirect, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      }
      continue;
    }

    if (ctx.a_packed) {
      if (ctx.b_packed) {
        ukr::run_main_tile<T, AAccess::kPacked, BAccess::kPacked>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      } else {
        ukr::run_main_tile<T, AAccess::kPacked, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      }
    } else {
      if (ctx.b_packed) {
        ukr::run_main_tile<T, AAccess::kDirect, BAccess::kPacked>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      } else {
        ukr::run_main_tile<T, AAccess::kDirect, BAccess::kDirect>(
            m_eff, n_eff, kcur, a_tile, ctx.a_ld, ctx.b_src, ctx.b_ld,
            c_tile, ldc, alpha, beta_eff);
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm_serial(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg) {
  check_args(mode, M, N, K, A, lda, B, ldb, C, ldc);
  if (M == 0 || N == 0) return;
  if (K == 0 || alpha == T{0}) {
    scale_c(M, N, beta, C, ldc);
    return;
  }

  const arch::MachineDescriptor& mach = cfg.resolved_machine();
  constexpr int kLanes = simd::vec_of_t<T>::kLanes;

  model::Tile tile = model::tile_for<T>(mach);
  tile.mr = std::min(tile.mr, ukr::kMaxMr);
  tile.nr = std::min(tile.nr, ukr::kMaxNrv * kLanes);

  // Fast path for small GEMMs (the library's headline workload): when both
  // operands are read in place - mode NN with B L1-resident, the paper's
  // no-packing case - the blocking solver, the packing plan and the arena
  // are all dead weight, and for an 8x8x8 problem they would dominate the
  // runtime. Jump straight to the register-tile loops over the full K.
  if (cfg.selective_packing && cfg.optimized_edges && mode.a == Trans::N &&
      mode.b == Trans::N &&
      static_cast<std::size_t>(K) * N * sizeof(T) <= mach.l1d.size_bytes) {
    for (index_t j0 = 0; j0 < N; j0 += tile.nr) {
      const int n_eff =
          static_cast<int>(std::min<index_t>(tile.nr, N - j0));
      for (index_t i0 = 0; i0 < M; i0 += tile.mr) {
        const int m_eff =
            static_cast<int>(std::min<index_t>(tile.mr, M - i0));
        ukr::run_main_tile<T, ukr::AAccess::kDirect, ukr::BAccess::kDirect>(
            m_eff, n_eff, K, A + i0 * lda, lda, B + j0, ldb,
            C + i0 * ldc + j0, ldc, alpha, beta);
      }
    }
    return;
  }

  model::Blocking blk = model::solve_blocking<T>(mach, tile, M, N, K);
  if (cfg.kc_override > 0) blk.kc = std::min(cfg.kc_override, K);
  if (cfg.mc_override > 0)
    blk.mc = std::max<index_t>(tile.mr,
                               cfg.mc_override / tile.mr * tile.mr);
  if (cfg.nc_override > 0)
    blk.nc = std::max<index_t>(tile.nr,
                               cfg.nc_override / tile.nr * tile.nr);
  const model::PackDecision plan =
      model::decide_packing<T>(mach, mode, M, N, K, cfg);

  const bool a_packed = plan.a != model::PackPlan::kNone;
  const bool b_packed = plan.b != model::PackPlan::kNone;
  // Fused (overlapped) A packing for the transposed-A modes (Section
  // 4.3): the first column sliver's stripes compute while streaming op(A)
  // into Ac; later slivers reuse the packed block.
  const bool a_fused = a_packed && plan.a == model::PackPlan::kPackFused &&
                       mode.a == Trans::T && tile.mr == ukr::kMaxMr &&
                       cfg.optimized_edges;
  // Fused (overlapped) B packing needs in-place A reads and a full-height
  // first stripe (the NN/NT kernels). For TN/TT it is A that gets the
  // fused treatment (a_fused above); fusing both at once would double the
  // pack stores inside one kernel for no benefit.
  const bool b_fusable = b_packed &&
                         plan.b == model::PackPlan::kPackFused &&
                         !a_packed && tile.mr == ukr::kMaxMr &&
                         tile.nr == ukr::kNrFull<T>;

  // Arena: [Ac panel][Bc sliver 0][Bc sliver 1], each with vector slack.
  const index_t ac_elems =
      a_packed ? pack::a_panel_elems(blk.mc, blk.kc, tile.mr) : 0;
  const index_t bc_sliver = b_packed
                                ? pack::b_sliver_elems(blk.kc, tile.nr) +
                                      ukr::kPackSlackElems
                                : 0;
  AlignedBuffer& arena = thread_pack_arena();
  arena.reserve(static_cast<std::size_t>(ac_elems + ukr::kPackSlackElems +
                                         2 * bc_sliver) *
                sizeof(T));
  T* const ac = arena.as<T>();
  T* const bc_base = ac + ac_elems + ukr::kPackSlackElems;

  for (index_t jj = 0; jj < N; jj += blk.nc) {
    const index_t ncur = std::min<index_t>(blk.nc, N - jj);
    for (index_t ii = 0; ii < M; ii += blk.mc) {
      const index_t mcur = std::min<index_t>(blk.mc, M - ii);
      for (index_t kk = 0; kk < K; kk += blk.kc) {
        const index_t kcur = std::min<index_t>(blk.kc, K - kk);
        const T beta_eff = (kk == 0) ? beta : T{1};

        BlockCtx<T> ctx;
        ctx.a_packed = a_packed;
        if (a_packed) {
          if (a_fused) {
            // Deferred: the s == 0 stripe loop below fills Ac.
          } else if (mode.a == Trans::N) {
            pack::pack_a_n(A + ii * lda + kk, lda, mcur, kcur, tile.mr, ac);
          } else {
            pack::pack_a_t(A + kk * lda + ii, lda, mcur, kcur, tile.mr, ac);
          }
          ctx.a_base = ac;
          ctx.a_ld = tile.mr;
        } else {
          SHALOM_ASSERT(mode.a == Trans::N);
          ctx.a_base = A + ii * lda + kk;
          ctx.a_ld = lda;
        }

        const index_t nslivers = (ncur + tile.nr - 1) / tile.nr;
        // True when the previous fused call already streamed the current
        // sliver into its packed buffer (pack-ahead t = 1 pipeline).
        bool prepacked = false;
        for (index_t s = 0; s < nslivers; ++s) {
          const index_t j0 = s * tile.nr;
          const int n_eff = static_cast<int>(
              std::min<index_t>(tile.nr, ncur - j0));
          T* const c_col = C + ii * ldc + jj + j0;
          index_t i_start = 0;

          if (!b_packed) {
            SHALOM_ASSERT(mode.b == Trans::N);
            ctx.b_src = B + kk * ldb + jj + j0;
            ctx.b_ld = ldb;
            ctx.b_packed = false;
          } else {
            T* const bc_cur = bc_base + (s % 2) * bc_sliver;
            T* const bc_next = bc_base + ((s + 1) % 2) * bc_sliver;
            const bool fused = b_fusable && mcur >= tile.mr;

            if (fused && mode.b == Trans::N) {
              // NN fused pack (Fig. 4). With pack-ahead (t = 1) the
              // current sliver arrives pre-packed from the previous
              // iteration, and this call streams sliver s+1 into the
              // other buffer while computing the first C stripe. Only
              // full-width next slivers are streamed ahead; an edge
              // final sliver packs itself on arrival.
              const bool next_full =
                  s + 1 < nslivers && ncur - (s + 1) * tile.nr >= tile.nr;
              const bool ahead = plan.pack_ahead == 1 && next_full;
              const T* b_cur =
                  prepacked ? bc_cur : B + kk * ldb + jj + j0;
              const index_t b_cur_ld = prepacked ? tile.nr : ldb;
              const T* b_next =
                  ahead ? B + kk * ldb + jj + j0 + tile.nr : nullptr;
              ukr::run_fused_pack_nn<T>(
                  !prepacked, ahead, n_eff, kcur, A + ii * lda + kk, lda,
                  b_cur, b_cur_ld, bc_cur, b_next, ldb,
                  ahead ? bc_next : nullptr, c_col, ldc, alpha, beta_eff);
              prepacked = ahead;
              i_start = tile.mr;
            } else if (fused && mode.b == Trans::T && kcur >= 32) {
              // NT fused pack (Fig. 5 / Algorithm 3): inner-product
              // compute + scatter, 3 op(B) columns per call. The kernel
              // ends with a horizontal reduction of all mr x nr
              // accumulators, a fixed cost only a long enough K loop
              // amortizes; tiny-K slivers take the plain-pack path below
              // instead (same results, no reduction).
              if (n_eff < tile.nr)
                std::fill(bc_cur, bc_cur + kcur * tile.nr, T{});
              const T* b_cols = B + (jj + j0) * ldb + kk;
              for (int jb = 0; jb < n_eff; jb += 3) {
                const int w = std::min(3, n_eff - jb);
                const bool store_full = jb + w < n_eff;
                ukr::run_fused_pack_nt<T>(w, kcur, A + ii * lda + kk, lda,
                                          b_cols, ldb, bc_cur, jb, tile.nr,
                                          store_full, c_col, ldc, alpha,
                                          beta_eff);
              }
              i_start = tile.mr;
            } else {
              // Pack-ahead (sequential) path: baseline behaviour and the
              // TN/TT + short-stripe fallbacks.
              if (mode.b == Trans::N) {
                pack::pack_b_n(B + kk * ldb + jj + j0, ldb, kcur, n_eff,
                               tile.nr, bc_cur);
              } else {
                pack::pack_b_t(B + (jj + j0) * ldb + kk, ldb, kcur, n_eff,
                               tile.nr, bc_cur);
              }
            }
            ctx.b_src = bc_cur;
            ctx.b_ld = tile.nr;
            ctx.b_packed = true;
          }

          if (a_fused && s == 0) {
            // First sliver: every full stripe computes its C tile with
            // the fused kernel while packing its Ac sliver; an edge
            // stripe packs plainly then runs the packed-A kernel.
            for (index_t i0 = 0; i0 < mcur; i0 += tile.mr) {
              const int m_eff = static_cast<int>(
                  std::min<index_t>(tile.mr, mcur - i0));
              T* const ac_sliver =
                  ac + (i0 / tile.mr) * pack::a_sliver_elems(kcur, tile.mr);
              const T* a_cols = A + kk * lda + ii + i0;
              T* const c_tile = c_col + i0 * ldc;
              if (m_eff == tile.mr) {
                ukr::run_fused_pack_tn<T>(ctx.b_packed, n_eff, kcur,
                                          a_cols, lda, ac_sliver,
                                          ctx.b_src, ctx.b_ld, c_tile, ldc,
                                          alpha, beta_eff);
              } else {
                pack::pack_a_t(a_cols, lda, m_eff, kcur, tile.mr,
                               ac_sliver);
                if (ctx.b_packed) {
                  ukr::run_main_tile<T, ukr::AAccess::kPacked,
                                     ukr::BAccess::kPacked>(
                      m_eff, n_eff, kcur, ac_sliver, tile.mr, ctx.b_src,
                      ctx.b_ld, c_tile, ldc, alpha, beta_eff);
                } else {
                  ukr::run_main_tile<T, ukr::AAccess::kPacked,
                                     ukr::BAccess::kDirect>(
                      m_eff, n_eff, kcur, ac_sliver, tile.mr, ctx.b_src,
                      ctx.b_ld, c_tile, ldc, alpha, beta_eff);
                }
              }
            }
            continue;
          }
          run_row_tiles(ctx, tile, cfg, i_start, mcur, n_eff, kcur, c_col,
                        ldc, alpha, beta_eff);
        }
      }
    }
  }
}

template void gemm_serial<float>(Mode, index_t, index_t, index_t, float,
                                 const float*, index_t, const float*,
                                 index_t, float, float*, index_t,
                                 const Config&);
template void gemm_serial<double>(Mode, index_t, index_t, index_t, double,
                                  const double*, index_t, const double*,
                                  index_t, double, double*, index_t,
                                  const Config&);

}  // namespace shalom
