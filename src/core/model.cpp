#include "core/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "core/kernel_contracts.h"

namespace shalom::model {

double tile_cmr(int mr, int nr) { return contracts::tile_cmr(mr, nr); }

Tile solve_tile(int vector_registers, int lanes_per_vector) {
  SHALOM_REQUIRE(vector_registers >= 4, " registers=", vector_registers);
  SHALOM_REQUIRE(lanes_per_vector >= 1, " lanes=", lanes_per_vector);

  // Small GEMMs call this on every gemm(); memoize the last few configs
  // (thread-local: lock-free and trivially safe under the parallel driver).
  struct CacheEntry {
    int regs = -1;
    int lanes = -1;
    Tile tile;
  };
  thread_local CacheEntry cache[4];
  const int slot = (vector_registers + lanes_per_vector) & 3;
  if (cache[slot].regs == vector_registers &&
      cache[slot].lanes == lanes_per_vector) {
    return cache[slot].tile;
  }

  // The search itself (register budget, CMR objective, larger-C-tile
  // tie-break) is the constexpr definition in core/kernel_contracts.h -
  // the same one the registration-site static_asserts evaluate, so the
  // runtime model can never drift from the compile-time contracts.
  const contracts::Tile best =
      contracts::solve_tile(vector_registers, lanes_per_vector);
  cache[slot] = {vector_registers, lanes_per_vector, {best.mr, best.nr}};
  return cache[slot].tile;
}

namespace {

index_t round_down_multiple(index_t value, index_t step) {
  return std::max<index_t>(step, value / step * step);
}

}  // namespace

template <typename T>
Blocking solve_blocking(const arch::MachineDescriptor& m, Tile tile,
                        index_t M, index_t N, index_t K) {
  const index_t elem = sizeof(T);
  Blocking b;

  // kc: one kc x nr sliver of Bc plus the mr x kc A stripe live in L1
  // together with the C tile; budget half the L1 for the Bc sliver.
  const index_t l1_elems = static_cast<index_t>(m.l1d.size_bytes) / elem;
  index_t kc = l1_elems / (2 * tile.nr);
  kc = std::clamp<index_t>(kc, tile.nr, contracts::kMaxKc);
  kc = std::min(kc, K);

  // mc: the mc x kc A block should occupy at most half the (per-core
  // share of the) L2.
  const index_t l2_elems =
      static_cast<index_t>(m.l2.size_bytes / m.l2.shared_by_cores) / elem;
  index_t mc = l2_elems / (2 * kc);
  mc = round_down_multiple(mc, tile.mr);
  mc = std::min(mc, std::max<index_t>(tile.mr, M));

  // nc: the kc x nc Bc panel should fit the LLC (or L2 when no L3).
  const index_t llc_elems = static_cast<index_t>(m.llc().size_bytes) / elem;
  index_t nc = llc_elems / (2 * kc);
  nc = round_down_multiple(nc, tile.nr);
  nc = std::min(nc, std::max<index_t>(tile.nr, N));

  b.mc = mc;
  b.kc = kc;
  b.nc = nc;
  return b;
}

template Blocking solve_blocking<float>(const arch::MachineDescriptor&, Tile,
                                        index_t, index_t, index_t);
template Blocking solve_blocking<double>(const arch::MachineDescriptor&, Tile,
                                         index_t, index_t, index_t);

template <typename T>
PackDecision decide_packing(const arch::MachineDescriptor& m, Mode mode,
                            index_t M, index_t N, index_t K,
                            const Config& cfg) {
  const std::size_t elem = sizeof(T);
  const std::size_t bytes_a = static_cast<std::size_t>(M) * K * elem;
  const std::size_t bytes_b = static_cast<std::size_t>(K) * N * elem;
  const std::size_t l1 = m.l1d.size_bytes;
  const std::size_t llc = m.llc().size_bytes;

  PackDecision d;

  if (!cfg.selective_packing) {
    // Baseline behaviour (OpenBLAS/BLIS): both operands always packed in a
    // separate pass, regardless of size or mode.
    d.a = PackPlan::kPackAhead;
    d.b = PackPlan::kPackAhead;
    d.pack_ahead = 0;
    return d;
  }

  const PackPlan fused_or_ahead =
      cfg.fused_packing ? PackPlan::kPackFused : PackPlan::kPackAhead;

  // Matrix B (columns of the product).
  if (mode.b == Trans::T) {
    // NT/TT: op(B) rows are strided in memory - condition (1) of Section
    // 4.1 (cache-unfriendly access), so B is always packed.
    d.b = fused_or_ahead;
  } else {
    // NN/TN: B is row-contiguous along N; pack only when it cannot stay
    // L1 resident (Algorithm 1, line 5).
    d.b = bytes_b > l1 ? fused_or_ahead : PackPlan::kNone;
  }

  // Matrix A (rows of the product). Row-major N-mode access to A is
  // nearly continuous (Section 4.2: "we do not pack A even [if] it is the
  // only matrix larger than the L1"), so only transposed A is packed.
  d.a = (mode.a == Trans::T) ? fused_or_ahead : PackPlan::kNone;

  // Pack-ahead distance t: 0 for small/medium B (within LLC), 1 for
  // large/irregular B (Section 5.3.2).
  const std::size_t packed_bytes = (mode.a == Trans::T) ? bytes_a : bytes_b;
  d.pack_ahead = packed_bytes > llc ? 1 : 0;
  return d;
}

template PackDecision decide_packing<float>(const arch::MachineDescriptor&,
                                            Mode, index_t, index_t, index_t,
                                            const Config&);
template PackDecision decide_packing<double>(const arch::MachineDescriptor&,
                                             Mode, index_t, index_t, index_t,
                                             const Config&);

Partition solve_partition(int threads, index_t M, index_t N, Tile tile) {
  SHALOM_REQUIRE(threads >= 1, " threads=", threads);
  SHALOM_REQUIRE(M >= 1 && N >= 1, " M=", M, " N=", N);

  // Cap the usable thread count so every thread can own at least one
  // register tile of C in each dimension.
  const int max_tm = static_cast<int>(
      std::max<index_t>(1, (M + tile.mr - 1) / tile.mr));
  const int max_tn = static_cast<int>(
      std::max<index_t>(1, (N + tile.nr - 1) / tile.nr));
  int t = std::min<long long>(threads,
                              static_cast<long long>(max_tm) * max_tn);
  t = std::max(t, 1);

  // Paper Eq. 4: the CMR of a per-thread block is maximized at
  // Tn = sqrt(T*N/M); take the ceiling ("up-bound") and move up to the
  // nearest divisor of T so cores divide evenly (T mod Tn == 0).
  const double ideal =
      std::sqrt(static_cast<double>(t) * static_cast<double>(N) /
                static_cast<double>(M));
  int tn_target = static_cast<int>(std::ceil(ideal));
  tn_target = std::clamp(tn_target, 1, t);

  auto divides = [&](int x) { return t % x == 0; };

  int tn = t;  // fallback: all threads along N
  for (int cand = tn_target; cand <= t; ++cand) {
    if (divides(cand) && cand <= max_tn && t / cand <= max_tm) {
      tn = cand;
      break;
    }
  }
  if (!divides(tn) || tn > max_tn || t / tn > max_tm) {
    // Walk down instead (can happen when max_tn caps the search).
    for (int cand = std::min(tn_target, max_tn); cand >= 1; --cand) {
      if (divides(cand) && t / cand <= max_tm) {
        tn = cand;
        break;
      }
    }
  }

  // Section 6 contract: the chosen grid divides evenly (T mod Tn == 0);
  // both divisor walks only ever select divisors, so this cannot fire
  // unless the search above is edited into inconsistency.
  SHALOM_ASSERT(contracts::valid_partition(t, tn));

  Partition p;
  p.tn = tn;
  p.tm = t / tn;
  return p;
}

}  // namespace shalom::model
