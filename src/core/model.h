// Analytic models (paper Sections 4-6).
//
// Everything LibShalom decides at run time is a closed-form or small-search
// model over the MachineDescriptor, kept here as pure functions so each is
// unit-testable against the constants the paper reports:
//   * micro-kernel tile (mr, nr)       - Eq. 1 + Eq. 2  -> (7, 12) FP32,
//                                                          (7, 6)  FP64
//   * cache blocking (mc, kc, nc)      - Section 4 / Goto blocking
//   * packing decision                 - Section 4.1 predicates
//   * parallel partition (Tm, Tn)      - Eq. 3 + Eq. 4
#pragma once

#include <cstddef>

#include "arch/machine.h"
#include "common/matrix.h"
#include "core/types.h"

namespace shalom::model {

/// Register-tile shape of the micro-kernel.
struct Tile {
  int mr = 0;
  int nr = 0;
};

/// Computation-to-memory ratio of an mr x nr outer-product micro-kernel
/// (paper Eq. 2): 2*mr*nr FLOPs per (mr + nr) elements loaded.
double tile_cmr(int mr, int nr);

/// Solves paper Eq. 1/2: maximize CMR subject to the register budget
///   mr + nr/j + mr*nr/j <= registers - 1   and   nr % j == 0
/// where j = lanes per vector. Exhaustive search over the (tiny) feasible
/// set; equivalent to the paper's Lagrange-multiplier solution but exact
/// over integers.
Tile solve_tile(int vector_registers, int lanes_per_vector);

/// Convenience: tile for an element type on a machine.
template <typename T>
Tile tile_for(const arch::MachineDescriptor& m) {
  const int lanes = m.vector_bits / (8 * static_cast<int>(sizeof(T)));
  return solve_tile(m.vector_registers, lanes);
}

/// Goto-style cache blocking derived from cache capacities.
struct Blocking {
  index_t mc = 0;
  index_t kc = 0;
  index_t nc = 0;
};

/// kc: a kc x nr sliver of Bc plus the A stripe must stay L1-resident.
/// mc: an mc x kc block of A must fit in half the L2.
/// nc: a kc x nc panel of Bc must fit in the LLC.
/// All clamped to the problem size and rounded to tile multiples.
template <typename T>
Blocking solve_blocking(const arch::MachineDescriptor& m, Tile tile,
                        index_t M, index_t N, index_t K);

/// How the driver should treat operand packing for one GEMM call
/// (paper Section 4.2/4.3).
enum class PackPlan {
  kNone,        // operand is cache friendly; read it in place
  kPackFused,   // pack inside the micro-kernel, overlapped with FMAs
  kPackAhead,   // pack in a separate pass (baseline / ablation behaviour)
};

/// Per-call packing decision for both operands.
struct PackDecision {
  PackPlan a = PackPlan::kNone;
  PackPlan b = PackPlan::kNone;
  /// Pack-ahead distance t (Section 5.3.2): 0 = pack only the current
  /// sliver (medium matrices), 1 = additionally pack the next sliver
  /// (large/irregular matrices).
  int pack_ahead = 0;
};

/// Implements the predicates of Section 4: B is packed under NN only when
/// it exceeds the L1 capacity; under NT it is always packed (discontinuous
/// access); A is packed only when it is transposed (TN/TT).
template <typename T>
PackDecision decide_packing(const arch::MachineDescriptor& m, Mode mode,
                            index_t M, index_t N, index_t K,
                            const Config& cfg);

/// 2-D thread grid for parallel GEMM.
struct Partition {
  int tm = 1;  // threads along M
  int tn = 1;  // threads along N
};

/// Paper Eq. 3/4: Tn = ceil(sqrt(T*N/M)), adjusted up to the nearest
/// divisor of T, then clamped so every thread owns at least one register
/// tile in each dimension.
Partition solve_partition(int threads, index_t M, index_t N, Tile tile);

}  // namespace shalom::model
