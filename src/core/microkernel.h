// Register-blocked micro-kernels (paper Section 5).
//
// Three kernel families, exactly as the paper structures them:
//
//  1. kern_main      - the mr x nr outer-product kernel (Algorithm 2).
//                      Template policies select how each operand is read:
//                      A direct (row-major, the NN/NT no-pack-A path) or
//                      packed (column slivers, the TN/TT path); B direct
//                      (row-major, the small-B no-pack path) or packed
//                      (row slivers).
//  2. kern_fused_pack_nn - Algorithm 1 lines 6-8: computes the first
//                      mr-row stripe of C while copying the B rows it
//                      loads into the packed buffer Bc, optionally packing
//                      one sliver ahead (t = 1, Section 5.3.2 / Fig. 4).
//  3. kern_fused_pack_nt - Algorithm 3 / Fig. 5: the 7x3 inner-product
//                      kernel that updates C while scattering B^T into Bc.
//
// Plus kern_scalar, the deliberately unscheduled fallback used when the
// Fig. 6b edge optimization is disabled (ablation of Section 8.5).
//
// All kernels compute  C = beta * C + alpha * acc  on an (m_eff x n_eff)
// tile; beta == 0 never reads C (NaN-safe, BLAS semantics).
//
// Loop bodies are written with compile-time-unrolled lambdas so that at
// -O3 every iteration is a straight-line schedule: loads interleaved
// between FMAs with the dependence distance the paper's Fig. 6b asks for.
#pragma once

#include <utility>

#include "common/matrix.h"
#include "core/kernel_contracts.h"
#include "simd/vec128.h"

#define SHALOM_RESTRICT __restrict__
// Lambdas in kernel bodies rely on -O3 inlining; the macro marks intent.
#define SHALOM_INLINE_LAMBDA

namespace shalom::ukr {

/// How the micro-kernel reads matrix A.
enum class AAccess {
  kDirect,      ///< a(i,k) = a[i*lda + k] (row-major, in place)
  kPacked,      ///< a(i,k) = a[k*lda + i] (column sliver; lda = mr stride)
  kDirectTrans, ///< a(i,k) = a[k*lda + i] (transposed storage, in place:
                ///< the TN/TT path; op(A) columns are contiguous runs)
};

/// How the micro-kernel reads matrix B.
enum class BAccess {
  kDirect,  ///< b(k,j) = b[k*ldb + j]   (row-major, in place)
  kPacked,  ///< b(k,j) = b[k*ldb + j]   (row sliver; ldb = nr stride,
            ///<                          zero-padded past the edge)
};

/// Invokes f(integral_constant<int,0>), ..., f(integral_constant<int,N-1>).
template <int N, class F>
SHALOM_INLINE void unroll(F&& f) {
  [&]<int... I>(std::integer_sequence<int, I...>) {
    (f(std::integral_constant<int, I>{}), ...);
  }(std::make_integer_sequence<int, N>{});
}

/// Extra elements allocated at the tail of every packed buffer so packed-A
/// column loads may read one full vector past the last column. Defined by
/// the kernel-contract header; aliased here for the kernel code.
inline constexpr index_t kPackSlackElems = contracts::kPackSlackElems;

// ---------------------------------------------------------------------------
// Main micro-kernel (Algorithm 2)
// ---------------------------------------------------------------------------

/// mr x n_eff register tile, n_eff = NRV*lanes + ntail.
/// NTail selects whether a final partial vector exists; `ntail` (1..lanes-1)
/// is its lane count and is ignored when !NTail.
template <typename T, int MR, int NRV, bool NTail, AAccess AA, BAccess BA>
void kern_main(index_t kc, const T* SHALOM_RESTRICT a, index_t lda,
               const T* SHALOM_RESTRICT b, index_t ldb,
               T* SHALOM_RESTRICT c, index_t ldc, T alpha, T beta,
               int ntail) {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int NV = NRV + (NTail ? 1 : 0);
  static_assert(MR >= 1 && NV >= 1);
  static_assert(contracts::fits_register_budget(MR, NV),
                "register budget violated: mr + nr/j + mr*nr/j <= 31 "
                "(paper Eq. 1: MR*NV accumulators + NV B loads + MR A "
                "broadcasts must fit 32 vector registers minus one "
                "reserved for prefetch)");
  (void)ntail;

  V acc[MR][NV];
  unroll<MR>([&](auto i) {
    unroll<NV>([&](auto jv) { acc[i][jv] = simd::zero_vec<T>(); });
  });

  // Loads one vector of row k of op(B). The packed layout is zero-padded,
  // so only direct access needs a partial (masked) load at the edge.
  auto load_b = [&](index_t k, auto jv) SHALOM_INLINE_LAMBDA {
    const T* row = b + k * ldb + jv * L;
    if constexpr (NTail && BA == BAccess::kDirect) {
      if constexpr (jv == NV - 1) return simd::load_partial(row, ntail);
    }
    return simd::load(row);
  };

  index_t k = 0;
  if constexpr (AA == AAccess::kDirect) {
    // Paper Fig. 3: unroll k by the vector length; each A row contributes
    // one vector of L consecutive k-elements, consumed lane by lane via
    // scalar-vector FMA.
    for (; k + L <= kc; k += L) {
      V av[MR];
      unroll<MR>([&](auto i) { av[i] = simd::load(a + i * lda + k); });
      simd::prefetch_read(a + k + 2 * L);
      unroll<L>([&](auto l) {
        V bv[NV];
        unroll<NV>([&](auto jv) { bv[jv] = load_b(k + l, jv); });
        unroll<MR>([&](auto i) {
          unroll<NV>([&](auto jv) {
            acc[i][jv] = simd::fmadd_lane<l>(acc[i][jv], av[i], bv[jv]);
          });
        });
      });
    }
    for (; k < kc; ++k) {
      V bv[NV];
      unroll<NV>([&](auto jv) { bv[jv] = load_b(k, jv); });
      unroll<MR>([&](auto i) {
        const V as = simd::broadcast(a[i * lda + k]);
        unroll<NV>([&](auto jv) {
          acc[i][jv] = simd::fmadd(acc[i][jv], as, bv[jv]);
        });
      });
    }
  } else if constexpr (AA == AAccess::kPacked) {
    // Packed A: each k step reads one zero-padded column sliver of length
    // mr; ceil(MR/L) vector loads cover it (slack allows the full load).
    constexpr int AV = (MR + L - 1) / L;
    for (; k < kc; ++k) {
      const T* col = a + k * lda;
      V av[AV];
      unroll<AV>([&](auto g) { av[g] = simd::load(col + g * L); });
      V bv[NV];
      unroll<NV>([&](auto jv) { bv[jv] = load_b(k, jv); });
      unroll<MR>([&](auto i) {
        unroll<NV>([&](auto jv) {
          acc[i][jv] =
              simd::fmadd_lane<i % L>(acc[i][jv], av[i / L], bv[jv]);
        });
      });
    }
  } else {
    // Transposed A in place (TN/TT): op(A) column k is the contiguous run
    // a[k*lda .. k*lda+MR). No slack exists past the run, so the last
    // vector loads *overlapping* from col + MR - L and lanes are remapped
    // (rows < L from av[g], tail rows from the overlapped vector).
    constexpr int AV = (MR + L - 1) / L;
    for (; k < kc; ++k) {
      const T* col = a + k * lda;
      V av[AV];
      if constexpr (MR < L) {
        av[0] = simd::load_partial(col, MR);
      } else {
        unroll<AV>([&](auto g) {
          constexpr int base = (g == AV - 1) ? MR - L : g * L;
          av[g] = simd::load(col + base);
        });
      }
      V bv[NV];
      unroll<NV>([&](auto jv) { bv[jv] = load_b(k, jv); });
      unroll<MR>([&](auto i) {
        constexpr int g = (i / L < AV - 1) ? i / L : AV - 1;
        constexpr int base =
            (MR < L) ? 0 : ((g == AV - 1) ? MR - L : g * L);
        unroll<NV>([&](auto jv) {
          acc[i][jv] =
              simd::fmadd_lane<i - base>(acc[i][jv], av[g], bv[jv]);
        });
      });
    }
  }

  // C update: C = beta*C + alpha*acc on the real (not padded) tile.
  const V valpha = simd::broadcast(alpha);
  const V vbeta = simd::broadcast(beta);
  unroll<MR>([&](auto i) {
    unroll<NV>([&](auto jv) {
      T* cp = c + i * ldc + jv * L;
      V r = simd::mul(acc[i][jv], valpha);
      if constexpr (NTail) {
        if constexpr (jv == NV - 1) {
          if (beta != T{0})
            r = simd::fmadd(r, simd::load_partial(cp, ntail), vbeta);
          simd::store_partial(cp, r, ntail);
          return;
        }
      }
      if (beta != T{0}) r = simd::fmadd(r, simd::load(cp), vbeta);
      simd::store(cp, r);
    });
  });
}

// ---------------------------------------------------------------------------
// Fused NN packing kernel (Algorithm 1 lines 6-8, Fig. 4)
// ---------------------------------------------------------------------------

/// Computes the first MR-row stripe of C against B while storing every
/// loaded B vector into the packed sliver `bc` (row stride NRFull,
/// zero-padded).  With Ahead = true the kernel also streams the *next*
/// sliver's rows (guaranteed full width by the driver) into `bc_next`
/// (pack-ahead t = 1, Section 5.3.2: irregular-shaped inputs whose next
/// sliver would otherwise miss in cache and TLB).  The pack stores are
/// interleaved between the FMA groups so the OoO core overlaps them with
/// compute - the key difference from pack-then-compute libraries
/// (Section 5.3).
///
/// PackCur = false is the steady state of the t = 1 pipeline: the current
/// sliver was packed by the previous iteration, so `b` points at the
/// packed sliver itself (ldb == NRFull) and only the pack-ahead copy
/// runs; PackCur = true additionally writes the current sliver (t = 0,
/// and the pipeline prologue / edge slivers).
///
/// All widths are compile-time so the loop body is branch-free straight-
/// line code; anything runtime-bounded here makes GCC spill the 21
/// accumulators.
template <typename T, int MR, int NRV, bool NTail, bool PackCur, bool Ahead,
          int NRFull>
void kern_fused_pack_nn(index_t kc, const T* SHALOM_RESTRICT a, index_t lda,
                        const T* SHALOM_RESTRICT b, index_t ldb,
                        T* SHALOM_RESTRICT bc,
                        const T* SHALOM_RESTRICT b_next, index_t ldb_next,
                        T* SHALOM_RESTRICT bc_next, T* SHALOM_RESTRICT c,
                        index_t ldc, T alpha, T beta, int ntail) {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int NV = NRV + (NTail ? 1 : 0);
  constexpr int NVFull = NRFull / L;
  static_assert(NV * L <= NRFull);
  static_assert(contracts::fits_register_budget(MR, NV),
                "register budget violated: mr + nr/j + mr*nr/j <= 31 "
                "(paper Eq. 1; the fused NN pack reuses the B-load "
                "registers as the pack source, so the same budget holds)");
  static_assert(contracts::divides_pack_stride(NRFull, L),
                "pack-stride divisibility violated: nr % j == 0 (packed B "
                "row slivers are read as whole vectors)");
  (void)ntail;
  (void)bc;
  (void)b_next;
  (void)ldb_next;
  (void)bc_next;

  V acc[MR][NV];
  unroll<MR>([&](auto i) {
    unroll<NV>([&](auto jv) { acc[i][jv] = simd::zero_vec<T>(); });
  });

  auto load_b = [&](index_t k, auto jv) SHALOM_INLINE_LAMBDA {
    const T* row = b + k * ldb + jv * L;
    if constexpr (NTail) {
      if constexpr (jv == NV - 1) return simd::load_partial(row, ntail);
    }
    return simd::load(row);
  };

  // Packs row k of the current sliver (zero-padding the tail columns) and,
  // when Ahead, copies row k of the next (full-width) sliver. Plain
  // load->store pairs between the FMA groups; fully unrolled.
  auto pack_rows = [&](index_t k, const V (&bv)[NV]) SHALOM_INLINE_LAMBDA {
    if constexpr (PackCur) {
      T* dst = bc + k * NRFull;
      unroll<NV>([&](auto jv) { simd::store(dst + jv * L, bv[jv]); });
      if constexpr (NV < NVFull) {
        unroll<NVFull - NV>([&](auto z) {
          simd::store(dst + (NV + z) * L, simd::zero_vec<T>());
        });
      }
    }
    if constexpr (Ahead) {
      const T* src = b_next + k * ldb_next;
      T* dst = bc_next + k * NRFull;
      unroll<NVFull>(
          [&](auto jv) { simd::store(dst + jv * L, simd::load(src + jv * L)); });
    }
  };

  index_t k = 0;
  for (; k + L <= kc; k += L) {
    V av[MR];
    unroll<MR>([&](auto i) { av[i] = simd::load(a + i * lda + k); });
    unroll<L>([&](auto l) {
      V bv[NV];
      unroll<NV>([&](auto jv) { bv[jv] = load_b(k + l, jv); });
      // Pack stores issue between the load group and the FMA group
      // (steps 1/2 of Fig. 4).
      pack_rows(k + l, bv);
      unroll<MR>([&](auto i) {
        unroll<NV>([&](auto jv) {
          acc[i][jv] = simd::fmadd_lane<l>(acc[i][jv], av[i], bv[jv]);
        });
      });
    });
  }
  for (; k < kc; ++k) {
    V bv[NV];
    unroll<NV>([&](auto jv) { bv[jv] = load_b(k, jv); });
    pack_rows(k, bv);
    unroll<MR>([&](auto i) {
      const V as = simd::broadcast(a[i * lda + k]);
      unroll<NV>([&](auto jv) {
        acc[i][jv] = simd::fmadd(acc[i][jv], as, bv[jv]);
      });
    });
  }

  const V valpha = simd::broadcast(alpha);
  const V vbeta = simd::broadcast(beta);
  unroll<MR>([&](auto i) {
    unroll<NV>([&](auto jv) {
      T* cp = c + i * ldc + jv * L;
      V r = simd::mul(acc[i][jv], valpha);
      if constexpr (NTail) {
        if constexpr (jv == NV - 1) {
          if (beta != T{0})
            r = simd::fmadd(r, simd::load_partial(cp, ntail), vbeta);
          simd::store_partial(cp, r, ntail);
          return;
        }
      }
      if (beta != T{0}) r = simd::fmadd(r, simd::load(cp), vbeta);
      simd::store(cp, r);
    });
  });
}

// ---------------------------------------------------------------------------
// Fused NT packing kernel (Algorithm 3, Fig. 5)
// ---------------------------------------------------------------------------

/// Inner-product MR x JB kernel over transposed B.  op(B) columns
/// jofs..jofs+JB-1 of the current sliver are rows of B storage, contiguous
/// along k.  Per k-vector step: MR loads of A, JB loads of B, MR*JB
/// vector-vector FMAs, and the JB*L-element scatter into the packed
/// sliver (stride nr_full).  Accumulators reduce horizontally at the end.
/// Called ceil(nr/JB) times to fill one sliver (paper: 12/3 = 4 calls).
///
/// The scatter is realized as an in-register transpose followed by one
/// vector store per Bc row instead of element-wise extracts. When
/// `store_full` is set the stores are full-width: the lane past the JB
/// real columns lands on the slot the NEXT column group (at jofs + JB)
/// owns and is rewritten by it - the driver sets the flag only when that
/// group exists. The final group of a sliver uses partial stores.
template <typename T, int MR, int JB>
void kern_fused_pack_nt(index_t kc, const T* SHALOM_RESTRICT a, index_t lda,
                        const T* SHALOM_RESTRICT b, index_t ldb,
                        T* SHALOM_RESTRICT bc, int jofs, int nr_full,
                        bool store_full, T* SHALOM_RESTRICT c, index_t ldc,
                        T alpha, T beta) {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  static_assert(contracts::fits_register_budget(MR, JB),
                "register budget violated: mr + nr/j + mr*nr/j <= 31 "
                "(paper Eq. 1; the NT inner-product kernel holds MR*JB "
                "accumulators, JB B loads and MR A loads per k)");

  V acc[MR][JB];
  unroll<MR>([&](auto i) {
    unroll<JB>([&](auto cb) { acc[i][cb] = simd::zero_vec<T>(); });
  });

  index_t k = 0;
  for (; k + L <= kc; k += L) {
    V av[MR];
    unroll<MR>([&](auto i) { av[i] = simd::load(a + i * lda + k); });
    V bv[JB];
    unroll<JB>([&](auto cb) {
      bv[cb] = simd::load(b + (jofs + cb) * ldb + k);
    });
    // Scatter into Bc rows k..k+L-1 (Fig. 5: lane l of column cb lands at
    // bc[(k+l)*nr_full + jofs+cb]), interleaved with the FMA stream below
    // via program order.
    if constexpr (L == 4 && std::is_same_v<T, float>) {
      V r0 = bv[0];
      V r1 = JB > 1 ? bv[1] : simd::zero_vec<T>();
      V r2 = JB > 2 ? bv[2] : simd::zero_vec<T>();
      V r3 = simd::zero_vec<T>();
      simd::transpose4(r0, r1, r2, r3);
      const V rows[4] = {r0, r1, r2, r3};
      if (store_full) {
        unroll<L>([&](auto l) {
          simd::store(bc + (k + l) * nr_full + jofs, rows[l]);
        });
      } else {
        unroll<L>([&](auto l) {
          simd::store_partial(bc + (k + l) * nr_full + jofs, rows[l], JB);
        });
      }
    } else {
      unroll<JB>([&](auto cb) {
        unroll<L>([&](auto l) {
          bc[(k + l) * nr_full + jofs + cb] = simd::extract(bv[cb], l);
        });
      });
    }
    unroll<JB>([&](auto cb) {
      unroll<MR>([&](auto i) {
        acc[i][cb] = simd::fmadd(acc[i][cb], av[i], bv[cb]);
      });
    });
  }

  // k tail: scalar inner-product steps (fewer than L columns of A left).
  T tail_acc[MR][JB] = {};
  for (; k < kc; ++k) {
    T bs[JB];
    unroll<JB>([&](auto cb) {
      bs[cb] = b[(jofs + cb) * ldb + k];
      bc[k * nr_full + jofs + cb] = bs[cb];
    });
    unroll<MR>([&](auto i) {
      const T as = a[i * lda + k];
      unroll<JB>([&](auto cb) { tail_acc[i][cb] += as * bs[cb]; });
    });
  }

  // Horizontal reduction + C update (paper: "Reduce (V10-V31)").
  unroll<MR>([&](auto i) {
    unroll<JB>([&](auto cb) {
      const T total = simd::reduce_add(acc[i][cb]) + tail_acc[i][cb];
      T* cp = c + i * ldc + jofs + cb;
      *cp = (beta == T{0}) ? alpha * total : beta * *cp + alpha * total;
    });
  });
}

// ---------------------------------------------------------------------------
// Fused TN/TT packing kernel (Section 4.3: "for TN mode, we apply the
// same strategy used for the NT mode to pack matrix A")
// ---------------------------------------------------------------------------

/// Outer-product kernel over transposed-in-place A that simultaneously
/// streams the loaded op(A) columns into the packed sliver `ac`
/// (layout ac[k*MR + i], the canonical column-sliver format), so later
/// column slivers of the same block reuse Ac without ever paying a
/// separate packing pass. The overlapping A loads double as the pack
/// source: two stores per k (at +0 and +MR-L, overlapping on the shared
/// rows) write the full column. Requires kPackSlackElems past the buffer.
template <typename T, int MR, int NRV, bool NTail, BAccess BA>
void kern_fused_pack_tn(index_t kc, const T* SHALOM_RESTRICT a, index_t lda,
                        T* SHALOM_RESTRICT ac, const T* SHALOM_RESTRICT b,
                        index_t ldb, T* SHALOM_RESTRICT c, index_t ldc,
                        T alpha, T beta, int ntail) {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int NV = NRV + (NTail ? 1 : 0);
  static_assert(MR >= L, "fused TN pack requires a full-height stripe");
  static_assert(contracts::fits_register_budget(MR, NV),
                "register budget violated: mr + nr/j + mr*nr/j <= 31 "
                "(paper Eq. 1; the overlapping packed-A column loads "
                "reuse the A broadcast registers)");
  constexpr int AV = (MR + L - 1) / L;
  (void)ntail;

  V acc[MR][NV];
  unroll<MR>([&](auto i) {
    unroll<NV>([&](auto jv) { acc[i][jv] = simd::zero_vec<T>(); });
  });

  auto load_b = [&](index_t k, auto jv) SHALOM_INLINE_LAMBDA {
    const T* row = b + k * ldb + jv * L;
    if constexpr (NTail && BA == BAccess::kDirect) {
      if constexpr (jv == NV - 1) return simd::load_partial(row, ntail);
    }
    return simd::load(row);
  };

  for (index_t k = 0; k < kc; ++k) {
    const T* col = a + k * lda;
    V av[AV];
    unroll<AV>([&](auto g) {
      constexpr int base = (g == AV - 1) ? MR - L : g * L;
      av[g] = simd::load(col + base);
    });
    // Pack stores between the load group and the FMAs: the overlapped
    // vectors rewrite the shared rows with identical values.
    T* dst = ac + k * MR;
    unroll<AV>([&](auto g) {
      constexpr int base = (g == AV - 1) ? MR - L : g * L;
      simd::store(dst + base, av[g]);
    });
    V bv[NV];
    unroll<NV>([&](auto jv) { bv[jv] = load_b(k, jv); });
    unroll<MR>([&](auto i) {
      constexpr int g = (i / L < AV - 1) ? i / L : AV - 1;
      constexpr int base = (g == AV - 1) ? MR - L : g * L;
      unroll<NV>([&](auto jv) {
        acc[i][jv] =
            simd::fmadd_lane<i - base>(acc[i][jv], av[g], bv[jv]);
      });
    });
  }

  const V valpha = simd::broadcast(alpha);
  const V vbeta = simd::broadcast(beta);
  unroll<MR>([&](auto i) {
    unroll<NV>([&](auto jv) {
      T* cp = c + i * ldc + jv * L;
      V r = simd::mul(acc[i][jv], valpha);
      if constexpr (NTail) {
        if constexpr (jv == NV - 1) {
          if (beta != T{0})
            r = simd::fmadd(r, simd::load_partial(cp, ntail), vbeta);
          simd::store_partial(cp, r, ntail);
          return;
        }
      }
      if (beta != T{0}) r = simd::fmadd(r, simd::load(cp), vbeta);
      simd::store(cp, r);
    });
  });
}

// ---------------------------------------------------------------------------
// Scalar fallback kernel (edge-optimization ablation)
// ---------------------------------------------------------------------------

/// Plain scalar tile update used when Config::optimized_edges is false:
/// models the cost existing libraries pay on remainder tiles (batched
/// loads, no latency hiding - the Fig. 6a behaviour).
template <typename T, AAccess AA, BAccess BA>
void kern_scalar(index_t m, index_t n, index_t kc, const T* a, index_t lda,
                 const T* b, index_t ldb, T* c, index_t ldc, T alpha,
                 T beta) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      T sum{};
      for (index_t k = 0; k < kc; ++k) {
        const T av =
            (AA == AAccess::kDirect) ? a[i * lda + k] : a[k * lda + i];
        sum += av * b[k * ldb + j];
      }
      T* cp = c + i * ldc + j;
      *cp = (beta == T{0}) ? alpha * sum : beta * *cp + alpha * sum;
    }
  }
}

}  // namespace shalom::ukr
