#include "core/batch.h"

#include <algorithm>

#include "core/gemm.h"
#include "core/plan_cache.h"
#include "core/threadpool.h"

namespace shalom {

template <typename T>
void gemm_batch(Mode mode, const std::vector<BatchEntry<T>>& batch,
                const Config& cfg) {
  if (batch.empty()) return;

  // Batched traffic is where the plan cache pays off most: CP2K-style
  // batches repeat a handful of block shapes thousands of times, so after
  // the first few entries every product executes a cached plan.
  Config serial_cfg = cfg;
  serial_cfg.threads = 1;
  auto run_one = [&](const BatchEntry<T>& e) {
    if (cfg.use_plan_cache) {
      gemm_cached(mode, e.m, e.n, e.k, e.alpha, e.a, e.lda, e.b, e.ldb,
                  e.beta, e.c, e.ldc, serial_cfg);
    } else {
      gemm_serial(mode, e.m, e.n, e.k, e.alpha, e.a, e.lda, e.b, e.ldb,
                  e.beta, e.c, e.ldc, serial_cfg);
    }
  };

  int threads = detail::resolve_threads(cfg.threads);
  threads = std::min<int>(threads, static_cast<int>(batch.size()));

  if (threads <= 1) {
    for (const auto& e : batch) run_one(e);
    return;
  }

  // Contiguous slices of the batch per thread: preserves any cache
  // affinity between neighbouring blocks the caller arranged.
  const std::size_t per_thread =
      (batch.size() + threads - 1) / threads;
  pool_run(threads, [&](int id) {
    const std::size_t begin = id * per_thread;
    const std::size_t end =
        std::min(batch.size(), begin + per_thread);
    for (std::size_t i = begin; i < end; ++i) run_one(batch[i]);
  });
}

template void gemm_batch<float>(Mode, const std::vector<BatchEntry<float>>&,
                                const Config&);
template void gemm_batch<double>(Mode,
                                 const std::vector<BatchEntry<double>>&,
                                 const Config&);

}  // namespace shalom
