// Public enums and configuration for the GEMM drivers.
#pragma once

#include "arch/machine.h"
#include "common/guard.h"
#include "common/matrix.h"
#include "common/selfcheck.h"

namespace shalom {

/// Operand transposition, BLAS-style. Storage is always row-major;
/// Trans::T means op(X) = X^T.
enum class Trans { N, T };

/// GEMM computation mode (paper Section 3.3): NN, NT, TN, TT.
struct Mode {
  Trans a = Trans::N;
  Trans b = Trans::N;
};

/// Feature switches. The defaults are the full LibShalom design; the
/// ablation benches (Fig. 13) turn individual optimizations off.
struct Config {
  /// Selective packing (paper Section 4): when false, operands are always
  /// packed ahead of the kernel, as OpenBLAS/BLIS do.
  bool selective_packing = true;
  /// Fuse packing loads/stores into the micro-kernel's FMA stream
  /// (paper Section 5.3). When false, packing runs as a separate pass.
  bool fused_packing = true;
  /// Pipelined vectorized edge-case kernels (paper Section 5.4). When
  /// false, edge tiles fall back to a scalar routine, which mimics the
  /// cost existing libraries pay on remainders.
  bool optimized_edges = true;
  /// Worker threads; 0 means "all cores of `machine`". 1 = serial.
  int threads = 1;
  /// Machine the analytic models should target; nullptr = running host.
  const arch::MachineDescriptor* machine = nullptr;

  /// Consult the global shape-keyed execution-plan cache (core/plan_cache.h)
  /// from the public gemm/gemm_parallel/gemm_batch entry points, so
  /// repeated calls on the same shape skip the analytic decision chain.
  /// Plan execution runs the identical loop nest, so results are bitwise
  /// equal either way; disable for the per-call ablation baseline.
  bool use_plan_cache = true;

  /// Numerical guard rail: sample operands (and the result) for NaN/Inf
  /// around each public gemm() call. kIgnore (default) skips the scan
  /// entirely; kCount records anomalies in robustness_stats(); kFail
  /// additionally throws numeric_error (SHALOM_ERR_NUMERIC over the C
  /// API). The default follows SHALOM_CHECK_NUMERICS=ignore|count|fail.
  numerics::Policy check_numerics = numerics::env_policy();

  /// Thread-pool watchdog period in milliseconds for parallel rounds run
  /// under this config: if a round's workers make no heartbeat progress
  /// for this long, the round leader trips the watchdog, recovers the
  /// unclaimed tasks serially, and marks the pool degraded (see
  /// core/threadpool.h). 0 disables the watchdog. The default follows
  /// SHALOM_WATCHDOG_MS.
  int watchdog_ms = guard::env_watchdog_ms();

  /// Cache-blocking overrides for the auto-tuner (paper Section 10 future
  /// work): 0 keeps the analytic model's value. Values are rounded to the
  /// register-tile multiples the driver requires.
  index_t kc_override = 0;
  index_t mc_override = 0;
  index_t nc_override = 0;

  const arch::MachineDescriptor& resolved_machine() const {
    return machine != nullptr ? *machine : arch::host_machine();
  }
};

}  // namespace shalom
