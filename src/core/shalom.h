// LibShalom public C++ API.
//
// Computes C = alpha * op(A) . op(B) + beta * C on row-major matrices,
// optimized for small and irregular-shaped (tall-and-skinny) problems on
// 128-bit-SIMD multi-cores, following Yang et al., "LibShalom: Optimizing
// Small and Irregular-Shaped Matrix Multiplications on ARMv8 Multi-Cores"
// (SC '21).
//
// Quick start:
//
//   #include "core/shalom.h"
//   std::vector<float> a(M*K), b(K*N), c(M*N);
//   shalom::gemm(shalom::Trans::N, shalom::Trans::N, M, N, K,
//                1.0f, a.data(), K, b.data(), N, 0.0f, c.data(), N);
//
// Pass a Config to control threading (cfg.threads = 0 uses every core) and
// to toggle the individual optimizations for ablation studies.
#pragma once

#include "common/matrix.h"
#include "core/gemm.h"
#include "core/parallel.h"
#include "core/plan_cache.h"
#include "core/types.h"

namespace shalom {

/// General matrix multiply: C = alpha * op(A) . op(B) + beta * C.
///
/// A is M x K (after op), row-major with leading dimension lda; B is
/// K x N (after op); C is M x N. Consults the global execution-plan cache
/// (cfg.use_plan_cache, on by default), then runs the serial or fork-join
/// driver per cfg.threads. Throws invalid_argument on inconsistent
/// dimensions.
template <typename T>
void gemm(Trans trans_a, Trans trans_b, index_t M, index_t N, index_t K,
          T alpha, const T* A, index_t lda, const T* B, index_t ldb, T beta,
          T* C, index_t ldc, const Config& cfg = {}) {
  const Mode mode{trans_a, trans_b};
  const numerics::Policy guard = cfg.check_numerics;
  if (guard != numerics::Policy::kIgnore)
    detail::numeric_guard_operands(mode, M, N, K, A, lda, B, ldb, beta, C,
                                   ldc, guard);
  if (cfg.use_plan_cache) {
    // Transparent shape-keyed plan cache: repeated calls on one shape skip
    // the per-call analytic decisions (see core/plan_cache.h). Results are
    // bitwise identical to the per-call drivers below.
    gemm_cached(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
  } else if (cfg.threads == 1) {
    gemm_serial(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
  } else {
    gemm_parallel(mode, M, N, K, alpha, A, lda, B, ldb, beta, C, ldc, cfg);
  }
  if (guard != numerics::Policy::kIgnore)
    detail::numeric_guard_result(M, N, C, ldc, guard);
}

/// View-based convenience overload; dimensions are taken from the views.
/// The views describe the *stored* matrices (before op).
template <typename T>
void gemm(T alpha, MatrixView<const T> A, Trans trans_a,
          MatrixView<const T> B, Trans trans_b, T beta, MatrixView<T> C,
          const Config& cfg = {}) {
  const index_t M = (trans_a == Trans::N) ? A.rows() : A.cols();
  const index_t K = (trans_a == Trans::N) ? A.cols() : A.rows();
  const index_t N = (trans_b == Trans::N) ? B.cols() : B.rows();
  const index_t Kb = (trans_b == Trans::N) ? B.rows() : B.cols();
  SHALOM_REQUIRE(K == Kb, " K(A)=", K, " K(B)=", Kb);
  SHALOM_REQUIRE(C.rows() == M && C.cols() == N);
  gemm(trans_a, trans_b, M, N, K, alpha, A.data(), A.ld(), B.data(), B.ld(),
       beta, C.data(), C.ld(), cfg);
}

}  // namespace shalom
