#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <new>
#include <system_error>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/health.h"
#include "core/batch.h"
#include "core/plan.h"
#include "core/plan_cache.h"

namespace shalom {
namespace engine {

// ---------------------------------------------------------------------------
// Ticket
// ---------------------------------------------------------------------------

void Ticket::complete(int status, std::string message) {
  MutexLock lock(mu_);
  status_ = status;
  message_ = std::move(message);
  done_ = true;
  cv_.notify_all();
}

int Ticket::wait() {
  MutexLock lock(mu_);
  while (!done_) cv_.wait(lock);
  return status_;
}

bool Ticket::wait_for(long ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ms > 0 ? ms : 0);
  MutexLock lock(mu_);
  while (!done_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout)
      return done_;
  }
  return true;
}

bool Ticket::done() const {
  MutexLock lock(mu_);
  return done_;
}

int Ticket::status() const {
  MutexLock lock(mu_);
  return status_;
}

const std::string& Ticket::message() const {
  MutexLock lock(mu_);
  return message_;
}

bool Ticket::try_claim() {
  std::uint32_t expected = 0;
  return claim_.compare_exchange_strong(expected, 1,
                                        std::memory_order_acq_rel);
}

bool Ticket::revoke(int status, std::string message) {
  std::uint32_t expected = 0;
  if (!claim_.compare_exchange_strong(expected, 2,
                                      std::memory_order_acq_rel))
    return false;
  complete(status, std::move(message));
  return true;
}

// ---------------------------------------------------------------------------
// Env knobs (parsed once per process, PR 3 hardening discipline)
// ---------------------------------------------------------------------------

long env_queue_cap() noexcept {
  // lo = 1: a cap of zero would reject every submission, which is never
  // what an operator meant - it warns and falls back to unbounded.
  static const long cap =
      env::get_long("SHALOM_QUEUE_CAP", 0, 1, 1L << 30);
  return cap;
}

OverloadPolicy env_overload_policy() noexcept {
  static const char* const kNames[] = {"block", "shed-newest",
                                       "shed-oldest"};
  static const int policy =
      env::get_enum("SHALOM_OVERLOAD_POLICY", 0, kNames, 3);
  return static_cast<OverloadPolicy>(policy);
}

long env_retry_budget() noexcept {
  static const long budget =
      env::get_long("SHALOM_RETRY_BUDGET", 3, 0, 16);
  return budget;
}

// ---------------------------------------------------------------------------
// GemmStream
// ---------------------------------------------------------------------------

namespace {

/// One queued request, type-erased so float and double submissions share
/// the pending vector. alpha/beta are stored widened to double; a float
/// payload round-trips exactly through the widening cast.
struct Request {
  char dtype = 's';  // 's' or 'd'
  Mode mode{};
  index_t m = 0, n = 0, k = 0, lda = 0, ldb = 0, ldc = 0;
  double alpha = 0.0, beta = 0.0;
  const void* a = nullptr;
  const void* b = nullptr;
  void* c = nullptr;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  TicketPtr ticket;
};

/// Maps the in-flight exception (catch(...) context) to its
/// shalom_status, mirroring the synchronous C boundary's translation.
/// Deliberately does NOT touch the C API's thread-local last-error slot:
/// completion runs on the drainer thread, and shalom_wait re-surfaces
/// the status on the waiting thread.
int status_of_current_exception(std::string& message) {
  try {
    throw;
  } catch (const shalom::invalid_argument& e) {
    message = e.what();
    return SHALOM_ERR_INVALID_ARGUMENT;
  } catch (const shalom::numeric_error& e) {
    message = e.what();
    return SHALOM_ERR_NUMERIC;
  } catch (const shalom::corruption_error& e) {
    message = e.what();
    return SHALOM_ERR_CORRUPTION;
  } catch (const shalom::kernel_trap_error& e) {
    message = e.what();
    return SHALOM_ERR_KERNEL_TRAP;
  } catch (const shalom::rejected_error& e) {
    message = e.what();
    return SHALOM_ERR_REJECTED;
  } catch (const shalom::timeout_error& e) {
    message = e.what();
    return SHALOM_ERR_TIMEOUT;
  } catch (const std::bad_alloc& e) {
    message = e.what();
    return SHALOM_ERR_ALLOC;
  } catch (const std::exception& e) {
    message = e.what();
    return SHALOM_ERR_INTERNAL;
  } catch (...) {
    return SHALOM_ERR_INTERNAL;
  }
}

/// One exponential-backoff pause between transient-failure retries:
/// 1/2/4/8 ms, capped so a deep budget cannot stall a submitter for
/// seconds.
void backoff_sleep(long attempt) {
  const long shift = attempt < 3 ? attempt : 3;
  std::this_thread::sleep_for(std::chrono::milliseconds(1L << shift));
}

/// Hard cap on the breaker's re-open backoff: 64x the base cool-down
/// (mirrors the health registry's kBackoffCapFactor).
constexpr std::uint64_t kBreakerBackoffCap = 64;

/// Streams currently latched, for the process-wide health registry's
/// kStreamBreaker aggregate (each stream keeps its own half-open
/// bookkeeping). Relaxed: a monotonic census with no ordering ties to
/// the per-stream state it summarizes.
std::atomic<int> g_latched_streams{0};

}  // namespace

struct GemmStream::Impl {
  StreamOptions opts;  // fully resolved in the ctor (no negatives left)

  mutable Mutex mu;
  std::condition_variable_any submit_cv;   // submitters -> drainer
  std::condition_variable_any drained_cv;  // drainer -> flush waiters
  std::condition_variable_any space_cv;    // drainer -> blocked submitters
  std::vector<Request> pending SHALOM_GUARDED_BY(mu);
  bool stop SHALOM_GUARDED_BY(mu) = false;
  /// True while the drainer is executing a swapped-out batch; flush()
  /// waits on (pending empty && !executing).
  bool executing SHALOM_GUARDED_BY(mu) = false;
  /// Stream lifecycle: running → draining → closed. Leaving kRunning is
  /// one-way; submits on a non-running stream are rejected.
  enum Lifecycle { kRunning, kDraining, kClosed };
  Lifecycle lifecycle SHALOM_GUARDED_BY(mu) = kRunning;
  StreamStats counters SHALOM_GUARDED_BY(mu);

  /// Drainer-thread spawn failed: submit() executes inline instead.
  bool synchronous = false;  // set once in the ctor, then read-only
  /// Circuit breaker: latched after breaker_threshold consecutive
  /// retry-exhausted submit failures; a latched stream executes inline
  /// like a spawn-degraded one. Lock-free so the hot submit path checks
  /// it with one relaxed load. No longer sticky: once the recovery
  /// cool-down elapses the breaker goes half-open (below) and a clean
  /// trial streak un-latches it; with SHALOM_RECOVERY_MS=0 the latch is
  /// permanent, the pre-recovery behaviour.
  std::atomic<bool> latched{false};
  std::atomic<int> consecutive_failures{0};
  std::atomic<std::uint64_t> retry_count{0};
  /// Half-open breaker state. `half_open` gates the trial window;
  /// `trials_admitted` bounds it to SHALOM_PROBATION_N concurrent trial
  /// submissions (excess traffic keeps flowing inline-degraded);
  /// `trial_successes` counts clean trials toward closing the breaker.
  /// breaker_backoff_ms/deadline_ms are the per-stream exponential
  /// cool-down (doubles per failed trial window, capped).
  std::atomic<bool> half_open{false};
  std::atomic<int> trials_admitted{0};
  std::atomic<int> trial_successes{0};
  std::atomic<std::uint64_t> breaker_backoff_ms{0};
  std::atomic<std::uint64_t> breaker_deadline_ms{0};
  std::thread drainer;

  bool degraded() const noexcept {
    return synchronous || latched.load(std::memory_order_relaxed);
  }

  void count_retry() noexcept {
    retry_count.fetch_add(1, std::memory_order_relaxed);
    telemetry::note_submit_retry();
  }

  std::uint64_t breaker_base_ms() const noexcept {
    const long ms = health::env_recovery_ms();
    return ms > 0 ? static_cast<std::uint64_t>(ms) : 1;
  }

  /// The latch transition (exactly once per open->latched cycle): arms
  /// the recovery cool-down and registers the stream in the process-wide
  /// breaker census.
  void latch_breaker() noexcept {
    if (latched.exchange(true, std::memory_order_acq_rel)) return;
    telemetry::note_breaker_trip();
    const std::uint64_t base = breaker_base_ms();
    breaker_backoff_ms.store(base, std::memory_order_relaxed);
    breaker_deadline_ms.store(health::now_ms() + base,
                              std::memory_order_relaxed);
    half_open.store(false, std::memory_order_release);
    g_latched_streams.fetch_add(1, std::memory_order_relaxed);
    health::report_degraded(health::Component::kStreamBreaker,
                            health::Cause::kOverload);
  }

  /// The un-latch transition (trial streak complete, or a latched stream
  /// closing down): keeps the census and the component aggregate honest.
  /// `recovered` distinguishes a genuine breaker close (counts a
  /// recovery) from a latched stream simply being destroyed.
  void unlatch_breaker(bool recovered) noexcept {
    if (!latched.exchange(false, std::memory_order_acq_rel)) return;
    half_open.store(false, std::memory_order_release);
    consecutive_failures.store(0, std::memory_order_relaxed);
    const int remaining =
        g_latched_streams.fetch_sub(1, std::memory_order_relaxed) - 1;
    if (remaining <= 0) {
      // Last latched stream gone: the component is back to full service.
      health::report_recovered(health::Component::kStreamBreaker);
      if (!recovered) return;
      // report_recovered counted the recovery; nothing more to do.
    } else if (recovered) {
      telemetry::note_recovery();
    }
  }

  /// Decides whether this submit should run as a half-open trial through
  /// the real enqueue path. Opens the trial window when the cool-down
  /// has elapsed; bounds it to SHALOM_PROBATION_N admissions. Each
  /// admitted trial counts a probation probe and honours the
  /// health.probe fault site (an injected failure re-opens the breaker
  /// immediately and the request falls back to inline execution).
  bool breaker_trial_admission() noexcept {
    if (synchronous) return false;  // no drainer to return to
    if (!health::recovery_enabled()) return false;
    if (!latched.load(std::memory_order_acquire)) return false;
    if (!half_open.load(std::memory_order_acquire)) {
      if (health::now_ms() <
          breaker_deadline_ms.load(std::memory_order_relaxed))
        return false;
      bool expected = false;
      if (half_open.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        trials_admitted.store(0, std::memory_order_relaxed);
        trial_successes.store(0, std::memory_order_relaxed);
        telemetry::note_breaker_half_open();
      }
    }
    const long budget = health::env_probation_n();
    if (trials_admitted.fetch_add(1, std::memory_order_relaxed) >=
        static_cast<int>(budget))
      return false;  // window full: keep serving inline
    if (health::probe_faulted()) {
      breaker_trial_failed();
      return false;
    }
    return true;
  }

  /// A trial enqueue succeeded: one more clean probe toward closing the
  /// breaker; the SHALOM_PROBATION_N-th closes it.
  void breaker_trial_succeeded() noexcept {
    const int okays =
        trial_successes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (okays >= static_cast<int>(health::env_probation_n()) &&
        half_open.load(std::memory_order_acquire))
      unlatch_breaker(true);
  }

  /// A trial enqueue failed (retry budget exhausted again, or the
  /// health.probe site fired): close the trial window and double the
  /// cool-down before the next half-open attempt.
  void breaker_trial_failed() noexcept {
    if (!half_open.exchange(false, std::memory_order_acq_rel))
      return;  // another trial already resolved the window
    const std::uint64_t base = breaker_base_ms();
    const std::uint64_t cap = base * kBreakerBackoffCap;
    std::uint64_t backoff =
        breaker_backoff_ms.load(std::memory_order_relaxed);
    backoff = backoff == 0 ? base : backoff * 2;
    if (backoff > cap) backoff = cap;
    breaker_backoff_ms.store(backoff, std::memory_order_relaxed);
    breaker_deadline_ms.store(health::now_ms() + backoff,
                              std::memory_order_relaxed);
    telemetry::note_probation_failure();
  }

  /// Executes one shape bucket (equal dtype + mode, shape-ordered) as a
  /// single coalesced gemm_batch call and resolves every ticket.
  /// `ok_status` is what a successful entry resolves to: SHALOM_OK on the
  /// drainer path, SHALOM_DEGRADED on the inline degraded path.
  template <typename T>
  void run_bucket(Mode mode, const std::vector<Request*>& bucket,
                  int ok_status) {
    Config cfg;
    cfg.threads = opts.threads;
    cfg.use_plan_cache = opts.use_plan_cache;
    bool coalesced = true;
    int batch_status = SHALOM_OK;
    std::string batch_message;
    try {
      std::vector<BatchEntry<T>> entries;
      entries.reserve(bucket.size());
      for (const Request* r : bucket) {
        BatchEntry<T> e;
        e.m = r->m;
        e.n = r->n;
        e.k = r->k;
        e.alpha = static_cast<T>(r->alpha);
        e.a = static_cast<const T*>(r->a);
        e.lda = r->lda;
        e.b = static_cast<const T*>(r->b);
        e.ldb = r->ldb;
        e.beta = static_cast<T>(r->beta);
        e.c = static_cast<T*>(r->c);
        e.ldc = r->ldc;
        entries.push_back(e);
      }
      gemm_batch<T>(mode, entries, cfg);
    } catch (...) {
      coalesced = false;
      batch_status = status_of_current_exception(batch_message);
    }
    if (coalesced) {
      for (const Request* r : bucket)
        r->ticket->complete(ok_status, std::string());
      return;
    }
    // The coalesced run failed and gemm_batch gives no per-entry verdict:
    // some entries may already have written C. Retry individually ONLY
    // the idempotent ones (beta == 0 overwrites C, so a re-run of an
    // already-executed entry is harmless); beta != 0 entries accumulate
    // and a blind re-run could apply them twice, so they inherit the
    // batch failure instead. Transient SHALOM_ERR_ALLOC per-entry
    // failures get the stream's backoff retry budget before resolving.
    for (const Request* r : bucket) {
      if (static_cast<T>(r->beta) != T{0}) {
        r->ticket->complete(batch_status, batch_message);
        continue;
      }
      int status = SHALOM_OK;
      std::string message;
      for (long attempt = 0;; ++attempt) {
        status = SHALOM_OK;
        message.clear();
        try {
          gemm_cached<T>(mode, r->m, r->n, r->k, static_cast<T>(r->alpha),
                         static_cast<const T*>(r->a), r->lda,
                         static_cast<const T*>(r->b), r->ldb,
                         static_cast<T>(r->beta), static_cast<T*>(r->c),
                         r->ldc, cfg);
        } catch (...) {
          status = status_of_current_exception(message);
        }
        if (status != SHALOM_ERR_ALLOC || attempt >= opts.retry_budget)
          break;
        count_retry();
        backoff_sleep(attempt);
      }
      r->ticket->complete(status, std::move(message));
    }
  }

  /// Inline degraded execution of one request on the submitting thread
  /// (the latched / spawn-degraded path, and the fallback for a failed
  /// half-open trial). Claims first so a concurrent cancel of the (not
  /// yet returned) ticket can never double-resolve it, and counts it
  /// executed before completion so a waiter that sees the ticket resolve
  /// never reads stats() missing it.
  template <typename T>
  void run_inline(Mode mode, Request& r, const TicketPtr& ticket) {
    {
      MutexLock lock(mu);
      if (lifecycle != kRunning) {
        ++counters.shed;
        telemetry::note_request_shed();
        throw rejected_error("shalom: submit on a draining/closed stream");
      }
      ++counters.submitted;
    }
    ticket->try_claim();
    {
      MutexLock lock(mu);
      ++counters.executed;
      ++counters.batches;
    }
    const std::vector<Request*> one{&r};
    run_bucket<T>(mode, one, SHALOM_DEGRADED);
  }

  /// Shape-buckets one swapped-out batch and runs each bucket coalesced.
  /// Returns the number of gemm_batch calls issued.
  std::uint64_t execute_batch(std::vector<Request>& batch) {
    std::vector<Request*> order;
    order.reserve(batch.size());
    for (Request& r : batch) order.push_back(&r);
    // Group by (dtype, mode) for the coalesced calls, then order by
    // shape inside the group so identical shapes run back-to-back and
    // reuse the warm per-thread plan memo / cache shard.
    const auto key = [](const Request* r) {
      return std::make_tuple(r->dtype, static_cast<int>(r->mode.a),
                             static_cast<int>(r->mode.b), r->m, r->n, r->k,
                             r->lda, r->ldb, r->ldc);
    };
    std::sort(order.begin(), order.end(),
              [&key](const Request* x, const Request* y) {
                return key(x) < key(y);
              });
    std::uint64_t calls = 0;
    std::size_t i = 0;
    while (i < order.size()) {
      std::size_t j = i;
      while (j < order.size() && order[j]->dtype == order[i]->dtype &&
             order[j]->mode.a == order[i]->mode.a &&
             order[j]->mode.b == order[i]->mode.b)
        ++j;
      const std::vector<Request*> bucket(order.begin() + static_cast<std::ptrdiff_t>(i),
                                         order.begin() + static_cast<std::ptrdiff_t>(j));
      if (order[i]->dtype == 's') {
        run_bucket<float>(order[i]->mode, bucket, SHALOM_OK);
      } else {
        run_bucket<double>(order[i]->mode, bucket, SHALOM_OK);
      }
      ++calls;
      i = j;
    }
    return calls;
  }

  void drain_loop() {
    for (;;) {
      std::vector<Request> batch;
      std::vector<Request> run;
      {
        MutexLock lock(mu);
        while (!stop && pending.empty()) submit_cv.wait(lock);
        if (pending.empty()) {
          if (stop) return;  // shutdown with nothing left to run
          continue;
        }
        batch.swap(pending);
        executing = true;
        space_cv.notify_all();  // queue just emptied: admit blockers
        // Claim-or-drop sweep, BEFORE anything reaches gemm_batch:
        // expire overdue deadlines (monotonic clock, plus the
        // engine.deadline fault site) and drop requests whose ticket was
        // revoked while queued (cancel / shed-oldest) - the claim
        // handshake guarantees the buffers of a revoked request are
        // never touched. The sweep runs under mu so the expired/executed
        // counters are already up to date when a waiter observes any of
        // these tickets resolve and then reads stats().
        const auto now = std::chrono::steady_clock::now();
        run.reserve(batch.size());
        for (Request& r : batch) {
          const bool overdue =
              (r.has_deadline && now >= r.deadline) ||
              SHALOM_FAULT_POINT(fault::Site::kEngineDeadline);
          if (overdue) {
            if (r.ticket->revoke(SHALOM_ERR_TIMEOUT,
                                 "shalom: request deadline expired before "
                                 "execution")) {
              telemetry::note_request_expired();
              ++counters.expired;
            }
            continue;
          }
          if (!r.ticket->try_claim()) continue;  // revoked while queued
          run.push_back(std::move(r));
        }
        counters.executed += run.size();  // claimed == will run
      }
      const std::uint64_t calls = execute_batch(run);
      {
        MutexLock lock(mu);
        executing = false;
        counters.batches += calls;
        drained_cv.notify_all();
      }
    }
  }
};

GemmStream::GemmStream(StreamOptions opts)
    : impl_(std::make_unique<Impl>()) {
  if (opts.queue_cap < 0) opts.queue_cap = env_queue_cap();
  if (opts.overload_policy < 0)
    opts.overload_policy = static_cast<int>(env_overload_policy());
  if (opts.retry_budget < 0) opts.retry_budget = env_retry_budget();
  if (opts.breaker_threshold < 1) opts.breaker_threshold = 1;
  impl_->opts = opts;
  // Spawn the drainer with the same transient-failure retry budget the
  // submit path gets; only a persistent failure degrades the stream to
  // synchronous execution (it still never fails construction).
  for (long attempt = 0;; ++attempt) {
    try {
      if (SHALOM_FAULT_POINT(fault::Site::kThreadpoolSpawn))
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "injected drainer-spawn failure");
      Impl* impl = impl_.get();
      impl_->drainer = std::thread([impl] { impl->drain_loop(); });
      return;
    } catch (const std::system_error&) {
    } catch (const std::bad_alloc&) {
    }
    if (attempt >= opts.retry_budget) break;
    impl_->count_retry();
    backoff_sleep(attempt);
  }
  // Degrade to synchronous execution rather than failing construction:
  // submit() then runs each request inline before returning.
  impl_->synchronous = true;
}

GemmStream::~GemmStream() { close(); }

template <typename T>
TicketPtr GemmStream::submit(Mode mode, index_t m, index_t n, index_t k,
                             T alpha, const T* a, index_t lda, const T* b,
                             index_t ldb, T beta, T* c, index_t ldc,
                             long deadline_ms) {
  // Validate on the submitting thread: contract violations belong to the
  // caller, not to a ticket resolved later on the drainer.
  detail::check_gemm_args(mode, m, n, k, a, lda, b, ldb, c, ldc);
  if (SHALOM_FAULT_POINT(fault::Site::kEngineShed)) {
    telemetry::note_request_shed();
    MutexLock lock(impl_->mu);
    ++impl_->counters.shed;
    throw rejected_error(
        "shalom: submission shed (engine.shed fault site)");
  }
  auto ticket = std::make_shared<Ticket>();
  Request r;
  r.dtype = std::is_same<T, float>::value ? 's' : 'd';
  r.mode = mode;
  r.m = m;
  r.n = n;
  r.k = k;
  r.lda = lda;
  r.ldb = ldb;
  r.ldc = ldc;
  r.alpha = static_cast<double>(alpha);
  r.beta = static_cast<double>(beta);
  r.a = a;
  r.b = b;
  r.c = c;
  if (deadline_ms > 0) {
    r.has_deadline = true;
    r.deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(deadline_ms);
  }
  r.ticket = ticket;
  bool trial = false;
  if (impl_->degraded()) {
    // Passive on-path recovery: a latched breaker whose cool-down has
    // elapsed admits this submit as a half-open trial through the real
    // enqueue path below; everything else stays on the inline path.
    trial = impl_->breaker_trial_admission();
    if (!trial) {
      impl_->run_inline<T>(mode, r, ticket);
      return ticket;
    }
  }
  const std::size_t cap =
      impl_->opts.queue_cap > 0
          ? static_cast<std::size_t>(impl_->opts.queue_cap)
          : 0;
  for (long attempt = 0;; ++attempt) {
    try {
      MutexLock lock(impl_->mu);
      if (impl_->lifecycle != Impl::kRunning) {
        ++impl_->counters.shed;
        telemetry::note_request_shed();
        throw rejected_error("shalom: submit on a draining/closed stream");
      }
      if (cap > 0 && impl_->pending.size() >= cap) {
        switch (static_cast<OverloadPolicy>(impl_->opts.overload_policy)) {
          case OverloadPolicy::kShedNewest:
            ++impl_->counters.shed;
            telemetry::note_request_shed();
            throw rejected_error(
                "shalom: queue at capacity (shed-newest policy)");
          case OverloadPolicy::kShedOldest: {
            // Revoke the oldest queued request in favor of the new one.
            // An entry already revoked by a racing cancel just frees its
            // slot (its ticket was resolved by the canceller).
            auto oldest = impl_->pending.begin();
            if (oldest->ticket->revoke(
                    SHALOM_ERR_REJECTED,
                    "shalom: shed (oldest) under overload")) {
              ++impl_->counters.shed;
              telemetry::note_request_shed();
            }
            impl_->pending.erase(oldest);
            break;
          }
          case OverloadPolicy::kBlock: {
            if (!r.has_deadline) {
              while (impl_->lifecycle == Impl::kRunning &&
                     impl_->pending.size() >= cap)
                impl_->space_cv.wait(lock);
            } else {
              while (impl_->lifecycle == Impl::kRunning &&
                     impl_->pending.size() >= cap) {
                if (impl_->space_cv.wait_until(lock, r.deadline) ==
                        std::cv_status::timeout &&
                    impl_->lifecycle == Impl::kRunning &&
                    impl_->pending.size() >= cap) {
                  ++impl_->counters.expired;
                  telemetry::note_request_expired();
                  throw timeout_error(
                      "shalom: deadline expired waiting for queue space");
                }
              }
            }
            if (impl_->lifecycle != Impl::kRunning) {
              ++impl_->counters.shed;
              telemetry::note_request_shed();
              throw rejected_error(
                  "shalom: stream drained away while blocked on admission");
            }
            break;
          }
        }
      }
      if (SHALOM_FAULT_POINT(fault::Site::kSubmitQueue))
        throw std::bad_alloc();
      impl_->pending.push_back(std::move(r));  // strong: throws, queue intact
      ++impl_->counters.submitted;
      const std::uint64_t depth = impl_->pending.size();
      if (depth > impl_->counters.queue_peak)
        impl_->counters.queue_peak = depth;
      telemetry::note_queue_depth(depth);
      impl_->consecutive_failures.store(0, std::memory_order_relaxed);
      break;
    } catch (const std::bad_alloc&) {
      if (attempt < impl_->opts.retry_budget) {
        impl_->count_retry();
        backoff_sleep(attempt);
        continue;
      }
      if (trial) {
        // The half-open trial hit the same transient failure: re-open
        // the breaker with a doubled cool-down, and serve THIS request
        // inline-degraded rather than surfacing the failure - work
        // accepted mid-recovery keeps flowing.
        impl_->breaker_trial_failed();
        impl_->run_inline<T>(mode, r, ticket);
        return ticket;
      }
      // Retry budget exhausted: feed the circuit breaker. Enough
      // consecutive exhausted submits latch the stream into
      // synchronous-degraded mode so later traffic keeps flowing
      // (inline, skipping the failing enqueue path) instead of burning
      // retry time per request; the recovery cool-down armed by the
      // latch gives it a way back.
      const int fails =
          impl_->consecutive_failures.fetch_add(
              1, std::memory_order_relaxed) +
          1;
      if (fails >= impl_->opts.breaker_threshold)
        impl_->latch_breaker();
      throw;
    }
  }
  if (trial) impl_->breaker_trial_succeeded();
  impl_->submit_cv.notify_one();
  return ticket;
}

template TicketPtr GemmStream::submit<float>(Mode, index_t, index_t, index_t,
                                             float, const float*, index_t,
                                             const float*, index_t, float,
                                             float*, index_t, long);
template TicketPtr GemmStream::submit<double>(Mode, index_t, index_t,
                                              index_t, double, const double*,
                                              index_t, const double*, index_t,
                                              double, double*, index_t, long);

int GemmStream::flush() {
  MutexLock lock(impl_->mu);
  while (!impl_->pending.empty() || impl_->executing)
    impl_->drained_cv.wait(lock);
  return impl_->degraded() ? SHALOM_DEGRADED : SHALOM_OK;
}

int GemmStream::flush_for(long ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(ms > 0 ? ms : 0);
  MutexLock lock(impl_->mu);
  while (!impl_->pending.empty() || impl_->executing) {
    if (impl_->drained_cv.wait_until(lock, deadline) !=
        std::cv_status::timeout)
      continue;
    if (!impl_->pending.empty() || impl_->executing)
      return SHALOM_ERR_TIMEOUT;
  }
  return impl_->degraded() ? SHALOM_DEGRADED : SHALOM_OK;
}

int GemmStream::close() {
  {
    MutexLock lock(impl_->mu);
    if (impl_->lifecycle == Impl::kRunning)
      impl_->lifecycle = Impl::kDraining;
  }
  // Blocked submitters re-check the lifecycle and bail out rejected.
  impl_->space_cv.notify_all();
  const int rc = flush();  // every accepted request resolves
  {
    MutexLock lock(impl_->mu);
    impl_->lifecycle = Impl::kClosed;
    impl_->stop = true;
  }
  impl_->submit_cv.notify_all();
  if (impl_->drainer.joinable()) impl_->drainer.join();
  // A latched stream leaving service is removed from the process-wide
  // breaker census (not a recovery - nothing was restored).
  impl_->unlatch_breaker(false);
  return rc;
}

StreamHealth GemmStream::health() const {
  MutexLock lock(impl_->mu);
  if (impl_->lifecycle != Impl::kRunning) return StreamHealth::kDraining;
  if (impl_->degraded()) {
    // RECOVERING only while the breaker is actually half-open; a
    // spawn-degraded (synchronous) stream has no way back and stays
    // DEGRADED. Precedence: DRAINING > DEGRADED > RECOVERING >
    // SHEDDING > OK.
    if (!impl_->synchronous &&
        impl_->half_open.load(std::memory_order_acquire))
      return StreamHealth::kRecovering;
    return StreamHealth::kDegraded;
  }
  if (impl_->opts.queue_cap > 0 &&
      impl_->pending.size() >=
          static_cast<std::size_t>(impl_->opts.queue_cap))
    return StreamHealth::kShedding;
  return StreamHealth::kOk;
}

StreamStats GemmStream::stats() const {
  MutexLock lock(impl_->mu);
  StreamStats s = impl_->counters;
  s.retries = impl_->retry_count.load(std::memory_order_relaxed);
  return s;
}

}  // namespace engine
}  // namespace shalom
