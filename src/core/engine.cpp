#include "core/engine.h"

#include <algorithm>
#include <new>
#include <system_error>
#include <thread>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "core/batch.h"
#include "core/plan.h"
#include "core/plan_cache.h"

namespace shalom {
namespace engine {

// ---------------------------------------------------------------------------
// Ticket
// ---------------------------------------------------------------------------

void Ticket::complete(int status, std::string message) {
  MutexLock lock(mu_);
  status_ = status;
  message_ = std::move(message);
  done_ = true;
  cv_.notify_all();
}

int Ticket::wait() {
  MutexLock lock(mu_);
  while (!done_) cv_.wait(lock);
  return status_;
}

bool Ticket::done() const {
  MutexLock lock(mu_);
  return done_;
}

int Ticket::status() const {
  MutexLock lock(mu_);
  return status_;
}

const std::string& Ticket::message() const {
  MutexLock lock(mu_);
  return message_;
}

// ---------------------------------------------------------------------------
// GemmStream
// ---------------------------------------------------------------------------

namespace {

/// One queued request, type-erased so float and double submissions share
/// the pending vector. alpha/beta are stored widened to double; a float
/// payload round-trips exactly through the widening cast.
struct Request {
  char dtype = 's';  // 's' or 'd'
  Mode mode{};
  index_t m = 0, n = 0, k = 0, lda = 0, ldb = 0, ldc = 0;
  double alpha = 0.0, beta = 0.0;
  const void* a = nullptr;
  const void* b = nullptr;
  void* c = nullptr;
  TicketPtr ticket;
};

/// Maps the in-flight exception (catch(...) context) to its
/// shalom_status, mirroring the synchronous C boundary's translation.
/// Deliberately does NOT touch the C API's thread-local last-error slot:
/// completion runs on the drainer thread, and shalom_wait re-surfaces
/// the status on the waiting thread.
int status_of_current_exception(std::string& message) {
  try {
    throw;
  } catch (const shalom::invalid_argument& e) {
    message = e.what();
    return SHALOM_ERR_INVALID_ARGUMENT;
  } catch (const shalom::numeric_error& e) {
    message = e.what();
    return SHALOM_ERR_NUMERIC;
  } catch (const shalom::corruption_error& e) {
    message = e.what();
    return SHALOM_ERR_CORRUPTION;
  } catch (const shalom::kernel_trap_error& e) {
    message = e.what();
    return SHALOM_ERR_KERNEL_TRAP;
  } catch (const std::bad_alloc& e) {
    message = e.what();
    return SHALOM_ERR_ALLOC;
  } catch (const std::exception& e) {
    message = e.what();
    return SHALOM_ERR_INTERNAL;
  } catch (...) {
    return SHALOM_ERR_INTERNAL;
  }
}

}  // namespace

struct GemmStream::Impl {
  StreamOptions opts;

  mutable Mutex mu;
  std::condition_variable_any submit_cv;   // submitters -> drainer
  std::condition_variable_any drained_cv;  // drainer -> flush waiters
  std::vector<Request> pending SHALOM_GUARDED_BY(mu);
  bool stop SHALOM_GUARDED_BY(mu) = false;
  /// True while the drainer is executing a swapped-out batch; flush()
  /// waits on (pending empty && !draining).
  bool draining SHALOM_GUARDED_BY(mu) = false;
  StreamStats counters SHALOM_GUARDED_BY(mu);

  /// Drainer-thread spawn failed: submit() executes inline instead.
  bool synchronous = false;  // set once in the ctor, then read-only
  std::thread drainer;

  /// Executes one shape bucket (equal dtype + mode, shape-ordered) as a
  /// single coalesced gemm_batch call and resolves every ticket.
  template <typename T>
  void run_bucket(Mode mode, const std::vector<Request*>& bucket) {
    Config cfg;
    cfg.threads = opts.threads;
    cfg.use_plan_cache = opts.use_plan_cache;
    bool coalesced = true;
    int batch_status = SHALOM_OK;
    std::string batch_message;
    try {
      std::vector<BatchEntry<T>> entries;
      entries.reserve(bucket.size());
      for (const Request* r : bucket) {
        BatchEntry<T> e;
        e.m = r->m;
        e.n = r->n;
        e.k = r->k;
        e.alpha = static_cast<T>(r->alpha);
        e.a = static_cast<const T*>(r->a);
        e.lda = r->lda;
        e.b = static_cast<const T*>(r->b);
        e.ldb = r->ldb;
        e.beta = static_cast<T>(r->beta);
        e.c = static_cast<T*>(r->c);
        e.ldc = r->ldc;
        entries.push_back(e);
      }
      gemm_batch<T>(mode, entries, cfg);
    } catch (...) {
      coalesced = false;
      batch_status = status_of_current_exception(batch_message);
    }
    if (coalesced) {
      for (const Request* r : bucket)
        r->ticket->complete(SHALOM_OK, std::string());
      return;
    }
    // The coalesced run failed and gemm_batch gives no per-entry verdict:
    // some entries may already have written C. Retry individually ONLY
    // the idempotent ones (beta == 0 overwrites C, so a re-run of an
    // already-executed entry is harmless); beta != 0 entries accumulate
    // and a blind re-run could apply them twice, so they inherit the
    // batch failure instead.
    for (const Request* r : bucket) {
      if (static_cast<T>(r->beta) != T{0}) {
        r->ticket->complete(batch_status, batch_message);
        continue;
      }
      int status = SHALOM_OK;
      std::string message;
      try {
        gemm_cached<T>(mode, r->m, r->n, r->k, static_cast<T>(r->alpha),
                       static_cast<const T*>(r->a), r->lda,
                       static_cast<const T*>(r->b), r->ldb,
                       static_cast<T>(r->beta), static_cast<T*>(r->c),
                       r->ldc, cfg);
      } catch (...) {
        status = status_of_current_exception(message);
      }
      r->ticket->complete(status, std::move(message));
    }
  }

  /// Shape-buckets one swapped-out batch and runs each bucket coalesced.
  /// Returns the number of gemm_batch calls issued.
  std::uint64_t execute_batch(std::vector<Request>& batch) {
    std::vector<Request*> order;
    order.reserve(batch.size());
    for (Request& r : batch) order.push_back(&r);
    // Group by (dtype, mode) for the coalesced calls, then order by
    // shape inside the group so identical shapes run back-to-back and
    // reuse the warm per-thread plan memo / cache shard.
    const auto key = [](const Request* r) {
      return std::make_tuple(r->dtype, static_cast<int>(r->mode.a),
                             static_cast<int>(r->mode.b), r->m, r->n, r->k,
                             r->lda, r->ldb, r->ldc);
    };
    std::sort(order.begin(), order.end(),
              [&key](const Request* x, const Request* y) {
                return key(x) < key(y);
              });
    std::uint64_t calls = 0;
    std::size_t i = 0;
    while (i < order.size()) {
      std::size_t j = i;
      while (j < order.size() && order[j]->dtype == order[i]->dtype &&
             order[j]->mode.a == order[i]->mode.a &&
             order[j]->mode.b == order[i]->mode.b)
        ++j;
      const std::vector<Request*> bucket(order.begin() + static_cast<std::ptrdiff_t>(i),
                                         order.begin() + static_cast<std::ptrdiff_t>(j));
      if (order[i]->dtype == 's') {
        run_bucket<float>(order[i]->mode, bucket);
      } else {
        run_bucket<double>(order[i]->mode, bucket);
      }
      ++calls;
      i = j;
    }
    return calls;
  }

  void drain_loop() {
    for (;;) {
      std::vector<Request> batch;
      {
        MutexLock lock(mu);
        while (!stop && pending.empty()) submit_cv.wait(lock);
        if (pending.empty()) {
          if (stop) return;  // shutdown with nothing left to run
          continue;
        }
        batch.swap(pending);
        draining = true;
      }
      const std::uint64_t calls = execute_batch(batch);
      {
        MutexLock lock(mu);
        draining = false;
        counters.executed += batch.size();
        counters.batches += calls;
        drained_cv.notify_all();
      }
    }
  }
};

GemmStream::GemmStream(StreamOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = opts;
  try {
    Impl* impl = impl_.get();
    impl_->drainer = std::thread([impl] { impl->drain_loop(); });
  } catch (const std::system_error&) {
    // Degrade to synchronous execution rather than failing construction:
    // submit() then runs each request inline before returning.
    impl_->synchronous = true;
  } catch (const std::bad_alloc&) {
    impl_->synchronous = true;
  }
}

GemmStream::~GemmStream() {
  if (impl_->drainer.joinable()) {
    {
      MutexLock lock(impl_->mu);
      impl_->stop = true;
    }
    impl_->submit_cv.notify_all();
    impl_->drainer.join();  // drains everything still pending first
  }
}

template <typename T>
TicketPtr GemmStream::submit(Mode mode, index_t m, index_t n, index_t k,
                             T alpha, const T* a, index_t lda, const T* b,
                             index_t ldb, T beta, T* c, index_t ldc) {
  // Validate on the submitting thread: contract violations belong to the
  // caller, not to a ticket resolved later on the drainer.
  detail::check_gemm_args(mode, m, n, k, a, lda, b, ldb, c, ldc);
  if (SHALOM_FAULT_POINT(fault::Site::kSubmitQueue)) throw std::bad_alloc();
  auto ticket = std::make_shared<Ticket>();
  Request r;
  r.dtype = std::is_same<T, float>::value ? 's' : 'd';
  r.mode = mode;
  r.m = m;
  r.n = n;
  r.k = k;
  r.lda = lda;
  r.ldb = ldb;
  r.ldc = ldc;
  r.alpha = static_cast<double>(alpha);
  r.beta = static_cast<double>(beta);
  r.a = a;
  r.b = b;
  r.c = c;
  r.ticket = ticket;
  if (impl_->synchronous) {
    const std::vector<Request*> one{&r};
    impl_->run_bucket<T>(mode, one);
    MutexLock lock(impl_->mu);
    ++impl_->counters.submitted;
    ++impl_->counters.executed;
    ++impl_->counters.batches;
    return ticket;
  }
  {
    MutexLock lock(impl_->mu);
    impl_->pending.push_back(std::move(r));  // strong: throws, queue intact
    ++impl_->counters.submitted;
  }
  impl_->submit_cv.notify_one();
  return ticket;
}

template TicketPtr GemmStream::submit<float>(Mode, index_t, index_t, index_t,
                                             float, const float*, index_t,
                                             const float*, index_t, float,
                                             float*, index_t);
template TicketPtr GemmStream::submit<double>(Mode, index_t, index_t,
                                              index_t, double, const double*,
                                              index_t, const double*, index_t,
                                              double, double*, index_t);

void GemmStream::flush() {
  MutexLock lock(impl_->mu);
  while (!impl_->pending.empty() || impl_->draining)
    impl_->drained_cv.wait(lock);
}

StreamStats GemmStream::stats() const {
  MutexLock lock(impl_->mu);
  return impl_->counters;
}

}  // namespace engine
}  // namespace shalom
