// Serial GEMM driver (paper Algorithm 1, all four modes).
//
// Computes C = alpha * op(A) . op(B) + beta * C on row-major operands.
// The driver strings together the analytic models (core/model.h), the
// packing routines (core/pack.h) and the micro-kernels (core/microkernel.h)
// with the paper's loop structure: jj (nc) -> ii (mc) -> kk (kc) -> j (nr)
// -> i (mr), i.e. the L2/L3 loop exchange of Section 3.3 that keeps A
// accesses contiguous.
#pragma once

#include "common/matrix.h"
#include "core/types.h"

namespace shalom {

/// Single-threaded GEMM. `cfg.threads` is ignored here; use shalom::gemm
/// (shalom.h) for the parallel entry point.
template <typename T>
void gemm_serial(Mode mode, index_t M, index_t N, index_t K, T alpha,
                 const T* A, index_t lda, const T* B, index_t ldb, T beta,
                 T* C, index_t ldc, const Config& cfg = {});

namespace detail {

/// Numerical guard (Config::check_numerics): samples A, B and - when beta
/// reads it - C for NaN/Inf before dispatch. Validates the argument
/// contract first so the scan itself never reads out of bounds. Counts
/// each anomalous operand in robustness_stats().numeric_anomalies; under
/// Policy::kFail throws numeric_error naming the offending operand.
/// No-op under Policy::kIgnore.
template <typename T>
void numeric_guard_operands(Mode mode, index_t M, index_t N, index_t K,
                            const T* A, index_t lda, const T* B, index_t ldb,
                            T beta, const T* C, index_t ldc,
                            numerics::Policy policy);

/// Post-dispatch half of the guard: samples the written C tile for
/// NaN/Inf that the multiply itself produced (e.g. Inf - Inf overflow).
template <typename T>
void numeric_guard_result(index_t M, index_t N, const T* C, index_t ldc,
                          numerics::Policy policy);

}  // namespace detail

}  // namespace shalom
