/* LibShalom public C API.
 *
 * BLAS-style entry points over the C++ core. Matrices are ROW-MAJOR
 * (unlike Fortran BLAS); transpose flags are 'N'/'n' or 'T'/'t'.
 * `threads` <= 0 selects all cores, 1 is serial. Returns 0 on success,
 * nonzero on invalid arguments.
 */
#pragma once

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

int shalom_sgemm(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n,
                 ptrdiff_t k, float alpha, const float* a, ptrdiff_t lda,
                 const float* b, ptrdiff_t ldb, float beta, float* c,
                 ptrdiff_t ldc, int threads);

int shalom_dgemm(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n,
                 ptrdiff_t k, double alpha, const double* a, ptrdiff_t lda,
                 const double* b, ptrdiff_t ldb, double beta, double* c,
                 ptrdiff_t ldc, int threads);

#ifdef __cplusplus
}
#endif
