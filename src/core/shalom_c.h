/* LibShalom public C API.
 *
 * BLAS-style entry points over the C++ core. Matrices are ROW-MAJOR
 * (unlike Fortran BLAS); transpose flags are 'N'/'n' or 'T'/'t'.
 * `threads` <= 0 selects all cores, 1 is serial. Returns 0 on success,
 * nonzero on invalid arguments.
 */
#pragma once

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

int shalom_sgemm(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n,
                 ptrdiff_t k, float alpha, const float* a, ptrdiff_t lda,
                 const float* b, ptrdiff_t ldb, float beta, float* c,
                 ptrdiff_t ldc, int threads);

int shalom_dgemm(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n,
                 ptrdiff_t k, double alpha, const double* a, ptrdiff_t lda,
                 const double* b, ptrdiff_t ldb, double beta, double* c,
                 ptrdiff_t ldc, int threads);

/* ------------------------------------------------------------------------
 * Execution-plan API: create a plan once for a (dtype, transposes, shape,
 * threads) combination, execute it many times, destroy it when done. The
 * plan snapshots every shape-dependent decision, so repeated executions
 * skip the per-call analytic models entirely. Executing one plan from
 * several threads at once is safe; parallel (threads > 1) plans serialize
 * their fork-join rounds on the library's shared worker pool.
 *
 * Return codes: 0 success, 1 invalid dtype/transpose flag, 2 invalid
 * dimensions or strides, 3 null handle or output pointer, 4 dtype
 * mismatch between plan and execute entry point, 5 allocation failure,
 * 6 unexpected internal error (no exception ever escapes the C API).
 * ---------------------------------------------------------------------- */

typedef struct shalom_plan shalom_plan;

/* dtype is 's' (float) or 'd' (double); threads <= 0 selects all cores.
 * On success *out_plan owns the plan; free it with shalom_plan_destroy. */
int shalom_plan_create(shalom_plan** out_plan, char dtype, char trans_a,
                       char trans_b, ptrdiff_t m, ptrdiff_t n, ptrdiff_t k,
                       int threads);

/* C = alpha * op(A) . op(B) + beta * C with the plan's shape; strides are
 * validated against the plan on every call. */
int shalom_plan_execute_s(const shalom_plan* plan, float alpha,
                          const float* a, ptrdiff_t lda, const float* b,
                          ptrdiff_t ldb, float beta, float* c,
                          ptrdiff_t ldc);
int shalom_plan_execute_d(const shalom_plan* plan, double alpha,
                          const double* a, ptrdiff_t lda, const double* b,
                          ptrdiff_t ldb, double beta, double* c,
                          ptrdiff_t ldc);

/* Safe on NULL. */
void shalom_plan_destroy(shalom_plan* plan);

#ifdef __cplusplus
}
#endif
