/* LibShalom public C API.
 *
 * BLAS-style entry points over the C++ core. Matrices are ROW-MAJOR
 * (unlike Fortran BLAS); transpose flags are 'N'/'n' or 'T'/'t'.
 * `threads` <= 0 selects all cores, 1 is serial.
 *
 * Every entry point returns a shalom_status code (common/error.h is the
 * single source of truth shared with the C++ core):
 *   0  SHALOM_OK                    success
 *   1  SHALOM_ERR_BAD_FLAG         unknown dtype or transpose flag
 *   2  SHALOM_ERR_INVALID_ARGUMENT bad dimensions/strides or size overflow
 *   3  SHALOM_ERR_NULL_POINTER     null handle or output pointer
 *   4  SHALOM_ERR_DTYPE_MISMATCH   plan dtype != execute entry point
 *   5  SHALOM_ERR_ALLOC            allocation failure (not degradable)
 *   6  SHALOM_ERR_INTERNAL         unexpected internal error
 *   7  SHALOM_ERR_NUMERIC          NaN/Inf caught by the numerical guard
 *                                  (only with SHALOM_CHECK_NUMERICS=fail)
 *   8  SHALOM_ERR_KERNEL_TRAP      kernel crashed inside a trap-contained
 *                                  probe (variant quarantined)
 *   9  SHALOM_ERR_CORRUPTION       guarded pack-arena canary violated
 *                                  (only with SHALOM_GUARD=canary|poison)
 *  10  SHALOM_ERR_REJECTED         request shed by stream admission control
 *                                  (queue at capacity / stream draining) or
 *                                  cancelled before execution
 *  11  SHALOM_ERR_TIMEOUT          request deadline expired before
 *                                  execution, or a timed wait ran out
 *  12  SHALOM_DEGRADED             not an error: the work completed with
 *                                  correct results on a degraded synchronous
 *                                  path (see shalom_stream_health)
 *  13  SHALOM_ERR_TABLE            persistent tuned-table operation failed
 *                                  (corrupt/skewed/unreadable file, or an
 *                                  aborted atomic save); the process runs
 *                                  cold and any previous on-disk table is
 *                                  untouched
 * No exception ever crosses this boundary. shalom_strerror() names a
 * code; shalom_last_error_message() returns the calling thread's detail
 * message for its most recent failed call.
 *
 * Degradation guarantees (see DESIGN.md for the full matrix): recoverable
 * resource exhaustion inside a GEMM - pack-buffer allocation failure,
 * worker-thread spawn failure, plan-cache memory pressure - never fails
 * the call. The library falls back to unpacked kernels, fewer threads
 * (down to serial), or uncached planning, returns SHALOM_OK with the
 * exact same numerical result, and counts the event in shalom_stats.
 */
#pragma once

#include <stddef.h>
#include <stdint.h>

#include "common/error.h" /* shalom_status codes */

#ifdef __cplusplus
extern "C" {
#endif

int shalom_sgemm(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n,
                 ptrdiff_t k, float alpha, const float* a, ptrdiff_t lda,
                 const float* b, ptrdiff_t ldb, float beta, float* c,
                 ptrdiff_t ldc, int threads);

int shalom_dgemm(char trans_a, char trans_b, ptrdiff_t m, ptrdiff_t n,
                 ptrdiff_t k, double alpha, const double* a, ptrdiff_t lda,
                 const double* b, ptrdiff_t ldb, double beta, double* c,
                 ptrdiff_t ldc, int threads);

/* ------------------------------------------------------------------------
 * Error reporting.
 * ---------------------------------------------------------------------- */

/* Static description of a shalom_status code; never NULL. */
const char* shalom_strerror(int code);

/* Detail message for the calling thread's most recent failed shalom_*
 * call ("" if none since the last successful call). The buffer is
 * thread-local and overwritten by the next failure; copy it if needed. */
const char* shalom_last_error_message(void);

/* ------------------------------------------------------------------------
 * Degradation telemetry: process-wide counters of graceful-degradation
 * events (see the header comment). All zero in a healthy process.
 * ---------------------------------------------------------------------- */

typedef struct shalom_stats {
  uint64_t fallback_nopack;    /* executions using the no-pack fallback */
  uint64_t threads_degraded;   /* fork-join rounds below requested width */
  uint64_t plan_cache_bypassed;/* calls that ran without plan-cache backing */
  uint64_t faults_injected;    /* injected faults (testing builds only) */
  uint64_t kernels_quarantined;/* kernel variants failing their selfcheck */
  uint64_t selfchecks_run;     /* selfcheck probes executed */
  uint64_t numeric_anomalies;  /* NaN/Inf hits seen by the numerical guard */
  uint64_t kernels_trapped;    /* hardware traps contained by a probe scope */
  uint64_t watchdog_trips;     /* thread-pool watchdog stall recoveries */
  uint64_t arena_corruptions;  /* guarded pack-arena canary violations */
  uint64_t stream_queue_peak;  /* high-water stream submission-queue depth */
  uint64_t requests_shed;      /* submissions rejected by admission control */
  uint64_t requests_expired;   /* requests whose deadline expired unexecuted */
  uint64_t requests_cancelled; /* requests cancelled before execution */
  uint64_t submit_retries;     /* transient-failure backoff retries spent */
  uint64_t breaker_trips;      /* streams latched synchronous-degraded */
  uint64_t table_records_rejected; /* tuned-table records skipped by
                                      checksum/contract validation */
  uint64_t table_load_failures;    /* tuned-table files rejected as a whole
                                      plus aborted atomic saves */
  uint64_t recoveries;         /* components restored to full service */
  uint64_t probation_probes;   /* recovery probes run against degraded
                                  components (incl. breaker trials) */
  uint64_t probation_failures; /* probes that failed: the component
                                  re-latched with a doubled cool-down */
  uint64_t breaker_half_opens; /* stream breakers that entered half-open
                                  trial admission after their cool-down */
} shalom_stats;

/* Snapshot of the counters; `out` may not be NULL. */
void shalom_get_stats(shalom_stats* out);

/* Resets all counters to zero (testing/monitoring epochs). */
void shalom_reset_stats(void);

/* ------------------------------------------------------------------------
 * Kernel self-verification. Every micro-kernel variant the dispatcher can
 * select is also probed lazily the first time it would run; this entry
 * point forces the whole sweep eagerly (e.g. at process start, or set
 * SHALOM_SELFTEST=1 to run it during library initialization). A variant
 * whose probe output diverges from the scalar reference is permanently
 * quarantined: dispatch reroutes to the next-best verified kernel
 * (ultimately the scalar reference), results stay correct, and the event
 * is counted in shalom_stats.kernels_quarantined.
 * ---------------------------------------------------------------------- */

/* Probes every registered kernel variant against the scalar reference.
 * Returns the number of quarantined variants (0 = all verified). */
int shalom_selftest(void);

/* ------------------------------------------------------------------------
 * Execution-plan API: create a plan once for a (dtype, transposes, shape,
 * threads) combination, execute it many times, destroy it when done. The
 * plan snapshots every shape-dependent decision, so repeated executions
 * skip the per-call analytic models entirely. Executing one plan from
 * several threads at once is safe; parallel (threads > 1) plans run
 * their fork-join rounds on the library's shared work-stealing pool,
 * where rounds from independent callers overlap.
 * ---------------------------------------------------------------------- */

typedef struct shalom_plan shalom_plan;

/* dtype is 's' (float) or 'd' (double); threads <= 0 selects all cores.
 * On success *out_plan owns the plan; free it with shalom_plan_destroy. */
int shalom_plan_create(shalom_plan** out_plan, char dtype, char trans_a,
                       char trans_b, ptrdiff_t m, ptrdiff_t n, ptrdiff_t k,
                       int threads);

/* C = alpha * op(A) . op(B) + beta * C with the plan's shape; strides are
 * validated against the plan on every call. */
int shalom_plan_execute_s(const shalom_plan* plan, float alpha,
                          const float* a, ptrdiff_t lda, const float* b,
                          ptrdiff_t ldb, float beta, float* c,
                          ptrdiff_t ldc);
int shalom_plan_execute_d(const shalom_plan* plan, double alpha,
                          const double* a, ptrdiff_t lda, const double* b,
                          ptrdiff_t ldb, double beta, double* c,
                          ptrdiff_t ldc);

/* Safe on NULL. */
void shalom_plan_destroy(shalom_plan* plan);

/* ------------------------------------------------------------------------
 * Asynchronous submission API: a stream decouples submitting a GEMM from
 * executing it. shalom_submit_* validates the arguments, enqueues the
 * request and returns immediately with a future; a drainer thread behind
 * the stream shape-buckets pending requests and coalesces each bucket
 * into one batched execution over the work-stealing pool, so submitters
 * never wait on other requests and repeated shapes share warm plans.
 *
 * The caller's A/B/C buffers must stay alive and unmodified (C: un-read)
 * until that request's future completes - exactly like a still-running
 * synchronous call. Outputs of requests in flight on one stream must not
 * alias each other.
 *
 * Execution-time failures surface on the FUTURE, not the submit call:
 * shalom_submit_* only fails for contract violations (bad flags, bad
 * dimensions, NULL pointers), when admission control sheds the request
 * (SHALOM_ERR_REJECTED: queue at capacity under a shed-* policy, or the
 * stream is draining/closed), when a block-policy wait for queue space
 * outlives the request's deadline (SHALOM_ERR_TIMEOUT), or when the
 * request cannot be queued after the retry budget is spent
 * (SHALOM_ERR_ALLOC). The queue is unchanged in every failing case.
 * shalom_wait returns the request's final status and installs a
 * failure's detail message as the waiting thread's last-error message.
 *
 * Admission control and QoS (see DESIGN.md "Stream lifecycle"): the
 * pending queue is bounded by SHALOM_QUEUE_CAP (0/unset = unbounded) and
 * SHALOM_OVERLOAD_POLICY picks what happens at capacity:
 *   block        park the submitter until space frees (bounded by the
 *                request's deadline when it has one)     [default]
 *   shed-newest  reject the incoming request (SHALOM_ERR_REJECTED)
 *   shed-oldest  revoke the oldest queued request in its favor (its
 *                future resolves SHALOM_ERR_REJECTED)
 * SHALOM_RETRY_BUDGET bounds exponential-backoff retries for transient
 * queue/spawn failures (default 3); a circuit breaker latches a stream
 * whose submits keep failing into synchronous-degraded mode, where
 * requests still execute correctly (futures resolve SHALOM_DEGRADED).
 * ---------------------------------------------------------------------- */

typedef struct shalom_stream shalom_stream;
typedef struct shalom_future shalom_future;

/* threads <= 0 selects the default execution width (all cores). On
 * success *out_stream owns the stream; free it with
 * shalom_stream_destroy. If the internal drainer thread cannot be
 * spawned the stream still works, executing each request synchronously
 * inside shalom_submit_*. */
int shalom_stream_create(shalom_stream** out_stream, int threads);

/* Graceful shutdown: stops admission (later submits on the stream return
 * SHALOM_ERR_REJECTED), resolves every request already accepted, then
 * releases the stream. Outstanding futures stay valid (they share
 * ownership of their completion state). Safe on NULL. */
void shalom_stream_destroy(shalom_stream* stream);

/* Blocks until every request submitted before this call has resolved.
 * Returns SHALOM_OK, or SHALOM_DEGRADED when the stream is executing on
 * a degraded synchronous path (drainer-spawn failure or a latched
 * circuit breaker) - work completed correctly, but callers should stop
 * routing load here. Per-request verdicts are on the futures. */
int shalom_stream_flush(shalom_stream* stream);

/* shalom_stream_flush bounded by `ms` milliseconds: additionally returns
 * SHALOM_ERR_TIMEOUT when the queue had not drained in time (the stream
 * keeps draining in the background; flush again to re-wait). */
int shalom_stream_flush_for(shalom_stream* stream, long ms);

/* Coarse stream condition for load-balancer style probes. Precedence
 * when several apply: DRAINING > DEGRADED > RECOVERING > SHEDDING > OK. */
typedef enum shalom_stream_health_state {
  SHALOM_STREAM_HEALTH_OK = 0,
  SHALOM_STREAM_HEALTH_DEGRADED = 1, /* latched synchronous execution */
  SHALOM_STREAM_HEALTH_SHEDDING = 2, /* queue at capacity right now */
  SHALOM_STREAM_HEALTH_DRAINING = 3, /* shutdown in progress (or closed) */
  SHALOM_STREAM_HEALTH_RECOVERING = 4, /* breaker half-open: trial
                                          submissions probing the queue */
} shalom_stream_health_state;

/* Returns the stream's shalom_stream_health_state, or -1 when stream is
 * NULL. Not a status code. */
int shalom_stream_health(const shalom_stream* stream);

/* Enqueue C = alpha * op(A) . op(B) + beta * C (row-major, like
 * shalom_sgemm). On success *out_future owns a future for the request;
 * free it with shalom_future_destroy (before or after completion -
 * dropping a future never cancels the request). out_future may be NULL
 * for fire-and-forget submission; shalom_stream_flush still covers the
 * request. */
int shalom_submit_s(shalom_stream* stream, char trans_a, char trans_b,
                    ptrdiff_t m, ptrdiff_t n, ptrdiff_t k, float alpha,
                    const float* a, ptrdiff_t lda, const float* b,
                    ptrdiff_t ldb, float beta, float* c, ptrdiff_t ldc,
                    shalom_future** out_future);
int shalom_submit_d(shalom_stream* stream, char trans_a, char trans_b,
                    ptrdiff_t m, ptrdiff_t n, ptrdiff_t k, double alpha,
                    const double* a, ptrdiff_t lda, const double* b,
                    ptrdiff_t ldb, double beta, double* c, ptrdiff_t ldc,
                    shalom_future** out_future);

/* shalom_submit_* with a per-request deadline: if the request has not
 * started executing within `deadline_ms` milliseconds of submission its
 * future resolves with SHALOM_ERR_TIMEOUT instead (the output buffer is
 * untouched). deadline_ms <= 0 means no deadline. Under the block
 * overload policy the deadline also bounds the wait for queue space. */
int shalom_submit_timed_s(shalom_stream* stream, char trans_a, char trans_b,
                          ptrdiff_t m, ptrdiff_t n, ptrdiff_t k, float alpha,
                          const float* a, ptrdiff_t lda, const float* b,
                          ptrdiff_t ldb, float beta, float* c, ptrdiff_t ldc,
                          long deadline_ms, shalom_future** out_future);
int shalom_submit_timed_d(shalom_stream* stream, char trans_a, char trans_b,
                          ptrdiff_t m, ptrdiff_t n, ptrdiff_t k,
                          double alpha, const double* a, ptrdiff_t lda,
                          const double* b, ptrdiff_t ldb, double beta,
                          double* c, ptrdiff_t ldc, long deadline_ms,
                          shalom_future** out_future);

/* Blocks until the request has executed and returns its shalom_status;
 * a failure's detail message becomes this thread's last-error message
 * (SHALOM_DEGRADED is not a failure and leaves it untouched).
 * Idempotent: calling again returns the same status immediately. */
int shalom_wait(shalom_future* future);

/* shalom_wait bounded by `ms` milliseconds: returns SHALOM_ERR_TIMEOUT
 * when the request had not resolved in time. The future is untouched by
 * a timed-out wait - the request keeps running; wait again or cancel. */
int shalom_wait_for(shalom_future* future, long ms);

/* Cancels a request that is still queued: its future resolves with
 * SHALOM_ERR_REJECTED and its buffers are guaranteed never to be
 * touched. Returns 1 when this call cancelled the request, 0 when it
 * was too late (already executing or resolved) or future is NULL; never
 * blocks. Safe to race with the stream's drainer and with destruction
 * of the stream. */
int shalom_future_cancel(shalom_future* future);

/* Nonzero once the request has executed (then shalom_wait will not
 * block); 0 while pending or when future is NULL. Not a status code. */
int shalom_future_done(const shalom_future* future);

/* Safe on NULL and safe before completion: the request keeps running and
 * its buffers must still outlive it (use shalom_stream_flush or
 * shalom_stream_destroy to rendezvous). */
void shalom_future_destroy(shalom_future* future);

/* ------------------------------------------------------------------------
 * Plan-cache hot-shape snapshot: the top-k most recently used cached
 * shapes, hottest first, merged across the float and double caches. The
 * same snapshot the background re-tuner promotes from, exposed so
 * operators and the re-tuner share one source of truth.
 * ---------------------------------------------------------------------- */

typedef struct shalom_hot_shape {
  char dtype;              /* 's' or 'd' */
  char trans_a;            /* 'N' or 'T' */
  char trans_b;            /* 'N' or 'T' */
  ptrdiff_t m, n, k;
  int threads;             /* resolved worker count in the cache key */
  uint64_t last_use_tick;  /* global LRU tick of the most recent touch;
                              higher = hotter (per-dtype counters, so
                              ordering is exact within a dtype and
                              approximate across them) */
} shalom_hot_shape;

/* Fills `out` with up to `capacity` hot shapes and returns the number
 * written (>= 0), or the NEGATED error code (-SHALOM_ERR_NULL_POINTER)
 * when out is NULL with capacity > 0 - negation keeps a small count and
 * a small error code unambiguous. capacity <= 0 returns 0. */
int shalom_plan_cache_hot(shalom_hot_shape* out, int capacity);

/* ------------------------------------------------------------------------
 * Self-healing recovery (common/health.h). Every degradable component -
 * kernel variants, the thread pool, stream circuit breakers, the plan
 * cache, the tuned table - is tracked through an explicit state machine
 * (HEALTHY -> DEGRADED -> PROBATION -> HEALTHY, or QUARANTINED on
 * terminal evidence) with exponential-backoff cool-downs between
 * recovery probes. SHALOM_RECOVERY_MS sets the base cool-down (0
 * disables recovery: every degradation latches permanently, the pre-PR-10
 * behaviour); SHALOM_PROBATION_N sets the clean-probe streak required to
 * restore a component. Recovery events are counted in shalom_stats
 * (recoveries, probation_probes, probation_failures, breaker_half_opens).
 * ---------------------------------------------------------------------- */

typedef enum shalom_health_state {
  SHALOM_HEALTH_HEALTHY = 0,
  SHALOM_HEALTH_DEGRADED = 1,    /* cool-down before the next probe */
  SHALOM_HEALTH_PROBATION = 2,   /* a recovery probe is in flight */
  SHALOM_HEALTH_QUARANTINED = 3, /* terminal evidence; never re-probed */
} shalom_health_state;

typedef enum shalom_health_cause {
  SHALOM_HEALTH_CAUSE_NONE = 0,
  SHALOM_HEALTH_CAUSE_MISMATCH = 1, /* diverged from the scalar oracle */
  SHALOM_HEALTH_CAUSE_TRAP = 2,     /* hardware trap contained by a guard */
  SHALOM_HEALTH_CAUSE_INJECTED = 3, /* fault-injection framework */
  SHALOM_HEALTH_CAUSE_OVERLOAD = 4, /* alloc/spawn/queue exhaustion */
} shalom_health_cause;

/* Index into shalom_health.components. */
typedef enum shalom_health_component_id {
  SHALOM_HEALTH_KERNELS = 0,
  SHALOM_HEALTH_THREADPOOL = 1,
  SHALOM_HEALTH_STREAM_BREAKER = 2,
  SHALOM_HEALTH_PLAN_CACHE = 3,
  SHALOM_HEALTH_TUNED_TABLE = 4,
  SHALOM_HEALTH_COMPONENT_COUNT = 5,
} shalom_health_component_id;

typedef struct shalom_health_component {
  int state; /* shalom_health_state */
  int cause; /* shalom_health_cause: why it last left HEALTHY */
  uint64_t backoff_ms;    /* current cool-down width (doubles per failed
                             probation, capped) */
  uint64_t cooldown_remaining_ms; /* ms until the next probe may run; 0
                                     when none is pending */
} shalom_health_component;

typedef struct shalom_health {
  shalom_health_component components[SHALOM_HEALTH_COMPONENT_COUNT];
  int all_healthy; /* 1 when every component is HEALTHY */
} shalom_health;

/* Snapshot of the recovery registry. Returns SHALOM_OK, or
 * SHALOM_ERR_NULL_POINTER when out is NULL. */
int shalom_health_report(shalom_health* out);

/* One forced recovery tick: expires every pending cool-down and runs
 * each degraded component's recovery probe immediately (what the
 * passive on-path checks and the background prober would do after the
 * cool-down). Returns the number of components restored to HEALTHY by
 * this call (>= 0); with SHALOM_RECOVERY_MS=0 recovery stays disabled
 * and the call returns 0 without probing. Never a status code. */
int shalom_recover_now(void);

/* ------------------------------------------------------------------------
 * Persistent tuned-table store (tuning/table.h). These entry points live
 * in the shalom_tuning library - link it (in addition to the core) to
 * use them. Setting SHALOM_TUNED_TABLE=<path> in the environment loads
 * the table automatically at startup in binaries linking the store.
 * ---------------------------------------------------------------------- */

/* Loads a tuned-table file and pre-seeds the plan cache with every
 * record that passes checksum + kernel-contract validation. Invalid
 * records are skipped (shalom_stats.table_records_rejected); a missing,
 * truncated, corrupt or version/fingerprint-skewed file returns
 * SHALOM_ERR_TABLE (shalom_stats.table_load_failures) and the process
 * simply stays cold. Never crashes on any input. */
int shalom_table_load(const char* path);

/* Atomically saves the registered tuned records to `path` (write temp
 * file, fsync, rename). On failure - including armed table.* fault
 * sites - returns SHALOM_ERR_TABLE and a previous table at `path` is
 * left byte-identical. */
int shalom_table_save(const char* path);

typedef struct shalom_table_stats {
  uint64_t records_loaded;   /* records validated + seeded by loads */
  uint64_t records_rejected; /* records skipped by validation */
  uint64_t load_failures;    /* whole-file load failures + aborted saves */
  uint64_t saves;            /* atomic commits completed */
  uint64_t save_failures;    /* saves aborted (previous table kept) */
  uint64_t size;             /* records currently registered in memory */
} shalom_table_stats;

/* Snapshot of the table counters; `out` may not be NULL. */
int shalom_table_get_stats(shalom_table_stats* out);

#ifdef __cplusplus
}
#endif
