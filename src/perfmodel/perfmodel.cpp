#include "perfmodel/perfmodel.h"

#include <algorithm>
#include <cmath>

#include "core/model.h"

namespace shalom::perfmodel {

namespace {

/// Fraction of peak a scalar remainder routine achieves (one lane, no
/// unrolling: 1 FMA per several cycles).
constexpr double kScalarEdgeEff = 0.08;
/// Fraction of the full-tile efficiency a vectorized (but partial-width)
/// edge kernel achieves.
constexpr double kVectorEdgeEff = 0.65;

struct BlockShape {
  index_t m = 0;
  index_t n = 0;
};

/// Worst-loaded thread block under a partition scheme (ceil splits).
BlockShape worst_block(PartitionScheme scheme, index_t M, index_t N,
                       int threads, int mr, int nr) {
  if (threads <= 1) return {M, N};
  switch (scheme) {
    case PartitionScheme::kColumns1D:
      return {M, (N + threads - 1) / threads};
    case PartitionScheme::kSquare2D: {
      int tm = static_cast<int>(std::sqrt(static_cast<double>(threads)));
      while (threads % tm != 0) --tm;
      int tn = threads / tm;
      if (M < N) std::swap(tm, tn);
      tm = std::min<int>(tm, static_cast<int>(std::max<index_t>(1, M)));
      tn = std::min<int>(tn, static_cast<int>(std::max<index_t>(1, N)));
      return {(M + tm - 1) / tm, (N + tn - 1) / tn};
    }
    case PartitionScheme::kCmrOptimal: {
      const model::Partition p =
          model::solve_partition(threads, M, N, {mr, nr});
      return {(M + p.tm - 1) / p.tm, (N + p.tn - 1) / p.tn};
    }
  }
  return {M, N};
}

/// Active thread count a scheme can actually use on this problem.
int active_threads(PartitionScheme scheme, index_t M, index_t N,
                   int threads, int mr, int nr) {
  if (threads <= 1) return 1;
  switch (scheme) {
    case PartitionScheme::kColumns1D:
      return static_cast<int>(std::min<index_t>(threads, N));
    case PartitionScheme::kSquare2D:
      return threads;
    case PartitionScheme::kCmrOptimal: {
      const model::Partition p =
          model::solve_partition(threads, M, N, {mr, nr});
      return p.tm * p.tn;
    }
  }
  return threads;
}

template <typename T>
double predict_block_seconds(const arch::MachineDescriptor& m,
                             const Strategy& s, Mode mode, index_t mb,
                             index_t nb, index_t K, int active) {
  const double lanes = m.vector_bits / (8.0 * sizeof(T));
  const int nr = static_cast<int>(s.nrv * lanes);
  const double peak_core = m.peak_gflops_per_core<T>() * 1e9;  // FLOP/s
  const double cycle_hz = m.frequency_ghz * 1e9;

  // --- kernel issue efficiency -------------------------------------------
  // Per k-iteration of an mr x nr tile: mr*nrv vector FMAs against the
  // FMA pipes vs (B loads + amortized A loads [+ pack stores when the
  // packing is fused]) against the load/store pipes.
  const double fma_ops = static_cast<double>(s.mr) * s.nrv;
  double mem_ops = s.nrv + s.mr / lanes;
  if (s.pack_b_fused) mem_ops += s.nrv;  // interleaved pack stores
  const double cyc_fma = fma_ops / m.fma_pipes;
  const double cyc_mem = mem_ops / m.load_pipes;
  double tile_eff = cyc_fma / std::max(cyc_fma, cyc_mem);

  // C-tile fill/drain amortization over the K loop.
  const double c_update_cyc = fma_ops * 2.0;
  tile_eff *= static_cast<double>(K) /
              (static_cast<double>(K) + c_update_cyc / cyc_fma);

  // --- edge-tile fraction --------------------------------------------------
  const double cover_m =
      mb >= s.mr ? static_cast<double>(mb / s.mr * s.mr) / mb : 0.0;
  const double cover_n =
      nb >= nr ? static_cast<double>(nb / nr * nr) / nb : 0.0;
  const double frac_full = cover_m * cover_n;
  const double edge_eff =
      s.scalar_edges ? kScalarEdgeEff : kVectorEdgeEff * tile_eff;
  const double eff =
      frac_full * tile_eff + (1.0 - frac_full) * std::max(1e-3, edge_eff);

  const double flops = 2.0 * mb * nb * K;
  const double t_compute = flops / (peak_core * eff);

  // --- packing cost ----------------------------------------------------
  // Separate-pass packing moves the operand through the core twice
  // (read + write), serialized with compute. The source read streams from
  // DRAM, so with `active` threads packing simultaneously the pass is
  // bounded by the per-thread share of chip bandwidth, not just the
  // core's copy rate - this is what caps pack-then-compute libraries on
  // many-core parts (paper Fig. 11). Fused packing is charged inside
  // mem_ops above instead.
  const double copy_bw = cycle_hz * 8.0;  // bytes/s, ~8 B/cycle sustained
  const double bw_share = m.mem_bw_gbps * 1e9 / std::max(1, active);
  const double pack_bw = std::min(copy_bw, bw_share);
  double pack_bytes = 0.0;
  const bool b_is_l1 = static_cast<double>(K) * nb * sizeof(T) <=
                       static_cast<double>(m.l1d.size_bytes);
  const bool skip_b = s.selective && mode.b == Trans::N && b_is_l1;
  if (s.pack_b_separate && !skip_b)
    pack_bytes += 2.0 * K * nb * sizeof(T);
  const bool skip_a = s.selective && mode.a == Trans::N;
  if (s.pack_a && !skip_a) pack_bytes += 2.0 * mb * K * sizeof(T);
  const double t_pack = pack_bytes / pack_bw;

  // --- DRAM roofline -----------------------------------------------------
  const double traffic =
      sizeof(T) * (static_cast<double>(mb) * K + static_cast<double>(K) * nb +
                   2.0 * mb * nb) +
      pack_bytes / 2.0;  // packed-buffer writebacks add traffic
  const double t_mem = traffic / bw_share;

  return std::max(t_compute + t_pack, t_mem);
}

}  // namespace

const std::vector<Strategy>& modeled_strategies() {
  static const std::vector<Strategy> v = {
      {"OpenBLAS*", 8, 1, true, true, false, false, true,
       PartitionScheme::kColumns1D},
      {"ARMPL*", 6, 2, true, true, false, false, false,
       PartitionScheme::kColumns1D},
      {"BLIS*", 8, 2, true, true, false, false, false,
       PartitionScheme::kSquare2D},
      {"LibShalom", 7, 3, false, false, true, true, false,
       PartitionScheme::kCmrOptimal},
  };
  return v;
}

template <typename T>
double predict_gflops(const arch::MachineDescriptor& machine,
                      const Strategy& s, Mode mode, index_t M, index_t N,
                      index_t K, int threads) {
  const double lanes = machine.vector_bits / (8.0 * sizeof(T));
  const int nr = static_cast<int>(s.nrv * lanes);
  const int active =
      active_threads(s.partition, M, N, std::max(1, threads), s.mr, nr);
  const BlockShape blk = worst_block(s.partition, M, N, active, s.mr, nr);
  double t = predict_block_seconds<T>(machine, s, mode, blk.m, blk.n, K,
                                      active);
  if (active > 1)
    t += machine.forkjoin_us * 1e-6 * std::log2(static_cast<double>(active));
  const double flops = 2.0 * M * N * static_cast<double>(K);
  return flops / t / 1e9;
}

template <typename T>
double predict_speedup(const arch::MachineDescriptor& machine,
                       const Strategy& s, Mode mode, index_t M, index_t N,
                       index_t K, int threads) {
  const double g1 = predict_gflops<T>(machine, s, mode, M, N, K, 1);
  const double gt = predict_gflops<T>(machine, s, mode, M, N, K, threads);
  return gt / g1;
}

template double predict_gflops<float>(const arch::MachineDescriptor&,
                                      const Strategy&, Mode, index_t,
                                      index_t, index_t, int);
template double predict_gflops<double>(const arch::MachineDescriptor&,
                                       const Strategy&, Mode, index_t,
                                       index_t, index_t, int);
template double predict_speedup<float>(const arch::MachineDescriptor&,
                                       const Strategy&, Mode, index_t,
                                       index_t, index_t, int);
template double predict_speedup<double>(const arch::MachineDescriptor&,
                                        const Strategy&, Mode, index_t,
                                        index_t, index_t, int);

}  // namespace shalom::perfmodel
