// Analytic GEMM performance model.
//
// The reproduction host is a single x86 core, so the paper's multi-core /
// multi-platform figures (9, 10, 11) cannot be measured directly. This
// model predicts GFLOPS for each library *strategy* on a
// MachineDescriptor from first principles - the same quantities the
// paper's own analysis reasons about:
//
//   * kernel issue efficiency from the register-tile CMR against the
//     machine's FMA and load pipes,
//   * packing cost, charged serially for pack-then-compute strategies and
//     hidden behind the FMA stream for LibShalom's fused packing,
//   * edge-tile fraction at the strategy's tile size (scalar-speed for
//     strategies with dedicated remainder routines),
//   * a DRAM roofline over the per-thread traffic,
//   * fork-join cost and the work imbalance of the strategy's partition
//     scheme (1-D columns, 2-D square, or LibShalom's CMR-optimal grid).
//
// EXPERIMENTS.md labels every number produced here as "modeled".
#pragma once

#include <string>
#include <vector>

#include "arch/machine.h"
#include "core/types.h"

namespace shalom::perfmodel {

/// Partition scheme a strategy uses for parallel runs.
enum class PartitionScheme { kColumns1D, kSquare2D, kCmrOptimal };

/// Library strategy parameters the model consumes.
struct Strategy {
  std::string name;
  int mr = 8;
  int nrv = 1;                   // nr = nrv * lanes
  bool pack_a = true;            // packs A in a separate pass
  bool pack_b_separate = true;   // packs B in a separate pass
  bool pack_b_fused = false;     // packs B overlapped with FMAs
  bool selective = false;        // skips packing L1-resident operands
  bool scalar_edges = false;     // remainder tiles run at scalar speed
  PartitionScheme partition = PartitionScheme::kColumns1D;
};

/// The four strategies of the parallel figures: OpenBLAS*, ARMPL*, BLIS*,
/// LibShalom (same order as baselines::parallel_libraries()).
const std::vector<Strategy>& modeled_strategies();

/// Predicted whole-call GFLOPS for one GEMM on `machine` with `threads`
/// workers.
template <typename T>
double predict_gflops(const arch::MachineDescriptor& machine,
                      const Strategy& strategy, Mode mode, index_t M,
                      index_t N, index_t K, int threads);

/// Predicted parallel speedup relative to the strategy's own
/// single-thread time (used for the Fig. 11 scalability curves).
template <typename T>
double predict_speedup(const arch::MachineDescriptor& machine,
                       const Strategy& strategy, Mode mode, index_t M,
                       index_t N, index_t K, int threads);

}  // namespace shalom::perfmodel
