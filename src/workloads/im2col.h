// Convolution-to-GEMM lowering (im2col).
//
// The paper's irregular-shaped workloads come from CNN convolutions: a
// conv layer with C_in input channels, R x S filters and P x Q output
// pixels lowers to a GEMM with M = C_out, K = C_in*R*S, N = P*Q - exactly
// the VGG16 shapes of Fig. 15. This module implements the lowering so the
// examples can run a real convolution through LibShalom.
#pragma once

#include "common/matrix.h"

namespace shalom::workloads {

struct ConvSpec {
  index_t in_channels = 0;
  index_t out_channels = 0;
  index_t height = 0;      // input spatial height
  index_t width = 0;       // input spatial width
  index_t kernel = 3;      // square R = S
  index_t stride = 1;
  index_t pad = 1;

  index_t out_height() const {
    return (height + 2 * pad - kernel) / stride + 1;
  }
  index_t out_width() const {
    return (width + 2 * pad - kernel) / stride + 1;
  }
  /// GEMM dimensions of the lowered convolution.
  index_t gemm_m() const { return out_channels; }
  index_t gemm_n() const { return out_height() * out_width(); }
  index_t gemm_k() const { return in_channels * kernel * kernel; }
};

/// Expands a CHW input image into the im2col matrix of shape
/// (C*R*S) x (P*Q), zero-padding out-of-bounds taps. `out` must hold
/// gemm_k() * gemm_n() elements (row-major, ld = gemm_n()).
template <typename T>
void im2col(const ConvSpec& spec, const T* image, T* out);

/// Reference direct convolution (for testing the lowering):
/// out[co][y][x] = sum_{ci,r,s} w[co][ci][r][s] * in[ci][y*st+r-p][x*st+s-p].
template <typename T>
void conv2d_reference(const ConvSpec& spec, const T* image,
                      const T* weights, T* out);

}  // namespace shalom::workloads
