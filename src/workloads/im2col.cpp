#include "workloads/im2col.h"

namespace shalom::workloads {

template <typename T>
void im2col(const ConvSpec& spec, const T* image, T* out) {
  const index_t oh = spec.out_height();
  const index_t ow = spec.out_width();
  const index_t n = oh * ow;
  index_t row = 0;
  for (index_t ci = 0; ci < spec.in_channels; ++ci) {
    for (index_t r = 0; r < spec.kernel; ++r) {
      for (index_t s = 0; s < spec.kernel; ++s, ++row) {
        T* dst = out + row * n;
        for (index_t y = 0; y < oh; ++y) {
          const index_t iy = y * spec.stride + r - spec.pad;
          for (index_t x = 0; x < ow; ++x) {
            const index_t ix = x * spec.stride + s - spec.pad;
            const bool inside =
                iy >= 0 && iy < spec.height && ix >= 0 && ix < spec.width;
            dst[y * ow + x] =
                inside ? image[(ci * spec.height + iy) * spec.width + ix]
                       : T{};
          }
        }
      }
    }
  }
}

template <typename T>
void conv2d_reference(const ConvSpec& spec, const T* image,
                      const T* weights, T* out) {
  const index_t oh = spec.out_height();
  const index_t ow = spec.out_width();
  for (index_t co = 0; co < spec.out_channels; ++co) {
    for (index_t y = 0; y < oh; ++y) {
      for (index_t x = 0; x < ow; ++x) {
        T sum{};
        for (index_t ci = 0; ci < spec.in_channels; ++ci) {
          for (index_t r = 0; r < spec.kernel; ++r) {
            const index_t iy = y * spec.stride + r - spec.pad;
            if (iy < 0 || iy >= spec.height) continue;
            for (index_t s = 0; s < spec.kernel; ++s) {
              const index_t ix = x * spec.stride + s - spec.pad;
              if (ix < 0 || ix >= spec.width) continue;
              sum += weights[((co * spec.in_channels + ci) * spec.kernel +
                              r) *
                                 spec.kernel +
                             s] *
                     image[(ci * spec.height + iy) * spec.width + ix];
            }
          }
        }
        out[(co * oh + y) * ow + x] = sum;
      }
    }
  }
}

template void im2col<float>(const ConvSpec&, const float*, float*);
template void im2col<double>(const ConvSpec&, const double*, double*);
template void conv2d_reference<float>(const ConvSpec&, const float*,
                                      const float*, float*);
template void conv2d_reference<double>(const ConvSpec&, const double*,
                                       const double*, double*);

}  // namespace shalom::workloads
