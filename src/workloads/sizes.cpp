#include "workloads/sizes.h"

namespace shalom::workloads {

namespace {

std::string size_label(index_t m, index_t n, index_t k) {
  return std::to_string(m) + "x" + std::to_string(n) + "x" +
         std::to_string(k);
}

GemmShape shape(index_t m, index_t n, index_t k) {
  return {size_label(m, n, k), m, n, k};
}

}  // namespace

std::vector<GemmShape> small_square_sizes() {
  std::vector<GemmShape> v;
  for (index_t s = 8; s <= 120; s += 8)
    v.push_back({std::to_string(s), s, s, s});
  return v;
}

std::vector<GemmShape> motivation_square_sizes(bool full) {
  std::vector<GemmShape> v;
  const index_t cap = full ? 4096 : 1024;
  for (index_t s = 8; s <= cap; s *= 2)
    v.push_back({std::to_string(s), s, s, s});
  return v;
}

std::vector<GemmShape> motivation_irregular_sizes(bool full) {
  std::vector<GemmShape> v;
  const index_t nk = full ? 10000 : 1536;
  const index_t cap = full ? 4096 : 1024;
  for (index_t m = 8; m <= cap; m *= 2)
    v.push_back({std::to_string(m), m, nk, nk});
  return v;
}

std::vector<GemmShape> irregular_sweep_m(bool full) {
  std::vector<GemmShape> v;
  const index_t k = full ? 5000 : 768;
  for (index_t m : {32, 64, 128, 256}) {
    if (full) {
      for (index_t n = 2048; n <= 10240; n += 2048)
        v.push_back(shape(m, n, k));
    } else {
      for (index_t n = 512; n <= 2560; n += 512) v.push_back(shape(m, n, k));
    }
  }
  return v;
}

std::vector<GemmShape> irregular_sweep_n(bool full) {
  std::vector<GemmShape> v;
  const index_t k = full ? 5000 : 768;
  for (index_t n : {32, 64, 128, 256}) {
    if (full) {
      for (index_t m = 2048; m <= 10240; m += 2048)
        v.push_back(shape(m, n, k));
    } else {
      for (index_t m = 512; m <= 2560; m += 512) v.push_back(shape(m, n, k));
    }
  }
  return v;
}

std::vector<GemmShape> irregular_platform_sizes(bool full) {
  std::vector<GemmShape> v;
  const index_t k = full ? 5000 : 768;
  for (index_t m : {32, 128}) {
    if (full) {
      for (index_t n = 2048; n <= 10240; n += 2048)
        v.push_back(shape(m, n, k));
    } else {
      for (index_t n = 512; n <= 2560; n += 512) v.push_back(shape(m, n, k));
    }
  }
  return v;
}

GemmShape vgg_scalability_shape(bool full) {
  return full ? shape(64, 50176, 576) : shape(64, 6272, 576);
}

std::vector<GemmShape> cache_miss_sweep(bool full) {
  std::vector<GemmShape> v;
  const index_t n = full ? 50176 : 1568;
  const index_t step = full ? 128 : 640;
  for (index_t k = 576; k <= 3744; k += step)
    v.push_back({std::to_string(k), 64, n, k});
  return v;
}

std::vector<GemmShape> breakdown_sizes(bool full) {
  std::vector<GemmShape> v;
  const index_t n = full ? 50176 : 6272;
  for (index_t m = 20; m <= 100; m += 20)
    v.push_back({std::to_string(m), m, n, 576});
  return v;
}

std::vector<GemmShape> cp2k_sizes() {
  // Paper Fig. 14 x-axis labels.
  return {
      shape(5, 5, 5),    shape(13, 5, 13),  shape(13, 13, 13),
      shape(23, 23, 23), shape(26, 26, 13),
  };
}

std::vector<GemmShape> vgg16_layers(bool full) {
  const index_t div = full ? 1 : 8;
  return {
      {"conv1.2", 64, 50176 / div, 576},
      {"conv2.2", 128, 12544 / div, 1152},
      {"conv3.3", 256, 3136 / div, 2304},
      {"conv4.2", 512, 784, 4608},
      {"conv5.2", 512, 196, 4608},
  };
}

}  // namespace shalom::workloads
