// Workload definitions: the exact GEMM shapes the paper evaluates.
//
// Each figure sweeps a family of shapes; this header centralizes them so
// benches, tests and EXPERIMENTS.md stay in sync. `scale` shrinks the
// irregular dimensions for the 1-core reproduction host (--full restores
// the paper values); every bench prints the sizes it actually ran.
#pragma once

#include <string>
#include <vector>

#include "common/matrix.h"
#include "core/types.h"

namespace shalom::workloads {

struct GemmShape {
  std::string label;
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;
};

/// Paper Fig. 7/8: small square sizes, M = N = K in 8..120 step 8.
std::vector<GemmShape> small_square_sizes();

/// Paper Fig. 2a: M = N = K in {8, 16, ..., 4096} (powers of two).
std::vector<GemmShape> motivation_square_sizes(bool full);

/// Paper Fig. 2b: M in {8..4096}, N = K = 10000 (scaled: 1536).
std::vector<GemmShape> motivation_irregular_sizes(bool full);

/// Paper Fig. 9: M in {32, 64, 128, 256}, N in {2048..10240}, K = 5000.
/// Scaled: N in {512..2048}, K = 768.
std::vector<GemmShape> irregular_sweep_m(bool full);

/// Paper Fig. 9 bottom row: N in {32..256}, M swept, K = 5000.
std::vector<GemmShape> irregular_sweep_n(bool full);

/// Paper Fig. 10: M in {32, 128}, N sweep, K = 5000 (scaled as above).
std::vector<GemmShape> irregular_platform_sizes(bool full);

/// Paper Fig. 11: the VGG conv kernel 64 x 50176 x 576 (scaled N).
GemmShape vgg_scalability_shape(bool full);

/// Paper Fig. 12: M = 64, N = 50176 (scaled), K = 576..3744 step 128
/// (scaled: coarser step).
std::vector<GemmShape> cache_miss_sweep(bool full);

/// Paper Fig. 13: N = 50176, K = 576, M = 20..100 step 20 (scaled N).
std::vector<GemmShape> breakdown_sizes(bool full);

/// Paper Fig. 14: CP2K FP64 block sizes.
std::vector<GemmShape> cp2k_sizes();

/// Paper Fig. 15 / Section 8.6: VGG16 conv layers as GEMM shapes
/// M = {64,128,256,512,512}, N = {50176,12544,3136,784,196},
/// K = {576,1152,2304,4608,4608} (scaled: N / 8 for the two largest).
std::vector<GemmShape> vgg16_layers(bool full);

}  // namespace shalom::workloads
