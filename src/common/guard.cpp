#include "common/guard.h"

#include <atomic>
#include <cctype>
#include <cstring>

#include "common/error.h"
#include "common/fault.h"
#include "common/thread_annotations.h"

#if defined(__unix__) || defined(__APPLE__)
#define SHALOM_GUARD_POSIX 1
#include <csetjmp>
#include <csignal>
#else
#define SHALOM_GUARD_POSIX 0
#endif

// Sanitizers install their own SIGSEGV/SIGBUS machinery (and report the
// trap before our handler sees it), so trap containment is compiled down
// to a pass-through under every SHALOM_SANITIZE configuration. CMake
// defines SHALOM_GUARD_NO_TRAPS for those builds (UBSan has no detection
// macro); the feature probes below catch sanitized builds of this file
// that bypass our CMake flags.
#if !defined(SHALOM_GUARD_NO_TRAPS)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SHALOM_GUARD_NO_TRAPS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SHALOM_GUARD_NO_TRAPS 1
#endif
#endif
#endif

namespace shalom {
namespace guard {

namespace {

#if SHALOM_GUARD_POSIX && !defined(SHALOM_GUARD_NO_TRAPS)

constexpr int kTrapSignals[] = {SIGILL, SIGSEGV, SIGBUS, SIGFPE};
constexpr int kTrapSignalCount =
    static_cast<int>(sizeof(kTrapSignals) / sizeof(kTrapSignals[0]));

// Active trap scope of THIS thread (null outside run_trapped). The
// handler only consults thread-local state, so a trap raised by an
// unrelated thread while a scope is active on this one falls through to
// the re-raise path below instead of unwinding the wrong stack.
thread_local sigjmp_buf* t_trap_buf = nullptr;
thread_local volatile sig_atomic_t t_trap_signal = 0;

// Serializes sigaction install/restore across concurrent run_trapped
// calls (process-wide dispositions; scopes are cold-path probe events).
Mutex g_trap_mutex;

/// Async-signal-safe by construction: one sig_atomic_t store plus
/// siglongjmp when a scope is active on this thread; otherwise restore
/// the default disposition and re-raise so the process dies exactly as it
/// would have without the guard. No allocation, no stdio, no locks (the
/// shalom_lint rule signal-handler-safety keeps it that way).
void trap_handler(int sig) {
  if (t_trap_buf != nullptr) {
    t_trap_signal = sig;
    siglongjmp(*t_trap_buf, 1);
  }
  std::signal(sig, SIG_DFL);
  raise(sig);
}

#endif  // SHALOM_GUARD_POSIX && !SHALOM_GUARD_NO_TRAPS

/// Case-insensitive keyword compare for SHALOM_GUARD parsing.
bool ieq(const char* value, const char* keyword) noexcept {
  for (; *value != '\0' && *keyword != '\0'; ++value, ++keyword) {
    if (std::tolower(static_cast<unsigned char>(*value)) !=
        std::tolower(static_cast<unsigned char>(*keyword)))
      return false;
  }
  return *value == '\0' && *keyword == '\0';
}

ArenaMode parse_arena_mode_env() noexcept {
  const char* value = env::raw("SHALOM_GUARD");
  if (value == nullptr || *value == '\0') return ArenaMode::kOff;
  if (ieq(value, "off")) return ArenaMode::kOff;
  if (ieq(value, "canary")) return ArenaMode::kCanary;
  if (ieq(value, "poison")) return ArenaMode::kPoison;
  env::warn_malformed("SHALOM_GUARD", value, "off|canary|poison");
  return ArenaMode::kOff;
}

// Test overrides (-1 = no override, defer to the env-parsed value).
std::atomic<int> g_arena_mode_override{-1};
std::atomic<int> g_watchdog_ms_override{-1};

}  // namespace

bool traps_supported() noexcept {
#if SHALOM_GUARD_POSIX && !defined(SHALOM_GUARD_NO_TRAPS)
  return true;
#else
  return false;
#endif
}

TrapOutcome run_trapped(void (*fn)(void*), void* ctx) noexcept {
  // The fault site comes first so trap handling is testable even where
  // real containment is compiled out (sanitizer builds, non-POSIX).
  if (SHALOM_FAULT_POINT(fault::Site::kGuardTrap))
    return TrapOutcome{true, traps_supported() ? SIGILL : 4};

#if SHALOM_GUARD_POSIX && !defined(SHALOM_GUARD_NO_TRAPS)
  TrapOutcome out;
  try {
    MutexLock lock(g_trap_mutex);

    struct sigaction prior[kTrapSignalCount];
    struct sigaction act;
    std::memset(&act, 0, sizeof act);
    act.sa_handler = trap_handler;
    sigemptyset(&act.sa_mask);
    act.sa_flags = 0;
    for (int i = 0; i < kTrapSignalCount; ++i)
      sigaction(kTrapSignals[i], &act, &prior[i]);

    // savemask=1: siglongjmp out of the handler restores the signal mask,
    // so the trapping signal does not stay blocked after containment.
    sigjmp_buf buf;
    t_trap_signal = 0;
    if (sigsetjmp(buf, 1) == 0) {
      t_trap_buf = &buf;
      fn(ctx);
    } else {
      out.trapped = true;
      out.signal = static_cast<int>(t_trap_signal);
    }
    t_trap_buf = nullptr;

    for (int i = 0; i < kTrapSignalCount; ++i)
      sigaction(kTrapSignals[i], &prior[i], nullptr);
  } catch (...) {
    // MutexLock can only throw on system lock failure; run without
    // containment rather than dropping the call.
    fn(ctx);
  }
  return out;
#else
  fn(ctx);
  return TrapOutcome{};
#endif
}

const char* signal_name(int sig) noexcept {
#if SHALOM_GUARD_POSIX
  switch (sig) {
    case SIGILL:
      return "SIGILL";
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    default:
      break;
  }
#else
  (void)sig;
#endif
  return "signal";
}

ArenaMode arena_mode() noexcept {
  const int override_mode =
      g_arena_mode_override.load(std::memory_order_relaxed);
  if (override_mode >= 0) return static_cast<ArenaMode>(override_mode);
  static const ArenaMode parsed = parse_arena_mode_env();
  return parsed;
}

void set_arena_mode_for_testing(ArenaMode mode) noexcept {
  g_arena_mode_override.store(static_cast<int>(mode),
                              std::memory_order_relaxed);
}

void clear_arena_mode_for_testing() noexcept {
  g_arena_mode_override.store(-1, std::memory_order_relaxed);
}

int env_watchdog_ms() noexcept {
  const int override_ms =
      g_watchdog_ms_override.load(std::memory_order_relaxed);
  if (override_ms >= 0) return override_ms;
  // 0 = disabled; cap at one hour (a longer period never fires in
  // practice and risks silent misconfiguration).
  static const int parsed = static_cast<int>(
      env::get_long("SHALOM_WATCHDOG_MS", 0, 0, 3600000));
  return parsed;
}

void set_watchdog_ms_for_testing(int ms) noexcept {
  g_watchdog_ms_override.store(ms, std::memory_order_relaxed);
}

}  // namespace guard
}  // namespace shalom
