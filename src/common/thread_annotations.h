// Clang thread-safety analysis annotations (no-ops elsewhere).
//
// The concurrency layer (ThreadPool admission, plan-cache LRU, env-warn
// registry) documents its locking discipline with these macros so that a
// Clang build with -Wthread-safety (-DSHALOM_THREAD_SAFETY=ON) verifies
// the discipline statically: a guarded field touched without its mutex,
// or a *_locked helper called outside the lock, becomes a compile error
// instead of a TSan report that depends on test coverage.
//
// libstdc++'s std::mutex carries no capability attribute, so the analysis
// cannot see through it. shalom::Mutex below wraps std::mutex as an
// annotated capability and shalom::MutexLock is the annotated scoped
// lock; lock-based code in src/ uses these wrappers instead of the std
// types. Atomics are deliberately out of scope here: they carry no lock
// to analyze, and their discipline (every operation names an explicit
// std::memory_order) is enforced by tools/shalom_lint instead.
//
// This header stays internal: the public C surface (core/shalom_c.h)
// must remain annotation-clean (see API.md).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(SHALOM_THREAD_SAFETY_ANALYSIS)
#define SHALOM_TSA(x) __attribute__((x))
#else
#define SHALOM_TSA(x)  // no-op: GCC and unannotated Clang builds
#endif

/// Marks a type as a capability ("mutex") the analysis tracks.
#define SHALOM_CAPABILITY(x) SHALOM_TSA(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SHALOM_SCOPED_CAPABILITY SHALOM_TSA(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SHALOM_GUARDED_BY(x) SHALOM_TSA(guarded_by(x))

/// Pointer member whose pointee is guarded by `x` (the pointer itself may
/// be read freely).
#define SHALOM_PT_GUARDED_BY(x) SHALOM_TSA(pt_guarded_by(x))

/// Function that may only be called while holding the listed capabilities
/// (the *_locked helper convention).
#define SHALOM_REQUIRES(...) SHALOM_TSA(requires_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed capabilities
/// (deadlock documentation, e.g. callbacks invoked under no lock).
#define SHALOM_EXCLUDES(...) SHALOM_TSA(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases the listed capabilities.
#define SHALOM_ACQUIRE(...) SHALOM_TSA(acquire_capability(__VA_ARGS__))
#define SHALOM_RELEASE(...) SHALOM_TSA(release_capability(__VA_ARGS__))
#define SHALOM_TRY_ACQUIRE(...) SHALOM_TSA(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for functions whose locking the analysis cannot follow;
/// every use must carry a comment justifying why.
#define SHALOM_NO_THREAD_SAFETY_ANALYSIS \
  SHALOM_TSA(no_thread_safety_analysis)

/// Function returning a reference to a capability (accessor convention).
#define SHALOM_RETURN_CAPABILITY(x) SHALOM_TSA(lock_returned(x))

namespace shalom {

/// std::mutex wrapped as an annotated capability. Same cost, same
/// semantics; exists only so -Wthread-safety can track it.
class SHALOM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SHALOM_ACQUIRE() { mu_.lock(); }
  void unlock() SHALOM_RELEASE() { mu_.unlock(); }
  bool try_lock() SHALOM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated scoped lock over shalom::Mutex. Also satisfies
/// BasicLockable (lock/unlock), so std::condition_variable_any can wait
/// on it directly; the capability appears continuously held across the
/// wait, which matches how the guarded state is actually used (checked
/// and mutated only between wakeups, with the lock held).
class SHALOM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SHALOM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SHALOM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for condition_variable_any::wait.
  void lock() SHALOM_ACQUIRE() { mu_.lock(); }
  void unlock() SHALOM_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace shalom
