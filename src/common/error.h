/* Error handling shared by every module - the single source of truth for
 * the library's status codes.
 *
 * The first section is plain C so the public C header (core/shalom_c.h)
 * can include it: the shalom_status enum IS the C API's return-code
 * contract, and the C++ core maps its exceptions onto the same values at
 * the ABI boundary (no exception ever crosses it).
 *
 * The C++ section keeps the contract-checking convention: programming
 * errors (bad dimensions, null pointers, invalid enum values) raise
 * shalom::invalid_argument with a formatted message; they are never
 * silently clamped. Hot paths use SHALOM_ASSERT, which compiles away in
 * release builds.
 */
#pragma once

/* ------------------------------------------------------------------------
 * C-compatible status codes (returned by every shalom_* C entry point).
 * shalom_strerror(code) gives the static description;
 * shalom_last_error_message() the call-specific detail (both declared in
 * core/shalom_c.h).
 * ---------------------------------------------------------------------- */
typedef enum shalom_status {
  SHALOM_OK = 0,                   /* success */
  SHALOM_ERR_BAD_FLAG = 1,         /* unknown dtype or transpose flag */
  SHALOM_ERR_INVALID_ARGUMENT = 2, /* bad dimensions, strides, overflow */
  SHALOM_ERR_NULL_POINTER = 3,     /* null handle or output pointer */
  SHALOM_ERR_DTYPE_MISMATCH = 4,   /* plan dtype != execute entry point */
  SHALOM_ERR_ALLOC = 5,            /* allocation failure (not degradable) */
  SHALOM_ERR_INTERNAL = 6,         /* unexpected internal error */
  SHALOM_ERR_NUMERIC = 7,          /* NaN/Inf caught by the numerical guard
                                      (Config::check_numerics = kFail) */
  SHALOM_ERR_KERNEL_TRAP = 8,      /* kernel crashed (SIGILL/SIGSEGV/...)
                                      inside a trap-contained probe */
  SHALOM_ERR_CORRUPTION = 9,       /* guarded pack-arena canary violated
                                      after kernel execution (SHALOM_GUARD) */
  SHALOM_ERR_REJECTED = 10,        /* request shed by stream admission
                                      control (queue at capacity / stream
                                      draining) or cancelled by the caller
                                      before execution */
  SHALOM_ERR_TIMEOUT = 11,         /* request deadline expired before
                                      execution, or a timed wait ran out
                                      before completion */
  SHALOM_DEGRADED = 12,            /* NOT an error: the work completed with
                                      correct results but on a degraded
                                      path (stream latched synchronous by
                                      its circuit breaker or drainer-spawn
                                      failure) */
  SHALOM_ERR_TABLE = 13,           /* persistent tuned-table operation
                                      failed (unreadable, corrupt, or
                                      version/fingerprint-skewed file; I/O
                                      failure during an atomic save) - the
                                      process degrades to a cold start and
                                      the previous on-disk table, if any,
                                      is untouched */
} shalom_status;

#ifdef __cplusplus

#include <sstream>
#include <stdexcept>
#include <string>

namespace shalom {

/// Thrown for API contract violations (invalid sizes, strides, modes).
class invalid_argument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when the opt-in numerical guard (Config::check_numerics with
/// policy kFail) finds a NaN or Inf in an operand or in the result. Maps
/// to SHALOM_ERR_NUMERIC at the C boundary.
class numeric_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a guard-rail check (common/guard.h) proves memory was
/// corrupted: a canary word bracketing a guarded pack arena changed after
/// kernel execution. The offending kernel variant is quarantined before
/// the throw; the result in C must be considered garbage. Maps to
/// SHALOM_ERR_CORRUPTION at the C boundary.
class corruption_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a hardware trap (SIGILL/SIGSEGV/SIGBUS/SIGFPE) is contained
/// by a guard trap scope in a context that cannot degrade further. Trap
/// containment around selfcheck probes never throws this - a trapped probe
/// becomes a quarantine verdict - so it only reaches callers through
/// explicit guard::run_trapped users. Maps to SHALOM_ERR_KERNEL_TRAP at
/// the C boundary.
class kernel_trap_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when stream admission control sheds a submission (queue at
/// capacity under a shed-* overload policy, the `engine.shed` fault site,
/// or a submit on a draining/closed stream). Nothing was queued; the
/// stream is unchanged. Maps to SHALOM_ERR_REJECTED at the C boundary.
class rejected_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a request's deadline expires before it could be admitted
/// (a `block`-policy submit that ran out of time waiting for queue
/// space). Queued requests whose deadline expires resolve their ticket
/// with SHALOM_ERR_TIMEOUT instead of throwing. Maps to
/// SHALOM_ERR_TIMEOUT at the C boundary.
class timeout_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Static description of a shalom_status value ("invalid argument", ...).
/// Never returns NULL; unknown codes map to a fixed sentinel string.
const char* status_string(int code) noexcept;

namespace detail {
template <typename... Args>
[[noreturn]] void throw_invalid(const char* expr, Args&&... context) {
  std::ostringstream os;
  os << "shalom: requirement violated: " << expr;
  ((os << context), ...);
  throw invalid_argument(os.str());
}

/// Thread-local last-error slot backing shalom_last_error_message().
/// Fixed-size storage: recording an error must never allocate (the error
/// being recorded may BE an allocation failure). Messages are truncated
/// to the slot size.
void set_last_error(int code, const char* message) noexcept;
void clear_last_error() noexcept;
const char* last_error_message() noexcept;  // "" when no error recorded
int last_error_code() noexcept;             // SHALOM_OK when none
}  // namespace detail

/// Hardened SHALOM_* environment-variable parsing. Configuration read
/// from the environment must never turn a typo into silent behaviour
/// changes: every malformed value produces a one-time stderr diagnostic
/// naming the variable and the documented default that applies instead.
namespace env {

/// Reads `name` as a decimal integer in [lo, hi]. Unset or empty returns
/// `fallback` silently (unset is the normal state, not an error);
/// malformed, non-numeric, or out-of-range values warn once via
/// warn_malformed() and return `fallback`.
long get_long(const char* name, long fallback, long lo, long hi) noexcept;

/// Reads `name` as one of `count` keywords and returns the matching index
/// into `names`. Unset or empty returns `fallback` silently; any other
/// value that matches no keyword warns once via warn_malformed() (listing
/// the accepted keywords) and returns `fallback`. Matching is exact and
/// case-sensitive: SHALOM_* keyword knobs are documented lowercase.
int get_enum(const char* name, int fallback, const char* const* names,
             int count) noexcept;

/// Raw environment lookup (nullptr when unset). The single point every
/// SHALOM_* read funnels through (enforced by tools/shalom_lint's
/// env-access rule): callers with keyword or grammar semantics parse the
/// returned string themselves but still report malformed values through
/// warn_malformed(), keeping the one-diagnostic-per-variable guarantee.
const char* raw(const char* name) noexcept;

/// One-time (per variable name) stderr diagnostic for a malformed value.
/// `name` must outlive the process (pass a string literal); repeated
/// calls for the same name are dropped so parse-on-every-call helpers
/// cannot spam the log.
void warn_malformed(const char* name, const char* value,
                    const char* expected) noexcept;

}  // namespace env

/// Validates an API precondition; throws shalom::invalid_argument on failure.
#define SHALOM_REQUIRE(cond, ...)                               \
  do {                                                          \
    if (!(cond)) ::shalom::detail::throw_invalid(#cond, ##__VA_ARGS__); \
  } while (0)

#ifndef NDEBUG
#define SHALOM_ASSERT(cond) SHALOM_REQUIRE(cond)
#else
#define SHALOM_ASSERT(cond) ((void)0)
#endif

}  // namespace shalom

#endif /* __cplusplus */
