// Error handling utilities shared by every module.
//
// The library follows a contract-checking convention: programming errors
// (bad dimensions, null pointers, invalid enum values) raise
// shalom::invalid_argument with a formatted message; they are never silently
// clamped. Hot paths use SHALOM_ASSERT, which compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace shalom {

/// Thrown for API contract violations (invalid sizes, strides, modes).
class invalid_argument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
template <typename... Args>
[[noreturn]] void throw_invalid(const char* expr, Args&&... context) {
  std::ostringstream os;
  os << "shalom: requirement violated: " << expr;
  ((os << context), ...);
  throw invalid_argument(os.str());
}
}  // namespace detail

/// Validates an API precondition; throws shalom::invalid_argument on failure.
#define SHALOM_REQUIRE(cond, ...)                               \
  do {                                                          \
    if (!(cond)) ::shalom::detail::throw_invalid(#cond, ##__VA_ARGS__); \
  } while (0)

#ifndef NDEBUG
#define SHALOM_ASSERT(cond) SHALOM_REQUIRE(cond)
#else
#define SHALOM_ASSERT(cond) ((void)0)
#endif

}  // namespace shalom
