// Cache-line aligned, reusable storage for packing buffers and matrices.
//
// GEMM packing buffers are allocated on every call in naive designs; for
// small GEMMs that malloc dominates. AlignedBuffer supports cheap
// grow-only reuse so a thread-local arena can serve every call, and all
// storage is 64-byte aligned so 128-bit vector loads never split lines.
//
// Guarded mode (SHALOM_GUARD=canary|poison, common/guard.h): each
// allocation is bracketed by one canary-filled cache line on each side,
// and verify_guards() proves after kernel execution that no kernel wrote
// outside its arena. Poison mode additionally pre-fills the storage on
// every reserve() so stale-read bugs surface as loud wrong results
// instead of silently reusing last call's data. Both are opt-in: the
// default (off) build has zero overhead and an unchanged layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.h"
#include "common/guard.h"

namespace shalom {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte-aligned byte buffer with grow-only reuse semantics.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes) { reserve(bytes); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)),
        zone_(std::exchange(other.zone_, 0)),
        mode_(std::exchange(other.mode_, guard::ArenaMode::kOff)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
      zone_ = std::exchange(other.zone_, 0);
      mode_ = std::exchange(other.mode_, guard::ArenaMode::kOff);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Ensures at least `bytes` of capacity. Contents are NOT preserved on
  /// growth: packing buffers are write-before-read by construction. The
  /// guard mode (guard::arena_mode()) is snapshotted per allocation, so a
  /// mode change only affects buffers (re)allocated afterwards.
  void reserve(std::size_t bytes) {
    if (bytes <= capacity_) {
      // Reuse path: poison mode re-fills the requested span so each call
      // starts from known-garbage, never last call's data.
      if (mode_ == guard::ArenaMode::kPoison && data_ != nullptr &&
          bytes > 0)
        std::memset(data_, guard::kPoisonByte, bytes);
      return;
    }
    // Cache-line rounding must not wrap around SIZE_MAX; a request that
    // large is unsatisfiable anyway, so report it as the same failure.
    if (bytes > SIZE_MAX - (kCacheLineBytes - 1)) throw std::bad_alloc();
    const guard::ArenaMode mode = guard::arena_mode();
    const std::size_t zone =
        mode == guard::ArenaMode::kOff ? 0 : guard::kGuardZoneBytes;
    const std::size_t rounded =
        (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    if (rounded > SIZE_MAX - 2 * zone) throw std::bad_alloc();
    release();
    // One allocation carries [front zone | storage | back zone]; data_
    // points at the storage, which keeps its cache-line alignment because
    // the zones are whole cache lines.
    char* raw = static_cast<char*>(
        std::aligned_alloc(kCacheLineBytes, rounded + 2 * zone));
    if (raw == nullptr) throw std::bad_alloc();
    data_ = raw + zone;
    capacity_ = rounded;
    zone_ = zone;
    mode_ = mode;
    if (zone != 0) {
      std::memset(raw, guard::kCanaryByte, zone);
      std::memset(raw + zone + rounded, guard::kCanaryByte, zone);
      if (mode == guard::ArenaMode::kPoison)
        std::memset(data_, guard::kPoisonByte, rounded);
    }
  }

  /// Checks both canary zones of a guarded buffer. Returns false when any
  /// canary byte changed (something wrote outside the storage span) and
  /// re-arms the zones so the buffer stays usable - and re-checkable -
  /// after the violation is reported. Unguarded buffers are always intact.
  bool verify_guards() noexcept {
    if (zone_ == 0 || data_ == nullptr) return true;
    unsigned char* front = static_cast<unsigned char*>(data_) - zone_;
    unsigned char* back = static_cast<unsigned char*>(data_) + capacity_;
    bool intact = true;
    for (std::size_t i = 0; i < zone_; ++i) {
      if (front[i] != guard::kCanaryByte || back[i] != guard::kCanaryByte) {
        intact = false;
        break;
      }
    }
    if (!intact) {
      std::memset(front, guard::kCanaryByte, zone_);
      std::memset(back, guard::kCanaryByte, zone_);
    }
    return intact;
  }

  /// Guard-zone width of the current allocation (0 when unguarded).
  std::size_t guard_zone() const noexcept { return zone_; }

  /// Typed view of the storage; `reserve(count * sizeof(T))` must have run.
  template <typename T>
  T* as(std::size_t count = 0) {
    (void)count;
    SHALOM_REQUIRE(count <= SIZE_MAX / sizeof(T),
                   ": element count overflows size_t (count=", count,
                   ", elem=", sizeof(T), " bytes)");
    SHALOM_ASSERT(count * sizeof(T) <= capacity_);
    return static_cast<T*>(data_);
  }

  std::size_t capacity() const { return capacity_; }
  void* data() { return data_; }

 private:
  void release() {
    if (data_ != nullptr)
      std::free(static_cast<char*>(data_) - zone_);
    data_ = nullptr;
    capacity_ = 0;
    zone_ = 0;
    mode_ = guard::ArenaMode::kOff;
  }

  void* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t zone_ = 0;
  guard::ArenaMode mode_ = guard::ArenaMode::kOff;
};

/// Thread-local arena used by the GEMM drivers for packing storage, so
/// repeated small-GEMM calls never touch the allocator.
AlignedBuffer& thread_pack_arena();

}  // namespace shalom
