// Cache-line aligned, reusable storage for packing buffers and matrices.
//
// GEMM packing buffers are allocated on every call in naive designs; for
// small GEMMs that malloc dominates. AlignedBuffer supports cheap
// grow-only reuse so a thread-local arena can serve every call, and all
// storage is 64-byte aligned so 128-bit vector loads never split lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "common/error.h"

namespace shalom {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte-aligned byte buffer with grow-only reuse semantics.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes) { reserve(bytes); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Ensures at least `bytes` of capacity. Contents are NOT preserved on
  /// growth: packing buffers are write-before-read by construction.
  void reserve(std::size_t bytes) {
    if (bytes <= capacity_) return;
    // Cache-line rounding must not wrap around SIZE_MAX; a request that
    // large is unsatisfiable anyway, so report it as the same failure.
    if (bytes > SIZE_MAX - (kCacheLineBytes - 1)) throw std::bad_alloc();
    release();
    const std::size_t rounded =
        (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    data_ = std::aligned_alloc(kCacheLineBytes, rounded);
    if (data_ == nullptr) throw std::bad_alloc();
    capacity_ = rounded;
  }

  /// Typed view of the storage; `reserve(count * sizeof(T))` must have run.
  template <typename T>
  T* as(std::size_t count = 0) {
    (void)count;
    SHALOM_REQUIRE(count <= SIZE_MAX / sizeof(T),
                   ": element count overflows size_t (count=", count,
                   ", elem=", sizeof(T), " bytes)");
    SHALOM_ASSERT(count * sizeof(T) <= capacity_);
    return static_cast<T*>(data_);
  }

  std::size_t capacity() const { return capacity_; }
  void* data() { return data_; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    capacity_ = 0;
  }

  void* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Thread-local arena used by the GEMM drivers for packing storage, so
/// repeated small-GEMM calls never touch the allocator.
AlignedBuffer& thread_pack_arena();

}  // namespace shalom
