#include "common/health.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/error.h"
#include "common/fault.h"
#include "common/thread_annotations.h"

namespace shalom {
namespace health {

namespace {

/// Hard cap on the exponential backoff: 64x the base cool-down. A
/// component that keeps failing probation converges to one probe per
/// capped window instead of doubling without bound (which would turn a
/// recoverable fault into a de-facto permanent latch).
constexpr std::uint64_t kBackoffCapFactor = 64;

/// One registry row. All fields are lock-free atomics with explicit
/// memory orders (outside the capability annotations of
/// common/thread_annotations.h, same discipline as the fault-site table):
/// `state` transitions use acq_rel CAS so the cause/backoff written
/// before a transition are visible to whoever observes the new state;
/// the scalar bookkeeping fields are relaxed (statistics and deadlines,
/// tolerant of benign races by design).
struct Slot {
  std::atomic<int> state{static_cast<int>(State::kHealthy)};
  std::atomic<int> cause{static_cast<int>(Cause::kNone)};
  std::atomic<std::uint64_t> backoff_ms{0};
  std::atomic<std::uint64_t> deadline_ms{0};
  std::atomic<RecoverHook> hook{nullptr};
};

Slot g_slots[kComponentCount];

Slot& slot(Component c) noexcept { return g_slots[static_cast<int>(c)]; }

std::uint64_t base_backoff_ms() noexcept {
  const long ms = env_recovery_ms();
  return ms > 0 ? static_cast<std::uint64_t>(ms) : 0;
}

}  // namespace

const char* component_name(Component c) noexcept {
  switch (c) {
    case Component::kKernels:
      return "kernels";
    case Component::kThreadPool:
      return "threadpool";
    case Component::kStreamBreaker:
      return "stream_breaker";
    case Component::kPlanCache:
      return "plan_cache";
    case Component::kTunedTable:
      return "tuned_table";
  }
  return "unknown";
}

const char* state_name(State s) noexcept {
  switch (s) {
    case State::kHealthy:
      return "HEALTHY";
    case State::kDegraded:
      return "DEGRADED";
    case State::kProbation:
      return "PROBATION";
    case State::kQuarantined:
      return "QUARANTINED";
  }
  return "unknown";
}

const char* cause_name(Cause c) noexcept {
  switch (c) {
    case Cause::kNone:
      return "none";
    case Cause::kMismatch:
      return "mismatch";
    case Cause::kTrap:
      return "trap";
    case Cause::kInjected:
      return "injected";
    case Cause::kOverload:
      return "overload";
  }
  return "unknown";
}

long env_recovery_ms() noexcept {
  static const long v = env::get_long("SHALOM_RECOVERY_MS", 250, 0, 3600000);
  return v;
}

long env_probation_n() noexcept {
  static const long v = env::get_long("SHALOM_PROBATION_N", 3, 1, 64);
  return v;
}

bool recovery_enabled() noexcept { return env_recovery_ms() > 0; }

std::uint64_t now_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void report_degraded(Component c, Cause cause) noexcept {
  Slot& s = slot(c);
  if (s.state.load(std::memory_order_acquire) ==
      static_cast<int>(State::kQuarantined))
    return;  // terminal evidence outranks any later degradation report
  s.cause.store(static_cast<int>(cause), std::memory_order_relaxed);
  int expected = static_cast<int>(State::kHealthy);
  if (s.state.compare_exchange_strong(
          expected, static_cast<int>(State::kDegraded),
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    const std::uint64_t base = base_backoff_ms();
    s.backoff_ms.store(base, std::memory_order_relaxed);
    s.deadline_ms.store(now_ms() + base, std::memory_order_relaxed);
  }
  // Already DEGRADED/PROBATION: only the cause refreshed (above); the
  // running cool-down keeps its deadline.
}

void report_quarantined(Component c, Cause cause) noexcept {
  Slot& s = slot(c);
  s.cause.store(static_cast<int>(cause), std::memory_order_relaxed);
  s.state.store(static_cast<int>(State::kQuarantined),
                std::memory_order_release);
}

void report_recovered(Component c) noexcept {
  Slot& s = slot(c);
  int st = s.state.load(std::memory_order_acquire);
  while (st == static_cast<int>(State::kDegraded) ||
         st == static_cast<int>(State::kProbation)) {
    if (s.state.compare_exchange_weak(
            st, static_cast<int>(State::kHealthy),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      s.backoff_ms.store(base_backoff_ms(), std::memory_order_relaxed);
      telemetry::note_recovery();
      return;
    }
  }
}

bool try_begin_probation(Component c) noexcept {
  if (!recovery_enabled()) return false;
  Slot& s = slot(c);
  if (s.state.load(std::memory_order_acquire) !=
      static_cast<int>(State::kDegraded))
    return false;
  if (now_ms() < s.deadline_ms.load(std::memory_order_relaxed))
    return false;
  int expected = static_cast<int>(State::kDegraded);
  return s.state.compare_exchange_strong(
      expected, static_cast<int>(State::kProbation),
      std::memory_order_acq_rel, std::memory_order_acquire);
}

void probation_succeeded(Component c) noexcept {
  Slot& s = slot(c);
  int expected = static_cast<int>(State::kProbation);
  if (s.state.compare_exchange_strong(
          expected, static_cast<int>(State::kHealthy),
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    s.backoff_ms.store(base_backoff_ms(), std::memory_order_relaxed);
    telemetry::note_recovery();
  }
}

void probation_failed(Component c) noexcept {
  Slot& s = slot(c);
  const std::uint64_t base = base_backoff_ms();
  const std::uint64_t cap =
      base > 0 ? base * kBackoffCapFactor : kBackoffCapFactor;
  std::uint64_t backoff = s.backoff_ms.load(std::memory_order_relaxed);
  backoff = backoff == 0 ? (base > 0 ? base : 1) : backoff * 2;
  if (backoff > cap) backoff = cap;
  s.backoff_ms.store(backoff, std::memory_order_relaxed);
  s.deadline_ms.store(now_ms() + backoff, std::memory_order_relaxed);
  int expected = static_cast<int>(State::kProbation);
  if (s.state.compare_exchange_strong(
          expected, static_cast<int>(State::kDegraded),
          std::memory_order_acq_rel, std::memory_order_acquire))
    telemetry::note_probation_failure();
}

bool probe_faulted() noexcept {
  telemetry::note_probation_probe();
  return SHALOM_FAULT_POINT(fault::Site::kHealthProbe);
}

State state(Component c) noexcept {
  return static_cast<State>(
      slot(c).state.load(std::memory_order_acquire));
}

Cause cause(Component c) noexcept {
  return static_cast<Cause>(
      slot(c).cause.load(std::memory_order_relaxed));
}

ComponentReport component_report(Component c) noexcept {
  Slot& s = slot(c);
  ComponentReport r;
  r.state =
      static_cast<State>(s.state.load(std::memory_order_acquire));
  r.cause =
      static_cast<Cause>(s.cause.load(std::memory_order_relaxed));
  r.backoff_ms = s.backoff_ms.load(std::memory_order_relaxed);
  if (r.state == State::kDegraded) {
    const std::uint64_t deadline =
        s.deadline_ms.load(std::memory_order_relaxed);
    const std::uint64_t now = now_ms();
    r.cooldown_remaining_ms = deadline > now ? deadline - now : 0;
  }
  return r;
}

bool all_healthy() noexcept {
  for (int c = 0; c < kComponentCount; ++c) {
    if (g_slots[c].state.load(std::memory_order_acquire) !=
        static_cast<int>(State::kHealthy))
      return false;
  }
  return true;
}

void set_recover_hook(Component c, RecoverHook hook) noexcept {
  slot(c).hook.store(hook, std::memory_order_release);
}

void expire_cooldowns() noexcept {
  const std::uint64_t now = now_ms();
  for (int c = 0; c < kComponentCount; ++c) {
    if (g_slots[c].state.load(std::memory_order_acquire) ==
        static_cast<int>(State::kDegraded))
      g_slots[c].deadline_ms.store(now, std::memory_order_relaxed);
  }
}

int recover_now() noexcept {
  if (!recovery_enabled()) return 0;
  expire_cooldowns();
  int recovered = 0;
  for (int c = 0; c < kComponentCount; ++c) {
    Slot& s = g_slots[c];
    const int st = s.state.load(std::memory_order_acquire);
    if (st == static_cast<int>(State::kHealthy)) continue;
    const RecoverHook hook = s.hook.load(std::memory_order_acquire);
    if (hook == nullptr) continue;  // passive-only component
    try {
      if (hook()) ++recovered;
    } catch (...) {
      // A recovery attempt must never take the process down; the
      // component simply stays degraded until the next tick.
    }
  }
  return recovered;
}

void reset_for_testing() noexcept {
  for (int c = 0; c < kComponentCount; ++c) {
    Slot& s = g_slots[c];
    s.state.store(static_cast<int>(State::kHealthy),
                  std::memory_order_release);
    s.cause.store(static_cast<int>(Cause::kNone),
                  std::memory_order_relaxed);
    s.backoff_ms.store(0, std::memory_order_relaxed);
    s.deadline_ms.store(0, std::memory_order_relaxed);
    // Hooks survive the reset: they are process-wide wiring installed at
    // static-init time by the component owners, not mutable health state.
  }
}

// ---------------------------------------------------------------------------
// Prober
// ---------------------------------------------------------------------------

struct Prober::Impl {
  enum class LifeState { kIdle, kRunning, kDraining };

  ProberOptions opt;

  mutable Mutex mu;
  std::condition_variable_any cv;
  LifeState state SHALOM_GUARDED_BY(mu) = LifeState::kIdle;
  bool kicked SHALOM_GUARDED_BY(mu) = false;

  std::thread worker;
  std::atomic<std::uint64_t> tick_count{0};

  explicit Impl(ProberOptions o) : opt(o) {}

  long period_ms() const noexcept {
    if (opt.period_ms > 0) return opt.period_ms;
    const long base = env_recovery_ms();
    return base < 10 ? 10 : base;
  }

  void run() {
    for (;;) {
      {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(period_ms());
        MutexLock lock(mu);
        while (state == LifeState::kRunning && !kicked) {
          if (cv.wait_until(lock, deadline) == std::cv_status::timeout)
            break;
        }
        if (state != LifeState::kRunning) return;
        kicked = false;
      }
      (void)recover_now();
      tick_count.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

Prober::Prober(ProberOptions opt) : impl_(new Impl(opt)) {}

Prober::~Prober() {
  stop();
  delete impl_;
}

bool Prober::start() noexcept {
  try {
    MutexLock lock(impl_->mu);
    if (impl_->state != Impl::LifeState::kIdle) return false;
    impl_->state = Impl::LifeState::kRunning;
    impl_->kicked = false;
    try {
      impl_->worker = std::thread([this] { impl_->run(); });
    } catch (...) {
      impl_->state = Impl::LifeState::kIdle;
      return false;
    }
    return true;
  } catch (...) {
    return false;
  }
}

void Prober::stop() noexcept {
  try {
    {
      MutexLock lock(impl_->mu);
      if (impl_->state == Impl::LifeState::kRunning)
        impl_->state = Impl::LifeState::kDraining;
    }
    impl_->cv.notify_all();
    if (impl_->worker.joinable()) impl_->worker.join();
    {
      MutexLock lock(impl_->mu);
      impl_->state = Impl::LifeState::kIdle;
    }
  } catch (...) {
    // Joining can only fail if the thread already exited; the prober is
    // idle either way.
  }
}

bool Prober::running() const noexcept {
  try {
    MutexLock lock(impl_->mu);
    return impl_->state == Impl::LifeState::kRunning;
  } catch (...) {
    return false;
  }
}

std::uint64_t Prober::ticks() const noexcept {
  return impl_->tick_count.load(std::memory_order_relaxed);
}

void Prober::kick() noexcept {
  try {
    {
      MutexLock lock(impl_->mu);
      if (impl_->state != Impl::LifeState::kRunning) return;
      impl_->kicked = true;
    }
    impl_->cv.notify_all();
  } catch (...) {
  }
}

}  // namespace health
}  // namespace shalom
