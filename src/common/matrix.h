// Row-major matrix view and owning matrix types.
//
// The whole library follows the paper's storage assumption: matrices are
// row-major, element (i, j) of an M x N matrix with leading dimension ld
// lives at data[i * ld + j], ld >= N. MatrixView is a non-owning span-like
// view; Matrix owns aligned storage. Both are cheap to copy/move where the
// semantics allow.
#pragma once

#include <cstddef>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/error.h"

namespace shalom {

using index_t = std::ptrdiff_t;

/// Non-owning view over a row-major matrix block.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    SHALOM_REQUIRE(rows >= 0 && cols >= 0, " rows=", rows, " cols=", cols);
    SHALOM_REQUIRE(ld >= cols, " ld=", ld, " cols=", cols);
  }

  T* data() const { return data_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }

  T& operator()(index_t i, index_t j) const {
    SHALOM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * ld_ + j];
  }

  T* row(index_t i) const {
    SHALOM_ASSERT(i >= 0 && i < rows_);
    return data_ + i * ld_;
  }

  /// Sub-block view starting at (i0, j0), r x c elements, same ld.
  MatrixView block(index_t i0, index_t j0, index_t r, index_t c) const {
    SHALOM_ASSERT(i0 + r <= rows_ && j0 + c <= cols_);
    return MatrixView(data_ + i0 * ld_ + j0, r, c, ld_);
  }

  /// Implicit view-of-const conversion.
  operator MatrixView<const T>() const {
    return MatrixView<const T>(data_, rows_, cols_, ld_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Owning row-major matrix with 64-byte-aligned storage.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  /// `ld` defaults to `cols`; pass a larger value to test padded layouts.
  Matrix(index_t rows, index_t cols, index_t ld = -1)
      : rows_(rows), cols_(cols), ld_(ld < 0 ? cols : ld) {
    SHALOM_REQUIRE(rows >= 0 && cols >= 0 && ld_ >= cols);
    storage_.reserve(static_cast<std::size_t>(rows_ * ld_) * sizeof(T));
    data_ = storage_.template as<T>(static_cast<std::size_t>(rows_ * ld_));
    fill(T{});
  }

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  Matrix(const Matrix& other) : Matrix(other.rows_, other.cols_, other.ld_) {
    for (index_t i = 0; i < rows_ * ld_; ++i) data_[i] = other.data_[i];
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) *this = Matrix(other);
    return *this;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator()(index_t i, index_t j) {
    SHALOM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * ld_ + j];
  }
  const T& operator()(index_t i, index_t j) const {
    SHALOM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * ld_ + j];
  }

  void fill(T value) {
    for (index_t i = 0; i < rows_ * ld_; ++i) data_[i] = value;
  }

  MatrixView<T> view() { return MatrixView<T>(data_, rows_, cols_, ld_); }
  MatrixView<const T> view() const {
    return MatrixView<const T>(data_, rows_, cols_, ld_);
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
  AlignedBuffer storage_;
  T* data_ = nullptr;
};

}  // namespace shalom
