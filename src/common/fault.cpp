#include "common/fault.h"

#include <cstdlib>
#include <cstring>

#include "common/error.h"

namespace shalom {

namespace {

// Robustness-stats counters: monotonic event tallies with no ordering
// relationship to the degraded work they count, so every operation is an
// explicit relaxed op (lock-free, hence outside the capability
// annotations of common/thread_annotations.h; shalom_lint enforces the
// explicit orders).
std::atomic<std::uint64_t> g_fallback_nopack{0};
std::atomic<std::uint64_t> g_threads_degraded{0};
std::atomic<std::uint64_t> g_plan_cache_bypassed{0};
std::atomic<std::uint64_t> g_kernels_quarantined{0};
std::atomic<std::uint64_t> g_selfchecks_run{0};
std::atomic<std::uint64_t> g_numeric_anomalies{0};
std::atomic<std::uint64_t> g_kernels_trapped{0};
std::atomic<std::uint64_t> g_watchdog_trips{0};
std::atomic<std::uint64_t> g_arena_corruptions{0};
std::atomic<std::uint64_t> g_stream_queue_peak{0};
std::atomic<std::uint64_t> g_requests_shed{0};
std::atomic<std::uint64_t> g_requests_expired{0};
std::atomic<std::uint64_t> g_requests_cancelled{0};
std::atomic<std::uint64_t> g_submit_retries{0};
std::atomic<std::uint64_t> g_breaker_trips{0};
std::atomic<std::uint64_t> g_table_records_rejected{0};
std::atomic<std::uint64_t> g_table_load_failures{0};
std::atomic<std::uint64_t> g_recoveries{0};
std::atomic<std::uint64_t> g_probation_probes{0};
std::atomic<std::uint64_t> g_probation_failures{0};
std::atomic<std::uint64_t> g_breaker_half_opens{0};
// Reset offset for the injected counters: the per-site counters are
// monotonic (tests rely on fault::injected), so reset only rebases the
// aggregate view.
std::atomic<std::uint64_t> g_injected_rebase{0};

std::uint64_t injected_sum() noexcept {
  std::uint64_t total = 0;
  for (int s = 0; s < fault::kSiteCount; ++s)
    total +=
        fault::detail::g_sites[s].injected.load(std::memory_order_relaxed);
  return total;
}

}  // namespace

RobustnessStats robustness_stats() noexcept {
  RobustnessStats s;
  s.fallback_nopack = g_fallback_nopack.load(std::memory_order_relaxed);
  s.threads_degraded = g_threads_degraded.load(std::memory_order_relaxed);
  s.plan_cache_bypassed =
      g_plan_cache_bypassed.load(std::memory_order_relaxed);
  s.kernels_quarantined =
      g_kernels_quarantined.load(std::memory_order_relaxed);
  s.selfchecks_run = g_selfchecks_run.load(std::memory_order_relaxed);
  s.numeric_anomalies = g_numeric_anomalies.load(std::memory_order_relaxed);
  s.kernels_trapped = g_kernels_trapped.load(std::memory_order_relaxed);
  s.watchdog_trips = g_watchdog_trips.load(std::memory_order_relaxed);
  s.arena_corruptions = g_arena_corruptions.load(std::memory_order_relaxed);
  s.stream_queue_peak = g_stream_queue_peak.load(std::memory_order_relaxed);
  s.requests_shed = g_requests_shed.load(std::memory_order_relaxed);
  s.requests_expired = g_requests_expired.load(std::memory_order_relaxed);
  s.requests_cancelled =
      g_requests_cancelled.load(std::memory_order_relaxed);
  s.submit_retries = g_submit_retries.load(std::memory_order_relaxed);
  s.breaker_trips = g_breaker_trips.load(std::memory_order_relaxed);
  s.table_records_rejected =
      g_table_records_rejected.load(std::memory_order_relaxed);
  s.table_load_failures =
      g_table_load_failures.load(std::memory_order_relaxed);
  s.recoveries = g_recoveries.load(std::memory_order_relaxed);
  s.probation_probes = g_probation_probes.load(std::memory_order_relaxed);
  s.probation_failures =
      g_probation_failures.load(std::memory_order_relaxed);
  s.breaker_half_opens =
      g_breaker_half_opens.load(std::memory_order_relaxed);
  const std::uint64_t rebase =
      g_injected_rebase.load(std::memory_order_relaxed);
  const std::uint64_t total = injected_sum();
  s.faults_injected = total >= rebase ? total - rebase : 0;
  return s;
}

void robustness_stats_reset() noexcept {
  g_fallback_nopack.store(0, std::memory_order_relaxed);
  g_threads_degraded.store(0, std::memory_order_relaxed);
  g_plan_cache_bypassed.store(0, std::memory_order_relaxed);
  g_kernels_quarantined.store(0, std::memory_order_relaxed);
  g_selfchecks_run.store(0, std::memory_order_relaxed);
  g_numeric_anomalies.store(0, std::memory_order_relaxed);
  g_kernels_trapped.store(0, std::memory_order_relaxed);
  g_watchdog_trips.store(0, std::memory_order_relaxed);
  g_arena_corruptions.store(0, std::memory_order_relaxed);
  g_stream_queue_peak.store(0, std::memory_order_relaxed);
  g_requests_shed.store(0, std::memory_order_relaxed);
  g_requests_expired.store(0, std::memory_order_relaxed);
  g_requests_cancelled.store(0, std::memory_order_relaxed);
  g_submit_retries.store(0, std::memory_order_relaxed);
  g_breaker_trips.store(0, std::memory_order_relaxed);
  g_table_records_rejected.store(0, std::memory_order_relaxed);
  g_table_load_failures.store(0, std::memory_order_relaxed);
  g_recoveries.store(0, std::memory_order_relaxed);
  g_probation_probes.store(0, std::memory_order_relaxed);
  g_probation_failures.store(0, std::memory_order_relaxed);
  g_breaker_half_opens.store(0, std::memory_order_relaxed);
  g_injected_rebase.store(injected_sum(), std::memory_order_relaxed);
}

namespace telemetry {
void note_fallback_nopack() noexcept {
  g_fallback_nopack.fetch_add(1, std::memory_order_relaxed);
}
void note_threads_degraded() noexcept {
  g_threads_degraded.fetch_add(1, std::memory_order_relaxed);
}
void note_plan_cache_bypassed() noexcept {
  g_plan_cache_bypassed.fetch_add(1, std::memory_order_relaxed);
}
void note_kernel_quarantined() noexcept {
  g_kernels_quarantined.fetch_add(1, std::memory_order_relaxed);
}
void note_selfcheck_run() noexcept {
  g_selfchecks_run.fetch_add(1, std::memory_order_relaxed);
}
void note_numeric_anomaly() noexcept {
  g_numeric_anomalies.fetch_add(1, std::memory_order_relaxed);
}
void note_kernel_trapped() noexcept {
  g_kernels_trapped.fetch_add(1, std::memory_order_relaxed);
}
void note_watchdog_trip() noexcept {
  g_watchdog_trips.fetch_add(1, std::memory_order_relaxed);
}
void note_arena_corruption() noexcept {
  g_arena_corruptions.fetch_add(1, std::memory_order_relaxed);
}
void note_queue_depth(std::uint64_t depth) noexcept {
  std::uint64_t peak = g_stream_queue_peak.load(std::memory_order_relaxed);
  while (depth > peak &&
         !g_stream_queue_peak.compare_exchange_weak(
             peak, depth, std::memory_order_relaxed,
             std::memory_order_relaxed)) {
  }
}
void note_request_shed() noexcept {
  g_requests_shed.fetch_add(1, std::memory_order_relaxed);
}
void note_request_expired() noexcept {
  g_requests_expired.fetch_add(1, std::memory_order_relaxed);
}
void note_request_cancelled() noexcept {
  g_requests_cancelled.fetch_add(1, std::memory_order_relaxed);
}
void note_submit_retry() noexcept {
  g_submit_retries.fetch_add(1, std::memory_order_relaxed);
}
void note_breaker_trip() noexcept {
  g_breaker_trips.fetch_add(1, std::memory_order_relaxed);
}
void note_table_record_rejected() noexcept {
  g_table_records_rejected.fetch_add(1, std::memory_order_relaxed);
}
void note_table_load_failure() noexcept {
  g_table_load_failures.fetch_add(1, std::memory_order_relaxed);
}
void note_recovery() noexcept {
  g_recoveries.fetch_add(1, std::memory_order_relaxed);
}
void note_probation_probe() noexcept {
  g_probation_probes.fetch_add(1, std::memory_order_relaxed);
}
void note_probation_failure() noexcept {
  g_probation_failures.fetch_add(1, std::memory_order_relaxed);
}
void note_breaker_half_open() noexcept {
  g_breaker_half_opens.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace telemetry

namespace fault {

namespace detail {

SiteState g_sites[kSiteCount];

bool should_fail_slow(SiteState& st) noexcept {
  const Mode mode =
      static_cast<Mode>(st.armed.load(std::memory_order_relaxed));
  const std::uint64_t n = st.param.load(std::memory_order_relaxed);
  const std::uint64_t call =
      st.calls.fetch_add(1, std::memory_order_relaxed) + 1;

  bool fail = false;
  switch (mode) {
    case Mode::kDisarmed:
      break;  // raced with disarm(): treat as success
    case Mode::kOnce: {
      // The first checker to claim the trigger wins; the CAS doubles as
      // the self-disarm, so concurrent checkers see exactly one failure.
      std::uint32_t expected = static_cast<std::uint32_t>(Mode::kOnce);
      fail = st.armed.compare_exchange_strong(expected, 0,
                                              std::memory_order_relaxed);
      break;
    }
    case Mode::kEveryN:
      fail = n > 0 && call % n == 0;
      break;
    case Mode::kFailAfter:
      fail = call > n;
      break;
  }
  if (fail) st.injected.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

}  // namespace detail

const char* site_name(Site site) noexcept {
  switch (site) {
    case Site::kAllocPackArena:
      return "alloc.pack_arena";
    case Site::kAllocPlan:
      return "alloc.plan";
    case Site::kThreadpoolSpawn:
      return "threadpool.spawn";
    case Site::kPlanCacheInsert:
      return "plan_cache.insert";
    case Site::kSelfcheckProbe:
      return "selfcheck.probe";
    case Site::kGuardTrap:
      return "guard.trap";
    case Site::kThreadpoolHeartbeat:
      return "threadpool.heartbeat";
    case Site::kGuardCanary:
      return "guard.canary";
    case Site::kThreadpoolSteal:
      return "threadpool.steal";
    case Site::kSubmitQueue:
      return "submit.queue";
    case Site::kEngineDeadline:
      return "engine.deadline";
    case Site::kEngineShed:
      return "engine.shed";
    case Site::kTableOpen:
      return "table.open";
    case Site::kTableRead:
      return "table.read";
    case Site::kTableWrite:
      return "table.write";
    case Site::kTableRename:
      return "table.rename";
    case Site::kTableFsync:
      return "table.fsync";
    case Site::kHealthProbe:
      return "health.probe";
    case Site::kHealthRespawn:
      return "health.respawn";
  }
  return "unknown";
}

void arm(Site site, Mode mode, std::uint64_t n) noexcept {
  detail::SiteState& st = detail::g_sites[static_cast<int>(site)];
  st.armed.store(0, std::memory_order_relaxed);  // quiesce checkers
  st.param.store(n, std::memory_order_relaxed);
  st.calls.store(0, std::memory_order_relaxed);
  st.armed.store(static_cast<std::uint32_t>(mode),
                 std::memory_order_relaxed);
}

void disarm(Site site) noexcept {
  detail::g_sites[static_cast<int>(site)].armed.store(
      0, std::memory_order_relaxed);
}

void disarm_all() noexcept {
  for (int s = 0; s < kSiteCount; ++s)
    detail::g_sites[s].armed.store(0, std::memory_order_relaxed);
}

bool armed(Site site) noexcept {
  return detail::g_sites[static_cast<int>(site)].armed.load(
             std::memory_order_relaxed) != 0;
}

std::uint64_t injected(Site site) noexcept {
  return detail::g_sites[static_cast<int>(site)].injected.load(
      std::memory_order_relaxed);
}

namespace {

bool parse_site(const char* name, std::size_t len, Site& out) noexcept {
  for (int s = 0; s < kSiteCount; ++s) {
    const Site site = static_cast<Site>(s);
    const char* sn = site_name(site);
    if (std::strlen(sn) == len && std::strncmp(sn, name, len) == 0) {
      out = site;
      return true;
    }
  }
  return false;
}

/// Parses "<digits>" into n; rejects empty / non-digit / overflowing.
bool parse_u64(const char* s, std::size_t len, std::uint64_t& out) noexcept {
  if (len == 0 || len > 19) return false;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
  }
  out = v;
  return true;
}

bool arm_one_entry(const char* entry, std::size_t len) noexcept {
  const char* colon =
      static_cast<const char*>(std::memchr(entry, ':', len));
  if (colon == nullptr) return false;
  Site site;
  if (!parse_site(entry, static_cast<std::size_t>(colon - entry), site))
    return false;
  const char* spec = colon + 1;
  const std::size_t spec_len =
      len - static_cast<std::size_t>(colon - entry) - 1;

  constexpr const char kOnce[] = "once";
  constexpr const char kEvery[] = "every-";
  constexpr const char kFailAfter[] = "fail-after-";
  std::uint64_t n = 0;
  if (spec_len == sizeof(kOnce) - 1 &&
      std::strncmp(spec, kOnce, spec_len) == 0) {
    arm(site, Mode::kOnce);
    return true;
  }
  if (spec_len > sizeof(kEvery) - 1 &&
      std::strncmp(spec, kEvery, sizeof(kEvery) - 1) == 0 &&
      parse_u64(spec + sizeof(kEvery) - 1, spec_len - (sizeof(kEvery) - 1),
                n) &&
      n > 0) {
    arm(site, Mode::kEveryN, n);
    return true;
  }
  if (spec_len > sizeof(kFailAfter) - 1 &&
      std::strncmp(spec, kFailAfter, sizeof(kFailAfter) - 1) == 0 &&
      parse_u64(spec + sizeof(kFailAfter) - 1,
                spec_len - (sizeof(kFailAfter) - 1), n)) {
    arm(site, Mode::kFailAfter, n);
    return true;
  }
  return false;
}

/// Reads SHALOM_FAULT once at static-init time, before any library entry
/// point can reach a fault site.
struct EnvInit {
  EnvInit() noexcept {
    if (const char* env = shalom::env::raw("SHALOM_FAULT")) {
      if (!arm_from_spec(env))
        shalom::env::warn_malformed(
            "SHALOM_FAULT", env,
            "<site>:once|every-<N>|fail-after-<N>[,<entry>...]");
    }
  }
} g_env_init;

}  // namespace

bool arm_from_spec(const char* spec) noexcept {
  if (spec == nullptr) return false;
  bool all_ok = true;
  const char* p = spec;
  while (*p != '\0') {
    const char* sep = std::strchr(p, ',');
    const std::size_t len =
        sep != nullptr ? static_cast<std::size_t>(sep - p) : std::strlen(p);
    if (len == 0 || !arm_one_entry(p, len)) all_ok = false;
    p += len;
    if (*p == ',') ++p;
  }
  return all_ok;
}

}  // namespace fault
}  // namespace shalom
