// Deterministic random fills for workloads and tests.
//
// The paper initializes matrices "with random floating-point numbers
// (0 to 1)" (Section 7.2). A fixed-seed xoshiro-style generator keeps every
// experiment reproducible run-to-run.
#pragma once

#include <cstdint>

#include "common/matrix.h"

namespace shalom {

/// Small, fast SplitMix64 generator: statistically fine for data fills and
/// cheap enough to be used inside tight test loops.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

/// Fills `m` (including any ld padding gap left untouched) with uniform
/// values in [0, 1).
template <typename T>
void fill_random(Matrix<T>& m, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j)
      m(i, j) = static_cast<T>(rng.next_unit());
}

}  // namespace shalom
