// Kernel self-verification probes (see selfcheck.h for the contract).
//
// Each probe exercises one kernel family on small deterministic inputs
// laid out exactly as the dispatch layer lays them out (direct storage
// with sentinel-filled padding that must never be read, packed slivers
// with the zero-padding the layout contract requires, NaN-filled C with
// beta == 0 to prove the kernel never reads C), and compares against a
// high-precision scalar reference. Padding/canary violations fail the
// probe just like wrong arithmetic: an out-of-bounds kernel is as
// disqualified as an inaccurate one.
//
// Layering note: this file lives in shalom_common, which does NOT link
// shalom_core. It may only instantiate header-only templates
// (core/dispatch.h kernels, core/widegemm.h's wide_tile); referencing any
// symbol compiled into shalom_core (pack.cpp, model.cpp) would break the
// link.

#include "common/selfcheck.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/guard.h"
#include "common/rng.h"
#include "core/dispatch.h"
#include "core/widegemm.h"

namespace shalom {

namespace {

/// Case-insensitive ASCII string equality for env-value keywords.
bool env_ieq(const char* a, const char* b) noexcept {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    if (std::tolower(static_cast<unsigned char>(*a)) !=
        std::tolower(static_cast<unsigned char>(*b)))
      return false;
  }
  return *a == *b;
}

}  // namespace

namespace selfcheck {
namespace {

// ---------------------------------------------------------------------------
// Deterministic probe data
// ---------------------------------------------------------------------------

template <typename T>
struct ProbeEps;
template <>
struct ProbeEps<float> {
  static constexpr double value = 1e-6;
};
template <>
struct ProbeEps<double> {
  static constexpr double value = 1e-14;
};

/// Absolute tolerance for probe values in [-1, 1): generous enough for
/// any FMA/reassociation scheme, tight enough that a wrong lane mapping
/// (the realistic miscompile) fails by orders of magnitude.
template <typename T>
double probe_tol(index_t kc) {
  return (static_cast<double>(kc) + 16.0) * 8.0 * ProbeEps<T>::value;
}

/// Deterministic pseudo-random value in [-1, 1); every (salt, i, j) maps
/// to one fixed bit pattern so failures reproduce across runs and threads.
template <typename T>
T pv(std::uint64_t salt, index_t i, index_t j) {
  SplitMix64 rng(salt ^
                 (static_cast<std::uint64_t>(i + 1) * 0x9E3779B97F4A7C15ull) ^
                 (static_cast<std::uint64_t>(j + 7) * 0xBF58476D1CE4E5B9ull));
  return static_cast<T>(rng.next_unit() * 2.0 - 1.0);
}

/// Fills slots a correct kernel must never read or write; exactly
/// representable in float so canary comparisons are bitwise.
template <typename T>
constexpr T kSentinel = static_cast<T>(1048576);

struct AlphaBeta {
  double alpha;
  double beta;
  bool nan_c;  // pre-fill the C tile with NaN (only valid when beta == 0)
};

/// Verifies a probed C buffer: the m_eff x n_eff tile matches `ref(i, j)`
/// within `tol`, every other slot (column padding, untouched rows) still
/// holds the sentinel canary.
template <typename T, typename RefFn>
bool check_c(const std::vector<T>& c, index_t ldc, int rows_alloc, int m_eff,
             int n_eff, double tol, RefFn ref) {
  for (int i = 0; i < rows_alloc; ++i) {
    for (index_t j = 0; j < ldc; ++j) {
      const T got = c[static_cast<std::size_t>(i) * ldc + j];
      if (i < m_eff && j < n_eff) {
        const double g = static_cast<double>(got);
        if (!std::isfinite(g) ||
            std::abs(g - ref(i, static_cast<int>(j))) > tol)
          return false;
      } else if (got != kSentinel<T>) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Main / edge kernel family probes
// ---------------------------------------------------------------------------

/// Probes the kern_main family for one (A access, B access) combination.
/// edges = false probes only the full (mr, nr) tile; edges = true probes
/// every remainder tile (the Fig. 6b edge instantiations).
template <typename T, ukr::AAccess AA, ukr::BAccess BA>
bool probe_main_family(bool edges) {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int mr = ukr::kMaxMr;
  constexpr int nr = ukr::kMaxNrv * L;
  const T nan = std::numeric_limits<T>::quiet_NaN();

  const index_t kcs[4] = {1, 3, L, 2 * L + 1};
  const AlphaBeta cases[3] = {
      {1.0, 0.0, true}, {-0.5, 0.75, false}, {1.25, 1.0, false}};

  for (index_t kc : kcs) {
    const double tol = probe_tol<T>(kc);
    for (int m_eff = 1; m_eff <= mr; ++m_eff) {
      for (int n_eff = 1; n_eff <= nr; ++n_eff) {
        const bool full = (m_eff == mr && n_eff == nr);
        if (edges ? full : !full) continue;

        // A storage, mirroring the layout each access mode dispatches on.
        index_t lda;
        std::vector<T> abuf;
        if constexpr (AA == ukr::AAccess::kDirect) {
          // Row-major in place; ld padding is sentinel (never read).
          lda = kc + 2;
          abuf.assign(static_cast<std::size_t>(m_eff) * lda, kSentinel<T>);
          for (int i = 0; i < m_eff; ++i)
            for (index_t k = 0; k < kc; ++k)
              abuf[i * lda + k] = pv<T>(1, i, k);
        } else if constexpr (AA == ukr::AAccess::kPacked) {
          // Column slivers of stride mr: rows past m_eff are zero BY
          // CONTRACT (the packer writes them), plus tail slack.
          lda = mr;
          abuf.assign(static_cast<std::size_t>(kc) * mr +
                          ukr::kPackSlackElems,
                      T{0});
          for (index_t k = 0; k < kc; ++k)
            for (int i = 0; i < m_eff; ++i) abuf[k * mr + i] = pv<T>(1, i, k);
        } else {  // kDirectTrans: transposed in place, contiguous columns.
          lda = mr + 1;
          abuf.assign(static_cast<std::size_t>(kc) * lda, kSentinel<T>);
          for (index_t k = 0; k < kc; ++k)
            for (int i = 0; i < m_eff; ++i) abuf[k * lda + i] = pv<T>(1, i, k);
        }

        index_t ldb;
        std::vector<T> bbuf;
        if constexpr (BA == ukr::BAccess::kDirect) {
          ldb = nr + 3;
          bbuf.assign(static_cast<std::size_t>(kc) * ldb, kSentinel<T>);
          for (index_t k = 0; k < kc; ++k)
            for (int j = 0; j < n_eff; ++j) bbuf[k * ldb + j] = pv<T>(2, k, j);
        } else {
          // Row slivers of stride nr, zero-padded past the edge.
          ldb = nr;
          bbuf.assign(static_cast<std::size_t>(kc) * nr, T{0});
          for (index_t k = 0; k < kc; ++k)
            for (int j = 0; j < n_eff; ++j) bbuf[k * nr + j] = pv<T>(2, k, j);
        }

        for (const AlphaBeta& cs : cases) {
          const index_t ldc = nr + 3;
          std::vector<T> cbuf(static_cast<std::size_t>(mr) * ldc,
                              kSentinel<T>);
          for (int i = 0; i < m_eff; ++i)
            for (int j = 0; j < n_eff; ++j)
              cbuf[i * ldc + j] =
                  cs.nan_c ? nan : pv<T>(3, i, j);

          ukr::run_main_tile<T, AA, BA>(
              m_eff, n_eff, kc, abuf.data(), lda, bbuf.data(), ldb,
              cbuf.data(), ldc, static_cast<T>(cs.alpha),
              static_cast<T>(cs.beta));

          const auto ref = [&](int i, int j) {
            double sum = 0.0;
            for (index_t k = 0; k < kc; ++k)
              sum += static_cast<double>(pv<T>(1, i, k)) *
                     static_cast<double>(pv<T>(2, k, j));
            double r = cs.alpha * sum;
            if (cs.beta != 0.0)
              r += cs.beta * static_cast<double>(pv<T>(3, i, j));
            return r;
          };
          if (!check_c(cbuf, ldc, mr, m_eff, n_eff, tol, ref)) return false;
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fused NN pack-and-compute probe (Algorithm 1 / Fig. 4)
// ---------------------------------------------------------------------------

template <typename T>
bool probe_fused_nn() {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int mr = ukr::kMaxMr;
  constexpr int nr = ukr::kNrFull<T>;
  const T nan = std::numeric_limits<T>::quiet_NaN();

  struct Cfg {
    bool pack_cur, ahead;
    int n_eff;
  };
  const index_t kcs[3] = {3, 2 * L + 1, 4 * L};
  const AlphaBeta cases[2] = {{1.0, 0.0, true}, {-0.5, 0.75, false}};

  for (index_t kc : kcs) {
    const double tol = probe_tol<T>(kc);
    const Cfg cfgs[5] = {{true, false, nr},
                         {true, false, nr - 1},
                         {true, false, 1},
                         {true, true, nr},
                         {false, false, nr}};
    for (const Cfg& cfg : cfgs) {
      const int n_eff = cfg.n_eff;

      const index_t lda = kc + 1;
      std::vector<T> abuf(static_cast<std::size_t>(mr) * lda, kSentinel<T>);
      for (int i = 0; i < mr; ++i)
        for (index_t k = 0; k < kc; ++k) abuf[i * lda + k] = pv<T>(11, i, k);

      // B source: either in-place rows holding the current sliver at
      // column 0 and (when packing ahead) the full-width next sliver at
      // column nr, or - the t = 1 steady state - the already-packed
      // current sliver itself.
      index_t ldb;
      std::vector<T> bbuf;
      const T* bptr;
      const T* bnext = nullptr;
      index_t ldb_next = 0;
      if (cfg.pack_cur) {
        ldb = 2 * nr + 1;
        bbuf.assign(static_cast<std::size_t>(kc) * ldb, kSentinel<T>);
        for (index_t k = 0; k < kc; ++k) {
          for (int j = 0; j < n_eff; ++j) bbuf[k * ldb + j] = pv<T>(12, k, j);
          if (cfg.ahead)
            for (int j = 0; j < nr; ++j)
              bbuf[k * ldb + nr + j] = pv<T>(13, k, j);
        }
        bptr = bbuf.data();
        if (cfg.ahead) {
          bnext = bbuf.data() + nr;
          ldb_next = ldb;
        }
      } else {
        ldb = nr;
        bbuf.assign(static_cast<std::size_t>(kc) * nr, T{0});
        for (index_t k = 0; k < kc; ++k)
          for (int j = 0; j < n_eff; ++j) bbuf[k * nr + j] = pv<T>(12, k, j);
        bptr = bbuf.data();
      }

      std::vector<T> bc(static_cast<std::size_t>(kc) * nr, kSentinel<T>);
      std::vector<T> bc_next(static_cast<std::size_t>(kc) * nr,
                             kSentinel<T>);

      for (const AlphaBeta& cs : cases) {
        if (cfg.pack_cur) std::fill(bc.begin(), bc.end(), kSentinel<T>);
        if (cfg.ahead)
          std::fill(bc_next.begin(), bc_next.end(), kSentinel<T>);

        const index_t ldc = nr + 2;
        std::vector<T> cbuf(static_cast<std::size_t>(mr) * ldc,
                            kSentinel<T>);
        for (int i = 0; i < mr; ++i)
          for (int j = 0; j < n_eff; ++j)
            cbuf[i * ldc + j] = cs.nan_c ? nan : pv<T>(3, i, j);

        ukr::run_fused_pack_nn<T>(
            cfg.pack_cur, cfg.ahead, n_eff, kc, abuf.data(), lda, bptr, ldb,
            bc.data(), bnext, ldb_next, bc_next.data(), cbuf.data(), ldc,
            static_cast<T>(cs.alpha), static_cast<T>(cs.beta));

        const auto ref = [&](int i, int j) {
          double sum = 0.0;
          for (index_t k = 0; k < kc; ++k)
            sum += static_cast<double>(pv<T>(11, i, k)) *
                   static_cast<double>(pv<T>(12, k, j));
          double r = cs.alpha * sum;
          if (cs.beta != 0.0)
            r += cs.beta * static_cast<double>(pv<T>(3, i, j));
          return r;
        };
        if (!check_c(cbuf, ldc, mr, mr, n_eff, tol, ref)) return false;

        // Pack output is a bitwise copy, zero-padded to the full sliver
        // width (downstream packed-B kernels rely on the zeros).
        if (cfg.pack_cur) {
          for (index_t k = 0; k < kc; ++k)
            for (int j = 0; j < nr; ++j) {
              const T want = j < n_eff ? pv<T>(12, k, j) : T{0};
              if (bc[k * nr + j] != want) return false;
            }
        }
        if (cfg.ahead) {
          for (index_t k = 0; k < kc; ++k)
            for (int j = 0; j < nr; ++j)
              if (bc_next[k * nr + j] != pv<T>(13, k, j)) return false;
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fused TN/TT pack-A probe (Section 4.3)
// ---------------------------------------------------------------------------

template <typename T>
bool probe_fused_tn() {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int mr = ukr::kMaxMr;
  constexpr int nr = ukr::kMaxNrv * L;
  const T nan = std::numeric_limits<T>::quiet_NaN();

  const index_t kcs[3] = {1, 2, L + 1};
  const int n_effs[4] = {nr, nr - 1, 3, 1};
  const AlphaBeta cases[2] = {{1.0, 0.0, true}, {1.25, 1.0, false}};

  for (int bp = 0; bp < 2; ++bp) {
    const bool b_packed = bp != 0;
    for (index_t kc : kcs) {
      const double tol = probe_tol<T>(kc);
      for (int n_eff : n_effs) {
        // Transposed-in-place A: op(A) column k is the contiguous run
        // a[k*lda .. k*lda+mr); the slot at index mr is sentinel.
        const index_t lda = mr + 1;
        std::vector<T> abuf(static_cast<std::size_t>(kc) * lda,
                            kSentinel<T>);
        for (index_t k = 0; k < kc; ++k)
          for (int i = 0; i < mr; ++i) abuf[k * lda + i] = pv<T>(21, i, k);

        index_t ldb;
        std::vector<T> bbuf;
        if (b_packed) {
          ldb = nr;
          bbuf.assign(static_cast<std::size_t>(kc) * nr, T{0});
        } else {
          ldb = nr + 2;
          bbuf.assign(static_cast<std::size_t>(kc) * ldb, kSentinel<T>);
        }
        for (index_t k = 0; k < kc; ++k)
          for (int j = 0; j < n_eff; ++j) bbuf[k * ldb + j] = pv<T>(22, k, j);

        for (const AlphaBeta& cs : cases) {
          std::vector<T> ac(static_cast<std::size_t>(kc) * mr +
                                ukr::kPackSlackElems,
                            kSentinel<T>);
          const index_t ldc = nr + 2;
          std::vector<T> cbuf(static_cast<std::size_t>(mr) * ldc,
                              kSentinel<T>);
          for (int i = 0; i < mr; ++i)
            for (int j = 0; j < n_eff; ++j)
              cbuf[i * ldc + j] = cs.nan_c ? nan : pv<T>(3, i, j);

          ukr::run_fused_pack_tn<T>(b_packed, n_eff, kc, abuf.data(), lda,
                                    ac.data(), bbuf.data(), ldb,
                                    cbuf.data(), ldc,
                                    static_cast<T>(cs.alpha),
                                    static_cast<T>(cs.beta));

          const auto ref = [&](int i, int j) {
            double sum = 0.0;
            for (index_t k = 0; k < kc; ++k)
              sum += static_cast<double>(pv<T>(21, i, k)) *
                     static_cast<double>(pv<T>(22, k, j));
            double r = cs.alpha * sum;
            if (cs.beta != 0.0)
              r += cs.beta * static_cast<double>(pv<T>(3, i, j));
            return r;
          };
          if (!check_c(cbuf, ldc, mr, mr, n_eff, tol, ref)) return false;

          // Ac must hold the bitwise-exact packed columns; the tail slack
          // must stay untouched.
          for (index_t k = 0; k < kc; ++k)
            for (int i = 0; i < mr; ++i)
              if (ac[k * mr + i] != pv<T>(21, i, k)) return false;
          for (index_t s = kc * mr; s < static_cast<index_t>(ac.size()); ++s)
            if (ac[s] != kSentinel<T>) return false;
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fused NT inner-product probe (Algorithm 3 / Fig. 5)
// ---------------------------------------------------------------------------

template <typename T>
bool probe_fused_nt() {
  using V = simd::vec_of_t<T>;
  constexpr int L = V::kLanes;
  constexpr int mr = ukr::kMaxMr;
  constexpr int nr = ukr::kMaxNrv * L;
  const T nan = std::numeric_limits<T>::quiet_NaN();

  const index_t kcs[3] = {L, 2 * L + 3, 35};
  const int n_effs[4] = {nr, nr - 1, 4, 1};
  const AlphaBeta cases[2] = {{1.0, 0.0, true}, {-0.5, 0.75, false}};

  for (index_t kc : kcs) {
    const double tol = probe_tol<T>(kc);
    for (int n_eff : n_effs) {
      const index_t lda = kc + 1;
      std::vector<T> abuf(static_cast<std::size_t>(mr) * lda, kSentinel<T>);
      for (int i = 0; i < mr; ++i)
        for (index_t k = 0; k < kc; ++k) abuf[i * lda + k] = pv<T>(31, i, k);

      // B stored transposed: op(B)(k, j) lives at bt[j*ldb + k].
      const index_t ldb = kc + 1;
      std::vector<T> bt(static_cast<std::size_t>(n_eff) * ldb, kSentinel<T>);
      for (int j = 0; j < n_eff; ++j)
        for (index_t k = 0; k < kc; ++k) bt[j * ldb + k] = pv<T>(32, k, j);

      for (const AlphaBeta& cs : cases) {
        // The driver pre-zeroes the sliver tail for edge slivers; full
        // slivers are written end to end, so sentinel catches gaps.
        std::vector<T> bc(static_cast<std::size_t>(kc) * nr,
                          n_eff < nr ? T{0} : kSentinel<T>);
        const index_t ldc = nr + 2;
        std::vector<T> cbuf(static_cast<std::size_t>(mr) * ldc,
                            kSentinel<T>);
        for (int i = 0; i < mr; ++i)
          for (int j = 0; j < n_eff; ++j)
            cbuf[i * ldc + j] = cs.nan_c ? nan : pv<T>(3, i, j);

        // Replicate the driver's column-group loop over one sliver.
        for (int jofs = 0; jofs < n_eff; jofs += 3) {
          const int w = std::min(3, n_eff - jofs);
          const bool store_full = jofs + w < n_eff;
          ukr::run_fused_pack_nt<T>(w, kc, abuf.data(), lda, bt.data(), ldb,
                                    bc.data(), jofs, nr, store_full,
                                    cbuf.data(), ldc,
                                    static_cast<T>(cs.alpha),
                                    static_cast<T>(cs.beta));
        }

        const auto ref = [&](int i, int j) {
          double sum = 0.0;
          for (index_t k = 0; k < kc; ++k)
            sum += static_cast<double>(pv<T>(31, i, k)) *
                   static_cast<double>(pv<T>(32, k, j));
          double r = cs.alpha * sum;
          if (cs.beta != 0.0)
            r += cs.beta * static_cast<double>(pv<T>(3, i, j));
          return r;
        };
        if (!check_c(cbuf, ldc, mr, mr, n_eff, tol, ref)) return false;

        // The scatter must reproduce B^T bitwise, zero-padded at the edge.
        for (index_t k = 0; k < kc; ++k)
          for (int j = 0; j < nr; ++j) {
            const T want = j < n_eff ? pv<T>(32, k, j) : T{0};
            if (bc[k * nr + j] != want) return false;
          }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Wide-vector tile probe (Section 5.5)
// ---------------------------------------------------------------------------

template <int Bits>
bool probe_wide() {
  constexpr int kMr = wide::WideTile<Bits>::kMr;
  constexpr int kLanes = Bits / 32;
  constexpr int kNr = wide::WideTile<Bits>::kNrv * kLanes;
  const float nan = std::numeric_limits<float>::quiet_NaN();

  const index_t kcs[3] = {1, 5, 17};
  struct MN {
    int m, n;
  };
  const MN mns[3] = {{kMr, kNr}, {kMr - 2, kNr - 3}, {1, 1}};
  const AlphaBeta cases[2] = {{1.0, 0.0, true}, {-0.5, 0.75, false}};

  for (index_t kc : kcs) {
    const double tol = probe_tol<float>(kc);
    for (const MN& mn : mns) {
      std::vector<float> a_sliver(static_cast<std::size_t>(kc) * kMr, 0.f);
      for (index_t k = 0; k < kc; ++k)
        for (int i = 0; i < mn.m; ++i)
          a_sliver[k * kMr + i] = pv<float>(41, i, k);
      std::vector<float> b_sliver(static_cast<std::size_t>(kc) * kNr, 0.f);
      for (index_t k = 0; k < kc; ++k)
        for (int j = 0; j < mn.n; ++j)
          b_sliver[k * kNr + j] = pv<float>(42, k, j);

      for (const AlphaBeta& cs : cases) {
        const index_t ldc = kNr + 1;
        std::vector<float> cbuf(static_cast<std::size_t>(kMr) * ldc,
                                kSentinel<float>);
        for (int i = 0; i < mn.m; ++i)
          for (int j = 0; j < mn.n; ++j)
            cbuf[i * ldc + j] = cs.nan_c ? nan : pv<float>(3, i, j);

        wide::wide_tile<Bits>(mn.m, mn.n, kc, a_sliver.data(),
                              b_sliver.data(), cbuf.data(), ldc,
                              static_cast<float>(cs.alpha),
                              static_cast<float>(cs.beta));

        const auto ref = [&](int i, int j) {
          double sum = 0.0;
          for (index_t k = 0; k < kc; ++k)
            sum += static_cast<double>(pv<float>(41, i, k)) *
                   static_cast<double>(pv<float>(42, k, j));
          double r = cs.alpha * sum;
          if (cs.beta != 0.0)
            r += cs.beta * static_cast<double>(pv<float>(3, i, j));
          return r;
        };
        if (!check_c(cbuf, ldc, kMr, mn.m, mn.n, tol, ref)) return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-variant state and probe dispatch
// ---------------------------------------------------------------------------

// Verdict publication is CAS-based (no lock), so this state lives
// outside the thread-safety-analysis capabilities; the explicit
// memory-order discipline below (acq_rel publish / acquire read) is what
// shalom_lint's atomic-memory-order rule pins down.
std::atomic<int> g_state[kVariantCount];

// Why each variant was last quarantined (health::Cause as int; kNone for
// never-quarantined). Written before the quarantine verdict publishes and
// read after observing it, so relaxed is enough for the value to be a
// best-effort diagnostic; recoverability decisions re-read it only while
// the variant is observably quarantined.
std::atomic<int> g_cause[kVariantCount];

using ukr::AAccess;
using ukr::BAccess;

/// The actual probe computation for a variant: any exception escaping a
/// probe (it should not happen - probes only touch local vectors) is a
/// failed probe, never a crash in dispatch.
bool probe_body(Variant v) noexcept {
  try {
    switch (v) {
      case Variant::kMainF32DirectDirect:
        return probe_main_family<float, AAccess::kDirect, BAccess::kDirect>(
            false);
      case Variant::kMainF32DirectPacked:
        return probe_main_family<float, AAccess::kDirect, BAccess::kPacked>(
            false);
      case Variant::kMainF32PackedDirect:
        return probe_main_family<float, AAccess::kPacked, BAccess::kDirect>(
            false);
      case Variant::kMainF32PackedPacked:
        return probe_main_family<float, AAccess::kPacked, BAccess::kPacked>(
            false);
      case Variant::kMainF32TransDirect:
        return probe_main_family<float, AAccess::kDirectTrans,
                                 BAccess::kDirect>(false) &&
               probe_main_family<float, AAccess::kDirectTrans,
                                 BAccess::kPacked>(false);
      case Variant::kMainF64DirectDirect:
        return probe_main_family<double, AAccess::kDirect, BAccess::kDirect>(
            false);
      case Variant::kMainF64DirectPacked:
        return probe_main_family<double, AAccess::kDirect, BAccess::kPacked>(
            false);
      case Variant::kMainF64PackedDirect:
        return probe_main_family<double, AAccess::kPacked, BAccess::kDirect>(
            false);
      case Variant::kMainF64PackedPacked:
        return probe_main_family<double, AAccess::kPacked, BAccess::kPacked>(
            false);
      case Variant::kMainF64TransDirect:
        return probe_main_family<double, AAccess::kDirectTrans,
                                 BAccess::kDirect>(false) &&
               probe_main_family<double, AAccess::kDirectTrans,
                                 BAccess::kPacked>(false);
      case Variant::kEdgeF32DirectDirect:
        return probe_main_family<float, AAccess::kDirect, BAccess::kDirect>(
            true);
      case Variant::kEdgeF32DirectPacked:
        return probe_main_family<float, AAccess::kDirect, BAccess::kPacked>(
            true);
      case Variant::kEdgeF32PackedDirect:
        return probe_main_family<float, AAccess::kPacked, BAccess::kDirect>(
            true);
      case Variant::kEdgeF32PackedPacked:
        return probe_main_family<float, AAccess::kPacked, BAccess::kPacked>(
            true);
      case Variant::kEdgeF32TransDirect:
        return probe_main_family<float, AAccess::kDirectTrans,
                                 BAccess::kDirect>(true) &&
               probe_main_family<float, AAccess::kDirectTrans,
                                 BAccess::kPacked>(true);
      case Variant::kEdgeF64DirectDirect:
        return probe_main_family<double, AAccess::kDirect, BAccess::kDirect>(
            true);
      case Variant::kEdgeF64DirectPacked:
        return probe_main_family<double, AAccess::kDirect, BAccess::kPacked>(
            true);
      case Variant::kEdgeF64PackedDirect:
        return probe_main_family<double, AAccess::kPacked, BAccess::kDirect>(
            true);
      case Variant::kEdgeF64PackedPacked:
        return probe_main_family<double, AAccess::kPacked, BAccess::kPacked>(
            true);
      case Variant::kEdgeF64TransDirect:
        return probe_main_family<double, AAccess::kDirectTrans,
                                 BAccess::kDirect>(true) &&
               probe_main_family<double, AAccess::kDirectTrans,
                                 BAccess::kPacked>(true);
      case Variant::kFusedNnF32:
        return probe_fused_nn<float>();
      case Variant::kFusedNnF64:
        return probe_fused_nn<double>();
      case Variant::kFusedNtF32:
        return probe_fused_nt<float>();
      case Variant::kFusedNtF64:
        return probe_fused_nt<double>();
      case Variant::kFusedTnF32:
        return probe_fused_tn<float>();
      case Variant::kFusedTnF64:
        return probe_fused_tn<double>();
      case Variant::kWide128:
        return probe_wide<128>();
      case Variant::kWide256:
        return probe_wide<256>();
      case Variant::kWide512:
        return probe_wide<512>();
    }
  } catch (...) {
  }
  return false;
}

/// Test-only probe replacement (set_probe_body_for_testing); nullptr
/// means the real probe_body above. Lock-free hand-off, so explicit
/// relaxed orders per the lint discipline.
std::atomic<bool (*)(Variant)> g_probe_override{nullptr};

/// Context threaded through the trap scope. run_trapped takes a plain
/// function pointer (a trap must not unwind through std::function
/// internals), so the variant and verdict travel in this POD.
struct TrapProbeCtx {
  Variant v;
  bool (*body)(Variant);
  bool ok;
};

void run_probe_trampoline(void* p) {
  TrapProbeCtx* ctx = static_cast<TrapProbeCtx*>(p);
  ctx->ok = ctx->body(ctx->v);
}

/// One full probe of a variant, executed inside a guard trap scope: a
/// kernel that raises SIGILL/SIGSEGV/SIGBUS/SIGFPE during its probe is
/// contained and reported as a failed probe (which the caller turns into
/// a quarantine verdict) instead of killing the process. Counts toward
/// selfchecks_run; the selfcheck.probe fault site forces a plain failure
/// and the guard.trap site a simulated trap. `cause` reports which of the
/// three distinguishable failure modes fired (kInjected for the fault
/// site, kTrap for a contained trap, kMismatch for a divergent result);
/// untouched when the probe passes.
bool run_probe(Variant v, health::Cause* cause) noexcept {
  telemetry::note_selfcheck_run();
  if (SHALOM_FAULT_POINT(fault::Site::kSelfcheckProbe)) {
    *cause = health::Cause::kInjected;
    return false;
  }

  TrapProbeCtx ctx;
  ctx.v = v;
  ctx.body = g_probe_override.load(std::memory_order_relaxed);
  if (ctx.body == nullptr) ctx.body = probe_body;
  ctx.ok = false;

  const guard::TrapOutcome trap =
      guard::run_trapped(run_probe_trampoline, &ctx);
  if (trap.trapped) {
    telemetry::note_kernel_trapped();
    *cause = health::Cause::kTrap;
    char msg[160];
    std::snprintf(msg, sizeof msg,
                  "kernel variant '%s' raised %s inside its trap-contained "
                  "selfcheck probe",
                  variant_name(v), guard::signal_name(trap.signal));
    shalom::detail::set_last_error(SHALOM_ERR_KERNEL_TRAP, msg);
    std::fprintf(stderr, "shalom: selfcheck: %s; quarantining\n", msg);
    return false;
  }
  if (!ctx.ok) *cause = health::Cause::kMismatch;
  return ctx.ok;
}

/// Runs the probe and publishes the verdict. Concurrent first callers may
/// both probe (harmless: probes are pure), but the CAS guarantees exactly
/// one verdict wins and the quarantine counter/diagnostic fire once.
int probe_and_publish(Variant v) noexcept {
  health::Cause cause = health::Cause::kNone;
  const bool ok = run_probe(v, &cause);
  const int verdict = static_cast<int>(ok ? Status::kVerified
                                          : Status::kQuarantined);
  if (!ok)
    g_cause[static_cast<int>(v)].store(static_cast<int>(cause),
                                       std::memory_order_relaxed);
  int expected = static_cast<int>(Status::kUnknown);
  if (g_state[static_cast<int>(v)].compare_exchange_strong(
          expected, verdict, std::memory_order_acq_rel,
          std::memory_order_acquire)) {
    if (!ok) {
      telemetry::note_kernel_quarantined();
      health::report_degraded(health::Component::kKernels, cause);
      std::fprintf(stderr,
                   "shalom: selfcheck: probe failed for kernel variant "
                   "'%s' (cause: %s); quarantined (dispatch re-routes to "
                   "a verified fallback)\n",
                   variant_name(v), health::cause_name(cause));
    }
    return verdict;
  }
  return expected;
}

}  // namespace

const char* variant_name(Variant v) noexcept {
  static constexpr const char* kNames[kVariantCount] = {
      "main.f32.direct-direct", "main.f32.direct-packed",
      "main.f32.packed-direct", "main.f32.packed-packed",
      "main.f32.trans-direct",  "main.f64.direct-direct",
      "main.f64.direct-packed", "main.f64.packed-direct",
      "main.f64.packed-packed", "main.f64.trans-direct",
      "edge.f32.direct-direct", "edge.f32.direct-packed",
      "edge.f32.packed-direct", "edge.f32.packed-packed",
      "edge.f32.trans-direct",  "edge.f64.direct-direct",
      "edge.f64.direct-packed", "edge.f64.packed-direct",
      "edge.f64.packed-packed", "edge.f64.trans-direct",
      "fused-nn.f32",           "fused-nn.f64",
      "fused-nt.f32",           "fused-nt.f64",
      "fused-tn.f32",           "fused-tn.f64",
      "wide.128",               "wide.256",
      "wide.512",
  };
  const int i = static_cast<int>(v);
  return (i >= 0 && i < kVariantCount) ? kNames[i] : "unknown";
}

Status status(Variant v) noexcept {
  return static_cast<Status>(
      g_state[static_cast<int>(v)].load(std::memory_order_acquire));
}

health::Cause quarantine_cause(Variant v) noexcept {
  return static_cast<health::Cause>(
      g_cause[static_cast<int>(v)].load(std::memory_order_relaxed));
}

bool variant_ok(Variant v) noexcept {
  int s = g_state[static_cast<int>(v)].load(std::memory_order_acquire);
  if (s == static_cast<int>(Status::kUnknown)) s = probe_and_publish(v);
  if (s == static_cast<int>(Status::kQuarantined)) {
    // Passive on-path recovery: dispatching a quarantined variant is
    // already the slow path, so it doubles as the probation trigger.
    // try_recover_quarantined() early-outs on one state load until the
    // registry cool-down elapses; when it fires it probes trap-contained
    // and may restore this very variant for the current call.
    if (try_recover_quarantined())
      s = g_state[static_cast<int>(v)].load(std::memory_order_acquire);
  }
  return s == static_cast<int>(Status::kVerified);
}

int run_all() noexcept {
  int quarantined = 0;
  for (int i = 0; i < kVariantCount; ++i)
    if (!variant_ok(static_cast<Variant>(i))) ++quarantined;
  return quarantined;
}

void quarantine(Variant v, health::Cause cause) noexcept {
  // Override whatever verdict stands (including kVerified: the guard rail
  // saw the variant misbehave in production, which outranks its probe).
  // Loop the CAS so a concurrent publisher cannot resurrect the variant;
  // count/diagnose only on the actual transition into quarantine.
  g_cause[static_cast<int>(v)].store(static_cast<int>(cause),
                                     std::memory_order_relaxed);
  std::atomic<int>& slot = g_state[static_cast<int>(v)];
  int prior = slot.load(std::memory_order_acquire);
  while (prior != static_cast<int>(Status::kQuarantined)) {
    if (slot.compare_exchange_weak(prior,
                                   static_cast<int>(Status::kQuarantined),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      telemetry::note_kernel_quarantined();
      health::report_degraded(health::Component::kKernels, cause);
      std::fprintf(stderr,
                   "shalom: guard: kernel variant '%s' quarantined after a "
                   "guard-rail violation (cause: %s; dispatch re-routes to "
                   "a verified fallback)\n",
                   variant_name(v), health::cause_name(cause));
      return;
    }
  }
}

bool try_recover_quarantined() noexcept {
  using health::Cause;
  using health::Component;
  if (health::state(Component::kKernels) == health::State::kHealthy)
    return true;
  if (!health::try_begin_probation(Component::kKernels)) return false;

  const long streak = health::env_probation_n();
  for (int i = 0; i < kVariantCount; ++i) {
    std::atomic<int>& slot = g_state[i];
    if (slot.load(std::memory_order_acquire) !=
        static_cast<int>(Status::kQuarantined))
      continue;
    const Cause cause =
        static_cast<Cause>(g_cause[i].load(std::memory_order_relaxed));
    if (cause != Cause::kMismatch && cause != Cause::kInjected)
      continue;  // trap evidence (or unknown cause): permanent by default
    const Variant v = static_cast<Variant>(i);
    bool clean = true;
    Cause probe_cause = Cause::kNone;
    for (long p = 0; p < streak && clean; ++p) {
      if (health::probe_faulted() || !run_probe(v, &probe_cause))
        clean = false;
    }
    if (!clean) {
      // The re-probe itself failed: keep the quarantine, refresh the
      // cause so diagnostics reflect the latest evidence (a variant that
      // now traps becomes permanent).
      if (probe_cause != Cause::kNone)
        g_cause[i].store(static_cast<int>(probe_cause),
                         std::memory_order_relaxed);
      continue;
    }
    int expected = static_cast<int>(Status::kQuarantined);
    if (slot.compare_exchange_strong(expected,
                                     static_cast<int>(Status::kVerified),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      g_cause[i].store(static_cast<int>(Cause::kNone),
                       std::memory_order_relaxed);
      std::fprintf(stderr,
                   "shalom: selfcheck: kernel variant '%s' restored after "
                   "%ld clean probation probes (was quarantined: %s)\n",
                   variant_name(v), streak, health::cause_name(cause));
    }
  }

  // Component verdict: HEALTHY only when no quarantined variants remain
  // (permanently trap-quarantined variants keep the component degraded,
  // with the exponential backoff capping the residual probe traffic).
  bool none_quarantined = true;
  for (int i = 0; i < kVariantCount; ++i) {
    if (g_state[i].load(std::memory_order_acquire) ==
        static_cast<int>(Status::kQuarantined)) {
      none_quarantined = false;
      break;
    }
  }
  if (none_quarantined) {
    health::probation_succeeded(Component::kKernels);
    return true;
  }
  health::probation_failed(Component::kKernels);
  return false;
}

void set_probe_body_for_testing(bool (*fn)(Variant)) noexcept {
  g_probe_override.store(fn, std::memory_order_relaxed);
}

void reset_for_testing() noexcept {
  for (int i = 0; i < kVariantCount; ++i) {
    g_state[i].store(static_cast<int>(Status::kUnknown),
                     std::memory_order_release);
    g_cause[i].store(static_cast<int>(health::Cause::kNone),
                     std::memory_order_relaxed);
  }
}

namespace {

/// Registers the kernels component's active-recovery hook so
/// shalom_recover_now() and the background Prober drive the same
/// probation sweep the passive variant_ok path uses.
struct KernelHealthHookInit {
  KernelHealthHookInit() noexcept {
    health::set_recover_hook(health::Component::kKernels,
                             &try_recover_quarantined);
  }
} g_kernel_health_hook_init;

/// SHALOM_SELFTEST=1 runs the eager sweep at static-init time, before any
/// GEMM can dispatch an unverified kernel.
struct SelftestEnvInit {
  SelftestEnvInit() noexcept {
    const char* v = env::raw("SHALOM_SELFTEST");
    if (v == nullptr || *v == '\0') return;
    const bool truthy = env_ieq(v, "1") || env_ieq(v, "on") ||
                        env_ieq(v, "yes") || env_ieq(v, "true");
    const bool falsy = env_ieq(v, "0") || env_ieq(v, "off") ||
                       env_ieq(v, "no") || env_ieq(v, "false");
    if (truthy) {
      // Cross-TU static-init order is unspecified: fault.cpp's own
      // SHALOM_FAULT parser may not have run yet, so re-arm here to keep
      // eager selftests deterministic under injection (idempotent).
      if (const char* f = env::raw("SHALOM_FAULT"))
        fault::arm_from_spec(f);
      run_all();
    } else if (!falsy) {
      env::warn_malformed("SHALOM_SELFTEST", v,
                          "0|1|on|off|yes|no|true|false");
    }
  }
} g_selftest_env_init;

}  // namespace

}  // namespace selfcheck

namespace numerics {

Policy env_policy() noexcept {
  static const Policy policy = [] {
    const char* v = env::raw("SHALOM_CHECK_NUMERICS");
    if (v == nullptr || *v == '\0') return Policy::kIgnore;
    if (env_ieq(v, "ignore") || env_ieq(v, "off") || env_ieq(v, "0") ||
        env_ieq(v, "no") || env_ieq(v, "false"))
      return Policy::kIgnore;
    if (env_ieq(v, "count")) return Policy::kCount;
    if (env_ieq(v, "fail") || env_ieq(v, "on") || env_ieq(v, "1") ||
        env_ieq(v, "yes") || env_ieq(v, "true"))
      return Policy::kFail;
    env::warn_malformed("SHALOM_CHECK_NUMERICS", v, "ignore|count|fail");
    return Policy::kIgnore;
  }();
  return policy;
}

}  // namespace numerics
}  // namespace shalom
