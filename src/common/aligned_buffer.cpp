#include "common/aligned_buffer.h"

namespace shalom {

AlignedBuffer& thread_pack_arena() {
  thread_local AlignedBuffer arena;
  return arena;
}

}  // namespace shalom
