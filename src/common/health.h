// Self-healing recovery layer: the component health registry and the
// background probation prober.
//
// PRs 2-8 made every failure mode *degrade* instead of crash: a kernel
// variant that fails its selfcheck is quarantined, a pool whose workers
// cannot spawn narrows, a stream whose submissions keep failing latches
// its circuit breaker into synchronous mode, a plan that cannot be cached
// is rebuilt per call, a tuned table that cannot be read cold-starts.
// Every one of those transitions was one-way: a single transient fault
// (a memory-pressure spike, one wedged round, an injected probe failure)
// left the process serving at scalar/serial speed forever.
//
// This header closes the loop. Each degradable unit is tracked through an
// explicit state machine:
//
//        report_degraded                 cool-down elapsed
//   HEALTHY ----------> DEGRADED ----------------------> PROBATION
//      ^                   ^                                 |
//      |                   | probe failed (backoff doubles)  |
//      |                   +---------------------------------+
//      |                              probe streak clean     |
//      +-----------------------------------------------------+
//                                                            |
//   QUARANTINED <-- report_quarantined (permanent evidence,  v
//                   e.g. a hardware trap; never re-probed    [terminal]
//                   by default)
//
// with per-component *cause* tracking (a 1-ulp mismatch, a contained
// hardware trap, an injected fault, overload) and exponential-backoff
// cool-downs: every failed probation doubles the wait before the next
// probe, so a genuinely broken component converges to near-zero probe
// traffic while a transiently broken one recovers in one cool-down.
//
// Recovery runs on two paths that share this registry:
//   - passive on-path checks: the degraded code paths themselves call
//     try_begin_probation() when they run (a submit on a latched stream,
//     a parallel round on a narrowed pool, a dispatch that would skip a
//     quarantined variant), so recovery needs no extra thread;
//   - the active `Prober` thread (same running -> draining -> joined
//     lifecycle as tuning::Retuner) which ticks recover_now() so idle
//     processes also heal.
//
// Knobs (through the env::get_long warn-once funnel):
//   SHALOM_RECOVERY_MS   base cool-down in ms before the first probation
//                        probe; 0 disables recovery entirely and restores
//                        the pre-recovery permanent-latch behaviour.
//   SHALOM_PROBATION_N   consecutive clean probes required to restore a
//                        component to HEALTHY.
//
// Fault sites `health.probe` / `health.respawn` (common/fault.h) make the
// recovery machinery itself degrade gracefully: an injected probe failure
// re-latches the component with a doubled cool-down, never corrupts it.
#pragma once

#include <cstdint>

namespace shalom {
namespace health {

/// Degradable units the registry tracks. One slot per *component*, not
/// per instance: the 29 kernel variants aggregate into kKernels (their
/// per-variant verdicts live in common/selfcheck.h) and every stream's
/// breaker aggregates into kStreamBreaker (each stream keeps its own
/// half-open bookkeeping in core/engine.h).
enum class Component : int {
  kKernels = 0,        // selfcheck-quarantined micro-kernel variants
  kThreadPool = 1,     // narrowed or watchdog-serialized thread pool
  kStreamBreaker = 2,  // latched stream circuit breakers
  kPlanCache = 3,      // plan-cache bypass (build/insert failures)
  kTunedTable = 4,     // persistent tuned-table load/save failures
};
inline constexpr int kComponentCount = 5;

/// Registry states. kQuarantined is terminal: entering it requires
/// positive evidence of corruption (a contained hardware trap, a canary
/// violation) and the registry never re-probes out of it.
enum class State : int {
  kHealthy = 0,
  kDegraded = 1,
  kProbation = 2,
  kQuarantined = 3,
};

/// Why the component left kHealthy. Retained across probation so a
/// recovered-then-re-degraded component still reports its latest cause.
enum class Cause : int {
  kNone = 0,
  kMismatch = 1,  // selfcheck result diverged from the scalar oracle
  kTrap = 2,      // hardware trap contained by a guard scope
  kInjected = 3,  // fault-injection framework fired the site
  kOverload = 4,  // resource exhaustion (alloc/spawn/queue failures)
};

const char* component_name(Component c) noexcept;
const char* state_name(State s) noexcept;
const char* cause_name(Cause c) noexcept;

/// SHALOM_RECOVERY_MS: base cool-down before the first probation probe,
/// in milliseconds. 0 disables recovery (every degradation latches
/// permanently, the pre-recovery behaviour). Default 250, range
/// [0, 3600000].
long env_recovery_ms() noexcept;

/// SHALOM_PROBATION_N: consecutive clean probes required to restore a
/// component. Default 3, range [1, 64].
long env_probation_n() noexcept;

/// True when recovery is enabled (env_recovery_ms() > 0).
bool recovery_enabled() noexcept;

/// Monotonic milliseconds since an arbitrary process-local epoch; the
/// clock every cool-down deadline in the recovery layer is measured on.
std::uint64_t now_ms() noexcept;

// ---------------------------------------------------------------------------
// Registry transitions (all lock-free; safe from any thread)
// ---------------------------------------------------------------------------

/// Records that a unit of `c` degraded for `cause`. HEALTHY -> DEGRADED
/// (arming the cool-down); a component already in DEGRADED/PROBATION
/// stays where it is (only the cause refreshes); QUARANTINED is sticky.
void report_degraded(Component c, Cause cause) noexcept;

/// Records terminal evidence against `c`: any state -> QUARANTINED.
/// try_begin_probation() never fires for a quarantined component.
void report_quarantined(Component c, Cause cause) noexcept;

/// Records that `c` is serving at full capacity again, regardless of how
/// it got there (a passive path observed success, or a probation streak
/// completed). DEGRADED/PROBATION -> HEALTHY; counts a recovery only
/// when the state actually changed. QUARANTINED is sticky.
void report_recovered(Component c) noexcept;

/// One probation step: if `c` is DEGRADED, recovery is enabled, and the
/// cool-down deadline has passed, atomically moves it to PROBATION and
/// returns true - the caller now owns running the probe and MUST finish
/// with probation_succeeded() or probation_failed(). Returns false in
/// every other case (wrong state, recovery disabled, cool-down pending,
/// lost the race to another prober).
bool try_begin_probation(Component c) noexcept;

/// Ends a probation begun by try_begin_probation(). succeeded: PROBATION
/// -> HEALTHY, cool-down resets to the base, counts a recovery. failed:
/// PROBATION -> DEGRADED, cool-down doubles (capped at 64x base), counts
/// a probation failure.
void probation_succeeded(Component c) noexcept;
void probation_failed(Component c) noexcept;

/// Per-probe bookkeeping every probation probe calls first: counts the
/// probe and evaluates the `health.probe` fault site. Returns true when
/// the injected fault says this probe must report failure (the caller
/// treats it exactly like a genuinely failed probe).
bool probe_faulted() noexcept;

State state(Component c) noexcept;
Cause cause(Component c) noexcept;

/// Full registry row for one component, as surfaced by
/// shalom_health_report().
struct ComponentReport {
  State state = State::kHealthy;
  Cause cause = Cause::kNone;
  /// Current cool-down width in ms (doubles per failed probation).
  std::uint64_t backoff_ms = 0;
  /// Milliseconds until the next probation probe may run (0 when none is
  /// pending - healthy, quarantined, or the deadline already passed).
  std::uint64_t cooldown_remaining_ms = 0;
};
ComponentReport component_report(Component c) noexcept;

/// True when every component is kHealthy.
bool all_healthy() noexcept;

// ---------------------------------------------------------------------------
// Active recovery (the prober tick)
// ---------------------------------------------------------------------------

/// A component's active-recovery hook: attempts one full probation cycle
/// for that component (begin, probe, finish) and returns true when the
/// component ended up HEALTHY. Owners register these at static-init or
/// first-use time (selfcheck for kKernels, the pool registry for
/// kThreadPool); components whose recovery is purely passive (per-stream
/// breakers, the plan cache, the tuned table) register none.
using RecoverHook = bool (*)();
void set_recover_hook(Component c, RecoverHook hook) noexcept;

/// One recovery tick, callable from any thread (this is what
/// shalom_recover_now() and each Prober wakeup run): expires every
/// pending cool-down so the next probation check fires immediately, then
/// invokes each registered hook for components not currently HEALTHY.
/// Returns the number of components whose hook reported full recovery.
int recover_now() noexcept;

/// Expires every DEGRADED component's cool-down (deadline := now) without
/// probing, so the next passive on-path check enters probation at once.
void expire_cooldowns() noexcept;

/// Resets every component to HEALTHY/kNone with base cool-downs.
/// Registered hooks survive (they are process-wide wiring, not state).
/// Test-only; not thread-safe against concurrent transitions.
void reset_for_testing() noexcept;

// ---------------------------------------------------------------------------
// Prober: bounded, abortable background recovery thread
// ---------------------------------------------------------------------------

struct ProberOptions {
  /// Wakeup period in ms; <= 0 derives it from env_recovery_ms() (never
  /// below 10 ms, so a tiny SHALOM_RECOVERY_MS cannot spin the thread).
  long period_ms = 0;
};

/// Background recovery driver with the same running -> draining -> joined
/// lifecycle as tuning::Retuner: start() spawns the worker, stop() drains
/// and joins it (the destructor stops too), kick() forces an immediate
/// tick. Every tick runs recover_now(). The prober is an accelerator,
/// never a requirement - with it off, the passive on-path checks still
/// recover every component.
class Prober {
 public:
  explicit Prober(ProberOptions opt = {});
  ~Prober();

  Prober(const Prober&) = delete;
  Prober& operator=(const Prober&) = delete;

  /// Spawns the prober thread. False if already running or the spawn
  /// failed (the prober stays idle; passive recovery is unaffected).
  bool start() noexcept;

  /// Drains and joins the prober thread. Safe to call when idle.
  void stop() noexcept;

  bool running() const noexcept;

  /// Completed recovery ticks.
  std::uint64_t ticks() const noexcept;

  /// Wakes the prober for an immediate tick (no-op when idle).
  void kick() noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace health
}  // namespace shalom
