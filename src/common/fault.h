// Deterministic fault injection and degradation telemetry.
//
// Production resilience work needs two things the normal test suite cannot
// provide: a way to *cause* rare resource failures on demand (allocation
// failure, worker-spawn failure, cache insertion failure) and a way to
// *observe* that the library degraded gracefully instead of falling over.
//
// Fault sites are named checkpoints compiled into the resource-acquisition
// paths. Each site costs exactly one relaxed atomic load when disarmed
// (and nothing at all when SHALOM_FAULT_INJECTION is compiled out, see the
// SHALOM_FAULT_POINT macro below). A site fires according to a trigger
// armed either programmatically (the C++ test API here) or through the
// SHALOM_FAULT environment variable:
//
//   SHALOM_FAULT=<site>:<spec>[,<site>:<spec>...]
//   spec := once | every-<N> | fail-after-<N>
//
//   once          the next check fails, then the site disarms itself
//   every-N       every Nth check fails (every-1 = always fail)
//   fail-after-N  the first N checks succeed, every later one fails
//
// Sites (the degradation each one exercises is listed in DESIGN.md):
//   alloc.pack_arena     pack-arena reservation at execution time
//   alloc.plan           materializing a cacheable plan (PlanCache build)
//   threadpool.spawn     spawning one pool worker thread
//   plan_cache.insert    inserting a plan into the LRU cache
//   selfcheck.probe      one micro-kernel selfcheck probe (common/selfcheck.h);
//                        an injected failure quarantines the probed variant
//   guard.trap           a guard trap scope (common/guard.h); an injected
//                        failure reports the scoped call as trapped (simulated
//                        SIGILL) without running it
//   threadpool.heartbeat a pool worker at round pickup; an injected failure
//                        wedges the worker (it parks until pool shutdown),
//                        which is what the watchdog must recover from
//   guard.canary         the post-execution arena canary verification; an
//                        injected failure reports the canaries as violated
//   threadpool.steal     one steal attempt against one victim deque; an
//                        injected failure skips that victim (the thief falls
//                        through to the injection list or parks), degrading
//                        load balance but never correctness
//   submit.queue         enqueueing one async GEMM request into a stream
//                        (core/engine.h); an injected failure rejects the
//                        submission with std::bad_alloc before anything is
//                        queued, so the stream state is unchanged (the
//                        submit path retries with exponential backoff
//                        before surfacing the failure)
//   engine.deadline      the drainer's per-request deadline sweep; an
//                        injected failure expires the swept request as if
//                        its deadline had passed, resolving its ticket
//                        with SHALOM_ERR_TIMEOUT before gemm_batch runs
//   engine.shed          stream admission control; an injected failure
//                        sheds the incoming submission (rejected_error →
//                        SHALOM_ERR_REJECTED) regardless of queue depth
//                        or overload policy, so shed handling is testable
//                        without filling the queue
//   table.open           opening the tuned-table file (tuning/table.h),
//                        either side (load or the temp file of a save); an
//                        injected failure reports the open as failed, so
//                        load degrades to a cold start and save fails with
//                        the previous table untouched
//   table.read           one checked fread from the tuned-table file; an
//                        injected failure truncates the load at that point
//                        (cold start, table_load_failures)
//   table.write          one checked fwrite to the temp file of an atomic
//                        save; an injected failure aborts the save before
//                        the rename, leaving the previous table intact
//   table.rename         the rename(tmp, final) commit step of a save; an
//                        injected failure discards the temp file - the
//                        previous table stays byte-identical
//   table.fsync          the fsync barrier before the commit rename; an
//                        injected failure aborts the save (a table that
//                        might not be durable is never renamed in)
//   health.probe         one recovery probation probe (common/health.h);
//                        an injected failure makes the probe report the
//                        component as still unhealthy, so the probation
//                        streak resets and the cool-down doubles - the
//                        component stays degraded, never corrupts
//   health.respawn       a degraded thread pool's worker re-spawn attempt
//                        during recovery; an injected failure keeps the
//                        pool at its narrowed width until the next
//                        cool-down elapses (recovery itself degrades
//                        gracefully back to the latched state)
//
// The telemetry half (RobustnessStats) is always compiled: the degradation
// paths are real production behaviour - injection is only one way to reach
// them - so the counters must exist even in injection-free builds.
#pragma once

#include <atomic>
#include <cstdint>

#ifndef SHALOM_FAULT_INJECTION
#define SHALOM_FAULT_INJECTION 0
#endif

namespace shalom {

// ---------------------------------------------------------------------------
// Degradation telemetry (always compiled)
// ---------------------------------------------------------------------------

/// Process-wide counters of graceful-degradation events. Monotonic since
/// process start (or the last robustness_stats_reset()); reads are relaxed
/// snapshots, safe from any thread.
struct RobustnessStats {
  /// Executions that ran the no-pack fallback loop because the pack arena
  /// could not be reserved.
  std::uint64_t fallback_nopack = 0;
  /// Fork-join rounds that ran with fewer workers than the plan wanted
  /// (down to fully serial) because the pool could not grow.
  std::uint64_t threads_degraded = 0;
  /// GEMM calls that executed without plan-cache backing because building
  /// or inserting the cacheable plan failed.
  std::uint64_t plan_cache_bypassed = 0;
  /// Faults fired by the injection framework (0 in production builds).
  std::uint64_t faults_injected = 0;
  /// Micro-kernel variants quarantined after failing their selfcheck
  /// probe: dispatch routes around them permanently (common/selfcheck.h).
  std::uint64_t kernels_quarantined = 0;
  /// Selfcheck probes executed (lazy first-dispatch probes plus eager
  /// shalom_selftest() / SHALOM_SELFTEST=1 sweeps).
  std::uint64_t selfchecks_run = 0;
  /// NaN/Inf anomalies observed by the opt-in numerical guard
  /// (Config::check_numerics with policy kCount or kFail); one count per
  /// scan that found a non-finite value.
  std::uint64_t numeric_anomalies = 0;
  /// Hardware traps (SIGILL/SIGSEGV/SIGBUS/SIGFPE) contained by a guard
  /// trap scope (common/guard.h), one per trapped probe. Every trap also
  /// quarantines the variant, so kernels_quarantined moves with it.
  std::uint64_t kernels_trapped = 0;
  /// Thread-pool watchdog trips: parallel_for rounds whose workers made no
  /// heartbeat progress for Config::watchdog_ms, recovered by the round
  /// leader running the unclaimed tasks serially (core/threadpool.h).
  std::uint64_t watchdog_trips = 0;
  /// Guarded pack-arena canary violations detected after kernel execution
  /// (SHALOM_GUARD=canary|poison); each one quarantines the dispatched
  /// variant and fails the call with SHALOM_ERR_CORRUPTION.
  std::uint64_t arena_corruptions = 0;
  /// High-water mark of any stream's submission-queue depth (CAS-max over
  /// every depth observed at admission time; reset rebases to 0).
  std::uint64_t stream_queue_peak = 0;
  /// Submissions shed by admission control: queue-at-capacity under a
  /// shed-* policy, the engine.shed fault site, or submit on a
  /// draining/closed stream (each resolves as SHALOM_ERR_REJECTED).
  std::uint64_t requests_shed = 0;
  /// Queued requests whose deadline expired before execution plus
  /// block-policy submits that timed out waiting for queue space (each
  /// resolves as SHALOM_ERR_TIMEOUT).
  std::uint64_t requests_expired = 0;
  /// Queued requests cancelled via shalom_future_cancel before the
  /// drainer claimed them (each resolves as SHALOM_ERR_REJECTED).
  std::uint64_t requests_cancelled = 0;
  /// Transient-failure retries spent by the submit/spawn/batch
  /// retry-with-backoff loops (one count per backoff sleep).
  std::uint64_t submit_retries = 0;
  /// Circuit-breaker trips: streams latched into synchronous-degraded
  /// mode after N consecutive retry-exhausted failures.
  std::uint64_t breaker_trips = 0;
  /// Tuned-table records skipped during a load because their checksum,
  /// dtype/trans flags, dimensions, or blocking failed validation against
  /// the kernel contracts (tuning/table.h); rejected records never reach
  /// the plan cache.
  std::uint64_t table_records_rejected = 0;
  /// Tuned-table operations that failed as a whole: unreadable/corrupt/
  /// version-skewed/fingerprint-skewed files at load (degrades to a cold
  /// start) and aborted atomic saves (previous table left intact).
  std::uint64_t table_load_failures = 0;
  /// Degraded components restored to full service by the recovery layer
  /// (common/health.h): an un-quarantined kernel variant, a re-expanded
  /// thread pool, or a circuit breaker closed after a clean half-open
  /// trial streak.
  std::uint64_t recoveries = 0;
  /// Probation probes attempted by the recovery layer (active Prober
  /// ticks plus passive on-path cool-down checks), successful or not.
  std::uint64_t probation_probes = 0;
  /// Probation probes that failed: the component re-latches into its
  /// degraded state and its recovery cool-down doubles.
  std::uint64_t probation_failures = 0;
  /// Latched circuit breakers that entered the half-open trial state
  /// after their cool-down elapsed (core/engine.h); each trial streak
  /// ends in either a recovery or a probation failure.
  std::uint64_t breaker_half_opens = 0;
};

RobustnessStats robustness_stats() noexcept;
void robustness_stats_reset() noexcept;

namespace telemetry {
void note_fallback_nopack() noexcept;
void note_threads_degraded() noexcept;
void note_plan_cache_bypassed() noexcept;
void note_kernel_quarantined() noexcept;
void note_selfcheck_run() noexcept;
void note_numeric_anomaly() noexcept;
void note_kernel_trapped() noexcept;
void note_watchdog_trip() noexcept;
void note_arena_corruption() noexcept;
/// CAS-max: records `depth` as the new stream_queue_peak if it exceeds
/// the current peak (relaxed; a lost race only undercounts by one
/// concurrent observation and the next deeper queue restores it).
void note_queue_depth(std::uint64_t depth) noexcept;
void note_request_shed() noexcept;
void note_request_expired() noexcept;
void note_request_cancelled() noexcept;
void note_submit_retry() noexcept;
void note_breaker_trip() noexcept;
void note_table_record_rejected() noexcept;
void note_table_load_failure() noexcept;
void note_recovery() noexcept;
void note_probation_probe() noexcept;
void note_probation_failure() noexcept;
void note_breaker_half_open() noexcept;
}  // namespace telemetry

// ---------------------------------------------------------------------------
// Fault-injection framework
// ---------------------------------------------------------------------------

namespace fault {

/// Named fault sites. Order is the wire format of the site table; append
/// only.
enum class Site : int {
  kAllocPackArena = 0,
  kAllocPlan = 1,
  kThreadpoolSpawn = 2,
  kPlanCacheInsert = 3,
  kSelfcheckProbe = 4,
  kGuardTrap = 5,
  kThreadpoolHeartbeat = 6,
  kGuardCanary = 7,
  kThreadpoolSteal = 8,
  kSubmitQueue = 9,
  kEngineDeadline = 10,
  kEngineShed = 11,
  kTableOpen = 12,
  kTableRead = 13,
  kTableWrite = 14,
  kTableRename = 15,
  kTableFsync = 16,
  kHealthProbe = 17,
  kHealthRespawn = 18,
};
inline constexpr int kSiteCount = 19;

/// Trigger modes (see the header comment for semantics).
enum class Mode : std::uint32_t {
  kDisarmed = 0,
  kOnce = 1,
  kEveryN = 2,
  kFailAfter = 3,
};

namespace detail {

/// One armed trigger. All fields are atomics so arm/disarm/check need no
/// lock; `armed` doubles as the fast-path gate (0 = disarmed). Being
/// lock-free, this state sits outside the thread-safety-analysis
/// capabilities (common/thread_annotations.h); its discipline is the
/// explicit-memory-order rule tools/shalom_lint enforces: relaxed
/// everywhere (the counters are statistics and the trigger decision
/// tolerates races by design), with the kOnce CAS in should_fail_slow the
/// single ordering-sensitive exception.
struct SiteState {
  std::atomic<std::uint32_t> armed{0};  // Mode as integer
  std::atomic<std::uint64_t> param{0};  // N of every-N / fail-after-N
  std::atomic<std::uint64_t> calls{0};  // checks since arming
  std::atomic<std::uint64_t> injected{0};
};

extern SiteState g_sites[kSiteCount];

/// Full trigger evaluation; only reached when the site is armed.
bool should_fail_slow(SiteState& st) noexcept;

}  // namespace detail

const char* site_name(Site site) noexcept;

/// Arms `site`: the next checks fail per `mode`/`n`. Resets the site's
/// call counter; the injected counter keeps accumulating.
void arm(Site site, Mode mode, std::uint64_t n = 0) noexcept;
void disarm(Site site) noexcept;
void disarm_all() noexcept;
bool armed(Site site) noexcept;

/// Faults fired at `site` since process start.
std::uint64_t injected(Site site) noexcept;

/// Parses one SHALOM_FAULT-style spec ("site:mode[,site:mode...]") and
/// arms the named sites. Returns false if any entry is malformed (valid
/// entries before it are still armed).
bool arm_from_spec(const char* spec) noexcept;

/// The per-site check. Call through SHALOM_FAULT_POINT so disabled builds
/// compile the site away entirely.
inline bool should_fail(Site site) noexcept {
  detail::SiteState& st = detail::g_sites[static_cast<int>(site)];
  if (st.armed.load(std::memory_order_relaxed) == 0) return false;
  return detail::should_fail_slow(st);
}

}  // namespace fault
}  // namespace shalom

/// Fault checkpoint: true when the armed trigger says this acquisition
/// must fail. Compiles to `false` (zero overhead, dead-code eliminated)
/// when SHALOM_FAULT_INJECTION is off; one relaxed atomic load per check
/// when on but disarmed.
#if SHALOM_FAULT_INJECTION
#define SHALOM_FAULT_POINT(site) (::shalom::fault::should_fail(site))
#else
#define SHALOM_FAULT_POINT(site) false
#endif
