// Hardened-execution guard rails: trap containment, watchdog arming, and
// guarded (canary/poison) arena modes.
//
// The micro-kernels run at the edge of what the hardware allows, which is
// exactly where a miscompiled SIMD variant or an unsupported ISA extension
// turns into a process-killing SIGILL/SIGSEGV instead of a recoverable
// error. This module supplies the runtime half of the robustness story:
//
//  * Trap scopes (run_trapped): run a function under sigsetjmp-based
//    containment of SIGILL/SIGSEGV/SIGBUS/SIGFPE. A trap unwinds back to
//    the scope instead of killing the process; the selfcheck probes
//    (common/selfcheck.cpp) use this so a crashing kernel variant becomes
//    a quarantine verdict (SHALOM_ERR_KERNEL_TRAP + kernels_trapped).
//  * Arena guard modes (SHALOM_GUARD=off|canary|poison): opt-in canary
//    bracketing of every AlignedBuffer allocation, verified after kernel
//    execution (core/plan.cpp); a violation quarantines the dispatched
//    variant and raises SHALOM_ERR_CORRUPTION.
//  * Watchdog configuration (SHALOM_WATCHDOG_MS): the thread-pool stall
//    monitor's default arming period (core/threadpool.h).
//
// Layering: lives in shalom_common (no core/ includes) so selfcheck.cpp
// and aligned_buffer.h can use it; core/ links on top.
#pragma once

#include <cstddef>

namespace shalom {
namespace guard {

// ---------------------------------------------------------------------------
// Trap containment
// ---------------------------------------------------------------------------

/// True when run_trapped() actually contains traps on this build. False on
/// non-POSIX targets and under sanitizers (their own signal machinery
/// conflicts with ours; CMake defines SHALOM_GUARD_NO_TRAPS for every
/// SHALOM_SANITIZE configuration) - run_trapped() then calls through
/// without containment and a real trap kills the process as before.
bool traps_supported() noexcept;

/// Outcome of one trap-scoped call.
struct TrapOutcome {
  bool trapped = false;  ///< fn raised SIGILL/SIGSEGV/SIGBUS/SIGFPE
  int signal = 0;        ///< the raising signal number (0 when !trapped)
};

/// Runs fn(ctx) inside a trap scope: SIGILL/SIGSEGV/SIGBUS/SIGFPE raised
/// on THIS thread while fn runs siglongjmps back here and is reported as
/// TrapOutcome{true, sig} instead of killing the process. Prior sigaction
/// dispositions are saved before fn and restored after, and scopes are
/// serialized process-wide (probes are rare, cold-path events). A trap on
/// another thread during the scope re-raises with the default disposition,
/// dying exactly as it would without the guard. fn must not throw.
///
/// CAUTION: a trapped fn does not unwind - destructors of fn's locals do
/// not run and any state it was mutating is abandoned half-written. Only
/// run self-contained code (probes over local buffers) under a scope.
///
/// The fault site guard.trap deterministically simulates a trap (fn is
/// not called; the outcome reports SIGILL).
TrapOutcome run_trapped(void (*fn)(void*), void* ctx) noexcept;

/// "SIGILL" / "SIGSEGV" / "SIGBUS" / "SIGFPE" / "signal" for diagnostics.
const char* signal_name(int sig) noexcept;

// ---------------------------------------------------------------------------
// Guarded arena modes (SHALOM_GUARD)
// ---------------------------------------------------------------------------

/// What AlignedBuffer brackets its allocations with (see aligned_buffer.h).
enum class ArenaMode : int {
  kOff = 0,     ///< no guard zones (the default; zero overhead)
  kCanary = 1,  ///< 64-byte canary zones before and after the storage
  kPoison = 2,  ///< canary zones + poison pre-fill of the storage itself
};

/// Arena guard mode from SHALOM_GUARD=off|canary|poison (parsed once;
/// malformed values warn and fall back to kOff), unless overridden by
/// set_arena_mode_for_testing. Buffers snapshot the mode at allocation
/// time, so a test override only affects allocations made after it.
ArenaMode arena_mode() noexcept;

/// Overrides arena_mode() for this process. Test-only.
void set_arena_mode_for_testing(ArenaMode mode) noexcept;

/// Drops any set_arena_mode_for_testing override so arena_mode() follows
/// SHALOM_GUARD again. Test-only (fixture teardown).
void clear_arena_mode_for_testing() noexcept;

/// Guard-zone geometry and fill patterns. The zones are one cache line
/// each so the guarded storage keeps its 64-byte alignment.
inline constexpr std::size_t kGuardZoneBytes = 64;
inline constexpr unsigned char kCanaryByte = 0xA5;
inline constexpr unsigned char kPoisonByte = 0xCD;

// ---------------------------------------------------------------------------
// Watchdog configuration (SHALOM_WATCHDOG_MS)
// ---------------------------------------------------------------------------

/// Default watchdog period in milliseconds from SHALOM_WATCHDOG_MS (0 =
/// watchdog disabled, the default; parsed once), unless overridden by
/// set_watchdog_ms_for_testing. This seeds Config::watchdog_ms and is the
/// fallback for pool_run callers that carry no Config.
int env_watchdog_ms() noexcept;

/// Overrides env_watchdog_ms() for this process. Test-only.
void set_watchdog_ms_for_testing(int ms) noexcept;

}  // namespace guard
}  // namespace shalom
