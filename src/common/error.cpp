#include "common/error.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/thread_annotations.h"

namespace shalom {

const char* status_string(int code) noexcept {
  switch (code) {
    case SHALOM_OK:
      return "success";
    case SHALOM_ERR_BAD_FLAG:
      return "unknown dtype or transpose flag";
    case SHALOM_ERR_INVALID_ARGUMENT:
      return "invalid argument (bad dimensions, strides, or size overflow)";
    case SHALOM_ERR_NULL_POINTER:
      return "null handle or pointer";
    case SHALOM_ERR_DTYPE_MISMATCH:
      return "plan dtype does not match execute entry point";
    case SHALOM_ERR_ALLOC:
      return "allocation failure";
    case SHALOM_ERR_INTERNAL:
      return "unexpected internal error";
    case SHALOM_ERR_NUMERIC:
      return "non-finite value (NaN/Inf) caught by the numerical guard";
    case SHALOM_ERR_KERNEL_TRAP:
      return "kernel crashed (SIGILL/SIGSEGV/SIGBUS/SIGFPE) inside a "
             "trap-contained probe";
    case SHALOM_ERR_CORRUPTION:
      return "guarded pack-arena canary violated after kernel execution";
    case SHALOM_ERR_REJECTED:
      return "request shed by admission control or cancelled before "
             "execution";
    case SHALOM_ERR_TIMEOUT:
      return "deadline expired before completion";
    case SHALOM_DEGRADED:
      return "completed with correct results on a degraded (synchronous) "
             "path";
    case SHALOM_ERR_TABLE:
      return "persistent tuned-table operation failed (corrupt, skewed, or "
             "unwritable table file); degraded to a cold start";
    default:
      return "unknown status code";
  }
}

namespace detail {

namespace {
// Fixed-size slot: recording an error must never allocate (the error being
// recorded may itself be an allocation failure).
constexpr std::size_t kLastErrorCapacity = 512;
thread_local char t_last_error_message[kLastErrorCapacity] = {0};
thread_local int t_last_error_code = SHALOM_OK;
}  // namespace

void set_last_error(int code, const char* message) noexcept {
  t_last_error_code = code;
  if (message == nullptr) message = status_string(code);
  std::snprintf(t_last_error_message, kLastErrorCapacity, "%s", message);
}

void clear_last_error() noexcept {
  t_last_error_code = SHALOM_OK;
  t_last_error_message[0] = '\0';
}

const char* last_error_message() noexcept { return t_last_error_message; }

int last_error_code() noexcept { return t_last_error_code; }

}  // namespace detail

namespace env {

namespace {

// One-time-warning registry. Names are expected to be string literals
// (the call sites all pass "SHALOM_..."), so pointer + strcmp dedup over
// a small fixed table is enough and keeps this path allocation-free.
constexpr int kMaxWarnedNames = 16;
Mutex g_warned_mutex;
const char* g_warned_names[kMaxWarnedNames] SHALOM_GUARDED_BY(
    g_warned_mutex) = {};
int g_warned_count SHALOM_GUARDED_BY(g_warned_mutex) = 0;

/// Returns true exactly once per distinct name (and unconditionally if
/// the table overflows - warning twice beats suppressing a new name).
bool first_warning_for(const char* name) noexcept {
  try {
    MutexLock lock(g_warned_mutex);
    for (int i = 0; i < g_warned_count; ++i)
      if (std::strcmp(g_warned_names[i], name) == 0) return false;
    if (g_warned_count < kMaxWarnedNames)
      g_warned_names[g_warned_count++] = name;
    return true;
  } catch (...) {
    return true;
  }
}

}  // namespace

void warn_malformed(const char* name, const char* value,
                    const char* expected) noexcept {
  if (!first_warning_for(name)) return;
  std::fprintf(stderr,
               "shalom: ignoring malformed %s=\"%s\" (expected %s); "
               "using the documented default\n",
               name, value != nullptr ? value : "", expected);
}

const char* raw(const char* name) noexcept { return std::getenv(name); }

long get_long(const char* name, long fallback, long lo, long hi) noexcept {
  const char* value = raw(name);
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < lo ||
      parsed > hi) {
    char expected[96];
    std::snprintf(expected, sizeof expected, "an integer in [%ld, %ld]", lo,
                  hi);
    warn_malformed(name, value, expected);
    return fallback;
  }
  return parsed;
}

int get_enum(const char* name, int fallback, const char* const* names,
             int count) noexcept {
  const char* value = raw(name);
  if (value == nullptr || *value == '\0') return fallback;
  for (int i = 0; i < count; ++i)
    if (std::strcmp(value, names[i]) == 0) return i;
  // Build "one of a|b|c" in fixed storage: this path must not allocate
  // (same discipline as the rest of the error machinery).
  char expected[96];
  std::size_t at = 0;
  const char* prefix = "one of ";
  for (std::size_t i = 0; prefix[i] != '\0' && at + 1 < sizeof expected; ++i)
    expected[at++] = prefix[i];
  for (int i = 0; i < count; ++i) {
    if (i > 0 && at + 1 < sizeof expected) expected[at++] = '|';
    for (const char* p = names[i]; *p != '\0' && at + 1 < sizeof expected;
         ++p)
      expected[at++] = *p;
  }
  expected[at] = '\0';
  warn_malformed(name, value, expected);
  return fallback;
}

}  // namespace env
}  // namespace shalom
