#include "common/error.h"

#include <cstdio>
#include <cstring>

namespace shalom {

const char* status_string(int code) noexcept {
  switch (code) {
    case SHALOM_OK:
      return "success";
    case SHALOM_ERR_BAD_FLAG:
      return "unknown dtype or transpose flag";
    case SHALOM_ERR_INVALID_ARGUMENT:
      return "invalid argument (bad dimensions, strides, or size overflow)";
    case SHALOM_ERR_NULL_POINTER:
      return "null handle or pointer";
    case SHALOM_ERR_DTYPE_MISMATCH:
      return "plan dtype does not match execute entry point";
    case SHALOM_ERR_ALLOC:
      return "allocation failure";
    case SHALOM_ERR_INTERNAL:
      return "unexpected internal error";
    default:
      return "unknown status code";
  }
}

namespace detail {

namespace {
// Fixed-size slot: recording an error must never allocate (the error being
// recorded may itself be an allocation failure).
constexpr std::size_t kLastErrorCapacity = 512;
thread_local char t_last_error_message[kLastErrorCapacity] = {0};
thread_local int t_last_error_code = SHALOM_OK;
}  // namespace

void set_last_error(int code, const char* message) noexcept {
  t_last_error_code = code;
  if (message == nullptr) message = status_string(code);
  std::snprintf(t_last_error_message, kLastErrorCapacity, "%s", message);
}

void clear_last_error() noexcept {
  t_last_error_code = SHALOM_OK;
  t_last_error_message[0] = '\0';
}

const char* last_error_message() noexcept { return t_last_error_message; }

int last_error_code() noexcept { return t_last_error_code; }

}  // namespace detail
}  // namespace shalom
