// Runtime kernel self-verification, quarantine state, and the opt-in
// numerical guard.
//
// The dispatch layer multiplies kernel variants aggressively (main tile,
// 83 FP32 edge instantiations, fused pack-and-compute NN/NT/TN paths,
// wide-vector tiles), and a single miscompiled or misdispatched variant
// produces silent numeric corruption rather than an error. This module
// closes that hole: every variant family can be probed against the scalar
// reference on small deterministic inputs, and a variant that fails its
// probe is *quarantined* - dispatch and plan building permanently route
// around it to the next-best verified kernel (ultimately scalar).
//
// Probing is lazy by default (first dispatch of a variant pays one probe,
// cached in a per-variant atomic tri-state) or eager via run_all() /
// shalom_selftest() / SHALOM_SELFTEST=1. Probes are observable through
// RobustnessStats (selfchecks_run, kernels_quarantined) and injectable
// through fault::Site::kSelfcheckProbe, which is how the test suite forces
// quarantine and proves the re-routing is bitwise-safe.
//
// This header is deliberately lightweight (no core/ includes): core
// headers include it to consult quarantine state inside dispatch.
#pragma once

#include <cmath>

#include "common/health.h"
#include "common/matrix.h"

namespace shalom {

namespace selfcheck {

/// Every probe-able kernel family. One entry is one quarantine unit: a
/// probe failure disables the whole family (e.g. all FP32 packed-packed
/// edge instantiations), which is the granularity dispatch can route
/// around. Order is load-bearing: edge variant = main variant +
/// kMainFamilyCount, and the g_state table in selfcheck.cpp is indexed by
/// the enum value. Append only.
enum class Variant : int {
  // Main (mr x nr full-tile) kernels, by (A access, B access).
  kMainF32DirectDirect = 0,
  kMainF32DirectPacked = 1,
  kMainF32PackedDirect = 2,
  kMainF32PackedPacked = 3,
  kMainF32TransDirect = 4,  // covers both B accesses of the trans-A path
  kMainF64DirectDirect = 5,
  kMainF64DirectPacked = 6,
  kMainF64PackedDirect = 7,
  kMainF64PackedPacked = 8,
  kMainF64TransDirect = 9,
  // Edge (remainder-tile) instantiations of the same families.
  kEdgeF32DirectDirect = 10,
  kEdgeF32DirectPacked = 11,
  kEdgeF32PackedDirect = 12,
  kEdgeF32PackedPacked = 13,
  kEdgeF32TransDirect = 14,
  kEdgeF64DirectDirect = 15,
  kEdgeF64DirectPacked = 16,
  kEdgeF64PackedDirect = 17,
  kEdgeF64PackedPacked = 18,
  kEdgeF64TransDirect = 19,
  // Fused pack-and-compute kernels (paper Section 5.3).
  kFusedNnF32 = 20,
  kFusedNnF64 = 21,
  kFusedNtF32 = 22,
  kFusedNtF64 = 23,
  kFusedTnF32 = 24,
  kFusedTnF64 = 25,
  // Wide-vector tiles (paper Section 5.5; simd/vecwide.h).
  kWide128 = 26,
  kWide256 = 27,
  kWide512 = 28,
};

inline constexpr int kVariantCount = 29;
/// Distance from a main-family variant to its edge-family sibling.
inline constexpr int kMainFamilyCount = 10;

/// Per-variant verification state. kUnknown means the variant has never
/// been probed; the first variant_ok() / run_all() that reaches it decides
/// the verdict. A quarantine verdict is permanent when recovery is
/// disabled (SHALOM_RECOVERY_MS=0) or the cause is a contained hardware
/// trap; otherwise the recovery layer (common/health.h) may re-probe the
/// variant after its cool-down and restore it on a clean probe streak.
enum class Status : int {
  kUnknown = 0,
  kVerified = 1,
  kQuarantined = 2,
};

/// Stable human-readable name ("main.f32.packed-packed", "wide.256", ...);
/// never NULL.
const char* variant_name(Variant v) noexcept;

/// Current state without triggering a probe.
Status status(Variant v) noexcept;

/// Why `v` is (or was last) quarantined: health::Cause::kMismatch for a
/// probe result that diverged from the scalar oracle, kTrap for a
/// contained hardware trap or guard-rail violation, kInjected for a
/// fault-site firing, kNone for a variant never quarantined. Makes a
/// trapped kernel and a 1-ulp mismatch distinguishable after the fact
/// (and decides recoverability: trap-cause quarantines are permanent).
health::Cause quarantine_cause(Variant v) noexcept;

/// True when the variant may be dispatched. Probes lazily on the first
/// call per variant (thread-safe: concurrent first calls may both probe,
/// but exactly one verdict is published). A quarantined variant stays
/// quarantined; callers must route to a verified fallback.
bool variant_ok(Variant v) noexcept;

/// Eagerly probes every variant (the shalom_selftest() backend). Returns
/// the number of variants in the quarantined state afterwards. Idempotent:
/// already-decided variants are not re-probed.
int run_all() noexcept;

/// Forces `v` into the quarantined state regardless of any earlier
/// verdict. This is the guard-rail entry point: when post-execution
/// evidence proves a variant misbehaved (a trapped kernel, a violated
/// arena canary - see common/guard.h), the probe verdict is overridden
/// and dispatch permanently routes around the variant. Idempotent; the
/// quarantine counter and diagnostic fire only on the transition. The
/// default cause (kTrap: positive corruption evidence) marks the
/// quarantine permanent; pass a recoverable cause only when the evidence
/// is a probe-style failure.
void quarantine(Variant v,
                health::Cause cause = health::Cause::kTrap) noexcept;

/// One active recovery pass over the quarantined variants (the
/// health-registry hook for health::Component::kKernels, also reachable
/// through shalom_recover_now / the background Prober, and invoked
/// passively from variant_ok on quarantined variants once the cool-down
/// elapses). Re-probes every variant whose quarantine cause is
/// recoverable (mismatch/injected - never trap) trap-contained via
/// guard::run_trapped; SHALOM_PROBATION_N consecutive clean probes
/// restore a variant to kVerified. Returns true when the kernels
/// component ends the pass HEALTHY. No-op returning false while the
/// registry cool-down is still pending or recovery is disabled.
bool try_recover_quarantined() noexcept;

/// Replaces the probe implementation for every subsequent probe (nullptr
/// restores the real probes). Test-only: lets the suite register a
/// deliberately crashing "kernel" so trap containment is exercised with a
/// real hardware trap, not just the fault site.
void set_probe_body_for_testing(bool (*fn)(Variant)) noexcept;

/// Clears all verdicts back to kUnknown. Test-only: production code must
/// treat quarantine as permanent. Callers owning cached plans must also
/// invalidate them (plans snapshot quarantine decisions at build time).
void reset_for_testing() noexcept;

/// Maps a wide-vector width in bits to its variant id.
constexpr Variant wide_variant(int bits) {
  return bits == 512   ? Variant::kWide512
         : bits == 256 ? Variant::kWide256
                       : Variant::kWide128;
}

}  // namespace selfcheck

namespace numerics {

/// What the numerical guard does when it finds a NaN/Inf (see
/// Config::check_numerics and SHALOM_CHECK_NUMERICS).
enum class Policy : int {
  kIgnore = 0,  ///< guard disabled (the default; zero overhead)
  kCount = 1,   ///< bump RobustnessStats::numeric_anomalies, continue
  kFail = 2,    ///< throw shalom::numeric_error (C API: SHALOM_ERR_NUMERIC)
};

/// Policy from SHALOM_CHECK_NUMERICS (ignore|count|fail, parsed once;
/// malformed values warn and fall back to kIgnore). This is the default
/// value of Config::check_numerics.
Policy env_policy() noexcept;

/// Sampled non-finite scan of a rows x cols row-major block with leading
/// dimension ld. Scans everything up to 4096 elements, then a strided
/// sample (always including the last element) so huge operands stay cheap.
template <typename T>
bool has_nonfinite(const T* p, index_t rows, index_t cols,
                   index_t ld) noexcept {
  if (p == nullptr || rows <= 0 || cols <= 0) return false;
  const index_t total = rows * cols;
  constexpr index_t kSampleCap = 4096;
  const index_t step = total > kSampleCap ? (total + kSampleCap - 1) / kSampleCap : 1;
  for (index_t idx = 0; idx < total; idx += step) {
    const T v = p[(idx / cols) * ld + idx % cols];
    if (!std::isfinite(static_cast<double>(v))) return true;
  }
  const T last = p[(rows - 1) * ld + (cols - 1)];
  return !std::isfinite(static_cast<double>(last));
}

}  // namespace numerics
}  // namespace shalom
