// Calibrated peak-FLOPS measurement.
//
// The paper normalizes to "theoretical peak FLOPS" (Table 1). On the
// reproduction host the nominal frequency is unreliable (containers,
// turbo), so the motivation bench instead calibrates the achievable FMA
// throughput of one core by timing a register-resident chain of
// independent vector FMAs - the same quantity freq * pipes * lanes * 2
// measures on paper.
#pragma once

namespace shalom::bench {

/// Peak single-core GFLOPS for float/double 128-bit FMA, measured once
/// and cached.
double calibrated_peak_gflops_f32();
double calibrated_peak_gflops_f64();

template <typename T>
double calibrated_peak_gflops() {
  if constexpr (sizeof(T) == 4) {
    return calibrated_peak_gflops_f32();
  } else {
    return calibrated_peak_gflops_f64();
  }
}

}  // namespace shalom::bench
