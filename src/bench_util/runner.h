// Benchmark runner: wall-clock timing with warm- and cold-cache modes.
//
// Warm mode (paper Fig. 7 methodology) runs the kernel once untimed so the
// operands sit in cache, then times `reps` runs. Cold mode (Fig. 8) evicts
// the cache hierarchy between reps by streaming a buffer larger than the
// LLC. Both report geometric-mean / min / max (Section 7.4).
#pragma once

#include <chrono>
#include <functional>

#include "bench_util/stats.h"

namespace shalom::bench {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Streams a >LLC buffer to push every cached matrix line out.
void evict_caches();

/// Times `fn` `reps` times. warm=true primes with one untimed call;
/// warm=false calls evict_caches() before every rep.
Stats time_kernel(const std::function<void()>& fn, int reps, bool warm);

/// Shared bench CLI:  --full (paper-scale sizes), --reps N, --csv.
struct BenchOptions {
  bool full = false;
  int reps = 5;
  bool csv = false;

  static BenchOptions parse(int argc, char** argv);
};

}  // namespace shalom::bench
