#include "bench_util/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace shalom::bench {

Stats summarize(const std::vector<double>& samples_s) {
  SHALOM_REQUIRE(!samples_s.empty());
  Stats s;
  s.reps = static_cast<int>(samples_s.size());
  s.min_s = *std::min_element(samples_s.begin(), samples_s.end());
  s.max_s = *std::max_element(samples_s.begin(), samples_s.end());
  double log_sum = 0;
  for (double v : samples_s) log_sum += std::log(std::max(v, 1e-12));
  s.geomean_s = std::exp(log_sum / s.reps);
  return s;
}

double gemm_gflops(double m, double n, double k, double seconds) {
  return 2.0 * m * n * k / seconds / 1e9;
}

}  // namespace shalom::bench
