#include "bench_util/reporter.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace shalom::bench {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  SHALOM_REQUIRE(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

void Table::print(bool csv) const {
  if (csv) {
    std::printf("# %s\n", title_.c_str());
    for (std::size_t c = 0; c < columns_.size(); ++c)
      std::printf("%s%s", columns_[c].c_str(),
                  c + 1 < columns_.size() ? "," : "\n");
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        std::printf("%s%s", row[c].c_str(), c + 1 < row.size() ? "," : "\n");
    std::printf("\n");
    return;
  }

  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::printf("=== %s ===\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::printf("%-*s  ", static_cast<int>(width[c]), columns_[c].c_str());
  std::printf("\n");
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::printf("%s  ", std::string(width[c], '-').c_str());
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace shalom::bench
