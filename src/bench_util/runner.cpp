#include "bench_util/runner.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"

namespace shalom::bench {

void evict_caches() {
  // 96 MiB sweep: larger than every LLC in Table 1 and than typical hosts.
  static AlignedBuffer sweep(96u << 20);
  auto* p = sweep.as<unsigned char>();
  const std::size_t n = sweep.capacity();
  // Write pass so the lines are owned, then a read pass.
  for (std::size_t i = 0; i < n; i += kCacheLineBytes) p[i] += 1;
  volatile unsigned char sink = 0;
  for (std::size_t i = 0; i < n; i += kCacheLineBytes) sink += p[i];
  (void)sink;
}

Stats time_kernel(const std::function<void()>& fn, int reps, bool warm) {
  if (warm) fn();  // prime caches + code paths
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    if (!warm) evict_caches();
    Timer t;
    fn();
    samples.push_back(t.elapsed_s());
  }
  return summarize(samples);
}

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      opt.full = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      opt.reps = std::stoi(argv[++i]);
    }
  }
  return opt;
}

}  // namespace shalom::bench
