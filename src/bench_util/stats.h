// Timing statistics per the paper's methodology (Section 7.4): each kernel
// runs `reps` times; the geometric mean of the runtimes is reported with a
// min-max spread.
#pragma once

#include <vector>

namespace shalom::bench {

struct Stats {
  double geomean_s = 0;
  double min_s = 0;
  double max_s = 0;
  int reps = 0;
};

/// Geometric mean / min / max over one or more positive samples.
Stats summarize(const std::vector<double>& samples_s);

/// GFLOPS for a GEMM of the given shape at the given runtime:
/// 2*M*N*K floating-point operations.
double gemm_gflops(double m, double n, double k, double seconds);

}  // namespace shalom::bench
