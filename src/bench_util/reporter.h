// Table/CSV output for the figure-reproduction benches.
//
// Every bench prints one table per paper panel: rows are the swept
// parameter, columns are the competing implementations, cells are GFLOPS
// (geomean-of-reps) - the same series the paper plots. --csv switches to
// machine-readable output for replotting.
#pragma once

#include <string>
#include <vector>

namespace shalom::bench {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  /// Convenience: first cell is a label, the rest are numbers.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders aligned text (or CSV) to stdout.
  void print(bool csv = false) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 2);

}  // namespace shalom::bench
