#include "bench_util/peak.h"

#include <algorithm>

#include "bench_util/runner.h"
#include "simd/vec128.h"

namespace shalom::bench {

namespace {

/// 16 independent FMA chains saturate both FMA pipes past their latency;
/// the sink store prevents the loop from being optimized away.
template <typename T>
double measure_peak() {
  using V = simd::vec_of_t<T>;
  constexpr int kChains = 16;
  constexpr long long kIters = 4'000'000;

  V acc[kChains];
  for (auto& a : acc) a = simd::broadcast(T(1.0));
  const V x = simd::broadcast(T(1.0000001));
  const V y = simd::broadcast(T(-0.0000001));

  double best = 0;
  for (int trial = 0; trial < 3; ++trial) {
    Timer t;
    for (long long i = 0; i < kIters; ++i) {
      for (int c = 0; c < kChains; ++c) acc[c] = simd::fmadd(acc[c], x, y);
    }
    const double secs = t.elapsed_s();
    // 2 FLOPs per lane per FMA.
    const double flops =
        2.0 * V::kLanes * kChains * static_cast<double>(kIters);
    best = std::max(best, flops / secs / 1e9);
  }
  // Keep the accumulators alive.
  volatile T sink = simd::extract(acc[0], 0);
  (void)sink;
  return best;
}

}  // namespace

double calibrated_peak_gflops_f32() {
  static const double v = measure_peak<float>();
  return v;
}

double calibrated_peak_gflops_f64() {
  static const double v = measure_peak<double>();
  return v;
}

}  // namespace shalom::bench
