// Ablation (beyond the paper): is the analytically derived register tile
// actually the best one?
//
// Section 5.2 derives (mr, nr) = (7, 12) FP32 by maximizing the CMR under
// the register budget. This bench measures the always-pack Goto driver at
// several feasible tiles on a medium GEMM; the model's pick should be at
// or near the top, validating the Lagrange/CMR argument empirically.
#include "baselines/goto_common.h"
#include "bench/bench_common.h"
#include "core/model.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const auto tile = model::solve_tile(32, 4);
  std::printf("model tile for 32 regs / 4 lanes: mr=%d nr=%d (CMR %.2f)\n\n",
              tile.mr, tile.nr, model::tile_cmr(tile.mr, tile.nr));

  struct TileCase {
    const char* name;
    void (*fn)(Mode, index_t, index_t, index_t, float, const float*,
               index_t, const float*, index_t, float, float*, index_t,
               const arch::MachineDescriptor&);
    double cmr;
  };
  const TileCase cases[] = {
      {"4x8", &baselines::goto_gemm<float, 4, 2, false>,
       model::tile_cmr(4, 8)},
      {"6x8", &baselines::goto_gemm<float, 6, 2, false>,
       model::tile_cmr(6, 8)},
      {"8x4", &baselines::goto_gemm<float, 8, 1, false>,
       model::tile_cmr(8, 4)},
      {"8x8", &baselines::goto_gemm<float, 8, 2, false>,
       model::tile_cmr(8, 8)},
      {"5x12", &baselines::goto_gemm<float, 5, 3, false>,
       model::tile_cmr(5, 12)},
      {"7x12 (model)", &baselines::goto_gemm<float, 7, 3, false>,
       model::tile_cmr(7, 12)},
  };

  bench::Table table("Ablation: register tile vs measured GFLOPS "
                     "(always-pack Goto, NN)",
                     {"tile", "CMR", "192^3", "320^3", "64x1024x512"});
  for (const auto& c : cases) {
    std::vector<double> row = {c.cmr};
    for (auto [M, N, K] : {std::tuple<index_t, index_t, index_t>{192, 192, 192},
                           {320, 320, 320},
                           {64, 1024, 512}}) {
      Matrix<float> a(M, K), b(K, N), cm(M, N);
      fill_random(a, 5);
      fill_random(b, 6);
      const auto st = bench::time_kernel(
          [&] {
            c.fn({Trans::N, Trans::N}, M, N, K, 1.f, a.data(), a.ld(),
                 b.data(), b.ld(), 0.f, cm.data(), cm.ld(),
                 arch::host_machine());
          },
          opt.reps, true);
      row.push_back(bench::gemm_gflops(static_cast<double>(M),
                                       static_cast<double>(N),
                                       static_cast<double>(K),
                                       st.geomean_s));
    }
    table.add_row(c.name, row);
  }
  table.print(opt.csv);
  return 0;
}
