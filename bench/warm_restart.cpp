// Warm-restart benchmark (PR 8): what the persistent tuned table buys at
// process start.
//
// A restart normally begins cold: the first request on every shape pays
// plan construction (and any tuned blocking is simply gone). With
// SHALOM_TUNED_TABLE / shalom_table_load, the table pre-seeds the plan
// cache before traffic arrives, so the first wave already runs tuned
// plans. Two scenarios over the identical shape mix quantify the gap:
//
//   cold_start       - empty plan cache, no table: first-request latency
//                      includes plan building per shape.
//   preseeded_start  - the tuned table (written by an in-process tuning
//                      pass, then cleared - simulating a restart) is
//                      loaded first; first requests are cache hits.
//
// Reported per scenario: summed and max first-request latency over the
// shape mix, time until a request wave first reaches 90% of the steady
// GFLOPS, and the steady GFLOPS themselves. scripts/bench.sh captures
// the JSON as part of BENCH_8.json and gates on preseeded first-request
// latency beating cold.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/runner.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/plan_cache.h"
#include "core/shalom.h"
#include "tuning/table.h"

namespace {

using namespace shalom;

struct Shape {
  index_t m, n, k;
};

/// The served mix: the paper's small/irregular regime, all distinct so
/// every shape is a genuine first request after a restart.
const std::vector<Shape>& shape_mix() {
  static const std::vector<Shape> kShapes = {
      {16, 16, 16}, {24, 24, 24}, {32, 32, 32}, {8, 48, 8},
      {5, 31, 17},  {64, 7, 96},  {13, 57, 21}, {7, 9, 120},
      {33, 3, 77},  {48, 48, 8},  {12, 20, 8},  {20, 12, 36}};
  return kShapes;
}

struct Operands {
  std::vector<Matrix<float>> a, b, c;
  explicit Operands(const std::vector<Shape>& shapes, int seed) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      a.emplace_back(shapes[i].m, shapes[i].k);
      b.emplace_back(shapes[i].k, shapes[i].n);
      c.emplace_back(shapes[i].m, shapes[i].n);
      fill_random(a.back(), seed + static_cast<int>(3 * i));
      fill_random(b.back(), seed + static_cast<int>(3 * i) + 1);
      fill_random(c.back(), seed + static_cast<int>(3 * i) + 2);
    }
  }
};

struct RestartResult {
  std::string name;
  double preseed_load_ms = 0;       ///< table_load cost (preseeded only)
  double first_request_us_sum = 0;  ///< summed over the shape mix
  double first_request_us_max = 0;
  double time_to_steady_ms = 0;  ///< elapsed until a wave hits 90% steady
  double steady_gflops = 0;      ///< median of the final third of waves
  std::uint64_t requests = 0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

void run_shape(const std::vector<Shape>& shapes, Operands& ops,
               std::size_t i) {
  const Shape& s = shapes[i];
  gemm_cached<float>(Mode{Trans::N, Trans::N}, s.m, s.n, s.k, 1.0f,
                     ops.a[i].data(), ops.a[i].ld(), ops.b[i].data(),
                     ops.b[i].ld(), 0.0f, ops.c[i].data(), ops.c[i].ld());
}

struct FirstRequestTrial {
  double load_ms = 0;
  double sum_us = 0;
  double max_us = 0;
};

/// One genuine restart (caches and registry dropped, optional table
/// pre-seed) timing only the first-request wave. The first request
/// happens exactly once per restart, so the only way to beat timing
/// noise is many restarts; main() interleaves cold and preseeded
/// trials so clock drift and transient load hit both scenarios alike.
FirstRequestTrial first_request_trial(const std::string& table_path,
                                      bool preseed, Operands& ops) {
  const std::vector<Shape>& shapes = shape_mix();
  FirstRequestTrial f;
  PlanCache<float>::global().clear();
  PlanCache<double>::global().clear();
  tuning::table_clear();
  if (preseed) {
    bench::Timer load_timer;
    if (tuning::table_load(table_path.c_str()) != SHALOM_OK)
      std::fprintf(stderr, "warm_restart: table_load failed (cold run)\n");
    f.load_ms = load_timer.elapsed_s() * 1e3;
  }
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    bench::Timer t;
    run_shape(shapes, ops, i);
    const double us = t.elapsed_s() * 1e6;
    f.sum_us += us;
    f.max_us = std::max(f.max_us, us);
  }
  return f;
}

/// One simulated restart: plan cache and registry dropped, optionally
/// re-seeded from the table, then a first-request wave (timed per shape)
/// followed by steady-state waves.
RestartResult run_restart(const char* name, const std::string& table_path,
                          bool preseed, int waves) {
  const std::vector<Shape>& shapes = shape_mix();
  Operands ops(shapes, 1234);
  RestartResult r;
  r.name = name;

  PlanCache<float>::global().clear();
  PlanCache<double>::global().clear();
  tuning::table_clear();
  if (preseed) {
    bench::Timer load_timer;
    if (tuning::table_load(table_path.c_str()) != SHALOM_OK)
      std::fprintf(stderr, "warm_restart: table_load failed (cold run)\n");
    r.preseed_load_ms = load_timer.elapsed_s() * 1e3;
  }

  double flops_per_wave = 0;
  for (const Shape& s : shapes)
    flops_per_wave += 2.0 * static_cast<double>(s.m) *
                      static_cast<double>(s.n) * static_cast<double>(s.k);

  // Wave 0: every shape's true first request after the "restart".
  bench::Timer total;
  std::vector<double> wave_seconds;
  {
    bench::Timer wave;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      bench::Timer t;
      run_shape(shapes, ops, i);
      const double us = t.elapsed_s() * 1e6;
      r.first_request_us_sum += us;
      r.first_request_us_max = std::max(r.first_request_us_max, us);
    }
    wave_seconds.push_back(wave.elapsed_s());
  }
  std::vector<double> wave_end_s = {total.elapsed_s()};
  for (int w = 1; w < waves; ++w) {
    bench::Timer wave;
    for (std::size_t i = 0; i < shapes.size(); ++i) run_shape(shapes, ops, i);
    wave_seconds.push_back(wave.elapsed_s());
    wave_end_s.push_back(total.elapsed_s());
  }
  r.requests = static_cast<std::uint64_t>(waves) * shapes.size();

  // Steady GFLOPS: median wave throughput over the final third (the
  // cache is warm and the branch predictors settled by then).
  std::vector<double> wave_gflops;
  wave_gflops.reserve(wave_seconds.size());
  for (double s : wave_seconds)
    wave_gflops.push_back(s > 0 ? flops_per_wave / s * 1e-9 : 0);
  std::vector<double> tail(wave_gflops.end() -
                               static_cast<long>(wave_gflops.size() / 3 + 1),
                           wave_gflops.end());
  std::sort(tail.begin(), tail.end());
  r.steady_gflops = tail[tail.size() / 2];

  // Time-to-steady: elapsed time (from the first request) until a wave
  // first sustains 90% of the steady rate.
  r.time_to_steady_ms = wave_end_s.back() * 1e3;
  for (std::size_t w = 0; w < wave_gflops.size(); ++w) {
    if (wave_gflops[w] >= 0.9 * r.steady_gflops) {
      r.time_to_steady_ms = wave_end_s[w] * 1e3;
      break;
    }
  }
  return r;
}

void emit_json(const std::vector<RestartResult>& results) {
  std::printf("{\n  \"bench\": \"warm_restart\",\n  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RestartResult& r = results[i];
    std::printf(
        "    {\"name\": \"%s\", \"preseed_load_ms\": %.3f, "
        "\"first_request_us\": %.2f, \"first_request_us_max\": %.2f, "
        "\"time_to_steady_ms\": %.3f, \"steady_gflops\": %.4f, "
        "\"requests\": %llu}%s\n",
        r.name.c_str(), r.preseed_load_ms, r.first_request_us_sum,
        r.first_request_us_max, r.time_to_steady_ms, r.steady_gflops,
        static_cast<unsigned long long>(r.requests),
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = shalom::bench::BenchOptions::parse(argc, argv);
  const int waves = opt.full ? 80 : 25;
  const std::string table_path = "/tmp/shalom_warm_restart.tbl";

  // Tuning pass: pick blockings for the whole mix and persist them -
  // this file is what survives the "restart" below. Records key on
  // threads = 1, matching the default-config gemm_cached calls.
  tuning::table_clear();
  tuning::TuneOptions topt;
  topt.reps = opt.full ? 3 : 1;
  topt.scales = {0.5, 1.0, 1.5};
  for (const auto& s : shape_mix()) {
    const Config base;  // threads = 1
    const tuning::TuneResult tuned =
        tuning::tune<float>(Mode{Trans::N, Trans::N}, s.m, s.n, s.k, base, topt);
    tuning::TunedRecord rec;
    rec.dtype = 's';
    rec.threads = 1;
    rec.m = s.m;
    rec.n = s.n;
    rec.k = s.k;
    rec.kc = tuned.config.kc_override;
    rec.mc = tuned.config.mc_override;
    rec.nc = tuned.config.nc_override;
    if (!tuning::table_record(rec))
      std::fprintf(stderr, "warm_restart: record rejected for %ldx%ldx%ld\n",
                   static_cast<long>(s.m), static_cast<long>(s.n),
                   static_cast<long>(s.k));
  }
  if (tuning::table_save(table_path.c_str()) != SHALOM_OK) {
    std::fprintf(stderr, "warm_restart: table_save failed\n");
    return 1;
  }

  // First-request latency: the first request happens once per restart,
  // so take the median over many restarts, interleaving cold and
  // preseeded trials so clock drift and transient machine load bias
  // both scenarios equally instead of whichever ran second.
  Operands ops(shape_mix(), 1234);
  const int trials = opt.full ? 21 : 11;
  std::vector<double> cold_sum, cold_max, warm_sum, warm_max, warm_load;
  (void)first_request_trial(table_path, false, ops);  // process warmup
  (void)first_request_trial(table_path, true, ops);
  for (int t = 0; t < trials; ++t) {
    const FirstRequestTrial c = first_request_trial(table_path, false, ops);
    const FirstRequestTrial w = first_request_trial(table_path, true, ops);
    cold_sum.push_back(c.sum_us);
    cold_max.push_back(c.max_us);
    warm_sum.push_back(w.sum_us);
    warm_max.push_back(w.max_us);
    warm_load.push_back(w.load_ms);
  }

  std::vector<RestartResult> results;
  results.push_back(run_restart("cold_start", table_path, false, waves));
  results.push_back(run_restart("preseeded_start", table_path, true, waves));
  results[0].first_request_us_sum = median(cold_sum);
  results[0].first_request_us_max = median(cold_max);
  results[1].first_request_us_sum = median(warm_sum);
  results[1].first_request_us_max = median(warm_max);
  results[1].preseed_load_ms = median(warm_load);
  emit_json(results);
  if (std::remove(table_path.c_str()) != 0) {
    // Scratch file cleanup is best-effort; /tmp reaps it anyway.
  }
  return 0;
}
