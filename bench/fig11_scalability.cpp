// Paper Fig. 11: scalability on the VGG irregular GEMM
// (64 x 50176 x 576), speedup over single-threaded OpenBLAS as threads
// grow 1 -> all cores.
//
// Two panels: (1) measured on the host (one physical core, so measured
// thread counts beyond it show the fork-join/partition overhead rather
// than real speedup - reported for completeness); (2) modeled speedup
// curves for the three paper machines, where the expected shape is
// LibShalom topping out near 49x (Phytium), 82x (KP920), 35x (TX2) while
// the baselines saturate earlier.
#include <thread>

#include "bench/bench_common.h"
#include "perfmodel/perfmodel.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const auto shape = workloads::vgg_scalability_shape(opt.full);
  const Mode nt{Trans::N, Trans::T};
  const auto& libs = baselines::parallel_libraries();

  // Panel 1: measured on the host, normalized to 1-thread OpenBLAS*.
  {
    const unsigned hw = std::thread::hardware_concurrency();
    const int max_t = hw > 0 ? static_cast<int>(hw) : 1;
    std::vector<int> threads = {1};
    for (int t = 2; t <= std::max(max_t, 4); t *= 2) threads.push_back(t);

    const double base_gflops = bench::measure_gflops<float>(
        baselines::openblas_like(), nt, shape, 1, opt.reps, true);

    std::vector<std::string> cols = {"threads"};
    for (const auto* lib : libs) cols.push_back(lib->name);
    bench::Table table("Fig 11 (measured, host, " + shape.label +
                           "): speedup vs 1-thread OpenBLAS*",
                       cols);
    for (int t : threads) {
      std::vector<double> row;
      // speedup = time_base / time_lib = g_lib / g_base(1-thread OpenBLAS*)
      for (const auto* lib : libs) {
        const double g = bench::measure_gflops<float>(*lib, nt, shape, t,
                                                      opt.reps, true);
        row.push_back(g / base_gflops);
      }
      table.add_row(std::to_string(t), row);
    }
    table.print(opt.csv);
    std::printf("(host has %d hardware thread(s); larger counts measure "
                "oversubscription behaviour)\n\n",
                max_t);
  }

  // Panel 2: modeled speedup on the paper machines at paper-scale size.
  const auto full_shape = workloads::vgg_scalability_shape(true);
  for (const auto& mach : arch::paper_machines()) {
    std::vector<std::string> cols = {"threads"};
    for (const auto& s : perfmodel::modeled_strategies())
      cols.push_back(s.name);
    bench::Table table("Fig 11 (modeled, " + mach.name + ", " +
                           full_shape.label +
                           "): speedup vs 1-thread OpenBLAS*",
                       cols);
    const auto& strategies = perfmodel::modeled_strategies();
    const double base = perfmodel::predict_gflops<float>(
        mach, strategies.front(), {Trans::N, Trans::T}, full_shape.m,
        full_shape.n, full_shape.k, 1);
    for (int t = 1; t <= mach.cores; t *= 2) {
      std::vector<double> row;
      for (const auto& s : strategies)
        row.push_back(perfmodel::predict_gflops<float>(
                          mach, s, {Trans::N, Trans::T}, full_shape.m,
                          full_shape.n, full_shape.k, t) /
                      base);
      table.add_row(std::to_string(t), row, 1);
    }
    table.print(opt.csv);
  }
  return 0;
}
