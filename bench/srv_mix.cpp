// Server-mix benchmark for the admission-controlled async engine (PR 7).
//
// Three pinned scenarios mirror the serving regimes the QoS layer exists
// for, and the output is machine-readable JSON (scripts/bench.sh captures
// it as BENCH_7.json):
//
//   warm_small_8clients  - 8 closed-loop clients, warm small shapes: the
//                          steady-state latency floor.
//   cold_irregular_burst - one client bursts distinct irregular shapes at
//                          a fresh stream: cold planning + coalescing.
//   overload_burst       - 8 clients burst 2x queue_cap requests each at
//                          a capped shed-newest stream with deadlines
//                          armed: the overload regime. Shed/timeout
//                          counts and a BOUNDED p99 are the point.
//
// Latency is measured per request from submit() to the observation of its
// resolution (waits issued in submission order), so open-loop percentiles
// are conservative upper bounds. GFLOPS counts only requests that actually
// executed (OK or degraded-OK).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/runner.h"
#include "common/error.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/shalom.h"

namespace {

using namespace shalom;

struct Shape {
  index_t m, n, k;
};

struct ClientTally {
  std::vector<double> latencies_us;
  double flops_done = 0;
  std::uint64_t ok = 0, degraded = 0, shed = 0, timeout = 0;
};

struct ScenarioResult {
  std::string name;
  double seconds = 0;
  double gflops = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t requests = 0, ok = 0, degraded = 0, shed = 0, timeout = 0;
};

double percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const double pos = q * static_cast<double>(sorted_in_place.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_in_place.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_in_place[lo] * (1 - frac) + sorted_in_place[hi] * frac;
}

/// Per-client operand pool: one problem per distinct shape, reused across
/// requests (the server regime: many products over resident operands).
struct Operands {
  std::vector<Matrix<float>> a, b, c;
  explicit Operands(const std::vector<Shape>& shapes, int seed) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      a.emplace_back(shapes[i].m, shapes[i].k);
      b.emplace_back(shapes[i].k, shapes[i].n);
      c.emplace_back(shapes[i].m, shapes[i].n);
      fill_random(a.back(), seed + static_cast<int>(3 * i));
      fill_random(b.back(), seed + static_cast<int>(3 * i) + 1);
      fill_random(c.back(), seed + static_cast<int>(3 * i) + 2);
    }
  }
};

ScenarioResult summarize(const std::string& name, double seconds,
                         std::vector<ClientTally>& tallies) {
  ScenarioResult r;
  r.name = name;
  r.seconds = seconds;
  std::vector<double> all;
  double flops = 0;
  for (ClientTally& t : tallies) {
    all.insert(all.end(), t.latencies_us.begin(), t.latencies_us.end());
    flops += t.flops_done;
    r.ok += t.ok;
    r.degraded += t.degraded;
    r.shed += t.shed;
    r.timeout += t.timeout;
  }
  r.requests = r.ok + r.degraded + r.shed + r.timeout;
  r.gflops = seconds > 0 ? flops / seconds * 1e-9 : 0;
  r.p50_us = percentile(all, 0.50);
  r.p95_us = percentile(all, 0.95);
  r.p99_us = percentile(all, 0.99);
  return r;
}

/// One client's burst against a shared stream: submits `reqs` requests
/// round-robin over its operand pool (open loop when open==true, waiting
/// each request down when false), then resolves every ticket.
void run_client(engine::GemmStream& stream, const std::vector<Shape>& shapes,
                Operands& ops, int reqs, bool open, long deadline_every,
                ClientTally& tally) {
  std::vector<engine::TicketPtr> tickets;
  std::vector<bench::Timer> started;
  std::vector<std::size_t> shape_of;
  tickets.reserve(static_cast<std::size_t>(reqs));
  started.reserve(static_cast<std::size_t>(reqs));
  shape_of.reserve(static_cast<std::size_t>(reqs));
  const auto settle = [&](std::size_t i) {
    const int status = tickets[i]->wait();
    tally.latencies_us.push_back(started[i].elapsed_s() * 1e6);
    const Shape& s = shapes[shape_of[i]];
    if (status == SHALOM_OK || status == SHALOM_DEGRADED) {
      (status == SHALOM_OK ? tally.ok : tally.degraded) += 1;
      tally.flops_done += 2.0 * s.m * s.n * s.k;
    } else if (status == SHALOM_ERR_TIMEOUT) {
      tally.timeout += 1;
    } else {
      tally.shed += 1;
    }
  };
  for (int i = 0; i < reqs; ++i) {
    const std::size_t si = static_cast<std::size_t>(i) % shapes.size();
    const Shape& s = shapes[si];
    const long deadline_ms =
        (deadline_every > 0 && i % deadline_every == 0) ? 5 : 0;
    started.emplace_back();
    try {
      tickets.push_back(stream.submit<float>(
          Mode{Trans::N, Trans::N}, s.m, s.n, s.k, 1.0f, ops.a[si].data(),
          ops.a[si].ld(), ops.b[si].data(), ops.b[si].ld(), 0.0f,
          ops.c[si].data(), ops.c[si].ld(), deadline_ms));
      shape_of.push_back(si);
    } catch (const rejected_error&) {
      started.pop_back();
      tally.shed += 1;
      continue;
    } catch (const timeout_error&) {
      started.pop_back();
      tally.timeout += 1;
      continue;
    } catch (const std::bad_alloc&) {
      started.pop_back();
      tally.shed += 1;
      continue;
    }
    if (!open) settle(tickets.size() - 1);
  }
  if (open)
    for (std::size_t i = 0; i < tickets.size(); ++i) settle(i);
}

ScenarioResult scenario_warm_small(int scale) {
  const std::vector<Shape> shapes = {{16, 16, 16}, {24, 24, 24}, {32, 32, 32}};
  constexpr int kClients = 8;
  const int reqs = 40 * scale;
  std::vector<Operands> ops;
  for (int c = 0; c < kClients; ++c) ops.emplace_back(shapes, 101 + c);
  engine::GemmStream stream;
  // Warm pass: plans, packs and caches settle before the timed run.
  std::vector<ClientTally> warm(kClients);
  for (int c = 0; c < kClients; ++c)
    run_client(stream, shapes, ops[static_cast<std::size_t>(c)],
               static_cast<int>(shapes.size()), /*open=*/false, 0,
               warm[static_cast<std::size_t>(c)]);
  std::vector<ClientTally> tallies(kClients);
  bench::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      run_client(stream, shapes, ops[static_cast<std::size_t>(c)], reqs,
                 /*open=*/false, 0, tallies[static_cast<std::size_t>(c)]);
    });
  for (auto& t : clients) t.join();
  const double seconds = timer.elapsed_s();
  stream.flush();
  return summarize("warm_small_8clients", seconds, tallies);
}

ScenarioResult scenario_cold_irregular(int scale) {
  const std::vector<Shape> shapes = {
      {5, 31, 17}, {64, 7, 96}, {13, 57, 21}, {7, 9, 120}, {33, 3, 77}};
  Operands ops(shapes, 501);
  std::vector<ClientTally> tallies(1);
  bench::Timer timer;
  engine::GemmStream stream;  // fresh stream: nothing warm
  run_client(stream, shapes, ops, static_cast<int>(shapes.size()) * 4 * scale,
             /*open=*/true, 0, tallies[0]);
  stream.flush();
  const double seconds = timer.elapsed_s();
  return summarize("cold_irregular_burst", seconds, tallies);
}

ScenarioResult scenario_overload(int scale) {
  const std::vector<Shape> shapes = {{16, 16, 16}, {12, 20, 8}};
  constexpr int kClients = 8;
  constexpr long kCap = 8;
  const int reqs = static_cast<int>(2 * kCap) * scale;  // 2x queue_cap each
  std::vector<Operands> ops;
  for (int c = 0; c < kClients; ++c) ops.emplace_back(shapes, 901 + c);
  engine::StreamOptions opts;
  opts.queue_cap = kCap;
  opts.overload_policy = static_cast<int>(engine::OverloadPolicy::kShedNewest);
  engine::GemmStream stream(opts);
  std::vector<ClientTally> tallies(kClients);
  bench::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      run_client(stream, shapes, ops[static_cast<std::size_t>(c)], reqs,
                 /*open=*/true, /*deadline_every=*/3,
                 tallies[static_cast<std::size_t>(c)]);
    });
  for (auto& t : clients) t.join();
  const double seconds = timer.elapsed_s();
  stream.close();
  return summarize("overload_burst_2x_cap", seconds, tallies);
}

void emit_json(const std::vector<ScenarioResult>& results) {
  std::printf("{\n  \"bench\": \"srv_mix\",\n  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf(
        "    {\"name\": \"%s\", \"seconds\": %.6f, \"gflops\": %.4f,\n"
        "     \"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f,\n"
        "     \"requests\": %llu, \"ok\": %llu, \"degraded\": %llu, "
        "\"shed\": %llu, \"timeout\": %llu}%s\n",
        r.name.c_str(), r.seconds, r.gflops, r.p50_us, r.p95_us, r.p99_us,
        static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.degraded),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.timeout),
        i + 1 < results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = shalom::bench::BenchOptions::parse(argc, argv);
  const int scale = opt.full ? 4 : 1;
  std::vector<ScenarioResult> results;
  results.push_back(scenario_warm_small(scale));
  results.push_back(scenario_cold_irregular(scale));
  results.push_back(scenario_overload(scale));
  emit_json(results);
  return 0;
}
