// Shared plumbing for the figure-reproduction benches: allocates operands
// for a shape, times every library in a set, and renders one table per
// paper panel.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_util/reporter.h"
#include "bench_util/runner.h"
#include "bench_util/stats.h"
#include "common/rng.h"
#include "workloads/sizes.h"

namespace shalom::bench {

/// One measured cell: GFLOPS of `lib` on `shape`.
template <typename T>
double measure_gflops(const baselines::Library& lib, Mode mode,
                      const workloads::GemmShape& shape, int threads,
                      int reps, bool warm) {
  const index_t M = shape.m, N = shape.n, K = shape.k;
  const index_t a_rows = (mode.a == Trans::N) ? M : K;
  const index_t a_cols = (mode.a == Trans::N) ? K : M;
  const index_t b_rows = (mode.b == Trans::N) ? K : N;
  const index_t b_cols = (mode.b == Trans::N) ? N : K;

  Matrix<T> a(a_rows, a_cols), b(b_rows, b_cols), c(M, N);
  fill_random(a, 11);
  fill_random(b, 22);

  const auto& fn = [&]() -> const baselines::GemmFn<T>& {
    if constexpr (std::is_same_v<T, float>) {
      return lib.sgemm;
    } else {
      return lib.dgemm;
    }
  }();

  const Stats st = time_kernel(
      [&] {
        fn(mode, M, N, K, T{1}, a.data(), a.ld(), b.data(), b.ld(), T{0},
           c.data(), c.ld(), threads);
      },
      reps, warm);
  return gemm_gflops(static_cast<double>(M), static_cast<double>(N),
                     static_cast<double>(K), st.geomean_s);
}

/// Runs `libs` over `shapes` and prints a table titled `title`; the first
/// column is the shape label, one column per library.
template <typename T>
void run_panel(const std::string& title,
               const std::vector<const baselines::Library*>& libs, Mode mode,
               const std::vector<workloads::GemmShape>& shapes, int threads,
               const BenchOptions& opt, bool warm = true) {
  std::vector<std::string> cols = {"shape"};
  for (const auto* lib : libs) cols.push_back(lib->name);
  Table table(title, cols);
  for (const auto& shape : shapes) {
    std::vector<double> row;
    for (const auto* lib : libs)
      row.push_back(measure_gflops<T>(*lib, mode, shape, threads, opt.reps,
                                      warm));
    table.add_row(shape.label, row);
  }
  table.print(opt.csv);
}

inline void print_scale_note(const BenchOptions& opt) {
  std::printf("[sizes: %s; reps=%d; pass --full for paper-scale sizes]\n\n",
              opt.full ? "paper-scale" : "scaled-down", opt.reps);
}

}  // namespace shalom::bench
