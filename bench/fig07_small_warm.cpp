// Paper Fig. 7: single-threaded FP32 small GEMM (M = N = K in 8..120),
// warm cache, NN and NT modes, all six libraries.
//
// Expected shape: LibShalom leads across the sweep, with the largest
// margin at the smallest sizes (paper: 2x over BLASFEO at 8, >= 5% at
// 120); NN mode beats NT for small sizes because NN skips packing when B
// is L1-resident.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const auto& libs = baselines::all_libraries();
  const auto shapes = workloads::small_square_sizes();

  bench::run_panel<float>("Fig 7 (NN): small GEMM, warm cache, GFLOPS",
                          libs, {Trans::N, Trans::N}, shapes, /*threads=*/1,
                          opt, /*warm=*/true);
  bench::run_panel<float>("Fig 7 (NT): small GEMM, warm cache, GFLOPS",
                          libs, {Trans::N, Trans::T}, shapes, 1, opt, true);
  return 0;
}
