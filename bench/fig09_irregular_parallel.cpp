// Paper Fig. 9: parallel irregular-shaped GEMM under the NT mode
// (K = 5000), all CPU cores: M in {32..256} with N swept, then N in
// {32..256} with M swept.
//
// Expected shape: LibShalom leads (paper: 1.8x mean over BLIS, up to 2.6x
// at M = 32); the advantage shrinks as M grows. The reproduction host has
// one core, so `threads` = all cores measures the partitioning + packing
// quality under oversubscription; bench/fig11_scalability adds the
// modeled multi-core curves.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const auto& libs = baselines::parallel_libraries();
  const Mode nt{Trans::N, Trans::T};

  bench::run_panel<float>(
      "Fig 9 (top): irregular NT GEMM, M fixed / N swept, all cores, GFLOPS",
      libs, nt, workloads::irregular_sweep_m(opt.full), /*threads=*/0, opt);
  bench::run_panel<float>(
      "Fig 9 (bottom): irregular NT GEMM, N fixed / M swept, all cores, GFLOPS",
      libs, nt, workloads::irregular_sweep_n(opt.full), 0, opt);
  return 0;
}
