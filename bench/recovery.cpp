// Recovery benchmark (PR 10): the price of a degradation round-trip.
//
// The self-healing layer exists so a transient fault costs a dip, not a
// permanently slower process. This bench measures exactly that contract
// on the steady-state serving regime (the warm-small mix from
// bench/srv_mix.cpp) and emits machine-readable JSON (scripts/bench.sh
// captures it into BENCH_10.json):
//
//   baseline  - 4 closed-loop clients over warm small shapes, healthy.
//   faulted   - the same load with the hot FP32 kernel families
//               quarantined (cause: injected): dispatch re-routes to the
//               verified fallback, throughput dips.
//   recovered - the same load again after health::recover_now() walks
//               every quarantined family through clean probation.
//
// restoration_ratio = recovered_gflops / baseline_gflops is the headline
// number; scripts/bench.sh gates it at >= 0.9 (a healed process must
// serve within 10% of one that never faulted). A second loop measures
// time-to-recover: repeated single-family quarantines, each timed from
// injection to health::all_healthy(), reported as p50/p95/p99 - the
// probation probes themselves are the cost, so this is microseconds, not
// the cool-down wait (recover_now() expires cool-downs first, exactly
// like an operator forcing recovery).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util/runner.h"
#include "common/error.h"
#include "common/fault.h"
#include "common/health.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/selfcheck.h"
#include "core/engine.h"
#include "core/shalom.h"

namespace {

using namespace shalom;

struct Shape {
  index_t m, n, k;
};

double percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const double pos = q * static_cast<double>(sorted_in_place.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_in_place.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_in_place[lo] * (1 - frac) + sorted_in_place[hi] * frac;
}

/// Per-client operand pool, one problem per shape (the server regime:
/// many products over resident operands).
struct Operands {
  std::vector<Matrix<float>> a, b, c;
  explicit Operands(const std::vector<Shape>& shapes, int seed) {
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      a.emplace_back(shapes[i].m, shapes[i].k);
      b.emplace_back(shapes[i].k, shapes[i].n);
      c.emplace_back(shapes[i].m, shapes[i].n);
      fill_random(a.back(), seed + static_cast<int>(3 * i));
      fill_random(b.back(), seed + static_cast<int>(3 * i) + 1);
      fill_random(c.back(), seed + static_cast<int>(3 * i) + 2);
    }
  }
};

struct Phase {
  double seconds = 0;
  double gflops = 0;
  std::uint64_t ok = 0, degraded = 0, failed = 0;
};

/// One client's closed loop: submit, wait, repeat.
void client_loop(engine::GemmStream& stream, const std::vector<Shape>& shapes,
                 Operands& ops, int reqs, double& flops_done,
                 std::uint64_t& ok, std::uint64_t& degraded,
                 std::uint64_t& failed) {
  for (int i = 0; i < reqs; ++i) {
    const std::size_t si = static_cast<std::size_t>(i) % shapes.size();
    const Shape& s = shapes[si];
    int status = SHALOM_ERR_REJECTED;
    try {
      status = stream
                   .submit<float>(Mode{Trans::N, Trans::N}, s.m, s.n, s.k,
                                  1.0f, ops.a[si].data(), ops.a[si].ld(),
                                  ops.b[si].data(), ops.b[si].ld(), 0.0f,
                                  ops.c[si].data(), ops.c[si].ld())
                   ->wait();
    } catch (const std::exception&) {
      status = SHALOM_ERR_REJECTED;
    }
    if (status == SHALOM_OK || status == SHALOM_DEGRADED) {
      (status == SHALOM_OK ? ok : degraded) += 1;
      flops_done += 2.0 * s.m * s.n * s.k;
    } else {
      failed += 1;
    }
  }
}

/// The warm-small serving mix: 4 closed-loop clients on a shared stream,
/// one untimed warm pass, then `reqs` requests each, timed.
Phase run_warm_small(int scale) {
  const std::vector<Shape> shapes = {{16, 16, 16}, {24, 24, 24}, {32, 32, 32}};
  constexpr int kClients = 4;
  const int reqs = 60 * scale;
  std::vector<Operands> ops;
  for (int c = 0; c < kClients; ++c) ops.emplace_back(shapes, 1001 + c);
  engine::GemmStream stream;
  Phase r;
  {
    double warm_flops = 0;
    std::uint64_t w0 = 0, w1 = 0, w2 = 0;
    for (int c = 0; c < kClients; ++c)
      client_loop(stream, shapes, ops[static_cast<std::size_t>(c)],
                  static_cast<int>(shapes.size()), warm_flops, w0, w1, w2);
  }
  std::vector<double> flops(kClients, 0);
  std::vector<std::uint64_t> ok(kClients, 0), degraded(kClients, 0),
      failed(kClients, 0);
  bench::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      const std::size_t ci = static_cast<std::size_t>(c);
      client_loop(stream, shapes, ops[ci], reqs, flops[ci], ok[ci],
                  degraded[ci], failed[ci]);
    });
  for (auto& t : clients) t.join();
  r.seconds = timer.elapsed_s();
  stream.flush();
  double total_flops = 0;
  for (int c = 0; c < kClients; ++c) {
    const std::size_t ci = static_cast<std::size_t>(c);
    total_flops += flops[ci];
    r.ok += ok[ci];
    r.degraded += degraded[ci];
    r.failed += failed[ci];
  }
  r.gflops = r.seconds > 0 ? total_flops / r.seconds * 1e-9 : 0;
  return r;
}

/// The kernel families the warm-small FP32 mix actually dispatches to;
/// quarantining these forces the fallback path.
const selfcheck::Variant kHotFamilies[] = {
    selfcheck::Variant::kMainF32DirectDirect,
    selfcheck::Variant::kMainF32DirectPacked,
    selfcheck::Variant::kMainF32PackedDirect,
    selfcheck::Variant::kMainF32PackedPacked,
    selfcheck::Variant::kEdgeF32PackedPacked,
    selfcheck::Variant::kFusedNnF32,
    selfcheck::Variant::kWide128,
    selfcheck::Variant::kWide256,
    selfcheck::Variant::kWide512,
};

/// Forces full recovery the way an operator would: recover_now() expires
/// cool-downs and runs every registered hook until the registry is clean.
/// Returns false if the registry did not converge (bounded, never spins).
bool heal() {
  for (int i = 0; i < 64; ++i) {
    if (health::all_healthy()) return true;
    (void)health::recover_now();
  }
  return health::all_healthy();
}

void emit_phase(const char* name, const Phase& p, const char* trailing) {
  std::printf(
      "    \"%s\": {\"seconds\": %.6f, \"gflops\": %.4f, \"ok\": %llu, "
      "\"degraded\": %llu, \"failed\": %llu}%s\n",
      name, p.seconds, p.gflops, static_cast<unsigned long long>(p.ok),
      static_cast<unsigned long long>(p.degraded),
      static_cast<unsigned long long>(p.failed), trailing);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = shalom::bench::BenchOptions::parse(argc, argv);
  const int scale = opt.full ? 4 : 1;
  if (!health::recovery_enabled()) {
    std::fprintf(stderr,
                 "recovery: self-healing is disabled in this environment "
                 "(recovery window is 0); nothing to measure\n");
    return 1;
  }
  robustness_stats_reset();

  const Phase baseline = run_warm_small(scale);

  for (selfcheck::Variant v : kHotFamilies)
    selfcheck::quarantine(v, health::Cause::kInjected);
  const Phase faulted = run_warm_small(scale);

  if (!heal()) {
    std::fprintf(stderr, "recovery: registry did not converge to HEALTHY\n");
    return 1;
  }
  const Phase recovered = run_warm_small(scale);
  const double ratio =
      baseline.gflops > 0 ? recovered.gflops / baseline.gflops : 0;

  // Time-to-recover: single-family quarantines, timed from injection to
  // an all-HEALTHY registry (probation probes are the cost measured).
  const int trials = 20 * scale;
  std::vector<double> ttr_us;
  ttr_us.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const selfcheck::Variant v =
        kHotFamilies[static_cast<std::size_t>(t) %
                     (sizeof(kHotFamilies) / sizeof(kHotFamilies[0]))];
    selfcheck::quarantine(v, health::Cause::kInjected);
    bench::Timer timer;
    if (!heal()) {
      std::fprintf(stderr, "recovery: trial %d did not converge\n", t);
      return 1;
    }
    ttr_us.push_back(timer.elapsed_s() * 1e6);
  }
  const RobustnessStats stats = robustness_stats();

  std::printf("{\n  \"bench\": \"recovery\",\n  \"phases\": {\n");
  emit_phase("baseline", baseline, ",");
  emit_phase("faulted", faulted, ",");
  emit_phase("recovered", recovered, "");
  std::printf("  },\n");
  std::printf("  \"restoration_ratio\": %.4f,\n", ratio);
  std::printf(
      "  \"recovery\": {\"trials\": %d, \"recoveries\": %llu, "
      "\"probation_probes\": %llu, \"ttr_p50_us\": %.1f, "
      "\"ttr_p95_us\": %.1f, \"ttr_p99_us\": %.1f}\n",
      trials, static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.probation_probes),
      percentile(ttr_us, 0.50), percentile(ttr_us, 0.95),
      percentile(ttr_us, 0.99));
  std::printf("}\n");
  return 0;
}
