// Paper Fig. 2: motivation - existing libraries on small and
// irregular-shaped GEMM, as a percentage of peak FLOPS.
//
// (a) square M = N = K sweeps; (b) M sweep with N = K large. Values are
// percent of the calibrated single-core peak. The paper's observation to
// reproduce: all existing libraries sit far below peak for small M, and
// only approach it for sizes >= 256.
#include <cstdio>

#include "bench/bench_common.h"
#include "bench_util/peak.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const double peak = bench::calibrated_peak_gflops_f32();
  std::printf("calibrated single-core FP32 peak: %.1f GFLOPS\n\n", peak);

  const std::vector<const baselines::Library*> libs = {
      &baselines::blis_like(), &baselines::armpl_like(),
      &baselines::openblas_like(), &baselines::blasfeo_like()};

  const Mode nn{Trans::N, Trans::N};

  {
    std::vector<std::string> cols = {"M=N=K"};
    for (const auto* lib : libs) cols.push_back(lib->name + " %peak");
    bench::Table table("Fig 2a: small square GEMM, % of peak FLOPS", cols);
    for (const auto& s : workloads::motivation_square_sizes(opt.full)) {
      std::vector<double> row;
      for (const auto* lib : libs) {
        if (lib->small_only && s.m > 512) {
          row.push_back(0.0);  // outside BLASFEO's design scope
          continue;
        }
        const double g =
            bench::measure_gflops<float>(*lib, nn, s, 1, opt.reps, true);
        row.push_back(100.0 * g / peak);
      }
      table.add_row(s.label, row, 1);
    }
    table.print(opt.csv);
  }

  {
    // BLASFEO is excluded from the irregular panel (paper footnote 3).
    const std::vector<const baselines::Library*> irregular_libs = {
        &baselines::openblas_like(), &baselines::armpl_like(),
        &baselines::blis_like()};
    std::vector<std::string> cols = {"M"};
    for (const auto* lib : irregular_libs)
      cols.push_back(lib->name + " %peak");
    bench::Table table("Fig 2b: irregular GEMM (N=K fixed), % of peak FLOPS",
                       cols);
    for (const auto& s : workloads::motivation_irregular_sizes(opt.full)) {
      std::vector<double> row;
      for (const auto* lib : irregular_libs) {
        const double g =
            bench::measure_gflops<float>(*lib, nn, s, 1, opt.reps, true);
        row.push_back(100.0 * g / peak);
      }
      table.add_row(s.label, row, 1);
    }
    table.print(opt.csv);
  }
  return 0;
}
