// Ablation (paper Section 5.5): vector-width scaling.
//
// Runs the same FP32 GEMM at 128-, 256- and 512-bit vector widths, each
// with the register tile the analytic model derives for that lane count
// (7x12 -> 9x16 -> 15x16). On hardware with native wide FMA the GFLOPS
// should scale with width until the memory system takes over - the
// behaviour the paper predicts for SVE machines like the A64FX. Widths
// without native backing run on an emulated (split-half) path and are
// flagged.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/widegemm.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  std::printf("native widths on this build: 128%s%s\n\n",
              simd::wide_native(256) ? ", 256" : " (256 emulated)",
              simd::wide_native(512) ? ", 512" : " (512 emulated)");

  const std::vector<workloads::GemmShape> shapes = {
      {"96x96x96", 96, 96, 96},
      {"256x256x256", 256, 256, 256},
      {"64x1024x512", 64, 1024, 512},
      {"480x480x480", 480, 480, 480},
  };

  bench::Table table("Ablation: vector width vs GFLOPS (FP32 NN, "
                     "model-derived tiles)",
                     {"shape", "128-bit (7x12)", "256-bit (9x16)",
                      "512-bit (15x16)"});

  for (const auto& s : shapes) {
    Matrix<float> a(s.m, s.k), b(s.k, s.n), c(s.m, s.n);
    fill_random(a, 1);
    fill_random(b, 2);
    std::vector<double> row;
    auto measure = [&](auto run) {
      const auto st = bench::time_kernel(run, opt.reps, true);
      return bench::gemm_gflops(static_cast<double>(s.m),
                                static_cast<double>(s.n),
                                static_cast<double>(s.k), st.geomean_s);
    };
    row.push_back(measure([&] {
      wide::gemm_wide<128>(s.m, s.n, s.k, 1.f, a.data(), a.ld(), b.data(),
                           b.ld(), 0.f, c.data(), c.ld());
    }));
    row.push_back(measure([&] {
      wide::gemm_wide<256>(s.m, s.n, s.k, 1.f, a.data(), a.ld(), b.data(),
                           b.ld(), 0.f, c.data(), c.ld());
    }));
    row.push_back(measure([&] {
      wide::gemm_wide<512>(s.m, s.n, s.k, 1.f, a.data(), a.ld(), b.data(),
                           b.ld(), 0.f, c.data(), c.ld());
    }));
    table.add_row(s.label, row);
  }
  table.print(opt.csv);
  return 0;
}
