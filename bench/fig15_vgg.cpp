// Paper Fig. 15: FP32 irregular-shaped GEMM kernels from the VGG16
// convolutional network (conv1.2 .. conv5.2), all cores.
//
// Expected shape: LibShalom leads on every layer, with the largest
// margins on conv1.2 and conv5.2 (paper: up to 1.6x over the second
// best).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  bench::run_panel<float>(
      "Fig 15: VGG16 conv-layer GEMMs (NN), all cores, GFLOPS",
      baselines::parallel_libraries(), {Trans::N, Trans::N},
      workloads::vgg16_layers(opt.full), /*threads=*/0, opt);
  return 0;
}
