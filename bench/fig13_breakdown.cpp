// Paper Fig. 13: breakdown of the optimization techniques on
// single-threaded irregular NT GEMM (N = 50176, K = 576, M = 20..100).
//
// Three configurations, each adding one optimization:
//   baseline            - OpenBLAS-strategy comparator
//   +edge-case opt      - LibShalom with packing optimizations disabled
//                         (always pack, sequential) but pipelined
//                         vectorized edge kernels enabled
//   +packing opt        - full LibShalom (selective + fused packing)
//
// Expected shape: both optimizations contribute, with packing the larger
// share (paper: combined 1.25-1.6x over OpenBLAS at M = 20).
#include "bench/bench_common.h"
#include "core/shalom.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const Mode nt{Trans::N, Trans::T};

  auto shalom_with = [](Config cfg) {
    return [cfg](Mode m, index_t M, index_t N, index_t K, float al,
                 const float* A, index_t lda, const float* B, index_t ldb,
                 float be, float* C, index_t ldc, int) {
      gemm_serial(m, M, N, K, al, A, lda, B, ldb, be, C, ldc, cfg);
    };
  };

  Config edges_only;  // always pack sequentially, optimized edges
  edges_only.selective_packing = false;
  edges_only.fused_packing = false;
  edges_only.optimized_edges = true;

  Config full_cfg;  // everything on (defaults)

  baselines::Library edge_lib{"+edge-case opt", shalom_with(edges_only),
                              nullptr, false, false};
  baselines::Library full_lib{"+packing opt", shalom_with(full_cfg),
                              nullptr, false, false};

  const std::vector<const baselines::Library*> libs = {
      &baselines::openblas_like(), &edge_lib, &full_lib};

  bench::run_panel<float>(
      "Fig 13: optimization breakdown, single-thread NT GEMM "
      "(N fixed, K=576, M swept), GFLOPS",
      libs, nt, workloads::breakdown_sizes(opt.full), /*threads=*/1, opt);
  return 0;
}
