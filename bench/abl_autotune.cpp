// Ablation (paper Section 10 future work): empirical auto-tuning of the
// cache blocking vs the analytic model.
//
// For representative small/irregular shapes, runs the coordinate search
// over kc/mc/nc and reports the model's GFLOPS, the tuned GFLOPS and the
// winning blocking. A small gain validates the paper's claim that simple
// analytic models are sufficient; any large gain flags where the model is
// leaving performance on the table.
#include <cstdio>

#include "bench/bench_common.h"
#include "tuning/autotune.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  tuning::TuneOptions topt;
  topt.reps = opt.reps;

  bench::Table table("Ablation: analytic blocking vs auto-tuned (NN)",
                     {"shape", "model GFLOPS", "tuned GFLOPS", "gain",
                      "tuned kc", "tuned mc", "tuned nc"});

  const std::vector<workloads::GemmShape> shapes = {
      {"64x64x64", 64, 64, 64},
      {"32x1024x768", 32, 1024, 768},
      {"128x2048x512", 128, 2048, 512},
      {"256x256x256", 256, 256, 256},
  };
  for (const auto& s : shapes) {
    const auto r =
        tuning::tune<float>({Trans::N, Trans::N}, s.m, s.n, s.k, {}, topt);
    table.add_row({s.label, bench::fmt(r.model_gflops),
                   bench::fmt(r.best_gflops), bench::fmt(r.gain()),
                   std::to_string(r.config.kc_override),
                   std::to_string(r.config.mc_override),
                   std::to_string(r.config.nc_override)});
  }
  table.print(opt.csv);
  std::printf("gain ~1.0 means the paper's analytic model is already "
              "near-optimal on this machine.\n");
  return 0;
}
