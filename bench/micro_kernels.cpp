// Google-benchmark micro-benchmarks for the kernel layer: main
// micro-kernel variants, the fused packing kernels and the standalone
// packing routines, on L1/L2-resident data.
//
// These are developer-facing (regression tracking for the kernel
// schedules); the paper figures come from the fig* binaries.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/dispatch.h"
#include "core/pack.h"

namespace {

using namespace shalom;

constexpr index_t kKc = 256;

template <ukr::AAccess AA, ukr::BAccess BA>
void bm_main_kernel(benchmark::State& state) {
  const index_t kc = state.range(0);
  Matrix<float> a(8, std::max<index_t>(kc, 8) * 8);  // generous backing
  Matrix<float> b(kc + 8, 16);
  Matrix<float> c(8, 16);
  fill_random(a, 1);
  fill_random(b, 2);
  const index_t lda = (AA == ukr::AAccess::kDirect) ? a.cols() : 7;
  const index_t ldb = (BA == ukr::BAccess::kDirect) ? b.cols() : 12;
  for (auto _ : state) {
    ukr::run_main_tile<float, AA, BA>(7, 12, kc, a.data(), lda, b.data(),
                                      ldb, c.data(), c.ld(), 1.0f, 1.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * 7 * 12 * kc * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void bm_fused_pack_nn(benchmark::State& state) {
  const index_t kc = state.range(0);
  Matrix<float> a(7, kc);
  Matrix<float> b(kc, 64);
  Matrix<float> bc(kc + 2, 12);
  Matrix<float> c(7, 12);
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    ukr::run_fused_pack_nn<float>(true, false, 12, kc, a.data(), a.ld(),
                                  b.data(), b.ld(), bc.data(), nullptr,
                                  b.ld(), nullptr, c.data(), c.ld(), 1.0f,
                                  0.0f);
    benchmark::DoNotOptimize(bc.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * 7 * 12 * kc * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void bm_fused_pack_nt(benchmark::State& state) {
  const index_t kc = state.range(0);
  Matrix<float> a(7, kc);
  Matrix<float> b(12, kc);  // op(B) columns are B rows
  Matrix<float> bc(kc + 2, 12);
  Matrix<float> c(7, 12);
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    for (int jb = 0; jb < 12; jb += 3)
      ukr::run_fused_pack_nt<float>(3, kc, a.data(), a.ld(), b.data(),
                                    b.ld(), bc.data(), jb, 12, jb + 3 < 12,
                                    c.data(), c.ld(), 1.0f, 0.0f);
    benchmark::DoNotOptimize(bc.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * 7 * 12 * kc * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void bm_pack_b_n(benchmark::State& state) {
  const index_t kc = state.range(0);
  Matrix<float> b(kc, 512);
  Matrix<float> bc(kc + 2, 12);
  fill_random(b, 2);
  for (auto _ : state) {
    pack::pack_b_n(b.data(), b.ld(), kc, 12, 12, bc.data());
    benchmark::DoNotOptimize(bc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kc *
                          12 * sizeof(float));
}

}  // namespace

BENCHMARK(bm_main_kernel<ukr::AAccess::kDirect, ukr::BAccess::kPacked>)
    ->Arg(kKc);
BENCHMARK(bm_main_kernel<ukr::AAccess::kDirect, ukr::BAccess::kDirect>)
    ->Arg(kKc);
BENCHMARK(bm_main_kernel<ukr::AAccess::kPacked, ukr::BAccess::kPacked>)
    ->Arg(kKc);
BENCHMARK(bm_fused_pack_nn)->Arg(kKc);
BENCHMARK(bm_fused_pack_nt)->Arg(kKc);
BENCHMARK(bm_pack_b_n)->Arg(kKc);

BENCHMARK_MAIN();
