// Paper Fig. 12: L2 data-cache miss reduction over OpenBLAS for
// irregular-shaped NT GEMM (M = 64, N fixed, K swept), via the
// trace-driven cache simulator with the KP920 and ThunderX2 hierarchies.
//
// Expected shape: LibShalom shows the largest reduction at every K
// (paper: ~20% on KP920, a few percent on TX2) because it never packs A
// and exchanges the L2/L3 loops.
#include "bench/bench_common.h"
#include "cachesim/walkers.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  struct Strat {
    std::string name;
    int mr, nr;  // 0,0 marks LibShalom's walker
  };
  const std::vector<Strat> strategies = {
      {"BLIS*", 8, 8}, {"ARMPL*", 6, 8}, {"LibShalom", 0, 0}};

  for (const auto& mach :
       {arch::kunpeng_920(), arch::thunderx2()}) {
    std::vector<std::string> cols = {"K"};
    for (const auto& s : strategies)
      cols.push_back(s.name + " L2-miss red. %");
    for (const auto& s : strategies)
      cols.push_back(s.name + " dTLB-miss red. %");
    bench::Table table("Fig 12 (" + mach.name +
                           "): L2 + dTLB miss reduction vs OpenBLAS*, "
                           "NT M=64",
                       cols);
    for (const auto& shape : workloads::cache_miss_sweep(opt.full)) {
      // OpenBLAS* baseline: always-pack Goto with the 8x4 tile.
      const auto base = cachesim::walk_goto_nt<float>(mach, shape.m,
                                                      shape.n, shape.k, 8, 4);
      std::vector<double> l2_red, tlb_red;
      for (const auto& s : strategies) {
        const auto r =
            s.mr == 0
                ? cachesim::walk_shalom_nt<float>(mach, shape.m, shape.n,
                                                  shape.k)
                : cachesim::walk_goto_nt<float>(mach, shape.m, shape.n,
                                                shape.k, s.mr, s.nr);
        l2_red.push_back(100.0 *
                         (static_cast<double>(base.l2_misses) -
                          static_cast<double>(r.l2_misses)) /
                         static_cast<double>(base.l2_misses));
        tlb_red.push_back(100.0 *
                          (static_cast<double>(base.tlb_misses) -
                           static_cast<double>(r.tlb_misses)) /
                          static_cast<double>(base.tlb_misses));
      }
      std::vector<double> row = l2_red;
      row.insert(row.end(), tlb_red.begin(), tlb_red.end());
      table.add_row(shape.label, row, 1);
    }
    table.print(opt.csv);
  }
  return 0;
}
