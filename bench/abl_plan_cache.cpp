// Ablation (beyond the paper): what the execution-plan layer buys.
//
// For repeated small GEMMs the per-call analytic decisions (tile solve,
// blocking solve, packing predicates, partition) are a fixed overhead that
// shrinks relative to compute as the shape grows. This bench times warm
// repeated products at M=N=K <= 64 three ways:
//
//   percall  - plan cache off: full decision chain on every call
//   cached   - plan cache on (the default): decisions amortized through
//              the shape-keyed LRU cache, key hashing on every call
//   plan     - explicit plan_create once + plan_execute per call: the
//              floor, no per-call lookup at all
//
// The interesting columns are the speedups over percall; they bound how
// much of the small-GEMM envelope is decision overhead rather than math.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util/reporter.h"
#include "bench_util/runner.h"
#include "bench_util/stats.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/plan.h"
#include "core/plan_cache.h"
#include "core/shalom.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);

  const std::vector<index_t> sizes = {4, 6, 8, 12, 16, 24, 32, 48, 64};
  const struct {
    const char* label;
    Mode mode;
  } modes[] = {{"NN", {Trans::N, Trans::N}}, {"NT", {Trans::N, Trans::T}}};

  for (const auto& mc : modes) {
    bench::Table table(
        std::string("Ablation: plan layer on warm repeated small GEMM (") +
            mc.label + ", single thread), GFLOPS",
        {"shape", "percall", "cached", "plan", "cached/percall",
         "plan/percall"});

    for (index_t s : sizes) {
      const Mode mode = mc.mode;
      Matrix<float> a(s, s);  // square: same layout under either trans
      Matrix<float> b(s, s);
      Matrix<float> c(s, s);
      fill_random(a, 11);
      fill_random(b, 12);
      fill_random(c, 13);

      // Keep each timed rep around a fixed flop budget so tiny shapes are
      // timed over many calls and the clock resolution never dominates.
      const double flops = 2.0 * s * s * s;
      const int calls =
          std::max(20, static_cast<int>(2.0e7 / flops)) * (opt.full ? 4 : 1);

      Config percall_cfg;
      percall_cfg.threads = 1;
      percall_cfg.use_plan_cache = false;
      Config cached_cfg;
      cached_cfg.threads = 1;
      cached_cfg.use_plan_cache = true;

      auto run_gemm = [&](const Config& cfg) {
        for (int i = 0; i < calls; ++i) {
          gemm(mode.a, mode.b, s, s, s, 1.0f, a.data(), a.ld(), b.data(),
               b.ld(), 0.0f, c.data(), c.ld(), cfg);
        }
      };

      const GemmPlan<float> plan =
          plan_create<float>(mode, s, s, s, percall_cfg);
      auto run_plan = [&] {
        for (int i = 0; i < calls; ++i) {
          plan_execute(plan, 1.0f, a.data(), a.ld(), b.data(), b.ld(), 0.0f,
                       c.data(), c.ld());
        }
      };

      const auto t_percall = bench::time_kernel(
          [&] { run_gemm(percall_cfg); }, opt.reps, /*warm=*/true);
      const auto t_cached = bench::time_kernel(
          [&] { run_gemm(cached_cfg); }, opt.reps, /*warm=*/true);
      const auto t_plan = bench::time_kernel(run_plan, opt.reps,
                                             /*warm=*/true);

      const double g_percall = bench::gemm_gflops(
          s, s, s, t_percall.geomean_s / calls);
      const double g_cached =
          bench::gemm_gflops(s, s, s, t_cached.geomean_s / calls);
      const double g_plan =
          bench::gemm_gflops(s, s, s, t_plan.geomean_s / calls);

      const std::string label = std::to_string(s) + "^3";
      table.add_row(label,
                    {g_percall, g_cached, g_plan, g_cached / g_percall,
                     g_plan / g_percall});
    }
    table.print(opt.csv);
  }
  return 0;
}
