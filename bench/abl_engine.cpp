// Ablation (beyond the paper): what overlapping fork-join rounds buy a
// concurrent server.
//
// The PR 5 pool admitted one parallel_for round at a time: N server
// threads each issuing tiny parallel GEMMs serialized on round admission,
// so aggregate throughput was capped near a single client's. The
// work-stealing pool (core/threadpool.h) lets independent rounds overlap
// and lets the submitting thread claim its own tasks inline instead of
// blocking on a worker handoff. This bench measures exactly that contrast
// on warm small parallel GEMMs driven by 8 concurrent clients:
//
//   serialized  - SHALOM_SERIALIZE_ROUNDS compatibility mode: the PR 5
//                 one-round-at-a-time admission discipline
//   overlapped  - the default scheduler: rounds overlap, callers help
//
// Columns are aggregate GFLOPS across all clients; the last column is the
// overlap speedup (the PR 6 acceptance criterion is >= 2x on warm small
// shapes, where round admission - not math - dominates).
#include <string>
#include <thread>
#include <vector>

#include "bench_util/reporter.h"
#include "bench_util/runner.h"
#include "bench_util/stats.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "core/shalom.h"
#include "core/threadpool.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);

  const std::vector<index_t> sizes = {16, 24, 32, 48};
  constexpr int kClients = 8;
  const Mode mode{Trans::N, Trans::N};

  bench::Table table(
      "Ablation: round overlap under 8 concurrent clients (NN, warm small "
      "GEMM, threads=2 per call), aggregate GFLOPS",
      {"shape", "serialized", "overlapped", "overlapped/serialized"});

  for (index_t s : sizes) {
    // Per-client private operands: the contended resource under test is
    // the pool's round admission, not the matrices.
    std::vector<Matrix<float>> as, bs, cs;
    for (int t = 0; t < kClients; ++t) {
      as.emplace_back(s, s);
      bs.emplace_back(s, s);
      cs.emplace_back(s, s);
      fill_random(as.back(), 11 + t);
      fill_random(bs.back(), 12 + t);
      fill_random(cs.back(), 13 + t);
    }

    Config cfg;
    cfg.threads = 2;  // every call is a (tiny) fork-join round
    const double flops = 2.0 * s * s * s;
    const int calls =
        std::max(40, static_cast<int>(4.0e6 / flops)) * (opt.full ? 4 : 1);

    const auto drive_clients = [&] {
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t] {
          for (int i = 0; i < calls; ++i) {
            gemm(mode.a, mode.b, s, s, s, 1.0f, as[t].data(), as[t].ld(),
                 bs[t].data(), bs[t].ld(), 0.0f, cs[t].data(), cs[t].ld(),
                 cfg);
          }
        });
      }
      for (auto& t : clients) t.join();
    };

    ThreadPool::set_serialize_rounds_for_testing(true);
    const auto t_serial = bench::time_kernel(drive_clients, opt.reps,
                                             /*warm=*/true);
    ThreadPool::set_serialize_rounds_for_testing(false);
    const auto t_overlap = bench::time_kernel(drive_clients, opt.reps,
                                              /*warm=*/true);
    ThreadPool::clear_serialize_rounds_override();

    const double total_flops = flops * calls * kClients;
    const double g_serial = total_flops / t_serial.geomean_s * 1e-9;
    const double g_overlap = total_flops / t_overlap.geomean_s * 1e-9;
    table.add_row(std::to_string(s) + "^3",
                  {g_serial, g_overlap, g_overlap / g_serial});
  }
  table.print(opt.csv);
  return 0;
}
