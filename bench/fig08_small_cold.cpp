// Paper Fig. 8: single-threaded FP32 small GEMM from a COLD cache: the
// hierarchy is evicted before every rep.
//
// Expected shape: same ordering as Fig. 7 but compressed margins; on
// sizes that are multiples of the baselines' 8x8/8x4 kernels the
// edge-case advantage vanishes and BLASFEO-strategy ties LibShalom.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const auto& libs = baselines::all_libraries();
  const auto shapes = workloads::small_square_sizes();

  bench::run_panel<float>("Fig 8 (NN): small GEMM, cold cache, GFLOPS",
                          libs, {Trans::N, Trans::N}, shapes, 1, opt,
                          /*warm=*/false);
  bench::run_panel<float>("Fig 8 (NT): small GEMM, cold cache, GFLOPS",
                          libs, {Trans::N, Trans::T}, shapes, 1, opt,
                          false);
  return 0;
}
