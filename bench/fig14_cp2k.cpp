// Paper Fig. 14: FP64 small GEMM kernels from the CP2K molecular dynamics
// package (block sizes 5x5x5 .. 26x26x13), single-threaded, all six
// libraries.
//
// Expected shape: LibShalom leads every size; the margin is largest at
// 5x5x5 (paper: up to 2x over LIBXSMM).
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  bench::run_panel<double>(
      "Fig 14: CP2K FP64 small GEMM kernels, single thread, GFLOPS",
      baselines::all_libraries(), {Trans::N, Trans::N},
      workloads::cp2k_sizes(), /*threads=*/1, opt);
  return 0;
}
