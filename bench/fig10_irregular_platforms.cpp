// Paper Fig. 10: irregular-shaped GEMM on KP920 and ThunderX2 under NN
// and NT modes (K = 5000, all cores).
//
// Measured panels run on the host; the modeled panels use the analytic
// machine model (src/perfmodel) with the KP920 and ThunderX2 descriptors
// to produce the cross-platform shape the paper reports (LibShalom 1.6x /
// 1.3x over the best baseline on average; NT faster than NN for LibShalom
// because packed-B access is contiguous along K).
#include "bench/bench_common.h"
#include "perfmodel/perfmodel.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  const auto& libs = baselines::parallel_libraries();
  const auto shapes = workloads::irregular_platform_sizes(opt.full);

  bench::run_panel<float>(
      "Fig 10 (measured, host): irregular NN GEMM, all cores, GFLOPS", libs,
      {Trans::N, Trans::N}, shapes, 0, opt);
  bench::run_panel<float>(
      "Fig 10 (measured, host): irregular NT GEMM, all cores, GFLOPS", libs,
      {Trans::N, Trans::T}, shapes, 0, opt);

  // Modeled cross-platform panels (paper machines, full-size shapes).
  for (const auto& mach : arch::paper_machines()) {
    if (mach.name == "Phytium 2000+") continue;  // Fig. 9 covers Phytium
    for (Trans tb : {Trans::N, Trans::T}) {
      std::vector<std::string> cols = {"shape"};
      for (const auto& strat : perfmodel::modeled_strategies())
        cols.push_back(strat.name);
      bench::Table table("Fig 10 (modeled, " + mach.name + ", " +
                             (tb == Trans::N ? "NN" : "NT") +
                             "): irregular GEMM, all cores, GFLOPS",
                         cols);
      for (const auto& s : workloads::irregular_platform_sizes(true)) {
        std::vector<double> row;
        for (const auto& strat : perfmodel::modeled_strategies())
          row.push_back(perfmodel::predict_gflops<float>(
              mach, strat, {Trans::N, tb}, s.m, s.n, s.k, mach.cores));
        table.add_row(s.label, row);
      }
      table.print(opt.csv);
    }
  }
  return 0;
}
