// Ablation (beyond the paper): sensitivity of the packing decision.
//
// DESIGN.md calls out the L1-resident-B predicate (Section 4.2) as a
// design choice. This bench sweeps square and skinny shapes around the L1
// boundary, comparing never-pack / always-pack(sequential) / LibShalom's
// selective+fused policy. The selective policy should match never-pack
// below the threshold and always-pack above it - i.e. pay no penalty on
// either side.
#include "bench/bench_common.h"
#include "core/shalom.h"

int main(int argc, char** argv) {
  using namespace shalom;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_scale_note(opt);

  auto shalom_with = [](Config cfg) {
    return [cfg](Mode m, index_t M, index_t N, index_t K, float al,
                 const float* A, index_t lda, const float* B, index_t ldb,
                 float be, float* C, index_t ldc, int) {
      gemm_serial(m, M, N, K, al, A, lda, B, ldb, be, C, ldc, cfg);
    };
  };

  // Never pack: run the no-pack path regardless of size by disabling
  // packing outright via a huge fake L1.
  static arch::MachineDescriptor huge_l1 = arch::host_machine();
  huge_l1.l1d.size_bytes = 1ull << 40;
  Config never;
  never.machine = &huge_l1;

  Config always;
  always.selective_packing = false;
  always.fused_packing = false;

  Config selective;  // defaults

  baselines::Library never_lib{"never-pack", shalom_with(never), nullptr,
                               false, false};
  baselines::Library always_lib{"always-pack", shalom_with(always), nullptr,
                                false, false};
  baselines::Library sel_lib{"selective+fused", shalom_with(selective),
                             nullptr, false, false};
  const std::vector<const baselines::Library*> libs = {
      &never_lib, &always_lib, &sel_lib};

  std::vector<workloads::GemmShape> shapes;
  for (index_t n : {32, 64, 96, 128, 192, 256, 512, 1024})
    shapes.push_back({"64x" + std::to_string(n) + "x64", 64, n, 64});
  for (index_t k : {64, 128, 256, 512, 1024})
    shapes.push_back({"32x256x" + std::to_string(k), 32, 256, k});

  bench::run_panel<float>(
      "Ablation: packing decision threshold (NN, single thread), GFLOPS",
      libs, {Trans::N, Trans::N}, shapes, 1, opt);
  return 0;
}
