// Ablation (beyond the paper): the CMR-optimal partition (Eq. 3/4) vs
// naive 1-D splits, evaluated on the partition's own terms.
//
// For irregular shapes, prints each scheme's per-thread block shape, its
// block CMR (Eq. 3), the work imbalance, and the fraction of C covered by
// edge tiles - the quantities Section 6 argues about. The solver should
// dominate 1-D column/row splits on skinny matrices, and the modeled
// GFLOPS (perfmodel) quantify the gap on a 64-core machine.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/model.h"
#include "perfmodel/perfmodel.h"

namespace {

using namespace shalom;

struct SchemeEval {
  int tm, tn;
};

double block_cmr(double m, double n) { return m * n / (m + n); }

void eval(const char* name, index_t M, index_t N, int tm, int tn,
          const model::Tile& tile, bench::Table& table) {
  const double mb = static_cast<double>(M) / tm;
  const double nb = static_cast<double>(N) / tn;
  const double mb_worst = std::ceil(static_cast<double>(M) / tm);
  const double nb_worst = std::ceil(static_cast<double>(N) / tn);
  const double imbalance = (mb_worst * nb_worst) / (mb * nb) - 1.0;
  const double full_m = std::floor(mb / tile.mr) * tile.mr;
  const double full_n = std::floor(nb / tile.nr) * tile.nr;
  const double edge_frac =
      1.0 - (mb > 0 && nb > 0 ? (full_m / mb) * (full_n / nb) : 0.0);
  table.add_row(name,
                {static_cast<double>(tm), static_cast<double>(tn),
                 block_cmr(mb, nb), 100.0 * imbalance, 100.0 * edge_frac});
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::BenchOptions::parse(argc, argv);
  (void)opt;
  const int threads = 64;  // the paper's Phytium 2000+ core count
  const model::Tile tile{7, 12};

  for (auto [M, N] : {std::pair<index_t, index_t>{32, 10240},
                      {64, 10240},
                      {2048, 256},
                      {64, 50176}}) {
    bench::Table table(
        "Ablation: partition schemes for M=" + std::to_string(M) +
            " N=" + std::to_string(N) + ", T=64",
        {"scheme", "Tm", "Tn", "block CMR", "imbalance %", "edge-tile %"});
    const auto p = model::solve_partition(threads, M, N, tile);
    eval("CMR-optimal (Eq.4)", M, N, p.tm, p.tn, tile, table);
    eval("1-D columns", M, N, 1, threads, tile, table);
    eval("1-D rows", M, N, threads, 1, tile, table);
    eval("square 8x8", M, N, 8, 8, tile, table);
    table.print(opt.csv);

    // Modeled end-to-end effect on KP920.
    const auto mach = arch::kunpeng_920();
    const auto& strat = perfmodel::modeled_strategies().back();
    std::printf("modeled LibShalom GFLOPS on %s at T=64: %.0f\n\n",
                mach.name.c_str(),
                perfmodel::predict_gflops<float>(
                    mach, strat, {Trans::N, Trans::T}, M, N, 5000, 64));
  }
  return 0;
}
