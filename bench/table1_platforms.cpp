// Paper Table 1: hardware evaluation platforms.
//
// Prints the machine descriptors of the three ARMv8 platforms plus the
// detected reproduction host, including the derived FP32 peak the other
// benches normalize against.
#include <cstdio>

#include "arch/machine.h"
#include "bench_util/peak.h"
#include "bench_util/reporter.h"

int main() {
  using namespace shalom;

  bench::Table table("Table 1: evaluation platforms",
                     {"platform", "peak FP32 GFLOPS", "cores", "freq GHz",
                      "L1d KB", "L2 KB", "L3 MB"});

  auto add = [&](const arch::MachineDescriptor& m) {
    table.add_row({m.name, bench::fmt(m.peak_gflops<float>(), 1),
                   std::to_string(m.cores), bench::fmt(m.frequency_ghz, 1),
                   std::to_string(m.l1d.size_bytes / 1024),
                   std::to_string(m.l2.size_bytes / 1024),
                   m.l3.present()
                       ? std::to_string(m.l3.size_bytes / (1024 * 1024))
                       : "None"});
  };
  for (const auto& m : arch::paper_machines()) add(m);
  add(arch::host_machine());
  table.print();

  std::printf("host calibrated single-core peak: %.1f GFLOPS FP32, "
              "%.1f GFLOPS FP64\n",
              bench::calibrated_peak_gflops_f32(),
              bench::calibrated_peak_gflops_f64());
  return 0;
}
