// Tests for the auto-tuner: the search must return a valid, correct
// configuration, include the model's default among candidates, and never
// regress below it.
#include <gtest/gtest.h>

#include "core/shalom.h"
#include "tests/test_util.h"
#include "tuning/autotune.h"

namespace shalom::tuning {
namespace {

TEST(Autotune, ReturnsValidConfigAndCandidates) {
  TuneOptions opt;
  opt.reps = 1;
  opt.scales = {0.5, 1.0, 2.0};
  const TuneResult r =
      tune<float>({Trans::N, Trans::N}, 64, 256, 128, {}, opt);

  EXPECT_GT(r.best_gflops, 0.0);
  EXPECT_GT(r.model_gflops, 0.0);
  // best-first ordering; the model default is candidate #0 in the list
  // before sorting, so it must appear somewhere.
  ASSERT_GE(r.candidates.size(), 3u);
  for (std::size_t i = 1; i < r.candidates.size(); ++i)
    EXPECT_GE(r.candidates[i - 1].gflops, r.candidates[i].gflops);
  // The returned best can never be below the model's measurement.
  EXPECT_GE(r.best_gflops, r.model_gflops * 0.999);
  EXPECT_GE(r.gain(), 0.999);
}

TEST(Autotune, TunedConfigComputesCorrectly) {
  TuneOptions opt;
  opt.reps = 1;
  opt.scales = {0.5, 1.0};
  const TuneResult r =
      tune<float>({Trans::N, Trans::T}, 40, 300, 200, {}, opt);

  testing::Problem<float> p({Trans::N, Trans::T}, 40, 300, 200);
  gemm(Trans::N, Trans::T, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), r.config);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("tuned config");
}

TEST(Autotune, OverridesAreHonouredAndRounded) {
  // A pathological kc override must still give correct results (rounding
  // and clamping happen in the driver).
  Config cfg;
  cfg.kc_override = 7;    // tiny
  cfg.mc_override = 1;    // below mr: rounded up to one tile
  cfg.nc_override = 1000;
  testing::Problem<float> p({Trans::N, Trans::N}, 50, 120, 90);
  gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("override config");
}

}  // namespace
}  // namespace shalom::tuning
