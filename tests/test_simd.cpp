// Unit tests for the 128-bit SIMD layer: every operation is checked
// against scalar arithmetic, including all lane indices of the
// lane-broadcast FMA that the micro-kernels are built on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "simd/vec128.h"

namespace shalom::simd {
namespace {

TEST(SimdF32, LoadStoreRoundTrip) {
  const float src[4] = {1.5f, -2.25f, 3.75f, 0.f};
  float dst[4] = {};
  store(dst, load(src));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(src[i], dst[i]);
}

TEST(SimdF32, Broadcast) {
  const f32x4 v = broadcast(7.25f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(extract(v, i), 7.25f);
}

TEST(SimdF32, ZeroIsZero) {
  const f32x4 v = zero_f32x4();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(extract(v, i), 0.f);
}

TEST(SimdF32, AddMul) {
  const float x[4] = {1, 2, 3, 4}, y[4] = {10, 20, 30, 40};
  const f32x4 s = add(load(x), load(y));
  const f32x4 p = mul(load(x), load(y));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(extract(s, i), x[i] + y[i]);
    EXPECT_EQ(extract(p, i), x[i] * y[i]);
  }
}

TEST(SimdF32, Fmadd) {
  const float acc[4] = {1, 1, 1, 1}, x[4] = {2, 3, 4, 5},
              y[4] = {10, 10, 10, 10};
  const f32x4 r = fmadd(load(acc), load(x), load(y));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(extract(r, i), acc[i] + x[i] * y[i]);
}

TEST(SimdF32, FmaddLaneAllLanes) {
  const float a[4] = {2, 3, 5, 7};
  const float b[4] = {1, 10, 100, 1000};
  const float acc0[4] = {0.5f, 0.5f, 0.5f, 0.5f};
  auto check = [&](auto lane_c, float lane_val) {
    const f32x4 r =
        fmadd_lane<lane_c()>(load(acc0), load(a), load(b));
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(extract(r, i), acc0[i] + lane_val * b[i]) << "lane "
                                                          << lane_c();
  };
  check([] { return 0; }, 2.f);
  check([] { return 1; }, 3.f);
  check([] { return 2; }, 5.f);
  check([] { return 3; }, 7.f);
}

TEST(SimdF32, ReduceAdd) {
  const float x[4] = {1.5f, 2.5f, -3.f, 10.f};
  EXPECT_FLOAT_EQ(reduce_add(load(x)), 11.f);
}

TEST(SimdF32, PartialLoadZeroFills) {
  const float src[3] = {5, 6, 7};
  for (int count = 1; count <= 3; ++count) {
    const f32x4 v = load_partial(src, count);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(extract(v, i), i < count ? src[i] : 0.f);
  }
}

TEST(SimdF32, PartialStoreLeavesTailUntouched) {
  const float src[4] = {1, 2, 3, 4};
  for (int count = 1; count <= 3; ++count) {
    float dst[4] = {-9, -9, -9, -9};
    store_partial(dst, load(src), count);
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(dst[i], i < count ? src[i] : -9.f);
  }
}

TEST(SimdF64, LoadStoreRoundTrip) {
  const double src[2] = {1.25, -7.5};
  double dst[2] = {};
  store(dst, load(src));
  EXPECT_EQ(dst[0], src[0]);
  EXPECT_EQ(dst[1], src[1]);
}

TEST(SimdF64, FmaddAndLanes) {
  const double acc[2] = {1, 2}, a[2] = {3, 4}, b[2] = {10, 20};
  const f64x2 r = fmadd(load(acc), load(a), load(b));
  EXPECT_EQ(extract(r, 0), 31.0);
  EXPECT_EQ(extract(r, 1), 82.0);

  const f64x2 l0 = fmadd_lane<0>(load(acc), load(a), load(b));
  EXPECT_EQ(extract(l0, 0), 1 + 3 * 10.0);
  EXPECT_EQ(extract(l0, 1), 2 + 3 * 20.0);
  const f64x2 l1 = fmadd_lane<1>(load(acc), load(a), load(b));
  EXPECT_EQ(extract(l1, 0), 1 + 4 * 10.0);
  EXPECT_EQ(extract(l1, 1), 2 + 4 * 20.0);
}

TEST(SimdF64, ReduceAndPartials) {
  const double x[2] = {3.5, -1.25};
  EXPECT_DOUBLE_EQ(reduce_add(load(x)), 2.25);

  const double src[1] = {42.0};
  const f64x2 v = load_partial(src, 1);
  EXPECT_EQ(extract(v, 0), 42.0);
  EXPECT_EQ(extract(v, 1), 0.0);

  double dst[2] = {-1, -1};
  store_partial(dst, v, 1);
  EXPECT_EQ(dst[0], 42.0);
  EXPECT_EQ(dst[1], -1.0);
}

TEST(Simd, VecOfSelectsWidth) {
  static_assert(vec_of_t<float>::kLanes == 4);
  static_assert(vec_of_t<double>::kLanes == 2);
  EXPECT_STRNE(backend_name(), "");
}

TEST(Simd, FmaddSingleRounding) {
  // FMA semantics: acc + a*b with a single rounding. std::fma is the
  // oracle; a separate mul+add would differ on these operands.
  const double a = 1.0 + 0x1p-30, b = 1.0 - 0x1p-31, acc = -1.0;
  const f64x2 r = fmadd(broadcast(acc), broadcast(a), broadcast(b));
  EXPECT_EQ(extract(r, 0), std::fma(a, b, acc));

  const float af = 1.0f + 0x1p-12f, bf = 1.0f - 0x1p-11f, accf = -1.0f;
  const f32x4 rf = fmadd(broadcast(accf), broadcast(af), broadcast(bf));
  EXPECT_EQ(extract(rf, 0), std::fmaf(af, bf, accf));
}

}  // namespace
}  // namespace shalom::simd
