// Tests for the analytic performance model: physical bounds, limiting
// behaviour, and the qualitative orderings the paper's figures rest on.
#include <gtest/gtest.h>

#include "perfmodel/perfmodel.h"

namespace shalom::perfmodel {
namespace {

const Strategy& shalom_strategy() { return modeled_strategies().back(); }
const Strategy& openblas_strategy() { return modeled_strategies().front(); }

TEST(PerfModel, StrategiesMatchRegistryOrder) {
  const auto& s = modeled_strategies();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].name, "OpenBLAS*");
  EXPECT_EQ(s[3].name, "LibShalom");
}

TEST(PerfModel, PredictionsAreBoundedByPeak) {
  for (const auto& mach : arch::paper_machines()) {
    for (const auto& s : modeled_strategies()) {
      for (int t : {1, 8, mach.cores}) {
        const double g = predict_gflops<float>(
            mach, s, {Trans::N, Trans::T}, 64, 50176, 576, t);
        EXPECT_GT(g, 0.0) << mach.name << " " << s.name;
        EXPECT_LE(g, mach.peak_gflops<float>() + 1e-9)
            << mach.name << " " << s.name << " t=" << t;
      }
    }
  }
}

TEST(PerfModel, SpeedupIsOneAtOneThread) {
  const auto mach = arch::kunpeng_920();
  for (const auto& s : modeled_strategies())
    EXPECT_DOUBLE_EQ(predict_speedup<float>(mach, s, {Trans::N, Trans::T},
                                            64, 50176, 576, 1),
                     1.0);
}

TEST(PerfModel, ShalomLeadsOnIrregularShapes) {
  // The Fig. 9/10 ordering: LibShalom above every baseline for
  // tall-and-skinny problems, serial and parallel.
  for (const auto& mach : arch::paper_machines()) {
    for (index_t m : {32, 64, 128}) {
      for (int t : {1, mach.cores}) {
        const double shal = predict_gflops<float>(
            mach, shalom_strategy(), {Trans::N, Trans::T}, m, 10240, 5000,
            t);
        for (const auto& s : modeled_strategies()) {
          if (s.name == "LibShalom") continue;
          const double other = predict_gflops<float>(
              mach, s, {Trans::N, Trans::T}, m, 10240, 5000, t);
          EXPECT_GT(shal, other)
              << mach.name << " vs " << s.name << " M=" << m << " t=" << t;
        }
      }
    }
  }
}

TEST(PerfModel, ScalabilityShapeMatchesPaper) {
  // Fig. 11: on the VGG kernel, LibShalom's modeled speedup at full core
  // count exceeds every baseline's and is substantial (paper: 49x/82x/35x
  // relative to 1-thread OpenBLAS; here we assert the ordering and that
  // scaling is strong, not the absolute constants).
  for (const auto& mach : arch::paper_machines()) {
    const double base1 = predict_gflops<float>(
        mach, openblas_strategy(), {Trans::N, Trans::T}, 64, 50176, 576, 1);
    const double shal_full =
        predict_gflops<float>(mach, shalom_strategy(), {Trans::N, Trans::T},
                              64, 50176, 576, mach.cores);
    const double shal_speedup = shal_full / base1;
    EXPECT_GT(shal_speedup, mach.cores / 4.0) << mach.name;
    for (const auto& s : modeled_strategies()) {
      const double other = predict_gflops<float>(
          mach, s, {Trans::N, Trans::T}, 64, 50176, 576, mach.cores);
      EXPECT_GE(shal_full, other) << mach.name << " " << s.name;
    }
  }
}

TEST(PerfModel, MoreComputeCapableMachineIsFaster) {
  // KP920 (2662 GFLOPS peak) must dominate Phytium (1126) at scale.
  const double kp = predict_gflops<float>(arch::kunpeng_920(),
                                          shalom_strategy(),
                                          {Trans::N, Trans::T}, 64, 50176,
                                          576, 64);
  const double ph = predict_gflops<float>(arch::phytium_2000p(),
                                          shalom_strategy(),
                                          {Trans::N, Trans::T}, 64, 50176,
                                          576, 64);
  EXPECT_GT(kp, ph);
}

TEST(PerfModel, ColumnPartitionHurtsSkinnyN) {
  // A 1-D column split on tiny N leaves threads with sub-tile slices;
  // the CMR-optimal scheme must win clearly there.
  const auto mach = arch::kunpeng_920();
  const double shal = predict_gflops<float>(
      mach, shalom_strategy(), {Trans::N, Trans::N}, 10240, 64, 5000, 64);
  const double ob = predict_gflops<float>(
      mach, openblas_strategy(), {Trans::N, Trans::N}, 10240, 64, 5000, 64);
  EXPECT_GT(shal, 2.0 * ob);
}

}  // namespace
}  // namespace shalom::perfmodel
