// Shared helpers for the test suite: operand construction for a GEMM mode
// and tolerance-aware comparison against the naive oracle.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.h"
#include "common/rng.h"
#include "core/types.h"

namespace shalom::testing {

/// Absolute tolerance for a dot product of length K of values in [0, 1).
template <typename T>
double gemm_tolerance(index_t k) {
  const double eps = std::is_same_v<T, float> ? 1e-6 : 1e-14;
  return (static_cast<double>(k) + 16.0) * eps;
}

/// Operand bundle for one GEMM problem; A/B shaped per the mode, C filled
/// randomly so beta paths are exercised.
template <typename T>
struct Problem {
  Mode mode;
  index_t m, n, k;
  Matrix<T> a, b, c, c_ref;

  Problem(Mode mode_, index_t m_, index_t n_, index_t k_,
          index_t pad_a = 0, index_t pad_b = 0, index_t pad_c = 0)
      : mode(mode_),
        m(m_),
        n(n_),
        k(k_),
        a((mode.a == Trans::N) ? m : k,
          ((mode.a == Trans::N) ? k : m) + pad_a,
          ((mode.a == Trans::N) ? k : m) + pad_a),
        b((mode.b == Trans::N) ? k : n,
          ((mode.b == Trans::N) ? n : k) + pad_b,
          ((mode.b == Trans::N) ? n : k) + pad_b),
        c(m, n + pad_c, n + pad_c),
        c_ref(m, n + pad_c, n + pad_c) {
    // Note: pad_* widen the leading dimension past the logical width.
    fill_random(a, 0xA + m * 131 + n * 7 + k);
    fill_random(b, 0xB + m + n * 31 + k * 17);
    fill_random(c, 0xC + m + n + k);
    c_ref = c;
  }

  index_t a_cols() const { return (mode.a == Trans::N) ? k : m; }
  index_t b_cols() const { return (mode.b == Trans::N) ? n : k; }

  /// Computes the oracle result into c_ref.
  void run_reference(T alpha, T beta) {
    baselines::naive_gemm(mode, m, n, k, alpha, a.data(), a.ld(), b.data(),
                          b.ld(), beta, c_ref.data(), c_ref.ld());
  }

  /// Asserts c == c_ref element-wise within tolerance.
  void expect_matches(const char* context) const {
    const double tol = gemm_tolerance<T>(k);
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        ASSERT_NEAR(c(i, j), c_ref(i, j), tol)
            << context << " at (" << i << "," << j << ") m=" << m
            << " n=" << n << " k=" << k << " mode="
            << (mode.a == Trans::N ? "N" : "T")
            << (mode.b == Trans::N ? "N" : "T");
      }
    }
  }
};

inline const Mode kAllModes[] = {
    {Trans::N, Trans::N},
    {Trans::N, Trans::T},
    {Trans::T, Trans::N},
    {Trans::T, Trans::T},
};

}  // namespace shalom::testing
