// Tests for the batched small-GEMM API: correctness against per-entry
// oracles, variable shapes in one batch, serial/parallel equivalence.
#include <gtest/gtest.h>

#include <memory>

#include "core/batch.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

/// Batch of heterogeneous problems with oracle results.
template <typename T>
struct BatchProblems {
  std::vector<std::unique_ptr<testing::Problem<T>>> problems;
  std::vector<BatchEntry<T>> entries;

  BatchProblems(Mode mode, std::initializer_list<std::array<index_t, 3>>
                               shapes,
                T alpha, T beta) {
    for (const auto& [m, n, k] : shapes) {
      problems.push_back(
          std::make_unique<testing::Problem<T>>(mode, m, n, k));
      auto& p = *problems.back();
      entries.push_back({p.m, p.n, p.k, alpha, p.a.data(), p.a.ld(),
                         p.b.data(), p.b.ld(), beta, p.c.data(), p.c.ld()});
      p.run_reference(alpha, beta);
    }
  }

  void expect_all_match(const char* ctx) {
    for (auto& p : problems) p->expect_matches(ctx);
  }
};

TEST(GemmBatch, UniformSmallBlocks) {
  BatchProblems<double> batch({Trans::N, Trans::N},
                              {{5, 5, 5}, {5, 5, 5}, {5, 5, 5}}, 1.0, 1.0);
  gemm_batch({Trans::N, Trans::N}, batch.entries);
  batch.expect_all_match("uniform batch");
}

TEST(GemmBatch, VariableShapesAndModes) {
  for (Mode mode : testing::kAllModes) {
    BatchProblems<float> batch(
        mode, {{5, 5, 5}, {13, 13, 13}, {23, 23, 23}, {8, 24, 16}, {1, 1, 1}},
        1.5f, 0.5f);
    gemm_batch(mode, batch.entries);
    batch.expect_all_match("variable batch");
  }
}

TEST(GemmBatch, ParallelMatchesSerial) {
  std::initializer_list<std::array<index_t, 3>> shapes = {
      {8, 8, 8},   {16, 16, 16}, {23, 23, 23}, {8, 8, 8},
      {12, 7, 9},  {30, 20, 10}, {5, 5, 5},    {64, 8, 32},
  };
  BatchProblems<float> serial({Trans::N, Trans::N}, shapes, 1.f, 0.f);
  BatchProblems<float> parallel({Trans::N, Trans::N}, shapes, 1.f, 0.f);

  gemm_batch({Trans::N, Trans::N}, serial.entries);
  Config cfg;
  cfg.threads = 4;
  gemm_batch({Trans::N, Trans::N}, parallel.entries, cfg);

  serial.expect_all_match("serial batch");
  parallel.expect_all_match("parallel batch");
}

TEST(GemmBatch, EmptyBatchIsNoOp) {
  std::vector<BatchEntry<float>> empty;
  gemm_batch({Trans::N, Trans::N}, empty);  // must not crash
}

TEST(GemmBatch, MoreThreadsThanEntries) {
  BatchProblems<float> batch({Trans::N, Trans::T}, {{9, 9, 9}, {7, 7, 7}},
                             1.f, 0.f);
  Config cfg;
  cfg.threads = 16;
  gemm_batch({Trans::N, Trans::T}, batch.entries, cfg);
  batch.expect_all_match("overprovisioned batch");
}

}  // namespace
}  // namespace shalom
