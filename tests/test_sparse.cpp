// Tests for the block-sparse substrate: BSR construction invariants,
// dense round-trips, and spmm correctness against dense GEMM across
// densities, block sizes and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/naive.h"
#include "common/rng.h"
#include "sparse/spmm.h"

namespace shalom::sparse {
namespace {

TEST(Bsr, PatternConstruction) {
  auto m = BsrMatrix<float>::from_pattern(
      3, 4, 2, 2, {{0, 1}, {2, 3}, {0, 0}, {2, 0}, {0, 1}});  // dup ignored
  EXPECT_EQ(m.rows(), 6);
  EXPECT_EQ(m.cols(), 8);
  EXPECT_EQ(m.nnz_blocks(), 4);
  EXPECT_EQ(m.row_end(0) - m.row_begin(0), 2);  // (0,0), (0,1)
  EXPECT_EQ(m.row_end(1) - m.row_begin(1), 0);
  EXPECT_EQ(m.row_end(2) - m.row_begin(2), 2);
  // Columns sorted within a row.
  EXPECT_EQ(m.block_col(m.row_begin(0)), 0);
  EXPECT_EQ(m.block_col(m.row_begin(0) + 1), 1);
}

TEST(Bsr, RejectsOutOfRangeBlocks) {
  EXPECT_THROW(BsrMatrix<float>::from_pattern(2, 2, 3, 3, {{2, 0}}),
               invalid_argument);
}

TEST(Bsr, DenseRoundTrip) {
  auto m = BsrMatrix<double>::random(4, 5, 3, 2, 0.5, 42);
  const Matrix<double> dense = m.to_dense();
  EXPECT_EQ(dense.rows(), 12);
  EXPECT_EQ(dense.cols(), 10);
  // Every stored block matches the dense image; absent blocks are zero.
  index_t nonzero = 0;
  for (index_t i = 0; i < dense.rows(); ++i)
    for (index_t j = 0; j < dense.cols(); ++j) nonzero += dense(i, j) != 0;
  EXPECT_GT(nonzero, 0);
  EXPECT_LE(nonzero, m.nnz_blocks() * 3 * 2);
}

TEST(Bsr, DensityIsApproximate) {
  auto m = BsrMatrix<float>::random(40, 40, 5, 5, 0.3, 7);
  EXPECT_NEAR(m.block_density(), 0.3, 0.1);
}

class SpmmSweep : public ::testing::TestWithParam<
                      std::tuple<double, std::pair<int, int>, int>> {};

TEST_P(SpmmSweep, MatchesDenseGemm) {
  const auto [density, block, threads] = GetParam();
  const auto [br, bc] = block;
  const index_t brows = 7, bcols = 6, n = 33;

  auto a = BsrMatrix<float>::random(brows, bcols, br, bc, density, 99);
  Matrix<float> b(a.cols(), n);
  Matrix<float> c(a.rows(), n), c_ref(a.rows(), n);
  fill_random(b, 1);
  fill_random(c, 2);
  c_ref = c;

  Config cfg;
  cfg.threads = threads;
  spmm(1.5f, a, b.data(), b.ld(), 0.5f, c.data(), c.ld(), n, cfg);

  const Matrix<float> dense = a.to_dense();
  baselines::naive_gemm({Trans::N, Trans::N}, a.rows(), n, a.cols(), 1.5f,
                        dense.data(), dense.ld(), b.data(), b.ld(), 0.5f,
                        c_ref.data(), c_ref.ld());

  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < n; ++j)
      ASSERT_NEAR(c(i, j), c_ref(i, j), 1e-3f)
          << "density=" << density << " block=" << br << "x" << bc
          << " threads=" << threads << " at (" << i << "," << j << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SpmmSweep,
    ::testing::Combine(::testing::Values(0.05, 0.3, 1.0),
                       ::testing::Values(std::pair<int, int>{5, 5},
                                         std::pair<int, int>{8, 8},
                                         std::pair<int, int>{7, 12},
                                         std::pair<int, int>{23, 23}),
                       ::testing::Values(1, 4)));

TEST(Spmm, BetaZeroOverwrites) {
  auto a = BsrMatrix<float>::random(3, 3, 4, 4, 0.5, 5);
  Matrix<float> b(a.cols(), 8), c(a.rows(), 8);
  fill_random(b, 1);
  c.fill(std::numeric_limits<float>::quiet_NaN());
  spmm(1.f, a, b.data(), b.ld(), 0.f, c.data(), c.ld(), index_t{8});
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < 8; ++j) EXPECT_FALSE(std::isnan(c(i, j)));
}

TEST(Spmm, EmptyRowsOnlyScaleC) {
  auto a = BsrMatrix<float>::from_pattern(3, 3, 2, 2, {{1, 1}});
  Matrix<float> b(a.cols(), 4), c(a.rows(), 4);
  fill_random(b, 1);
  c.fill(2.f);
  spmm(1.f, a, b.data(), b.ld(), 0.5f, c.data(), c.ld(), index_t{4});
  EXPECT_EQ(c(0, 0), 1.f);  // block row 0 empty: pure beta scale
  EXPECT_EQ(c(5, 3), 1.f);  // block row 2 empty
}

}  // namespace
}  // namespace shalom::sparse
