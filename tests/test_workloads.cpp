// Tests for the workload generators: the shape lists must match the
// paper's specifications, and the im2col lowering must agree with a
// direct convolution when composed with GEMM.
#include <gtest/gtest.h>

#include "core/shalom.h"
#include "common/rng.h"
#include "workloads/im2col.h"
#include "workloads/sizes.h"

namespace shalom::workloads {
namespace {

TEST(Sizes, SmallSquareMatchesPaper) {
  const auto v = small_square_sizes();
  ASSERT_EQ(v.size(), 15u);  // 8..120 step 8
  EXPECT_EQ(v.front().m, 8);
  EXPECT_EQ(v.back().m, 120);
  for (const auto& s : v) {
    EXPECT_EQ(s.m, s.n);
    EXPECT_EQ(s.n, s.k);
    EXPECT_EQ(s.m % 8, 0);
  }
}

TEST(Sizes, Cp2kMatchesPaperLabels) {
  const auto v = cp2k_sizes();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0].label, "5x5x5");
  EXPECT_EQ(v[4].label, "26x26x13");
  EXPECT_EQ(v[1].m, 13);
  EXPECT_EQ(v[1].n, 5);
  EXPECT_EQ(v[1].k, 13);
}

TEST(Sizes, Vgg16FullMatchesPaper) {
  const auto v = vgg16_layers(/*full=*/true);
  ASSERT_EQ(v.size(), 5u);
  const index_t m[] = {64, 128, 256, 512, 512};
  const index_t n[] = {50176, 12544, 3136, 784, 196};
  const index_t k[] = {576, 1152, 2304, 4608, 4608};
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i].m, m[i]) << i;
    EXPECT_EQ(v[i].n, n[i]) << i;
    EXPECT_EQ(v[i].k, k[i]) << i;
  }
}

TEST(Sizes, ScaledVariantsAreSmallerButSameFamily) {
  const auto scaled = irregular_sweep_m(false);
  const auto full = irregular_sweep_m(true);
  EXPECT_EQ(scaled.size(), full.size());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    EXPECT_EQ(scaled[i].m, full[i].m);  // M values are the paper's
    EXPECT_LE(scaled[i].n, full[i].n);
    EXPECT_LE(scaled[i].k, full[i].k);
  }
}

TEST(Sizes, CacheMissSweepRange) {
  const auto v = cache_miss_sweep(true);
  EXPECT_EQ(v.front().k, 576);
  EXPECT_EQ(v.back().k, 3744 - (3744 - 576) % 128);
  for (const auto& s : v) EXPECT_EQ(s.m, 64);
}

TEST(ConvSpec, GemmDimensionsMatchVgg) {
  // VGG conv1.2: 64 channels in/out, 224x224, 3x3 pad 1 -> the paper's
  // 64 x 50176 x 576 GEMM.
  ConvSpec spec;
  spec.in_channels = 64;
  spec.out_channels = 64;
  spec.height = 224;
  spec.width = 224;
  EXPECT_EQ(spec.gemm_m(), 64);
  EXPECT_EQ(spec.gemm_n(), 50176);
  EXPECT_EQ(spec.gemm_k(), 576);
}

TEST(Im2col, GemmComposesToDirectConvolution) {
  ConvSpec spec;
  spec.in_channels = 3;
  spec.out_channels = 5;
  spec.height = 9;
  spec.width = 7;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;

  const index_t m = spec.gemm_m(), n = spec.gemm_n(), k = spec.gemm_k();
  Matrix<float> image(spec.in_channels, spec.height * spec.width);
  Matrix<float> weights(m, k);  // [co][ci*r*s]
  fill_random(image, 3);
  fill_random(weights, 4);

  Matrix<float> lowered(k, n);
  im2col(spec, image.data(), lowered.data());

  Matrix<float> out_gemm(m, n);
  gemm(Trans::N, Trans::N, m, n, k, 1.0f, weights.data(), weights.ld(),
       lowered.data(), lowered.ld(), 0.0f, out_gemm.data(), out_gemm.ld());

  Matrix<float> out_direct(m, n);
  conv2d_reference(spec, image.data(), weights.data(), out_direct.data());

  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j)
      ASSERT_NEAR(out_gemm(i, j), out_direct(i, j), 1e-4f)
          << "(" << i << "," << j << ")";
}

TEST(Im2col, StrideTwoAndNoPadding) {
  ConvSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 0;
  EXPECT_EQ(spec.out_height(), 3);
  EXPECT_EQ(spec.out_width(), 3);

  Matrix<float> image(spec.in_channels, spec.height * spec.width);
  Matrix<float> weights(spec.gemm_m(), spec.gemm_k());
  fill_random(image, 5);
  fill_random(weights, 6);

  Matrix<float> lowered(spec.gemm_k(), spec.gemm_n());
  im2col(spec, image.data(), lowered.data());
  Matrix<float> out_gemm(spec.gemm_m(), spec.gemm_n());
  gemm(Trans::N, Trans::N, spec.gemm_m(), spec.gemm_n(), spec.gemm_k(),
       1.0f, weights.data(), weights.ld(), lowered.data(), lowered.ld(),
       0.0f, out_gemm.data(), out_gemm.ld());
  Matrix<float> out_direct(spec.gemm_m(), spec.gemm_n());
  conv2d_reference(spec, image.data(), weights.data(), out_direct.data());
  for (index_t i = 0; i < spec.gemm_m(); ++i)
    for (index_t j = 0; j < spec.gemm_n(); ++j)
      ASSERT_NEAR(out_gemm(i, j), out_direct(i, j), 1e-4f);
}

}  // namespace
}  // namespace shalom::workloads
