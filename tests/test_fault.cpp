// Fault-injection suite: arms every named fault site and asserts the
// library degrades gracefully - correct results (bitwise-identical to the
// undegraded run where the degradation matrix promises it), no exception
// across any API boundary, and the matching telemetry counter bumped.
//
// Each TEST runs in its own process under ctest (gtest_discover_tests), so
// global pool / plan-cache state never leaks between tests. The FaultEnv
// tests are additionally registered with a SHALOM_FAULT environment value
// by tests/CMakeLists.txt to cover the env-var arming path; run bare they
// skip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/selfcheck.h"
#include "core/shalom.h"
#include "core/shalom_c.h"
#include "core/threadpool.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SHALOM_FAULT_INJECTION)
      GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
    fault::disarm_all();
    robustness_stats_reset();
  }
  void TearDown() override { fault::disarm_all(); }
};

/// Asserts two same-shape matrices are bitwise identical.
template <typename T>
void expect_bitwise(const Matrix<T>& got, const Matrix<T>& want,
                    const char* context) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (index_t i = 0; i < got.rows(); ++i)
    for (index_t j = 0; j < got.cols(); ++j)
      ASSERT_EQ(std::memcmp(&got(i, j), &want(i, j), sizeof(T)), 0)
          << context << ": mismatch at (" << i << "," << j << "): "
          << got(i, j) << " vs " << want(i, j);
}

// ---------------------------------------------------------------------------
// Framework semantics
// ---------------------------------------------------------------------------

TEST_F(FaultTest, TriggerModes) {
  using fault::Site;
  const Site s = Site::kPlanCacheInsert;

  fault::arm(s, fault::Mode::kOnce);
  EXPECT_TRUE(fault::should_fail(s));
  EXPECT_FALSE(fault::should_fail(s));  // self-disarmed
  EXPECT_FALSE(fault::armed(s));

  fault::arm(s, fault::Mode::kEveryN, 2);
  EXPECT_FALSE(fault::should_fail(s));  // call 1
  EXPECT_TRUE(fault::should_fail(s));   // call 2
  EXPECT_FALSE(fault::should_fail(s));  // call 3
  EXPECT_TRUE(fault::should_fail(s));   // call 4

  fault::arm(s, fault::Mode::kFailAfter, 2);
  EXPECT_FALSE(fault::should_fail(s));  // call 1
  EXPECT_FALSE(fault::should_fail(s));  // call 2
  EXPECT_TRUE(fault::should_fail(s));   // call 3
  EXPECT_TRUE(fault::should_fail(s));   // call 4

  fault::disarm(s);
  EXPECT_FALSE(fault::should_fail(s));
  EXPECT_GE(fault::injected(s), 5u);
}

TEST_F(FaultTest, SpecParsing) {
  using fault::Site;
  EXPECT_TRUE(fault::arm_from_spec("alloc.pack_arena:once"));
  EXPECT_TRUE(fault::armed(Site::kAllocPackArena));
  fault::disarm_all();

  EXPECT_TRUE(
      fault::arm_from_spec("alloc.plan:every-3,threadpool.spawn:fail-after-2"));
  EXPECT_TRUE(fault::armed(Site::kAllocPlan));
  EXPECT_TRUE(fault::armed(Site::kThreadpoolSpawn));
  EXPECT_FALSE(fault::armed(Site::kAllocPackArena));
  fault::disarm_all();

  EXPECT_FALSE(fault::arm_from_spec("bogus.site:once"));
  EXPECT_FALSE(fault::arm_from_spec("alloc.plan"));          // no spec
  EXPECT_FALSE(fault::arm_from_spec("alloc.plan:every-0"));  // n must be > 0
  EXPECT_FALSE(fault::arm_from_spec("alloc.plan:sometimes"));
  EXPECT_FALSE(fault::armed(Site::kAllocPlan));
  // Valid entries before a malformed one still arm.
  EXPECT_FALSE(fault::arm_from_spec("plan_cache.insert:once,junk"));
  EXPECT_TRUE(fault::armed(Site::kPlanCacheInsert));
}

TEST_F(FaultTest, SiteNames) {
  using fault::Site;
  EXPECT_STREQ(fault::site_name(Site::kAllocPackArena), "alloc.pack_arena");
  EXPECT_STREQ(fault::site_name(Site::kAllocPlan), "alloc.plan");
  EXPECT_STREQ(fault::site_name(Site::kThreadpoolSpawn), "threadpool.spawn");
  EXPECT_STREQ(fault::site_name(Site::kPlanCacheInsert), "plan_cache.insert");
  EXPECT_STREQ(fault::site_name(Site::kSelfcheckProbe), "selfcheck.probe");
}

// ---------------------------------------------------------------------------
// (a) Pack-arena OOM -> no-pack fallback, bitwise-identical results
// ---------------------------------------------------------------------------

// K*N is sized well past any L1, so the plan packs B (NN) / A (TN); the
// serial driver then hits the alloc.pack_arena site on every execution.
TEST_F(FaultTest, PackArenaFallbackBitwiseNN) {
  const index_t M = 64, N = 256, K = 256;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  Matrix<float> c_ref = p.c;
  gemm(Trans::N, Trans::N, M, N, K, 1.25f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.5f, c_ref.data(), c_ref.ld(), cfg);

  fault::arm(fault::Site::kAllocPackArena, fault::Mode::kEveryN, 1);
  gemm(Trans::N, Trans::N, M, N, K, 1.25f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  const RobustnessStats s = robustness_stats();
  EXPECT_GT(s.fallback_nopack, 0u);
  EXPECT_GT(s.faults_injected, 0u);
  expect_bitwise(p.c, c_ref, "no-pack fallback NN");
}

TEST_F(FaultTest, PackArenaFallbackBitwiseTN) {
  const index_t M = 64, N = 48, K = 96;
  testing::Problem<double> p({Trans::T, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  Matrix<double> c_ref = p.c;
  gemm(Trans::T, Trans::N, M, N, K, 1.0, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.25, c_ref.data(), c_ref.ld(), cfg);

  fault::arm(fault::Site::kAllocPackArena, fault::Mode::kEveryN, 1);
  gemm(Trans::T, Trans::N, M, N, K, 1.0, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.25, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  EXPECT_GT(robustness_stats().fallback_nopack, 0u);
  expect_bitwise(p.c, c_ref, "no-pack fallback TN");
}

// Transposed B has no direct-access kernel, so the fallback runs the
// scalar loop there: correct within tolerance rather than bitwise.
TEST_F(FaultTest, PackArenaFallbackCorrectNT) {
  const index_t M = 40, N = 56, K = 80;
  testing::Problem<float> p({Trans::N, Trans::T}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  fault::arm(fault::Site::kAllocPackArena, fault::Mode::kEveryN, 1);
  gemm(Trans::N, Trans::T, M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.75f, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  EXPECT_GT(robustness_stats().fallback_nopack, 0u);
  p.run_reference(1.0f, 0.75f);
  p.expect_matches("no-pack fallback NT");
}

// `once` injection: exactly one execution degrades, the next run packs
// again - the arena reservation is retried per call, not latched.
TEST_F(FaultTest, PackArenaFailureIsTransient) {
  const index_t M = 32, N = 256, K = 256;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  fault::arm(fault::Site::kAllocPackArena, fault::Mode::kOnce);
  gemm(Trans::N, Trans::N, M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
  const std::uint64_t after_first = robustness_stats().fallback_nopack;
  gemm(Trans::N, Trans::N, M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);

  EXPECT_EQ(after_first, 1u);
  EXPECT_EQ(robustness_stats().fallback_nopack, 1u);  // second run packed
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("transient arena failure");
}

// ---------------------------------------------------------------------------
// (b) Worker-spawn failure -> degraded thread count across the C ABI
// ---------------------------------------------------------------------------

TEST_F(FaultTest, SpawnFailureDegradesThreadsBitwise) {
  const index_t M = 256, N = 256, K = 64;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Matrix<float> c_degraded = p.c;

  // Degraded pass FIRST: every spawn fails, so the global pool comes up
  // serial and the 16-task plan runs chunked on one thread. Must still
  // return SHALOM_OK - no exception may cross the C ABI.
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kEveryN, 1);
  const int rc_degraded = shalom_sgemm(
      'N', 'N', M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
      0.5f, c_degraded.data(), c_degraded.ld(), 16);
  fault::disarm_all();
  EXPECT_EQ(rc_degraded, SHALOM_OK);

  const RobustnessStats s = robustness_stats();
  EXPECT_GT(s.threads_degraded, 0u);
  EXPECT_GT(s.faults_injected, 0u);

  // Undegraded pass: the pool can now grow to the full 16 threads. The
  // partition is part of the cached plan, so per-element arithmetic is
  // identical and the results must match bitwise.
  const int rc_full = shalom_sgemm('N', 'N', M, N, K, 1.0f, p.a.data(),
                                   p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
                                   p.c.data(), p.c.ld(), 16);
  EXPECT_EQ(rc_full, SHALOM_OK);
  expect_bitwise(c_degraded, p.c, "spawn-degraded vs full-width");
}

TEST_F(FaultTest, PartialSpawnFailureKeepsEarlierWorkers) {
  // The first 3 spawns succeed, later ones fail: the pool keeps workers
  // 1..3 and reports a width of 4.
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kFailAfter, 3);
  ThreadPool pool(16);
  fault::disarm_all();
  EXPECT_EQ(pool.max_threads(), 4);

  // The surviving width is fully usable.
  std::vector<int> hits(4, 0);
  pool.parallel_for(4, [&](int id) { hits[static_cast<std::size_t>(id)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(FaultTest, PoolRunChunksOverDegradedPool) {
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kEveryN, 1);
  std::vector<std::atomic<int>> hits(12);
  pool_run(12, [&](int id) {
    hits[static_cast<std::size_t>(id)].fetch_add(1);
  });
  fault::disarm_all();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(robustness_stats().threads_degraded, 0u);
}

// ---------------------------------------------------------------------------
// (c) Plan-cache failures -> uncached execution
// ---------------------------------------------------------------------------

TEST_F(FaultTest, PlanCacheInsertFailureBitwise) {
  const index_t M = 48, N = 64, K = 72;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  Matrix<float> c_ref = p.c;
  gemm(Trans::N, Trans::N, M, N, K, 2.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 1.0f, c_ref.data(), c_ref.ld(), cfg);

  // Invalidate the per-thread memo and the cache entry so the next call
  // rebuilds the plan and reaches the insert site.
  PlanCache<float>::global().clear();
  fault::arm(fault::Site::kPlanCacheInsert, fault::Mode::kEveryN, 1);
  gemm(Trans::N, Trans::N, M, N, K, 2.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 1.0f, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  EXPECT_GT(robustness_stats().plan_cache_bypassed, 0u);
  expect_bitwise(p.c, c_ref, "plan-cache insert failure");
}

TEST_F(FaultTest, PlanAllocFailureRunsUncachedBitwise) {
  const index_t M = 56, N = 40, K = 64;
  testing::Problem<double> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;

  Matrix<double> c_ref = p.c;
  gemm(Trans::N, Trans::N, M, N, K, 1.5, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.25, c_ref.data(), c_ref.ld(), cfg);

  PlanCache<double>::global().clear();
  fault::arm(fault::Site::kAllocPlan, fault::Mode::kEveryN, 1);
  gemm(Trans::N, Trans::N, M, N, K, 1.5, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.25, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  EXPECT_GT(robustness_stats().plan_cache_bypassed, 0u);
  expect_bitwise(p.c, c_ref, "uncached fallback");

  // The cache must not have latched a broken state: with the site
  // disarmed, the same shape caches and executes normally again.
  const std::uint64_t bypassed = robustness_stats().plan_cache_bypassed;
  gemm(Trans::N, Trans::N, M, N, K, 1.5, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.25, p.c.data(), p.c.ld(), cfg);
  EXPECT_EQ(robustness_stats().plan_cache_bypassed, bypassed);
}

// ---------------------------------------------------------------------------
// C-ABI telemetry surface
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CStatsMirrorCppCounters) {
  shalom_stats before;
  shalom_get_stats(&before);
  EXPECT_EQ(before.fallback_nopack, 0u);

  const index_t M = 32, N = 256, K = 256;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  fault::arm(fault::Site::kAllocPackArena, fault::Mode::kOnce);
  ASSERT_EQ(shalom_sgemm('N', 'N', M, N, K, 1.0f, p.a.data(), p.a.ld(),
                         p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(),
                         1),
            SHALOM_OK);
  fault::disarm_all();

  shalom_stats after;
  shalom_get_stats(&after);
  EXPECT_EQ(after.fallback_nopack, 1u);
  EXPECT_GT(after.faults_injected, 0u);

  shalom_reset_stats();
  shalom_get_stats(&after);
  EXPECT_EQ(after.fallback_nopack, 0u);
  EXPECT_EQ(after.faults_injected, 0u);
  shalom_get_stats(nullptr);  // must be a safe no-op
}

// Every shalom_stats counter is reachable through the C ABI: drive each
// degradation class once, snapshot, then reset back to all-zero.
TEST_F(FaultTest, CStatsEveryCounterReachable) {
  selfcheck::reset_for_testing();
  PlanCache<float>::global().clear();
  shalom_reset_stats();

  // numeric_anomalies: NaN operand under the count policy.
  {
    testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
    p.a.data()[0] = std::numeric_limits<float>::quiet_NaN();
    Config cfg;
    cfg.check_numerics = numerics::Policy::kCount;
    gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
  }
  // kernels_quarantined + selfchecks_run: one injected probe failure.
  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kOnce);
  EXPECT_FALSE(selfcheck::variant_ok(selfcheck::Variant::kMainF32PackedPacked));
  fault::disarm_all();
  // fallback_nopack (+ faults_injected): pack-arena OOM.
  {
    testing::Problem<float> p({Trans::N, Trans::N}, 32, 256, 256);
    fault::arm(fault::Site::kAllocPackArena, fault::Mode::kOnce);
    ASSERT_EQ(shalom_sgemm('N', 'N', p.m, p.n, p.k, 1.0f, p.a.data(),
                           p.a.ld(), p.b.data(), p.b.ld(), 0.0f, p.c.data(),
                           p.c.ld(), 1),
              SHALOM_OK);
    fault::disarm_all();
  }
  // threads_degraded: every worker spawn fails.
  fault::arm(fault::Site::kThreadpoolSpawn, fault::Mode::kEveryN, 1);
  pool_run(4, [](int) {});
  fault::disarm_all();
  // plan_cache_bypassed: cache insert failure on a fresh shape.
  {
    testing::Problem<float> p({Trans::N, Trans::N}, 48, 64, 72);
    PlanCache<float>::global().clear();
    fault::arm(fault::Site::kPlanCacheInsert, fault::Mode::kEveryN, 1);
    Config cfg;
    cfg.threads = 1;
    gemm(Trans::N, Trans::N, p.m, p.n, p.k, 2.0f, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), 1.0f, p.c.data(), p.c.ld(), cfg);
    fault::disarm_all();
  }

  shalom_stats s;
  shalom_get_stats(&s);
  EXPECT_GT(s.fallback_nopack, 0u);
  EXPECT_GT(s.threads_degraded, 0u);
  EXPECT_GT(s.plan_cache_bypassed, 0u);
  EXPECT_GT(s.faults_injected, 0u);
  EXPECT_GT(s.kernels_quarantined, 0u);
  EXPECT_GT(s.selfchecks_run, 0u);
  EXPECT_GT(s.numeric_anomalies, 0u);

  shalom_reset_stats();
  shalom_get_stats(&s);
  EXPECT_EQ(s.fallback_nopack, 0u);
  EXPECT_EQ(s.threads_degraded, 0u);
  EXPECT_EQ(s.plan_cache_bypassed, 0u);
  EXPECT_EQ(s.faults_injected, 0u);
  EXPECT_EQ(s.kernels_quarantined, 0u);
  EXPECT_EQ(s.selfchecks_run, 0u);
  EXPECT_EQ(s.numeric_anomalies, 0u);

  selfcheck::reset_for_testing();
  PlanCache<float>::global().clear();
}

// ---------------------------------------------------------------------------
// Telemetry snapshot consistency under concurrency (run under TSan via
// SHALOM_SANITIZE=thread): writers bumping every counter race readers and
// resetters; no torn reads, no crashes, and after the dust settles one
// final reset leaves everything at zero.
// ---------------------------------------------------------------------------

TEST(StatsRace, ConcurrentNotesSnapshotsAndResets) {
  robustness_stats_reset();
  constexpr int kWriters = 4;
  constexpr int kItersPerWriter = 2000;
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&go] {
      while (!go.load()) {
      }
      for (int i = 0; i < kItersPerWriter; ++i) {
        telemetry::note_fallback_nopack();
        telemetry::note_threads_degraded();
        telemetry::note_plan_cache_bypassed();
        telemetry::note_kernel_quarantined();
        telemetry::note_selfcheck_run();
        telemetry::note_numeric_anomaly();
      }
    });
  }
  // Reader: snapshots must never be torn (counters only grow between
  // resets, and a snapshot taken mid-reset sees each counter as either
  // pre- or post-reset, never garbage).
  threads.emplace_back([&go, &stop] {
    while (!go.load()) {
    }
    const std::uint64_t cap =
        static_cast<std::uint64_t>(kWriters) * kItersPerWriter;
    while (!stop.load()) {
      const RobustnessStats s = robustness_stats();
      EXPECT_LE(s.fallback_nopack, cap);
      EXPECT_LE(s.numeric_anomalies, cap);
    }
  });
  // Resetter races the writers through the public C entry point.
  threads.emplace_back([&go, &stop] {
    while (!go.load()) {
    }
    while (!stop.load()) shalom_reset_stats();
  });

  go.store(true);
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  robustness_stats_reset();
  const RobustnessStats s = robustness_stats();
  EXPECT_EQ(s.fallback_nopack, 0u);
  EXPECT_EQ(s.threads_degraded, 0u);
  EXPECT_EQ(s.plan_cache_bypassed, 0u);
  EXPECT_EQ(s.kernels_quarantined, 0u);
  EXPECT_EQ(s.selfchecks_run, 0u);
  EXPECT_EQ(s.numeric_anomalies, 0u);
}

// ---------------------------------------------------------------------------
// Environment-variable arming (registered with SHALOM_FAULT set by
// tests/CMakeLists.txt; skips when run bare)
// ---------------------------------------------------------------------------

TEST(FaultEnv, DegradesUnderEnvInjection) {
  const char* spec = std::getenv("SHALOM_FAULT");
  if (spec == nullptr || !SHALOM_FAULT_INJECTION)
    GTEST_SKIP() << "SHALOM_FAULT not set";
  robustness_stats_reset();

  // A serial workload that visits every allocator/cache site: plan-cache
  // build + insert, pack-arena reservation (B packing forced by K*N).
  const index_t M = 48, N = 256, K = 256;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);
  Config cfg;
  cfg.threads = 1;
  gemm(Trans::N, Trans::N, M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);

  EXPECT_GT(robustness_stats().faults_injected, 0u)
      << "env spec \"" << spec << "\" armed nothing the workload hit";
  p.run_reference(1.0f, 0.5f);
  p.expect_matches("env-armed degraded run");
  fault::disarm_all();
}

}  // namespace
}  // namespace shalom
