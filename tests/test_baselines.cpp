// Correctness of every comparator library against the naive oracle:
// the figures are only meaningful if all competitors compute the same
// GEMM. Sweeps modes, sizes (within each library's design scope), both
// element types and thread counts for the parallel-capable ones.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "tests/test_util.h"

namespace shalom::baselines {
namespace {

struct Case {
  index_t m, n, k;
};

const Case kSmallCases[] = {
    {5, 5, 5}, {8, 8, 8}, {13, 5, 13}, {23, 29, 17}, {64, 64, 64},
};
const Case kLargeCases[] = {
    {33, 700, 150},
    {128, 300, 260},
};

class LibraryCorrectness
    : public ::testing::TestWithParam<const Library*> {};

TEST_P(LibraryCorrectness, SmallSizesAllModesF32) {
  const Library& lib = *GetParam();
  for (const Case& c : kSmallCases) {
    for (Mode mode : testing::kAllModes) {
      testing::Problem<float> p(mode, c.m, c.n, c.k);
      lib.sgemm(mode, p.m, p.n, p.k, 1.25f, p.a.data(), p.a.ld(),
                p.b.data(), p.b.ld(), 0.5f, p.c.data(), p.c.ld(), 1);
      p.run_reference(1.25f, 0.5f);
      p.expect_matches(lib.name.c_str());
    }
  }
}

TEST_P(LibraryCorrectness, SmallSizesF64) {
  const Library& lib = *GetParam();
  for (const Case& c : kSmallCases) {
    testing::Problem<double> p({Trans::N, Trans::N}, c.m, c.n, c.k);
    lib.dgemm({Trans::N, Trans::N}, p.m, p.n, p.k, 1.0, p.a.data(),
              p.a.ld(), p.b.data(), p.b.ld(), 1.0, p.c.data(), p.c.ld(), 1);
    p.run_reference(1.0, 1.0);
    p.expect_matches(lib.name.c_str());
  }
}

TEST_P(LibraryCorrectness, LargerSizes) {
  const Library& lib = *GetParam();
  if (lib.small_only) GTEST_SKIP() << "small-only library";
  for (const Case& c : kLargeCases) {
    for (Mode mode : {Mode{Trans::N, Trans::N}, Mode{Trans::N, Trans::T}}) {
      testing::Problem<float> p(mode, c.m, c.n, c.k);
      lib.sgemm(mode, p.m, p.n, p.k, 1.f, p.a.data(), p.a.ld(), p.b.data(),
                p.b.ld(), 0.f, p.c.data(), p.c.ld(), 1);
      p.run_reference(1.f, 0.f);
      p.expect_matches(lib.name.c_str());
    }
  }
}

TEST_P(LibraryCorrectness, ParallelExecution) {
  const Library& lib = *GetParam();
  if (!lib.supports_parallel) GTEST_SKIP() << "serial-only library";
  testing::Problem<float> p({Trans::N, Trans::T}, 40, 600, 200);
  lib.sgemm({Trans::N, Trans::T}, p.m, p.n, p.k, 1.f, p.a.data(), p.a.ld(),
            p.b.data(), p.b.ld(), 0.f, p.c.data(), p.c.ld(), 4);
  p.run_reference(1.f, 0.f);
  p.expect_matches((lib.name + " threads=4").c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllLibraries, LibraryCorrectness,
    ::testing::ValuesIn(all_libraries()),
    [](const ::testing::TestParamInfo<const Library*>& info) {
      std::string name = info.param->name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(Registry, ShapeOfCollections) {
  EXPECT_EQ(all_libraries().size(), 6u);
  EXPECT_EQ(all_libraries().back()->name, "LibShalom");
  EXPECT_EQ(parallel_libraries().size(), 4u);
  for (const auto* lib : parallel_libraries())
    EXPECT_TRUE(lib->supports_parallel) << lib->name;
}

TEST(XsmmLike, CodeCacheIsConsistentAcrossCalls) {
  // Two identical calls (second one hits the plan cache) must agree.
  const Library& lib = xsmm_like();
  testing::Problem<float> p1({Trans::N, Trans::N}, 24, 24, 24);
  testing::Problem<float> p2({Trans::N, Trans::N}, 24, 24, 24);
  lib.sgemm({Trans::N, Trans::N}, 24, 24, 24, 1.f, p1.a.data(), p1.a.ld(),
            p1.b.data(), p1.b.ld(), 0.f, p1.c.data(), p1.c.ld(), 1);
  lib.sgemm({Trans::N, Trans::N}, 24, 24, 24, 1.f, p2.a.data(), p2.a.ld(),
            p2.b.data(), p2.b.ld(), 0.f, p2.c.data(), p2.c.ld(), 1);
  for (index_t i = 0; i < 24; ++i)
    for (index_t j = 0; j < 24; ++j)
      EXPECT_EQ(p1.c(i, j), p2.c(i, j));
}

TEST(XsmmLike, OutOfScopeFallsBackCorrectly) {
  // (M*N*K)^(1/3) > 64: the comparator must still be correct.
  testing::Problem<float> p({Trans::N, Trans::N}, 80, 80, 80);
  xsmm_like().sgemm({Trans::N, Trans::N}, 80, 80, 80, 1.f, p.a.data(),
                    p.a.ld(), p.b.data(), p.b.ld(), 0.f, p.c.data(),
                    p.c.ld(), 1);
  p.run_reference(1.f, 0.f);
  p.expect_matches("xsmm fallback");
}

}  // namespace
}  // namespace shalom::baselines
