// Unit tests for the common substrate: aligned buffers, matrix views,
// deterministic RNG fills and error contracts.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/matrix.h"
#include "common/rng.h"

namespace shalom {
namespace {

TEST(AlignedBuffer, AlignmentAndGrowth) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
  EXPECT_GE(buf.capacity(), 100u);
  const std::size_t cap = buf.capacity();
  buf.reserve(50);  // no shrink, no realloc
  EXPECT_EQ(buf.capacity(), cap);
  buf.reserve(10000);
  EXPECT_GE(buf.capacity(), 10000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(256);
  void* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(AlignedBuffer, ReserveRejectsRoundingOverflow) {
  AlignedBuffer buf;
  // A request so large that cache-line rounding would wrap size_t must
  // fail cleanly as bad_alloc, not wrap to a tiny allocation.
  EXPECT_THROW(buf.reserve(SIZE_MAX - 1), std::bad_alloc);
  EXPECT_EQ(buf.capacity(), 0u);
}

TEST(AlignedBuffer, AsRejectsCountOverflow) {
  AlignedBuffer buf(64);
  // count * sizeof(T) would overflow size_t: must throw, not pass the
  // capacity assert via a wrapped product.
  EXPECT_THROW(buf.as<double>(SIZE_MAX / 2), invalid_argument);
  EXPECT_NE(buf.as<double>(8), nullptr);  // in-range count still works
}

TEST(AlignedBuffer, ThreadArenaPersists) {
  AlignedBuffer& arena = thread_pack_arena();
  arena.reserve(1024);
  EXPECT_EQ(&arena, &thread_pack_arena());
  EXPECT_GE(thread_pack_arena().capacity(), 1024u);
}

TEST(Matrix, IndexingAndLd) {
  Matrix<float> m(3, 4, 6);  // padded ld
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.ld(), 6);
  m(2, 3) = 42.f;
  EXPECT_EQ(m.data()[2 * 6 + 3], 42.f);
}

TEST(Matrix, CopyIsDeep) {
  Matrix<double> m(2, 2);
  m(0, 0) = 5.0;
  Matrix<double> n(m);
  n(0, 0) = 7.0;
  EXPECT_EQ(m(0, 0), 5.0);
  EXPECT_EQ(n(0, 0), 7.0);
}

TEST(MatrixView, BlockSharesStorage) {
  Matrix<float> m(4, 4);
  m(2, 2) = 9.f;
  auto v = m.view().block(1, 1, 3, 3);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v(1, 1), 9.f);
  v(1, 1) = 11.f;
  EXPECT_EQ(m(2, 2), 11.f);
}

TEST(MatrixView, RejectsBadLd) {
  float x[4];
  EXPECT_THROW(MatrixView<float>(x, 2, 4, 2), invalid_argument);
}

TEST(Rng, DeterministicAndInUnitRange) {
  Matrix<float> a(16, 16), b(16, 16);
  fill_random(a, 99);
  fill_random(b, 99);
  bool nontrivial = false;
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      EXPECT_EQ(a(i, j), b(i, j));
      EXPECT_GE(a(i, j), 0.f);
      EXPECT_LT(a(i, j), 1.f);
      if (a(i, j) != a(0, 0)) nontrivial = true;
    }
  }
  EXPECT_TRUE(nontrivial);
}

TEST(Rng, SeedChangesStream) {
  Matrix<float> a(8, 8), b(8, 8);
  fill_random(a, 1);
  fill_random(b, 2);
  int diffs = 0;
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) diffs += a(i, j) != b(i, j);
  EXPECT_GT(diffs, 32);
}

TEST(Error, RequireThrowsWithContext) {
  try {
    SHALOM_REQUIRE(1 == 2, " extra=", 42);
    FAIL() << "should have thrown";
  } catch (const invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

}  // namespace
}  // namespace shalom
