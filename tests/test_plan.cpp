// Execution-plan layer tests: plan_create/plan_execute must be bitwise
// identical to the per-call drivers for every mode and shape class, plans
// must be reusable and validate execute-time arguments, and the global
// LRU plan cache must hit, evict and stay bounded as specified. Also
// covers seeding the cache from auto-tuner results.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/plan.h"
#include "core/plan_cache.h"
#include "core/shalom.h"
#include "tests/test_util.h"
#include "tuning/autotune.h"

namespace shalom {
namespace {

struct ShapeCase {
  const char* label;
  index_t m, n, k;
};

// Tiny, edge-remainder (M % 7 != 0, N % 12 != 0), and tall-skinny both
// ways - the three shape classes the paper's workloads produce.
const ShapeCase kShapes[] = {
    {"tiny", 5, 6, 7},
    {"edge-remainder", 23, 27, 19},
    {"tall-skinny", 13, 500, 300},
    {"skinny-tall", 500, 13, 300},
};

template <typename T>
void expect_bitwise_equal(const Matrix<T>& got, const Matrix<T>& want,
                          index_t m, index_t n, const char* context) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_EQ(got(i, j), want(i, j))
          << context << " differs at (" << i << "," << j << ")";
    }
  }
}

// Runs one shape through the direct (per-call, cache-off) driver and
// through plan_create/plan_execute and demands bitwise-identical C.
template <typename T>
void check_plan_equivalence(Mode mode, const ShapeCase& s, int threads) {
  testing::Problem<T> direct(mode, s.m, s.n, s.k);
  testing::Problem<T> planned(mode, s.m, s.n, s.k);
  const T alpha = static_cast<T>(1.25), beta = static_cast<T>(-0.5);

  Config cfg;
  cfg.threads = threads;
  cfg.use_plan_cache = false;
  gemm(mode.a, mode.b, s.m, s.n, s.k, alpha, direct.a.data(),
       direct.a.ld(), direct.b.data(), direct.b.ld(), beta, direct.c.data(),
       direct.c.ld(), cfg);

  const GemmPlan<T> plan = plan_create<T>(mode, s.m, s.n, s.k, cfg);
  plan_execute(plan, alpha, planned.a.data(), planned.a.ld(),
               planned.b.data(), planned.b.ld(), beta, planned.c.data(),
               planned.c.ld());

  SCOPED_TRACE(::testing::Message()
               << s.label << " m=" << s.m << " n=" << s.n << " k=" << s.k
               << " mode=" << (mode.a == Trans::N ? "N" : "T")
               << (mode.b == Trans::N ? "N" : "T") << " threads=" << threads
               << " dtype=" << (sizeof(T) == 4 ? "f32" : "f64"));
  expect_bitwise_equal(planned.c, direct.c, s.m, s.n, "plan vs direct");

  // And both must be numerically right, not just mutually consistent.
  direct.run_reference(alpha, beta);
  direct.expect_matches("direct path");
}

TEST(GemmPlan, SerialBitwiseEquivalenceFp32) {
  for (const Mode mode : testing::kAllModes)
    for (const ShapeCase& s : kShapes)
      check_plan_equivalence<float>(mode, s, /*threads=*/1);
}

TEST(GemmPlan, SerialBitwiseEquivalenceFp64) {
  for (const Mode mode : testing::kAllModes)
    for (const ShapeCase& s : kShapes)
      check_plan_equivalence<double>(mode, s, /*threads=*/1);
}

TEST(GemmPlan, ParallelBitwiseEquivalence) {
  for (const Mode mode : testing::kAllModes) {
    check_plan_equivalence<float>(mode, {"tall-skinny", 13, 500, 300}, 4);
    check_plan_equivalence<double>(mode, {"skinny-tall", 500, 13, 300}, 4);
  }
}

TEST(GemmPlan, PlanIsReusableAndDeterministic) {
  const Mode mode{Trans::N, Trans::T};
  Config cfg;
  const GemmPlan<float> plan = plan_create<float>(mode, 23, 27, 19, cfg);

  testing::Problem<float> p1(mode, 23, 27, 19);
  testing::Problem<float> p2(mode, 23, 27, 19);
  plan_execute(plan, 1.0f, p1.a.data(), p1.a.ld(), p1.b.data(), p1.b.ld(),
               0.0f, p1.c.data(), p1.c.ld());
  plan_execute(plan, 1.0f, p2.a.data(), p2.a.ld(), p2.b.data(), p2.b.ld(),
               0.0f, p2.c.data(), p2.c.ld());
  expect_bitwise_equal(p2.c, p1.c, 23, 27, "repeat execution");

  p1.run_reference(1.0f, 0.0f);
  p1.expect_matches("plan reuse");
}

TEST(GemmPlan, ExecuteValidatesStrides) {
  const Mode mode{Trans::N, Trans::N};
  const GemmPlan<float> plan = plan_create<float>(mode, 8, 8, 8);
  testing::Problem<float> p(mode, 8, 8, 8);
  EXPECT_THROW(plan_execute(plan, 1.0f, p.a.data(), /*lda=*/4, p.b.data(),
                            p.b.ld(), 0.0f, p.c.data(), p.c.ld()),
               invalid_argument);
  EXPECT_THROW(plan_execute(plan, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
                            p.b.ld(), 0.0f, p.c.data(), /*ldc=*/5),
               invalid_argument);
}

TEST(GemmPlan, DegenerateShapesScaleC) {
  // K == 0 plans only scale C; alpha == 0 at execute time does the same.
  const Mode mode{Trans::N, Trans::N};
  const GemmPlan<float> plan = plan_create<float>(mode, 3, 3, 0);
  Matrix<float> c(3, 3);
  fill_random(c, 7);
  Matrix<float> expected = c;
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) expected(i, j) *= 2.0f;
  const float* none = nullptr;
  // A is 3x0 (lda >= 1); B is 0x3, so ldb must still cover N.
  plan_execute(plan, 1.0f, none, 1, none, 3, 2.0f, c.data(), c.ld());
  expect_bitwise_equal(c, expected, 3, 3, "k=0 scale");
}

TEST(PlanCache, HitsMissesAndLruBound) {
  auto& cache = PlanCache<float>::global();
  cache.clear();
  cache.set_capacity(4);

  Config cfg;  // use_plan_cache on by default
  auto call = [&](index_t m) {
    testing::Problem<float> p({Trans::N, Trans::N}, m, m, m);
    gemm(Trans::N, Trans::N, m, m, m, 1.0f, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
    p.run_reference(1.0f, 0.0f);
    p.expect_matches("cached call");
  };

  call(8);
  call(8);
  PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.size, 1u);

  // Six distinct shapes through a capacity-4 cache: size stays bounded
  // and the overflow shows up as evictions.
  for (index_t m : {5, 6, 7, 9, 10, 11}) call(m);
  st = cache.stats();
  EXPECT_LE(st.size, 4u);
  EXPECT_GE(st.evictions, 3u);

  // The most recently used shape must still be resident (LRU order).
  const PlanKey key = make_plan_key(
      {Trans::N, Trans::N}, 11, 11, 11,
      LdClass::kContiguous, 1, cfg);
  EXPECT_NE(cache.lookup(key), nullptr);

  cache.set_capacity(PlanCache<float>::kDefaultCapacity);
  cache.clear();
}

TEST(PlanCache, DistinctConfigsGetDistinctPlans) {
  Config a;  // defaults
  Config b;
  b.selective_packing = false;
  const PlanKey ka =
      make_plan_key({Trans::N, Trans::N}, 16, 16, 16, LdClass::kContiguous,
                    1, a);
  const PlanKey kb =
      make_plan_key({Trans::N, Trans::N}, 16, 16, 16, LdClass::kContiguous,
                    1, b);
  EXPECT_FALSE(ka == kb);

  // Leading-dimension classes split the key too.
  EXPECT_EQ(classify_ld({Trans::N, Trans::N}, 4, 4, 4, 4, 4, 4),
            LdClass::kContiguous);
  EXPECT_EQ(classify_ld({Trans::N, Trans::N}, 4, 4, 4, 4, 4, 9),
            LdClass::kPadded);
  EXPECT_EQ(classify_ld({Trans::T, Trans::N}, 4, 4, 6, 4, 4, 4),
            LdClass::kContiguous);  // lda covers M under Trans::T
}

TEST(PlanCache, SeededTunedPlanIsPickedUp) {
  auto& cache = PlanCache<float>::global();
  cache.clear();

  const Mode mode{Trans::T, Trans::N};
  const index_t m = 48, n = 96, k = 120;

  // Fabricate a tuner result (running the real timer here would be slow
  // and flaky); what matters is the override plumbing.
  tuning::TuneResult tuned;
  tuned.config = Config{};
  tuned.config.kc_override = 24;
  tuned.config.mc_override = 28;
  tuned.config.nc_override = 48;
  tuning::seed_plan_cache<float>(mode, m, n, k, tuned);

  PlanCacheStats before = cache.stats();
  // One entry per ld class; both share one underlying plan object.
  EXPECT_EQ(before.size, 2u);

  // A plain default-config call must now hit the seeded entry...
  testing::Problem<float> p(mode, m, n, k);
  gemm(mode.a, mode.b, m, n, k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), 0.0f, p.c.data(), p.c.ld());
  PlanCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);

  // ...and the tuned blocking must still compute the right answer.
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("seeded tuned plan");

  cache.clear();
}

}  // namespace
}  // namespace shalom
