// Concurrency stress for the global plan cache: many threads hammer
// overlapping shape sets through the cached gemm entry point while the
// main thread drives gemm_batch (whose pool workers also consult the
// cache), with a deliberately tiny cache capacity so insertion, hit and
// eviction paths all race. Asserts numerically correct results on every
// thread and a bounded cache; run under `ctest -L stress`, and build with
// -DSHALOM_SANITIZE=thread to have ThreadSanitizer check the same run
// (scripts/tier1.sh does exactly that).
//
// The work-stealing ThreadPool overlaps fork-join rounds from independent
// callers and is safe to drive from several threads concurrently (the
// documented plan contract); the tests below exercise exactly that -
// shared parallel plans executed from many threads at once, and racing
// parallel plan creations whose arena pre-reservation rounds contend for
// the pool. The PlanCacheSharding tests pin down the property the
// sharded cache (core/plan_cache.h) must preserve: observable behaviour -
// summed stats, the total capacity bound, exact global LRU order -
// identical to the original single-mutex cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/batch.h"
#include "core/plan.h"
#include "core/plan_cache.h"
#include "core/shalom.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

struct StressShape {
  Mode mode;
  index_t m, n, k;
};

// Overlapping working set: more distinct keys than cache capacity, with
// every thread cycling through all of them so the same keys are
// simultaneously hit by some threads and (re)created by others.
std::vector<StressShape> stress_shapes() {
  std::vector<StressShape> shapes;
  for (const Mode mode : testing::kAllModes) {
    shapes.push_back({mode, 7, 12, 8});
    shapes.push_back({mode, 13, 9, 21});
    shapes.push_back({mode, 24, 24, 24});
    shapes.push_back({mode, 5, 37, 16});
    shapes.push_back({mode, 31, 6, 30});
  }
  return shapes;
}

/// Worker body: runs `iters` cached serial GEMMs over the shape set and
/// reports the worst deviation from the naive oracle. GTest assertions
/// are not thread-safe, so failures are accumulated and checked by the
/// main thread after the join.
void hammer(const std::vector<StressShape>& shapes, int thread_id,
            int iters, std::atomic<int>* mismatches) {
  Config cfg;
  cfg.threads = 1;  // serial products; the cache is the shared resource
  for (int it = 0; it < iters; ++it) {
    const StressShape& s = shapes[(thread_id + it) % shapes.size()];
    testing::Problem<float> p(s.mode, s.m, s.n, s.k);
    const float alpha = (it % 3 == 0) ? -1.0f : 1.0f;
    const float beta = (it % 2 == 0) ? 0.0f : 0.5f;
    gemm(s.mode.a, s.mode.b, s.m, s.n, s.k, alpha, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), beta, p.c.data(), p.c.ld(), cfg);
    p.run_reference(alpha, beta);
    const double tol = testing::gemm_tolerance<float>(s.k);
    for (index_t i = 0; i < s.m; ++i) {
      for (index_t j = 0; j < s.n; ++j) {
        if (!(std::fabs(static_cast<double>(p.c(i, j)) -
                        static_cast<double>(p.c_ref(i, j))) <= tol)) {
          mismatches->fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    }
  }
}

TEST(PlanCacheStress, ConcurrentHammerWithBatch) {
  auto& cache = PlanCache<float>::global();
  cache.clear();
  cache.set_capacity(8);  // far below the ~20 distinct keys in flight

  const std::vector<StressShape> shapes = stress_shapes();
  constexpr int kThreads = 8;
  constexpr int kIters = 60;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back(hammer, std::cref(shapes), t, kIters, &mismatches);

  // Meanwhile: batched traffic through the fork-join pool, whose workers
  // consult the same cache for every entry.
  const Mode batch_mode{Trans::N, Trans::T};
  Config batch_cfg;
  batch_cfg.threads = 4;
  for (int round = 0; round < 10; ++round) {
    std::vector<testing::Problem<float>> problems;
    problems.reserve(12);
    for (int e = 0; e < 12; ++e) {
      const StressShape& s = shapes[(e + round) % shapes.size()];
      problems.emplace_back(batch_mode, s.m, s.n, s.k);
    }
    std::vector<BatchEntry<float>> batch;
    for (auto& p : problems) {
      batch.push_back({p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
                       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld()});
    }
    gemm_batch(batch_mode, batch, batch_cfg);
    for (auto& p : problems) {
      p.run_reference(1.0f, 0.0f);
      p.expect_matches("stress batch");
    }
  }

  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "some hammer thread produced a wrong product";

  const PlanCacheStats st = cache.stats();
  EXPECT_LE(st.size, 8u) << "cache exceeded its capacity bound";
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.evictions, 0u);

  cache.set_capacity(PlanCache<float>::kDefaultCapacity);
  cache.clear();
}

TEST(PlanCacheStress, RacingCreatorsOnOneKeyAgree) {
  // All threads miss the same fresh key at once: every call must still
  // return a correct product regardless of which creator's plan lands.
  auto& cache = PlanCache<float>::global();
  cache.clear();

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mismatches] {
      const Mode mode{Trans::T, Trans::T};
      Config cfg;
      cfg.threads = 1;
      testing::Problem<float> p(mode, 17, 23, 29);
      gemm(mode.a, mode.b, 17, 23, 29, 1.0f, p.a.data(), p.a.ld(),
           p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
      p.run_reference(1.0f, 0.0f);
      const double tol = testing::gemm_tolerance<float>(29);
      for (index_t i = 0; i < 17; ++i)
        for (index_t j = 0; j < 23; ++j)
          if (!(std::fabs(static_cast<double>(p.c(i, j)) -
                          static_cast<double>(p.c_ref(i, j))) <= tol))
            mismatches.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.stats().size, 1u);
  cache.clear();
}

/// Counts elements of p.c that deviate from p.c_ref beyond tolerance
/// (GTest assertions are not thread-safe; workers tally, main asserts).
int count_mismatches(const testing::Problem<float>& p) {
  const double tol = testing::gemm_tolerance<float>(p.k);
  int bad = 0;
  for (index_t i = 0; i < p.m; ++i)
    for (index_t j = 0; j < p.n; ++j)
      if (!(std::fabs(static_cast<double>(p.c(i, j)) -
                      static_cast<double>(p.c_ref(i, j))) <= tol))
        ++bad;
  return bad;
}

TEST(PlanCacheStress, ConcurrentParallelPlanExecution) {
  // Many threads execute one shared threads>1 plan simultaneously: their
  // fork-join rounds overlap on the work-stealing pool, and every
  // execution must still produce the exact product (the documented plan
  // contract).
  const Mode mode{Trans::N, Trans::N};
  const index_t m = 96, n = 192, k = 64;
  Config cfg;
  cfg.threads = 4;
  const GemmPlan<float> plan = plan_create<float>(mode, m, n, k, cfg);
  if (plan.threads <= 1)
    GTEST_SKIP() << "partition collapsed to serial on this machine";

  constexpr int kCallers = 6;
  constexpr int kIters = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      testing::Problem<float> p(mode, m, n, k);
      p.run_reference(1.0f, 0.0f);
      for (int it = 0; it < kIters; ++it) {
        plan_execute(plan, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
                     p.b.ld(), 0.0f, p.c.data(), p.c.ld());
        mismatches.fetch_add(count_mismatches(p),
                             std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent executions of a shared parallel plan diverged";
}

TEST(PlanCacheStress, RacingParallelPlanCreators) {
  // Concurrent cache misses on threads>1 keys: each creator runs the
  // creation-time arena pre-reservation parallel_for, contending for the
  // pool with the other creators and with the executions that follow.
  auto& cache = PlanCache<float>::global();
  cache.clear();

  constexpr int kCreators = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> creators;
  creators.reserve(kCreators);
  for (int t = 0; t < kCreators; ++t) {
    creators.emplace_back([&mismatches, t] {
      const Mode mode{Trans::N, Trans::N};
      // Distinct shapes per thread: every call is a fresh parallel plan.
      const index_t m = 64 + 16 * (t % 4);
      const index_t n = 96 + 12 * (t % 3);
      const index_t k = 48;
      Config cfg;
      cfg.threads = 2 + t % 3;
      testing::Problem<float> p(mode, m, n, k);
      gemm(mode.a, mode.b, m, n, k, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
           p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);
      p.run_reference(1.0f, 0.5f);
      mismatches.fetch_add(count_mismatches(p), std::memory_order_relaxed);
    });
  }
  for (auto& t : creators) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "racing parallel plan creation/execution produced wrong products";
  cache.clear();
}

// ---------------------------------------------------------------------------
// Sharded-cache properties (PR 1 semantics over 16 shards)
// ---------------------------------------------------------------------------

/// Serial-plan key for an m x n x k NN shape with default Config.
PlanKey key_for(index_t m, index_t n, index_t k, const Config& cfg) {
  return make_plan_key({Trans::N, Trans::N}, m, n, k, LdClass::kContiguous,
                       /*threads=*/1, cfg);
}

// Single-threaded ground truth: with keys spread across shards, stats()
// must still behave like one LRU map - exact miss/hit counts, the TOTAL
// size bounded by capacity, and the eviction victim chosen by GLOBAL
// recency (not per-shard recency).
TEST(PlanCacheSharding, SummedStatsAndGlobalLruMatchSingleMapSemantics) {
  auto& cache = PlanCache<float>::global();
  cache.clear();
  cache.set_capacity(4);
  const Config cfg;
  const Mode mode{Trans::N, Trans::N};

  // 8 distinct keys through get_or_create: 8 misses, then size == 4 with
  // exactly 4 evictions - and the survivors are the 4 most recent.
  std::vector<PlanKey> keys;
  for (index_t i = 0; i < 8; ++i) {
    const index_t m = 4 + i;
    keys.push_back(key_for(m, 6, 5, cfg));
    ASSERT_NE(cache.get_or_create(keys.back(), mode, m, 6, 5, cfg), nullptr);
  }
  PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 8u);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.size, 4u);
  EXPECT_EQ(st.evictions, 4u);
  EXPECT_EQ(st.capacity, 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(cache.lookup(keys[static_cast<std::size_t>(i)]), nullptr)
        << "key " << i << " should have aged out";

  // Re-touch the OLDEST resident (keys[4]), then insert a fresh key: the
  // eviction must take keys[5] - the global LRU - even though keys[4]
  // and keys[5] may live in different shards.
  ASSERT_NE(cache.lookup(keys[4]), nullptr);
  const PlanKey fresh = key_for(40, 6, 5, cfg);
  ASSERT_NE(cache.get_or_create(fresh, mode, 40, 6, 5, cfg), nullptr);
  EXPECT_NE(cache.lookup(keys[4]), nullptr)
      << "recently touched entry must survive";
  EXPECT_EQ(cache.lookup(keys[5]), nullptr)
      << "global LRU entry must be the eviction victim";
  st = cache.stats();
  EXPECT_EQ(st.size, 4u);
  // 9 creates + 4 aged-out probes + the keys[5] probe missed; the two
  // keys[4] touches hit (lookup() counts both outcomes, PR 1 semantics).
  EXPECT_EQ(st.misses, 14u);
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.evictions, 5u);

  cache.set_capacity(PlanCache<float>::kDefaultCapacity);
  cache.clear();
}

TEST(PlanCacheSharding, RacingInsertsKeepTotalSizeBounded) {
  auto& cache = PlanCache<float>::global();
  cache.clear();
  cache.set_capacity(8);
  const Config cfg;
  const Mode mode{Trans::N, Trans::N};

  // One real (tiny, serial) plan shared by every insert; the race under
  // test is the cache bookkeeping, not plan construction.
  const auto plan = std::make_shared<const GemmPlan<float>>(
      plan_create<float>(mode, 4, 4, 4, cfg));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct keys across all threads -> every insert adds an entry
        // and the total must keep collapsing back to capacity.
        const index_t m = 4 + t * kPerThread + i;
        cache.insert(key_for(m, 7, 6, cfg), plan);
        (void)cache.lookup(key_for(4 + (m % 16), 7, 6, cfg));
      }
    });
  }
  for (auto& t : threads) t.join();

  const PlanCacheStats st = cache.stats();
  EXPECT_LE(st.size, 8u) << "capacity is a TOTAL bound across shards";
  EXPECT_GE(st.evictions,
            static_cast<std::uint64_t>(kThreads * kPerThread - 8))
      << "every insert beyond capacity must have evicted";

  // The cache is still coherent: a fresh miss inserts and serves.
  const PlanKey probe = key_for(500, 7, 6, cfg);
  EXPECT_NE(cache.get_or_create(probe, mode, 500, 7, 6, cfg), nullptr);
  EXPECT_NE(cache.lookup(probe), nullptr);

  cache.set_capacity(PlanCache<float>::kDefaultCapacity);
  cache.clear();
}

}  // namespace
}  // namespace shalom
