// Kernel self-verification suite: probes every registered micro-kernel
// variant against the scalar reference, then uses fault injection on the
// selfcheck.probe site to force quarantine and prove the dispatcher's
// re-routing is *bitwise* safe - a GEMM whose every optimized kernel is
// quarantined must still produce results identical to the naive oracle.
// Also covers the opt-in numerical guard (Config::check_numerics) and the
// env-driven variants of both features (registered with SHALOM_SELFTEST /
// SHALOM_CHECK_NUMERICS by tests/CMakeLists.txt; run bare they skip).
//
// Each TEST runs in its own process under ctest (gtest_discover_tests), so
// quarantine verdicts and plan-cache state never leak between tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>
#include <string>

#include "baselines/naive.h"
#include "common/fault.h"
#include "common/selfcheck.h"
#include "core/shalom.h"
#include "core/shalom_c.h"
#include "core/widegemm.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

/// Resets quarantine verdicts AND the plan caches that snapshot them.
void reset_selfcheck_world() {
  selfcheck::reset_for_testing();
  PlanCache<float>::global().clear();
  PlanCache<double>::global().clear();
}

template <typename T>
void expect_bitwise(const Matrix<T>& got, const Matrix<T>& want,
                    const char* context) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (index_t i = 0; i < got.rows(); ++i)
    for (index_t j = 0; j < got.cols(); ++j)
      ASSERT_EQ(std::memcmp(&got(i, j), &want(i, j), sizeof(T)), 0)
          << context << ": mismatch at (" << i << "," << j << "): "
          << got(i, j) << " vs " << want(i, j);
}

// ---------------------------------------------------------------------------
// Clean-path verification
// ---------------------------------------------------------------------------

TEST(Selfcheck, AllVariantsVerifyClean) {
  fault::disarm_all();
  reset_selfcheck_world();
  robustness_stats_reset();

  EXPECT_EQ(selfcheck::run_all(), 0) << "a kernel variant failed its probe "
                                        "on this host; dispatch would "
                                        "quarantine it";
  for (int v = 0; v < selfcheck::kVariantCount; ++v) {
    const auto var = static_cast<selfcheck::Variant>(v);
    EXPECT_EQ(selfcheck::status(var), selfcheck::Status::kVerified)
        << selfcheck::variant_name(var);
    EXPECT_TRUE(selfcheck::variant_ok(var));
  }

  const RobustnessStats s = robustness_stats();
  EXPECT_GE(s.selfchecks_run,
            static_cast<std::uint64_t>(selfcheck::kVariantCount));
  EXPECT_EQ(s.kernels_quarantined, 0u);

  // Idempotent: a second sweep re-probes nothing.
  const std::uint64_t runs = s.selfchecks_run;
  EXPECT_EQ(selfcheck::run_all(), 0);
  EXPECT_EQ(robustness_stats().selfchecks_run, runs);
}

TEST(Selfcheck, VariantNamesAreStableAndUnique) {
  std::set<std::string> names;
  for (int v = 0; v < selfcheck::kVariantCount; ++v) {
    const char* name =
        selfcheck::variant_name(static_cast<selfcheck::Variant>(v));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
  EXPECT_STREQ(selfcheck::variant_name(selfcheck::wide_variant(512)),
               "wide.512");
}

TEST(Selfcheck, LazyProbeRunsOncePerVariant) {
  fault::disarm_all();
  reset_selfcheck_world();
  robustness_stats_reset();

  const auto v = selfcheck::Variant::kMainF32PackedPacked;
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kUnknown);
  EXPECT_TRUE(selfcheck::variant_ok(v));
  const std::uint64_t runs = robustness_stats().selfchecks_run;
  EXPECT_GT(runs, 0u);
  // The verdict is cached: repeat lookups do not re-probe.
  EXPECT_TRUE(selfcheck::variant_ok(v));
  EXPECT_TRUE(selfcheck::variant_ok(v));
  EXPECT_EQ(robustness_stats().selfchecks_run, runs);
  EXPECT_EQ(selfcheck::status(v), selfcheck::Status::kVerified);
}

// ---------------------------------------------------------------------------
// Forced quarantine: injected probe failures must reroute dispatch to the
// scalar reference, bitwise-identically to the naive oracle.
// ---------------------------------------------------------------------------

class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SHALOM_FAULT_INJECTION)
      GTEST_SKIP() << "built without SHALOM_FAULT_INJECTION";
    fault::disarm_all();
    reset_selfcheck_world();
    robustness_stats_reset();
  }
  void TearDown() override {
    fault::disarm_all();
    reset_selfcheck_world();
  }
};

/// Runs one shape through gemm() with every probe failing (so every lazily
/// probed variant quarantines) and asserts bitwise equality with naive.
/// kc_override = K keeps the whole reduction in one k-block, which makes
/// the quarantined scalar path's accumulation order identical to naive's.
template <typename T>
void check_quarantined_bitwise(Mode mode, index_t M, index_t N, index_t K,
                               T alpha, T beta, int threads) {
  SCOPED_TRACE(::testing::Message()
               << "mode=" << (mode.a == Trans::N ? "N" : "T")
               << (mode.b == Trans::N ? "N" : "T") << " m=" << M << " n=" << N
               << " k=" << K << " threads=" << threads);
  testing::Problem<T> p(mode, M, N, K);
  Config cfg;
  cfg.threads = threads;
  cfg.kc_override = K;

  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kEveryN, 1);
  gemm(mode.a, mode.b, M, N, K, alpha, p.a.data(), p.a.ld(), p.b.data(),
       p.b.ld(), beta, p.c.data(), p.c.ld(), cfg);
  fault::disarm_all();

  EXPECT_GT(robustness_stats().kernels_quarantined, 0u);
  baselines::naive_gemm(mode, M, N, K, alpha, p.a.data(), p.a.ld(),
                        p.b.data(), p.b.ld(), beta, p.c_ref.data(),
                        p.c_ref.ld());
  expect_bitwise(p.c, p.c_ref, "quarantined dispatch vs naive");
}

TEST_F(QuarantineTest, RoutesToScalarBitwiseF32AllModes) {
  for (const Mode mode : testing::kAllModes) {
    reset_selfcheck_world();
    check_quarantined_bitwise<float>(mode, 33, 29, 24, 1.25f, 0.5f, 1);
  }
}

TEST_F(QuarantineTest, RoutesToScalarBitwiseF64AllModes) {
  for (const Mode mode : testing::kAllModes) {
    reset_selfcheck_world();
    check_quarantined_bitwise<double>(mode, 21, 37, 18, -0.75, 1.0, 1);
  }
}

TEST_F(QuarantineTest, RoutesToScalarBitwiseSmallFastPathShape) {
  // A tiny NN problem that would normally take the small-GEMM fast path:
  // quarantine must force it onto the scalar route too.
  check_quarantined_bitwise<float>({Trans::N, Trans::N}, 7, 12, 9, 1.0f,
                                   0.0f, 1);
}

TEST_F(QuarantineTest, RoutesToScalarBitwiseParallel) {
  check_quarantined_bitwise<float>({Trans::N, Trans::N}, 96, 120, 40, 1.0f,
                                   0.25f, 3);
}

TEST_F(QuarantineTest, VerdictIsPermanentAfterDisarm) {
  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kEveryN, 1);
  EXPECT_FALSE(selfcheck::variant_ok(selfcheck::Variant::kMainF32PackedPacked));
  fault::disarm_all();
  // The probe would now pass, but the verdict was published: quarantined
  // stays quarantined for the life of the process.
  EXPECT_FALSE(selfcheck::variant_ok(selfcheck::Variant::kMainF32PackedPacked));
  EXPECT_EQ(selfcheck::status(selfcheck::Variant::kMainF32PackedPacked),
            selfcheck::Status::kQuarantined);
  // Variants never probed are still undecided and verify cleanly.
  EXPECT_TRUE(selfcheck::variant_ok(selfcheck::Variant::kMainF64PackedPacked));
}

TEST_F(QuarantineTest, EagerSelftestCountsQuarantinedVariants) {
  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kEveryN, 1);
  EXPECT_EQ(shalom_selftest(), selfcheck::kVariantCount);
  fault::disarm_all();
  EXPECT_EQ(robustness_stats().kernels_quarantined,
            static_cast<std::uint64_t>(selfcheck::kVariantCount));
  // Re-running reports the standing verdicts without new probes.
  const std::uint64_t runs = robustness_stats().selfchecks_run;
  EXPECT_EQ(shalom_selftest(), selfcheck::kVariantCount);
  EXPECT_EQ(robustness_stats().selfchecks_run, runs);
}

TEST_F(QuarantineTest, WideGemmFallsBackToScalar) {
  const index_t M = 25, N = 40, K = 33;
  testing::Problem<float> p({Trans::N, Trans::N}, M, N, K);

  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kEveryN, 1);
  wide::gemm_wide<256>(M, N, K, 1.5f, p.a.data(), p.a.ld(), p.b.data(),
                       p.b.ld(), 0.5f, p.c.data(), p.c.ld());
  fault::disarm_all();

  EXPECT_EQ(selfcheck::status(selfcheck::Variant::kWide256),
            selfcheck::Status::kQuarantined);
  EXPECT_GT(robustness_stats().kernels_quarantined, 0u);
  p.run_reference(1.5f, 0.5f);
  p.expect_matches("quarantined wide gemm");
}

TEST_F(QuarantineTest, PlansBuiltAfterQuarantineStayCorrect) {
  // Quarantine first, then exercise the cached-plan path repeatedly: the
  // plan snapshots force_scalar_kernels and every execution must agree
  // with naive.
  const index_t M = 48, N = 56, K = 20;
  fault::arm(fault::Site::kSelfcheckProbe, fault::Mode::kEveryN, 1);
  EXPECT_GT(shalom_selftest(), 0);
  fault::disarm_all();

  for (int rep = 0; rep < 3; ++rep) {
    testing::Problem<float> p({Trans::N, Trans::T}, M, N, K);
    Config cfg;
    cfg.threads = 1;
    cfg.kc_override = K;
    gemm(Trans::N, Trans::T, M, N, K, 1.0f, p.a.data(), p.a.ld(), p.b.data(),
         p.b.ld(), 0.75f, p.c.data(), p.c.ld(), cfg);
    baselines::naive_gemm({Trans::N, Trans::T}, M, N, K, 1.0f, p.a.data(),
                          p.a.ld(), p.b.data(), p.b.ld(), 0.75f,
                          p.c_ref.data(), p.c_ref.ld());
    expect_bitwise(p.c, p.c_ref, "cached quarantined plan");
  }
}

// ---------------------------------------------------------------------------
// Numerical guard (Config::check_numerics)
// ---------------------------------------------------------------------------

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(Numerics, IgnorePolicyIsDefaultAndSilent) {
  if (std::getenv("SHALOM_CHECK_NUMERICS") != nullptr)
    GTEST_SKIP() << "SHALOM_CHECK_NUMERICS overrides the default";
  robustness_stats_reset();
  Config cfg;
  EXPECT_EQ(cfg.check_numerics, numerics::Policy::kIgnore);

  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  p.a.data()[3] = kNaN;
  gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.0f, p.c.data(), p.c.ld(), cfg);
  EXPECT_EQ(robustness_stats().numeric_anomalies, 0u);
}

TEST(Numerics, CountPolicyRecordsAndContinues) {
  robustness_stats_reset();
  Config cfg;
  cfg.check_numerics = numerics::Policy::kCount;

  testing::Problem<float> p({Trans::N, Trans::N}, 12, 10, 6);
  p.a.data()[1] = kNaN;
  EXPECT_NO_THROW(gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(),
                       p.a.ld(), p.b.data(), p.b.ld(), 0.0f, p.c.data(),
                       p.c.ld(), cfg));
  // Operand A plus the NaN it smeared into the result: two anomalies.
  EXPECT_GE(robustness_stats().numeric_anomalies, 2u);
}

TEST(Numerics, FailPolicyThrowsBeforeDispatch) {
  robustness_stats_reset();
  Config cfg;
  cfg.check_numerics = numerics::Policy::kFail;

  testing::Problem<float> p({Trans::N, Trans::N}, 9, 7, 5);
  const Matrix<float> c_before = p.c;
  p.b.data()[2] = kInf;
  EXPECT_THROW(gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(),
                    p.a.ld(), p.b.data(), p.b.ld(), 1.0f, p.c.data(),
                    p.c.ld(), cfg),
               numeric_error);
  EXPECT_GT(robustness_stats().numeric_anomalies, 0u);
  // The guard fired before any arithmetic: C is untouched.
  expect_bitwise(p.c, c_before, "C after operand-guard failure");
}

TEST(Numerics, BetaZeroSkipsCScan) {
  // beta == 0 never reads C, so NaN garbage there is legal and must not
  // trip the guard.
  robustness_stats_reset();
  Config cfg;
  cfg.check_numerics = numerics::Policy::kFail;

  testing::Problem<float> p({Trans::N, Trans::N}, 10, 11, 7);
  for (index_t i = 0; i < p.c.rows(); ++i)
    for (index_t j = 0; j < p.c.cols(); ++j) p.c(i, j) = kNaN;
  EXPECT_NO_THROW(gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(),
                       p.a.ld(), p.b.data(), p.b.ld(), 0.0f, p.c.data(),
                       p.c.ld(), cfg));
  EXPECT_EQ(robustness_stats().numeric_anomalies, 0u);
  p.run_reference(1.0f, 0.0f);
  p.expect_matches("NaN-prefilled C, beta=0");
}

TEST(Numerics, CleanProblemRaisesNoAnomaly) {
  robustness_stats_reset();
  Config cfg;
  cfg.check_numerics = numerics::Policy::kFail;
  testing::Problem<double> p({Trans::T, Trans::N}, 15, 13, 11);
  EXPECT_NO_THROW(gemm(Trans::T, Trans::N, p.m, p.n, p.k, 0.5, p.a.data(),
                       p.a.ld(), p.b.data(), p.b.ld(), 0.25, p.c.data(),
                       p.c.ld(), cfg));
  EXPECT_EQ(robustness_stats().numeric_anomalies, 0u);
  p.run_reference(0.5, 0.25);
  p.expect_matches("guarded clean problem");
}

TEST(Numerics, CApiReportsNumericStatus) {
  // The C API has no Config; drive the guard via the env-derived default
  // only when the wrapper set it, otherwise exercise the error plumbing
  // through the C++ layer and the status-code surface directly.
  EXPECT_STREQ(shalom_strerror(SHALOM_ERR_NUMERIC),
               "non-finite value (NaN/Inf) caught by the numerical guard");
  EXPECT_NE(shalom_strerror(SHALOM_ERR_NUMERIC),
            shalom_strerror(SHALOM_ERR_INTERNAL));
}

TEST(Numerics, SamplerFindsCornerAndRespectsLd) {
  // Direct unit coverage of the sampled scan: last element is always
  // checked, and padding columns beyond `cols` are never read as data.
  Matrix<float> m(64, 48, 50);
  for (index_t i = 0; i < 64; ++i)
    for (index_t j = 0; j < 50; ++j) m.data()[i * 50 + j] = 1.0f;
  EXPECT_FALSE(numerics::has_nonfinite(m.data(), 64, 48, 50));
  m.data()[63 * 50 + 47] = kNaN;  // last logical element
  EXPECT_TRUE(numerics::has_nonfinite(m.data(), 63 + 1, 48, 50));
  m.data()[63 * 50 + 47] = 1.0f;
  m.data()[10 * 50 + 49] = kNaN;  // padding column: outside the block
  EXPECT_FALSE(numerics::has_nonfinite(m.data(), 64, 48, 50));
  EXPECT_FALSE(numerics::has_nonfinite<float>(nullptr, 4, 4, 4));
  EXPECT_FALSE(numerics::has_nonfinite(m.data(), 0, 48, 50));
}

// ---------------------------------------------------------------------------
// Environment-variable driven paths (wrappers in tests/CMakeLists.txt set
// SHALOM_SELFTEST / SHALOM_CHECK_NUMERICS; run bare these skip)
// ---------------------------------------------------------------------------

TEST(SelftestEnv, EagerSweepRanAtStartup) {
  const char* v = std::getenv("SHALOM_SELFTEST");
  if (v == nullptr) GTEST_SKIP() << "SHALOM_SELFTEST not set";
  // The static initializer ran the sweep before main(): every variant is
  // already decided, and on a healthy host all verified.
  for (int i = 0; i < selfcheck::kVariantCount; ++i) {
    const auto var = static_cast<selfcheck::Variant>(i);
    EXPECT_NE(selfcheck::status(var), selfcheck::Status::kUnknown)
        << selfcheck::variant_name(var);
  }
  if (std::getenv("SHALOM_FAULT") == nullptr) {
    EXPECT_EQ(selfcheck::run_all(), 0);
  } else {
    // Wrapper also armed the probe site: startup sweep quarantined all.
    EXPECT_EQ(selfcheck::run_all(), selfcheck::kVariantCount);
  }
}

TEST(NumericsEnv, PolicyComesFromEnvironment) {
  const char* v = std::getenv("SHALOM_CHECK_NUMERICS");
  if (v == nullptr) GTEST_SKIP() << "SHALOM_CHECK_NUMERICS not set";
  Config cfg;  // default picks up the env policy
  ASSERT_EQ(cfg.check_numerics, numerics::Policy::kCount)
      << "wrapper sets SHALOM_CHECK_NUMERICS=count";

  robustness_stats_reset();
  testing::Problem<float> p({Trans::N, Trans::N}, 16, 16, 8);
  p.a.data()[0] = kNaN;
  ASSERT_EQ(shalom_sgemm('N', 'N', p.m, p.n, p.k, 1.0f, p.a.data(),
                         p.a.ld(), p.b.data(), p.b.ld(), 0.0f, p.c.data(),
                         p.c.ld(), 1),
            SHALOM_OK);
  shalom_stats s;
  shalom_get_stats(&s);
  EXPECT_GE(s.numeric_anomalies, 1u);
}

TEST(EnvMalformed, MalformedValuesFallBackToDefaults) {
  // Wrapper sets malformed SHALOM_SELFTEST / SHALOM_CHECK_NUMERICS /
  // SHALOM_THREADS values; the library must warn once (stderr) and keep
  // every documented default - i.e. behave exactly like the bare run.
  if (std::getenv("SHALOM_CHECK_NUMERICS") == nullptr)
    GTEST_SKIP() << "malformed-env wrapper not active";
  Config cfg;
  EXPECT_EQ(cfg.check_numerics, numerics::Policy::kIgnore);

  testing::Problem<float> p({Trans::N, Trans::N}, 24, 18, 12);
  Config run_cfg;
  run_cfg.threads = 0;  // malformed SHALOM_THREADS must not hijack this
  EXPECT_NO_THROW(gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.0f, p.a.data(),
                       p.a.ld(), p.b.data(), p.b.ld(), 0.5f, p.c.data(),
                       p.c.ld(), run_cfg));
  p.run_reference(1.0f, 0.5f);
  p.expect_matches("malformed env run");
}

}  // namespace
}  // namespace shalom
