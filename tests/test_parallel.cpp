// Tests for the parallel layer: range splitting invariants, thread-pool
// fork-join behaviour, and parallel-vs-serial result equality across
// thread counts and shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>

#include "core/parallel.h"
#include "core/shalom.h"
#include "core/threadpool.h"
#include "tests/test_util.h"

namespace shalom {
namespace {

// ---------------------------------------------------------------------------
// split_range
// ---------------------------------------------------------------------------
class SplitRangeSweep
    : public ::testing::TestWithParam<std::tuple<index_t, int, int>> {};

TEST_P(SplitRangeSweep, CoversExactlyAndAligned) {
  const auto [total, parts, align] = GetParam();
  const auto offs = split_range(total, parts, align);
  ASSERT_EQ(offs.size(), static_cast<std::size_t>(parts) + 1);
  EXPECT_EQ(offs.front(), 0);
  EXPECT_EQ(offs.back(), total);
  for (int p = 0; p < parts; ++p) {
    EXPECT_LE(offs[p], offs[p + 1]);  // monotone, no negative chunks
    if (offs[p + 1] != total) {
      EXPECT_EQ(offs[p + 1] % align, 0) << "interior boundary alignment";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, SplitRangeSweep,
    ::testing::Combine(::testing::Values<index_t>(0, 1, 7, 15, 64, 1000,
                                                  50176),
                       ::testing::Values(1, 2, 3, 7, 64),
                       ::testing::Values(1, 7, 12)));

TEST(SplitRange, BalancedWithinOneTile) {
  const auto offs = split_range(1000, 8, 12);
  index_t min_chunk = 1000, max_chunk = 0;
  for (int p = 0; p < 8; ++p) {
    min_chunk = std::min(min_chunk, offs[p + 1] - offs[p]);
    max_chunk = std::max(max_chunk, offs[p + 1] - offs[p]);
  }
  EXPECT_LE(max_chunk - min_chunk, 12 + 4);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------
TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  pool.parallel_for(4, [&](int id) { counts[id]++; });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(3, [&](int) { total++; });
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, FewerTasksThanWorkers) {
  ThreadPool pool(8);
  std::set<int> seen;
  std::mutex mu;
  pool.parallel_for(3, [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(id);
  });
  EXPECT_EQ(seen, (std::set<int>{0, 1, 2}));
}

TEST(ThreadPool, SingleTaskRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](int) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, GlobalGrowsOnDemand) {
  ThreadPool& a = ThreadPool::global(2);
  EXPECT_GE(a.max_threads(), 2);
  ThreadPool& b = ThreadPool::global(4);
  EXPECT_GE(b.max_threads(), 4);
}

// Regression for the documented contract: tasks must lie in
// [1, max_threads]. Oversubscription is a hard error with an actionable
// message, never silent queueing.
TEST(ThreadPool, RejectsTooManyTasks) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(3, [](int) {}), invalid_argument);
  try {
    pool.parallel_for(3, [](int) {});
    FAIL() << "expected invalid_argument";
  } catch (const invalid_argument& e) {
    EXPECT_NE(std::strstr(e.what(), "max_threads"), nullptr)
        << "got: " << e.what();
    EXPECT_NE(std::strstr(e.what(), "tasks=3"), nullptr)
        << "got: " << e.what();
  }
  EXPECT_THROW(pool.parallel_for(0, [](int) {}), invalid_argument);
  EXPECT_THROW(pool.parallel_for(-1, [](int) {}), invalid_argument);
  // The pool survives rejected calls.
  std::atomic<int> ran{0};
  pool.parallel_for(2, [&](int) { ran++; });
  EXPECT_EQ(ran.load(), 2);
}

// pool_run is the width-tolerant wrapper: any task count is legal and the
// global pool grows (or chunks) to cover it.
TEST(PoolRun, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> counts(6);
  pool_run(6, [&](int id) { counts[id]++; });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(PoolRun, SingleTaskRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool_run(1, [&](int) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(PoolRun, RejectsNonPositiveTasks) {
  EXPECT_THROW(pool_run(0, [](int) {}), invalid_argument);
  EXPECT_THROW(pool_run(-2, [](int) {}), invalid_argument);
}

// ---------------------------------------------------------------------------
// Parallel GEMM equals serial GEMM.
// ---------------------------------------------------------------------------
class ParallelGemmSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ParallelGemmSweep, MatchesOracleAllModes) {
  const auto [threads, m, n, k] = GetParam();
  for (Mode mode : testing::kAllModes) {
    testing::Problem<float> p(mode, m, n, k);
    Config cfg;
    cfg.threads = threads;
    gemm(mode.a, mode.b, p.m, p.n, p.k, 1.5f, p.a.data(), p.a.ld(),
         p.b.data(), p.b.ld(), 0.5f, p.c.data(), p.c.ld(), cfg);
    p.run_reference(1.5f, 0.5f);
    p.expect_matches("parallel gemm");
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndShapes, ParallelGemmSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(13, 32, 130),
                       ::testing::Values(24, 250),
                       ::testing::Values(40, 170)));

TEST(ParallelGemm, IrregularShapes) {
  for (int threads : {2, 4}) {
    for (auto [m, n] : {std::pair<index_t, index_t>{16, 1500},
                        {1500, 16},
                        {7, 777}}) {
      testing::Problem<float> p({Trans::N, Trans::T}, m, n, 300);
      Config cfg;
      cfg.threads = threads;
      gemm(Trans::N, Trans::T, p.m, p.n, p.k, 1.f, p.a.data(), p.a.ld(),
           p.b.data(), p.b.ld(), 0.f, p.c.data(), p.c.ld(), cfg);
      p.run_reference(1.f, 0.f);
      p.expect_matches("irregular parallel");
    }
  }
}

TEST(ParallelGemm, ThreadsZeroMeansAllCores) {
  testing::Problem<float> p({Trans::N, Trans::N}, 64, 256, 64);
  Config cfg;
  cfg.threads = 0;
  gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.f, p.c.data(), p.c.ld(), cfg);
  p.run_reference(1.f, 0.f);
  p.expect_matches("threads=0");
}

TEST(ParallelGemm, MoreThreadsThanTiles) {
  // 8x8 with 16 threads: the partition must clamp, not crash or misplace.
  testing::Problem<float> p({Trans::N, Trans::N}, 8, 8, 8);
  Config cfg;
  cfg.threads = 16;
  gemm(Trans::N, Trans::N, p.m, p.n, p.k, 1.f, p.a.data(), p.a.ld(),
       p.b.data(), p.b.ld(), 0.f, p.c.data(), p.c.ld(), cfg);
  p.run_reference(1.f, 0.f);
  p.expect_matches("overprovisioned");
}

}  // namespace
}  // namespace shalom
